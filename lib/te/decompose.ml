module Graph = Netgraph.Graph

let epsilon = 1e-9

(* Find a cycle in the positive-flow edge set (DFS back-edge search).
   Returns the cycle's edges, if any. *)
let find_cycle edge_flows =
  let succ = Hashtbl.create 16 in
  List.iter
    (fun ((u, v), f) ->
      if f > epsilon then
        Hashtbl.replace succ u (v :: Option.value ~default:[] (Hashtbl.find_opt succ u)))
    edge_flows;
  let color = Hashtbl.create 16 in (* absent = white, false = gray, true = black *)
  let exception Found of (Graph.node * Graph.node) list in
  (* [stack] is the gray path as (node, edge-into-node) pairs, newest
     first; on a back edge to [v] the cycle is the stack suffix down to v
     plus the back edge. *)
  let rec visit stack u =
    Hashtbl.replace color u false;
    List.iter
      (fun v ->
        match Hashtbl.find_opt color v with
        | None -> visit ((v, (u, v)) :: stack) v
        | Some false ->
          (* Cycle: v -> ... -> u plus the back edge (u, v). The stack
             holds (node, edge-into-node) pairs from u back to the root;
             take every edge down to, but excluding, the one into v. *)
          let rec cut acc = function
            | (w, edge) :: rest -> if w = v then acc else cut (edge :: acc) rest
            | [] -> acc (* v is the DFS root *)
          in
          raise (Found ((u, v) :: cut [] stack))
        | Some true -> ())
      (Option.value ~default:[] (Hashtbl.find_opt succ u));
    Hashtbl.replace color u true
  in
  try
    Hashtbl.iter
      (fun u _ -> if not (Hashtbl.mem color u) then visit [] u)
      succ;
    None
  with Found cycle -> Some cycle

let cancel_cycles edge_flows =
  let table = Hashtbl.create 32 in
  List.iter (fun (e, f) -> if f > epsilon then Hashtbl.replace table e f) edge_flows;
  let current () =
    Hashtbl.to_seq table |> List.of_seq |> List.sort compare
  in
  let rec fix () =
    match find_cycle (current ()) with
    | None -> ()
    | Some cycle_edges ->
      let bottleneck =
        List.fold_left
          (fun acc e -> min acc (Hashtbl.find table e))
          infinity cycle_edges
      in
      List.iter
        (fun e ->
          let f = Hashtbl.find table e -. bottleneck in
          if f > epsilon then Hashtbl.replace table e f else Hashtbl.remove table e)
        cycle_edges;
      fix ()
  in
  fix ();
  current ()

let node_fractions edge_flows =
  let out = Hashtbl.create 16 in
  List.iter
    (fun ((u, v), f) ->
      if f > epsilon then
        Hashtbl.replace out u ((v, f) :: Option.value ~default:[] (Hashtbl.find_opt out u)))
    edge_flows;
  Hashtbl.fold
    (fun u hops acc ->
      let total = List.fold_left (fun t (_, f) -> t +. f) 0. hops in
      let kept = List.filter (fun (_, f) -> f /. total >= 1e-6) hops in
      let kept_total = List.fold_left (fun t (_, f) -> t +. f) 0. kept in
      let fractions =
        List.map (fun (v, f) -> (v, f /. kept_total)) kept
        |> List.sort compare
      in
      (u, fractions) :: acc)
    out []
  |> List.sort compare

let to_requirements net ~prefix edge_flows =
  let announcers =
    List.filter_map
      (fun (p, origin, _) -> if Igp.Prefix.equal p prefix then Some origin else None)
      (Igp.Lsdb.prefixes (Igp.Network.lsdb net))
  in
  let fractions = node_fractions (cancel_cycles edge_flows) in
  let differs router desired =
    match Igp.Network.fib net ~router prefix with
    | None -> true
    | Some fib ->
      let current = Igp.Fib.fractions fib in
      let off (nh, want) =
        abs_float (want -. Option.value ~default:0. (List.assoc_opt nh current))
        > 0.01
      in
      List.exists off desired
      || List.exists (fun (nh, _) -> not (List.mem_assoc nh desired)) current
  in
  let routers =
    List.filter_map
      (fun (router, desired) ->
        if List.mem router announcers then None
        else if not (differs router desired) then None
        else
          Some
            {
              Fibbing.Requirements.router;
              splits =
                List.map
                  (fun (next_hop, fraction) -> { Fibbing.Requirements.next_hop; fraction })
                  desired;
            })
      fractions
  in
  { Fibbing.Requirements.prefix; routers }
