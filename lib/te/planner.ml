module Graph = Netgraph.Graph

let m_scenarios = Obs.Metrics.counter "planner.scenarios"
let m_compile_failures = Obs.Metrics.counter "planner.compile_failures"

type scenario = No_failure | Link_failure of Netsim.Link.t

let pp_scenario g fmt = function
  | No_failure -> Format.pp_print_string fmt "no failure"
  | Link_failure link ->
    Format.fprintf fmt "failure of %s" (Netsim.Link.name g link)

let connected_without g (u, v) =
  let g' = Graph.copy g in
  Graph.remove_edge g' u v;
  Graph.remove_edge g' v u;
  let r = Netgraph.Dijkstra.run g' ~source:0 in
  List.for_all (fun w -> Netgraph.Dijkstra.reachable r w) (Graph.nodes g')

let single_link_failures g =
  let undirected = List.filter (fun (u, v, _) -> u < v) (Graph.edges g) in
  No_failure
  :: List.filter_map
       (fun (u, v, _) ->
         if connected_without g (u, v) then Some (Link_failure (u, v)) else None)
       undirected

type entry = {
  scenario : scenario;
  igp_utilization : float;
  planned_utilization : float;
  optimal_utilization : float;
  plan : Fibbing.Augmentation.plan option;
  note : string option;
}

let utilization net demands ~capacity =
  match
    Netsim.Loadmap.max_utilization
      (Netsim.Loadmap.propagate net demands)
      (Netsim.Link.capacities ~default:capacity)
  with
  | Some (_, u) -> u
  | None -> 0.
  | exception Netsim.Loadmap.Unreachable _ -> infinity
  | exception Netsim.Loadmap.Forwarding_loop _ -> infinity

let prepare ?(epsilon = 0.1) ?(max_entries = 16) net ~demands ~capacity
    ~scenarios =
  let prefix =
    match
      List.sort_uniq compare
        (List.map (fun d -> d.Netsim.Loadmap.prefix) demands)
    with
    | [ p ] -> p
    | _ -> invalid_arg "Planner.prepare: demands must target a single prefix"
  in
  let egress =
    match
      List.find_map
        (fun (p, origin, _) -> if Igp.Prefix.equal p prefix then Some origin else None)
        (Igp.Lsdb.prefixes (Igp.Network.lsdb net))
    with
    | Some origin -> origin
    | None -> invalid_arg "Planner.prepare: prefix not announced"
  in
  List.map
    (fun scenario ->
      Obs.Metrics.incr m_scenarios;
      let plan_scenario () =
      (* Build the scenario's network. *)
      let what_if = Igp.Network.clone net in
      (match scenario with
      | No_failure -> ()
      | Link_failure (u, v) ->
        let g = Igp.Network.graph what_if in
        Graph.remove_edge g u v;
        Graph.remove_edge g v u;
        Igp.Lsdb.touch ~origin:u (Igp.Network.lsdb what_if));
      Igp.Network.warm what_if;
      let igp_utilization = utilization what_if demands ~capacity in
      let g = Igp.Network.graph what_if in
      let commodities =
        List.map
          (fun d ->
            { Mcf.src = d.Netsim.Loadmap.src; dst = egress; prefix;
              demand = d.Netsim.Loadmap.amount })
          demands
      in
      match Mcf.solve ~epsilon g ~capacities:(fun _ -> capacity) commodities with
      | exception Invalid_argument reason ->
        {
          scenario;
          igp_utilization;
          planned_utilization = igp_utilization;
          optimal_utilization = infinity;
          plan = None;
          note = Some reason;
        }
      | result ->
        let optimal_utilization =
          Mcf.max_utilization g ~capacities:(fun _ -> capacity) result
        in
        let reqs =
          Decompose.to_requirements what_if ~prefix
            (List.assoc prefix result.Mcf.flows)
        in
        if reqs.Fibbing.Requirements.routers = [] then
          {
            scenario;
            igp_utilization;
            planned_utilization = igp_utilization;
            optimal_utilization;
            plan = None;
            note = None;
          }
        else begin
          match Fibbing.Augmentation.compile ~max_entries what_if reqs with
          | Error reason ->
            Obs.Metrics.incr m_compile_failures;
            {
              scenario;
              igp_utilization;
              planned_utilization = igp_utilization;
              optimal_utilization;
              plan = None;
              note = Some reason;
            }
          | Ok plan ->
            Fibbing.Augmentation.apply what_if plan;
            {
              scenario;
              igp_utilization;
              planned_utilization = utilization what_if demands ~capacity;
              optimal_utilization;
              plan = Some plan;
              note = None;
            }
        end
      in
      if Obs.enabled () then begin
        let name =
          Format.asprintf "%a" (pp_scenario (Igp.Network.graph net)) scenario
        in
        let entry =
          Obs.Trace.with_span "planner.scenario"
            ~attrs:[ ("scenario", String name) ]
            plan_scenario
        in
        Obs.Timeline.record ~source:"planner" ~kind:"entry"
          [
            ("scenario", String name);
            ("igp_utilization", Float entry.igp_utilization);
            ("planned_utilization", Float entry.planned_utilization);
            ("optimal_utilization", Float entry.optimal_utilization);
            ( "fakes",
              Int
                (match entry.plan with
                | None -> 0
                | Some p -> Fibbing.Augmentation.fake_count p) );
          ];
        entry
      end
      else plan_scenario ())
    scenarios

let worst_case = function
  | [] -> invalid_arg "Planner.worst_case: no entries"
  | first :: rest ->
    List.fold_left
      (fun acc entry ->
        if entry.planned_utilization > acc.planned_utilization then entry else acc)
      first rest
