(** SNMP-like link monitoring.

    In the demo, "a Fibbing controller, connected to R3, monitors link
    loads using SNMP". We model the same information flow: the simulator
    feeds byte-counter increments to the monitor; every [poll_interval]
    seconds the monitor computes per-link utilization over the last
    window, smooths it with an EWMA, and raises alarms for links above
    the threshold or clears for links that dropped back below it. *)

type t

type alarm = {
  link : Link.t;
  utilization : float;  (** Smoothed utilization (load/capacity). *)
  raised : bool;  (** [true] = overload alarm, [false] = cleared. *)
}

val create :
  ?poll_interval:float ->
  ?threshold:float ->
  ?clear_threshold:float ->
  ?alpha:float ->
  Link.capacities ->
  t
(** Defaults: poll every 2 s, alarm above 0.9, clear below 0.7, EWMA
    alpha 0.5. Requires [clear_threshold <= threshold]. *)

val observe : t -> time:float -> dt:float -> (Link.t * float) list -> unit
(** Account [rate * dt] bytes on each link for the interval ending at
    [time]. Rates are bytes/s. *)

val poll_due : t -> time:float -> bool

val poll : t -> time:float -> alarm list
(** Complete a polling cycle: returns newly raised and newly cleared
    alarms (state transitions only, not repeats). Resets the window
    counters.

    A poll at (or within a microsecond of) the previous poll's time is a
    no-op returning [[]]: the counters have not advanced, and dividing
    the window bytes by a ~zero-length window would fabricate absurd
    utilization spikes and spurious alarms. *)

val forget : t -> Link.t -> unit
(** Drop all monitoring state for one link (window bytes, smoothed
    utilization, alarm). Called when the link leaves the topology so a
    dead link cannot hold an alarm forever; its history series is kept
    for reporting. *)

val prune : t -> alive:(Link.t -> bool) -> unit
(** [forget] every known link for which [alive] is false. *)

val mute : t -> until:float -> unit
(** Fault injection: lose every sample observed at or before [until]
    (an SNMP blackout). Muting never rewinds an already-later mute. *)

val set_sample_loss : t -> (Kit.Prng.t * float) option -> unit
(** Fault injection: drop each per-link sample independently with the
    given probability (deterministic per PRNG). [None] disables. *)

type corruption
(** Corrupted/stale telemetry: each surviving per-link sample is, with
    some probability, scaled by a uniform random factor in [\[0, gain)] —
    factors above 1 fabricate phantom congestion (spurious alarms),
    factors below 1 model stale or undercounting readings (missed
    congestion). *)

val corruption : ?probability:float -> ?gain:float -> seed:int -> unit -> corruption
(** Defaults: probability 0.3, gain 2.0 (so corrupt readings range from
    zero to double the truth). Probability must be in [\[0, 1)], gain
    positive; deterministic per seed. *)

val set_corruption : t -> corruption option -> unit
(** Fault injection: corrupt samples as described above. Applied after
    sample loss (a dropped sample is dropped, not corrupted). [None]
    disables. *)

val utilization : t -> Link.t -> float
(** Current smoothed utilization estimate (0. if never observed). *)

val utilizations : t -> (Link.t * float) list
(** All links ever observed with their smoothed utilization, by link. *)

val threshold : t -> float

val clear_threshold : t -> float

val overloaded : t -> Link.t list
(** Links currently in the alarmed state. *)

val history : t -> Link.t -> Kit.Timeseries.t option
(** Smoothed utilization sampled once per poll, recorded only while
    [Obs] telemetry is enabled; [None] when nothing was recorded. *)
