(** Continuous runtime safety layer.

    Install-time checks ([Fibbing.Transient]) prove a lie set safe at
    the moment it is injected — but faults, partitions, and corrupted
    telemetry can invalidate an installed lie set long after the check
    passed (a link failure elsewhere can turn a verified lie into a
    forwarding loop). The watchdog re-verifies a registry of invariants
    continuously:

    - {b per-prefix safety}: the live forwarding graph of every
      announced prefix is loop-free and blackhole-free
      ({!Igp.Safety.state_safe});
    - {b lie budget}: at most [max_fakes] fakes installed;
    - {b lie freshness}: every installed fake carries an expiry
      (mortal), not further out than [max_lie_age], and not silently
      past due;
    - {b lie anchoring}: every fake's forwarding adjacency still exists;
    - {b utilization bound}: delivered per-link throughput respects
      [utilization_bound * capacity].

    Checks run at two boundaries. The {e post-step check} (every
    [Sim.on_step]) verifies the state the step actually forwarded with;
    any hit is a violation, emitted as an Obs timeline event and a
    metrics counter (and raised when [fail_fast]). The {e pre-routing
    guard} ([Sim.on_route_change], enabled by [guard]) runs when a
    topology change lands, {e before} flows are routed: a prefix whose
    state turned unsafe has its fakes purged on the spot (the lie
    quarantine of last resort — any IGP speaker can MaxAge-flood a
    poisoned LSA), so the unsafe state never carries traffic. A live
    controller's own revalidation hook, registered earlier, normally
    withdraws first; the guard covers dead controllers and unowned
    lies.

    Steady state costs ~nothing: the safety sweep is gated on the LSDB
    version and the SPF engine's dirty-router log, so steps without an
    effective routing change skip it entirely (the cheap O(#fakes) and
    O(#loaded links) scans still run). *)

type kind =
  | Forwarding_loop
  | Blackhole
  | Lie_budget
  | Stale_lie  (** Immortal, past-due, or over-aged fake. *)
  | Dangling_lie  (** Forwarding adjacency gone but fake still installed. *)
  | Link_overload
  | Malformed_fib
      (** An installed FIB violates {!Igp.Fib.invariant} (non-positive
          multiplicity or non-canonical entries). *)

val kind_to_string : kind -> string

type violation = {
  time : float;
  kind : kind;
  prefix : Igp.Lsa.prefix option;
      (** The prefix the violation is attributed to, when per-prefix. *)
  subject : string;  (** Fake id, link name, or prefix. *)
  detail : string;
}

exception Tripped of violation
(** Raised by the post-step check when [fail_fast] is set. *)

type config = {
  max_fakes : int;  (** Lie budget (default 64). *)
  max_lie_age : float;
      (** Upper bound on expiry - now (default {!Igp.Lsa.max_age}). *)
  require_mortal : bool;
      (** Flag fakes installed without an expiry (default [true]). *)
  utilization_bound : float;
      (** Delivered-rate bound as a fraction of capacity (default 1.0 —
          the max-min allocator never exceeds capacity). *)
  guard : bool;
      (** Arm the pre-routing quarantine guard (default [true]). *)
  fail_fast : bool;
      (** Raise {!Tripped} on the first post-step violation (default
          [false]). *)
  history : int;  (** Violation ring capacity (default 256). *)
}

val default_config : config

type t

val arm : ?config:config -> Sim.t -> t
(** Register the watchdog's hooks on the simulation. Raises
    [Invalid_argument] on a non-positive [max_lie_age],
    [utilization_bound] or [history], or a negative [max_fakes]. *)

val check_now : t -> Sim.t -> unit
(** Force a full post-step check immediately, bypassing the incremental
    gating (one-shot audits, tests). *)

val on_violation : t -> (violation -> unit) -> unit
(** Called on every reported violation (before {!Tripped} is raised).
    This is where a controller wires its quarantine/hold-down. *)

val on_quarantine : t -> (prefix:Igp.Lsa.prefix -> reason:string -> unit) -> unit
(** Called when the pre-routing guard purges a prefix's lies — lets a
    live controller drop its own bookkeeping for the prefix and enter
    hold-down. *)

val violations : t -> violation list
(** Recorded violations, oldest first (bounded by [history]). *)

val violation_count : t -> int
(** Total violations reported (not bounded by the ring). *)

val quarantine_count : t -> int
(** Prefix quarantines performed by the pre-routing guard. *)

type stats = {
  steps_checked : int;
  safety_sweeps : int;  (** Full per-prefix safety walks actually run. *)
  safety_skipped : int;  (** Post-step checks that skipped the sweep. *)
  violations : int;
  quarantines : int;
}

val stats : t -> stats
(** Work counters backing the overhead gate: in steady state
    [safety_skipped] must dominate [safety_sweeps]. *)

val pp_violation : Format.formatter -> violation -> unit
