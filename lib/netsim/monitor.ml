type alarm = { link : Link.t; utilization : float; raised : bool }

let m_polls = Obs.Metrics.counter "monitor.polls"
let m_alarms_raised = Obs.Metrics.counter "monitor.alarms_raised"
let m_alarms_cleared = Obs.Metrics.counter "monitor.alarms_cleared"

type t = {
  poll_interval : float;
  threshold : float;
  clear_threshold : float;
  alpha : float;
  capacities : Link.capacities;
  window_bytes : (Link.t, float) Hashtbl.t;
  smoothed : (Link.t, float) Hashtbl.t;
  alarmed : (Link.t, unit) Hashtbl.t;
  histories : (Link.t, Kit.Timeseries.t) Hashtbl.t;
  mutable last_poll : float;
  mutable mute_until : float;
      (* Fault injection: samples arriving before this time are lost. *)
  mutable sample_loss : (Kit.Prng.t * float) option;
      (* Fault injection: drop each per-link sample with probability p. *)
  mutable corruption : corruption option;
      (* Fault injection: scale surviving samples by a random factor. *)
}

and corruption = { c_prng : Kit.Prng.t; probability : float; gain : float }

(* A repeat poll inside this window is a no-op: the byte counters have
   not advanced, and dividing by a ~zero-length window would turn any
   residual bytes into an absurd utilization spike. *)
let min_window = 1e-6

let create ?(poll_interval = 2.0) ?(threshold = 0.9) ?(clear_threshold = 0.7)
    ?(alpha = 0.5) capacities =
  if poll_interval <= 0. then invalid_arg "Monitor.create: poll interval";
  if clear_threshold > threshold then
    invalid_arg "Monitor.create: clear_threshold must be <= threshold";
  {
    poll_interval;
    threshold;
    clear_threshold;
    alpha;
    capacities;
    window_bytes = Hashtbl.create 32;
    smoothed = Hashtbl.create 32;
    alarmed = Hashtbl.create 8;
    histories = Hashtbl.create 8;
    last_poll = 0.;
    mute_until = neg_infinity;
    sample_loss = None;
    corruption = None;
  }

let mute t ~until = t.mute_until <- max t.mute_until until

let set_sample_loss t loss =
  (match loss with
  | Some (_, p) when p < 0. || p >= 1. ->
    invalid_arg "Monitor.set_sample_loss: probability must be in [0, 1)"
  | Some _ | None -> ());
  t.sample_loss <- loss

let corruption ?(probability = 0.3) ?(gain = 2.0) ~seed () =
  if probability < 0. || probability >= 1. then
    invalid_arg "Monitor.corruption: probability must be in [0, 1)";
  if gain <= 0. then invalid_arg "Monitor.corruption: gain must be positive";
  { c_prng = Kit.Prng.create ~seed; probability; gain }

let set_corruption t c = t.corruption <- c

let observe t ~time ~dt rates =
  if time > t.mute_until then
    List.iter
      (fun (link, rate) ->
        let lost =
          match t.sample_loss with
          | Some (prng, p) -> Kit.Prng.float prng 1.0 < p
          | None -> false
        in
        if not lost then begin
          (* Corruption hits each surviving sample independently: the
             byte counter reads a uniform factor in [0, gain) of the
             truth — > 1 fabricates phantom congestion, < 1 is the
             stale/undercounting reading of a wedged SNMP agent. *)
          let rate =
            match t.corruption with
            | Some c when Kit.Prng.float c.c_prng 1.0 < c.probability ->
              rate *. Kit.Prng.float c.c_prng c.gain
            | Some _ | None -> rate
          in
          let bytes =
            Option.value ~default:0. (Hashtbl.find_opt t.window_bytes link)
          in
          Hashtbl.replace t.window_bytes link (bytes +. (rate *. dt))
        end)
      rates

let poll_due t ~time = time -. t.last_poll >= t.poll_interval -. 1e-9

let forget t link =
  Hashtbl.remove t.window_bytes link;
  Hashtbl.remove t.smoothed link;
  Hashtbl.remove t.alarmed link

let prune t ~alive =
  let dead table =
    Hashtbl.fold (fun link _ acc -> if alive link then acc else link :: acc) table []
  in
  List.iter (forget t) (dead t.smoothed);
  List.iter (forget t) (dead t.window_bytes);
  List.iter (forget t) (dead t.alarmed)

let poll t ~time =
  if time -. t.last_poll < min_window then []
  else begin
  let window = max 1e-9 (time -. t.last_poll) in
  t.last_poll <- time;
  (* Update the EWMA for every link ever observed; links silent this
     window decay towards 0. *)
  let update link =
    let bytes = Option.value ~default:0. (Hashtbl.find_opt t.window_bytes link) in
    let raw = bytes /. window /. Link.capacity t.capacities link in
    let prev = Option.value ~default:raw (Hashtbl.find_opt t.smoothed link) in
    Hashtbl.replace t.smoothed link (Kit.Stats.ewma ~alpha:t.alpha prev raw)
  in
  Hashtbl.iter (fun link _ -> update link) t.window_bytes;
  Hashtbl.iter
    (fun link _ ->
      if not (Hashtbl.mem t.window_bytes link) then update link)
    t.smoothed;
  Hashtbl.reset t.window_bytes;
  Obs.Metrics.incr m_polls;
  (* Per-link utilization histories, sampled once per poll. Only kept
     while telemetry is on: unbounded series would leak over long runs. *)
  if Obs.enabled () then
    Hashtbl.iter
      (fun link u ->
        let ts =
          match Hashtbl.find_opt t.histories link with
          | Some ts -> ts
          | None ->
            let a, b = link in
            let ts =
              Kit.Timeseries.create ~name:(Printf.sprintf "util %d-%d" a b)
            in
            Hashtbl.add t.histories link ts;
            ts
        in
        Kit.Timeseries.add ts ~time u)
      t.smoothed;
  let alarms = ref [] in
  Hashtbl.iter
    (fun link utilization ->
      let was_alarmed = Hashtbl.mem t.alarmed link in
      if (not was_alarmed) && utilization > t.threshold then begin
        Hashtbl.replace t.alarmed link ();
        Obs.Metrics.incr m_alarms_raised;
        alarms := { link; utilization; raised = true } :: !alarms
      end
      else if was_alarmed && utilization < t.clear_threshold then begin
        Hashtbl.remove t.alarmed link;
        Obs.Metrics.incr m_alarms_cleared;
        alarms := { link; utilization; raised = false } :: !alarms
      end)
    t.smoothed;
  List.sort (fun a b -> Link.compare a.link b.link) !alarms
  end

let utilization t link =
  Option.value ~default:0. (Hashtbl.find_opt t.smoothed link)

let utilizations t =
  Hashtbl.fold (fun link u acc -> (link, u) :: acc) t.smoothed []
  |> List.sort (fun (a, _) (b, _) -> Link.compare a b)

let threshold t = t.threshold

let clear_threshold t = t.clear_threshold

let history t link = Hashtbl.find_opt t.histories link

let overloaded t =
  Hashtbl.fold (fun link () acc -> link :: acc) t.alarmed []
  |> List.sort Link.compare
