module Graph = Netgraph.Graph

type demand = {
  src : Graph.node;
  prefix : Igp.Lsa.prefix;
  amount : float;
}

exception Forwarding_loop of Igp.Lsa.prefix
exception Unreachable of Igp.Lsa.prefix

type t = { table : (Link.t, float) Hashtbl.t }

let add_load t link amount =
  let current = Option.value ~default:0. (Hashtbl.find_opt t.table link) in
  Hashtbl.replace t.table link (current +. amount)

(* Process one prefix: topologically order the forwarding graph (edges
   router -> next hop from every FIB), then push node loads downstream
   splitting by FIB fractions. *)
let propagate_prefix t net prefix demands =
  let g = Igp.Network.graph net in
  let n = Graph.node_count g in
  let node_load = Array.make n 0. in
  let fibs = Igp.Network.fib_table net prefix in
  List.iter
    (fun d ->
      if fibs.(d.src) = None then raise (Unreachable prefix);
      node_load.(d.src) <- node_load.(d.src) +. d.amount)
    demands;
  (* Kahn's algorithm on forwarding edges. *)
  let indegree = Array.make n 0 in
  let forwarding router =
    match fibs.(router) with
    | Some fib when not fib.Igp.Fib.local -> Igp.Fib.fractions fib
    | Some _ | None -> []
  in
  List.iter
    (fun router ->
      List.iter (fun (nh, _) -> indegree.(nh) <- indegree.(nh) + 1) (forwarding router))
    (Graph.nodes g);
  let queue = Queue.create () in
  List.iter
    (fun router -> if indegree.(router) = 0 then Queue.push router queue)
    (Graph.nodes g);
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let router = Queue.pop queue in
    incr processed;
    let amount = node_load.(router) in
    List.iter
      (fun (next_hop, fraction) ->
        if amount > 0. then begin
          add_load t (router, next_hop) (amount *. fraction);
          node_load.(next_hop) <- node_load.(next_hop) +. (amount *. fraction)
        end;
        indegree.(next_hop) <- indegree.(next_hop) - 1;
        if indegree.(next_hop) = 0 then Queue.push next_hop queue)
      (forwarding router)
  done;
  if !processed < n then begin
    (* A cycle exists; it only matters if a cyclic router carries load. *)
    let cyclic_loaded =
      List.exists
        (fun router -> indegree.(router) > 0 && node_load.(router) > 0.)
        (Graph.nodes g)
    in
    if cyclic_loaded then raise (Forwarding_loop prefix)
  end

let propagate net demands =
  let t = { table = Hashtbl.create 32 } in
  let by_prefix = Hashtbl.create 4 in
  List.iter
    (fun d ->
      if d.amount < 0. then invalid_arg "Loadmap.propagate: negative demand";
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_prefix d.prefix) in
      Hashtbl.replace by_prefix d.prefix (d :: existing))
    demands;
  Hashtbl.iter (fun prefix ds -> propagate_prefix t net prefix ds) by_prefix;
  t

let load t link = Option.value ~default:0. (Hashtbl.find_opt t.table link)

let loads t =
  Hashtbl.to_seq t.table
  |> List.of_seq
  |> List.filter (fun (_, l) -> l > 0.)
  |> List.sort (fun (a, _) (b, _) -> Link.compare a b)

let max_load t =
  List.fold_left
    (fun acc (link, l) ->
      match acc with
      | Some (_, best) when best >= l -> acc
      | Some _ | None -> Some (link, l))
    None (loads t)

let utilization t capacities =
  List.map (fun (link, l) -> (link, l /. Link.capacity capacities link)) (loads t)

let max_utilization t capacities =
  List.fold_left
    (fun acc (link, u) ->
      match acc with
      | Some (_, best) when best >= u -> acc
      | Some _ | None -> Some (link, u))
    None
    (utilization t capacities)

let pp g fmt t =
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare b a) (loads t)
  in
  List.iter
    (fun (link, l) -> Format.fprintf fmt "%-12s %10.1f@." (Link.name g link) l)
    sorted
