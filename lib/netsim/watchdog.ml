module Graph = Netgraph.Graph

let m_steps = Obs.Metrics.counter "watchdog.steps"
let m_safety_sweeps = Obs.Metrics.counter "watchdog.safety_sweeps"
let m_safety_skipped = Obs.Metrics.counter "watchdog.safety_skipped"
let m_violations = Obs.Metrics.counter "watchdog.violations"
let m_quarantines = Obs.Metrics.counter "watchdog.quarantines"

let h_prefixes_checked =
  Obs.Metrics.histogram "watchdog.prefixes_checked"
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64. |]

type kind =
  | Forwarding_loop
  | Blackhole
  | Lie_budget
  | Stale_lie
  | Dangling_lie
  | Link_overload
  | Malformed_fib

let kind_to_string = function
  | Forwarding_loop -> "forwarding_loop"
  | Blackhole -> "blackhole"
  | Lie_budget -> "lie_budget"
  | Stale_lie -> "stale_lie"
  | Dangling_lie -> "dangling_lie"
  | Link_overload -> "link_overload"
  | Malformed_fib -> "malformed_fib"

type violation = {
  time : float;
  kind : kind;
  prefix : Igp.Lsa.prefix option;
  subject : string;
  detail : string;
}

exception Tripped of violation

type config = {
  max_fakes : int;
  max_lie_age : float;
  require_mortal : bool;
  utilization_bound : float;
  guard : bool;
  fail_fast : bool;
  history : int;
}

let default_config =
  {
    max_fakes = 64;
    max_lie_age = Igp.Lsa.max_age;
    require_mortal = true;
    utilization_bound = 1.0;
    guard = true;
    fail_fast = false;
    history = 256;
  }

type stats = {
  steps_checked : int;
  safety_sweeps : int;
  safety_skipped : int;
  violations : int;
  quarantines : int;
}

type t = {
  config : config;
  (* Incremental gating: a safety sweep reruns only when the LSDB
     version moved AND the SPF dirty log says some router's answers
     actually changed — steady-state steps skip the O(prefixes * (V+E))
     walk entirely. The guard and the post-step check share this state:
     a clean guard pass means the post-step check of the same (still
     unchanged) version can skip. *)
  mutable lsdb_version : int;
  mutable spf_cursor : int;
  ring : violation Kit.Ring.t;
  mutable n_steps : int;
  mutable n_sweeps : int;
  mutable n_skipped : int;
  mutable n_violations : int;
  mutable n_quarantines : int;
  violation_hooks : (violation -> unit) Queue.t;
  quarantine_hooks : (prefix:Igp.Lsa.prefix -> reason:string -> unit) Queue.t;
}

let on_violation t hook = Queue.add hook t.violation_hooks

let on_quarantine t hook = Queue.add hook t.quarantine_hooks

let violations t = Kit.Ring.to_list t.ring

let violation_count t = t.n_violations

let quarantine_count t = t.n_quarantines

let stats t =
  {
    steps_checked = t.n_steps;
    safety_sweeps = t.n_sweeps;
    safety_skipped = t.n_skipped;
    violations = t.n_violations;
    quarantines = t.n_quarantines;
  }

let report t ~time ~kind ?prefix ~subject detail =
  let v = { time; kind; prefix; subject; detail } in
  t.n_violations <- t.n_violations + 1;
  Kit.Ring.push t.ring v;
  Obs.Metrics.incr m_violations;
  if Obs.enabled () then
    Obs.Timeline.record ~time ~source:"watchdog" ~kind:"violation"
      ([
         ("invariant", Obs.Attr.String (kind_to_string kind));
         ("subject", Obs.Attr.String subject);
         ("detail", Obs.Attr.String detail);
       ]
      @
      match prefix with
      | Some p -> [ ("prefix", Obs.Attr.String (Igp.Prefix.to_string p)) ]
      | None -> []);
  Queue.iter (fun hook -> hook v) t.violation_hooks;
  if t.config.fail_fast then raise (Tripped v)

(* ---- invariants ---- *)

(* The lie ledger: budget respected, every fake mortal, refreshed within
   age, and anchored to a live adjacency. O(#fakes) per step. [now] is
   post-step time; the sim purges expiries <= step start, so a surviving
   fake may legally carry an expiry up to [dt] in the past. *)
let check_lies t sim ~time =
  let net = Sim.network sim in
  let g = Igp.Network.graph net in
  let lsdb = Igp.Network.lsdb net in
  let count = Igp.Lsdb.fake_count lsdb in
  if count > t.config.max_fakes then
    report t ~time ~kind:Lie_budget ~subject:"lsdb"
      (Printf.sprintf "%d fakes installed, budget %d" count t.config.max_fakes);
  let slack = Sim.dt sim +. 1e-9 in
  List.iter
    (fun (f : Igp.Lsa.fake) ->
      (match Igp.Lsdb.fake_expiry lsdb ~fake_id:f.fake_id with
      | None ->
        if t.config.require_mortal then
          report t ~time ~kind:Stale_lie ~prefix:f.prefix ~subject:f.fake_id
            "installed without an expiry (immortal lie)"
      | Some expiry ->
        if expiry <= time -. slack then
          report t ~time ~kind:Stale_lie ~prefix:f.prefix ~subject:f.fake_id
            (Printf.sprintf "expiry %.2f passed at %.2f and was not purged"
               expiry time)
        else if expiry > time +. t.config.max_lie_age +. 1e-9 then
          report t ~time ~kind:Stale_lie ~prefix:f.prefix ~subject:f.fake_id
            (Printf.sprintf "expiry %.2f exceeds max lie age %.1f" expiry
               t.config.max_lie_age));
      if not (Graph.has_edge g f.attachment f.forwarding) then
        report t ~time ~kind:Dangling_lie ~prefix:f.prefix ~subject:f.fake_id
          (Printf.sprintf "forwarding adjacency %s -> %s is gone"
             (Graph.name g f.attachment)
             (Graph.name g f.forwarding)))
    (Igp.Lsdb.fakes lsdb)

(* Delivered per-link throughput must respect capacity * bound. The
   allocator guarantees this by construction; the invariant catches a
   regression in it (or a caller bypassing it). *)
let check_utilization t sim ~time =
  let caps = Sim.capacities sim in
  let g = Igp.Network.graph (Sim.network sim) in
  List.iter
    (fun (link, rate) ->
      let cap = Link.capacity caps link in
      let bound = t.config.utilization_bound *. cap in
      if rate > (bound *. (1. +. 1e-6)) +. 1e-6 then
        report t ~time ~kind:Link_overload ~subject:(Link.name g link)
          (Printf.sprintf "delivered %.0f B/s exceeds %.0f B/s (bound %.2f)"
             rate bound t.config.utilization_bound))
    (Sim.current_link_rates sim)

let classify problem =
  (* [Igp.Safety.state_safe] errors start with "forwarding loop" or
     "blackhole". *)
  if String.length problem >= 9 && String.sub problem 0 9 = "blackhole" then
    Blackhole
  else Forwarding_loop

(* Has routing actually changed since the watchdog last looked? Version
   unchanged: certainly not. Version moved: ask the SPF dirty log; an
   empty dirty set means every router still answers exactly as before
   (e.g. a pure metadata bump). *)
let routing_dirty t net =
  let lsdb = Igp.Network.lsdb net in
  let version = Igp.Lsdb.version lsdb in
  if version = t.lsdb_version then false
  else begin
    t.lsdb_version <- version;
    let engine = Igp.Network.engine net in
    let dirty =
      match Igp.Spf_engine.dirtied_since engine ~cursor:t.spf_cursor with
      | Some [] -> false
      | Some _ | None -> true
    in
    t.spf_cursor <- Igp.Spf_engine.dirty_cursor engine;
    dirty
  end

let sweep_safety t sim ~time ~on_unsafe =
  let net = Sim.network sim in
  let prefixes = Igp.Lsdb.prefix_list (Igp.Network.lsdb net) in
  t.n_sweeps <- t.n_sweeps + 1;
  Obs.Metrics.incr m_safety_sweeps;
  Obs.Metrics.observe h_prefixes_checked (float_of_int (List.length prefixes));
  List.iter
    (fun prefix ->
      (* Structural invariant first: [Safety] and the allocator both
         assume canonical entries with positive multiplicities. *)
      Array.iter
        (function
          | None -> ()
          | Some (fib : Igp.Fib.t) -> (
            match Igp.Fib.invariant fib with
            | Ok () -> ()
            | Error reason ->
              report t ~time ~kind:Malformed_fib ~prefix
                ~subject:(Graph.name (Igp.Network.graph net) fib.router)
                reason))
        (Igp.Network.fib_table net prefix);
      match Igp.Safety.state_safe net ~prefix with
      | Ok () -> ()
      | Error problem -> on_unsafe ~time prefix problem)
    prefixes

(* ---- the two checkpoints ---- *)

(* Post-step check: every invariant, with the safety sweep gated on the
   dirty log. Any hit here is a real violation — this state allocated
   traffic. *)
let check t sim =
  let time = Sim.time sim in
  t.n_steps <- t.n_steps + 1;
  Obs.Metrics.incr m_steps;
  check_lies t sim ~time;
  check_utilization t sim ~time;
  if routing_dirty t (Sim.network sim) then
    sweep_safety t sim ~time ~on_unsafe:(fun ~time prefix problem ->
        report t ~time ~kind:(classify problem) ~prefix
          ~subject:(Igp.Prefix.to_string prefix) problem)
  else begin
    t.n_skipped <- t.n_skipped + 1;
    Obs.Metrics.incr m_safety_skipped
  end

(* Pre-routing guard: when a topology change invalidates an installed
   lie set (a failure elsewhere can make a previously verified lie
   loop), purge the prefix's fakes before a single flow is routed
   against the unsafe state — MaxAge-flooding the poisoned lies, which
   any IGP speaker may do. This is the lie quarantine of last resort: a
   live controller's own revalidation (registered earlier on the same
   hook) normally withdraws first; the guard covers dead controllers
   and unowned garbage. A state still unsafe with no lies left to blame
   is a genuine IGP anomaly and is reported as a violation. *)
let guard t sim =
  if routing_dirty t (Sim.network sim) then begin
    let net = Sim.network sim in
    let lsdb = Igp.Network.lsdb net in
    sweep_safety t sim ~time:(Sim.time sim) ~on_unsafe:(fun ~time prefix problem ->
        let blamed =
          List.filter
            (fun (f : Igp.Lsa.fake) -> Igp.Prefix.equal f.prefix prefix)
            (Igp.Lsdb.fakes lsdb)
        in
        if blamed = [] then
          report t ~time ~kind:(classify problem) ~prefix
            ~subject:(Igp.Prefix.to_string prefix) problem
        else begin
          List.iter
            (fun (f : Igp.Lsa.fake) ->
              Igp.Network.retract_fake net ~fake_id:f.fake_id)
            blamed;
          t.n_quarantines <- t.n_quarantines + 1;
          Obs.Metrics.incr m_quarantines;
          if Obs.enabled () then
            Obs.Timeline.record ~time ~source:"watchdog" ~kind:"quarantine"
              [
                ("prefix", Obs.Attr.String (Igp.Prefix.to_string prefix));
                ("fakes_purged", Obs.Attr.Int (List.length blamed));
                ("reason", Obs.Attr.String problem);
              ];
          Queue.iter
            (fun hook -> hook ~prefix ~reason:problem)
            t.quarantine_hooks;
          (* The purge must have restored safety; if not, report. *)
          match Igp.Safety.state_safe net ~prefix with
          | Ok () -> ()
          | Error problem ->
            report t ~time ~kind:(classify problem) ~prefix
              ~subject:(Igp.Prefix.to_string prefix) problem
        end);
    (* The purges themselves bumped the version; absorb them so the
       post-step check does not re-sweep an already-vetted state. *)
    ignore (routing_dirty t net)
  end

let arm ?(config = default_config) sim =
  if config.max_fakes < 0 then invalid_arg "Watchdog.arm: max_fakes";
  if config.max_lie_age <= 0. then invalid_arg "Watchdog.arm: max_lie_age";
  if config.utilization_bound <= 0. then
    invalid_arg "Watchdog.arm: utilization_bound";
  if config.history <= 0 then invalid_arg "Watchdog.arm: history";
  let net = Sim.network sim in
  let t =
    {
      config;
      lsdb_version = Igp.Lsdb.version (Igp.Network.lsdb net);
      spf_cursor = Igp.Spf_engine.dirty_cursor (Igp.Network.engine net);
      ring = Kit.Ring.create ~capacity:config.history;
      n_steps = 0;
      n_sweeps = 0;
      n_skipped = 0;
      n_violations = 0;
      n_quarantines = 0;
      violation_hooks = Queue.create ();
      quarantine_hooks = Queue.create ();
    }
  in
  if config.guard then Sim.on_route_change sim (fun sim -> guard t sim);
  Sim.on_step sim (fun sim -> check t sim);
  t

let check_now t sim =
  (* Force a full sweep regardless of the dirty log (tests, one-shot
     audits): pretend the version moved and the log overflowed. *)
  t.lsdb_version <- -1;
  t.spf_cursor <- min_int;
  check t sim

let pp_violation fmt v =
  Format.fprintf fmt "[%.2f] %s %s%s: %s" v.time
    (kind_to_string v.kind)
    v.subject
    (match v.prefix with
    | Some p -> " (prefix " ^ Igp.Prefix.to_string p ^ ")"
    | None -> "")
    v.detail
