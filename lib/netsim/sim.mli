(** Discrete-time network simulation driver.

    The simulator advances in fixed steps of [dt] seconds. Each step it
    (1) activates/retires flows, (2) re-derives every active flow's path
    from the current FIBs (per-flow ECMP hashing; paths change only when
    the LSDB or the flow set changed), (3) computes the max-min fair
    rate allocation, (4) records per-link and per-flow throughput time
    series, and (5) feeds the monitor, firing the poll hook (the Fibbing
    controller) when a polling cycle completes. Hooks may inject or
    retract fake LSAs; the new routing takes effect the following step,
    which models the (fast) IGP reconvergence after a Fibbing update. *)

type t

type rate_model =
  | Max_min_fair
      (** Instantaneous max-min fair equilibrium ([Fairshare]); the
          default. *)
  | Aimd of Aimd.t
      (** TCP-like ramps; delivered throughput is capped at link
          capacity (excess offered load is dropped at the bottleneck
          queue). *)

val create :
  ?dt:float ->
  ?monitor:Monitor.t ->
  ?rate_model:rate_model ->
  ?convergence:Igp.Convergence.timing ->
  ?aggregation:bool ->
  ?flow_history:bool ->
  Igp.Network.t ->
  Link.capacities ->
  t
(** Default [dt] is 0.5 s.

    With [convergence], LSDB changes are not adopted atomically:
    routers switch from their old FIB to the new one at the times given
    by [Igp.Convergence.installation_schedule] (anchored at the change's
    originating router), and flows are routed against the mixed view in
    between — a flow caught in a transient micro-loop is unroutable (its
    packets are lost) until the loop resolves. Without it (the default),
    reconvergence is instantaneous.

    [aggregation] (default [true]) collapses flows sharing
    (src, prefix, demand, hashed path) into one weighted [Fairshare]
    group; each member's rate is the group's per-member level, which for
    identical flows equals their individual max-min rate, so the
    allocation is unchanged while a 100k-stream flash crowd costs a
    handful of groups per step. Pass [false] to force one group per flow
    (the pre-aggregation behavior, kept for A/B testing); AIMD always
    runs per-flow regardless.

    [flow_history] (default [true]) records the per-flow throughput
    series behind [flow_series]. Disable it for very large populations
    where per-step O(flows) recording would dominate; link series and
    the monitor are unaffected ([Video.Client.of_flow] needs it on). *)

val network : t -> Igp.Network.t

val capacities : t -> Link.capacities

val monitor : t -> Monitor.t option

val time : t -> float

val dt : t -> float
(** The fixed step length the simulation was created with. *)

val add_flow : t -> Flow.t -> unit
(** Schedule a flow; its [start_time]/[duration] govern activation.
    Raises [Invalid_argument] if the id is already known or the start
    time is in the simulated past. *)

val schedule : t -> time:float -> (t -> unit) -> unit
(** Schedule an arbitrary action (e.g. a link failure, a manual fake
    injection) to run at the start of the step covering [time]. Actions
    touching the LSDB take routing effect within the same step. Actions
    run in time order; equal timestamps preserve registration order.
    Insertion is O(log n) (a heap, not a per-insert re-sort). *)

val fail_link : t -> time:float -> Link.t -> unit
(** Schedule a bidirectional link failure: both directions are removed
    from the topology and the IGP reconverges (flows re-hash onto
    surviving paths; flows with no path are starved and reported by
    [unroutable_flows]). The monitor (if any) forgets the link so a dead
    link cannot hold an alarm. Failing an already-failed link is a
    no-op. *)

val restore_link : t -> time:float -> Link.t -> unit
(** Schedule the counterpart of [fail_link]: both directions come back
    with the exact weights the failure removed, the IGP reconverges, and
    flows re-hash (possibly back onto the link). No-op if the link is
    not failed, and deferred while either endpoint is crashed (the
    router recovery restores its own adjacencies). *)

val crash_router : t -> time:float -> Netgraph.Graph.node -> unit
(** Schedule a router crash: all its adjacencies are torn down, its
    LSAs are flushed (any fake attached to or forwarding through it dies
    with it), and the monitor forgets its links. Idempotent while
    crashed. *)

val recover_router : t -> time:float -> Netgraph.Graph.node -> unit
(** Schedule the crashed router's recovery: adjacencies towards live
    neighbors are re-established with their original weights (edges to
    still-crashed neighbors wait for those neighbors) and the router
    re-originates its LSA. No-op if not crashed. *)

val fail_links : t -> time:float -> Link.t list -> unit
(** Schedule the failure of a whole edge set as {e one} action: the step
    that runs it sees the complete cut, never a partially-failed
    intermediate. This is how a partition fault lands atomically. Each
    link fails exactly as under [fail_link]. *)

val restore_links : t -> time:float -> Link.t list -> unit
(** Atomic counterpart of [fail_links]: restore every link of the set in
    one action (the partition heal). *)

val router_crashed : t -> Netgraph.Graph.node -> bool

val on_poll : t -> (t -> Monitor.alarm list -> unit) -> unit
(** Register a controller hook called after every monitor poll (requires
    a monitor). Multiple hooks run in registration order (O(1) per
    registration). *)

val on_step : t -> (t -> unit) -> unit
(** Hook called after every simulation step. *)

val on_route_change : t -> (t -> unit) -> unit
(** Hook called at the {e start} of any step on which the LSDB version
    changed (fault, fake expiry, scheduled injection) — after the
    change landed but before any flow is routed against it. A Fibbing
    controller participates in the IGP, so it hears a flood as fast as
    any router: this is where it revalidates installed lies the change
    may have invalidated, and where the watchdog's guard purges unsafe
    lie sets before they can forward a single packet. Hooks run in
    registration order and may themselves change the LSDB (their own
    changes do not re-trigger the hooks within the step). *)

val run_until : t -> float -> unit
(** Advance the simulation to the given time (multiple of [dt] steps). *)

val active_flows : t -> Flow.t list

val flow_rate : t -> int -> float
(** Current allocated rate of a flow; [0.] if inactive or unroutable. *)

val flow_path : t -> int -> Netgraph.Graph.node list option
(** Current path of an active flow. *)

val flow_series : t -> int -> Kit.Timeseries.t
(** Per-flow throughput history (created on first use). *)

val link_series : t -> Link.t -> Kit.Timeseries.t
(** Per-link throughput history. Links are recorded lazily from the first
    step they carry traffic; use [track_link] beforehand to record
    leading zeros. *)

val track_link : t -> Link.t -> unit

val current_link_rates : t -> (Link.t * float) list
(** Per-link throughput during the last completed step. *)

val unroutable_flows : t -> int list
(** Ids of active flows that currently have no usable path, sorted. *)

val flow_classes : t -> int
(** Number of distinct flow classes currently allocated over — with
    aggregation, the number of (src, prefix, demand, path) groups;
    without, the number of routable active flows. *)
