(** Deterministic, seeded fault injection.

    A {!plan} is a time-ordered schedule of faults drawn from a seed;
    {!inject} arms it against a running simulation. Everything the plan
    breaks it also heals (except, optionally, the controller — whose
    lies must then age out on their own), so chaos properties can demand
    full reconvergence to the fault-free routing after the plan runs
    out. The controller is not a [Netsim] concept, so its crash/restart
    faults are delivered through callbacks. *)

type kind =
  | Link_down of Link.t
  | Link_up of Link.t
  | Router_crash of Netgraph.Graph.node
  | Router_recover of Netgraph.Graph.node
  | Partition of {
      side : Netgraph.Graph.node list;
      cut : Link.t list;
      duration : float;
    }
      (** Cut every edge in [cut] atomically (one scheduled action),
          splitting the graph with [side] on one shore, and restore the
          whole cut [duration] seconds later. The heal is implicit: a
          plan never carries separate [Link_up] events for cut edges. *)
  | Monitor_blackout of float
      (** Lose every monitor sample for this many seconds. *)
  | Monitor_sample_loss of { probability : float; duration : float }
      (** Drop each per-link sample independently. *)
  | Monitor_corruption of {
      probability : float;
      gain : float;
      duration : float;
    }
      (** Corrupt surviving samples: with [probability], scale a reading
          by a uniform factor in [\[0, gain)] ({!Monitor.corruption}) —
          phantom congestion above 1, stale/undercounting below. *)
  | Flooding_loss of { drop : float; duration : float }
      (** Per-hop LSA drop probability; floods pay retransmissions
          ({!Igp.Flooding.loss}) while active. *)
  | Lsa_delay of { max_delay : int; duration : float }
      (** Per-adjacency LSA delivery jitter of up to [max_delay] extra
          flooding rounds ({!Igp.Flooding.jitter}); routers on distinct
          paths from the origin then learn changes in different orders. *)
  | Controller_crash
  | Controller_restart

type event = { time : float; kind : kind }

type plan = { seed : int; until : float; events : event list }

val random_plan :
  ?faults:int ->
  ?margin:float ->
  ?allow_controller_death:bool ->
  seed:int ->
  until:float ->
  Netgraph.Graph.t ->
  plan
(** Draw [faults] fault episodes (default 4) over [\[0.5, until - margin]]
    (default margin 4 s). Same seed, same graph: same plan. Guarantees:
    every link failure, router crash, and partition is healed by
    [until - margin]; no element suffers two overlapping faults; a
    crashed router never overlaps a failed incident link or a cut edge.
    Partition sides are grown by BFS from a random router (at most half
    the graph); when the crossing edges collide with already-faulted
    elements the draw degrades to a blackout. The controller crashes at
    most once and, when [allow_controller_death] (the default), stays
    dead to the end with probability ~0.3. Raises [Invalid_argument]
    when [until <= margin + 1]. *)

val validate : ?margin:float -> plan -> (unit, string) result
(** Replay the plan through a state machine and reject any schedule a
    real run could not perform (double failure, restore of a live link,
    crash overlapping a failed link or a partitioned edge, unhealed
    element at the end, ...). Partitions must additionally heal by
    [until - margin] (default margin 4 s, matching [random_plan]) — the
    quiet tail the reconvergence properties rely on. [random_plan]
    output always validates. *)

val inject :
  ?on_controller_crash:(Sim.t -> unit) ->
  ?on_controller_restart:(Sim.t -> unit) ->
  Sim.t ->
  plan ->
  unit
(** Schedule every event of the plan against the simulation. Monitor
    faults silently no-op when the sim has no monitor; controller faults
    call the given callbacks. Timed sub-PRNGs (sample loss, flooding
    loss) are derived from [plan.seed], so a replay is bit-identical. *)

val to_string : Netgraph.Graph.t -> plan -> string
(** Human-readable schedule, one event per line. *)
