type event = Start of Flow.t | Stop of int

let m_steps = Obs.Metrics.counter "sim.steps"

type rate_model = Max_min_fair | Aimd of Aimd.t

(* A reconvergence in progress: routers still on [old_fib] until their
   entry in [applies_at] passes. *)
type transition = {
  old_fib : (Netgraph.Graph.node * Igp.Lsa.prefix, Igp.Fib.t option) Hashtbl.t;
  applies_at : (Netgraph.Graph.node * float) list; (* absolute times *)
  ends_at : float;
}

type t = {
  net : Igp.Network.t;
  caps : Link.capacities;
  dt : float;
  monitor : Monitor.t option;
  rate_model : rate_model;
  mutable time : float;
  queue : event Events.t;
  mutable pending_actions : (float * (t -> unit)) list; (* time-sorted *)
  mutable active : Flow.t list; (* insertion order *)
  known_ids : (int, unit) Hashtbl.t;
  mutable poll_hooks : (t -> Monitor.alarm list -> unit) list;
  mutable step_hooks : (t -> unit) list;
  (* Routing state, recomputed when stale. *)
  mutable routes : (Fairshare.route * Netgraph.Graph.node list) list;
  mutable unroutable : int list;
  mutable routes_lsdb_version : int;
  mutable routes_dirty : bool;
  (* Convergence modelling (optional). *)
  convergence : Igp.Convergence.timing option;
  mutable transition : transition option;
  fib_snapshot : (Netgraph.Graph.node * Igp.Lsa.prefix, Igp.Fib.t option) Hashtbl.t;
  (* Last step's allocation. *)
  mutable rates : (int * float) list;
  mutable link_rates : (Link.t * float) list;
  flow_histories : (int, Kit.Timeseries.t) Hashtbl.t;
  link_histories : (Link.t, Kit.Timeseries.t) Hashtbl.t;
  (* Failure state: weights of removed directed edges, keyed per failed
     link, so a restore reinstates exactly what the failure took out. *)
  failed_edges : (Netgraph.Graph.node * Netgraph.Graph.node, int) Hashtbl.t;
  (* Crashed routers with their saved adjacencies (succ, pred). *)
  crashed : (Netgraph.Graph.node, (Netgraph.Graph.node * int) list * (Netgraph.Graph.node * int) list) Hashtbl.t;
}

let create ?(dt = 0.5) ?monitor ?(rate_model = Max_min_fair) ?convergence net
    caps =
  if dt <= 0. then invalid_arg "Sim.create: dt must be positive";
  {
    net;
    caps;
    dt;
    monitor;
    rate_model;
    convergence;
    transition = None;
    fib_snapshot = Hashtbl.create 64;
    time = 0.;
    queue = Events.create ();
    pending_actions = [];
    active = [];
    known_ids = Hashtbl.create 64;
    poll_hooks = [];
    step_hooks = [];
    routes = [];
    unroutable = [];
    routes_lsdb_version = -1;
    routes_dirty = true;
    rates = [];
    link_rates = [];
    flow_histories = Hashtbl.create 64;
    link_histories = Hashtbl.create 32;
    failed_edges = Hashtbl.create 8;
    crashed = Hashtbl.create 4;
  }

let network t = t.net

let capacities t = t.caps

let monitor t = t.monitor

let time t = t.time

let add_flow t flow =
  if Hashtbl.mem t.known_ids flow.Flow.id then
    invalid_arg "Sim.add_flow: duplicate flow id";
  if flow.Flow.start_time < t.time then
    invalid_arg "Sim.add_flow: start time in the past";
  Hashtbl.replace t.known_ids flow.Flow.id ();
  Events.schedule t.queue ~time:flow.Flow.start_time (Start flow);
  if Flow.end_time flow < infinity then
    Events.schedule t.queue ~time:(Flow.end_time flow) (Stop flow.Flow.id)

let schedule t ~time action =
  if time < t.time then invalid_arg "Sim.schedule: time in the past";
  t.pending_actions <-
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      ((time, action) :: t.pending_actions)

let router_crashed t r = Hashtbl.mem t.crashed r

let fault_event t ~kind attrs =
  if Obs.enabled () then
    Obs.Timeline.record ~time:t.time ~source:"faults" ~kind attrs

let link_attrs t (u, v) =
  [ ("link", Obs.Attr.String (Link.name (Igp.Network.graph t.net) (u, v))) ]

(* Take one directed edge out of the topology, remembering its weight so
   a restore reinstates it bit-for-bit. Already-failed edges keep their
   original record (failing twice must not forget the true weight). *)
let take_edge t a b =
  let g = Igp.Network.graph t.net in
  match Netgraph.Graph.weight g a b with
  | Some w ->
    if not (Hashtbl.mem t.failed_edges (a, b)) then
      Hashtbl.replace t.failed_edges (a, b) w;
    Netgraph.Graph.remove_edge g a b;
    true
  | None -> false

let put_edge_back t a b =
  match Hashtbl.find_opt t.failed_edges (a, b) with
  | Some w when not (router_crashed t a || router_crashed t b) ->
    Netgraph.Graph.add_edge (Igp.Network.graph t.net) a b ~weight:w;
    Hashtbl.remove t.failed_edges (a, b);
    true
  | Some _ | None -> false

let forget_monitor_link t (a, b) =
  match t.monitor with None -> () | Some m -> Monitor.forget m (a, b)

(* A fake LSA whose forwarding adjacency is gone is meaningless: the
   lied-to router cannot resolve the fake next hop any more. Flush it,
   as a real router flushes a route whose next hop vanished. *)
let flush_dangling_fakes t =
  let g = Igp.Network.graph t.net in
  let lsdb = Igp.Network.lsdb t.net in
  List.iter
    (fun (f : Igp.Lsa.fake) ->
      if not (Netgraph.Graph.has_edge g f.attachment f.forwarding) then begin
        Igp.Lsdb.retract_fake lsdb ~fake_id:f.fake_id;
        fault_event t ~kind:"fake_flushed"
          [
            ("fake", String f.fake_id);
            ("router", String (Netgraph.Graph.name g f.attachment));
          ]
      end)
    (Igp.Lsdb.fakes lsdb)

let fail_link_now t (u, v) =
  let removed = take_edge t u v in
  let removed' = take_edge t v u in
  if removed || removed' then begin
    forget_monitor_link t (u, v);
    forget_monitor_link t (v, u);
    flush_dangling_fakes t;
    Igp.Lsdb.touch ~origin:u (Igp.Network.lsdb t.net);
    fault_event t ~kind:"link_down" (link_attrs t (u, v))
  end

let restore_link_now t (u, v) =
  let restored = put_edge_back t u v in
  let restored' = put_edge_back t v u in
  if restored || restored' then begin
    Igp.Lsdb.touch ~origin:u (Igp.Network.lsdb t.net);
    fault_event t ~kind:"link_up" (link_attrs t (u, v))
  end

let crash_router_now t r =
  if not (router_crashed t r) then begin
    let g = Igp.Network.graph t.net in
    let succ = Netgraph.Graph.succ g r in
    let pred = Netgraph.Graph.pred g r in
    List.iter (fun (n, _) -> Netgraph.Graph.remove_edge g r n) succ;
    List.iter (fun (n, _) -> Netgraph.Graph.remove_edge g n r) pred;
    Hashtbl.replace t.crashed r (succ, pred);
    (match t.monitor with
    | Some m -> Monitor.prune m ~alive:(fun (a, b) -> a <> r && b <> r)
    | None -> ());
    (* The crashed router's LSAs are flushed domain-wide: its router LSA
       ages out (sequence bump below) and any fake attached to — or
       forwarding through — it dies with its adjacencies. The retraction
       bypasses flooding-cost accounting: a dead router floods nothing. *)
    flush_dangling_fakes t;
    Igp.Lsdb.reoriginate (Igp.Network.lsdb t.net) ~origin:r;
    fault_event t ~kind:"router_crash"
      [ ("router", String (Netgraph.Graph.name g r)) ]
  end

let recover_router_now t r =
  match Hashtbl.find_opt t.crashed r with
  | None -> ()
  | Some (succ, pred) ->
    Hashtbl.remove t.crashed r;
    let g = Igp.Network.graph t.net in
    (* Re-add adjacencies towards live neighbors; edges towards a still
       crashed neighbor are handed to that neighbor's crash record so
       its own recovery restores them. *)
    let defer n edge_succ edge_pred =
      match Hashtbl.find_opt t.crashed n with
      | Some (s, p) ->
        Hashtbl.replace t.crashed n (edge_succ @ s, edge_pred @ p)
      | None -> ()
    in
    List.iter
      (fun (n, w) ->
        if router_crashed t n then defer n [] [ (r, w) ]
        else Netgraph.Graph.add_edge g r n ~weight:w)
      succ;
    List.iter
      (fun (n, w) ->
        if router_crashed t n then defer n [ (r, w) ] []
        else Netgraph.Graph.add_edge g n r ~weight:w)
      pred;
    Igp.Lsdb.reoriginate (Igp.Network.lsdb t.net) ~origin:r;
    fault_event t ~kind:"router_recover"
      [ ("router", String (Netgraph.Graph.name g r)) ]

let fail_link t ~time link = schedule t ~time (fun t -> fail_link_now t link)

let restore_link t ~time link =
  schedule t ~time (fun t -> restore_link_now t link)

let crash_router t ~time r = schedule t ~time (fun t -> crash_router_now t r)

let recover_router t ~time r =
  schedule t ~time (fun t -> recover_router_now t r)

let on_poll t hook =
  if t.monitor = None then invalid_arg "Sim.on_poll: no monitor configured";
  t.poll_hooks <- t.poll_hooks @ [ hook ]

let on_step t hook = t.step_hooks <- t.step_hooks @ [ hook ]

let series table key ~make =
  match Hashtbl.find_opt table key with
  | Some s -> s
  | None ->
    let s = make () in
    Hashtbl.replace table key s;
    s

let flow_series t id =
  series t.flow_histories id ~make:(fun () ->
      Kit.Timeseries.create ~name:(Printf.sprintf "flow%d" id))

let link_series t link =
  series t.link_histories link ~make:(fun () ->
      Kit.Timeseries.create ~name:(Link.name (Igp.Network.graph t.net) link))

let track_link t link = ignore (link_series t link)

let active_flows t = t.active

let flow_rate t id = Option.value ~default:0. (List.assoc_opt id t.rates)

let current_link_rates t = t.link_rates

let unroutable_flows t = t.unroutable

let flow_path t id =
  List.find_map
    (fun (route, path) ->
      if route.Fairshare.flow.Flow.id = id then Some path else None)
    t.routes

let active_prefixes t =
  List.sort_uniq compare (List.map (fun f -> f.Flow.prefix) t.active)

(* The FIB a router is currently forwarding with: during a transition,
   routers whose installation time has not passed still use their old
   FIB. *)
let effective_fib t router prefix =
  match t.transition with
  | Some transition
    when (match List.assoc_opt router transition.applies_at with
         | Some apply_at -> t.time < apply_at -. 1e-9
         | None -> true (* never receives the flood: stays old until the end *))
    -> (
    match Hashtbl.find_opt transition.old_fib (router, prefix) with
    | Some fib -> fib
    | None -> Igp.Network.fib t.net ~router prefix)
  | Some _ | None -> Igp.Network.fib t.net ~router prefix

(* Capture the currently-effective FIBs as the "old" side and schedule
   each router's switch to the new routing. *)
let begin_transition t timing =
  let g = Igp.Network.graph t.net in
  let old_fib = Hashtbl.create 64 in
  List.iter
    (fun prefix ->
      List.iter
        (fun router ->
          Hashtbl.replace old_fib (router, prefix)
            (match Hashtbl.find_opt t.fib_snapshot (router, prefix) with
            | Some fib -> fib
            | None -> effective_fib t router prefix))
        (Igp.Network.routers t.net))
    (active_prefixes t);
  let origin =
    Option.value ~default:0 (Igp.Lsdb.last_origin (Igp.Network.lsdb t.net))
  in
  let applies_at =
    List.map
      (fun (router, rel) -> (router, t.time +. rel))
      (Igp.Convergence.installation_schedule timing g ~origin)
  in
  let ends_at =
    List.fold_left (fun acc (_, at) -> max acc at) t.time applies_at
  in
  t.transition <- Some { old_fib; applies_at; ends_at }

let snapshot_fibs t =
  Hashtbl.reset t.fib_snapshot;
  List.iter
    (fun prefix ->
      let table = Igp.Network.fib_table t.net prefix in
      Array.iteri
        (fun router fib -> Hashtbl.replace t.fib_snapshot (router, prefix) fib)
        table)
    (active_prefixes t)

(* Re-derive every active flow's hashed path from the current FIBs. *)
let recompute_routes t =
  let lsdb_version = Igp.Lsdb.version (Igp.Network.lsdb t.net) in
  if lsdb_version <> t.routes_lsdb_version then begin
    (match t.convergence with
    | Some timing when Hashtbl.length t.fib_snapshot > 0 ->
      begin_transition t timing
    | Some _ | None -> ());
    t.routes_lsdb_version <- lsdb_version;
    t.routes_dirty <- true
  end;
  (match t.transition with
  | Some transition when t.time >= transition.ends_at -. 1e-9 ->
    t.transition <- None;
    t.routes_dirty <- true
  | Some _ | None -> ());
  let in_transition = t.transition <> None in
  if t.routes_dirty || in_transition then begin
    let max_hops = Netgraph.Graph.node_count (Igp.Network.graph t.net) in
    let routes = ref [] and unroutable = ref [] in
    List.iter
      (fun flow ->
        match
          Hashing.route_with
            ~fib:(fun router -> effective_fib t router flow.Flow.prefix)
            ~max_hops ~flow_id:flow.Flow.id ~src:flow.Flow.src
        with
        | None -> unroutable := flow.Flow.id :: !unroutable
        | Some path ->
          let rec links acc = function
            | u :: (v :: _ as rest) -> links ((u, v) :: acc) rest
            | _ -> List.rev acc
          in
          routes :=
            ({ Fairshare.flow; links = links [] path }, path) :: !routes)
      t.active;
    t.routes <- List.rev !routes;
    t.unroutable <- List.rev !unroutable;
    t.routes_dirty <- false
  end;
  if t.transition = None then snapshot_fibs t

let step t =
  let step_start = t.time in
  (* Fake-LSA aging: the simulator — i.e. the routers themselves — ages
     lies out, so an orphaned lie expires even when the controller that
     installed it is dead. This is the paper's graceful-degradation
     argument made executable. *)
  let expired = Igp.Lsdb.expire_fakes (Igp.Network.lsdb t.net) ~now:step_start in
  if expired <> [] && Obs.enabled () then
    List.iter
      (fun (f : Igp.Lsa.fake) ->
        Obs.Timeline.record ~time:step_start ~source:"faults"
          ~kind:"lie_expired"
          [ ("fake", String f.fake_id); ("prefix", String f.prefix) ])
      expired;
  (* 0. Run scheduled actions due now (failures, manual injections). *)
  let due, later =
    List.partition (fun (time, _) -> time <= step_start +. 1e-9) t.pending_actions
  in
  t.pending_actions <- later;
  List.iter (fun (_, action) -> action t) due;
  (* 1. Activate and retire flows due at the start of this step. *)
  List.iter
    (fun (_, event) ->
      match event with
      | Start flow ->
        t.active <- t.active @ [ flow ];
        if Obs.enabled () then
          Obs.Timeline.record ~time:step_start ~source:"sim" ~kind:"flow_start"
            [
              ("flow", Int flow.Flow.id);
              ("prefix", String flow.Flow.prefix);
              ("demand", Float flow.Flow.demand);
            ];
        t.routes_dirty <- true
      | Stop id ->
        t.active <- List.filter (fun f -> f.Flow.id <> id) t.active;
        if Obs.enabled () then
          Obs.Timeline.record ~time:step_start ~source:"sim" ~kind:"flow_stop"
            [ ("flow", Int id) ];
        (match t.rate_model with
        | Aimd aimd -> Aimd.forget aimd id
        | Max_min_fair -> ());
        t.routes_dirty <- true)
    (Events.pop_until t.queue ~time:step_start);
  (* 2–3. Route and allocate. *)
  recompute_routes t;
  let fair_routes = List.map fst t.routes in
  (t.rates <-
     (match t.rate_model with
     | Max_min_fair -> Fairshare.allocate t.caps fair_routes
     | Aimd aimd ->
       (* AIMD rates are offered load; deliver at most the bottleneck
          share of each flow (excess is queue drop). *)
       let offered = Aimd.update aimd ~dt:t.dt ~capacities:t.caps fair_routes in
       let loads = Fairshare.link_throughput fair_routes offered in
       List.map
         (fun (route : Fairshare.route) ->
           let id = route.flow.Flow.id in
           let rate = Option.value ~default:0. (List.assoc_opt id offered) in
           let factor =
             List.fold_left
               (fun acc link ->
                 let load = Option.value ~default:0. (List.assoc_opt link loads) in
                 if load > 0. then min acc (Link.capacity t.caps link /. load)
                 else acc)
               1. route.links
           in
           (id, rate *. min 1. factor))
         fair_routes));
  t.link_rates <- Fairshare.link_throughput fair_routes t.rates;
  (* 4. Record histories for this interval, stamped at its start. *)
  List.iter
    (fun (id, rate) ->
      Kit.Timeseries.add (flow_series t id) ~time:step_start rate)
    t.rates;
  List.iter (fun id -> Kit.Timeseries.add (flow_series t id) ~time:step_start 0.) t.unroutable;
  let touched = List.map fst t.link_rates in
  let tracked = Hashtbl.fold (fun l _ acc -> l :: acc) t.link_histories [] in
  List.iter
    (fun link ->
      let rate = Option.value ~default:0. (List.assoc_opt link t.link_rates) in
      Kit.Timeseries.add (link_series t link) ~time:step_start rate)
    (List.sort_uniq Link.compare (touched @ tracked));
  (* 5. Advance time, then feed the monitor and fire hooks. *)
  t.time <- step_start +. t.dt;
  Obs.Metrics.incr m_steps;
  (match t.monitor with
  | None -> ()
  | Some monitor ->
    Monitor.observe monitor ~time:t.time ~dt:t.dt t.link_rates;
    if Monitor.poll_due monitor ~time:t.time then begin
      let alarms = Monitor.poll monitor ~time:t.time in
      (* Alarms are recorded before the poll hooks run, so controller
         reactions always follow their triggering alarm in the merged
         timeline's causal order. *)
      if Obs.enabled () then begin
        Obs.Timeline.record ~time:t.time ~source:"monitor" ~kind:"poll"
          [ ("alarms", Int (List.length alarms)) ];
        let g = Igp.Network.graph t.net in
        List.iter
          (fun (a : Monitor.alarm) ->
            Obs.Timeline.record ~time:t.time ~source:"monitor"
              ~kind:(if a.raised then "alarm" else "clear")
              [
                ("link", String (Link.name g a.link));
                ("utilization", Float a.utilization);
              ])
          alarms
      end;
      List.iter (fun hook -> hook t alarms) t.poll_hooks
    end);
  List.iter (fun hook -> hook t) t.step_hooks

let run_until t until =
  while t.time < until -. 1e-9 do
    step t
  done
