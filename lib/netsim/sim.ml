type event = Start of Flow.t | Stop of int

let m_steps = Obs.Metrics.counter "sim.steps"
let m_step_alloc = Obs.Metrics.counter "sim.step_alloc_words"

type rate_model = Max_min_fair | Aimd of Aimd.t

(* A reconvergence in progress: routers still on [old_fib] until their
   entry in [applies_at] passes. [switch_times] (sorted) and
   [next_switch] track which installation boundaries have been crossed,
   so flows are only re-routed on steps where some router actually
   switched views. *)
type transition = {
  old_fib : (Netgraph.Graph.node * Igp.Lsa.prefix, Igp.Fib.t option) Hashtbl.t;
  applies_at : (Netgraph.Graph.node, float) Hashtbl.t; (* absolute times *)
  switch_times : float array;
  mutable next_switch : int;
  ends_at : float;
}

(* Flows sharing (src, prefix, demand, hashed path) are fluid-identical:
   max-min fairness gives them the same rate, so they collapse into one
   weighted [Fairshare] group and each member's rate is the group's
   per-member level. [solo] pins a class to a single flow (AIMD keeps
   per-flow state; [~aggregation:false] forces it for A/B tests). *)
type class_key = {
  ck_src : Netgraph.Graph.node;
  ck_prefix : Igp.Lsa.prefix;
  ck_demand : float;
  ck_path : Netgraph.Graph.node list;
  ck_solo : int; (* -1 when aggregating, else the member's flow id *)
}

type flow_class = {
  key : class_key;
  c_links : Link.t list; (* distinct directed links of the path *)
  members : (int, unit) Hashtbl.t;
  mutable weight : int;
  mutable rate : float; (* per-member rate of the last completed step *)
}

type t = {
  net : Igp.Network.t;
  caps : Link.capacities;
  dt : float;
  monitor : Monitor.t option;
  rate_model : rate_model;
  aggregate : bool;
  flow_history : bool;
  mutable time : float;
  queue : event Events.t;
  (* Scheduled actions in a heap keyed by time; [seq] breaks equal-time
     ties in registration order. *)
  pending_actions : (int * (t -> unit)) Kit.Heap.t;
  mutable action_seq : int;
  active : (int, Flow.t) Hashtbl.t;
  known_ids : (int, unit) Hashtbl.t;
  poll_hooks : (t -> Monitor.alarm list -> unit) Queue.t;
  step_hooks : (t -> unit) Queue.t;
  (* Pre-routing hooks: fired after fake expiry and scheduled actions,
     before flows are (re)routed, on steps where the LSDB changed.
     [route_change_version] tracks the last version they saw. *)
  route_change_hooks : (t -> unit) Queue.t;
  mutable route_change_version : int;
  (* Routing state: per-flow cached hashed path ([None] = unroutable)
     and the flow classes built over those paths. *)
  paths : (int, Netgraph.Graph.node list option) Hashtbl.t;
  classes : (class_key, flow_class) Hashtbl.t;
  class_of : (int, flow_class) Hashtbl.t;
  unroutable_set : (int, unit) Hashtbl.t;
  mutable pending_starts : Flow.t list; (* reversed arrival order *)
  mutable routes_lsdb_version : int;
  mutable spf_cursor : int;
  (* Convergence modelling (optional). *)
  convergence : Igp.Convergence.timing option;
  mutable transition : transition option;
  fib_snapshot : (Netgraph.Graph.node * Igp.Lsa.prefix, Igp.Fib.t option) Hashtbl.t;
  (* Last step's per-link throughput, sorted by link. *)
  mutable link_rates : (Link.t * float) list;
  flow_histories : (int, Kit.Timeseries.t) Hashtbl.t;
  link_histories : (Link.t, Kit.Timeseries.t) Hashtbl.t;
  (* Failure state: weights of removed directed edges, keyed per failed
     link, so a restore reinstates exactly what the failure took out. *)
  failed_edges : (Netgraph.Graph.node * Netgraph.Graph.node, int) Hashtbl.t;
  (* Crashed routers with their saved adjacencies (succ, pred). *)
  crashed : (Netgraph.Graph.node, (Netgraph.Graph.node * int) list * (Netgraph.Graph.node * int) list) Hashtbl.t;
}

let create ?(dt = 0.5) ?monitor ?(rate_model = Max_min_fair) ?convergence
    ?(aggregation = true) ?(flow_history = true) net caps =
  if dt <= 0. then invalid_arg "Sim.create: dt must be positive";
  let aggregate =
    (* AIMD evolves per-flow state, so its classes stay singletons. *)
    aggregation && (match rate_model with Max_min_fair -> true | Aimd _ -> false)
  in
  {
    net;
    caps;
    dt;
    monitor;
    rate_model;
    aggregate;
    flow_history;
    convergence;
    transition = None;
    fib_snapshot = Hashtbl.create 64;
    time = 0.;
    queue = Events.create ();
    pending_actions = Kit.Heap.create ();
    action_seq = 0;
    active = Hashtbl.create 256;
    known_ids = Hashtbl.create 256;
    poll_hooks = Queue.create ();
    step_hooks = Queue.create ();
    route_change_hooks = Queue.create ();
    route_change_version = Igp.Lsdb.version (Igp.Network.lsdb net);
    paths = Hashtbl.create 256;
    classes = Hashtbl.create 64;
    class_of = Hashtbl.create 256;
    unroutable_set = Hashtbl.create 16;
    pending_starts = [];
    routes_lsdb_version = -1;
    spf_cursor = 0;
    link_rates = [];
    flow_histories = Hashtbl.create 64;
    link_histories = Hashtbl.create 32;
    failed_edges = Hashtbl.create 8;
    crashed = Hashtbl.create 4;
  }

let network t = t.net

let capacities t = t.caps

let monitor t = t.monitor

let time t = t.time

let dt t = t.dt

let add_flow t flow =
  if Hashtbl.mem t.known_ids flow.Flow.id then
    invalid_arg "Sim.add_flow: duplicate flow id";
  if flow.Flow.start_time < t.time then
    invalid_arg "Sim.add_flow: start time in the past";
  Hashtbl.replace t.known_ids flow.Flow.id ();
  Events.schedule t.queue ~time:flow.Flow.start_time (Start flow);
  if Flow.end_time flow < infinity then
    Events.schedule t.queue ~time:(Flow.end_time flow) (Stop flow.Flow.id)

let schedule t ~time action =
  if time < t.time then invalid_arg "Sim.schedule: time in the past";
  t.action_seq <- t.action_seq + 1;
  Kit.Heap.push t.pending_actions ~priority:time (t.action_seq, action)

let router_crashed t r = Hashtbl.mem t.crashed r

let fault_event t ~kind attrs =
  if Obs.enabled () then
    Obs.Timeline.record ~time:t.time ~source:"faults" ~kind attrs

let link_attrs t (u, v) =
  [ ("link", Obs.Attr.String (Link.name (Igp.Network.graph t.net) (u, v))) ]

(* Take one directed edge out of the topology, remembering its weight so
   a restore reinstates it bit-for-bit. Already-failed edges keep their
   original record (failing twice must not forget the true weight). *)
let take_edge t a b =
  let g = Igp.Network.graph t.net in
  match Netgraph.Graph.weight g a b with
  | Some w ->
    if not (Hashtbl.mem t.failed_edges (a, b)) then
      Hashtbl.replace t.failed_edges (a, b) w;
    Netgraph.Graph.remove_edge g a b;
    true
  | None -> false

let put_edge_back t a b =
  match Hashtbl.find_opt t.failed_edges (a, b) with
  | Some w when not (router_crashed t a || router_crashed t b) ->
    Netgraph.Graph.add_edge (Igp.Network.graph t.net) a b ~weight:w;
    Hashtbl.remove t.failed_edges (a, b);
    true
  | Some _ | None -> false

let forget_monitor_link t (a, b) =
  match t.monitor with None -> () | Some m -> Monitor.forget m (a, b)

(* A fake LSA whose forwarding adjacency is gone is meaningless: the
   lied-to router cannot resolve the fake next hop any more. Flush it,
   as a real router flushes a route whose next hop vanished. *)
let flush_dangling_fakes t =
  let g = Igp.Network.graph t.net in
  let lsdb = Igp.Network.lsdb t.net in
  List.iter
    (fun (f : Igp.Lsa.fake) ->
      if not (Netgraph.Graph.has_edge g f.attachment f.forwarding) then begin
        Igp.Lsdb.retract_fake lsdb ~fake_id:f.fake_id;
        fault_event t ~kind:"fake_flushed"
          [
            ("fake", String f.fake_id);
            ("router", String (Netgraph.Graph.name g f.attachment));
          ]
      end)
    (Igp.Lsdb.fakes lsdb)

let fail_link_now t (u, v) =
  let removed = take_edge t u v in
  let removed' = take_edge t v u in
  if removed || removed' then begin
    forget_monitor_link t (u, v);
    forget_monitor_link t (v, u);
    flush_dangling_fakes t;
    Igp.Lsdb.touch ~origin:u (Igp.Network.lsdb t.net);
    fault_event t ~kind:"link_down" (link_attrs t (u, v))
  end

let restore_link_now t (u, v) =
  let restored = put_edge_back t u v in
  let restored' = put_edge_back t v u in
  if restored || restored' then begin
    Igp.Lsdb.touch ~origin:u (Igp.Network.lsdb t.net);
    fault_event t ~kind:"link_up" (link_attrs t (u, v))
  end

let crash_router_now t r =
  if not (router_crashed t r) then begin
    let g = Igp.Network.graph t.net in
    let succ = Netgraph.Graph.succ g r in
    let pred = Netgraph.Graph.pred g r in
    List.iter (fun (n, _) -> Netgraph.Graph.remove_edge g r n) succ;
    List.iter (fun (n, _) -> Netgraph.Graph.remove_edge g n r) pred;
    Hashtbl.replace t.crashed r (succ, pred);
    (match t.monitor with
    | Some m -> Monitor.prune m ~alive:(fun (a, b) -> a <> r && b <> r)
    | None -> ());
    (* The crashed router's LSAs are flushed domain-wide: its router LSA
       ages out (sequence bump below) and any fake attached to — or
       forwarding through — it dies with its adjacencies. The retraction
       bypasses flooding-cost accounting: a dead router floods nothing. *)
    flush_dangling_fakes t;
    Igp.Lsdb.reoriginate (Igp.Network.lsdb t.net) ~origin:r;
    fault_event t ~kind:"router_crash"
      [ ("router", String (Netgraph.Graph.name g r)) ]
  end

let recover_router_now t r =
  match Hashtbl.find_opt t.crashed r with
  | None -> ()
  | Some (succ, pred) ->
    Hashtbl.remove t.crashed r;
    let g = Igp.Network.graph t.net in
    (* Re-add adjacencies towards live neighbors; edges towards a still
       crashed neighbor are handed to that neighbor's crash record so
       its own recovery restores them. *)
    let defer n edge_succ edge_pred =
      match Hashtbl.find_opt t.crashed n with
      | Some (s, p) ->
        Hashtbl.replace t.crashed n (edge_succ @ s, edge_pred @ p)
      | None -> ()
    in
    List.iter
      (fun (n, w) ->
        if router_crashed t n then defer n [] [ (r, w) ]
        else Netgraph.Graph.add_edge g r n ~weight:w)
      succ;
    List.iter
      (fun (n, w) ->
        if router_crashed t n then defer n [ (r, w) ] []
        else Netgraph.Graph.add_edge g n r ~weight:w)
      pred;
    Igp.Lsdb.reoriginate (Igp.Network.lsdb t.net) ~origin:r;
    fault_event t ~kind:"router_recover"
      [ ("router", String (Netgraph.Graph.name g r)) ]

(* Cut (or heal) a whole edge set in one scheduled action, so the
   intermediate one-edge-down states of a partition are never exposed to
   routing: the step that runs the action sees the complete cut. *)
let fail_links_now t links =
  List.iter (fun link -> fail_link_now t link) links

let restore_links_now t links =
  List.iter (fun link -> restore_link_now t link) links

let fail_link t ~time link = schedule t ~time (fun t -> fail_link_now t link)

let restore_link t ~time link =
  schedule t ~time (fun t -> restore_link_now t link)

let fail_links t ~time links =
  schedule t ~time (fun t -> fail_links_now t links)

let restore_links t ~time links =
  schedule t ~time (fun t -> restore_links_now t links)

let crash_router t ~time r = schedule t ~time (fun t -> crash_router_now t r)

let recover_router t ~time r =
  schedule t ~time (fun t -> recover_router_now t r)

let on_poll t hook =
  if t.monitor = None then invalid_arg "Sim.on_poll: no monitor configured";
  Queue.add hook t.poll_hooks

let on_step t hook = Queue.add hook t.step_hooks

let on_route_change t hook = Queue.add hook t.route_change_hooks

let series table key ~make =
  match Hashtbl.find_opt table key with
  | Some s -> s
  | None ->
    let s = make () in
    Hashtbl.replace table key s;
    s

let flow_series t id =
  series t.flow_histories id ~make:(fun () ->
      Kit.Timeseries.create ~name:(Printf.sprintf "flow%d" id))

let link_series t link =
  series t.link_histories link ~make:(fun () ->
      Kit.Timeseries.create ~name:(Link.name (Igp.Network.graph t.net) link))

let track_link t link = ignore (link_series t link)

let active_flows t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.active []
  |> List.sort (fun (a : Flow.t) b -> compare a.id b.id)

let flow_rate t id =
  match Hashtbl.find_opt t.class_of id with Some c -> c.rate | None -> 0.

let current_link_rates t = t.link_rates

let unroutable_flows t =
  Hashtbl.fold (fun id () acc -> id :: acc) t.unroutable_set []
  |> List.sort compare

let flow_path t id = Option.join (Hashtbl.find_opt t.paths id)

let flow_classes t = Hashtbl.length t.classes

let active_prefixes t =
  Hashtbl.fold (fun _ f acc -> f.Flow.prefix :: acc) t.active []
  |> List.sort_uniq compare

(* The FIB a router is currently forwarding with: during a transition,
   routers whose installation time has not passed still use their old
   FIB. *)
let effective_fib t router prefix =
  match t.transition with
  | Some transition
    when (match Hashtbl.find_opt transition.applies_at router with
         | Some apply_at -> t.time < apply_at -. 1e-9
         | None -> true (* never receives the flood: stays old until the end *))
    -> (
    match Hashtbl.find_opt transition.old_fib (router, prefix) with
    | Some fib -> fib
    | None -> Igp.Network.fib t.net ~router prefix)
  | Some _ | None -> Igp.Network.fib t.net ~router prefix

(* Capture the currently-effective FIBs as the "old" side and schedule
   each router's switch to the new routing. *)
let begin_transition t timing =
  let g = Igp.Network.graph t.net in
  let old_fib = Hashtbl.create 64 in
  List.iter
    (fun prefix ->
      List.iter
        (fun router ->
          Hashtbl.replace old_fib (router, prefix)
            (match Hashtbl.find_opt t.fib_snapshot (router, prefix) with
            | Some fib -> fib
            | None -> effective_fib t router prefix))
        (Igp.Network.routers t.net))
    (active_prefixes t);
  let origin =
    Option.value ~default:0 (Igp.Lsdb.last_origin (Igp.Network.lsdb t.net))
  in
  let schedule = Igp.Convergence.installation_schedule timing g ~origin in
  let applies_at = Hashtbl.create (max 8 (List.length schedule)) in
  List.iter
    (fun (router, rel) -> Hashtbl.replace applies_at router (t.time +. rel))
    schedule;
  let switch_times =
    Array.of_list (List.map (fun (_, rel) -> t.time +. rel) schedule)
  in
  Array.sort compare switch_times;
  let ends_at = Array.fold_left max t.time switch_times in
  (* Switches at or before the current instant are already effective:
     the rewalk of this very step sees them. *)
  let next_switch = ref 0 in
  while
    !next_switch < Array.length switch_times
    && t.time >= switch_times.(!next_switch) -. 1e-9
  do
    incr next_switch
  done;
  t.transition <-
    Some { old_fib; applies_at; switch_times; next_switch = !next_switch; ends_at }

let snapshot_fibs t =
  Hashtbl.reset t.fib_snapshot;
  List.iter
    (fun prefix ->
      let table = Igp.Network.fib_table t.net prefix in
      Array.iteri
        (fun router fib -> Hashtbl.replace t.fib_snapshot (router, prefix) fib)
        table)
    (active_prefixes t)

(* ---- flow classes ---- *)

let links_of_path path =
  let rec go acc = function
    | u :: (v :: _ as rest) -> go ((u, v) :: acc) rest
    | _ -> acc
  in
  go [] path

let join_class t (flow : Flow.t) path =
  let key =
    {
      ck_src = flow.src;
      ck_prefix = flow.prefix;
      ck_demand = flow.demand;
      ck_path = path;
      ck_solo = (if t.aggregate then -1 else flow.id);
    }
  in
  let c =
    match Hashtbl.find_opt t.classes key with
    | Some c -> c
    | None ->
      let c =
        {
          key;
          c_links = List.sort_uniq Link.compare (links_of_path path);
          members = Hashtbl.create 4;
          weight = 0;
          rate = 0.;
        }
      in
      Hashtbl.replace t.classes key c;
      c
  in
  c.weight <- c.weight + 1;
  Hashtbl.replace c.members flow.id ();
  Hashtbl.replace t.class_of flow.id c

let leave_class t id =
  match Hashtbl.find_opt t.class_of id with
  | None -> ()
  | Some c ->
    Hashtbl.remove c.members id;
    c.weight <- c.weight - 1;
    Hashtbl.remove t.class_of id;
    if c.weight = 0 then Hashtbl.remove t.classes c.key

let route_flow t (flow : Flow.t) =
  let max_hops = Netgraph.Graph.node_count (Igp.Network.graph t.net) in
  Hashing.route_with
    ~fib:(fun router -> effective_fib t router flow.prefix)
    ~max_hops ~flow_id:flow.id ~src:flow.src

(* (Re)derive one flow's hashed path and update its class membership;
   a flow whose path did not change keeps its class untouched. *)
let place_flow t (flow : Flow.t) =
  let id = flow.id in
  let path = route_flow t flow in
  let unchanged =
    match Hashtbl.find_opt t.paths id with Some old -> old = path | None -> false
  in
  if not unchanged then begin
    if Hashtbl.mem t.class_of id then leave_class t id
    else Hashtbl.remove t.unroutable_set id;
    Hashtbl.replace t.paths id path;
    match path with
    | Some p -> join_class t flow p
    | None -> Hashtbl.replace t.unroutable_set id ()
  end

let remove_flow t id =
  Hashtbl.remove t.active id;
  Hashtbl.remove t.paths id;
  if Hashtbl.mem t.class_of id then leave_class t id
  else Hashtbl.remove t.unroutable_set id

let rewalk_all t = Hashtbl.iter (fun _ flow -> place_flow t flow) t.active

(* Re-walk only flows whose cached path crosses a dirtied router —
   plus every currently-unroutable flow, which may have regained a
   path. Flows whose path avoids all dirtied routers kept their exact
   FIB answers (see [Spf_engine.dirtied_since]), so their hashed walk
   would reproduce the cached path verbatim. *)
let rewalk_dirty t dirty_routers =
  if dirty_routers <> [] || Hashtbl.length t.unroutable_set > 0 then begin
    let dirty = Hashtbl.create 16 in
    List.iter (fun r -> Hashtbl.replace dirty r ()) dirty_routers;
    let todo = ref [] in
    Hashtbl.iter
      (fun id path ->
        let touched =
          match path with
          | None -> true
          | Some p -> List.exists (Hashtbl.mem dirty) p
        in
        if touched then todo := id :: !todo)
      t.paths;
    List.iter
      (fun id ->
        match Hashtbl.find_opt t.active id with
        | Some flow -> place_flow t flow
        | None -> ())
      !todo
  end

(* Bring routing up to date: begin/advance/end convergence transitions,
   re-walk affected flows (all of them during a transition, where every
   router's view is time-dependent; only the ones crossing dirtied
   routers otherwise), then route newly started flows. *)
let recompute_routes t =
  let engine = Igp.Network.engine t.net in
  let lsdb_version = Igp.Lsdb.version (Igp.Network.lsdb t.net) in
  let lsdb_changed = lsdb_version <> t.routes_lsdb_version in
  if lsdb_changed then begin
    (match t.convergence with
    | Some timing when Hashtbl.length t.fib_snapshot > 0 ->
      begin_transition t timing
    | Some _ | None -> ());
    t.routes_lsdb_version <- lsdb_version
  end;
  let transition_ended =
    match t.transition with
    | Some transition when t.time >= transition.ends_at -. 1e-9 ->
      t.transition <- None;
      true
    | Some _ | None -> false
  in
  let boundary_crossed =
    match t.transition with
    | None -> false
    | Some tr ->
      let crossed = ref false in
      while
        tr.next_switch < Array.length tr.switch_times
        && t.time >= tr.switch_times.(tr.next_switch) -. 1e-9
      do
        tr.next_switch <- tr.next_switch + 1;
        crossed := true
      done;
      !crossed
  in
  if lsdb_changed || transition_ended || boundary_crossed then begin
    if t.transition <> None || transition_ended then rewalk_all t
    else begin
      match Igp.Spf_engine.dirtied_since engine ~cursor:t.spf_cursor with
      | None -> rewalk_all t
      | Some dirty -> rewalk_dirty t dirty
    end;
    t.spf_cursor <- Igp.Spf_engine.dirty_cursor engine
  end;
  (match t.pending_starts with
  | [] -> ()
  | starts ->
    List.iter (place_flow t) (List.rev starts);
    t.pending_starts <- [];
    t.spf_cursor <- Igp.Spf_engine.dirty_cursor engine);
  if t.transition = None then snapshot_fibs t

(* ---- allocation ---- *)

(* Matches Fairshare.par_threshold: under ~500 classes the per-class
   walk is too cheap to shard. *)
let par_threshold = 512

let allocate_max_min t =
  let classes = Hashtbl.fold (fun _ c acc -> c :: acc) t.classes [] in
  let arr = Array.of_list classes in
  let n = Array.length arr in
  let pool = Igp.Spf_engine.pool (Igp.Network.engine t.net) in
  let par = Kit.Pool.domain_count pool > 1 && n >= par_threshold in
  let demands = Array.make n 0. in
  let links = Array.make n [] in
  let weights = Array.make n 1 in
  let gather i =
    let c = arr.(i) in
    demands.(i) <- c.key.ck_demand;
    links.(i) <- c.c_links;
    weights.(i) <- c.weight
  in
  if par then Kit.Pool.iter pool ~n gather
  else
    for i = 0 to n - 1 do
      gather i
    done;
  let rates =
    Fairshare.water_fill
      ?pool:(if par then Some pool else None)
      t.caps ~demands ~links ~weights
  in
  let scatter i = arr.(i).rate <- rates.(i) in
  if par then Kit.Pool.iter pool ~n scatter
  else
    for i = 0 to n - 1 do
      scatter i
    done

let allocate_aimd t aimd =
  (* Classes are singletons here ([create] disables aggregation for
     AIMD), so each class maps 1:1 to a flow and its route. *)
  let routes =
    Hashtbl.fold
      (fun id c acc ->
        let flow = Hashtbl.find t.active id in
        ({ Fairshare.flow; links = c.c_links }, c) :: acc)
      t.class_of []
  in
  let fair_routes = List.map fst routes in
  let offered = Aimd.update aimd ~dt:t.dt ~capacities:t.caps fair_routes in
  let offered_tbl : (int, float) Hashtbl.t =
    Hashtbl.create (max 16 (2 * List.length offered))
  in
  List.iter (fun (id, rate) -> Hashtbl.replace offered_tbl id rate) offered;
  (* Offered load per link at the AIMD rates; delivery is capped at the
     bottleneck share of each flow (excess is queue drop). *)
  let loads : (Link.t, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ((route : Fairshare.route), _) ->
      let rate =
        Option.value ~default:0. (Hashtbl.find_opt offered_tbl route.flow.Flow.id)
      in
      List.iter
        (fun link ->
          Hashtbl.replace loads link
            (rate +. Option.value ~default:0. (Hashtbl.find_opt loads link)))
        route.links)
    routes;
  List.iter
    (fun ((route : Fairshare.route), c) ->
      let rate =
        Option.value ~default:0. (Hashtbl.find_opt offered_tbl route.flow.Flow.id)
      in
      let factor =
        List.fold_left
          (fun acc link ->
            let load = Option.value ~default:0. (Hashtbl.find_opt loads link) in
            if load > 0. then min acc (Link.capacity t.caps link /. load)
            else acc)
          1. route.links
      in
      c.rate <- rate *. min 1. factor)
    routes

let step_body t =
  let step_start = t.time in
  (* Fake-LSA aging: the simulator — i.e. the routers themselves — ages
     lies out, so an orphaned lie expires even when the controller that
     installed it is dead. This is the paper's graceful-degradation
     argument made executable. *)
  let expired = Igp.Lsdb.expire_fakes (Igp.Network.lsdb t.net) ~now:step_start in
  if expired <> [] && Obs.enabled () then
    List.iter
      (fun (f : Igp.Lsa.fake) ->
        Obs.Timeline.record ~time:step_start ~source:"faults"
          ~kind:"lie_expired"
          [
            ("fake", String f.fake_id);
            ("prefix", String (Igp.Prefix.to_string f.prefix));
          ])
      expired;
  (* 0. Run scheduled actions due now (failures, manual injections),
     ordered by time then registration order for equal timestamps. The
     common step has nothing due — one heap peek, no allocation. *)
  (match Kit.Heap.peek t.pending_actions with
  | Some (time, _) when time <= step_start +. 1e-9 ->
    let due = ref [] in
    let rec drain () =
      match Kit.Heap.peek t.pending_actions with
      | Some (time, (seq, action)) when time <= step_start +. 1e-9 ->
        ignore (Kit.Heap.pop t.pending_actions);
        due := (time, seq, action) :: !due;
        drain ()
      | Some _ | None -> ()
    in
    drain ();
    let due =
      List.sort (fun (ta, sa, _) (tb, sb, _) -> compare (ta, sa) (tb, sb)) !due
    in
    List.iter (fun (_, _, action) -> action t) due
  | Some _ | None -> ());
  (* 0b. Route-change hooks: the control plane reacts to LSDB changes
     (faults, expiries, manual injections) {e before} flows are routed
     against the new state — a Fibbing controller participates in the
     IGP, so it learns of a flood as fast as any router and can withdraw
     a lie the change invalidated within the same convergence. Hooks may
     themselves change the LSDB (withdrawals); the version marker is
     re-read after they run so their own changes do not re-trigger. *)
  if not (Queue.is_empty t.route_change_hooks) then begin
    let lsdb = Igp.Network.lsdb t.net in
    if Igp.Lsdb.version lsdb <> t.route_change_version then begin
      Queue.iter (fun hook -> hook t) t.route_change_hooks;
      t.route_change_version <- Igp.Lsdb.version lsdb
    end
  end;
  (* 1. Activate and retire flows due at the start of this step. *)
  List.iter
    (fun (_, event) ->
      match event with
      | Start flow ->
        (* Resolve the flow's destination against the announced prefixes
           by longest-prefix match: a flow aimed inside an announced
           block is governed by that block's announcement (exact matches
           — every named prefix — resolve to themselves). The flow then
           carries the governing prefix, so classes, FIB snapshots and
           the controller all key on what the routers actually route. *)
        let flow =
          match Igp.Network.resolve t.net flow.Flow.prefix with
          | Some governing
            when not (Igp.Prefix.equal governing flow.Flow.prefix) ->
            { flow with Flow.prefix = governing }
          | Some _ | None -> flow
        in
        Hashtbl.replace t.active flow.Flow.id flow;
        t.pending_starts <- flow :: t.pending_starts;
        if Obs.enabled () then
          Obs.Timeline.record ~time:step_start ~source:"sim" ~kind:"flow_start"
            [
              ("flow", Int flow.Flow.id);
              ("prefix", String (Igp.Prefix.to_string flow.Flow.prefix));
              ("demand", Float flow.Flow.demand);
            ]
      | Stop id ->
        remove_flow t id;
        t.pending_starts <-
          List.filter (fun (f : Flow.t) -> f.id <> id) t.pending_starts;
        if Obs.enabled () then
          Obs.Timeline.record ~time:step_start ~source:"sim" ~kind:"flow_stop"
            [ ("flow", Int id) ];
        (match t.rate_model with
        | Aimd aimd -> Aimd.forget aimd id
        | Max_min_fair -> ()))
    (Events.pop_until t.queue ~time:step_start);
  (* 2–3. Route and allocate. *)
  recompute_routes t;
  (match t.rate_model with
  | Max_min_fair -> allocate_max_min t
  | Aimd aimd -> allocate_aimd t aimd);
  let link_tbl : (Link.t, float) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ c ->
      let total = float_of_int c.weight *. c.rate in
      List.iter
        (fun link ->
          Hashtbl.replace link_tbl link
            (total +. Option.value ~default:0. (Hashtbl.find_opt link_tbl link)))
        c.c_links)
    t.classes;
  t.link_rates <-
    Hashtbl.fold (fun link rate acc -> (link, rate) :: acc) link_tbl []
    |> List.sort (fun (a, _) (b, _) -> Link.compare a b);
  (* 4. Record histories for this interval, stamped at its start. *)
  if t.flow_history then begin
    Hashtbl.iter
      (fun id c -> Kit.Timeseries.add (flow_series t id) ~time:step_start c.rate)
      t.class_of;
    Hashtbl.iter
      (fun id () -> Kit.Timeseries.add (flow_series t id) ~time:step_start 0.)
      t.unroutable_set
  end;
  (* Every link with an existing history gets this step's rate (0. when
     idle); links carrying traffic for the first time open a history.
     Appends target distinct series, so no ordering or union list is
     needed — the two passes replace a per-step [touched @ tracked]
     [sort_uniq], which allocated on every step of every run. *)
  Hashtbl.iter
    (fun link series ->
      let rate = Option.value ~default:0. (Hashtbl.find_opt link_tbl link) in
      Kit.Timeseries.add series ~time:step_start rate)
    t.link_histories;
  List.iter
    (fun (link, rate) ->
      if not (Hashtbl.mem t.link_histories link) then
        Kit.Timeseries.add (link_series t link) ~time:step_start rate)
    t.link_rates;
  (* 5. Advance time, then feed the monitor and fire hooks. *)
  t.time <- step_start +. t.dt;
  Obs.Metrics.incr m_steps;
  (match t.monitor with
  | None -> ()
  | Some monitor ->
    Monitor.observe monitor ~time:t.time ~dt:t.dt t.link_rates;
    if Monitor.poll_due monitor ~time:t.time then begin
      let alarms = Monitor.poll monitor ~time:t.time in
      (* Alarms are recorded before the poll hooks run, so controller
         reactions always follow their triggering alarm in the merged
         timeline's causal order. *)
      if Obs.enabled () then begin
        Obs.Timeline.record ~time:t.time ~source:"monitor" ~kind:"poll"
          [ ("alarms", Int (List.length alarms)) ];
        let g = Igp.Network.graph t.net in
        List.iter
          (fun (a : Monitor.alarm) ->
            Obs.Timeline.record ~time:t.time ~source:"monitor"
              ~kind:(if a.raised then "alarm" else "clear")
              [
                ("link", String (Link.name g a.link));
                ("utilization", Float a.utilization);
              ])
          alarms
      end;
      Queue.iter (fun hook -> hook t alarms) t.poll_hooks
    end);
  Queue.iter (fun hook -> hook t) t.step_hooks

let step t =
  if Obs.enabled () then
    Obs.Prof.with_span "sim.step" ~alloc_counter:m_step_alloc (fun () ->
        step_body t)
  else step_body t

let run_until t until =
  while t.time < until -. 1e-9 do
    step t
  done
