module Graph = Netgraph.Graph

type kind =
  | Link_down of Link.t
  | Link_up of Link.t
  | Router_crash of Graph.node
  | Router_recover of Graph.node
  | Partition of { side : Graph.node list; cut : Link.t list; duration : float }
  | Monitor_blackout of float
  | Monitor_sample_loss of { probability : float; duration : float }
  | Monitor_corruption of {
      probability : float;
      gain : float;
      duration : float;
    }
  | Flooding_loss of { drop : float; duration : float }
  | Lsa_delay of { max_delay : int; duration : float }
  | Controller_crash
  | Controller_restart

type event = { time : float; kind : kind }

type plan = { seed : int; until : float; events : event list }

let norm (u, v) = if u <= v then (u, v) else (v, u)

let kind_to_string g = function
  | Link_down l -> "link_down " ^ Link.name g l
  | Link_up l -> "link_up " ^ Link.name g l
  | Router_crash r -> "router_crash " ^ Graph.name g r
  | Router_recover r -> "router_recover " ^ Graph.name g r
  | Partition { side; cut; duration } ->
    Printf.sprintf "partition {%s} cut %s %.1fs"
      (String.concat ", " (List.map (Graph.name g) side))
      (String.concat ", " (List.map (Link.name g) cut))
      duration
  | Monitor_blackout d -> Printf.sprintf "monitor_blackout %.1fs" d
  | Monitor_sample_loss { probability; duration } ->
    Printf.sprintf "sample_loss p=%.2f %.1fs" probability duration
  | Monitor_corruption { probability; gain; duration } ->
    Printf.sprintf "monitor_corruption p=%.2f gain=%.1f %.1fs" probability
      gain duration
  | Flooding_loss { drop; duration } ->
    Printf.sprintf "flooding_loss p=%.2f %.1fs" drop duration
  | Lsa_delay { max_delay; duration } ->
    Printf.sprintf "lsa_delay <=%d rounds %.1fs" max_delay duration
  | Controller_crash -> "controller_crash"
  | Controller_restart -> "controller_restart"

let to_string g plan =
  String.concat "\n"
    (List.map
       (fun e -> Printf.sprintf "%6.2f  %s" e.time (kind_to_string g e.kind))
       plan.events)

(* Replay the plan through a small state machine; any transition a real
   run could not perform (restoring a link that is up, crashing a router
   that holds a failed link, ...) is a malformed plan. *)
let validate ?(margin = 4.) plan =
  let down = Hashtbl.create 8 and crashed = Hashtbl.create 4 in
  (* Partitioned edges heal on their own at a recorded time; they are
     released before judging each event so post-heal faults are legal. *)
  let partitioned = Hashtbl.create 8 in
  let release now =
    Hashtbl.fold
      (fun l heal acc -> if heal <= now +. 1e-9 then l :: acc else acc)
      partitioned []
    |> List.iter (Hashtbl.remove partitioned)
  in
  let dead = ref false in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let incident r l = fst l = r || snd l = r in
  let rec go last = function
    | [] ->
      if Hashtbl.length down > 0 then err "a link is never restored"
      else if Hashtbl.length crashed > 0 then err "a router never recovers"
      else Ok ()
    | e :: rest ->
      release e.time;
      if e.time < last -. 1e-9 then err "events not sorted by time"
      else if e.time < 0. || e.time > plan.until then
        err "event at %.2f outside [0, %.2f]" e.time plan.until
      else
        (* Lazy: the recursion must see this event's state changes. *)
        let continue () = go e.time rest in
        (match e.kind with
        | Link_down l ->
          let l = norm l in
          if Hashtbl.mem down l then err "link failed twice"
          else if Hashtbl.mem partitioned l then
            err "link fault on a partitioned edge"
          else if Hashtbl.mem crashed (fst l) || Hashtbl.mem crashed (snd l)
          then err "link fault on a crashed router"
          else (Hashtbl.replace down l (); continue ())
        | Link_up l ->
          let l = norm l in
          if Hashtbl.mem partitioned l then
            err "restoring a partitioned edge (the heal restores it)"
          else if not (Hashtbl.mem down l) then
            err "restoring a link that is up"
          else (Hashtbl.remove down l; continue ())
        | Router_crash r ->
          if Hashtbl.mem crashed r then err "router crashed twice"
          else if Hashtbl.fold (fun l () acc -> acc || incident r l) down false
          then err "crashing a router holding a failed link"
          else if
            Hashtbl.fold
              (fun l _ acc -> acc || incident r l)
              partitioned false
          then err "crashing an endpoint of a partitioned edge"
          else (Hashtbl.replace crashed r (); continue ())
        | Router_recover r ->
          if not (Hashtbl.mem crashed r) then
            err "recovering a router that is up"
          else (Hashtbl.remove crashed r; continue ())
        | Partition { side; cut; duration } ->
          if side = [] then err "partition with an empty side"
          else if cut = [] then err "partition with an empty cut"
          else if duration <= 0. then err "partition duration <= 0"
          else if e.time +. duration > plan.until -. margin +. 1e-6 then
            err "partition heals after until - margin"
          else begin
            let seen = Hashtbl.create 8 in
            let bad =
              List.find_map
                (fun l ->
                  let l = norm l in
                  if Hashtbl.mem seen l then
                    Some "partition cuts an edge twice"
                  else if Hashtbl.mem down l || Hashtbl.mem partitioned l then
                    Some "partition cuts an already-failed edge"
                  else if
                    Hashtbl.mem crashed (fst l) || Hashtbl.mem crashed (snd l)
                  then Some "partition cuts an edge of a crashed router"
                  else (Hashtbl.replace seen l (); None))
                cut
            in
            match bad with
            | Some msg -> err "%s" msg
            | None ->
              Hashtbl.iter
                (fun l () ->
                  Hashtbl.replace partitioned l (e.time +. duration))
                seen;
              continue ()
          end
        | Monitor_blackout d when d <= 0. -> err "blackout duration <= 0"
        | Monitor_sample_loss { probability = p; duration }
          when p < 0. || p >= 1. || duration <= 0. ->
          err "bad sample-loss parameters"
        | Monitor_corruption { probability = p; gain; duration }
          when p < 0. || p >= 1. || gain <= 0. || duration <= 0. ->
          err "bad monitor-corruption parameters"
        | Flooding_loss { drop; duration }
          when drop <= 0. || drop >= 1. || duration <= 0. ->
          err "bad flooding-loss parameters"
        | Lsa_delay { max_delay; duration }
          when max_delay < 1 || duration <= 0. ->
          err "bad lsa-delay parameters"
        | Controller_crash ->
          if !dead then err "controller crashed twice"
          else (dead := true; continue ())
        | Controller_restart ->
          if not !dead then err "restarting a live controller"
          else (dead := false; continue ())
        | Monitor_blackout _ | Monitor_sample_loss _ | Monitor_corruption _
        | Flooding_loss _ | Lsa_delay _ ->
          continue ())
  in
  go 0. plan.events

let random_plan ?(faults = 4) ?(margin = 4.) ?(allow_controller_death = true)
    ~seed ~until g =
  if faults < 0 then invalid_arg "Faults.random_plan: faults";
  let span = until -. margin -. 1. in
  if span <= 0. then
    invalid_arg "Faults.random_plan: until must exceed margin + 1";
  let horizon = until -. margin in
  let prng = Kit.Prng.create ~seed in
  let links =
    Graph.fold_edges g ~init:[] ~f:(fun acc u v _ ->
        if u < v then (u, v) :: acc else acc)
    |> List.rev |> Array.of_list
  in
  let routers = Array.of_list (Graph.nodes g) in
  (* Each element (link or router) suffers at most one fault per plan,
     and a crashed router never overlaps a failed incident link — the
     recovery paths stay independent, so the generator can guarantee the
     topology is whole at [until -. margin]. *)
  let busy_links = Hashtbl.create 8 and busy_routers = Hashtbl.create 4 in
  let controller_done = ref false in
  let events = ref [] in
  let emit time kind = events := { time; kind } :: !events in
  let pick_free arr free =
    let candidates = Array.of_list (List.filter free (Array.to_list arr)) in
    if Array.length candidates = 0 then None
    else Some (Kit.Prng.pick prng candidates)
  in
  for _ = 1 to faults do
    let start = 0.5 +. Kit.Prng.float prng span in
    let dur =
      0.5 +. Kit.Prng.float prng (max 1e-6 (horizon -. start -. 0.5))
    in
    match Kit.Prng.int prng 8 with
    | 0 | 1 -> (
      (* Link flap: down, then back up before the horizon. *)
      let free (u, v) =
        (not (Hashtbl.mem busy_links (u, v)))
        && (not (Hashtbl.mem busy_routers u))
        && not (Hashtbl.mem busy_routers v)
      in
      match pick_free links free with
      | Some l ->
        Hashtbl.replace busy_links l ();
        emit start (Link_down l);
        emit (start +. dur) (Link_up l)
      | None -> emit start (Monitor_blackout dur))
    | 2 -> (
      (* Router crash/recovery. *)
      let free r =
        (not (Hashtbl.mem busy_routers r))
        && not
             (Hashtbl.fold
                (fun (u, v) () acc -> acc || u = r || v = r)
                busy_links false)
      in
      match pick_free routers free with
      | Some r ->
        Hashtbl.replace busy_routers r ();
        Array.iter
          (fun (u, v) -> if u = r || v = r then Hashtbl.replace busy_links (u, v) ())
          links;
        emit start (Router_crash r);
        emit (start +. dur) (Router_recover r)
      | None -> emit start (Monitor_blackout dur))
    | 3 -> emit start (Monitor_blackout dur)
    | 4 ->
      if Kit.Prng.bool prng then
        emit start
          (Monitor_sample_loss
             { probability = 0.1 +. Kit.Prng.float prng 0.5; duration = dur })
      else
        emit start
          (Flooding_loss
             { drop = 0.05 +. Kit.Prng.float prng 0.35; duration = dur })
    | 5 -> (
      (* Partition: grow a connected side from a random router; the cut
         is every edge crossing it. Every cut edge must be fault-free
         and both endpoints uncrashed for the whole plan, so the heal
         can restore the whole cut atomically; when the draw cannot
         honour that, degrade to a blackout rather than skew timing. *)
      let n = Array.length routers in
      if n < 3 then emit start (Monitor_blackout dur)
      else begin
        let seed_router = Kit.Prng.pick prng routers in
        let target = 1 + Kit.Prng.int prng (max 1 (n / 2)) in
        let side = Hashtbl.create 8 in
        Hashtbl.replace side seed_router ();
        let queue = Queue.create () in
        Queue.add seed_router queue;
        while Hashtbl.length side < target && not (Queue.is_empty queue) do
          let r = Queue.pop queue in
          List.iter
            (fun (v, _cost) ->
              if Hashtbl.length side < target && not (Hashtbl.mem side v)
              then begin
                Hashtbl.replace side v ();
                Queue.add v queue
              end)
            (Graph.succ g r)
        done;
        let cut =
          Array.to_list links
          |> List.filter (fun (u, v) ->
                 Hashtbl.mem side u <> Hashtbl.mem side v)
        in
        let ok =
          Hashtbl.length side < n
          && cut <> []
          && List.for_all
               (fun (u, v) ->
                 (not (Hashtbl.mem busy_links (u, v)))
                 && (not (Hashtbl.mem busy_routers u))
                 && not (Hashtbl.mem busy_routers v))
               cut
        in
        if not ok then emit start (Monitor_blackout dur)
        else begin
          List.iter (fun l -> Hashtbl.replace busy_links l ()) cut;
          let side_list =
            Array.to_list routers
            |> List.filter (fun r -> Hashtbl.mem side r)
          in
          emit start (Partition { side = side_list; cut; duration = dur })
        end
      end)
    | 6 ->
      if Kit.Prng.bool prng then
        emit start
          (Lsa_delay { max_delay = 2 + Kit.Prng.int prng 5; duration = dur })
      else
        emit start
          (Monitor_corruption
             {
               probability = 0.1 +. Kit.Prng.float prng 0.4;
               gain = 0.5 +. Kit.Prng.float prng 2.0;
               duration = dur;
             })
    | _ ->
      if !controller_done then emit start (Monitor_blackout dur)
      else begin
        controller_done := true;
        emit start Controller_crash;
        (* Sometimes the controller never comes back: its lies must then
           age out on their own (the graceful-degradation property). *)
        if (not allow_controller_death) || Kit.Prng.float prng 1.0 >= 0.3
        then emit (start +. dur) Controller_restart
      end
  done;
  let events =
    List.stable_sort (fun a b -> compare a.time b.time) (List.rev !events)
  in
  { seed; until; events }

let record_event sim kind attrs =
  ignore sim;
  if Obs.enabled () then
    Obs.Timeline.record ~time:(Sim.time sim) ~source:"faults" ~kind attrs

let inject ?on_controller_crash ?on_controller_restart sim plan =
  let sub_seed i = plan.seed lxor ((i + 1) * 0x9E3779B9) in
  List.iteri
    (fun i { time; kind } ->
      match kind with
      | Link_down l -> Sim.fail_link sim ~time l
      | Link_up l -> Sim.restore_link sim ~time l
      | Router_crash r -> Sim.crash_router sim ~time r
      | Router_recover r -> Sim.recover_router sim ~time r
      | Partition { side; cut; duration } ->
        (* The record is scheduled first so the partition event precedes
           the per-link link_down events in the timeline; the cut itself
           is atomic (one scheduled action fails every edge). *)
        Sim.schedule sim ~time (fun sim ->
            let g = Igp.Network.graph (Sim.network sim) in
            record_event sim "partition"
              [
                ( "side",
                  String (String.concat "," (List.map (Graph.name g) side))
                );
                ("links_cut", Int (List.length cut));
                ("duration", Float duration);
              ]);
        Sim.fail_links sim ~time cut;
        Sim.schedule sim ~time:(time +. duration) (fun sim ->
            record_event sim "partition_heal"
              [ ("links_restored", Int (List.length cut)) ]);
        Sim.restore_links sim ~time:(time +. duration) cut
      | Monitor_blackout duration ->
        Sim.schedule sim ~time (fun sim ->
            match Sim.monitor sim with
            | None -> ()
            | Some m ->
              Monitor.mute m ~until:(Sim.time sim +. duration);
              record_event sim "monitor_blackout"
                [ ("duration", Float duration) ])
      | Monitor_sample_loss { probability; duration } ->
        Sim.schedule sim ~time (fun sim ->
            match Sim.monitor sim with
            | None -> ()
            | Some m ->
              Monitor.set_sample_loss m
                (Some (Kit.Prng.create ~seed:(sub_seed i), probability));
              record_event sim "sample_loss_on"
                [ ("probability", Float probability) ]);
        Sim.schedule sim ~time:(time +. duration) (fun sim ->
            match Sim.monitor sim with
            | None -> ()
            | Some m ->
              Monitor.set_sample_loss m None;
              record_event sim "sample_loss_off" [])
      | Monitor_corruption { probability; gain; duration } ->
        Sim.schedule sim ~time (fun sim ->
            match Sim.monitor sim with
            | None -> ()
            | Some m ->
              Monitor.set_corruption m
                (Some
                   (Monitor.corruption ~probability ~gain ~seed:(sub_seed i)
                      ()));
              record_event sim "monitor_corruption_on"
                [ ("probability", Float probability); ("gain", Float gain) ]);
        Sim.schedule sim ~time:(time +. duration) (fun sim ->
            match Sim.monitor sim with
            | None -> ()
            | Some m ->
              Monitor.set_corruption m None;
              record_event sim "monitor_corruption_off" [])
      | Flooding_loss { drop; duration } ->
        Sim.schedule sim ~time (fun sim ->
            Igp.Network.set_flooding_loss (Sim.network sim)
              (Some (Igp.Flooding.loss ~drop ~seed:(sub_seed i) ()));
            record_event sim "flooding_loss_on" [ ("drop", Float drop) ]);
        Sim.schedule sim ~time:(time +. duration) (fun sim ->
            Igp.Network.set_flooding_loss (Sim.network sim) None;
            record_event sim "flooding_loss_off" [])
      | Lsa_delay { max_delay; duration } ->
        Sim.schedule sim ~time (fun sim ->
            Igp.Network.set_flooding_jitter (Sim.network sim)
              (Some (Igp.Flooding.jitter ~max_delay ~seed:(sub_seed i) ()));
            record_event sim "lsa_delay_on" [ ("max_delay", Int max_delay) ]);
        Sim.schedule sim ~time:(time +. duration) (fun sim ->
            Igp.Network.set_flooding_jitter (Sim.network sim) None;
            record_event sim "lsa_delay_off" [])
      | Controller_crash ->
        Sim.schedule sim ~time (fun sim ->
            record_event sim "controller_crash" [];
            match on_controller_crash with
            | Some f -> f sim
            | None -> ())
      | Controller_restart ->
        Sim.schedule sim ~time (fun sim ->
            record_event sim "controller_restart" [];
            match on_controller_restart with
            | Some f -> f sim
            | None -> ()))
    plan.events
