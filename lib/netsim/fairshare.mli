(** Max-min fair fluid bandwidth allocation.

    Long-lived TCP flows sharing bottleneck links converge (to first
    order) to the max-min fair allocation; this module computes it by
    progressive filling: all flows' rates grow together, a flow freezes
    when it reaches its demand cap (video bitrate) or when one of its
    links saturates. This is the bandwidth model behind the Fig. 2
    throughput curves.

    The production kernel ([water_fill], wrapped by [allocate]) is
    array-indexed: links are interned to dense ints, flow↔link incidence
    is built once, per-link remaining capacity / unfrozen-weight
    counters are reconciled lazily, and candidate saturation levels live
    in a min-heap with version-stamped lazy deletion — so a round costs
    the degree of what froze, not a rescan of every (flow, link) pair.
    [allocate_reference] keeps the original list-based fill as the
    property-test oracle and benchmark baseline. *)

type route = {
  flow : Flow.t;
  links : Link.t list;  (** The directed links of the flow's path. *)
}

val water_fill :
  ?pool:Kit.Pool.t ->
  Link.capacities ->
  demands:float array ->
  links:Link.t list array ->
  weights:int array ->
  float array
(** Weighted max-min fair fill over flow groups: group [g] stands for
    [weights.(g)] identical flows of demand [demands.(g)] sharing links
    [links.(g)] (a link is charged [weight * rate]). Returns the
    per-member rate of each group, index-aligned with the inputs — equal
    to what [allocate] gives each member of the group expanded into
    singletons. A group with no links gets its full demand. Raises
    [Invalid_argument] on mismatched array lengths or a weight < 1.

    [pool] fans the setup out across domains — per-group link-list
    normalization and the incidence id-mapping, the O(flows * path
    length) part. Link interning, the CSR build and the fill kernel
    itself stay sequential, so the result is bitwise-identical at any
    pool width (the sequential kernel is the equivalence oracle). The
    pool only engages above ~500 groups; below that domain spawn
    dominates. *)

val allocate : Link.capacities -> route list -> (int * float) list
(** [(flow id, rate)] for every route, in input order. A flow with an
    empty link list (locally delivered) gets its full demand. Flow ids
    must be distinct; raises [Invalid_argument] otherwise. *)

val allocate_reference : Link.capacities -> route list -> (int * float) list
(** The original O(flows * links)-per-round list implementation of
    [allocate]: same contract, same fixed point (within numerical
    tolerance). Kept as the QCheck oracle for [allocate]/[water_fill]
    and as the pre-kernel baseline timed by the TFLOW bench. *)

val link_throughput : route list -> (int * float) list -> (Link.t * float) list
(** Aggregate per-link throughput implied by an allocation, sorted by
    link. *)
