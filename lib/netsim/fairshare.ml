type route = { flow : Flow.t; links : Link.t list }

let epsilon = 1e-9

(* ------------------------------------------------------------------ *)
(* Indexed water-filling kernel.

   Progressive filling over weighted groups: group [g] stands for
   [weights.(g)] identical flows of demand [demands.(g)] sharing the
   links [links.(g)]; the returned rate is per member. The global water
   level rises; a group freezes when the level reaches its demand or
   when one of its links saturates. The fixed point is the same as the
   list-based reference below — the data layout is what changed:

   - links are interned to dense ints once; group<->link incidence is a
     CSR-style pair of arrays built once;
   - each link carries remaining capacity, total unfrozen weight and the
     level at which those were last reconciled, so a freeze touches only
     the frozen group's own links (lazy catch-up);
   - candidate saturation levels live in a min-heap with version-stamped
     lazy deletion, so each round pops the tightest link instead of
     rescanning every link with List.filter/List.length;
   - demand caps come from a pointer walking an index array sorted by
     demand.

   Per-round work is O(degree of what froze * log), not O(flows *
   links). *)

(* Below this many groups, domain spawn/join costs more than the whole
   setup; the pool only engages on batches worth sharding. *)
let par_threshold = 512

let m_wf_alloc = Obs.Metrics.counter "fairshare.alloc_words"

let water_fill_kernel ?pool capacities ~demands ~links ~weights =
  let n = Array.length demands in
  if Array.length links <> n || Array.length weights <> n then
    invalid_arg "Fairshare.water_fill: array length mismatch";
  Array.iter
    (fun w -> if w < 1 then invalid_arg "Fairshare.water_fill: weight < 1")
    weights;
  let rates = Array.make n 0. in
  if n = 0 then rates
  else begin
    let par =
      match pool with
      | Some p when Kit.Pool.domain_count p > 1 && n >= par_threshold -> Some p
      | Some _ | None -> None
    in
    (* Setup phase 1 — normalize each group's link list. Per-group and
       pure, so it fans out across domains. *)
    let normalized =
      match par with
      | Some p -> Kit.Pool.map p ~n (fun g -> List.sort_uniq Link.compare links.(g))
      | None -> Array.map (List.sort_uniq Link.compare) links
    in
    (* Setup phase 2 — intern links to dense ids, sequentially in group
       order so ids (and hence heap tie-breaking) are identical at any
       pool width. *)
    let ids : (Link.t, int) Hashtbl.t = Hashtbl.create (4 * n) in
    let nl = ref 0 in
    Array.iter
      (List.iter (fun l ->
           if not (Hashtbl.mem ids l) then begin
             Hashtbl.add ids l !nl;
             incr nl
           end))
      normalized;
    (* Setup phase 3 — per-group incidence over dense ids: read-only
       hashtable lookups, fanned out. *)
    let to_ids ls = Array.of_list (List.map (Hashtbl.find ids) ls) in
    let incidence =
      match par with
      | Some p -> Kit.Pool.map p ~n (fun g -> to_ids normalized.(g))
      | None -> Array.map to_ids normalized
    in
    let nl = !nl in
    let cap = Array.make nl 0. in
    Hashtbl.iter (fun l i -> cap.(i) <- Link.capacity capacities l) ids;
    (* CSR link -> member groups. *)
    let off = Array.make (nl + 1) 0 in
    Array.iter (Array.iter (fun l -> off.(l + 1) <- off.(l + 1) + 1)) incidence;
    for l = 1 to nl do
      off.(l) <- off.(l) + off.(l - 1)
    done;
    let pos = Array.copy off in
    let members = Array.make (max 1 off.(nl)) 0 in
    Array.iteri
      (fun g inc ->
        Array.iter
          (fun l ->
            members.(pos.(l)) <- g;
            pos.(l) <- pos.(l) + 1)
          inc)
      incidence;
    (* Per-link fill state, reconciled lazily up to [level_at]. *)
    let remaining = Array.copy cap in
    let level_at = Array.make nl 0. in
    let unfrozen_w = Array.make nl 0. in
    let version = Array.make nl 0 in
    let frozen = Array.make n false in
    let unfrozen = ref 0 in
    Array.iteri
      (fun g inc ->
        if Array.length inc = 0 then begin
          (* Locally delivered: only demand-capped. *)
          rates.(g) <- demands.(g);
          frozen.(g) <- true
        end
        else begin
          incr unfrozen;
          let w = float_of_int weights.(g) in
          Array.iter (fun l -> unfrozen_w.(l) <- unfrozen_w.(l) +. w) inc
        end)
      incidence;
    let heap : (int * int) Kit.Heap.t = Kit.Heap.create () in
    let push_link l =
      if unfrozen_w.(l) > 0. then
        Kit.Heap.push heap
          ~priority:(level_at.(l) +. (max 0. remaining.(l) /. unfrozen_w.(l)))
          (l, version.(l))
    in
    for l = 0 to nl - 1 do
      push_link l
    done;
    let by_demand = Array.init n (fun g -> g) in
    Array.sort (fun a b -> compare demands.(a) demands.(b)) by_demand;
    let dp = ref 0 in
    let level = ref 0. in
    (* Charge a link for the fluid growth of its unfrozen weight since it
       was last reconciled. *)
    let catch_up l =
      if !level > level_at.(l) then begin
        remaining.(l) <-
          remaining.(l) -. (unfrozen_w.(l) *. (!level -. level_at.(l)));
        level_at.(l) <- !level
      end
    in
    let freeze g rate =
      frozen.(g) <- true;
      rates.(g) <- rate;
      decr unfrozen;
      let w = float_of_int weights.(g) in
      Array.iter
        (fun l ->
          catch_up l;
          unfrozen_w.(l) <- unfrozen_w.(l) -. w;
          version.(l) <- version.(l) + 1;
          push_link l)
        incidence.(g)
    in
    (* Smallest live saturation level; stale heap entries (old version or
       fully frozen link) are dropped on the way. *)
    let rec live_top () =
      match Kit.Heap.peek heap with
      | None -> None
      | Some (s, (l, v)) ->
        if v <> version.(l) || unfrozen_w.(l) <= 0. then begin
          ignore (Kit.Heap.pop heap);
          live_top ()
        end
        else Some (s, l)
    in
    while !unfrozen > 0 do
      while !dp < n && frozen.(by_demand.(!dp)) do
        incr dp
      done;
      let demand_limit =
        if !dp < n then demands.(by_demand.(!dp)) else infinity
      in
      let link_limit =
        match live_top () with Some (s, _) -> s | None -> infinity
      in
      let target = min demand_limit link_limit in
      level := target;
      let froze = ref false in
      (* Demand-capped groups first. *)
      while
        !dp < n
        &&
        let g = by_demand.(!dp) in
        frozen.(g) || demands.(g) <= target +. epsilon
      do
        let g = by_demand.(!dp) in
        if not frozen.(g) then begin
          freeze g demands.(g);
          froze := true
        end;
        incr dp
      done;
      (* Groups crossing a saturated link freeze at the fair level. The
         test is epsilon-tolerant: when the demand limit sits within
         epsilon below the link limit, the saturated link still freezes
         this round instead of leaking into the safety net. *)
      let rec drain () =
        match live_top () with
        | Some (s, l) when s <= target +. epsilon ->
          ignore (Kit.Heap.pop heap);
          for k = off.(l) to off.(l + 1) - 1 do
            let g = members.(k) in
            if not frozen.(g) then begin
              freeze g target;
              froze := true
            end
          done;
          drain ()
        | Some _ | None -> ()
      in
      drain ();
      (* Numerical safety net: progress is guaranteed above, but if
         tolerances conspire, freeze everything at the current level. *)
      if not !froze then
        for g = 0 to n - 1 do
          if not frozen.(g) then begin
            rates.(g) <- target;
            frozen.(g) <- true;
            decr unfrozen
          end
        done
    done;
    rates
  end

let water_fill ?pool capacities ~demands ~links ~weights =
  if Obs.enabled () then
    Obs.Prof.with_span "fairshare.water_fill" ~alloc_counter:m_wf_alloc
      ~attrs:[ ("groups", Obs.Attr.Int (Array.length demands)) ]
      (fun () -> water_fill_kernel ?pool capacities ~demands ~links ~weights)
  else water_fill_kernel ?pool capacities ~demands ~links ~weights

let check_distinct_ids routes =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let id = r.flow.Flow.id in
      if Hashtbl.mem seen id then
        invalid_arg "Fairshare.allocate: duplicate flow ids";
      Hashtbl.add seen id ())
    routes

let allocate capacities routes =
  check_distinct_ids routes;
  let routes_arr = Array.of_list routes in
  let demands = Array.map (fun r -> r.flow.Flow.demand) routes_arr in
  let links = Array.map (fun r -> r.links) routes_arr in
  let weights = Array.make (Array.length routes_arr) 1 in
  let rates = water_fill capacities ~demands ~links ~weights in
  Array.to_list
    (Array.mapi (fun i r -> (r.flow.Flow.id, rates.(i))) routes_arr)

(* ------------------------------------------------------------------ *)
(* Reference implementation: the original list-based progressive fill,
   kept as the oracle for the property tests and as the pre-kernel
   baseline the TFLOW bench times. Per round it rescans every link with
   List.filter/List.length, so it is O(flows * links) per freeze. *)

let allocate_reference capacities routes =
  check_distinct_ids routes;
  let routes_arr = Array.of_list routes in
  let n = Array.length routes_arr in
  let rates = Array.make n 0. in
  let frozen = Array.make n false in
  (* Distinct links and, per link, the indices of flows crossing it. *)
  let link_flows : (Link.t, int list) Hashtbl.t = Hashtbl.create 32 in
  Array.iteri
    (fun i r ->
      List.iter
        (fun link ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt link_flows link) in
          Hashtbl.replace link_flows link (i :: existing))
        (List.sort_uniq Link.compare r.links))
    routes_arr;
  let remaining : (Link.t, float) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun link _ -> Hashtbl.replace remaining link (Link.capacity capacities link))
    link_flows;
  (* Flows with no links are only demand-capped. *)
  Array.iteri
    (fun i r ->
      if r.links = [] then begin
        rates.(i) <- r.flow.Flow.demand;
        frozen.(i) <- true
      end)
    routes_arr;
  let level = ref 0. in
  let unfrozen_on link =
    List.filter (fun i -> not frozen.(i))
      (Option.value ~default:[] (Hashtbl.find_opt link_flows link))
  in
  let any_unfrozen () = Array.exists (fun f -> not f) frozen in
  while any_unfrozen () do
    (* Level at which the tightest link saturates. *)
    let link_limit = ref infinity and saturating = ref [] in
    Hashtbl.iter
      (fun link rem ->
        let count = List.length (unfrozen_on link) in
        if count > 0 then begin
          let saturation_level = !level +. (max 0. rem /. float_of_int count) in
          if saturation_level < !link_limit -. epsilon then begin
            link_limit := saturation_level;
            saturating := [ link ]
          end
          else if saturation_level < !link_limit +. epsilon then
            saturating := link :: !saturating
        end)
      remaining;
    (* Level at which the most modest flow hits its demand. *)
    let demand_limit = ref infinity in
    Array.iteri
      (fun i r ->
        if not frozen.(i) then
          demand_limit := min !demand_limit r.flow.Flow.demand)
      routes_arr;
    let target = min !link_limit !demand_limit in
    let delta = target -. !level in
    (* Consume capacity for the growth of all unfrozen flows. *)
    Hashtbl.iter
      (fun link rem ->
        let count = List.length (unfrozen_on link) in
        if count > 0 then
          Hashtbl.replace remaining link (rem -. (float_of_int count *. delta)))
      remaining;
    level := target;
    let froze = ref false in
    (* Demand-capped flows first. *)
    Array.iteri
      (fun i r ->
        if (not frozen.(i)) && r.flow.Flow.demand <= target +. epsilon then begin
          rates.(i) <- r.flow.Flow.demand;
          frozen.(i) <- true;
          froze := true
        end)
      routes_arr;
    (* Flows crossing a saturated link freeze at the fair level. The
       comparison is epsilon-tolerant (a demand limit within epsilon of
       the link limit used to skip this round entirely and dump the
       saturated flows into the safety net below). *)
    if !link_limit <= target +. epsilon then
      List.iter
        (fun link ->
          List.iter
            (fun i ->
              if not frozen.(i) then begin
                rates.(i) <- target;
                frozen.(i) <- true;
                froze := true
              end)
            (unfrozen_on link))
        !saturating;
    (* Numerical safety net: progress is guaranteed above, but if
       tolerances conspire, freeze everything at the current level. *)
    if not !froze then
      Array.iteri
        (fun i _ ->
          if not frozen.(i) then begin
            rates.(i) <- target;
            frozen.(i) <- true
          end)
        routes_arr
  done;
  Array.to_list (Array.mapi (fun i r -> (r.flow.Flow.id, rates.(i))) routes_arr)

let link_throughput routes allocation =
  let alloc : (int, float) Hashtbl.t = Hashtbl.create (2 * List.length allocation) in
  List.iter (fun (id, rate) -> Hashtbl.replace alloc id rate) allocation;
  let table : (Link.t, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun r ->
      let rate = Option.value ~default:0. (Hashtbl.find_opt alloc r.flow.Flow.id) in
      List.iter
        (fun link ->
          let current = Option.value ~default:0. (Hashtbl.find_opt table link) in
          Hashtbl.replace table link (current +. rate))
        (List.sort_uniq Link.compare r.links))
    routes;
  Hashtbl.to_seq table |> List.of_seq
  |> List.sort (fun (a, _) (b, _) -> Link.compare a b)
