(** Flash-crowd workload generation.

    "Video streaming, in conjunction with social networks, have given
    birth to a new traffic pattern over the Internet: transient,
    localized traffic surges, known as flash crowds." This module builds
    the flow populations used by the experiments: the exact Fig. 2
    schedule, bursts with jittered arrivals, and Poisson surges. *)

type spec = {
  src : Netgraph.Graph.node;  (** Ingress router (where the server sits). *)
  prefix : Igp.Lsa.prefix;  (** Prefix hosting the clients. *)
  rate : float;  (** Per-stream bytes/s (the video bitrate). *)
  video_duration : float;  (** Seconds per video. *)
}

val burst :
  ?jitter:float ->
  Kit.Prng.t ->
  spec ->
  first_id:int ->
  count:int ->
  at:float ->
  Netsim.Flow.t list
(** [count] streams starting at [at], each delayed by a uniform jitter in
    [\[0, jitter\]] (default 1 s). Ids are [first_id ...]. *)

val poisson :
  Kit.Prng.t ->
  spec ->
  first_id:int ->
  rate_per_s:float ->
  from:float ->
  until:float ->
  Netsim.Flow.t list
(** Poisson arrivals between [from] and [until]. *)

val crowd :
  ?jitter:float ->
  Kit.Prng.t ->
  spec list ->
  first_id:int ->
  count:int ->
  at:float ->
  Netsim.Flow.t list
(** Bulk flash-crowd generation at simulation scale: [count] streams
    dealt round-robin across [specs] (several ingress points surging at
    once), each delayed by a uniform jitter in [\[0, jitter\]] (default
    1 s) after [at]. Ids are [first_id ...]. Flows drawn from the same
    spec share (src, prefix, demand), so the simulator's flow-class
    aggregation collapses them into a handful of weighted groups no
    matter how large [count] is. *)

val fig2_schedule :
  s1:Netgraph.Graph.node ->
  s2:Netgraph.Graph.node ->
  prefix:Igp.Lsa.prefix ->
  rate:float ->
  video_duration:float ->
  Netsim.Flow.t list
(** The paper's exact Fig. 2 schedule: 1 flow from S1 at t = 0, 30 more
    from S1 at t = 15, 31 from S2 at t = 35 (no jitter — the paper adds
    them as a batch). *)
