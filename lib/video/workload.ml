type spec = {
  src : Netgraph.Graph.node;
  prefix : Igp.Lsa.prefix;
  rate : float;
  video_duration : float;
}

let flow spec ~id ~start_time =
  Netsim.Flow.make ~id ~src:spec.src ~prefix:spec.prefix ~demand:spec.rate
    ~start_time ~duration:spec.video_duration ()

let burst ?(jitter = 1.0) prng spec ~first_id ~count ~at =
  List.init count (fun i ->
      let delay = if jitter > 0. then Kit.Prng.float prng jitter else 0. in
      flow spec ~id:(first_id + i) ~start_time:(at +. delay))

let poisson prng spec ~first_id ~rate_per_s ~from ~until =
  if rate_per_s <= 0. then invalid_arg "Workload.poisson: rate";
  let rec arrivals time acc =
    let time = time +. Kit.Prng.exponential prng ~mean:(1. /. rate_per_s) in
    if time >= until then List.rev acc else arrivals time (time :: acc)
  in
  List.mapi
    (fun i start_time -> flow spec ~id:(first_id + i) ~start_time)
    (arrivals from [])

let crowd ?(jitter = 1.0) prng specs ~first_id ~count ~at =
  if specs = [] then invalid_arg "Workload.crowd: no specs";
  if count < 0 then invalid_arg "Workload.crowd: negative count";
  let specs = Array.of_list specs in
  let k = Array.length specs in
  List.init count (fun i ->
      let delay = if jitter > 0. then Kit.Prng.float prng jitter else 0. in
      flow specs.(i mod k) ~id:(first_id + i) ~start_time:(at +. delay))

let fig2_schedule ~s1 ~s2 ~prefix ~rate ~video_duration =
  let spec_of src = { src; prefix; rate; video_duration } in
  let one = [ flow (spec_of s1) ~id:0 ~start_time:0. ] in
  let thirty =
    List.init 30 (fun i -> flow (spec_of s1) ~id:(1 + i) ~start_time:15.)
  in
  let thirty_one =
    List.init 31 (fun i -> flow (spec_of s2) ~id:(31 + i) ~start_time:35.)
  in
  one @ thirty @ thirty_one
