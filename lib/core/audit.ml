module Graph = Netgraph.Graph

type mode = Extends | Overrides

type router_audit = {
  router : Graph.node;
  prefix : Igp.Lsa.prefix;
  weights : (Graph.node * int) list;
  fractions : (Graph.node * float) list;
  fakes : Igp.Lsa.fake list;
  mode : mode;
  honest_distance : int;
  lied_distance : int;
}

type t = {
  per_router : router_audit list;
  total_fakes : int;
  wire_bytes : int;
  prefixes : Igp.Lsa.prefix list;
}

let run net =
  let fakes = Igp.Network.fakes net in
  (* The honest view: everything the IGP would do without the lies. *)
  let honest = Igp.Network.clone net in
  Igp.Network.retract_all_fakes honest;
  let lied_routers =
    List.sort_uniq compare
      (List.map (fun (f : Igp.Lsa.fake) -> (f.prefix, f.attachment)) fakes)
  in
  let per_router =
    List.filter_map
      (fun (prefix, router) ->
        match Igp.Network.fib net ~router prefix with
        | None -> None (* inert lies towards an unreachable prefix *)
        | Some fib ->
          let honest_distance =
            Option.value ~default:max_int
              (Igp.Network.distance honest ~router prefix)
          in
          let lied_distance = fib.Igp.Fib.distance in
          Some
            {
              router;
              prefix;
              weights = Igp.Fib.weights fib;
              fractions = Igp.Fib.fractions fib;
              fakes =
                List.filter
                  (fun (f : Igp.Lsa.fake) ->
                    f.attachment = router && Igp.Prefix.equal f.prefix prefix)
                  fakes;
              mode =
                (if lied_distance < honest_distance then Overrides else Extends);
              honest_distance;
              lied_distance;
            })
      lied_routers
  in
  let wire_bytes =
    List.fold_left
      (fun acc fake ->
        acc
        + Igp.Codec.wire_length { Igp.Codec.lsa = Igp.Lsa.Fake fake; sequence = 0 })
      0 fakes
  in
  {
    per_router =
      List.sort
        (fun a b -> compare (a.prefix, a.router) (b.prefix, b.router))
        per_router;
    total_fakes = List.length fakes;
    wire_bytes;
    prefixes =
      List.sort_uniq compare (List.map (fun (f : Igp.Lsa.fake) -> f.prefix) fakes);
  }

let pp ~names fmt t =
  if t.total_fakes = 0 then Format.fprintf fmt "no lies installed@."
  else begin
    Format.fprintf fmt "%d fake LSAs (%d bytes in every LSDB) over %d prefixes@."
      t.total_fakes t.wire_bytes
      (List.length t.prefixes);
    List.iter
      (fun audit ->
        Format.fprintf fmt "  %s @@ %s: %s, cost %d (honest %d), %s via %a@."
          (Igp.Prefix.to_string audit.prefix) (names audit.router)
          (match audit.mode with
          | Extends -> "extends ECMP"
          | Overrides -> "overrides routing")
          audit.lied_distance audit.honest_distance
          (String.concat "+"
             (List.map (fun (f : Igp.Lsa.fake) -> f.fake_id) audit.fakes))
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
             (fun fmt (nh, fraction) ->
               Format.fprintf fmt "%s=%.2f" (names nh) fraction))
          audit.fractions)
      t.per_router
  end
