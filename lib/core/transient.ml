module Graph = Netgraph.Graph

type violation = { step : int; fake_id : string; problem : string }

(* The loop/blackhole analysis itself lives in [Igp.Safety], below both
   this install-time checker and the runtime watchdog ([Netsim] cannot
   depend on this library). *)
let state_safe net ~prefix = Igp.Safety.state_safe net ~prefix

let check_order net ~prefix fakes =
  let scratch = Igp.Network.clone net in
  let rec steps index = function
    | [] -> Ok ()
    | (fake : Igp.Lsa.fake) :: rest ->
      Igp.Network.inject_fake scratch fake;
      (match state_safe scratch ~prefix with
      | Ok () -> steps (index + 1) rest
      | Error problem -> Error { step = index; fake_id = fake.fake_id; problem })
  in
  match state_safe scratch ~prefix with
  | Error problem ->
    Error { step = 0; fake_id = "<initial state>"; problem }
  | Ok () -> steps 1 fakes

(* Greedy order search over a step function: [advance scratch item]
   mutates the scratch network; we pick any remaining item whose
   application keeps the prefix safe, testing each candidate on a fresh
   clone of the current scratch. *)
let greedy_order net ~prefix items ~advance ~describe =
  let scratch = Igp.Network.clone net in
  match state_safe scratch ~prefix with
  | Error problem -> Error (Printf.sprintf "unsafe initial state: %s" problem)
  | Ok () ->
    let rec pick ordered remaining =
      match remaining with
      | [] -> Ok (List.rev ordered)
      | _ ->
        let try_candidate item =
          let trial = Igp.Network.clone scratch in
          advance trial item;
          match state_safe trial ~prefix with Ok () -> true | Error _ -> false
        in
        (match List.find_opt try_candidate remaining with
        | None ->
          Error
            (Printf.sprintf
               "no safe next step among {%s}; an intermediate state always \
                loops"
               (String.concat ", " (List.map describe remaining)))
        | Some item ->
          advance scratch item;
          pick (item :: ordered)
            (List.filter (fun other -> describe other <> describe item) remaining))
    in
    pick [] items

let safe_order net (plan : Augmentation.plan) =
  greedy_order net ~prefix:plan.prefix plan.fakes
    ~advance:(fun scratch fake -> Igp.Network.inject_fake scratch fake)
    ~describe:(fun (f : Igp.Lsa.fake) -> f.fake_id)

let safe_removal_order net (plan : Augmentation.plan) =
  greedy_order net ~prefix:plan.prefix plan.fakes
    ~advance:(fun scratch (fake : Igp.Lsa.fake) ->
      Igp.Network.retract_fake scratch ~fake_id:fake.fake_id)
    ~describe:(fun (f : Igp.Lsa.fake) -> f.fake_id)

let apply_safely net (plan : Augmentation.plan) =
  match safe_order net plan with
  | Error reason -> Error reason
  | Ok order ->
    List.iter (Igp.Network.inject_fake net) order;
    Ok ()

let revert_safely net (plan : Augmentation.plan) =
  match safe_removal_order net plan with
  | Error reason -> Error reason
  | Ok order ->
    List.iter
      (fun (fake : Igp.Lsa.fake) ->
        Igp.Network.retract_fake net ~fake_id:fake.fake_id)
      order;
    Ok ()
