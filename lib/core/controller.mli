(** The on-demand load-balancing controller of the paper's demo.

    The controller monitors link loads (SNMP in the demo, the [Netsim]
    monitor here) and, when a link exceeds the utilization threshold,
    computes where and how to deflect traffic:

    + find the congested link's upstream router [v] and the dominant
      destination prefix on the link;
    + gather candidate next hops at [v]: the current ones plus every
      loop-free alternate neighbor;
    + estimate the capacity available {i to v's traffic} through each
      candidate as the residual max-flow from the candidate to the
      prefix's egress, after subtracting the demand of flows not passing
      through [v] (the paper's controller knows the demands: "the servers
      notify the controller when they have a new client");
    + split traffic across candidates proportionally to that availability,
      compile the splits with [Augmentation.compile], and inject the fake
      LSAs;
    + when the available capacity at [v] cannot cover the demand, walk
      one hop upstream (towards the ingress) and repeat — this is what
      moves the intervention from B (even ECMP, the paper's Fig. 1c fB)
      to A (1/3–2/3 split, fakes fA) when the second flash crowd hits.

    Reactions are rate-limited per prefix by a cooldown, and all installed
    lies are withdrawn after a configurable calm period. Every action is
    recorded in an event log used by the experiments. *)

type strategy =
  | Local_deflection
      (** The demo's reactive scheme: split at (or just upstream of) the
          congested link, proportionally to residual capacity. Minimal
          lies, no global knowledge needed beyond demands. *)
  | Global_optimal
      (** On every reaction, recompute the (1−ε)-optimal min–max flow
          for the prefix's current demands ([Te]-style pipeline supplied
          via [reoptimize]) and install it. More fakes, optimal
          utilization. *)

type config = {
  max_entries : int;
      (** FIB entries a reaction may use per router (default 4: small
          lies first — the demo's interventions use at most 3). *)
  cooldown : float;  (** Seconds between reactions for one prefix (4.). *)
  min_avail_fraction : float;
      (** Candidates offering less than this fraction of the total
          available capacity are dropped (default 0.05). *)
  relax_after : float;
      (** Withdraw all lies after this many seconds with every link below
          the monitor's clear threshold (default 60.). *)
  escalation_depth : int;
      (** Maximum upstream hops walked in one reaction (default 4). *)
  strategy : strategy;  (** Default [Local_deflection]. *)
  log_capacity : int;
      (** Capacity of the bounded action log (default 4096). Once full,
          the oldest actions are evicted; the controller never grows
          without bound over long scenarios. Must be positive. *)
  lie_ttl : float;
      (** Age (seconds, default 30.) stamped on every installed fake and
          refreshed on each control iteration. A dead controller stops
          refreshing, so its lies expire and routing falls back to the
          pure IGP — the paper's graceful-degradation argument. Must be
          positive; clamped to {!Igp.Lsa.max_age}. *)
  max_backoff : float;
      (** Cap (seconds, default 60.) on the exponential pause after
          consecutive ineffective reactions. Must be >= [cooldown]. *)
  quarantine_hold : float;
      (** Hold-down (seconds, default 12.) after a prefix's lies are
          quarantined: no new steering for the prefix until it expires.
          Must be >= 0. *)
  seat : Netgraph.Graph.node option;
      (** Where the controller physically sits (default [None] =
          omniscient). With a seat, reactions only consider links with
          at least one endpoint reachable from it — during a partition
          the far side's telemetry cannot arrive — and growth of the
          reachable set (a heal) triggers an adopt-or-withdraw resync. *)
}

type reoptimizer =
  Igp.Network.t ->
  prefix:Igp.Lsa.prefix ->
  capacities:(Netsim.Link.t -> float) ->
  demands:(Netgraph.Graph.node * float) list ->
  egress:Netgraph.Graph.node ->
  Requirements.router_requirement list
(** Computes the desired per-router splits for the prefix's demands on a
    {e lie-free} view of the network. The [Te] library provides the
    canonical implementation (Garg–Könemann + decomposition); it is
    injected rather than imported to keep this library's dependencies
    one-directional. *)

val default_config : config

type action = {
  time : float;
  description : string;
  fakes_installed : int;  (** Fakes now installed for the prefix. *)
}

type t

val create : ?config:config -> ?reoptimize:reoptimizer -> Igp.Network.t -> t
(** [reoptimize] is required (at [react] time) when the strategy is
    [Global_optimal]; reactions fall back to local deflection and log an
    error if it is missing. *)

val attach : t -> Netsim.Sim.t -> unit
(** Register the controller on the simulation's monitor poll hook and
    its route-change hook (for {!revalidate}). The simulation must have
    been created with a monitor. Attach the controller {e before}
    arming a {!Netsim.Watchdog}: the owner's revalidation then runs
    ahead of the watchdog's guard-of-last-resort. *)

val react : t -> Netsim.Sim.t -> Netsim.Monitor.alarm list -> unit
(** One control iteration (called by the poll hook; callable directly in
    tests). *)

val withdraw_all : t -> unit
(** Retract every fake installed (or adopted) by this controller. *)

val quarantine :
  t -> time:float -> prefix:Igp.Lsa.prefix -> reason:string -> unit
(** Withdraw every lie for the prefix — owned (in a transiently safe
    order when one exists, outright otherwise), adopted, and orphaned —
    and hold the prefix down for [quarantine_hold] seconds: reactions
    and installs for it are suppressed until the hold expires. Called by
    the controller's own revalidation when a topology change makes a
    steering unsafe, and wired to the watchdog's quarantine hook so a
    guard purge also enters hold-down. No-op while crashed. *)

val quarantine_active : t -> time:float -> Igp.Lsa.prefix -> bool
(** Is the prefix currently held down? (Expired holds are collected.) *)

val revalidate : t -> Netsim.Sim.t -> unit
(** Re-check every steered prefix against the live network and
    quarantine any whose forwarding state turned unsafe. [attach]
    registers this on {!Netsim.Sim.on_route_change}, so it runs when a
    topology change lands — before flows are routed over it. *)

val crash : t -> unit
(** Fault injection: the controller process dies. All in-memory state
    (requirements, plans, adoption records, backoff) is lost; the lies
    it installed survive in the LSDB but are no longer refreshed, so
    they age out and the network falls back to pure-IGP routing.
    [react] is a no-op while crashed. Idempotent. *)

val restart : t -> time:float -> unit
(** Fault injection: the controller comes back with empty memory and
    resyncs from the network itself — every surviving fake LSA is either
    {e adopted} (its prefix is still announced and its forwarding link
    still exists: the controller takes over refreshing it, counts it,
    and withdraws it on calm) or {e withdrawn} on the spot. It never
    blindly reinstalls pre-crash state. No-op if alive. *)

val alive : t -> bool

val consecutive_failures : t -> int
(** Consecutive reactions that were free to act but changed nothing;
    drives the exponential backoff. *)

val requirements : t -> Igp.Lsa.prefix -> Requirements.t option
(** The requirements currently enforced for a prefix, if any. *)

val actions : t -> action list
(** Event log, oldest first. At most [log_capacity] entries are
    retained — the oldest are dropped once the ring is full. *)

val fake_count : t -> int
(** Fakes currently installed by this controller. *)
