(** Transient safety of lie installation.

    Fakes are flooded one LSA at a time; between two injections the
    network forwards with a {e partial} lie. A partial lie can loop even
    when the complete plan is correct — e.g. an override that sends R3
    via B, installed before the pin that keeps B on its old path, makes
    R3 and B point at each other. This module checks intermediate states
    and searches for an installation (and a removal) order whose every
    prefix-forwarding graph is loop-free and blackhole-free — the
    per-update consistency concern the Fibbing architecture delegates to
    its controller.

    The granularity is one converged state per injected fake; individual
    routers' update races within one flood are below this model's
    resolution (and are the subject of the ordered-update literature the
    SIGCOMM'15 paper cites). *)

type violation = {
  step : int;  (** 1-based index of the injection that broke the state. *)
  fake_id : string;  (** The fake injected at that step. *)
  problem : string;  (** Human-readable description (loop / blackhole). *)
}

val state_safe : Igp.Network.t -> prefix:Igp.Lsa.prefix -> (unit, string) result
(** Is the network's {e current} forwarding for the prefix loop-free, and
    does every router that has a route actually reach an announcer by
    following next hops? (Delegates to {!Igp.Safety.state_safe}, shared
    with the runtime watchdog.) *)

val check_order :
  Igp.Network.t ->
  prefix:Igp.Lsa.prefix ->
  Igp.Lsa.fake list ->
  (unit, violation) result
(** Simulate injecting the fakes in the given order on a clone of the
    network, checking safety after every step. *)

val safe_order :
  Igp.Network.t -> Augmentation.plan -> (Igp.Lsa.fake list, string) result
(** Greedy search for a safe installation order of the plan's fakes:
    at each step pick some uninstalled fake whose injection keeps the
    state safe. Greedy is complete here in practice because installing a
    fake never invalidates previously safe fakes of a verified plan; if
    no safe next step exists the search reports the blocked state. *)

val safe_removal_order :
  Igp.Network.t -> Augmentation.plan -> (Igp.Lsa.fake list, string) result
(** Same, for retracting an installed plan (the reverse problem: each
    intermediate state has a suffix of the lie). *)

val apply_safely :
  Igp.Network.t -> Augmentation.plan -> (unit, string) result
(** Find a safe order and inject along it. The network is untouched on
    [Error]. *)

val revert_safely :
  Igp.Network.t -> Augmentation.plan -> (unit, string) result
(** Find a safe removal order and retract along it. On [Error] the plan
    remains fully installed. *)
