module Graph = Netgraph.Graph
module Dijkstra = Netgraph.Dijkstra

type mode = Extension | Override | Hybrid

type plan = {
  prefix : Igp.Lsa.prefix;
  mode : mode;
  fakes : Igp.Lsa.fake list;
  expected : (Graph.node * (Graph.node * int) list) list;
  costs : (Graph.node * int) list;
  pinned : Graph.node list;
}

let fake_count plan = List.length plan.fakes

let ( let* ) = Result.bind

let default_tag prefix = Printf.sprintf "fib:%s" (Igp.Prefix.to_string prefix)

let fake_id ~tag ~router_name ~hop_name ~index =
  Printf.sprintf "%s/%s>%s#%d" tag router_name hop_name index

let make_fakes ~tag ~g ~prefix ~router ~total_cost weighted ~skip_one_for =
  (* One fake per multiplicity unit, except that [skip_one_for] next hops
     get their first unit from an existing real route. *)
  List.concat_map
    (fun (next_hop, mult) ->
      let from_fakes = if List.mem next_hop skip_one_for then mult - 1 else mult in
      List.init from_fakes (fun i ->
          {
            Igp.Lsa.fake_id =
              fake_id ~tag ~router_name:(Graph.name g router)
                ~hop_name:(Graph.name g next_hop) ~index:(i + 1);
            attachment = router;
            attachment_cost = 1;
            prefix;
            announced_cost = total_cost - 1;
            forwarding = next_hop;
          }))
    weighted

let no_own_fakes net prefix router =
  match Igp.Network.fib net ~router prefix with
  | None -> true
  | Some fib -> not (Igp.Fib.uses_fake fib)

let extension_plan ?(max_entries = Splitting.default_max_entries)
    ?tag net (reqs : Requirements.t) =
  let tag = Option.value ~default:(default_tag reqs.prefix) tag in
  let g = Igp.Network.graph net in
  let* () = Requirements.validate net reqs in
  let rec per_router acc = function
    | [] -> Ok (List.rev acc)
    | (rr : Requirements.router_requirement) :: rest ->
      let rname = Graph.name g rr.router in
      (match Igp.Network.fib net ~router:rr.router reqs.prefix with
      | None -> Error (Printf.sprintf "%s cannot reach %s" rname (Igp.Prefix.to_string reqs.prefix))
      | Some fib ->
        if Igp.Fib.uses_fake fib then
          Error
            (Printf.sprintf
               "%s already has fake routes for %s; retract them first" rname
               (Igp.Prefix.to_string reqs.prefix))
        else begin
          let weighted = Splitting.multiplicities ~max_entries rr.splits in
          let desired_hops = List.map fst weighted in
          let real_hops = Igp.Fib.next_hops fib in
          let missing =
            List.filter (fun nh -> not (List.mem nh desired_hops)) real_hops
          in
          if missing <> [] then
            Error
              (Printf.sprintf
                 "extension cannot remove %s's current next hop %s; use override"
                 rname
                 (Graph.name g (List.hd missing)))
          else begin
            let fakes =
              make_fakes ~tag ~g ~prefix:reqs.prefix ~router:rr.router
                ~total_cost:fib.Igp.Fib.distance weighted
                ~skip_one_for:real_hops
            in
            per_router
              ((rr.router, fib.Igp.Fib.distance, weighted, fakes) :: acc)
              rest
          end
        end)
  in
  let* rows = per_router [] reqs.routers in
  Ok
    {
      prefix = reqs.prefix;
      mode = Extension;
      fakes = List.concat_map (fun (_, _, _, fakes) -> fakes) rows;
      expected = List.map (fun (router, _, weighted, _) -> (router, weighted)) rows;
      costs = List.map (fun (router, cost, _, _) -> (router, cost)) rows;
      pinned = [];
    }

(* Distances of every router towards [target] on the physical graph. *)
let distances_towards g target =
  let reversed = Graph.reverse g in
  let r = Dijkstra.run reversed ~source:target in
  fun u -> Dijkstra.distance r u

let override_plan ?(max_entries = Splitting.default_max_entries) ?tag
    ?(pin = []) net (reqs : Requirements.t) =
  let tag = Option.value ~default:(default_tag reqs.prefix) tag in
  let g = Igp.Network.graph net in
  let* () = Requirements.validate net reqs in
  (* Targets: required routers (splits compiled to multiplicities) then
     pinned routers (multiplicities given directly). *)
  let targets =
    List.map
      (fun (rr : Requirements.router_requirement) ->
        (rr.router, Splitting.multiplicities ~max_entries rr.splits))
      reqs.routers
    @ pin
  in
  let lied = List.map fst targets in
  let* () =
    if List.length (List.sort_uniq compare lied) <> List.length lied then
      Error "override: a router is both required and pinned"
    else Ok ()
  in
  let* () =
    match List.find_opt (fun v -> not (no_own_fakes net reqs.prefix v)) lied with
    | Some v ->
      Error
        (Printf.sprintf "%s already has fake routes for %s; retract them first"
           (Graph.name g v) (Igp.Prefix.to_string reqs.prefix))
    | None -> Ok ()
  in
  (* Current SPF distances (no fakes of ours involved, per check above). *)
  let distance_of v =
    match Igp.Network.distance net ~router:v reqs.prefix with
    | Some d -> d
    | None -> max_int
  in
  let* () =
    match List.find_opt (fun v -> distance_of v = max_int) lied with
    | Some v ->
      Error (Printf.sprintf "%s cannot reach %s" (Graph.name g v) (Igp.Prefix.to_string reqs.prefix))
    | None -> Ok ()
  in
  (* dist(u -> v) for every router u, for each lied-to v. *)
  let towards = List.map (fun v -> (v, distances_towards g v)) lied in
  (* Upper bound: strictly undercut the router's own real routes. *)
  let labels = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace labels v (distance_of v - 1)) lied;
  (* Pairwise consistency: u must not be captured by v's lie. Relax to a
     fixpoint (at most |lied| passes over a shortest-path-like system). *)
  let changed = ref true and passes = ref 0 in
  while !changed && !passes <= List.length lied do
    changed := false;
    incr passes;
    List.iter
      (fun (v, dist_to_v) ->
        let lv = Hashtbl.find labels v in
        List.iter
          (fun u ->
            if u <> v then begin
              match dist_to_v u with
              | None -> ()
              | Some d ->
                let bound = d + lv - 1 in
                if Hashtbl.find labels u > bound then begin
                  Hashtbl.replace labels u bound;
                  changed := true
                end
            end)
          lied)
      towards
  done;
  let* () =
    match List.find_opt (fun v -> Hashtbl.find labels v < 1) lied with
    | Some v ->
      Error
        (Printf.sprintf
           "override: no positive fake cost exists for %s (requirements too \
            entangled)"
           (Graph.name g v))
    | None -> Ok ()
  in
  let fakes =
    List.concat_map
      (fun (router, weighted) ->
        make_fakes ~tag ~g ~prefix:reqs.prefix ~router
          ~total_cost:(Hashtbl.find labels router) weighted ~skip_one_for:[])
      targets
  in
  Ok
    {
      prefix = reqs.prefix;
      mode = Override;
      fakes;
      expected = targets;
      costs = List.map (fun v -> (v, Hashtbl.find labels v)) lied;
      pinned = List.map fst pin;
    }

(* Unified per-router compilation: extension where the requirement only
   adds paths, override where it removes some, one consistent cost
   relaxation across all lied-to routers. See the .mli for the
   invariants. *)
let hybrid_plan ?(max_entries = Splitting.default_max_entries) ?tag ?(pin = [])
    net (reqs : Requirements.t) =
  let tag = Option.value ~default:(default_tag reqs.prefix) tag in
  let g = Igp.Network.graph net in
  let* () = Requirements.validate net reqs in
  let* targets =
    (* (router, weighted, real_hops, removal_needed) *)
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | (router, weighted) :: rest ->
        let rname = Graph.name g router in
        (match Igp.Network.fib net ~router reqs.prefix with
        | None -> Error (Printf.sprintf "%s cannot reach %s" rname (Igp.Prefix.to_string reqs.prefix))
        | Some fib ->
          if Igp.Fib.uses_fake fib then
            Error
              (Printf.sprintf
                 "%s already has fake routes for %s; retract them first" rname
                 (Igp.Prefix.to_string reqs.prefix))
          else begin
            let desired_hops = List.map fst weighted in
            let real_hops = Igp.Fib.next_hops fib in
            let removal_needed =
              List.exists (fun nh -> not (List.mem nh desired_hops)) real_hops
            in
            build ((router, weighted, real_hops, removal_needed) :: acc) rest
          end)
    in
    build []
      (List.map
         (fun (rr : Requirements.router_requirement) ->
           (rr.router, Splitting.multiplicities ~max_entries rr.splits))
         reqs.routers
      @ pin)
  in
  let lied = List.map (fun (router, _, _, _) -> router) targets in
  let* () =
    if List.length (List.sort_uniq compare lied) <> List.length lied then
      Error "hybrid: a router is both required and pinned"
    else Ok ()
  in
  let distance_of v =
    match Igp.Network.distance net ~router:v reqs.prefix with
    | Some d -> d
    | None -> max_int
  in
  let towards = List.map (fun v -> (v, distances_towards g v)) lied in
  (* Start every router at its highest safe cost. *)
  let labels = Hashtbl.create 8 in
  List.iter
    (fun (v, _, _, removal_needed) ->
      Hashtbl.replace labels v (distance_of v - if removal_needed then 1 else 0))
    targets;
  (* An exact-cost tie between u's own lie (at its unchanged distance)
     and the path towards v's lie is harmless when every tied path
     enters u's existing first hops: SPF deduplicates identical next
     hops, so u's FIB is unchanged. This is exactly the situation at A
     in the paper's demo (A's tie with fB goes through B, A's current
     next hop), and allowing it is what keeps the plan at 3 fakes. *)
  let spf_from = Hashtbl.create 8 in
  let tie_allowed u v =
    let (_, _, real_hops, removal_needed) =
      List.find (fun (r, _, _, _) -> r = u) targets
    in
    if removal_needed then false
    else begin
      let result =
        match Hashtbl.find_opt spf_from u with
        | Some r -> r
        | None ->
          let r = Dijkstra.run g ~source:u in
          Hashtbl.replace spf_from u r;
          r
      in
      let hops = Dijkstra.first_hops g result ~target:v in
      hops <> [] && List.for_all (fun h -> List.mem h real_hops) hops
    end
  in
  (* Pairwise consistency: no lied-to router may be captured — or tied,
     except for the harmless case above — by another's lie. *)
  let changed = ref true and passes = ref 0 in
  while !changed && !passes <= List.length lied do
    changed := false;
    incr passes;
    List.iter
      (fun (v, dist_to_v) ->
        let lv = Hashtbl.find labels v in
        List.iter
          (fun u ->
            if u <> v then begin
              match dist_to_v u with
              | None -> ()
              | Some d ->
                let bound =
                  if d + lv = distance_of u && tie_allowed u v then d + lv
                  else d + lv - 1
                in
                if Hashtbl.find labels u > bound then begin
                  Hashtbl.replace labels u bound;
                  changed := true
                end
            end)
          lied)
      towards
  done;
  let* () =
    match List.find_opt (fun v -> Hashtbl.find labels v < 1) lied with
    | Some v ->
      Error
        (Printf.sprintf
           "hybrid: no positive fake cost exists for %s (requirements too \
            entangled)"
           (Graph.name g v))
    | None -> Ok ()
  in
  let rows =
    List.map
      (fun (router, weighted, real_hops, _) ->
        let cost = Hashtbl.find labels router in
        let extension_mode = cost = distance_of router in
        let skip_one_for = if extension_mode then real_hops else [] in
        let fakes =
          make_fakes ~tag ~g ~prefix:reqs.prefix ~router ~total_cost:cost
            weighted ~skip_one_for
        in
        (router, weighted, cost, extension_mode, fakes))
      targets
  in
  let all_extension = List.for_all (fun (_, _, _, ext, _) -> ext) rows in
  let all_override = List.for_all (fun (_, _, _, ext, _) -> not ext) rows in
  Ok
    {
      prefix = reqs.prefix;
      mode =
        (if all_extension then Extension
         else if all_override then Override
         else Hybrid);
      fakes = List.concat_map (fun (_, _, _, _, fakes) -> fakes) rows;
      expected = List.map (fun (router, weighted, _, _, _) -> (router, weighted)) rows;
      costs = List.map (fun (router, _, cost, _, _) -> (router, cost)) rows;
      pinned = List.map fst pin;
    }

let apply net plan = List.iter (Igp.Network.inject_fake net) plan.fakes

let revert net plan =
  let installed =
    List.map (fun (f : Igp.Lsa.fake) -> f.fake_id) (Igp.Network.fakes net)
  in
  List.iter
    (fun (f : Igp.Lsa.fake) ->
      if List.mem f.fake_id installed then
        Igp.Network.retract_fake net ~fake_id:f.fake_id)
    plan.fakes

(* Apply the candidate to a clone and check the whole network. *)
let verify_candidate net (reqs : Requirements.t) plan ~baseline =
  let scratch = Igp.Network.clone net in
  apply scratch plan;
  Verify.check scratch ~prefix:reqs.prefix ~expected:plan.expected ~baseline

let compile ?(max_entries = Splitting.default_max_entries) ?tag
    ?(max_repairs = 8) net (reqs : Requirements.t) =
  let g = Igp.Network.graph net in
  let baseline = Verify.snapshot net reqs.prefix in
  let collateral_pins report =
    List.filter_map
      (fun (i : Verify.issue) ->
        match i.kind with
        | `Collateral ->
          Option.map
            (fun fib -> (i.router, Igp.Fib.weights fib))
            (List.assoc_opt i.router baseline)
        | `Requirement -> None)
      report.Verify.issues
  in
  let rec attempt pin round =
    let* plan = hybrid_plan ~max_entries ?tag ~pin net reqs in
    let report = verify_candidate net reqs plan ~baseline in
    if report.Verify.ok then Ok plan
    else if round >= max_repairs then
      Error
        (Format.asprintf "augmentation could not be stabilized after %d repairs: %a"
           round
           (Verify.pp_report ~names:(Graph.name g))
           report)
    else begin
      let fresh =
        List.filter
          (fun (router, _) -> not (List.mem_assoc router pin))
          (collateral_pins report)
      in
      if fresh = [] then
        Error
          (Format.asprintf "augmentation has unrepairable issues: %a"
             (Verify.pp_report ~names:(Graph.name g))
             report)
      else attempt (pin @ fresh) (round + 1)
    end
  in
  attempt [] 0
