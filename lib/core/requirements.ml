module Graph = Netgraph.Graph

type split = { next_hop : Graph.node; fraction : float }

type router_requirement = { router : Graph.node; splits : split list }

type t = { prefix : Igp.Lsa.prefix; routers : router_requirement list }

let make ~prefix assocs =
  {
    prefix;
    routers =
      List.map
        (fun (router, splits) ->
          {
            router;
            splits =
              List.map (fun (next_hop, fraction) -> { next_hop; fraction }) splits;
          })
        assocs;
  }

let even ~prefix ~router next_hops =
  let n = List.length next_hops in
  if n = 0 then invalid_arg "Requirements.even: no next hops";
  let fraction = 1. /. float_of_int n in
  make ~prefix [ (router, List.map (fun nh -> (nh, fraction)) next_hops) ]

let find t router = List.find_opt (fun r -> r.router = router) t.routers

let validate net t =
  let g = Igp.Network.graph net in
  let errors = ref [] in
  let error fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let announcers =
    List.filter_map
      (fun (p, origin, _) -> if Igp.Prefix.equal p t.prefix then Some origin else None)
      (Igp.Lsdb.prefixes (Igp.Network.lsdb net))
  in
  if announcers = [] then error "prefix %s is not announced" (Igp.Prefix.to_string t.prefix);
  let seen_routers = Hashtbl.create 8 in
  List.iter
    (fun { router; splits } ->
      let rname = Graph.name g router in
      if Hashtbl.mem seen_routers router then
        error "router %s appears twice" rname;
      Hashtbl.replace seen_routers router ();
      if List.mem router announcers then
        error "router %s announces %s itself; its delivery cannot be overridden" rname (Igp.Prefix.to_string t.prefix);
      if splits = [] then error "router %s has no next hops" rname;
      let seen_hops = Hashtbl.create 8 in
      List.iter
        (fun { next_hop; fraction } ->
          if Hashtbl.mem seen_hops next_hop then
            error "router %s lists next hop %s twice" rname (Graph.name g next_hop);
          Hashtbl.replace seen_hops next_hop ();
          if not (Graph.has_edge g router next_hop) then
            error "%s is not a neighbor of %s" (Graph.name g next_hop) rname;
          if fraction <= 0. || fraction > 1. then
            error "router %s: fraction %g out of (0, 1]" rname fraction)
        splits;
      let sum = List.fold_left (fun acc s -> acc +. s.fraction) 0. splits in
      if abs_float (sum -. 1.) > 1e-6 then
        error "router %s: fractions sum to %g, not 1" rname sum)
    t.routers;
  match List.rev !errors with
  | [] -> Ok ()
  | errs -> Error (String.concat "; " errs)

let pp ~names fmt t =
  Format.fprintf fmt "requirements(%s):@." (Igp.Prefix.to_string t.prefix);
  List.iter
    (fun { router; splits } ->
      Format.fprintf fmt "  %s -> %a@." (names router)
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (fun fmt s -> Format.fprintf fmt "%s:%.3f" (names s.next_hop) s.fraction))
        splits)
    t.routers
