module Graph = Netgraph.Graph
module Sim = Netsim.Sim
module Monitor = Netsim.Monitor
module Link = Netsim.Link
module Flow = Netsim.Flow

(* Telemetry: no-ops while Obs is disabled. *)
let m_reactions = Obs.Metrics.counter "controller.reactions"
let m_candidates_considered = Obs.Metrics.counter "controller.candidates_considered"
let m_candidates_dropped = Obs.Metrics.counter "controller.candidates_dropped"
let g_fakes_live = Obs.Metrics.gauge "controller.fakes_live"

type strategy = Local_deflection | Global_optimal

type config = {
  max_entries : int;
  cooldown : float;
  min_avail_fraction : float;
  relax_after : float;
  escalation_depth : int;
  strategy : strategy;
  log_capacity : int;
}

let default_config =
  {
    max_entries = 4;
    cooldown = 4.;
    min_avail_fraction = 0.05;
    relax_after = 60.;
    escalation_depth = 4;
    strategy = Local_deflection;
    log_capacity = 4096;
  }

type reoptimizer =
  Igp.Network.t ->
  prefix:Igp.Lsa.prefix ->
  capacities:(Netsim.Link.t -> float) ->
  demands:(Graph.node * float) list ->
  egress:Graph.node ->
  Requirements.router_requirement list

type action = { time : float; description : string; fakes_installed : int }

type prefix_state = {
  mutable reqs : Requirements.t;
  mutable plan : Augmentation.plan;
  mutable last_action : float;
}

type t = {
  net : Igp.Network.t;
  config : config;
  reoptimize : reoptimizer option;
  states : (Igp.Lsa.prefix, prefix_state) Hashtbl.t;
  log : action Kit.Ring.t; (* bounded, oldest evicted first *)
  mutable calm_since : float option;
}

let create ?(config = default_config) ?reoptimize net =
  if config.log_capacity <= 0 then
    invalid_arg "Controller.create: log_capacity must be positive";
  {
    net;
    config;
    reoptimize;
    states = Hashtbl.create 4;
    log = Kit.Ring.create ~capacity:config.log_capacity;
    calm_since = None;
  }

let fake_count t =
  Hashtbl.fold
    (fun _ s acc -> acc + Augmentation.fake_count s.plan)
    t.states 0

let record t ~time ~prefix description =
  let fakes_installed =
    match Hashtbl.find_opt t.states prefix with
    | Some s -> Augmentation.fake_count s.plan
    | None -> 0
  in
  Kit.Ring.push t.log { time; description; fakes_installed };
  Obs.Metrics.incr m_reactions;
  if Obs.enabled () then begin
    Obs.Metrics.set g_fakes_live (float_of_int (fake_count t));
    Obs.Timeline.record ~time ~source:"controller" ~kind:"action"
      [
        ("prefix", String prefix);
        ("description", String description);
        ("fakes", Int fakes_installed);
      ]
  end

let actions t = Kit.Ring.to_list t.log

let requirements t prefix =
  Option.map (fun s -> s.reqs) (Hashtbl.find_opt t.states prefix)

let withdraw_all t =
  Hashtbl.iter (fun _ s -> Augmentation.revert t.net s.plan) t.states;
  Hashtbl.reset t.states

(* Demand-based directed link loads, split into the part caused by flows
   (of the given prefix) passing through [via] and everything else. *)
let demand_loads sim ~prefix ~via =
  let own : (Link.t, float) Hashtbl.t = Hashtbl.create 32 in
  let other : (Link.t, float) Hashtbl.t = Hashtbl.create 32 in
  let bump table link amount =
    Hashtbl.replace table link
      (amount +. Option.value ~default:0. (Hashtbl.find_opt table link))
  in
  List.iter
    (fun (flow : Flow.t) ->
      match Sim.flow_path sim flow.id with
      | None -> ()
      | Some path ->
        let mine = String.equal flow.prefix prefix && List.mem via path in
        let rec walk = function
          | u :: (v :: _ as rest) ->
            bump (if mine then own else other) (u, v) flow.demand;
            walk rest
          | _ -> ()
        in
        walk path)
    (Sim.active_flows sim);
  (own, other)

let announcers_of net prefix =
  List.filter_map
    (fun (p, origin, _) -> if String.equal p prefix then Some origin else None)
    (Igp.Lsdb.prefixes (Igp.Network.lsdb net))

let announcer_of net prefix =
  match announcers_of net prefix with [] -> None | origin :: _ -> Some origin

(* Capacity available to [v]'s traffic through candidate next hop [n]:
   the residual max-flow from n to the prefix's egress(es) once all
   foreign demand is subtracted, paths through v excluded, capped by the
   v->n link's own residual. Anycast prefixes use a super-sink fed by
   every announcer. *)
let availability t sim ~v ~egresses ~other n =
  let g = Igp.Network.graph t.net in
  let caps = Sim.capacities sim in
  let residual link =
    let foreign = Option.value ~default:0. (Hashtbl.find_opt other link) in
    max 0. (Link.capacity caps link -. foreign)
  in
  let first_hop = residual (v, n) in
  if List.mem n egresses then first_hop
  else begin
    let table : Netgraph.Maxflow.capacities = Hashtbl.create 32 in
    (* The maxflow runs on an augmented copy so a virtual super-sink can
       drain every announcer; node ids of g are preserved by copy. *)
    let g' = Graph.copy g in
    let sink = Graph.add_node g' ~name:"super-sink" in
    List.iter
      (fun egress ->
        Graph.add_edge g' egress sink ~weight:1;
        Hashtbl.replace table (egress, sink) infinity)
      egresses;
    List.iter
      (fun (a, b, _) ->
        if a <> v && b <> v then Hashtbl.replace table (a, b) (residual (a, b)))
      (Graph.edges g);
    min first_hop (Netgraph.Maxflow.max_flow g' table ~source:n ~sink)
  end

(* Candidate next hops at [v]: current ones plus loop-free alternates
   (neighbors n with D(n) < w(v->n reversed) + D(v), the standard LFA
   condition with the direct-link upper bound on dist(n, v)). *)
let candidates t ~prefix ~v =
  let g = Igp.Network.graph t.net in
  let current = Igp.Network.next_hops t.net ~router:v prefix in
  let dv = Igp.Network.distance t.net ~router:v prefix in
  let alternates =
    match dv with
    | None -> []
    | Some dv ->
      List.filter_map
        (fun (n, _) ->
          if List.mem n current then None
          else begin
            match
              (Igp.Network.distance t.net ~router:n prefix, Graph.weight g n v)
            with
            | Some dn, Some w_nv when dn < w_nv + dv -> Some n
            | Some _, (Some _ | None) | None, _ -> None
          end)
        (Graph.succ g v)
  in
  current @ alternates

(* Two requirement sets are equivalent when they compile to the same FIB
   entry multiplicities everywhere: re-lying for a sub-quantum change is
   pure churn. *)
let same_requirements ~max_entries a b =
  let norm routers =
    List.sort compare
      (List.map
         (fun (rr : Requirements.router_requirement) ->
           (rr.router, List.sort compare (Splitting.multiplicities ~max_entries rr.splits)))
         routers)
  in
  norm a = norm b

(* Install (or refresh) requirements for a prefix. Returns true when
   something was changed. *)
let install_requirements t ~time ~prefix ~description routers =
  let previous = Hashtbl.find_opt t.states prefix in
  let unchanged =
    match previous with
    | Some s ->
      same_requirements ~max_entries:t.config.max_entries s.reqs.routers routers
    | None -> false
  in
  if unchanged then false
  else begin
    let reqs = { Requirements.prefix; routers } in
    let rollback message =
      Option.iter
        (fun s ->
          Augmentation.apply t.net s.plan;
          s.last_action <- time)
        previous;
      record t ~time ~prefix message;
      false
    in
    (* Recompile from a clean slate: retract our previous lies first. *)
    Option.iter (fun s -> Augmentation.revert t.net s.plan) previous;
    match Augmentation.compile ~max_entries:t.config.max_entries t.net reqs with
    | Ok plan ->
      (* Safety gate: requirements merged across reactions were each
         computed against a lied-to network, so the combination could
         form a forwarding cycle even though every router obeys it.
         Reject any steering whose end state is not loop-free. *)
      let scratch = Igp.Network.clone t.net in
      Augmentation.apply scratch plan;
      Igp.Network.warm scratch;
      (match Transient.state_safe scratch ~prefix with
      | Error reason ->
        rollback (Printf.sprintf "rejected steering (unsafe end state): %s" reason)
      | Ok () ->
        (* Inject in a transiently safe order when one exists; a verified
           plan always has one in practice, but never leave the network
           half-fixed if the search fails. *)
        (match Transient.apply_safely t.net plan with
        | Ok () -> ()
        | Error _ -> Augmentation.apply t.net plan);
        Hashtbl.replace t.states prefix { reqs; plan; last_action = time };
        record t ~time ~prefix description;
        true)
    | Error message -> rollback (Printf.sprintf "compile failed: %s" message)
  end

(* Merge one router's new splits into the prefix's requirements. *)
let install t ~time ~prefix ~router splits =
  let g = Igp.Network.graph t.net in
  let merged =
    { Requirements.router; splits }
    ::
    (match Hashtbl.find_opt t.states prefix with
    | None -> []
    | Some s ->
      List.filter
        (fun (rr : Requirements.router_requirement) -> rr.router <> router)
        s.reqs.routers)
  in
  let unchanged_at_router =
    match Hashtbl.find_opt t.states prefix with
    | Some s ->
      (match Requirements.find s.reqs router with
      | Some rr ->
        same_requirements ~max_entries:t.config.max_entries [ rr ]
          [ { Requirements.router; splits } ]
      | None -> false)
    | None -> false
  in
  if unchanged_at_router then false
  else
    install_requirements t ~time ~prefix
      ~description:
        (Format.asprintf "steer %s at %s: %a" prefix (Graph.name g router)
           (Format.pp_print_list
              ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
              (fun fmt (s : Requirements.split) ->
                Format.fprintf fmt "%s=%.2f" (Graph.name g s.next_hop) s.fraction))
           splits)
      merged

let cooldown_active t ~time prefix =
  match Hashtbl.find_opt t.states prefix with
  | Some s -> time -. s.last_action < t.config.cooldown
  | None -> false

let rec handle_router t sim ~time ~prefix ~visited ~depth v =
  let g = Igp.Network.graph t.net in
  if List.mem v visited || depth > t.config.escalation_depth then ()
  else begin
    match announcers_of t.net prefix with
    | [] -> ()
    | egresses when List.mem v egresses -> ()
    | egresses ->
      let own, other = demand_loads sim ~prefix ~via:v in
      let own_demand =
        (* Demand entering v for this prefix: flows through v, counted
           once each (their demand on the first outgoing link sums to the
           total since each flow leaves v exactly once). *)
        List.fold_left
          (fun acc (flow : Flow.t) ->
            match Sim.flow_path sim flow.id with
            | Some path when String.equal flow.prefix prefix && List.mem v path ->
              acc +. flow.demand
            | Some _ | None -> acc)
          0. (Sim.active_flows sim)
      in
      let cands = candidates t ~prefix ~v in
      let avails =
        List.map (fun n -> (n, availability t sim ~v ~egresses ~other n)) cands
      in
      let total_avail = List.fold_left (fun acc (_, a) -> acc +. a) 0. avails in
      let kept =
        List.filter
          (fun (_, a) -> a > t.config.min_avail_fraction *. total_avail)
          avails
      in
      (* The FIB width bounds how many next hops a lie can install: keep
         the most capacious candidates. *)
      let kept =
        List.filteri
          (fun i _ -> i < t.config.max_entries)
          (List.stable_sort (fun (_, a) (_, b) -> compare b a) kept)
        |> List.sort compare
      in
      let kept_total = List.fold_left (fun acc (_, a) -> acc +. a) 0. kept in
      Obs.Metrics.add m_candidates_considered (List.length cands);
      Obs.Metrics.add m_candidates_dropped
        (List.length cands - List.length kept);
      (if List.length kept >= 1 && kept_total > 0.
          && not (cooldown_active t ~time prefix)
      then begin
        let splits =
          List.map
            (fun (n, a) ->
              { Requirements.next_hop = n; fraction = a /. kept_total })
            kept
        in
        ignore (install t ~time ~prefix ~router:v splits)
      end);
      (* Not enough capacity from here: walk towards the heaviest
         upstream neighbor feeding v. *)
      if kept_total < own_demand -. 1e-9 then begin
        ignore own;
        let inflow = Hashtbl.create 4 in
        List.iter
          (fun (flow : Flow.t) ->
            match Sim.flow_path sim flow.id with
            | Some path when String.equal flow.prefix prefix ->
              let rec find_pred = function
                | u :: (w :: _ as rest) ->
                  if w = v then
                    Hashtbl.replace inflow u
                      (flow.Flow.demand
                      +. Option.value ~default:0. (Hashtbl.find_opt inflow u))
                  else find_pred rest
                | _ -> ()
              in
              find_pred path
            | Some _ | None -> ())
          (Sim.active_flows sim);
        let best =
          Hashtbl.fold
            (fun u d acc ->
              match acc with
              | Some (_, bd) when bd >= d -> acc
              | Some _ | None -> Some (u, d))
            inflow None
        in
        match best with
        | Some (u, _) when u <> v ->
          if Obs.enabled () then
            Obs.Timeline.record ~time ~source:"controller" ~kind:"escalate"
              [
                ("prefix", String prefix);
                ("from", String (Graph.name g v));
                ("to", String (Graph.name g u));
                ("depth", Int (depth + 1));
              ];
          handle_router t sim ~time ~prefix ~visited:(v :: visited)
            ~depth:(depth + 1) u
        | Some _ | None -> ignore g
      end
  end

(* Global strategy: recompute the optimal splits for the prefix's whole
   demand set and install them wholesale. *)
let handle_global t sim ~time ~prefix =
  if cooldown_active t ~time prefix then ()
  else begin
    match (announcer_of t.net prefix, t.reoptimize) with
    | None, _ -> ()
    | Some _, None ->
      record t ~time ~prefix "global strategy needs a reoptimizer; skipping"
    | Some egress, Some reoptimize ->
      let by_src = Hashtbl.create 4 in
      List.iter
        (fun (flow : Flow.t) ->
          if String.equal flow.prefix prefix && flow.src <> egress then
            Hashtbl.replace by_src flow.src
              (flow.demand
              +. Option.value ~default:0. (Hashtbl.find_opt by_src flow.src)))
        (Sim.active_flows sim);
      let demands =
        Hashtbl.fold (fun src d acc -> (src, d) :: acc) by_src []
        |> List.sort compare
      in
      if demands <> [] then begin
        (* Compute the target routing against a lie-free clone. *)
        let scratch = Igp.Network.clone t.net in
        (match Hashtbl.find_opt t.states prefix with
        | Some s -> Augmentation.revert scratch s.plan
        | None -> ());
        let capacities link = Netsim.Link.capacity (Sim.capacities sim) link in
        let routers = reoptimize scratch ~prefix ~capacities ~demands ~egress in
        if routers <> [] then
          ignore
            (install_requirements t ~time ~prefix
               ~description:
                 (Printf.sprintf "re-optimize %s: %d routers steered" prefix
                    (List.length routers))
               routers)
      end
  end

let handle_link t sim ~time (x, y) =
  (* Dominant prefix on the congested link, by offered demand. *)
  let by_prefix = Hashtbl.create 4 in
  List.iter
    (fun (flow : Flow.t) ->
      match Sim.flow_path sim flow.id with
      | None -> ()
      | Some path ->
        let rec crosses = function
          | u :: (v :: _ as rest) -> (u = x && v = y) || crosses rest
          | _ -> false
        in
        if crosses path then
          Hashtbl.replace by_prefix flow.prefix
            (flow.demand
            +. Option.value ~default:0. (Hashtbl.find_opt by_prefix flow.prefix)))
    (Sim.active_flows sim);
  let dominant =
    Hashtbl.fold
      (fun prefix d acc ->
        match acc with
        | Some (_, bd) when bd >= d -> acc
        | Some _ | None -> Some (prefix, d))
      by_prefix None
  in
  match dominant with
  | None -> ()
  | Some (prefix, _) ->
    (match t.config.strategy with
    | Local_deflection -> handle_router t sim ~time ~prefix ~visited:[] ~depth:0 x
    | Global_optimal -> handle_global t sim ~time ~prefix)

let react t sim _alarms =
  match Sim.monitor sim with
  | None -> ()
  | Some monitor ->
    let time = Sim.time sim in
    let utilizations = Monitor.utilizations monitor in
    (* Withdrawal: sustained calm retracts all lies. *)
    let calm =
      List.for_all
        (fun (_, u) -> u < Monitor.clear_threshold monitor)
        utilizations
    in
    (match (calm, t.calm_since) with
    | false, _ -> t.calm_since <- None
    | true, None -> t.calm_since <- Some time
    | true, Some since ->
      if time -. since >= t.config.relax_after && fake_count t > 0 then begin
        withdraw_all t;
        Kit.Ring.push t.log
          { time; description = "calm period over: all lies withdrawn";
            fakes_installed = 0 };
        Obs.Metrics.incr m_reactions;
        if Obs.enabled () then begin
          Obs.Metrics.set g_fakes_live 0.;
          Obs.Timeline.record ~time ~source:"controller" ~kind:"withdraw"
            [ ("reason", String "calm period over") ]
        end;
        t.calm_since <- None
      end);
    (* React to the currently hottest link above threshold (not only to
       edge-triggered alarms: a link stuck above threshold after an
       insufficient fix must be revisited). *)
    let hot =
      List.filter (fun (_, u) -> u > Monitor.threshold monitor) utilizations
    in
    let worst =
      List.fold_left
        (fun acc (link, u) ->
          match acc with
          | Some (_, bu) when bu >= u -> acc
          | Some _ | None -> Some (link, u))
        None hot
    in
    (match worst with
    | Some (link, _) -> handle_link t sim ~time link
    | None -> ())

let attach t sim = Sim.on_poll sim (fun sim alarms -> react t sim alarms)
