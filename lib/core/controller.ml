module Graph = Netgraph.Graph
module Sim = Netsim.Sim
module Monitor = Netsim.Monitor
module Link = Netsim.Link
module Flow = Netsim.Flow

(* Telemetry: no-ops while Obs is disabled. *)
let m_reactions = Obs.Metrics.counter "controller.reactions"
let m_candidates_considered = Obs.Metrics.counter "controller.candidates_considered"
let m_candidates_dropped = Obs.Metrics.counter "controller.candidates_dropped"
let m_quarantines = Obs.Metrics.counter "controller.quarantines"
let m_resyncs = Obs.Metrics.counter "controller.resyncs"
let g_fakes_live = Obs.Metrics.gauge "controller.fakes_live"

type strategy = Local_deflection | Global_optimal

type config = {
  max_entries : int;
  cooldown : float;
  min_avail_fraction : float;
  relax_after : float;
  escalation_depth : int;
  strategy : strategy;
  log_capacity : int;
  lie_ttl : float;
  max_backoff : float;
  quarantine_hold : float;
  seat : Graph.node option;
}

let default_config =
  {
    max_entries = 4;
    cooldown = 4.;
    min_avail_fraction = 0.05;
    relax_after = 60.;
    escalation_depth = 4;
    strategy = Local_deflection;
    log_capacity = 4096;
    lie_ttl = 30.;
    max_backoff = 60.;
    quarantine_hold = 12.;
    seat = None;
  }

type reoptimizer =
  Igp.Network.t ->
  prefix:Igp.Lsa.prefix ->
  capacities:(Netsim.Link.t -> float) ->
  demands:(Graph.node * float) list ->
  egress:Graph.node ->
  Requirements.router_requirement list

type action = { time : float; description : string; fakes_installed : int }

type prefix_state = {
  mutable reqs : Requirements.t;
  mutable plan : Augmentation.plan;
  mutable last_action : float;
}

type t = {
  net : Igp.Network.t;
  config : config;
  reoptimize : reoptimizer option;
  states : (Igp.Lsa.prefix, prefix_state) Hashtbl.t;
  (* Lies found in the LSDB at restart and taken over (refreshed,
     counted, withdrawn on calm) without a reconstructed plan. *)
  adopted : (Igp.Lsa.prefix, Igp.Lsa.fake list) Hashtbl.t;
  log : action Kit.Ring.t; (* bounded, oldest evicted first *)
  (* Hold-down: prefixes whose lies were quarantined, with the time the
     hold expires. No new steering for a held prefix. *)
  quarantined : (Igp.Lsa.prefix, float) Hashtbl.t;
  mutable calm_since : float option;
  mutable alive : bool;
  (* Exponential backoff for reactions that keep changing nothing. *)
  mutable failures : int;
  mutable backoff_until : float;
  (* Routers reachable from the seat at the last reaction; growth means
     a partition healed and triggers an adopt-or-withdraw resync. -1 =
     never measured (or no seat configured). *)
  mutable reachable_count : int;
}

let create ?(config = default_config) ?reoptimize net =
  if config.log_capacity <= 0 then
    invalid_arg "Controller.create: log_capacity must be positive";
  if config.lie_ttl <= 0. then
    invalid_arg "Controller.create: lie_ttl must be positive";
  if config.max_backoff < config.cooldown then
    invalid_arg "Controller.create: max_backoff must be >= cooldown";
  if config.quarantine_hold < 0. then
    invalid_arg "Controller.create: quarantine_hold must be >= 0";
  {
    net;
    config;
    reoptimize;
    states = Hashtbl.create 4;
    adopted = Hashtbl.create 4;
    log = Kit.Ring.create ~capacity:config.log_capacity;
    quarantined = Hashtbl.create 4;
    calm_since = None;
    alive = true;
    failures = 0;
    backoff_until = neg_infinity;
    reachable_count = -1;
  }

let fake_count t =
  Hashtbl.fold (fun _ s acc -> acc + Augmentation.fake_count s.plan) t.states 0
  + Hashtbl.fold (fun _ fakes acc -> acc + List.length fakes) t.adopted 0

let alive t = t.alive

let consecutive_failures t = t.failures

(* Every fake this controller is responsible for keeping alive. *)
let owned_ids t =
  let ids = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ s ->
      List.iter
        (fun (f : Igp.Lsa.fake) -> Hashtbl.replace ids f.fake_id ())
        s.plan.Augmentation.fakes)
    t.states;
  Hashtbl.iter
    (fun _ fakes ->
      List.iter
        (fun (f : Igp.Lsa.fake) -> Hashtbl.replace ids f.fake_id ())
        fakes)
    t.adopted;
  ids

let stamp t ~time (f : Igp.Lsa.fake) =
  Igp.Lsdb.set_fake_expiry
    (Igp.Network.lsdb t.net)
    ~fake_id:f.fake_id ~now:time ~ttl:t.config.lie_ttl

let refresh_lies t ~time =
  let owned = owned_ids t in
  Igp.Lsdb.refresh_fakes
    (Igp.Network.lsdb t.net)
    ~now:time ~ttl:t.config.lie_ttl
    ~owned:(fun (f : Igp.Lsa.fake) -> Hashtbl.mem owned f.fake_id)

let record t ~time ~prefix description =
  let fakes_installed =
    match Hashtbl.find_opt t.states prefix with
    | Some s -> Augmentation.fake_count s.plan
    | None -> 0
  in
  Kit.Ring.push t.log { time; description; fakes_installed };
  Obs.Metrics.incr m_reactions;
  if Obs.enabled () then begin
    Obs.Metrics.set g_fakes_live (float_of_int (fake_count t));
    Obs.Timeline.record ~time ~source:"controller" ~kind:"action"
      [
        ("prefix", String (Igp.Prefix.to_string prefix));
        ("description", String description);
        ("fakes", Int fakes_installed);
      ]
  end

let actions t = Kit.Ring.to_list t.log

let requirements t prefix =
  Option.map (fun s -> s.reqs) (Hashtbl.find_opt t.states prefix)

let retract_if_installed t (f : Igp.Lsa.fake) =
  if Igp.Lsdb.installed (Igp.Network.lsdb t.net) f.fake_id then
    Igp.Network.retract_fake t.net ~fake_id:f.fake_id

let withdraw_all t =
  Hashtbl.iter (fun _ s -> Augmentation.revert t.net s.plan) t.states;
  Hashtbl.iter (fun _ fakes -> List.iter (retract_if_installed t) fakes) t.adopted;
  Hashtbl.reset t.states;
  Hashtbl.reset t.adopted

let announcers_of net prefix =
  List.filter_map
    (fun (p, origin, _) -> if Igp.Prefix.equal p prefix then Some origin else None)
    (Igp.Lsdb.prefixes (Igp.Network.lsdb net))

let announcer_of net prefix =
  match announcers_of net prefix with [] -> None | origin :: _ -> Some origin

let quarantine_active t ~time prefix =
  match Hashtbl.find_opt t.quarantined prefix with
  | Some until when time < until -> true
  | Some _ -> Hashtbl.remove t.quarantined prefix; false
  | None -> false

(* A violation was attributed to this prefix's lies (by our own
   revalidation or by the watchdog): withdraw them all and hold the
   prefix down — no new steering until a clean window has passed. *)
let quarantine t ~time ~prefix ~reason =
  if t.alive then begin
    let lsdb = Igp.Network.lsdb t.net in
    (match Hashtbl.find_opt t.states prefix with
    | Some s ->
      (* Withdraw in a transiently safe order when one exists. A state
         that is already unsafe often admits none (and a watchdog purge
         may have left the plan partially installed, which the order
         search cannot replay) — then retract outright: better a
         transient gap than a persistent loop. *)
      let complete =
        List.for_all
          (fun (f : Igp.Lsa.fake) -> Igp.Lsdb.installed lsdb f.fake_id)
          s.plan.Augmentation.fakes
      in
      let safely =
        if complete then Transient.revert_safely t.net s.plan
        else Error "plan partially installed"
      in
      (match safely with
      | Ok () -> ()
      | Error _ -> Augmentation.revert t.net s.plan);
      Hashtbl.remove t.states prefix
    | None -> ());
    (match Hashtbl.find_opt t.adopted prefix with
    | Some fakes ->
      List.iter (retract_if_installed t) fakes;
      Hashtbl.remove t.adopted prefix
    | None -> ());
    (* Orphans from a predecessor controller go too: a quarantine must
       leave the prefix lie-free. *)
    List.iter
      (fun (f : Igp.Lsa.fake) ->
        if Igp.Prefix.equal f.prefix prefix then retract_if_installed t f)
      (Igp.Network.fakes t.net);
    Hashtbl.replace t.quarantined prefix (time +. t.config.quarantine_hold);
    t.calm_since <- None;
    Obs.Metrics.incr m_quarantines;
    record t ~time ~prefix (Printf.sprintf "quarantine: %s" reason);
    if Obs.enabled () then
      Obs.Timeline.record ~time ~source:"controller" ~kind:"quarantine"
        [
          ("prefix", String (Igp.Prefix.to_string prefix));
          ("reason", String reason);
          ("hold_until", Float (time +. t.config.quarantine_hold));
        ]
  end

(* Re-check every prefix we steer against the live network. Registered
   on [Sim.on_route_change], so it runs when a topology change lands —
   before any flow is routed over it: a lie set the change turned unsafe
   is withdrawn within the same convergence. *)
let revalidate t sim =
  if t.alive then begin
    let time = Sim.time sim in
    let prefixes = Hashtbl.create 4 in
    Hashtbl.iter (fun p _ -> Hashtbl.replace prefixes p ()) t.states;
    Hashtbl.iter (fun p _ -> Hashtbl.replace prefixes p ()) t.adopted;
    Hashtbl.iter
      (fun prefix () ->
        match Transient.state_safe t.net ~prefix with
        | Ok () -> ()
        | Error reason ->
          quarantine t ~time ~prefix
            ~reason:
              (Printf.sprintf "topology change made steering unsafe: %s"
                 reason))
      prefixes
  end

let crash t =
  if t.alive then begin
    t.alive <- false;
    (* Memory is gone; the lies are not. They survive in the LSDB and,
       no longer refreshed, age out there (Sim expires them) — the
       paper's fail-safe. The action log is an observer artifact and is
       deliberately kept for post-mortems. *)
    Hashtbl.reset t.states;
    Hashtbl.reset t.adopted;
    Hashtbl.reset t.quarantined;
    t.calm_since <- None;
    t.failures <- 0;
    t.backoff_until <- neg_infinity;
    t.reachable_count <- -1;
    if Obs.enabled () then begin
      Obs.Metrics.set g_fakes_live 0.;
      Obs.Timeline.record ~time:(Obs.Clock.now ()) ~source:"controller"
        ~kind:"crash" []
    end
  end

let restart t ~time =
  if not t.alive then begin
    t.alive <- true;
    t.calm_since <- None;
    t.failures <- 0;
    t.backoff_until <- neg_infinity;
    t.reachable_count <- -1;
    (* Resync from the network, not from memory: every surviving fake is
       either adopted (still meaningful: its prefix is announced and its
       forwarding link exists) and refreshed from now on, or withdrawn.
       Never blindly reinstall — the pre-crash steering may be stale. *)
    let g = Igp.Network.graph t.net in
    let adopted = ref 0 and withdrawn = ref 0 in
    List.iter
      (fun (f : Igp.Lsa.fake) ->
        let valid =
          announcers_of t.net f.prefix <> []
          && Graph.has_edge g f.attachment f.forwarding
        in
        if valid then begin
          Hashtbl.replace t.adopted f.prefix
            (f :: Option.value ~default:[] (Hashtbl.find_opt t.adopted f.prefix));
          stamp t ~time f;
          incr adopted
        end
        else begin
          Igp.Network.retract_fake t.net ~fake_id:f.fake_id;
          incr withdrawn
        end)
      (Igp.Network.fakes t.net);
    Kit.Ring.push t.log
      {
        time;
        description =
          Printf.sprintf "restart: %d lies adopted, %d withdrawn" !adopted
            !withdrawn;
        fakes_installed = fake_count t;
      };
    Obs.Metrics.incr m_reactions;
    if Obs.enabled () then begin
      Obs.Metrics.set g_fakes_live (float_of_int (fake_count t));
      Obs.Timeline.record ~time ~source:"controller" ~kind:"restart"
        [ ("adopted", Int !adopted); ("withdrawn", Int !withdrawn) ]
    end
  end

(* Routers reachable from the controller's seat over the live topology.
   During a partition, telemetry from the far side cannot reach the
   controller: links with no reachable endpoint are invisible to it. *)
let reachable_set t seat =
  let g = Igp.Network.graph t.net in
  let seen = Hashtbl.create 16 in
  let queue = Queue.create () in
  Hashtbl.replace seen seat ();
  Queue.add seat queue;
  while not (Queue.is_empty queue) do
    let r = Queue.pop queue in
    List.iter
      (fun (n, _) ->
        if not (Hashtbl.mem seen n) then begin
          Hashtbl.replace seen n ();
          Queue.add n queue
        end)
      (Graph.succ g r)
  done;
  seen

(* Reachability grew (a partition healed): re-run the adopt-or-withdraw
   judgement on every adopted lie, re-check every owned steering, and
   clear the backoff so the controller re-engages promptly. Mirrors the
   resync [restart] performs, but with memory intact. *)
let resync t ~time ~reason =
  let g = Igp.Network.graph t.net in
  let lsdb = Igp.Network.lsdb t.net in
  let kept = ref 0 and withdrawn = ref 0 in
  let adopted =
    Hashtbl.fold (fun p fakes acc -> (p, fakes) :: acc) t.adopted []
  in
  List.iter
    (fun (prefix, fakes) ->
      let valid, invalid =
        List.partition
          (fun (f : Igp.Lsa.fake) ->
            Igp.Lsdb.installed lsdb f.fake_id
            && announcers_of t.net f.prefix <> []
            && Graph.has_edge g f.attachment f.forwarding)
          fakes
      in
      List.iter (retract_if_installed t) invalid;
      withdrawn := !withdrawn + List.length invalid;
      kept := !kept + List.length valid;
      if valid = [] then Hashtbl.remove t.adopted prefix
      else Hashtbl.replace t.adopted prefix valid)
    adopted;
  List.iter
    (fun prefix ->
      match Transient.state_safe t.net ~prefix with
      | Ok () -> ()
      | Error why ->
        quarantine t ~time ~prefix
          ~reason:(Printf.sprintf "resync found unsafe steering: %s" why))
    (Hashtbl.fold (fun p _ acc -> p :: acc) t.states []);
  t.failures <- 0;
  t.backoff_until <- neg_infinity;
  Obs.Metrics.incr m_resyncs;
  Kit.Ring.push t.log
    {
      time;
      description =
        Printf.sprintf "resync (%s): %d adopted lies kept, %d withdrawn"
          reason !kept !withdrawn;
      fakes_installed = fake_count t;
    };
  if Obs.enabled () then begin
    Obs.Metrics.set g_fakes_live (float_of_int (fake_count t));
    Obs.Timeline.record ~time ~source:"controller" ~kind:"resync"
      [
        ("reason", String reason);
        ("kept", Int !kept);
        ("withdrawn", Int !withdrawn);
      ]
  end

(* Demand-based directed link loads, split into the part caused by flows
   (of the given prefix) passing through [via] and everything else. *)
let demand_loads sim ~prefix ~via =
  let own : (Link.t, float) Hashtbl.t = Hashtbl.create 32 in
  let other : (Link.t, float) Hashtbl.t = Hashtbl.create 32 in
  let bump table link amount =
    Hashtbl.replace table link
      (amount +. Option.value ~default:0. (Hashtbl.find_opt table link))
  in
  List.iter
    (fun (flow : Flow.t) ->
      match Sim.flow_path sim flow.id with
      | None -> ()
      | Some path ->
        let mine = Igp.Prefix.equal flow.prefix prefix && List.mem via path in
        let rec walk = function
          | u :: (v :: _ as rest) ->
            bump (if mine then own else other) (u, v) flow.demand;
            walk rest
          | _ -> ()
        in
        walk path)
    (Sim.active_flows sim);
  (own, other)

(* Capacity available to [v]'s traffic through candidate next hop [n]:
   the residual max-flow from n to the prefix's egress(es) once all
   foreign demand is subtracted, paths through v excluded, capped by the
   v->n link's own residual. Anycast prefixes use a super-sink fed by
   every announcer. *)
let availability t sim ~v ~egresses ~other n =
  let g = Igp.Network.graph t.net in
  let caps = Sim.capacities sim in
  let residual link =
    let foreign = Option.value ~default:0. (Hashtbl.find_opt other link) in
    max 0. (Link.capacity caps link -. foreign)
  in
  let first_hop = residual (v, n) in
  if List.mem n egresses then first_hop
  else begin
    let table : Netgraph.Maxflow.capacities = Hashtbl.create 32 in
    (* The maxflow runs on an augmented copy so a virtual super-sink can
       drain every announcer; node ids of g are preserved by copy. *)
    let g' = Graph.copy g in
    let sink = Graph.add_node g' ~name:"super-sink" in
    List.iter
      (fun egress ->
        Graph.add_edge g' egress sink ~weight:1;
        Hashtbl.replace table (egress, sink) infinity)
      egresses;
    List.iter
      (fun (a, b, _) ->
        if a <> v && b <> v then Hashtbl.replace table (a, b) (residual (a, b)))
      (Graph.edges g);
    min first_hop (Netgraph.Maxflow.max_flow g' table ~source:n ~sink)
  end

(* Candidate next hops at [v]: current ones plus loop-free alternates
   (neighbors n with D(n) < w(v->n reversed) + D(v), the standard LFA
   condition with the direct-link upper bound on dist(n, v)). *)
let candidates t ~prefix ~v =
  let g = Igp.Network.graph t.net in
  let current = Igp.Network.next_hops t.net ~router:v prefix in
  let dv = Igp.Network.distance t.net ~router:v prefix in
  let alternates =
    match dv with
    | None -> []
    | Some dv ->
      List.filter_map
        (fun (n, _) ->
          if List.mem n current then None
          else begin
            match
              (Igp.Network.distance t.net ~router:n prefix, Graph.weight g n v)
            with
            | Some dn, Some w_nv when dn < w_nv + dv -> Some n
            | Some _, (Some _ | None) | None, _ -> None
          end)
        (Graph.succ g v)
  in
  current @ alternates

(* Two requirement sets are equivalent when they compile to the same FIB
   entry multiplicities everywhere: re-lying for a sub-quantum change is
   pure churn. *)
let same_requirements ~max_entries a b =
  let norm routers =
    List.sort compare
      (List.map
         (fun (rr : Requirements.router_requirement) ->
           (rr.router, List.sort compare (Splitting.multiplicities ~max_entries rr.splits)))
         routers)
  in
  norm a = norm b

(* Install (or refresh) requirements for a prefix. Returns true when
   something was changed. *)
let install_requirements t ~time ~prefix ~description routers =
  if quarantine_active t ~time prefix then false
  else begin
  let previous = Hashtbl.find_opt t.states prefix in
  let unchanged =
    match previous with
    | Some s ->
      same_requirements ~max_entries:t.config.max_entries s.reqs.routers routers
    | None -> false
  in
  if unchanged then false
  else begin
    let reqs = { Requirements.prefix; routers } in
    (* Lies adopted at restart for this prefix are superseded by any
       freshly computed steering; pull them first (and put them back on
       rollback) so their ids cannot collide with the new plan's. *)
    let adopted_here =
      Option.value ~default:[] (Hashtbl.find_opt t.adopted prefix)
    in
    let rollback message =
      (* The previous steering may no longer be installable — a link it
         forwards over can have failed since. Reinstall what still fits
         the topology and drop the rest; never die mid-reaction. *)
      Option.iter
        (fun s ->
          (match Augmentation.apply t.net s.plan with
          | () -> List.iter (stamp t ~time) s.plan.Augmentation.fakes
          | exception Invalid_argument _ ->
            Augmentation.revert t.net s.plan;
            Hashtbl.remove t.states prefix);
          s.last_action <- time)
        previous;
      let readopted =
        List.filter
          (fun (f : Igp.Lsa.fake) ->
            match Igp.Network.inject_fake t.net f with
            | () -> stamp t ~time f; true
            | exception Invalid_argument _ -> false)
          adopted_here
      in
      if readopted <> [] then Hashtbl.replace t.adopted prefix readopted;
      record t ~time ~prefix message;
      false
    in
    (* Recompile from a clean slate: retract our previous lies first. *)
    Option.iter (fun s -> Augmentation.revert t.net s.plan) previous;
    List.iter (retract_if_installed t) adopted_here;
    Hashtbl.remove t.adopted prefix;
    match Augmentation.compile ~max_entries:t.config.max_entries t.net reqs with
    | Ok plan ->
      (* Safety gate: requirements merged across reactions were each
         computed against a lied-to network, so the combination could
         form a forwarding cycle even though every router obeys it.
         Reject any steering whose end state is not loop-free. *)
      let scratch = Igp.Network.clone t.net in
      Augmentation.apply scratch plan;
      Igp.Network.warm scratch;
      (match Transient.state_safe scratch ~prefix with
      | Error reason ->
        rollback (Printf.sprintf "rejected steering (unsafe end state): %s" reason)
      | Ok () ->
        (* Inject in a transiently safe order when one exists; a verified
           plan always has one in practice, but never leave the network
           half-fixed if the search fails. *)
        (match Transient.apply_safely t.net plan with
        | Ok () -> ()
        | Error _ -> Augmentation.apply t.net plan);
        Hashtbl.replace t.states prefix { reqs; plan; last_action = time };
        (* Lies are born mortal: without this first stamp, a controller
           crash right after installing would leave them orphaned
           forever. *)
        List.iter (stamp t ~time) plan.Augmentation.fakes;
        record t ~time ~prefix description;
        true)
    | Error message -> rollback (Printf.sprintf "compile failed: %s" message)
  end
  end

(* Merge one router's new splits into the prefix's requirements. *)
let install t ~time ~prefix ~router splits =
  let g = Igp.Network.graph t.net in
  let merged =
    { Requirements.router; splits }
    ::
    (match Hashtbl.find_opt t.states prefix with
    | None -> []
    | Some s ->
      List.filter
        (fun (rr : Requirements.router_requirement) -> rr.router <> router)
        s.reqs.routers)
  in
  let unchanged_at_router =
    match Hashtbl.find_opt t.states prefix with
    | Some s ->
      (match Requirements.find s.reqs router with
      | Some rr ->
        same_requirements ~max_entries:t.config.max_entries [ rr ]
          [ { Requirements.router; splits } ]
      | None -> false)
    | None -> false
  in
  if unchanged_at_router then false
  else
    install_requirements t ~time ~prefix
      ~description:
        (Format.asprintf "steer %s at %s: %a" (Igp.Prefix.to_string prefix) (Graph.name g router)
           (Format.pp_print_list
              ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
              (fun fmt (s : Requirements.split) ->
                Format.fprintf fmt "%s=%.2f" (Graph.name g s.next_hop) s.fraction))
           splits)
      merged

let cooldown_active t ~time prefix =
  match Hashtbl.find_opt t.states prefix with
  | Some s -> time -. s.last_action < t.config.cooldown
  | None -> false

let rec handle_router t sim ~time ~prefix ~visited ~depth v =
  let g = Igp.Network.graph t.net in
  if List.mem v visited || depth > t.config.escalation_depth then ()
  else begin
    match announcers_of t.net prefix with
    | [] -> ()
    | egresses when List.mem v egresses -> ()
    | egresses ->
      let own, other = demand_loads sim ~prefix ~via:v in
      let own_demand =
        (* Demand entering v for this prefix: flows through v, counted
           once each (their demand on the first outgoing link sums to the
           total since each flow leaves v exactly once). *)
        List.fold_left
          (fun acc (flow : Flow.t) ->
            match Sim.flow_path sim flow.id with
            | Some path when Igp.Prefix.equal flow.prefix prefix && List.mem v path ->
              acc +. flow.demand
            | Some _ | None -> acc)
          0. (Sim.active_flows sim)
      in
      let cands = candidates t ~prefix ~v in
      let avails =
        List.map (fun n -> (n, availability t sim ~v ~egresses ~other n)) cands
      in
      let total_avail = List.fold_left (fun acc (_, a) -> acc +. a) 0. avails in
      let kept =
        List.filter
          (fun (_, a) -> a > t.config.min_avail_fraction *. total_avail)
          avails
      in
      (* The FIB width bounds how many next hops a lie can install: keep
         the most capacious candidates. *)
      let kept =
        List.filteri
          (fun i _ -> i < t.config.max_entries)
          (List.stable_sort (fun (_, a) (_, b) -> compare b a) kept)
        |> List.sort compare
      in
      let kept_total = List.fold_left (fun acc (_, a) -> acc +. a) 0. kept in
      Obs.Metrics.add m_candidates_considered (List.length cands);
      Obs.Metrics.add m_candidates_dropped
        (List.length cands - List.length kept);
      (if List.length kept >= 1 && kept_total > 0.
          && not (cooldown_active t ~time prefix)
      then begin
        let splits =
          List.map
            (fun (n, a) ->
              { Requirements.next_hop = n; fraction = a /. kept_total })
            kept
        in
        ignore (install t ~time ~prefix ~router:v splits)
      end);
      (* Not enough capacity from here: walk towards the heaviest
         upstream neighbor feeding v. *)
      if kept_total < own_demand -. 1e-9 then begin
        ignore own;
        let inflow = Hashtbl.create 4 in
        List.iter
          (fun (flow : Flow.t) ->
            match Sim.flow_path sim flow.id with
            | Some path when Igp.Prefix.equal flow.prefix prefix ->
              let rec find_pred = function
                | u :: (w :: _ as rest) ->
                  if w = v then
                    Hashtbl.replace inflow u
                      (flow.Flow.demand
                      +. Option.value ~default:0. (Hashtbl.find_opt inflow u))
                  else find_pred rest
                | _ -> ()
              in
              find_pred path
            | Some _ | None -> ())
          (Sim.active_flows sim);
        let best =
          Hashtbl.fold
            (fun u d acc ->
              match acc with
              | Some (_, bd) when bd >= d -> acc
              | Some _ | None -> Some (u, d))
            inflow None
        in
        match best with
        | Some (u, _) when u <> v ->
          if Obs.enabled () then
            Obs.Timeline.record ~time ~source:"controller" ~kind:"escalate"
              [
                ("prefix", String (Igp.Prefix.to_string prefix));
                ("from", String (Graph.name g v));
                ("to", String (Graph.name g u));
                ("depth", Int (depth + 1));
              ];
          handle_router t sim ~time ~prefix ~visited:(v :: visited)
            ~depth:(depth + 1) u
        | Some _ | None -> ignore g
      end
  end

(* Global strategy: recompute the optimal splits for the prefix's whole
   demand set and install them wholesale. *)
let handle_global t sim ~time ~prefix =
  if cooldown_active t ~time prefix then ()
  else begin
    match (announcer_of t.net prefix, t.reoptimize) with
    | None, _ -> ()
    | Some _, None ->
      record t ~time ~prefix "global strategy needs a reoptimizer; skipping"
    | Some egress, Some reoptimize ->
      let by_src = Hashtbl.create 4 in
      List.iter
        (fun (flow : Flow.t) ->
          if Igp.Prefix.equal flow.prefix prefix && flow.src <> egress then
            Hashtbl.replace by_src flow.src
              (flow.demand
              +. Option.value ~default:0. (Hashtbl.find_opt by_src flow.src)))
        (Sim.active_flows sim);
      let demands =
        Hashtbl.fold (fun src d acc -> (src, d) :: acc) by_src []
        |> List.sort compare
      in
      if demands <> [] then begin
        (* Compute the target routing against a lie-free clone. *)
        let scratch = Igp.Network.clone t.net in
        (match Hashtbl.find_opt t.states prefix with
        | Some s -> Augmentation.revert scratch s.plan
        | None -> ());
        let capacities link = Netsim.Link.capacity (Sim.capacities sim) link in
        let routers = reoptimize scratch ~prefix ~capacities ~demands ~egress in
        if routers <> [] then
          ignore
            (install_requirements t ~time ~prefix
               ~description:
                 (Printf.sprintf "re-optimize %s: %d routers steered" (Igp.Prefix.to_string prefix)
                    (List.length routers))
               routers)
      end
  end

let handle_link t sim ~time (x, y) =
  (* Dominant prefix on the congested link, by offered demand. *)
  let by_prefix = Hashtbl.create 4 in
  List.iter
    (fun (flow : Flow.t) ->
      match Sim.flow_path sim flow.id with
      | None -> ()
      | Some path ->
        let rec crosses = function
          | u :: (v :: _ as rest) -> (u = x && v = y) || crosses rest
          | _ -> false
        in
        if crosses path then
          Hashtbl.replace by_prefix flow.prefix
            (flow.demand
            +. Option.value ~default:0. (Hashtbl.find_opt by_prefix flow.prefix)))
    (Sim.active_flows sim);
  let dominant =
    Hashtbl.fold
      (fun prefix d acc ->
        match acc with
        | Some (_, bd) when bd >= d -> acc
        | Some _ | None -> Some (prefix, d))
      by_prefix None
  in
  match dominant with
  | None -> ()
  | Some (prefix, _) when quarantine_active t ~time prefix -> ()
  | Some (prefix, _) ->
    (match t.config.strategy with
    | Local_deflection -> handle_router t sim ~time ~prefix ~visited:[] ~depth:0 x
    | Global_optimal -> handle_global t sim ~time ~prefix)

let react t sim _alarms =
  match Sim.monitor sim with
  | None -> ()
  | _ when not t.alive -> ()
  | Some monitor ->
    let time = Sim.time sim in
    (* Keep-alive: every owned lie's age is reset each control iteration.
       Stop calling react (crash the controller) and they expire. *)
    refresh_lies t ~time;
    (* Partition awareness: with a seat configured, only links with at
       least one endpoint reachable from the seat have telemetry the
       controller can actually see; growth of the reachable set means a
       partition healed, which triggers an adopt-or-withdraw resync. *)
    let reachable =
      match t.config.seat with
      | None -> None
      | Some seat -> Some (reachable_set t seat)
    in
    (match reachable with
    | Some set ->
      let n = Hashtbl.length set in
      if t.reachable_count >= 0 && n > t.reachable_count then
        resync t ~time ~reason:"reachability grew";
      t.reachable_count <- n
    | None -> ());
    let visible (u, v) =
      match reachable with
      | None -> true
      | Some set -> Hashtbl.mem set u || Hashtbl.mem set v
    in
    let utilizations = Monitor.utilizations monitor in
    (* Withdrawal: sustained calm retracts all lies. *)
    let calm =
      List.for_all
        (fun (_, u) -> u < Monitor.clear_threshold monitor)
        utilizations
    in
    (match (calm, t.calm_since) with
    | false, _ -> t.calm_since <- None
    | true, None -> t.calm_since <- Some time
    | true, Some since ->
      if time -. since >= t.config.relax_after && fake_count t > 0 then begin
        withdraw_all t;
        Kit.Ring.push t.log
          { time; description = "calm period over: all lies withdrawn";
            fakes_installed = 0 };
        Obs.Metrics.incr m_reactions;
        if Obs.enabled () then begin
          Obs.Metrics.set g_fakes_live 0.;
          Obs.Timeline.record ~time ~source:"controller" ~kind:"withdraw"
            [ ("reason", String "calm period over") ]
        end;
        t.calm_since <- None
      end);
    (* React to the currently hottest link above threshold (not only to
       edge-triggered alarms: a link stuck above threshold after an
       insufficient fix must be revisited). *)
    let hot =
      List.filter
        (fun (l, u) -> u > Monitor.threshold monitor && visible l)
        utilizations
    in
    let worst =
      List.fold_left
        (fun acc (link, u) ->
          match acc with
          | Some (_, bu) when bu >= u -> acc
          | Some _ | None -> Some (link, u))
        None hot
    in
    (match worst with
    | Some (link, _) when time >= t.backoff_until ->
      let lsdb = Igp.Network.lsdb t.net in
      let version_before = Igp.Lsdb.version lsdb in
      handle_link t sim ~time link;
      (* Backoff bookkeeping. A reaction that was merely suppressed by a
         per-prefix cooldown is neutral; a reaction that was free to act
         and still changed nothing (no candidates, compile failure,
         rejected steering) is a failure, and repeated failures double
         the pause up to [max_backoff] — a flapping input must not make
         the controller churn at poll rate forever. *)
      let in_cooldown =
        Hashtbl.fold
          (fun _ s acc -> acc || time -. s.last_action < t.config.cooldown)
          t.states false
        || Hashtbl.fold
             (fun _ until acc -> acc || time < until)
             t.quarantined false
      in
      if Igp.Lsdb.version lsdb <> version_before then t.failures <- 0
      else if not in_cooldown then begin
        t.failures <- t.failures + 1;
        let delay =
          Float.min t.config.max_backoff
            (t.config.cooldown *. (2. ** float_of_int (t.failures - 1)))
        in
        t.backoff_until <- time +. delay;
        if Obs.enabled () then
          Obs.Timeline.record ~time ~source:"controller" ~kind:"backoff"
            [ ("failures", Int t.failures); ("delay", Float delay) ]
      end
    | Some _ -> () (* backing off *)
    | None -> t.failures <- 0)

let attach t sim =
  (* Revalidation must run before any guard-of-last-resort armed later
     (the watchdog): the owner gets first chance to withdraw its own
     invalidated lies cleanly. *)
  Sim.on_route_change sim (fun sim -> revalidate t sim);
  Sim.on_poll sim (fun sim alarms -> react t sim alarms)
