type value = String of string | Int of int | Float of float | Bool of bool

type t = string * value

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_json = function
  | String s -> Printf.sprintf "\"%s\"" (escape s)
  | Int i -> string_of_int i
  | Float f ->
    (* JSON has no inf/nan literals; quote them instead. *)
    if Float.is_finite f then Printf.sprintf "%.6g" f
    else Printf.sprintf "\"%.6g\"" f
  | Bool b -> if b then "true" else "false"

let list_to_json attrs =
  let field (k, v) = Printf.sprintf "\"%s\":%s" (escape k) (value_to_json v) in
  Printf.sprintf "{%s}" (String.concat "," (List.map field attrs))

let pp_value fmt = function
  | String s -> Format.pp_print_string fmt s
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%.6g" f
  | Bool b -> Format.pp_print_bool fmt b

let pp_list fmt attrs =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
    (fun fmt (k, v) -> Format.fprintf fmt "%s=%a" k pp_value v)
    fmt attrs
