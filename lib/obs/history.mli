(** Bench history: append-only JSONL rows of per-track counters, and a
    rolling-baseline regression gate over them.

    [bench prof --history FILE --tag SHA] appends one row per track
    (deterministic counters first: allocated words, GC collections,
    workload sizes; wall-time and cores/domains as context);
    [bench gate] then compares the newest row of each track against
    the median of the previous rows and fails on any gated counter
    exceeding its noise band. The gate logic lives here, in the
    library, so tests can drive it on synthetic histories without
    spawning the bench binary. *)

type row = {
  tag : string;  (** Commit SHA or a free-form label. *)
  track : string;  (** e.g. ["spf_churn"], ["water_fill"], ["sim_step"]. *)
  values : (string * float) list;
      (** Counters and context, flat. Keys named in a {!band} are
          gated; every other key is context and must match exactly for
          a row to join the baseline (so a workload-size change starts
          a fresh baseline instead of comparing apples to oranges). *)
}

val row_to_json : row -> string
(** One line, no trailing newline:
    [{"tag":...,"track":...,"k":v,...}]. *)

val row_of_json : Kit.Json.t -> (row, string) result

val append : file:string -> row list -> unit
(** Appends one line per row, creating the file if needed. *)

val load : file:string -> row list
(** Rows in file order; [[]] if the file does not exist. Raises
    [Failure] on a malformed line. *)

type band = {
  counter : string;
  rel : float;  (** Allowed relative increase over baseline. *)
  abs : float;  (** Absolute slack added on top (for near-zero baselines). *)
}

val default_bands : band list
(** The documented noise bands: [alloc_words] +2% (deterministic for
    deterministic code), [minor_collections] +25%, [major_collections]
    +100%, [wall_ms] +50% (CI wall time is noisy) — each with a small
    absolute slack. Only regressions (increases) fail; improvements
    pass and tighten the rolling baseline. *)

type verdict = {
  v_track : string;
  v_counter : string;
  current : float;
  baseline : float;  (** Median of the baseline window. *)
  limit : float;  (** [baseline * (1 + rel) + abs]. *)
  ok : bool;
}

val gate : ?bands:band list -> ?window:int -> row list -> verdict list
(** For each track (in first-appearance order): the newest row is
    compared against the median of up to [window] (default 5)
    immediately-preceding rows with identical context. Tracks with no
    comparable history produce no verdicts — the first CI run
    bootstraps the baseline rather than failing. *)

val gate_ok : verdict list -> bool

val pp_verdicts : Format.formatter -> verdict list -> unit
