let source : (unit -> float) ref = ref Sys.time

let set_source f = source := f

let use_cpu_time () = source := Sys.time

let now () = !source ()
