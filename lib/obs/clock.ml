(* The source override is domain-local (Domain.DLS): a scenario running
   inside a worker domain binds the clock to its own simulated time
   without disturbing the other workers or the main domain. In a
   single-domain process this behaves exactly like a global ref. *)

let override : (unit -> float) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_source f = Domain.DLS.get override := Some f

let use_cpu_time () = Domain.DLS.get override := None

let now () =
  match !(Domain.DLS.get override) with Some f -> f () | None -> Sys.time ()

let save () = !(Domain.DLS.get override)

let restore v = Domain.DLS.get override := v
