type counter = { c_name : string; mutable n : int }

type gauge = { g_name : string; mutable v : float }

type histogram = {
  h_name : string;
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array; (* length bounds + 1, last = overflow *)
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_error name = invalid_arg (Printf.sprintf "Metrics: %s registered as another kind" name)

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (C c) -> c
  | Some _ -> kind_error name
  | None ->
    let c = { c_name = name; n = 0 } in
    Hashtbl.replace registry name (C c);
    c

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (G g) -> g
  | Some _ -> kind_error name
  | None ->
    let g = { g_name = name; v = 0. } in
    Hashtbl.replace registry name (G g);
    g

(* Log-spaced at ratio 1.25 over [1e-3, 1e4]: 10% worst-case relative
   error on percentile estimates, fine enough for millisecond timings. *)
let default_buckets =
  let rec go acc x = if x > 1e4 then List.rev acc else go (x :: acc) (x *. 1.25) in
  Array.of_list (go [] 1e-3)

let histogram ?(buckets = default_buckets) name =
  match Hashtbl.find_opt registry name with
  | Some (H h) -> h
  | Some _ -> kind_error name
  | None ->
    if Array.length buckets = 0 then invalid_arg "Metrics.histogram: no buckets";
    Array.iteri
      (fun i b ->
        if i > 0 && buckets.(i - 1) >= b then
          invalid_arg "Metrics.histogram: buckets must be strictly increasing")
      buckets;
    let h =
      {
        h_name = name;
        bounds = Array.copy buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        count = 0;
        sum = 0.;
        minv = infinity;
        maxv = neg_infinity;
      }
    in
    Hashtbl.replace registry name (H h);
    h

let incr c = if !State.enabled then c.n <- c.n + 1

let add c k = if !State.enabled then c.n <- c.n + k

let set g v = if !State.enabled then g.v <- v

(* Index of the bucket holding [v]: smallest [i] with [v <= bounds.(i)],
   or the overflow bucket. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe h v =
  if !State.enabled then begin
    let i = bucket_index h.bounds v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.minv then h.minv <- v;
    if v > h.maxv then h.maxv <- v
  end

let counter_value c = c.n

let gauge_value g = g.v

let quantile h q =
  if q < 0. || q > 1. then invalid_arg "Metrics.quantile: q outside [0, 1]";
  if h.count = 0 then 0.
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let n = Array.length h.bounds in
    let i = ref 0 and cum = ref h.counts.(0) in
    while !cum < rank do
      i := !i + 1;
      cum := !cum + h.counts.(!i)
    done;
    let i = !i in
    let lo = if i = 0 then 0. else h.bounds.(i - 1) in
    let hi = if i < n then h.bounds.(i) else h.maxv in
    let before = !cum - h.counts.(i) in
    let frac = float_of_int (rank - before) /. float_of_int h.counts.(i) in
    let estimate = lo +. (frac *. (hi -. lo)) in
    Float.min h.maxv (Float.max h.minv estimate)
  end

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summary (h : histogram) =
  {
    count = h.count;
    sum = h.sum;
    min = (if h.count = 0 then 0. else h.minv);
    max = (if h.count = 0 then 0. else h.maxv);
    p50 = quantile h 0.5;
    p95 = quantile h 0.95;
    p99 = quantile h 0.99;
  }

type snapshot =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_summary

let dump () =
  Hashtbl.fold
    (fun name metric acc ->
      let snap =
        match metric with
        | C c -> Counter c.n
        | G g -> Gauge g.v
        | H h -> Histogram (summary h)
      in
      (name, snap) :: acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json_lines () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, snap) ->
      let body =
        match snap with
        | Counter n -> Printf.sprintf "\"type\":\"counter\",\"value\":%d" n
        | Gauge v -> Printf.sprintf "\"type\":\"gauge\",\"value\":%.6g" v
        | Histogram s ->
          Printf.sprintf
            "\"type\":\"histogram\",\"count\":%d,\"sum\":%.6g,\"min\":%.6g,\"max\":%.6g,\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g"
            s.count s.sum s.min s.max s.p50 s.p95 s.p99
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",%s}\n" (Attr.escape name) body))
    (dump ());
  Buffer.contents buf

let pp_table fmt () =
  Format.fprintf fmt "%-36s %-10s %s@." "metric" "kind" "value";
  List.iter
    (fun (name, snap) ->
      match snap with
      | Counter n -> Format.fprintf fmt "%-36s %-10s %d@." name "counter" n
      | Gauge v -> Format.fprintf fmt "%-36s %-10s %.6g@." name "gauge" v
      | Histogram s ->
        Format.fprintf fmt
          "%-36s %-10s count=%d sum=%.6g min=%.6g max=%.6g p50=%.6g p95=%.6g p99=%.6g@."
          name "histogram" s.count s.sum s.min s.max s.p50 s.p95 s.p99)
    (dump ())

let reset () =
  Hashtbl.iter
    (fun _ metric ->
      match metric with
      | C c -> c.n <- 0
      | G g -> g.v <- 0.
      | H h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.count <- 0;
        h.sum <- 0.;
        h.minv <- infinity;
        h.maxv <- neg_infinity)
    registry
