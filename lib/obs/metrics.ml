(* Domain safety: counters and gauges are single atomic cells, updated
   lock-free from any domain. Histograms update several fields that
   must stay mutually consistent (bucket counts vs count/sum/min/max),
   so each histogram carries its own mutex; summaries snapshot under
   that lock and compute percentiles outside it. The registry hashtable
   is guarded by one mutex around find-or-create/dump/reset — handles
   are looked up once at module init, so the lock is off every hot
   path. *)

type counter = { c_name : string; n : int Atomic.t }

type gauge = { g_name : string; v : float Atomic.t }

type histogram = {
  h_name : string;
  h_mu : Mutex.t;
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array; (* length bounds + 1, last = overflow *)
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let registry_mu = Mutex.create ()

let locked mu f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

let kind_error name = invalid_arg (Printf.sprintf "Metrics: %s registered as another kind" name)

let counter name =
  locked registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C c) -> c
      | Some _ -> kind_error name
      | None ->
        let c = { c_name = name; n = Atomic.make 0 } in
        Hashtbl.replace registry name (C c);
        c)

let gauge name =
  locked registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (G g) -> g
      | Some _ -> kind_error name
      | None ->
        let g = { g_name = name; v = Atomic.make 0. } in
        Hashtbl.replace registry name (G g);
        g)

(* Log-spaced at ratio 1.25 over [1e-3, 1e4]: 10% worst-case relative
   error on percentile estimates, fine enough for millisecond timings. *)
let default_buckets =
  let rec go acc x = if x > 1e4 then List.rev acc else go (x :: acc) (x *. 1.25) in
  Array.of_list (go [] 1e-3)

let histogram ?(buckets = default_buckets) name =
  locked registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (H h) -> h
      | Some _ -> kind_error name
      | None ->
        if Array.length buckets = 0 then invalid_arg "Metrics.histogram: no buckets";
        Array.iteri
          (fun i b ->
            if i > 0 && buckets.(i - 1) >= b then
              invalid_arg "Metrics.histogram: buckets must be strictly increasing")
          buckets;
        let h =
          {
            h_name = name;
            h_mu = Mutex.create ();
            bounds = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            count = 0;
            sum = 0.;
            minv = infinity;
            maxv = neg_infinity;
          }
        in
        Hashtbl.replace registry name (H h);
        h)

let incr c = if Atomic.get State.enabled then ignore (Atomic.fetch_and_add c.n 1)

let add c k = if Atomic.get State.enabled then ignore (Atomic.fetch_and_add c.n k)

let set g v = if Atomic.get State.enabled then Atomic.set g.v v

(* Index of the bucket holding [v]: smallest [i] with [v <= bounds.(i)],
   or the overflow bucket. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe h v =
  if Atomic.get State.enabled then
    locked h.h_mu (fun () ->
        let i = bucket_index h.bounds v in
        h.counts.(i) <- h.counts.(i) + 1;
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        if v < h.minv then h.minv <- v;
        if v > h.maxv then h.maxv <- v)

let counter_value c = Atomic.get c.n

let gauge_value g = Atomic.get g.v

(* A coherent copy of a histogram's mutable state, taken under its
   lock; percentile arithmetic then runs lock-free on the copy. *)
type hist_snap = {
  s_bounds : float array;
  s_counts : int array;
  s_count : int;
  s_sum : float;
  s_minv : float;
  s_maxv : float;
}

let snap h =
  locked h.h_mu (fun () ->
      {
        s_bounds = h.bounds;
        s_counts = Array.copy h.counts;
        s_count = h.count;
        s_sum = h.sum;
        s_minv = h.minv;
        s_maxv = h.maxv;
      })

let snap_quantile s q =
  if q < 0. || q > 1. then invalid_arg "Metrics.quantile: q outside [0, 1]";
  if s.s_count = 0 then 0.
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int s.s_count))) in
    let n = Array.length s.s_bounds in
    let i = ref 0 and cum = ref s.s_counts.(0) in
    while !cum < rank do
      i := !i + 1;
      cum := !cum + s.s_counts.(!i)
    done;
    let i = !i in
    let lo = if i = 0 then 0. else s.s_bounds.(i - 1) in
    let hi = if i < n then s.s_bounds.(i) else s.s_maxv in
    let before = !cum - s.s_counts.(i) in
    let frac = float_of_int (rank - before) /. float_of_int s.s_counts.(i) in
    let estimate = lo +. (frac *. (hi -. lo)) in
    Float.min s.s_maxv (Float.max s.s_minv estimate)
  end

let quantile h q = snap_quantile (snap h) q

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summary_of_snap s =
  {
    count = s.s_count;
    sum = s.s_sum;
    min = (if s.s_count = 0 then 0. else s.s_minv);
    max = (if s.s_count = 0 then 0. else s.s_maxv);
    p50 = snap_quantile s 0.5;
    p95 = snap_quantile s 0.95;
    p99 = snap_quantile s 0.99;
  }

let summary (h : histogram) = summary_of_snap (snap h)

(* Cumulative (upper-bound, count) pairs in OpenMetrics style: each
   entry counts observations <= the bound, the final entry is
   (infinity, total). Derived from the per-bucket counts under the
   histogram's lock. *)
let cumulative_buckets h =
  let s = snap h in
  let n = Array.length s.s_bounds in
  let acc = ref 0 in
  let out = ref [] in
  for i = 0 to n - 1 do
    acc := !acc + s.s_counts.(i);
    out := (s.s_bounds.(i), !acc) :: !out
  done;
  List.rev ((infinity, !acc + s.s_counts.(n)) :: !out)

let dump_buckets () =
  let metrics =
    locked registry_mu (fun () ->
        Hashtbl.fold
          (fun name metric acc ->
            match metric with H h -> (name, h) :: acc | C _ | G _ -> acc)
          registry [])
  in
  List.map (fun (name, h) -> (name, cumulative_buckets h)) metrics
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type snapshot =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_summary

let dump () =
  let metrics =
    locked registry_mu (fun () ->
        Hashtbl.fold (fun name metric acc -> (name, metric) :: acc) registry [])
  in
  List.map
    (fun (name, metric) ->
      let snap =
        match metric with
        | C c -> Counter (Atomic.get c.n)
        | G g -> Gauge (Atomic.get g.v)
        | H h -> Histogram (summary h)
      in
      (name, snap))
    metrics
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json_lines () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, snap) ->
      let body =
        match snap with
        | Counter n -> Printf.sprintf "\"type\":\"counter\",\"value\":%d" n
        | Gauge v -> Printf.sprintf "\"type\":\"gauge\",\"value\":%.6g" v
        | Histogram s ->
          Printf.sprintf
            "\"type\":\"histogram\",\"count\":%d,\"sum\":%.6g,\"min\":%.6g,\"max\":%.6g,\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g"
            s.count s.sum s.min s.max s.p50 s.p95 s.p99
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",%s}\n" (Attr.escape name) body))
    (dump ());
  Buffer.contents buf

let pp_table fmt () =
  Format.fprintf fmt "%-36s %-10s %s@." "metric" "kind" "value";
  List.iter
    (fun (name, snap) ->
      match snap with
      | Counter n -> Format.fprintf fmt "%-36s %-10s %d@." name "counter" n
      | Gauge v -> Format.fprintf fmt "%-36s %-10s %.6g@." name "gauge" v
      | Histogram s ->
        Format.fprintf fmt
          "%-36s %-10s count=%d sum=%.6g min=%.6g max=%.6g p50=%.6g p95=%.6g p99=%.6g@."
          name "histogram" s.count s.sum s.min s.max s.p50 s.p95 s.p99)
    (dump ())

let reset () =
  let metrics =
    locked registry_mu (fun () ->
        Hashtbl.fold (fun _ metric acc -> metric :: acc) registry [])
  in
  List.iter
    (fun metric ->
      match metric with
      | C c -> Atomic.set c.n 0
      | G g -> Atomic.set g.v 0.
      | H h ->
        locked h.h_mu (fun () ->
            Array.fill h.counts 0 (Array.length h.counts) 0;
            h.count <- 0;
            h.sum <- 0.;
            h.minv <- infinity;
            h.maxv <- neg_infinity))
    metrics
