(** The time source stamped onto spans and timeline events.

    Defaults to [Sys.time] (CPU seconds — monotonic, dependency-free).
    Harnesses replace it: [bench/main] installs a wall clock for real
    durations, and [fibbingctl trace] points it at the simulator's
    virtual time so two identical runs stamp identical (and therefore
    byte-identical, see {!Attr}) timelines.

    The override is domain-local: a scenario running inside a worker
    domain (a parallel chaos sweep, say) binds the clock to its own
    simulated time without disturbing other domains. *)

val set_source : (unit -> float) -> unit
(** The source must be non-decreasing between calls. Affects the
    calling domain only. *)

val use_cpu_time : unit -> unit
(** Restore the default [Sys.time] source (in the calling domain). *)

val now : unit -> float

(**/**)

val save : unit -> (unit -> float) option
(** Internal, used by [Obs.capture] to save/restore the calling
    domain's override around a captured scenario. *)

val restore : (unit -> float) option -> unit
