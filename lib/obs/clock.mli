(** The time source stamped onto spans and timeline events.

    Defaults to [Sys.time] (CPU seconds — monotonic, dependency-free).
    Harnesses replace it: [bench/main] installs a wall clock for real
    durations, and [fibbingctl trace] points it at the simulator's
    virtual time so two identical runs stamp identical (and therefore
    byte-identical, see {!Attr}) timelines. *)

val set_source : (unit -> float) -> unit
(** The source must be non-decreasing between calls. *)

val use_cpu_time : unit -> unit
(** Restore the default [Sys.time] source. *)

val now : unit -> float
