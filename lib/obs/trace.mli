(** Structured trace spans.

    [with_span "spf.recompute" ~attrs f] stamps a begin/end pair around
    [f] and stores the completed span in a bounded in-memory ring.
    Spans nest: a span opened inside another becomes its child, and
    every span carries a global sequence number shared with
    {!Timeline} events, so the two streams merge into one causal
    order. When the library is disabled ([Obs.disable]), [with_span]
    is the identity on [f] — one flag check, no clock read, no
    allocation beyond the caller's [attrs] list. *)

type span = {
  seq : int;  (** Global order at span begin; also the span's id. *)
  parent : int option;  (** Enclosing span's [seq]. *)
  depth : int;
  name : string;
  attrs : Attr.t list;
  start_time : float;
  end_time : float;
  domain : int;
      (** Id of the domain that ran the span. Exporters use it as the
          thread lane; it is deliberately absent from the JSON-line
          rendering, which must stay a pure function of the logical
          run regardless of which worker executed it. *)
}

val with_span :
  ?attrs:Attr.t list -> ?late_attrs:(unit -> Attr.t list) -> string -> (unit -> 'a) -> 'a
(** Runs the function, recording the span even when it raises.
    [late_attrs] is evaluated once at span end (also on the raising
    path) and appended after [attrs] — for values only known when the
    work is done, e.g. {!Prof} GC deltas. *)

val spans : unit -> span list
(** Completed spans retained by the ring, in completion order. *)

val dropped : unit -> int
(** Spans evicted by the ring since the last [reset]. *)

val to_json_lines : unit -> string
(** One JSON object per completed span, deterministic. *)

val pp_tree : Format.formatter -> unit -> unit
(** Spans as an indented forest (children under parents, by [seq]).
    Spans whose parent was evicted from the ring print as roots. *)

val set_capacity : int -> unit
(** Resize the ring (default 16384). Drops all retained spans. *)

val reset : unit -> unit

val render_json_lines : span list -> string
(** The [to_json_lines] format applied to an explicit span list, e.g.
    one returned by [Obs.capture]. *)

(**/**)

val begin_scope : unit -> unit
(** Internal, used by [Obs.capture]: until the matching [end_scope] in
    the same domain, spans completed by this domain accumulate in a
    private buffer instead of the shared ring. *)

val end_scope : unit -> span list
(** Pop the innermost scope of the calling domain and return its spans
    in completion order ([[]] if no scope is open). *)
