(** The scenario timeline: one ordered, replayable event stream merging
    monitor polls, alarms, controller reactions and SPF/FIB recompute
    spans.

    Subsystems [record] events as they act; completed {!Trace} spans are
    merged in on export (a span appears at its begin position — spans and
    events share one global sequence counter, so interleaving is causal).
    Events live in a bounded ring; recording is a no-op while the
    library is disabled. *)

type event = {
  time : float;
  seq : int;
  source : string;  (** Emitting subsystem, e.g. "monitor". *)
  kind : string;  (** Event type within the source, e.g. "alarm". *)
  attrs : Attr.t list;
}

val record : ?time:float -> source:string -> kind:string -> Attr.t list -> unit
(** [time] defaults to [Clock.now ()]. Callers on hot paths should
    guard the call (and the [attrs] allocation) with [Obs.enabled]. *)

val events : ?include_spans:bool -> unit -> event list
(** The merged stream ordered by sequence number. [include_spans]
    (default [true]) converts each completed span into an event
    ([source = "trace"], kind = span name, with a ["duration_ms"]
    attribute appended). *)

val dropped : unit -> int

val to_json_lines : ?include_spans:bool -> unit -> string
(** One JSON object per event, deterministic for deterministic inputs. *)

val pp_table : ?include_spans:bool -> Format.formatter -> unit -> unit

val set_capacity : int -> unit
(** Resize the ring (default 65536). Drops all retained events. *)

val reset : unit -> unit

val span_event : Trace.span -> event
(** The event a completed span merges in as: positioned at the span's
    begin ([seq], [start_time]), [source = "trace"], kind = span name,
    with a ["duration_ms"] attribute appended. *)

val merge : events:event list -> spans:Trace.span list -> event list
(** Convert the spans via {!span_event}, append, sort by [seq] — the
    same merge [events] performs on the live rings, applied to explicit
    lists (e.g. an [Obs.capture] result). *)

val render_json_lines : event list -> string
(** The [to_json_lines] format applied to an explicit event list. *)

(**/**)

val begin_scope : unit -> unit
(** Internal, used by [Obs.capture]: until the matching [end_scope] in
    the same domain, events recorded by this domain accumulate in a
    private buffer instead of the shared ring. *)

val end_scope : unit -> event list
(** Pop the innermost scope of the calling domain and return its events
    in recording order ([[]] if no scope is open). *)
