type snap = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

(* Separate switch, off by default: GC deltas are not a pure function
   of the logical run (see prof.mli), so the determinism-sensitive
   paths never turn this on. *)
let on = Atomic.make false

let enable () = Atomic.set on true

let disable () = Atomic.set on false

let enabled () = Atomic.get on

(* [Gc.quick_stat] counters only catch up at collection boundaries on
   OCaml 5 — between two minor collections its [minor_words] does not
   move at all. [Gc.minor_words] reads the live allocation pointer, so
   minor words (the signal fine-grained spans care about) come from
   there; the collection-boundary counters are exactly what quick_stat
   reports. *)
let snapshot () =
  let s = Gc.quick_stat () in
  {
    minor_words = Gc.minor_words ();
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
  }

let zero =
  {
    minor_words = 0.;
    promoted_words = 0.;
    major_words = 0.;
    minor_collections = 0;
    major_collections = 0;
    compactions = 0;
  }

let delta ~before ~after =
  {
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    major_words = after.major_words -. before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    compactions = after.compactions - before.compactions;
  }

let allocated_words d = d.minor_words +. d.major_words -. d.promoted_words

let attrs d =
  [
    ("alloc_words", Attr.Float (allocated_words d));
    ("minor_words", Attr.Float d.minor_words);
    ("promoted_words", Attr.Float d.promoted_words);
    ("major_words", Attr.Float d.major_words);
    ("minor_collections", Attr.Int d.minor_collections);
    ("major_collections", Attr.Int d.major_collections);
    ("compactions", Attr.Int d.compactions);
  ]

let delta_attrs = attrs

let with_span ?attrs ?alloc_counter name f =
  if not (Atomic.get State.enabled && Atomic.get on) then
    (* Forward the option itself: re-wrapping [~attrs] would box a
       [Some] on every disabled call. *)
    Trace.with_span ?attrs name f
  else begin
    let attrs = Option.value attrs ~default:[] in
    (* The before-snapshot is taken inside the wrapped function so the
       span machinery's own prologue allocation is not charged to the
       span; the after-snapshot runs at span end, before the span
       record itself is built. Both run on the same domain as [f]. *)
    let before = ref zero in
    let late () =
      let d = delta ~before:!before ~after:(snapshot ()) in
      (match alloc_counter with
      | Some c -> Metrics.add c (int_of_float (allocated_words d))
      | None -> ());
      delta_attrs d
    in
    Trace.with_span ~attrs ~late_attrs:late name (fun () ->
        before := snapshot ();
        f ())
  end
