(** Standard exporters: Chrome trace-event JSON and OpenMetrics text.

    These render the in-memory telemetry into formats off-the-shelf
    tools understand — [chrome_trace] loads in Perfetto / chrome://
    tracing, [open_metrics] is scraped by Prometheus-compatible
    collectors. Both are pure renderers over data already collected;
    they never touch the switches or the rings' contents. *)

val chrome_trace : events:Timeline.event list -> spans:Trace.span list -> string
(** A complete trace-event JSON document:
    [{"traceEvents":[...],"displayTimeUnit":"ms"}]. Spans become
    ["ph":"X"] complete events on the thread lane of the domain that
    ran them (so nesting renders per domain), timeline events become
    thread-scoped instants (["ph":"i"]); timestamps are the span/event
    clock converted to microseconds. Metadata events name the process
    and each domain lane. Events are sorted by timestamp then sequence
    number. *)

val chrome_trace_live : unit -> string
(** [chrome_trace] over the live rings. *)

val open_metrics : unit -> string
(** The metrics registry as OpenMetrics text exposition: sorted
    families with [# TYPE] headers, counter samples suffixed [_total],
    histograms as cumulative [_bucket{le="..."}] samples (explicit
    bounds plus [+Inf]) with [_sum]/[_count], terminated by [# EOF].
    Metric names are sanitized (every character outside
    [[a-zA-Z0-9_:]] becomes [_]). *)
