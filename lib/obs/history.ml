type row = { tag : string; track : string; values : (string * float) list }

let row_to_json r =
  Kit.Json.to_string
    (Kit.Json.Obj
       (("tag", Kit.Json.Str r.tag)
       :: ("track", Kit.Json.Str r.track)
       :: List.map (fun (k, v) -> (k, Kit.Json.Num v)) r.values))

let row_of_json j =
  match j with
  | Kit.Json.Obj kvs ->
    let tag = ref None and track = ref None and values = ref [] in
    let bad = ref None in
    List.iter
      (fun (k, v) ->
        match (k, v) with
        | "tag", Kit.Json.Str s -> tag := Some s
        | "track", Kit.Json.Str s -> track := Some s
        | _, Kit.Json.Num n -> values := (k, n) :: !values
        | _ -> bad := Some k)
      kvs;
    (match (!bad, !tag, !track) with
    | Some k, _, _ -> Error (Printf.sprintf "history row: bad value for %S" k)
    | None, Some tag, Some track ->
      Ok { tag; track; values = List.rev !values }
    | None, _, _ -> Error "history row: missing tag or track")
  | _ -> Error "history row: not an object"

let append ~file rows =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun r ->
          output_string oc (row_to_json r);
          output_char oc '\n')
        rows)

let load ~file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Kit.Json.parse_lines contents with
    | Error msg -> failwith (Printf.sprintf "%s: %s" file msg)
    | Ok docs ->
      List.map
        (fun doc ->
          match row_of_json doc with
          | Ok r -> r
          | Error msg -> failwith (Printf.sprintf "%s: %s" file msg))
        docs
  end

type band = { counter : string; rel : float; abs : float }

let default_bands =
  [
    { counter = "alloc_words"; rel = 0.02; abs = 64. };
    { counter = "minor_collections"; rel = 0.25; abs = 2. };
    { counter = "major_collections"; rel = 1.0; abs = 2. };
    { counter = "wall_ms"; rel = 0.5; abs = 1.0 };
  ]

type verdict = {
  v_track : string;
  v_counter : string;
  current : float;
  baseline : float;
  limit : float;
  ok : bool;
}

let median xs =
  match List.sort compare xs with
  | [] -> invalid_arg "History.median: empty"
  | sorted ->
    let n = List.length sorted in
    let nth k = List.nth sorted k in
    if n mod 2 = 1 then nth (n / 2)
    else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.

(* Two rows are comparable when every non-gated key agrees exactly
   (workload sizes, domain counts, ... are ints-in-floats, so exact
   equality is the right notion). *)
let same_context ~gated a b =
  let context r =
    List.filter (fun (k, _) -> not (List.mem k gated)) r.values
    |> List.sort compare
  in
  context a = context b

let gate ?(bands = default_bands) ?(window = 5) rows =
  let gated = List.map (fun b -> b.counter) bands in
  let tracks =
    List.fold_left
      (fun acc r -> if List.mem r.track acc then acc else r.track :: acc)
      [] rows
    |> List.rev
  in
  List.concat_map
    (fun track ->
      let of_track = List.filter (fun r -> r.track = track) rows in
      match List.rev of_track with
      | [] -> []
      | newest :: older_rev ->
        let baseline_rows =
          List.filteri (fun i _ -> i < window)
            (List.filter (same_context ~gated newest) older_rev)
        in
        if baseline_rows = [] then []
        else
          List.filter_map
            (fun b ->
              match List.assoc_opt b.counter newest.values with
              | None -> None
              | Some current ->
                let past =
                  List.filter_map
                    (fun r -> List.assoc_opt b.counter r.values)
                    baseline_rows
                in
                if past = [] then None
                else begin
                  let baseline = median past in
                  let limit = (baseline *. (1. +. b.rel)) +. b.abs in
                  Some
                    {
                      v_track = track;
                      v_counter = b.counter;
                      current;
                      baseline;
                      limit;
                      ok = current <= limit;
                    }
                end)
            bands)
    tracks

let gate_ok verdicts = List.for_all (fun v -> v.ok) verdicts

let pp_verdicts fmt verdicts =
  Format.fprintf fmt "%-12s %-20s %14s %14s %14s  %s@." "track" "counter"
    "current" "baseline" "limit" "verdict";
  List.iter
    (fun v ->
      Format.fprintf fmt "%-12s %-20s %14.6g %14.6g %14.6g  %s@." v.v_track
        v.v_counter v.current v.baseline v.limit
        (if v.ok then "ok" else "REGRESSION"))
    verdicts
