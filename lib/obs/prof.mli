(** Allocation/GC profiling attached to trace spans.

    [with_span] behaves like {!Trace.with_span}, but when profiling is
    switched on it additionally snapshots [Gc.quick_stat] around the
    function and appends the delta (words allocated in the minor and
    major heaps, promotions, collection counts, compactions) as span
    attributes — so [fibbingctl trace --prof] shows words-allocated per
    [spf.recompute] / [fairshare.water_fill] / [sim.step] span.

    Profiling has its own switch, layered under the global one and
    {b off by default}: GC counters are monotone per domain but their
    deltas depend on heap state carried in from earlier work (how full
    the nursery was, when the last slice ran), so they are not a pure
    function of the logical run. The byte-identical timeline guarantees
    (chaos replays, parallel-vs-sequential equality) therefore hold
    with profiling off; turn it on only when reading the numbers.

    Domain safety: [Gc.quick_stat] reads the calling domain's own
    counters and spans never migrate domains mid-flight (the span stack
    is domain-local), so before/after snapshots always come from the
    same domain. A span's delta covers only allocation done by its own
    domain — work fanned out to a pool is attributed to the workers'
    spans, not the caller's.

    Cost: with profiling (or [Obs]) off, one extra atomic load on top
    of [Trace.with_span]'s flag check — the <5% disabled-overhead gate
    is unaffected. *)

type snap = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}
(** Either an absolute [Gc.quick_stat] reading or a delta of two. *)

val enable : unit -> unit
val disable : unit -> unit

val enabled : unit -> bool
(** The profiling switch alone; deltas are recorded only when this
    {e and} [Obs.enabled] are both on. *)

val snapshot : unit -> snap
(** The calling domain's GC counters, via [Gc.quick_stat]. *)

val delta : before:snap -> after:snap -> snap

val allocated_words : snap -> float
(** Total words allocated: [minor + major - promoted] (promotions move
    existing words, they are not new allocation). *)

val attrs : snap -> Attr.t list
(** A delta as span attributes: [alloc_words], [minor_words],
    [promoted_words], [major_words], [minor_collections],
    [major_collections], [compactions]. *)

val with_span :
  ?attrs:Attr.t list -> ?alloc_counter:Metrics.counter -> string -> (unit -> 'a) -> 'a
(** [Trace.with_span] plus, when profiling is on, the GC delta of the
    wrapped function as late attributes. [alloc_counter], if given,
    accumulates the span's allocated words (rounded down) into a
    metrics counter so the totals show up in [fibbingctl metrics]. *)
