(** Global metrics registry: named counters, gauges and fixed-bucket
    histograms.

    Handles are found-or-created by name and stay valid forever —
    instrument at module top level ([let c = Metrics.counter "x.y"]) so
    the hot path is a single flag check plus an unboxed cell update, with
    no lookup and no allocation. All update operations are no-ops while
    the global switch (see [Obs.enable]) is off.

    Percentiles are estimated from the histogram's buckets by linear
    interpolation inside the bucket holding the rank: exact to within
    one bucket's width (default buckets are log-spaced at ratio 1.25
    from 1e-3 to 1e4, sized for millisecond timings). *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find or create. Raises [Invalid_argument] if the name is already
    registered as a different kind. *)

val gauge : string -> gauge

val histogram : ?buckets:float array -> string -> histogram
(** [buckets] are strictly increasing upper bounds; values above the
    last bound land in an unbounded overflow bucket. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val counter_value : counter -> int
val gauge_value : gauge -> float

type histogram_summary = {
  count : int;
  sum : float;
  min : float;  (** [0.] when empty. *)
  max : float;  (** [0.] when empty. *)
  p50 : float;
  p95 : float;
  p99 : float;
}

val summary : histogram -> histogram_summary

val quantile : histogram -> float -> float
(** [quantile h q] with [q] in [\[0, 1\]]; [0.] when empty. *)

val cumulative_buckets : histogram -> (float * int) list
(** OpenMetrics-style cumulative buckets: each pair counts the
    observations at or below the upper bound, ending with
    [(infinity, total)]. A coherent snapshot taken under the
    histogram's lock. *)

val dump_buckets : unit -> (string * (float * int) list) list
(** [cumulative_buckets] for every registered histogram, sorted by
    name — the exporter pairs this with {!dump}. *)

type snapshot =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_summary

val dump : unit -> (string * snapshot) list
(** Every registered metric, sorted by name. *)

val to_json_lines : unit -> string
(** One JSON object per line, sorted by name; deterministic. *)

val pp_table : Format.formatter -> unit -> unit

val reset : unit -> unit
(** Zero every value. Registrations (and outstanding handles) survive. *)
