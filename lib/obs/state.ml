(* Shared internal state of the Obs library: the global on/off switch
   and the sequence counter that gives every trace span and timeline
   event a position in one total causal order. Not exported. *)

let enabled = ref false

let next_seq = ref 0

let fresh_seq () =
  let s = !next_seq in
  incr next_seq;
  s

let reset_seq () = next_seq := 0
