(* Shared internal state of the Obs library: the global on/off switch,
   the sequence counter that gives every trace span and timeline event a
   position in one total causal order, and the capture-scope stack that
   [Obs.capture] uses to give a scenario running inside a worker domain
   its own private sequence numbering. Not exported outside the
   library.

   Domain safety: the switch and the global counter are atomics, so any
   domain may record telemetry concurrently. Scopes are domain-local
   (Domain.DLS): a scope installed by one domain is invisible to every
   other, which is exactly what per-domain scenario sweeps need — each
   worker's events are sequenced 0, 1, 2, ... independently of how many
   other workers are running. *)

let enabled = Atomic.make false

let next_seq = Atomic.make 0

type scope = { mutable s_seq : int }

(* Innermost capture scope first; empty = global numbering. *)
let scopes : scope list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let begin_scope () =
  let s = Domain.DLS.get scopes in
  s := { s_seq = 0 } :: !s

let end_scope () =
  let s = Domain.DLS.get scopes in
  match !s with [] -> () | _ :: rest -> s := rest

let fresh_seq () =
  match !(Domain.DLS.get scopes) with
  | scope :: _ ->
    let v = scope.s_seq in
    scope.s_seq <- v + 1;
    v
  | [] -> Atomic.fetch_and_add next_seq 1

let reset_seq () = Atomic.set next_seq 0
