(** Typed attribute values attached to trace spans and timeline events,
    with deterministic JSON rendering (same value, same bytes — the
    timeline determinism guarantee depends on it). *)

type value = String of string | Int of int | Float of float | Bool of bool

type t = string * value

val escape : string -> string
(** JSON string-body escaping. *)

val value_to_json : value -> string
(** JSON literal: strings are escaped, floats rendered with ["%.6g"]. *)

val list_to_json : t list -> string
(** A JSON object [{"k":v,...}] in the given order. *)

val pp_value : Format.formatter -> value -> unit

val pp_list : Format.formatter -> t list -> unit
(** Renders [k=v k=v ...] for human-readable tables. *)
