type event = {
  time : float;
  seq : int;
  source : string;
  kind : string;
  attrs : Attr.t list;
}

let default_capacity = 65536

let ring : event Kit.Ring.t ref = ref (Kit.Ring.create ~capacity:default_capacity)

let record ?time ~source ~kind attrs =
  if !State.enabled then begin
    let time = match time with Some t -> t | None -> Clock.now () in
    Kit.Ring.push !ring
      { time; seq = State.fresh_seq (); source; kind; attrs }
  end

let span_event (s : Trace.span) =
  {
    time = s.start_time;
    seq = s.seq;
    source = "trace";
    kind = s.name;
    attrs =
      s.attrs
      @ [ ("duration_ms", Attr.Float ((s.end_time -. s.start_time) *. 1000.)) ];
  }

let events ?(include_spans = true) () =
  let own = Kit.Ring.to_list !ring in
  let merged =
    if include_spans then own @ List.map span_event (Trace.spans ()) else own
  in
  List.sort (fun a b -> compare a.seq b.seq) merged

let dropped () = Kit.Ring.dropped !ring

let to_json_lines ?include_spans () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"seq\":%d,\"time\":%.6f,\"source\":\"%s\",\"kind\":\"%s\",\"attrs\":%s}\n"
           e.seq e.time (Attr.escape e.source) (Attr.escape e.kind)
           (Attr.list_to_json e.attrs)))
    (events ?include_spans ());
  Buffer.contents buf

let pp_table ?include_spans fmt () =
  Format.fprintf fmt "%10s  %-12s %-18s %s@." "time" "source" "kind" "attrs";
  List.iter
    (fun e ->
      Format.fprintf fmt "%10.3f  %-12s %-18s %a@." e.time e.source e.kind
        Attr.pp_list e.attrs)
    (events ?include_spans ())

let set_capacity capacity = ring := Kit.Ring.create ~capacity

let reset () = Kit.Ring.clear !ring
