type event = {
  time : float;
  seq : int;
  source : string;
  kind : string;
  attrs : Attr.t list;
}

let default_capacity = 65536

(* Same sharing discipline as Trace: the global ring is cross-domain and
   mutex-guarded; capture-scope buffers are domain-confined and
   lock-free. *)
let mu = Mutex.create ()

let ring : event Kit.Ring.t ref = ref (Kit.Ring.create ~capacity:default_capacity)

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

(* Capture scopes, innermost first: recorded events go to the top
   scope's buffer (newest first) instead of the global ring. *)
let scopes : event list ref list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let begin_scope () =
  let s = Domain.DLS.get scopes in
  s := ref [] :: !s

let end_scope () =
  let s = Domain.DLS.get scopes in
  match !s with
  | [] -> []
  | buf :: rest ->
    s := rest;
    List.rev !buf

let record ?time ~source ~kind attrs =
  if Atomic.get State.enabled then begin
    let time = match time with Some t -> t | None -> Clock.now () in
    let e = { time; seq = State.fresh_seq (); source; kind; attrs } in
    match !(Domain.DLS.get scopes) with
    | buf :: _ -> buf := e :: !buf
    | [] -> locked (fun () -> Kit.Ring.push !ring e)
  end

let span_event (s : Trace.span) =
  {
    time = s.start_time;
    seq = s.seq;
    source = "trace";
    kind = s.name;
    attrs =
      s.attrs
      @ [ ("duration_ms", Attr.Float ((s.end_time -. s.start_time) *. 1000.)) ];
  }

let merge ~events ~spans =
  List.sort
    (fun a b -> compare a.seq b.seq)
    (events @ List.map span_event spans)

let events ?(include_spans = true) () =
  let own = locked (fun () -> Kit.Ring.to_list !ring) in
  merge ~events:own ~spans:(if include_spans then Trace.spans () else [])

let dropped () = locked (fun () -> Kit.Ring.dropped !ring)

let render_json_lines events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"seq\":%d,\"time\":%.6f,\"source\":\"%s\",\"kind\":\"%s\",\"attrs\":%s}\n"
           e.seq e.time (Attr.escape e.source) (Attr.escape e.kind)
           (Attr.list_to_json e.attrs)))
    events;
  Buffer.contents buf

let to_json_lines ?include_spans () = render_json_lines (events ?include_spans ())

let pp_table ?include_spans fmt () =
  Format.fprintf fmt "%10s  %-12s %-18s %s@." "time" "source" "kind" "attrs";
  List.iter
    (fun e ->
      Format.fprintf fmt "%10.3f  %-12s %-18s %a@." e.time e.source e.kind
        Attr.pp_list e.attrs)
    (events ?include_spans ())

let set_capacity capacity = locked (fun () -> ring := Kit.Ring.create ~capacity)

let reset () = locked (fun () -> Kit.Ring.clear !ring)
