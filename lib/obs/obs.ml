(** Unified telemetry for the Fibbing reproduction: a metrics registry
    ({!Metrics}), structured trace spans ({!Trace}) and the merged
    scenario timeline ({!Timeline}).

    Everything hangs off one global switch, off by default. While off,
    every instrumentation point costs a single flag check — counters
    and gauges are plain unboxed cells, spans run their function
    directly, timeline recording returns immediately. Hot-path callers
    additionally guard attribute-list construction with {!enabled}.

    Instrumented subsystems share one sequence counter, so metrics,
    spans and events from the IGP engine, the controller, the monitor
    and the simulator line up in a single causal order (what
    [fibbingctl trace] prints). See DESIGN.md, "Observability". *)

module Attr = Attr
module Clock = Clock
module Metrics = Metrics
module Trace = Trace
module Timeline = Timeline

let enable () = State.enabled := true

let disable () = State.enabled := false

let enabled () = !State.enabled

(** Zero all metrics, drop all spans and events, restart the sequence
    counter. Metric registrations survive. *)
let reset () =
  Metrics.reset ();
  Trace.reset ();
  Timeline.reset ();
  State.reset_seq ()
