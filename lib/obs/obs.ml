(** Unified telemetry for the Fibbing reproduction: a metrics registry
    ({!Metrics}), structured trace spans ({!Trace}) and the merged
    scenario timeline ({!Timeline}).

    Everything hangs off one global switch, off by default. While off,
    every instrumentation point costs a single flag check — counters
    and gauges are plain atomic cells, spans run their function
    directly, timeline recording returns immediately. Hot-path callers
    additionally guard attribute-list construction with {!enabled}.

    Instrumented subsystems share one sequence counter, so metrics,
    spans and events from the IGP engine, the controller, the monitor
    and the simulator line up in a single causal order (what
    [fibbingctl trace] prints).

    Domain safety: the switch, the sequence counter and all metric
    cells are atomic; the span and event rings are mutex-guarded; the
    clock source and span-nesting stack are domain-local. Scenarios
    running in parallel worker domains should wrap each run in
    {!capture}, which gives the run a private sequence numbering
    (restarting at 0) and private span/event buffers — so its timeline
    is byte-identical to the same run executed sequentially, no matter
    how many sibling domains are interleaving with it. See DESIGN.md,
    "Observability" and "Parallel execution model". *)

module Attr = Attr
module Clock = Clock
module Metrics = Metrics
module Trace = Trace
module Timeline = Timeline
module Prof = Prof
module Export = Export
module History = History

let enable () = Atomic.set State.enabled true

let disable () = Atomic.set State.enabled false

let enabled () = Atomic.get State.enabled

(** Zero all metrics, drop all spans and events, restart the sequence
    counter. Metric registrations survive. *)
let reset () =
  Metrics.reset ();
  Trace.reset ();
  Timeline.reset ();
  State.reset_seq ()

(** The telemetry of one captured scenario run: its events in recording
    order and its completed spans in completion order, both sequenced
    from 0. *)
type capture = { events : Timeline.event list; spans : Trace.span list }

(** [capture f] runs [f ()] with a private telemetry scope on the
    calling domain: sequence numbers restart at 0, spans and events go
    to private buffers instead of the shared rings, and any {!Clock}
    source [f] installs is reverted on exit. Returns [f]'s result and
    the captured telemetry. Scopes nest, and runs captured in different
    domains never touch shared state, so a sweep that captures one
    scenario per domain gets per-run timelines identical to sequential
    execution. If [f] raises, the scope is torn down and the exception
    re-raised (the captured telemetry is discarded). *)
let capture f =
  let saved_clock = Clock.save () in
  State.begin_scope ();
  Trace.begin_scope ();
  Timeline.begin_scope ();
  let finish () =
    let events = Timeline.end_scope () in
    let spans = Trace.end_scope () in
    State.end_scope ();
    Clock.restore saved_clock;
    { events; spans }
  in
  match f () with
  | v -> (v, finish ())
  | exception e ->
    ignore (finish ());
    raise e

(** The captured run rendered exactly as [Timeline.to_json_lines]
    renders the live rings: spans merged in at their begin position,
    sorted by sequence number. *)
let capture_json c =
  Timeline.render_json_lines (Timeline.merge ~events:c.events ~spans:c.spans)
