(* ---- Chrome trace-event JSON ---- *)

(* One rendered event plus its sort key. Chrome's viewer tolerates
   unsorted input but Perfetto's nesting heuristics work best with
   timestamp order, so we sort by (ts, seq). *)
type chrome_event = { ce_ts : float; ce_seq : int; ce_json : string }

let span_event (s : Trace.span) =
  let ts = s.start_time *. 1e6 in
  let dur = (s.end_time -. s.start_time) *. 1e6 in
  {
    ce_ts = ts;
    ce_seq = s.seq;
    ce_json =
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":%s}"
        (Attr.escape s.name) ts dur s.domain
        (Attr.list_to_json (("seq", Attr.Int s.seq) :: s.attrs));
  }

(* Timeline events carry no domain (their rendering must stay
   execution-independent), so instants all land on lane 0. *)
let instant_event (e : Timeline.event) =
  let ts = e.time *. 1e6 in
  {
    ce_ts = ts;
    ce_seq = e.seq;
    ce_json =
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,\"tid\":0,\"s\":\"t\",\"args\":%s}"
        (Attr.escape (e.source ^ "." ^ e.kind))
        (Attr.escape e.source) ts
        (Attr.list_to_json (("seq", Attr.Int e.seq) :: e.attrs));
  }

let metadata_event name tid args_json =
  Printf.sprintf
    "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":%s}" name tid
    args_json

let chrome_trace ~events ~spans =
  let rendered =
    List.rev_append
      (List.rev_map span_event spans)
      (List.map instant_event events)
  in
  let rendered =
    List.sort
      (fun a b ->
        match compare a.ce_ts b.ce_ts with 0 -> compare a.ce_seq b.ce_seq | c -> c)
      rendered
  in
  let lanes =
    List.sort_uniq compare
      (0 :: List.map (fun (s : Trace.span) -> s.domain) spans)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let add json =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf json
  in
  add (metadata_event "process_name" 0 "{\"name\":\"fibbing\"}");
  List.iter
    (fun lane ->
      add
        (metadata_event "thread_name" lane
           (Printf.sprintf "{\"name\":\"domain %d\"}" lane)))
    lanes;
  List.iter (fun e -> add e.ce_json) rendered;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let chrome_trace_live () =
  chrome_trace
    ~events:(Timeline.events ~include_spans:false ())
    ~spans:(Trace.spans ())

(* ---- OpenMetrics text exposition ---- *)

let sanitize name =
  if name = "" then "_"
  else begin
    let s =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
          | _ -> '_')
        name
    in
    match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s
  end

(* OpenMetrics floats: keep integral values readable ("83.0") and
   everything else in shortest-exact form. *)
let om_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let om_bound le = if le = infinity then "+Inf" else Printf.sprintf "%g" le

let open_metrics () =
  let buckets = Metrics.dump_buckets () in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, snap) ->
      let n = sanitize name in
      match (snap : Metrics.snapshot) with
      | Metrics.Counter v ->
        Printf.bprintf buf "# TYPE %s counter\n" n;
        Printf.bprintf buf "%s_total %d\n" n v
      | Metrics.Gauge v ->
        Printf.bprintf buf "# TYPE %s gauge\n" n;
        Printf.bprintf buf "%s %s\n" n (om_float v)
      | Metrics.Histogram s ->
        Printf.bprintf buf "# TYPE %s histogram\n" n;
        (match List.assoc_opt name buckets with
        | Some bs ->
          List.iter
            (fun (le, c) ->
              Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" n (om_bound le) c)
            bs
        | None -> ());
        Printf.bprintf buf "%s_sum %s\n" n (om_float s.Metrics.sum);
        Printf.bprintf buf "%s_count %d\n" n s.Metrics.count)
    (Metrics.dump ());
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
