type span = {
  seq : int;
  parent : int option;
  depth : int;
  name : string;
  attrs : Attr.t list;
  start_time : float;
  end_time : float;
  domain : int;
}

(* An open span awaiting its end timestamp. *)
type active = {
  a_seq : int;
  a_parent : int option;
  a_depth : int;
  a_name : string;
  a_attrs : Attr.t list;
  a_late : (unit -> Attr.t list) option;
  a_start : float;
}

let default_capacity = 16384

(* The global ring is shared across domains and Kit.Ring is not
   thread-safe, so every access goes through [mu]. Span nesting is a
   property of one domain's call stack, so [stack] is domain-local;
   likewise the capture-scope buffers, which are only ever touched by
   the domain that opened them (lock-free by confinement). *)
let mu = Mutex.create ()

let ring : span Kit.Ring.t ref = ref (Kit.Ring.create ~capacity:default_capacity)

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

let stack : active list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

(* Capture scopes, innermost first: completed spans go to the top
   scope's buffer (newest first) instead of the global ring. *)
let scopes : span list ref list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let begin_scope () =
  let s = Domain.DLS.get scopes in
  s := ref [] :: !s

let end_scope () =
  let s = Domain.DLS.get scopes in
  match !s with
  | [] -> []
  | buf :: rest ->
    s := rest;
    List.rev !buf

let emit span =
  match !(Domain.DLS.get scopes) with
  | buf :: _ -> buf := span :: !buf
  | [] -> locked (fun () -> Kit.Ring.push !ring span)

let with_span ?(attrs = []) ?late_attrs name f =
  if not (Atomic.get State.enabled) then f ()
  else begin
    let stack = Domain.DLS.get stack in
    let parent, depth =
      match !stack with
      | [] -> (None, 0)
      | p :: _ -> (Some p.a_seq, p.a_depth + 1)
    in
    let a =
      {
        a_seq = State.fresh_seq ();
        a_parent = parent;
        a_depth = depth;
        a_name = name;
        a_attrs = attrs;
        a_late = late_attrs;
        a_start = Clock.now ();
      }
    in
    stack := a :: !stack;
    let finish () =
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      let attrs =
        match a.a_late with None -> a.a_attrs | Some g -> a.a_attrs @ g ()
      in
      emit
        {
          seq = a.a_seq;
          parent = a.a_parent;
          depth = a.a_depth;
          name = a.a_name;
          attrs;
          start_time = a.a_start;
          end_time = Clock.now ();
          domain = (Domain.self () :> int);
        }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let spans () = locked (fun () -> Kit.Ring.to_list !ring)

let dropped () = locked (fun () -> Kit.Ring.dropped !ring)

let render_json_lines spans =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"seq\":%d,\"parent\":%s,\"name\":\"%s\",\"start\":%.6f,\"end\":%.6f,\"attrs\":%s}\n"
           s.seq
           (match s.parent with Some p -> string_of_int p | None -> "null")
           (Attr.escape s.name) s.start_time s.end_time
           (Attr.list_to_json s.attrs)))
    spans;
  Buffer.contents buf

let to_json_lines () = render_json_lines (spans ())

let pp_tree fmt () =
  let all = spans () in
  let present = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace present s.seq ()) all;
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun s ->
      match s.parent with
      | Some p when Hashtbl.mem present p ->
        Hashtbl.replace children p (s :: Option.value ~default:[] (Hashtbl.find_opt children p))
      | Some _ | None -> roots := s :: !roots)
    all;
  let by_seq l = List.sort (fun a b -> compare a.seq b.seq) l in
  let rec pp indent s =
    Format.fprintf fmt "%s%s [%.6f..%.6f]%s%a@." indent s.name s.start_time
      s.end_time
      (if s.attrs = [] then "" else " ")
      Attr.pp_list s.attrs;
    List.iter
      (pp (indent ^ "  "))
      (by_seq (Option.value ~default:[] (Hashtbl.find_opt children s.seq)))
  in
  List.iter (pp "") (by_seq !roots)

let set_capacity capacity = locked (fun () -> ring := Kit.Ring.create ~capacity)

let reset () =
  locked (fun () -> Kit.Ring.clear !ring);
  Domain.DLS.get stack := []
