type span = {
  seq : int;
  parent : int option;
  depth : int;
  name : string;
  attrs : Attr.t list;
  start_time : float;
  end_time : float;
}

(* An open span awaiting its end timestamp. *)
type active = {
  a_seq : int;
  a_parent : int option;
  a_depth : int;
  a_name : string;
  a_attrs : Attr.t list;
  a_start : float;
}

let default_capacity = 16384

let ring : span Kit.Ring.t ref = ref (Kit.Ring.create ~capacity:default_capacity)

let stack : active list ref = ref []

let with_span ?(attrs = []) name f =
  if not !State.enabled then f ()
  else begin
    let parent, depth =
      match !stack with
      | [] -> (None, 0)
      | p :: _ -> (Some p.a_seq, p.a_depth + 1)
    in
    let a =
      {
        a_seq = State.fresh_seq ();
        a_parent = parent;
        a_depth = depth;
        a_name = name;
        a_attrs = attrs;
        a_start = Clock.now ();
      }
    in
    stack := a :: !stack;
    let finish () =
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      Kit.Ring.push !ring
        {
          seq = a.a_seq;
          parent = a.a_parent;
          depth = a.a_depth;
          name = a.a_name;
          attrs = a.a_attrs;
          start_time = a.a_start;
          end_time = Clock.now ();
        }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let spans () = Kit.Ring.to_list !ring

let dropped () = Kit.Ring.dropped !ring

let to_json_lines () =
  let buf = Buffer.create 1024 in
  Kit.Ring.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"seq\":%d,\"parent\":%s,\"name\":\"%s\",\"start\":%.6f,\"end\":%.6f,\"attrs\":%s}\n"
           s.seq
           (match s.parent with Some p -> string_of_int p | None -> "null")
           (Attr.escape s.name) s.start_time s.end_time
           (Attr.list_to_json s.attrs)))
    !ring;
  Buffer.contents buf

let pp_tree fmt () =
  let all = spans () in
  let present = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace present s.seq ()) all;
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun s ->
      match s.parent with
      | Some p when Hashtbl.mem present p ->
        Hashtbl.replace children p (s :: Option.value ~default:[] (Hashtbl.find_opt children p))
      | Some _ | None -> roots := s :: !roots)
    all;
  let by_seq l = List.sort (fun a b -> compare a.seq b.seq) l in
  let rec pp indent s =
    Format.fprintf fmt "%s%s [%.6f..%.6f]%s%a@." indent s.name s.start_time
      s.end_time
      (if s.attrs = [] then "" else " ")
      Attr.pp_list s.attrs;
    List.iter
      (pp (indent ^ "  "))
      (by_seq (Option.value ~default:[] (Hashtbl.find_opt children s.seq)))
  in
  List.iter (pp "") (by_seq !roots)

let set_capacity capacity = ring := Kit.Ring.create ~capacity

let reset () =
  Kit.Ring.clear !ring;
  stack := []
