(** Fork/join worker pool over OCaml 5 domains.

    A pool is a concurrency budget, not a set of live threads: every
    [iter]/[map] call spawns up to [domains - 1] helper domains, has the
    calling domain participate too, and joins all helpers before
    returning. Work items are claimed from a shared atomic cursor in
    chunks (one fetch-and-add per ~[n / (domains * 8)] items), so uneven
    per-item cost balances automatically while small batches pay almost
    no atomic contention.

    The body [f] runs concurrently with itself on different indices. It
    must only touch shared state that is safe under that: read-only
    structures built before the call, writes to disjoint slots of a
    pre-allocated array, or [Atomic]/domain-safe cells (the {!Obs}
    registry qualifies). *)

type t

val create : ?domains:int -> unit -> t
(** [create ()] sizes the pool to {!default_domain_count}. [domains]
    overrides it; values below 1 are clamped to 1 (purely
    sequential). *)

val domain_count : t -> int

val default_domain_count : unit -> int
(** The width [create] uses when [?domains] is absent: the
    {!set_default_domains} override if set, else the FIBBING_DOMAINS
    environment variable (ignored unless a positive integer), else
    [Domain.recommended_domain_count ()]. *)

val set_default_domains : int option -> unit
(** Process-wide default width override — what the [--domains] knobs of
    fibbingctl and bench/main install, so one flag reshapes every pool
    subsequently created without an explicit [?domains]. [Some d] clamps
    [d] to at least 1; [None] restores the environment/runtime
    default. Existing pools are unaffected. *)

val iter : t -> n:int -> (int -> unit) -> unit
(** [iter t ~n f] runs [f i] for every [i] in [0, n), fanned across the
    pool's domains. Returns once every index has been claimed and all
    helper domains have been joined.

    Partial progress on exception: if any call to [f] raises, the first
    captured exception is re-raised on the caller after all helpers are
    joined. Other participants stop at their next chunk boundary, so an
    arbitrary subset of the remaining indices — including indices after
    the raising one — may or may not have been processed. Callers that
    need all-or-nothing semantics must build into fresh storage and
    publish only on normal return. *)

val map : t -> n:int -> (int -> 'a) -> 'a array
(** [map t ~n f] is [iter] collecting results: element [i] of the
    returned array is [f i], so callers need not hand-roll a result
    array around [iter]. The same partial-progress contract applies: if
    any [f i] raises, the array under construction is abandoned and the
    first exception is re-raised — no partially-filled result escapes. *)
