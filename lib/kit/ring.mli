(** Bounded ring buffer: a FIFO of fixed capacity that overwrites its
    oldest element when full. Used for event logs and trace buffers that
    must not grow without bound over long simulations. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be positive. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently held, at most [capacity]. *)

val push : 'a t -> 'a -> unit
(** Append, evicting the oldest element when the ring is full. *)

val dropped : 'a t -> int
(** Total elements evicted since creation (or the last [clear]). *)

val to_list : 'a t -> 'a list
(** Retained elements, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Oldest first. *)

val clear : 'a t -> unit
(** Drop every element and reset the [dropped] counter. *)
