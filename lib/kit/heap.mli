(** Mutable binary min-heap keyed by float priorities.

    Used by Dijkstra ([Netgraph.Dijkstra]) and the discrete event queue
    ([Netsim.Events]). Duplicate insertions of the same element are
    allowed; stale entries are the caller's concern (lazy deletion). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int
(** Number of stored entries (including any stale duplicates). *)

val push : 'a t -> priority:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority entry, if any. Ties are broken
    arbitrarily but deterministically. *)

val peek : 'a t -> (float * 'a) option

(** Monomorphic binary min-heap with unboxed [int] priorities and [int]
    payloads — the Dijkstra workhorse.

    There is deliberately no [decrease_key]: Dijkstra relaxations push a
    fresh (priority, node) pair instead, and pops of already-settled
    nodes are skipped by the caller (lazy deletion). This keeps every
    operation allocation-free on the hot path at the cost of a heap that
    may transiently hold O(edges) stale entries. *)
module Int : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] pre-sizes the backing arrays (default grows on demand). *)

  val is_empty : t -> bool

  val size : t -> int
  (** Number of stored entries, including stale duplicates. *)

  val clear : t -> unit
  (** Drop all entries; keeps the backing arrays for reuse. *)

  val push : t -> priority:int -> int -> unit

  val pop : t -> (int * int) option
  (** Remove and return the minimum-priority entry, if any. *)

  val peek : t -> (int * int) option
end
