(** Minimal JSON reader/writer.

    The repo emits JSON in several places (telemetry lines, bench
    snapshots, exporters) and now also needs to read some of it back
    (bench history rows, golden-file tests) without adding a parser
    dependency. This is a small, strict JSON implementation: full
    escape handling, numbers as [float], objects as association lists
    in source order.

    Not a streaming parser — intended for single documents or JSONL
    lines up to a few megabytes. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parses one complete JSON document; trailing whitespace is allowed,
    any other trailing input is an error. Errors carry a byte offset. *)

val parse_exn : string -> t
(** Raises [Failure] with the parse error. *)

val parse_lines : string -> (t list, string) result
(** Parses JSONL: one document per non-empty line. *)

val to_string : t -> string
(** Compact rendering. Floats holding integral values in the safe
    range print without a fractional part, so int-valued counters
    round-trip as [42], not [42.]. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the first binding of [k]; [None] for
    non-objects. *)

val to_float : t -> float option
(** [Num]s only. *)

val to_str : t -> string option
(** [Str]s only. *)
