type 'a t = {
  data : 'a option array;
  mutable head : int; (* next write position *)
  mutable length : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity None; head = 0; length = 0; dropped = 0 }

let capacity t = Array.length t.data

let length t = t.length

let push t x =
  let cap = Array.length t.data in
  if t.length = cap then t.dropped <- t.dropped + 1 else t.length <- t.length + 1;
  t.data.(t.head) <- Some x;
  t.head <- (t.head + 1) mod cap

let dropped t = t.dropped

let iter f t =
  let cap = Array.length t.data in
  let start = (t.head - t.length + (2 * cap)) mod cap in
  for i = 0 to t.length - 1 do
    match t.data.((start + i) mod cap) with
    | Some x -> f x
    | None -> assert false (* slots within [length] are always filled *)
  done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.head <- 0;
  t.length <- 0;
  t.dropped <- 0
