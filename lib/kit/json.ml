type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Error of int * string

(* Recursive-descent over the raw string; [pos] is the only state. *)
type state = { src : string; mutable pos : int }

let error st msg = raise (Error (st.pos, msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> error st (Printf.sprintf "expected %c" c)

let hex_digit st = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | _ -> error st "bad \\u escape"

(* Encode one Unicode scalar as UTF-8; surrogate pairs in the input
   are combined by the caller. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    match peek st with
    | Some c ->
      v := (!v lsl 4) lor hex_digit st c;
      advance st
    | None -> error st "bad \\u escape"
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'u' ->
        advance st;
        let u = parse_hex4 st in
        let u =
          if u >= 0xD800 && u <= 0xDBFF then begin
            (* High surrogate: require the low half. *)
            expect st '\\';
            expect st 'u';
            let lo = parse_hex4 st in
            if lo < 0xDC00 || lo > 0xDFFF then error st "unpaired surrogate";
            0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
          end
          else u
        in
        add_utf8 buf u
      | _ -> error st "bad escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c when num_char c -> true | _ -> false do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some v -> v
  | None -> error st (Printf.sprintf "bad number %S" s)

let parse_literal st word value =
  String.iter (fun c -> expect st c) word;
  value

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> error st (Printf.sprintf "unexpected %C" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws st;
      let k = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        members ((k, v) :: acc)
      | Some '}' ->
        advance st;
        List.rev ((k, v) :: acc)
      | _ -> error st "expected , or }"
    in
    Obj (members [])
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        elements (v :: acc)
      | Some ']' ->
        advance st;
        List.rev (v :: acc)
      | _ -> error st "expected , or ]"
    in
    List (elements [])
  end

let parse s =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then error st "trailing input";
    v
  with
  | v -> Ok v
  | exception Error (pos, msg) ->
    Result.Error (Printf.sprintf "JSON parse error at byte %d: %s" pos msg)

let parse_exn s =
  match parse s with Ok v -> v | Result.Error msg -> failwith msg

let parse_lines s =
  let lines = String.split_on_char '\n' s in
  let rec go acc i = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go acc (i + 1) rest
      else begin
        match parse line with
        | Ok v -> go (v :: acc) (i + 1) rest
        | Result.Error msg -> Result.Error (Printf.sprintf "line %d: %s" i msg)
      end
  in
  go [] 1 lines

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else if Float.is_finite v then Buffer.add_string buf (Printf.sprintf "%.17g" v)
  else escape_string buf (Printf.sprintf "%h" v)

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> add_num buf v
    | Str s -> escape_string buf s
    | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          go v)
        vs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          go v)
        kvs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_str = function Str s -> Some s | _ -> None
