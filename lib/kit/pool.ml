(* Domain-based fork/join worker pool.

   Domains are spawned per [iter] call and always joined before it
   returns, so the pool holds no long-lived resources and needs no
   shutdown protocol. OCaml domain spawn is cheap relative to an SPF
   batch, and ephemeral domains sidestep the hazards of a persistent
   pool (domains outliving the main domain at exit, deadlocks on
   teardown).

   Work distribution is a shared atomic cursor claimed in chunks: each
   participant — helper domains plus the calling domain itself — grabs
   the next [chunk] consecutive indices with one fetch-and-add, so a
   batch of n items costs O(n / chunk) atomic operations instead of n.
   The chunk is sized so every participant still makes ~8 claims,
   which keeps uneven per-item cost balanced. The first exception
   raised by any participant is captured and re-raised on the caller
   after all domains have been joined; remaining indices may or may
   not have been processed when that happens. *)

type t = { domains : int }

(* Process-wide default width, consulted by [create] when [?domains]
   is absent: an explicit [set_default_domains] override wins, then the
   FIBBING_DOMAINS environment variable, then the runtime's
   recommendation. This is what the --domains knobs of fibbingctl and
   bench/main set, so one flag reshapes every pool in the process. *)
let default_override : int option Atomic.t = Atomic.make None

let env_domains () =
  match Sys.getenv_opt "FIBBING_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> Some d
    | Some _ | None -> None)

let set_default_domains d =
  Atomic.set default_override (Option.map (max 1) d)

let default_domain_count () =
  match Atomic.get default_override with
  | Some d -> d
  | None -> (
    match env_domains () with
    | Some d -> d
    | None -> Domain.recommended_domain_count ())

let create ?domains () =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> default_domain_count ()
  in
  { domains }

let domain_count t = t.domains

(* ~8 claims per participant amortizes the atomic traffic while leaving
   enough chunks for load balancing under uneven per-item cost. *)
let claims_per_participant = 8

let iter t ~n f =
  if n <= 0 then ()
  else begin
    let helpers = min (t.domains - 1) (n - 1) in
    if helpers <= 0 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let participants = helpers + 1 in
      let chunk = max 1 (n / (participants * claims_per_participant)) in
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let work () =
        let continue = ref true in
        while !continue do
          let start = Atomic.fetch_and_add next chunk in
          if start >= n then continue := false
          else begin
            let stop = min n (start + chunk) in
            try
              for i = start to stop - 1 do
                f i
              done
            with exn ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (exn, bt)));
              continue := false
          end
        done
      in
      let spawned = List.init helpers (fun _ -> Domain.spawn work) in
      work ();
      List.iter Domain.join spawned;
      match Atomic.get failure with
      | None -> ()
      | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    end
  end

let map t ~n f =
  if n <= 0 then [||]
  else begin
    let results = Array.make n None in
    iter t ~n (fun i -> results.(i) <- Some (f i));
    Array.map
      (function Some v -> v | None -> assert false (* iter covers [0, n) *))
      results
  end
