module Graph = Netgraph.Graph

type report =
  | Series of float
  | Qoe
  | Actions
  | Fibs
  | Fakes
  | Loads
  | Latency
  | Audit

type controller_mode = On | Off | Global

type model = Fairshare | Aimd_model

type command =
  | Topology of string
  | Prefix of { name : Igp.Lsa.prefix; at : string; cost : int }
  | Capacity_default of float
  | Capacity of string * string * float
  | Monitor_cfg of { poll : float; threshold : float; clear : float; alpha : float }
  | Controller of controller_mode
  | Model of model
  | Track of string * string
  | Flows of {
      count : int;
      src : string;
      prefix : Igp.Lsa.prefix;
      rate : float;
      at : float;
      duration : float;
    }
  | Fail of string * string * float
  | Restore of string * string * float
  | Crash_router of string * float
  | Recover_router of string * float
  | Controller_crash of float
  | Controller_restart of float
  | Blackout of { duration : float; at : float }
  | Flooding_loss of { drop : float; seed : int; duration : float option; at : float }
  | Steer of { router : string; splits : (string * float) list; at : float }
  | Run of float
  | Report of report

(* ------------------------------------------------------------------ *)
(* Parsing *)

let ( let* ) = Result.bind

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (String.trim (strip_comment line))
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let float_of token =
  match float_of_string_opt token with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "bad number %S" token)

let int_of token =
  match int_of_string_opt token with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad integer %S" token)

(* Prefix tokens are validated at parse time: a typo'd CIDR used to
   sail through as an exact-match string and become an unroutable
   destination at runtime. [Prefix.of_string]'s error already names the
   offending token; [parse] prepends the line number. *)
let prefix_of token = Igp.Prefix.of_string token

let link_of token =
  match String.split_on_char '-' token with
  | [ a; b ] when a <> "" && b <> "" -> Ok (a, b)
  | _ -> Error (Printf.sprintf "bad link %S (expected X-Y)" token)

let splits_of token =
  let parse_one part =
    match String.split_on_char ':' part with
    | [ name; fraction ] when name <> "" ->
      let* f = float_of fraction in
      Ok (name, f)
    | _ -> Error (Printf.sprintf "bad split %S (expected NH:FRACTION)" part)
  in
  List.fold_left
    (fun acc part ->
      let* acc = acc in
      let* one = parse_one part in
      Ok (one :: acc))
    (Ok [])
    (String.split_on_char ',' token)
  |> Result.map List.rev

(* "key value" option scanning for trailing [duration D] etc. *)
let rec options pairs = function
  | [] -> Ok pairs
  | key :: value :: rest -> Ok ((key, value) :: pairs) |> fun acc ->
    let* pairs = acc in
    options pairs rest
  | [ lone ] -> Error (Printf.sprintf "dangling option %S" lone)

let opt_float pairs key ~default =
  match List.assoc_opt key pairs with
  | Some v -> float_of v
  | None -> Ok default

let parse_command = function
  | [] -> Ok None
  | [ "topology"; spec ] -> Ok (Some (Topology spec))
  | "prefix" :: name :: "at" :: at :: rest ->
    let* name = prefix_of name in
    let* cost =
      match rest with
      | [] -> Ok 0
      | [ "cost"; c ] -> int_of c
      | _ -> Error "expected: prefix NAME at ROUTER [cost N]"
    in
    Ok (Some (Prefix { name; at; cost }))
  | [ "capacity"; "default"; value ] ->
    let* v = float_of value in
    Ok (Some (Capacity_default v))
  | [ "capacity"; link; value ] ->
    let* a, b = link_of link in
    let* v = float_of value in
    Ok (Some (Capacity (a, b, v)))
  | "monitor" :: rest ->
    let* pairs = options [] rest in
    let* poll = opt_float pairs "poll" ~default:2.0 in
    let* threshold = opt_float pairs "threshold" ~default:0.85 in
    let* clear = opt_float pairs "clear" ~default:0.6 in
    let* alpha = opt_float pairs "alpha" ~default:0.8 in
    Ok (Some (Monitor_cfg { poll; threshold; clear; alpha }))
  | [ "controller"; "on" ] -> Ok (Some (Controller On))
  | [ "controller"; "off" ] -> Ok (Some (Controller Off))
  | [ "controller"; "global" ] -> Ok (Some (Controller Global))
  | [ "model"; "fairshare" ] -> Ok (Some (Model Fairshare))
  | [ "model"; "aimd" ] -> Ok (Some (Model Aimd_model))
  | [ "track"; link ] ->
    let* a, b = link_of link in
    Ok (Some (Track (a, b)))
  | "flows" :: count :: "from" :: src :: "to" :: prefix :: "rate" :: rate
    :: "at" :: at :: rest ->
    let* count = int_of count in
    let* prefix = prefix_of prefix in
    let* rate = float_of rate in
    let* at = float_of at in
    let* pairs = options [] rest in
    let* duration = opt_float pairs "duration" ~default:300. in
    Ok (Some (Flows { count; src; prefix; rate; at; duration }))
  | [ "fail"; link; "at"; at ] ->
    let* a, b = link_of link in
    let* at = float_of at in
    Ok (Some (Fail (a, b, at)))
  | [ "restore"; link; "at"; at ] ->
    let* a, b = link_of link in
    let* at = float_of at in
    Ok (Some (Restore (a, b, at)))
  | [ "crash"; router; "at"; at ] ->
    let* at = float_of at in
    Ok (Some (Crash_router (router, at)))
  | [ "recover"; router; "at"; at ] ->
    let* at = float_of at in
    Ok (Some (Recover_router (router, at)))
  | [ "controller"; "crash"; "at"; at ] ->
    let* at = float_of at in
    Ok (Some (Controller_crash at))
  | [ "controller"; "restart"; "at"; at ] ->
    let* at = float_of at in
    Ok (Some (Controller_restart at))
  | [ "blackout"; duration; "at"; at ] ->
    let* duration = float_of duration in
    let* at = float_of at in
    Ok (Some (Blackout { duration; at }))
  | "flooding" :: "loss" :: drop :: "at" :: at :: rest ->
    let* drop = float_of drop in
    let* at = float_of at in
    let* pairs = options [] rest in
    let* seed =
      match List.assoc_opt "seed" pairs with Some s -> int_of s | None -> Ok 7
    in
    let* duration =
      match List.assoc_opt "duration" pairs with
      | Some d -> Result.map Option.some (float_of d)
      | None -> Ok None
    in
    Ok (Some (Flooding_loss { drop; seed; duration; at }))
  | [ "steer"; router; "to"; splits; "at"; at ] ->
    let* splits = splits_of splits in
    let* at = float_of at in
    Ok (Some (Steer { router; splits; at }))
  | [ "run"; until ] ->
    let* until = float_of until in
    Ok (Some (Run until))
  | [ "report"; "series" ] -> Ok (Some (Report (Series 2.5)))
  | [ "report"; "series"; "step"; step ] ->
    let* step = float_of step in
    Ok (Some (Report (Series step)))
  | [ "report"; "qoe" ] -> Ok (Some (Report Qoe))
  | [ "report"; "actions" ] -> Ok (Some (Report Actions))
  | [ "report"; "fibs" ] -> Ok (Some (Report Fibs))
  | [ "report"; "fakes" ] -> Ok (Some (Report Fakes))
  | [ "report"; "loads" ] -> Ok (Some (Report Loads))
  | [ "report"; "audit" ] -> Ok (Some (Report Audit))
  | [ "report"; "latency" ] -> Ok (Some (Report Latency))
  | first :: _ -> Error (Printf.sprintf "unknown or malformed command %S" first)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec walk number acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      (match parse_command (tokens line) with
      | Ok None -> walk (number + 1) acc rest
      | Ok (Some command) -> walk (number + 1) (command :: acc) rest
      | Error message -> Error (Printf.sprintf "line %d: %s" number message))
  in
  walk 1 [] lines

(* ------------------------------------------------------------------ *)
(* Execution *)

type state = {
  mutable graph : Graph.t option;
  mutable net : Igp.Network.t option;
  mutable default_capacity : float;
  mutable capacities : (string * string * float) list;
  mutable monitor_cfg : (float * float * float * float) option;
  mutable controller_mode : controller_mode;
  mutable model : model;
  mutable tracked : (string * string) list;
  mutable sim : Netsim.Sim.t option;
  mutable controller : Fibbing.Controller.t option;
  mutable flows : Netsim.Flow.t list; (* newest first *)
  mutable next_flow_id : int;
  mutable runtime_errors : string list; (* newest first *)
  mutable dt : float;
}

let fresh_state () =
  {
    graph = None;
    net = None;
    default_capacity = 11. *. 1024. *. 1024.;
    capacities = [];
    monitor_cfg = None;
    controller_mode = On;
    model = Fairshare;
    tracked = [];
    sim = None;
    controller = None;
    flows = [];
    next_flow_id = 0;
    runtime_errors = [];
    dt = 0.5;
  }

let build_topology spec =
  match String.split_on_char ':' spec with
  | [ "demo" ] -> Ok (Netgraph.Topologies.demo ()).graph
  | [ "ring"; n ] -> Ok (Netgraph.Topologies.ring ~n:(int_of_string n))
  | [ "grid"; r; c ] ->
    Ok (Netgraph.Topologies.grid ~rows:(int_of_string r) ~cols:(int_of_string c))
  | [ "random"; n; seed ] ->
    let prng = Kit.Prng.create ~seed:(int_of_string seed) in
    let n = int_of_string n in
    Ok (Netgraph.Topologies.random prng ~n ~extra_edges:n ~max_weight:4)
  | [ "twolevel"; core ] ->
    let prng = Kit.Prng.create ~seed:1 in
    Ok (Netgraph.Topologies.two_level prng ~core:(int_of_string core) ~edge_per_core:2)
  | [ name ] -> (
    match Netgraph.Zoo.find name with
    | Some entry -> Ok entry.graph
    | None -> Error (Printf.sprintf "unknown topology %S" spec))
  | _ -> Error (Printf.sprintf "unknown topology %S" spec)

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s is not set up at this point" what)

let resolve state name =
  let* graph = require "topology" state.graph in
  match Graph.find_node graph name with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "unknown router %S" name)

(* Build the simulation lazily on the first run/flow-affecting command
   that needs it. *)
let ensure_sim state =
  match state.sim with
  | Some sim -> Ok sim
  | None ->
    let* net = require "network (topology + prefix)" state.net in
    let caps = Netsim.Link.capacities ~default:state.default_capacity in
    let* () =
      List.fold_left
        (fun acc (a, b, value) ->
          let* () = acc in
          let* u = resolve state a in
          let* v = resolve state b in
          Netsim.Link.set_link caps (u, v) value;
          Ok ())
        (Ok ()) state.capacities
    in
    let poll, threshold, clear, alpha =
      Option.value ~default:(2.0, 0.85, 0.6, 0.8) state.monitor_cfg
    in
    let monitor =
      Netsim.Monitor.create ~poll_interval:poll ~threshold ~clear_threshold:clear
        ~alpha caps
    in
    let rate_model =
      match state.model with
      | Fairshare -> Netsim.Sim.Max_min_fair
      | Aimd_model -> Netsim.Sim.Aimd (Netsim.Aimd.create ())
    in
    let sim = Netsim.Sim.create ~dt:state.dt ~monitor ~rate_model net caps in
    (match state.controller_mode with
    | Off -> ()
    | On ->
      let c = Fibbing.Controller.create net in
      Fibbing.Controller.attach c sim;
      state.controller <- Some c
    | Global ->
      let c =
        Fibbing.Controller.create
          ~config:
            {
              Fibbing.Controller.default_config with
              strategy = Fibbing.Controller.Global_optimal;
              max_entries = 16;
            }
          ~reoptimize:Te.Reopt.for_controller net
      in
      Fibbing.Controller.attach c sim;
      state.controller <- Some c);
    let* () =
      List.fold_left
        (fun acc (a, b) ->
          let* () = acc in
          let* u = resolve state a in
          let* v = resolve state b in
          Netsim.Sim.track_link sim (u, v);
          Ok ())
        (Ok ()) state.tracked
    in
    state.sim <- Some sim;
    Ok sim

let runtime_error state message =
  state.runtime_errors <- message :: state.runtime_errors

let execute_command state out command =
  match command with
  | Topology spec ->
    let* graph = build_topology spec in
    state.graph <- Some graph;
    state.net <- Some (Igp.Network.create graph);
    Ok ()
  | Prefix { name; at; cost } ->
    let* net = require "topology" state.net in
    let* origin = resolve state at in
    Igp.Network.announce_prefix net name ~origin ~cost;
    Ok ()
  | Capacity_default value ->
    if state.sim <> None then Error "capacity must come before the first run"
    else begin
      state.default_capacity <- value;
      Ok ()
    end
  | Capacity (a, b, value) ->
    if state.sim <> None then Error "capacity must come before the first run"
    else begin
      state.capacities <- state.capacities @ [ (a, b, value) ];
      Ok ()
    end
  | Monitor_cfg { poll; threshold; clear; alpha } ->
    if state.sim <> None then Error "monitor must come before the first run"
    else begin
      state.monitor_cfg <- Some (poll, threshold, clear, alpha);
      Ok ()
    end
  | Controller mode ->
    if state.sim <> None then Error "controller must come before the first run"
    else begin
      state.controller_mode <- mode;
      Ok ()
    end
  | Model model ->
    if state.sim <> None then Error "model must come before the first run"
    else begin
      state.model <- model;
      Ok ()
    end
  | Track (a, b) ->
    if state.sim <> None then
      let* sim = ensure_sim state in
      let* u = resolve state a in
      let* v = resolve state b in
      Netsim.Sim.track_link sim (u, v);
      Ok ()
    else begin
      state.tracked <- state.tracked @ [ (a, b) ];
      Ok ()
    end
  | Flows { count; src; prefix; rate; at; duration } ->
    let* sim = ensure_sim state in
    let* src = resolve state src in
    let flows =
      List.init count (fun i ->
          Netsim.Flow.make ~id:(state.next_flow_id + i) ~src ~prefix ~demand:rate
            ~start_time:at ~duration ())
    in
    state.next_flow_id <- state.next_flow_id + count;
    List.iter (Netsim.Sim.add_flow sim) flows;
    state.flows <- List.rev_append flows state.flows;
    Ok ()
  | Fail (a, b, at) ->
    let* sim = ensure_sim state in
    let* u = resolve state a in
    let* v = resolve state b in
    Netsim.Sim.fail_link sim ~time:at (u, v);
    Ok ()
  | Restore (a, b, at) ->
    let* sim = ensure_sim state in
    let* u = resolve state a in
    let* v = resolve state b in
    Netsim.Sim.restore_link sim ~time:at (u, v);
    Ok ()
  | Crash_router (r, at) ->
    let* sim = ensure_sim state in
    let* r = resolve state r in
    Netsim.Sim.crash_router sim ~time:at r;
    Ok ()
  | Recover_router (r, at) ->
    let* sim = ensure_sim state in
    let* r = resolve state r in
    Netsim.Sim.recover_router sim ~time:at r;
    Ok ()
  | Controller_crash at ->
    let* sim = ensure_sim state in
    Netsim.Sim.schedule sim ~time:at (fun _ ->
        match state.controller with
        | Some c -> Fibbing.Controller.crash c
        | None -> runtime_error state "controller crash: controller is off");
    Ok ()
  | Controller_restart at ->
    let* sim = ensure_sim state in
    Netsim.Sim.schedule sim ~time:at (fun sim ->
        match state.controller with
        | Some c -> Fibbing.Controller.restart c ~time:(Netsim.Sim.time sim)
        | None -> runtime_error state "controller restart: controller is off");
    Ok ()
  | Blackout { duration; at } ->
    let* sim = ensure_sim state in
    Netsim.Sim.schedule sim ~time:at (fun sim ->
        match Netsim.Sim.monitor sim with
        | Some m -> Netsim.Monitor.mute m ~until:(Netsim.Sim.time sim +. duration)
        | None -> ());
    Ok ()
  | Flooding_loss { drop; seed; duration; at } ->
    let* sim = ensure_sim state in
    let* net = require "network" state.net in
    Netsim.Sim.schedule sim ~time:at (fun _ ->
        match Igp.Flooding.loss ~drop ~seed () with
        | loss -> Igp.Network.set_flooding_loss net (Some loss)
        | exception Invalid_argument e -> runtime_error state e);
    Option.iter
      (fun d ->
        Netsim.Sim.schedule sim ~time:(at +. d) (fun _ ->
            Igp.Network.set_flooding_loss net None))
      duration;
    Ok ()
  | Steer { router; splits; at } ->
    let* sim = ensure_sim state in
    let* net = require "network" state.net in
    let* router = resolve state router in
    let* resolved =
      List.fold_left
        (fun acc (name, fraction) ->
          let* acc = acc in
          let* nh = resolve state name in
          Ok ((nh, fraction) :: acc))
        (Ok []) splits
    in
    let* prefix =
      match Igp.Lsdb.prefix_list (Igp.Network.lsdb net) with
      | [ p ] -> Ok p
      | [] -> Error "steer: no prefix announced"
      | p :: _ -> Ok p (* first prefix by convention *)
    in
    Netsim.Sim.schedule sim ~time:at (fun _ ->
        let reqs = Fibbing.Requirements.make ~prefix [ (router, List.rev resolved) ] in
        match Fibbing.Augmentation.compile ~max_entries:16 net reqs with
        | Ok plan -> Fibbing.Augmentation.apply net plan
        | Error e -> runtime_error state (Printf.sprintf "steer failed: %s" e));
    Ok ()
  | Run until ->
    let* sim = ensure_sim state in
    Netsim.Sim.run_until sim until;
    (match state.runtime_errors with
    | [] -> Ok ()
    | errors -> Error (String.concat "; " (List.rev errors)))
  | Report (Series step) ->
    let* sim = ensure_sim state in
    let* net = require "network" state.net in
    let g = Igp.Network.graph net in
    let* series =
      List.fold_left
        (fun acc (a, b) ->
          let* acc = acc in
          let* u = resolve state a in
          let* v = resolve state b in
          ignore g;
          Ok (Netsim.Sim.link_series sim (u, v) :: acc))
        (Ok []) state.tracked
    in
    Format.fprintf out "%a@." (Kit.Timeseries.pp_rows ~step) (List.rev series);
    Ok ()
  | Report Qoe ->
    let* sim = ensure_sim state in
    let results =
      List.map
        (fun flow -> Video.Client.of_flow sim ~dt:state.dt flow)
        (List.rev state.flows)
    in
    (match results with
    | [] -> Format.fprintf out "qoe: no flows@."
    | _ -> Format.fprintf out "qoe: %a@." Video.Qoe.pp (Video.Qoe.summarize results));
    Ok ()
  | Report Actions ->
    (match state.controller with
    | None -> Format.fprintf out "actions: controller off@."
    | Some controller ->
      List.iter
        (fun (a : Fibbing.Controller.action) ->
          Format.fprintf out "[%5.1f s] %s (fakes: %d)@." a.time a.description
            a.fakes_installed)
        (Fibbing.Controller.actions controller));
    Ok ()
  | Report Fibs ->
    let* net = require "network" state.net in
    let names = Graph.name (Igp.Network.graph net) in
    List.iter
      (fun prefix ->
        List.iter
          (fun (_, fib) -> Format.fprintf out "%a@." (Igp.Fib.pp ~names) fib)
          (Igp.Network.fibs net prefix))
      (Igp.Lsdb.prefix_list (Igp.Network.lsdb net));
    Ok ()
  | Report Fakes ->
    let* net = require "network" state.net in
    let names = Graph.name (Igp.Network.graph net) in
    (match Igp.Network.fakes net with
    | [] -> Format.fprintf out "no fakes installed@."
    | fakes ->
      List.iter
        (fun fake -> Format.fprintf out "%a@." (Igp.Lsa.pp ~names) (Fake fake))
        fakes);
    Ok ()
  | Report Loads ->
    let* sim = ensure_sim state in
    let* net = require "network" state.net in
    let g = Igp.Network.graph net in
    (match Netsim.Sim.current_link_rates sim with
    | [] -> Format.fprintf out "no traffic@."
    | rates ->
      List.iter
        (fun (link, rate) ->
          if rate > 0. then
            Format.fprintf out "%-12s %12.0f@." (Netsim.Link.name g link) rate)
        (List.sort
           (fun (_, a) (_, b) -> compare b a)
           rates));
    Ok ()
  | Report Latency ->
    let* sim = ensure_sim state in
    Format.fprintf out "mean one-way delay: %.1f ms over %d flows@."
      (Netsim.Latency.mean_flow_delay_ms sim)
      (List.length (Netsim.Sim.active_flows sim));
    Ok ()
  | Report Audit ->
    let* net = require "network" state.net in
    Format.fprintf out "%a"
      (Fibbing.Audit.pp ~names:(Graph.name (Igp.Network.graph net)))
      (Fibbing.Audit.run net);
    Ok ()

let execute ?(out = Format.std_formatter) commands =
  let state = fresh_state () in
  List.fold_left
    (fun acc command ->
      let* () = acc in
      execute_command state out command)
    (Ok ()) commands

let run_string ?out text =
  let* commands = parse text in
  execute ?out commands
