module Link = Netsim.Link
module Sim = Netsim.Sim

type t = {
  topology : Netgraph.Topologies.demo;
  net : Igp.Network.t;
  caps : Link.capacities;
  sim : Sim.t;
  controller : Fibbing.Controller.t option;
  dt : float;
}

let prefix = Igp.Prefix.v "blue"

let stream_rate = 131072. (* 1 Mbps *)

let link_capacity = 2.75 *. 1024. *. 1024. (* 22 Mbps: ~21 streams *)

let backbone_capacity = 11. *. 1024. *. 1024. (* 88 Mbps: never the bottleneck *)

let video_duration = 300.

let make ?(fibbing = true) ?(dt = 0.5) ?(rate_model = Sim.Max_min_fair)
    ?(aggregation = true) ?controller_config () =
  let topology = Netgraph.Topologies.demo () in
  let net = Igp.Network.create topology.graph in
  Igp.Network.announce_prefix net prefix ~origin:topology.c ~cost:0;
  (* The three links the paper plots are the capacity bottlenecks; the
     rest of the network (ingress and egress segments) has headroom, as
     in the demo where 31 streams traverse A-B unharmed but overload
     B-R2 (see DESIGN.md, F2 calibration). *)
  let caps = Link.capacities ~default:backbone_capacity in
  List.iter
    (fun link -> Link.set_link caps link link_capacity)
    [
      (topology.a, topology.r1);
      (topology.b, topology.r2);
      (topology.b, topology.r3);
    ];
  (* Fast-reacting monitor, as the demo controller must beat the surge:
     2 s SNMP polls, strongly weighted to the last window. *)
  let monitor =
    Netsim.Monitor.create ~poll_interval:2.0 ~threshold:0.85
      ~clear_threshold:0.6 ~alpha:0.8 caps
  in
  let sim = Sim.create ~dt ~monitor ~rate_model ~aggregation net caps in
  let controller =
    if fibbing then begin
      let c = Fibbing.Controller.create ?config:controller_config net in
      Fibbing.Controller.attach c sim;
      Some c
    end
    else None
  in
  let t = { topology; net; caps; sim; controller; dt } in
  List.iter
    (fun (_, link) -> Sim.track_link sim link)
    [
      ("A-R1", (topology.a, topology.r1));
      ("B-R2", (topology.b, topology.r2));
      ("B-R3", (topology.b, topology.r3));
    ];
  t

let load_fig2_workload t =
  let flows =
    Video.Workload.fig2_schedule ~s1:t.topology.a ~s2:t.topology.b ~prefix
      ~rate:stream_rate ~video_duration
  in
  List.iter (Sim.add_flow t.sim) flows;
  flows

let run t ~until = Sim.run_until t.sim until

let fig2_links t =
  [
    ("A-R1", (t.topology.a, t.topology.r1));
    ("B-R2", (t.topology.b, t.topology.r2));
    ("B-R3", (t.topology.b, t.topology.r3));
  ]

let fig2_series t =
  List.map (fun (_, link) -> Sim.link_series t.sim link) (fig2_links t)

let qoe t ~flows =
  Video.Qoe.summarize
    (List.map (fun flow -> Video.Client.of_flow t.sim ~dt:t.dt flow) flows)
