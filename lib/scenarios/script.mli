(** A small scenario-description language.

    Experiments are line-oriented scripts — the textual equivalent of
    the paper's demo setup — executable from the CLI
    ([fibbingctl run script.fib]) or programmatically:

    {v
    # the paper's demo, scripted
    topology demo
    prefix blue at C
    capacity default 11534336
    capacity A-R1 2883584
    capacity B-R2 2883584
    capacity B-R3 2883584
    monitor poll 2 threshold 0.85 clear 0.6 alpha 0.8
    controller on
    track A-R1
    track B-R2
    track B-R3
    flows 1 from A to blue rate 131072 at 0
    flows 30 from A to blue rate 131072 at 15
    flows 31 from B to blue rate 131072 at 35
    run 55
    report series step 2.5
    report actions
    report qoe
    v}

    Other commands: [controller off | global], [model aimd] (TCP-like
    rate dynamics instead of instantaneous max-min fairness),
    [fail X-Y at T], [steer R to N1:F1,N2:F2 at T] (a manual lie,
    compiled and injected at time T), [report fibs], [report fakes],
    [report loads], [report latency], [report audit].

    Fault injection: [restore X-Y at T] (undo a [fail]),
    [crash R at T] / [recover R at T] (router crash and recovery),
    [controller crash at T] / [controller restart at T] (the restarted
    controller resyncs from surviving fake LSAs), [blackout D at T]
    (lose all monitor samples for D seconds) and
    [flooding loss P at T [duration D] [seed S]] (lossy LSA flooding
    with per-hop drop probability P).

    Lines are parsed eagerly (all errors carry their line number);
    execution is deterministic. *)

type command

val parse : string -> (command list, string) result
(** Parse a whole script. Unknown words, malformed numbers and
    out-of-order times are reported as ["line N: ..."] errors. *)

val execute : ?out:Format.formatter -> command list -> (unit, string) result
(** Run the script, writing [report] output to [out] (default the
    standard formatter). Execution errors (unknown router names, steers
    that fail to compile, ...) abort with a message. *)

val run_string : ?out:Format.formatter -> string -> (unit, string) result
(** [parse] + [execute]. *)
