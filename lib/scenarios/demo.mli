(** The paper's demo scenario, fully wired: Fig. 1a topology, the blue
    prefix at C, video servers at A (S1) and B (S2), clients behind C
    (D1, D2), SNMP-style monitoring, and the Fibbing controller.

    Calibration (DESIGN.md, experiment F2): 1 Mbps video streams
    (131072 bytes/s) and 22 Mbps links (2.75 MB/s ≈ 21 concurrent
    streams). One stream fits everywhere; 31 overload a single link
    (the first surge); 62 need both of B's links plus A's detour (the
    second surge) — the same regime as the paper's 4 MB/s peak figure. *)

type t = {
  topology : Netgraph.Topologies.demo;
  net : Igp.Network.t;
  caps : Netsim.Link.capacities;
  sim : Netsim.Sim.t;
  controller : Fibbing.Controller.t option;
  dt : float;
}

val prefix : Igp.Lsa.prefix
(** "blue" — the destination prefix of the paper's figures. *)

val stream_rate : float
(** Bytes/s of one video stream. *)

val link_capacity : float
(** Bytes/s of the three bottleneck links the paper plots (A–R1, B–R2,
    B–R3). *)

val backbone_capacity : float
(** Bytes/s of every other link (ingress/egress segments with headroom:
    in the demo 31 streams cross A–B unharmed yet overload B–R2). *)

val video_duration : float
(** Long enough that no video ends within the 55 s experiment. *)

val make :
  ?fibbing:bool ->
  ?dt:float ->
  ?rate_model:Netsim.Sim.rate_model ->
  ?aggregation:bool ->
  ?controller_config:Fibbing.Controller.config ->
  unit ->
  t
(** Build the demo network and simulation. [fibbing] (default true)
    attaches the controller; with [false] the network is left to plain
    IGP routing — the paper's "controller disabled" comparison run.
    [rate_model] defaults to instantaneous max-min fairness; pass
    [Aimd] for TCP-like ramps. [aggregation] (default true) is forwarded
    to [Netsim.Sim.create] — pass [false] for a per-flow A/B reference
    run. The three links of Fig. 2 (A–R1, B–R2, B–R3) are pre-tracked so
    their series include leading zeros. *)

val load_fig2_workload : t -> Netsim.Flow.t list
(** Schedule the paper's exact flow arrivals (1 @ 0 s, +30 @ 15 s,
    +31 @ 35 s) and return them. *)

val run : t -> until:float -> unit

val fig2_links : t -> (string * Netsim.Link.t) list
(** The three plotted links, labelled as in the paper. *)

val fig2_series : t -> Kit.Timeseries.t list
(** Their recorded throughput series. *)

val qoe : t -> flows:Netsim.Flow.t list -> Video.Qoe.summary
(** Replay every flow through the playback-buffer client model. *)
