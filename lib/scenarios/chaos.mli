(** Chaos experiment: the demo network under a random seeded fault
    schedule ({!Netsim.Faults}), with a live Fibbing controller that can
    itself crash and restart mid-run.

    The invariant under test is the paper's graceful-degradation
    argument made executable: after every fault heals and a long calm
    tail passes — during which a live controller withdraws its lies and
    a dead controller's lies age out — routing must be {e exactly} the
    fault-free pure-IGP state: topology bit-identical, zero fakes in the
    LSDB, every FIB equal to a from-scratch computation, and the probe
    flow (which has a physical path throughout) routable again. *)

type verdict = {
  seed : int;
  plan : Netsim.Faults.plan;
  edges_restored : bool;
  fakes_left : int;
  fibs_match : bool;
  unroutable_at_until : int list;
      (** Flows without a path when the faults have healed but lies may
          still be installed — informative, not part of [ok]. *)
  unroutable_at_end : int list;
  controller_alive : bool;
  reactions : int;
  violations : Netsim.Watchdog.violation list;
      (** Watchdog violations over the {e whole} run, every step — the
          strongest property: not only must the system reconverge, no
          intermediate state may ever loop, blackhole, or leak lies. *)
  quarantines : int;
      (** Lie sets purged by the watchdog's pre-routing guard (the
          controller's own revalidation usually withdraws first). *)
  watchdog_stats : Netsim.Watchdog.stats option;
      (** Work counters ([None] when the watchdog was off). *)
}

val ok : verdict -> bool
(** Topology whole, zero fakes, FIBs equal the fault-free reference,
    nothing unroutable after quiescence, and zero watchdog violations at
    every step. *)

val run :
  ?domains:int ->
  ?faults:int ->
  ?allow_controller_death:bool ->
  ?watchdog:bool ->
  seed:int ->
  until:float ->
  unit ->
  verdict
(** Deterministic: same seed, same verdict. Faults all heal by
    [until - 4]; the run continues for a fixed quiescence tail past
    [until]. Requires [until >= 16]. With [Obs] telemetry enabled the
    whole run is traced on the shared timeline ([fibbingctl chaos]).
    [domains] sizes the run's inner SPF pool (see
    {!Igp.Network.create}); the verdict does not depend on it.
    [watchdog] (default [true]) arms a {!Netsim.Watchdog} after the
    controller attaches and wires guard purges into the controller's
    quarantine hold-down; the controller sits at R3, so during a
    partition it only reacts to links its side can observe. *)

val sweep :
  ?pool:Kit.Pool.t ->
  ?faults:int ->
  ?allow_controller_death:bool ->
  ?watchdog:bool ->
  seeds:int list ->
  until:float ->
  unit ->
  (verdict * string option) list
(** [run] over every seed, one scenario per domain of [pool] (default: a
    fresh pool at the process default width), results in [seeds] order.
    When telemetry is enabled each run executes inside [Obs.capture] and
    pairs its verdict with its private timeline rendered as JSON lines
    ([None] while disabled) — sequence numbers restart at 0 per run, so
    both verdicts and timelines are byte-identical to a sequential sweep
    at any pool width. Runs never touch the shared Obs rings. *)

val pp : Format.formatter -> verdict -> unit
