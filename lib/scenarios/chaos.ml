(* Chaos harness: run the paper's demo network under a random seeded
   fault schedule and check that, once the faults cease and every lie
   has been refreshed away or aged out, the system converges back to
   exactly the fault-free pure-IGP state. *)

module Graph = Netgraph.Graph
module Sim = Netsim.Sim
module Faults = Netsim.Faults

type verdict = {
  seed : int;
  plan : Faults.plan;
  edges_restored : bool;
  fakes_left : int;
  fibs_match : bool;
  unroutable_at_until : int list;
      (** Flows without a path when the faults have healed but lies may
          still be installed — informative, not part of [ok]. *)
  unroutable_at_end : int list;
  controller_alive : bool;
  reactions : int;
  violations : Netsim.Watchdog.violation list;
  quarantines : int;
  watchdog_stats : Netsim.Watchdog.stats option;
}

let ok v =
  v.edges_restored && v.fakes_left = 0 && v.fibs_match
  && v.unroutable_at_end = [] && v.violations = []

let prefix = Igp.Prefix.v "blue"

(* Controller tuned for short chaos runs: lies age out in [lie_ttl]
   seconds without refresh, calm withdrawal after [relax_after]. The
   quiescence tail must outlast both. *)
let lie_ttl = 12.

let relax_after = 10.

let quiet = 40.

let run ?domains ?(faults = 4) ?(allow_controller_death = true)
    ?(watchdog = true) ~seed ~until () =
  if until < 16. then invalid_arg "Chaos.run: until must be >= 16";
  let demo = Netgraph.Topologies.demo () in
  let g = demo.graph in
  let pristine = Graph.copy g in
  let net = Igp.Network.create ?domains g in
  Igp.Network.announce_prefix net prefix ~origin:demo.c ~cost:0;
  let mb = 1024. *. 1024. in
  let caps = Netsim.Link.capacities ~default:(11. *. mb) in
  List.iter
    (fun link -> Netsim.Link.set_link caps link (2.75 *. mb))
    [ (demo.a, demo.r1); (demo.b, demo.r2); (demo.b, demo.r3) ];
  let monitor =
    Netsim.Monitor.create ~poll_interval:2. ~threshold:0.85 ~clear_threshold:0.6
      ~alpha:0.8 caps
  in
  let sim = Sim.create ~dt:0.5 ~monitor net caps in
  (* When telemetry is on, stamp the shared timeline with simulated time
     so two identical runs emit byte-identical traces. *)
  if Obs.enabled () then Obs.Clock.set_source (fun () -> Sim.time sim);
  let controller =
    Fibbing.Controller.create
      ~config:
        {
          Fibbing.Controller.default_config with
          relax_after;
          lie_ttl;
          max_backoff = 16.;
          (* The paper's controller is connected to R3: during a
             partition it only sees (and reacts to) its own side. *)
          seat = Some demo.r3;
        }
      net
  in
  (* Hook order matters: the controller attaches first, so on a route
     change its own revalidation withdraws invalidated lies before the
     watchdog's guard-of-last-resort purges whatever remains. *)
  Fibbing.Controller.attach controller sim;
  let wd =
    if not watchdog then None
    else begin
      let wd = Netsim.Watchdog.arm sim in
      (* A guard purge enters the owner's hold-down too: the controller
         must not re-install the same bad steering next poll. *)
      Netsim.Watchdog.on_quarantine wd (fun ~prefix ~reason ->
          Fibbing.Controller.quarantine controller ~time:(Sim.time sim)
            ~prefix ~reason);
      Some wd
    end
  in
  (* Deterministic offered load, shaped like the demo's flash crowds so
     the controller actually lies: enough demand from both A and B to
     congest the 2.75 MB/s edge links. *)
  let rate = 128. *. 1024. in
  let add_flows ~base ~count ~src ~at ~duration =
    List.init count (fun i ->
        Netsim.Flow.make ~id:(base + i) ~src ~prefix ~demand:rate
          ~start_time:at ~duration ())
    |> List.iter (Sim.add_flow sim)
  in
  add_flows ~base:0 ~count:24 ~src:demo.a ~at:0.5 ~duration:(until +. 1.5);
  add_flows ~base:100 ~count:20 ~src:demo.b ~at:1. ~duration:(until +. 1.);
  (* A negligible probe flow outlives everything: its utilization cannot
     disturb calm detection, but it must stay routable to the very end. *)
  let probe_id = 999 in
  Netsim.Flow.make ~id:probe_id ~src:demo.a ~prefix ~demand:1. ~start_time:0.
    ~duration:(until +. quiet +. 10.) ()
  |> Sim.add_flow sim;
  let plan =
    Faults.random_plan ~faults ~allow_controller_death ~seed ~until g
  in
  Faults.inject sim plan
    ~on_controller_crash:(fun _ -> Fibbing.Controller.crash controller)
    ~on_controller_restart:(fun sim ->
      Fibbing.Controller.restart controller ~time:(Sim.time sim));
  Sim.run_until sim until;
  let unroutable_at_until = Sim.unroutable_flows sim in
  (* Quiescence: the heavy flows end, calm sets in, a live controller
     withdraws its lies, a dead one lets them age out. *)
  Sim.run_until sim (until +. quiet);
  let unroutable_at_end = Sim.unroutable_flows sim in
  let edges_restored =
    List.sort compare (Graph.edges g) = List.sort compare (Graph.edges pristine)
  in
  let fakes_left = Igp.Lsdb.fake_count (Igp.Network.lsdb net) in
  (* Ground truth: a from-scratch, never-faulted network over the same
     topology must agree with every surviving FIB. *)
  let reference = Igp.Network.create ?domains (Graph.copy pristine) in
  Igp.Network.announce_prefix reference prefix ~origin:demo.c ~cost:0;
  let fibs_match =
    List.for_all
      (fun router ->
        match
          ( Igp.Network.fib net ~router prefix,
            Igp.Network.fib reference ~router prefix )
        with
        | None, None -> true
        | Some a, Some b -> Igp.Fib.equal_forwarding a b
        | Some _, None | None, Some _ -> false)
      (Igp.Network.routers net)
  in
  {
    seed;
    plan;
    edges_restored;
    fakes_left;
    fibs_match;
    unroutable_at_until;
    unroutable_at_end;
    controller_alive = Fibbing.Controller.alive controller;
    reactions = List.length (Fibbing.Controller.actions controller);
    violations =
      (match wd with Some wd -> Netsim.Watchdog.violations wd | None -> []);
    quarantines =
      (match wd with Some wd -> Netsim.Watchdog.quarantine_count wd | None -> 0);
    watchdog_stats = Option.map Netsim.Watchdog.stats wd;
  }

(* One scenario per domain. Each run is wrapped in [Obs.capture], so its
   sequence numbers restart at 0 and its events stay in domain-private
   buffers: the timeline of run k is byte-identical whether the sweep
   executes on 1 domain or 8, in whatever interleaving. The inner
   networks are built with [~domains:1] — the parallelism budget is
   spent across scenarios, not nested inside each SPF batch. *)
let sweep ?pool ?faults ?allow_controller_death ?watchdog ~seeds ~until () =
  let pool = match pool with Some p -> p | None -> Kit.Pool.create () in
  let seeds = Array.of_list seeds in
  Kit.Pool.map pool ~n:(Array.length seeds) (fun i ->
      let v, cap =
        Obs.capture (fun () ->
            run ~domains:1 ?faults ?allow_controller_death ?watchdog
              ~seed:seeds.(i) ~until ())
      in
      let timeline =
        if Obs.enabled () then Some (Obs.capture_json cap) else None
      in
      (v, timeline))
  |> Array.to_list

let pp fmt v =
  let demo = Netgraph.Topologies.demo () in
  Format.fprintf fmt
    "@[<v>chaos seed %d: %s@,\
     schedule:@,%s@,\
     edges restored: %b@,\
     fakes left: %d@,\
     fibs match fault-free reference: %b@,\
     unroutable at until: %d, at end: %d@,\
     controller alive: %b, actions logged: %d@,\
     watchdog: %s@]"
    v.seed
    (if ok v then "OK" else "FAILED")
    (Faults.to_string demo.graph v.plan)
    v.edges_restored v.fakes_left v.fibs_match
    (List.length v.unroutable_at_until)
    (List.length v.unroutable_at_end)
    v.controller_alive v.reactions
    (match v.watchdog_stats with
    | None -> "off"
    | Some s ->
      Printf.sprintf
        "%d violations, %d quarantines (%d steps, %d sweeps, %d skipped)"
        (List.length v.violations)
        v.quarantines s.steps_checked s.safety_sweeps s.safety_skipped)
