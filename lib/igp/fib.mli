(** Per-router, per-prefix forwarding entries as installed after SPF.

    An entry's [multiplicity] is the number of equal-cost routes resolving
    to that next hop: real ECMP paths contribute at most 1 per next hop
    (routers deduplicate identical next hops computed from the real
    topology), while every fake route contributes 1 even when several
    resolve to the same physical next hop — this is how Fibbing encodes
    uneven ratios on stock ECMP hardware. *)

type entry = {
  next_hop : Netgraph.Graph.node;
  multiplicity : int;
  via_fakes : string list;
      (** Identifiers of the fake LSAs contributing to this entry; [[]]
          for purely real entries. *)
}

type t = {
  router : Netgraph.Graph.node;
  prefix : Lsa.prefix;
  distance : int;  (** SPF cost from the router to the prefix. *)
  local : bool;  (** The router itself announces the prefix. *)
  entries : entry list;  (** Sorted by next hop. *)
}

val make :
  router:Netgraph.Graph.node ->
  prefix:Lsa.prefix ->
  distance:int ->
  local:bool ->
  entry list ->
  t
(** Checked constructor: raises [Invalid_argument] unless every entry
    has multiplicity >= 1 and entries are strictly sorted by next hop
    (canonical form). Zero- or negative-multiplicity entries used to be
    accepted silently and skewed {!fractions}/{!total_multiplicity}. *)

val invariant : t -> (unit, string) result
(** The {!make} check, as a result — asserted by the watchdog's safety
    pass on live FIBs. *)

val next_hops : t -> Netgraph.Graph.node list
(** Distinct next hops, ascending. *)

val weights : t -> (Netgraph.Graph.node * int) list
(** Next hop with aggregated multiplicity, in canonical form: ascending
    by next hop, duplicate next-hop entries merged. *)

val total_multiplicity : t -> int

val fractions : t -> (Netgraph.Graph.node * float) list
(** Traffic fraction sent to each next hop under per-flow ECMP hashing
    (multiplicity / total). Empty when [local] or no entries. *)

val uses_fake : t -> bool

val equal_forwarding : t -> t -> bool
(** Same next hops with the same aggregated multiplicities (ignores which
    fakes produced them). Compares canonical {!weights}, so entry order
    and duplicate next-hop splits do not matter. *)

val same_behavior : t -> t -> bool
(** Forwarding-behavior equality used as the trie aggregation relation:
    both local, or both non-local with {!equal_forwarding}. Ignores
    [router], [prefix] and [distance] — two routes with the same
    behavior may be collapsed into one aggregated entry. *)

val pp : names:(Netgraph.Graph.node -> string) -> Format.formatter -> t -> unit
