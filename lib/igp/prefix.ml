(* A prefix is one immediate int: the 32-bit network address shifted
   left 6, or-ed with the mask length (0..32). The packing keeps the
   value unboxed, gives canonical structural equality (there is exactly
   one representation per prefix, since [make] rejects set host bits)
   and lets Hashtbl's polymorphic hash treat prefixes as plain ints. *)

type t = int

let mask32 = 0xFFFFFFFF

let net_mask len = if len = 0 then 0 else mask32 lxor (mask32 lsr len)

let make ~addr ~len =
  if len < 0 || len > 32 then
    invalid_arg (Printf.sprintf "Prefix.make: mask length %d not in 0..32" len);
  if addr land lnot mask32 <> 0 then
    invalid_arg (Printf.sprintf "Prefix.make: address %#x exceeds 32 bits" addr);
  if addr land lnot (net_mask len) <> 0 then
    invalid_arg
      (Printf.sprintf "Prefix.make: host bits set below /%d in %#x" len addr);
  (addr lsl 6) lor len

let addr t = t lsr 6

let len t = t land 0x3F

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) =
  let c = Int.compare (addr a) (addr b) in
  if c <> 0 then c else Int.compare (len a) (len b)

let hash (t : t) = Hashtbl.hash t

let default_route = make ~addr:0 ~len:0

let is_host t = len t = 32

let bit_of_addr a i = (a lsr (31 - i)) land 1

let bit t i =
  if i < 0 || i > 31 then invalid_arg "Prefix.bit: index not in 0..31";
  bit_of_addr (addr t) i

let contains p q =
  len p <= len q && (addr p) land net_mask (len p) = (addr q) land net_mask (len p)

let contains_addr p a = a land net_mask (len p) = addr p

let first_addr t = addr t

let last_addr t = addr t lor (mask32 lsr len t land mask32)

let subnet t ~bit =
  if is_host t then invalid_arg "Prefix.subnet: /32 has no subnets";
  if bit <> 0 && bit <> 1 then invalid_arg "Prefix.subnet: bit must be 0 or 1";
  let l = len t in
  make ~addr:(addr t lor (bit lsl (31 - l))) ~len:(l + 1)

(* ---- Named prefixes --------------------------------------------------
   The seed topologies announce prefixes by name ("blue", "cdn", "p07").
   Each name maps deterministically to a synthetic host route inside the
   reserved class-E block 240.0.0.0/4 — FNV-1a over the name picks the
   low 28 bits, linear probing resolves the (astronomically unlikely)
   collisions. The registry is global and mutex-guarded: named prefixes
   must resolve identically across domains, runs and wire round-trips,
   or timelines stop being byte-identical. *)

let registry_lock = Mutex.create ()

let name_of_packed : (int, string) Hashtbl.t = Hashtbl.create 64

let packed_of_name : (string, int) Hashtbl.t = Hashtbl.create 64

let fnv1a_32 s =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land mask32)
    s;
  !h

let named name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt packed_of_name name with
      | Some p -> p
      | None ->
        let rec probe a =
          let candidate = make ~addr:(0xF0000000 lor (a land 0x0FFFFFFF)) ~len:32 in
          match Hashtbl.find_opt name_of_packed candidate with
          | None ->
            Hashtbl.replace name_of_packed candidate name;
            Hashtbl.replace packed_of_name name candidate;
            candidate
          | Some other when String.equal other name -> candidate
          | Some _ -> probe (a + 1)
        in
        probe (fnv1a_32 name))

let is_name s =
  String.length s > 0
  && String.length s <= 255
  && (match s.[0] with 'A' .. 'Z' | 'a' .. 'z' | '_' -> true | _ -> false)
  &&
  let ok = ref true in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '-' -> ()
      | _ -> ok := false)
    s;
  !ok

(* ---- Parsing --------------------------------------------------------- *)

let parse_octet s ~pos ~stop =
  (* [pos..stop) must be 1-3 digits, value 0..255, no leading-zero octets
     longer than one digit (rejects "010.0.0.0" as ambiguous). *)
  let n = stop - pos in
  if n = 0 then Error "empty octet"
  else if n > 3 then Error (Printf.sprintf "octet %S too long" (String.sub s pos n))
  else begin
    let v = ref 0 and ok = ref true in
    for i = pos to stop - 1 do
      match s.[i] with
      | '0' .. '9' as c -> v := (!v * 10) + (Char.code c - Char.code '0')
      | _ -> ok := false
    done;
    if not !ok then
      Error (Printf.sprintf "octet %S is not a number" (String.sub s pos n))
    else if n > 1 && s.[pos] = '0' then
      Error (Printf.sprintf "octet %S has a leading zero" (String.sub s pos n))
    else if !v > 255 then
      Error (Printf.sprintf "octet %S out of range 0..255" (String.sub s pos n))
    else Ok !v
  end

let parse_dotted_quad s ~stop =
  (* Parses "A.B.C.D" in s.[0..stop). *)
  let rec split pos dots acc =
    if dots = 3 then
      match parse_octet s ~pos ~stop with
      | Error e -> Error e
      | Ok v -> Ok ((acc lsl 8) lor v)
    else
      match String.index_from_opt s pos '.' with
      | None -> Error "expected four dot-separated octets"
      | Some dot when dot >= stop -> Error "expected four dot-separated octets"
      | Some dot -> (
        match parse_octet s ~pos ~stop:dot with
        | Error e -> Error e
        | Ok v -> split (dot + 1) (dots + 1) ((acc lsl 8) lor v))
  in
  split 0 0 0

let parse_len s ~pos =
  let stop = String.length s in
  let n = stop - pos in
  if n = 0 then Error "empty mask length after '/'"
  else if n > 2 then
    Error (Printf.sprintf "mask length %S out of range 0..32" (String.sub s pos n))
  else begin
    let v = ref 0 and ok = ref true in
    for i = pos to stop - 1 do
      match s.[i] with
      | '0' .. '9' as c -> v := (!v * 10) + (Char.code c - Char.code '0')
      | _ -> ok := false
    done;
    if not !ok then
      Error (Printf.sprintf "mask length %S is not a number" (String.sub s pos n))
    else if !v > 32 then
      Error (Printf.sprintf "mask length %S out of range 0..32" (String.sub s pos n))
    else Ok !v
  end

let of_string s =
  let fail reason = Error (Printf.sprintf "bad prefix %S: %s" s reason) in
  if String.length s = 0 then fail "empty"
  else if is_name s then Ok (named s)
  else if not (String.contains s '.') then
    fail "not a CIDR prefix or a name ([A-Za-z_][A-Za-z0-9_-]*)"
  else
    let addr_stop, plen =
      match String.index_opt s '/' with
      | None -> (String.length s, Ok 32)
      | Some slash -> (slash, parse_len s ~pos:(slash + 1))
    in
    match plen with
    | Error e -> fail e
    | Ok l -> (
      match parse_dotted_quad s ~stop:addr_stop with
      | Error e -> fail e
      | Ok a ->
        if a land lnot (net_mask l) <> 0 then
          fail (Printf.sprintf "host bits set below /%d" l)
        else Ok (make ~addr:a ~len:l))

let of_string_exn s =
  match of_string s with Ok t -> t | Error e -> invalid_arg e

let v = of_string_exn

let to_string t =
  match Mutex.protect registry_lock (fun () -> Hashtbl.find_opt name_of_packed t)
  with
  | Some name -> name
  | None ->
    let a = addr t in
    let quad =
      Printf.sprintf "%d.%d.%d.%d" (a lsr 24) ((a lsr 16) land 0xFF)
        ((a lsr 8) land 0xFF) (a land 0xFF)
    in
    if is_host t then quad else Printf.sprintf "%s/%d" quad (len t)

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* ---- Synthetic table generator --------------------------------------
   Production FIB dumps are heavy-tailed: a few popular aggregates own
   most of the more-specifics. We model that with a Zipf choice over
   existing prefixes — each new entry either opens a fresh short root
   (/8../24) or subdivides a Zipf-rank-picked existing prefix by 1..8
   extra mask bits. Dedup keeps exactly [n] distinct prefixes. *)

let synthesize rng ~n =
  if n < 0 then invalid_arg "Prefix.synthesize: n < 0";
  let seen = Hashtbl.create (2 * n) in
  let parents = ref [||] in
  let count = ref 0 in
  let add p =
    if Hashtbl.mem seen p then false
    else begin
      Hashtbl.replace seen p ();
      if !count = Array.length !parents then begin
        let grown = Array.make (max 16 (2 * !count)) p in
        Array.blit !parents 0 grown 0 !count;
        parents := grown
      end;
      !parents.(!count) <- p;
      incr count;
      true
    end
  in
  let fresh_root () =
    let l = 8 + Kit.Prng.int rng 17 (* /8../24 *) in
    let top = Kit.Prng.int rng 0xE0 (* stay below 224.0.0.0 *) in
    let rest = Int64.to_int (Kit.Prng.bits64 rng) land 0xFFFFFF in
    make ~addr:((top lsl 24) lor rest land net_mask l) ~len:l
  in
  (* Zipf rank over current parents: rank ~ floor(k / u) biases hard
     toward early (popular) prefixes without a harmonic table. *)
  let zipf_pick () =
    let k = !count in
    let u = Kit.Prng.float rng 1.0 in
    let rank = int_of_float (float_of_int k *. (u ** 2.5)) in
    !parents.(min rank (k - 1))
  in
  let child_of p =
    let l = len p in
    if l >= 32 then None
    else begin
      let extra = 1 + Kit.Prng.int rng (min 8 (32 - l)) in
      let l' = l + extra in
      let low = Kit.Prng.bits64 rng |> Int64.to_int in
      let a = addr p lor (low land net_mask l' land lnot (net_mask l) land mask32) in
      Some (make ~addr:(a land net_mask l') ~len:l')
    end
  in
  let rec fill attempts =
    if !count >= n || attempts > 64 * (n + 1) then ()
    else begin
      let placed =
        if !count = 0 || Kit.Prng.float rng 1.0 < 0.15 then add (fresh_root ())
        else
          match child_of (zipf_pick ()) with
          | None -> add (fresh_root ())
          | Some c -> add c
      in
      ignore placed;
      fill (attempts + 1)
    end
  in
  fill 0;
  (* Top up with fresh roots if the nested walk saturated early. *)
  let rec top_up attempts =
    if !count >= n || attempts > 64 * (n + 1) then ()
    else begin
      ignore (add (fresh_root ()));
      top_up (attempts + 1)
    end
  in
  top_up 0;
  List.init !count (fun i -> !parents.(i))
