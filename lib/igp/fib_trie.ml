(* Path-compressed binary trie keyed by (address, mask length), with
   the FAQS-style installed flag maintained incrementally.

   Invariants:
   - a child's (naddr, nlen) is a strict refinement of its parent's;
   - a node with [route = None] and [nlen > 0] has both children (pure
     branch points are only created at divergences and collapsed when
     they lose a child);
   - [installed] is true iff [route = Some v] and [v] differs (under
     [eq]) from the effective value inherited from the nearest
     route-bearing ancestor (no ancestor => always installed). *)

type 'a node = {
  naddr : int;
  nlen : int;
  mutable route : 'a option;
  mutable inst : bool;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = {
  eq : 'a -> 'a -> bool;
  mutable root : 'a node option;
  mutable routes : int;
  mutable installed : int;
  mutable nodes : int;
  mutable visited : int;
}

let create ~eq = { eq; root = None; routes = 0; installed = 0; nodes = 0; visited = 0 }

let mask32 = 0xFFFFFFFF

let net_mask len = if len = 0 then 0 else mask32 lxor (mask32 lsr len)

let addr_bit a i = (a lsr (31 - i)) land 1

let bit_length x =
  let rec go n x = if x = 0 then n else go (n + 1) (x lsr 1) in
  go 0 x

(* Length of the common prefix of two (addr, len) pairs, capped at the
   shorter mask. *)
let common_bits a1 l1 a2 l2 =
  let m = min l1 l2 in
  if m = 0 then 0
  else
    let x = (a1 lxor a2) lsr (32 - m) in
    m - bit_length x

let eq_opt eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> eq x y
  | _ -> false

let prefix_of n = Prefix.make ~addr:n.naddr ~len:n.nlen

let set_installed t n inst =
  if inst <> n.inst then begin
    n.inst <- inst;
    t.installed <- t.installed + (if inst then 1 else -1)
  end

(* Re-derive installed flags for the direct route children of a node
   whose effective value became [inherited]. Stops at the first route
   on every path: values below it inherit from it, not from us. *)
let rec refresh t node inherited =
  match node with
  | None -> ()
  | Some n -> (
    t.visited <- t.visited + 1;
    match n.route with
    | Some r -> set_installed t n (not (eq_opt t.eq (Some r) inherited))
    | None ->
      refresh t n.zero inherited;
      refresh t n.one inherited)

let new_leaf t ~naddr ~nlen route inherited =
  t.nodes <- t.nodes + 1;
  t.routes <- t.routes + 1;
  let inst = not (eq_opt t.eq (Some route) inherited) in
  if inst then t.installed <- t.installed + 1;
  { naddr; nlen; route = Some route; inst; zero = None; one = None }

let rec insert t node inherited pa pl v =
  match node with
  | None -> Some (new_leaf t ~naddr:pa ~nlen:pl v inherited)
  | Some n ->
    t.visited <- t.visited + 1;
    let cb = common_bits n.naddr n.nlen pa pl in
    if cb = n.nlen && cb = pl then begin
      (* Exact node. *)
      (match n.route with
      | Some old ->
        n.route <- Some v;
        set_installed t n (not (eq_opt t.eq (Some v) inherited));
        (* The effective value below n changed old -> v; children's
           flags compare against it. Equal values: nothing to do. *)
        if not (t.eq old v) then begin
          refresh t n.zero (Some v);
          refresh t n.one (Some v)
        end
      | None ->
        t.routes <- t.routes + 1;
        n.route <- Some v;
        set_installed t n (not (eq_opt t.eq (Some v) inherited));
        if not (eq_opt t.eq inherited (Some v)) then begin
          refresh t n.zero (Some v);
          refresh t n.one (Some v)
        end);
      node
    end
    else if cb = n.nlen then begin
      (* p refines n: descend. *)
      let inherited' =
        match n.route with Some r -> Some r | None -> inherited
      in
      if addr_bit pa n.nlen = 0 then
        n.zero <- insert t n.zero inherited' pa pl v
      else n.one <- insert t n.one inherited' pa pl v;
      node
    end
    else if cb = pl then begin
      (* p is a proper ancestor of n: splice a new node above. *)
      let parent = new_leaf t ~naddr:pa ~nlen:pl v inherited in
      if addr_bit n.naddr pl = 0 then parent.zero <- Some n
      else parent.one <- Some n;
      if not (eq_opt t.eq inherited (Some v)) then refresh t (Some n) (Some v);
      Some parent
    end
    else begin
      (* Divergence below both masks: routeless branch point at cb. *)
      t.nodes <- t.nodes + 1;
      let branch =
        {
          naddr = pa land net_mask cb;
          nlen = cb;
          route = None;
          inst = false;
          zero = None;
          one = None;
        }
      in
      let leaf = Some (new_leaf t ~naddr:pa ~nlen:pl v inherited) in
      if addr_bit n.naddr cb = 0 then begin
        branch.zero <- Some n;
        branch.one <- leaf
      end
      else begin
        branch.one <- Some n;
        branch.zero <- leaf
      end;
      Some branch
    end

let update t p v =
  t.root <- insert t t.root None (Prefix.addr p) (Prefix.len p) v

(* Drop a node that no longer carries a route if it has fewer than two
   children: empty nodes vanish, single-child nodes splice the child
   up (restoring path compression). *)
let collapse t n =
  match (n.route, n.zero, n.one) with
  | Some _, _, _ -> Some n
  | None, None, None ->
    t.nodes <- t.nodes - 1;
    None
  | None, Some c, None | None, None, Some c ->
    t.nodes <- t.nodes - 1;
    Some c
  | None, Some _, Some _ -> Some n

let rec delete t node inherited pa pl =
  match node with
  | None -> None
  | Some n ->
    t.visited <- t.visited + 1;
    let cb = common_bits n.naddr n.nlen pa pl in
    if cb < n.nlen then node (* diverges: prefix absent *)
    else if n.nlen = pl then (
      match n.route with
      | None -> node
      | Some r ->
        t.routes <- t.routes - 1;
        if n.inst then t.installed <- t.installed - 1;
        n.route <- None;
        n.inst <- false;
        (* Descendants now inherit [inherited] instead of r. *)
        if not (eq_opt t.eq (Some r) inherited) then begin
          refresh t n.zero inherited;
          refresh t n.one inherited
        end;
        collapse t n)
    else begin
      let inherited' =
        match n.route with Some r -> Some r | None -> inherited
      in
      if addr_bit pa n.nlen = 0 then
        n.zero <- delete t n.zero inherited' pa pl
      else n.one <- delete t n.one inherited' pa pl;
      collapse t n
    end

let remove t p = t.root <- delete t t.root None (Prefix.addr p) (Prefix.len p)

let covers_addr n a = n.nlen = 0 || (a lxor n.naddr) lsr (32 - n.nlen) = 0

let lookup_gen t ~only_installed a =
  let best = ref None in
  let rec go node =
    match node with
    | None -> ()
    | Some n ->
      if covers_addr n a then begin
        (match n.route with
        | Some r when (not only_installed) || n.inst ->
          best := Some (prefix_of n, r)
        | _ -> ());
        if n.nlen < 32 then
          go (if addr_bit a n.nlen = 0 then n.zero else n.one)
      end
  in
  go t.root;
  !best

let lookup t a = lookup_gen t ~only_installed:false a

let lookup_aggregated t a = lookup_gen t ~only_installed:true a

let lookup_within t p =
  let pa = Prefix.addr p and pl = Prefix.len p in
  let best = ref None in
  let rec go node =
    match node with
    | None -> ()
    | Some n ->
      if n.nlen <= pl && covers_addr n pa then begin
        (match n.route with
        | Some r -> best := Some (prefix_of n, r)
        | None -> ());
        if n.nlen < pl then
          go (if addr_bit pa n.nlen = 0 then n.zero else n.one)
      end
  in
  go t.root;
  !best

let find t p =
  match lookup_within t p with
  | Some (q, r) when Prefix.equal q p -> Some r
  | _ -> None

let fold f t acc =
  let rec go node acc =
    match node with
    | None -> acc
    | Some n ->
      let acc =
        match n.route with Some r -> f (prefix_of n) r acc | None -> acc
      in
      go n.one (go n.zero acc)
  in
  go t.root acc

let iter f t = fold (fun p r () -> f p r) t ()

let iter_installed f t =
  let rec go node =
    match node with
    | None -> ()
    | Some n ->
      (match n.route with Some r when n.inst -> f (prefix_of n) r | _ -> ());
      go n.zero;
      go n.one
  in
  go t.root

let routes t = t.routes

let installed t = t.installed

let node_count t = t.nodes

let visited t = t.visited

type stats = {
  routes : int;
  installed : int;
  nodes : int;
  ratio : float;
  approx_bytes : int;
}

let stats (t : _ t) =
  let word = 8 in
  (* Per node: record header + 6 fields; each live child link and each
     route is a 2-word [Some] cell. Route payloads excluded. *)
  let links = if t.nodes = 0 then 0 else t.nodes - 1 in
  {
    routes = t.routes;
    installed = t.installed;
    nodes = t.nodes;
    ratio =
      (if t.installed = 0 then 1.0
       else float_of_int t.routes /. float_of_int t.installed);
    approx_bytes = word * ((t.nodes * 7) + (links * 2) + (t.routes * 2));
  }
