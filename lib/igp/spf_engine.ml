module Graph = Netgraph.Graph
module Dijkstra = Netgraph.Dijkstra

(* Telemetry (no-ops while Obs is disabled; only touched from the
   coordinating domain — workers report through the [spf_runs] atomic). *)
let m_spf_runs = Obs.Metrics.counter "spf.runs"
let m_syncs = Obs.Metrics.counter "spf.syncs"
let m_full_invalidations = Obs.Metrics.counter "spf.full_invalidations"
let m_routers_dirtied = Obs.Metrics.counter "spf.routers_dirtied"
let m_routers_kept = Obs.Metrics.counter "spf.routers_kept"
let m_recompute_ms = Obs.Metrics.histogram "spf.recompute_ms"
let m_alloc_words = Obs.Metrics.counter "spf.alloc_words"
let g_dirty = Obs.Metrics.gauge "spf.dirty_routers"

type stats = {
  spf_runs : int;
  syncs : int;
  full_invalidations : int;
  routers_dirtied : int;
  routers_kept : int;
}

(* One dirty-log event: the set of routers whose cached tables a sync
   (or an explicit invalidation) dropped. [Full_dirt] means "assume
   everything" — the entries array was rebuilt, so even router identity
   is suspect. *)
type dirt = Full_dirt | Routers_dirt of Graph.node list

type t = {
  lsdb : Lsdb.t;
  pool : Kit.Pool.t;
  mutable entries : (Lsa.prefix, Fib.t) Hashtbl.t option array;
      (* Slot [r] holds router [r]'s full per-prefix FIB table, valid at
         version [synced]; [None] marks a dirty router. *)
  mutable tries : Fib.t Fib_trie.t option array;
      (* Lazily materialized aggregated FIB trie per router, aggregation
         equality = [Fib.same_behavior]. Built on the first [lpm] call
         for a router and from then on patched incrementally whenever
         the router's flat table is refilled — never rebuilt. Routers
         that are never LPM-queried pay nothing. *)
  mutable synced : int;
  spf_runs : int Atomic.t; (* bumped from worker domains *)
  mutable syncs : int;
  mutable full_invalidations : int;
  mutable routers_dirtied : int;
  mutable routers_kept : int;
  (* Bounded log of invalidation events for [dirtied_since]: newest
     first, generations are consecutive. *)
  mutable dirty_gen : int;
  mutable dirty_log : (int * dirt) list;
}

let create ?pool lsdb =
  let pool = match pool with Some p -> p | None -> Kit.Pool.create () in
  let n = Graph.node_count (Lsdb.base_graph lsdb) in
  {
    lsdb;
    pool;
    entries = Array.make n None;
    tries = Array.make n None;
    synced = Lsdb.version lsdb;
    spf_runs = Atomic.make 0;
    syncs = 0;
    full_invalidations = 0;
    routers_dirtied = 0;
    routers_kept = 0;
    dirty_gen = 0;
    dirty_log = [];
  }

(* Enough depth that a simulation step's worth of churn never overflows;
   a cursor older than the tail reports [None] (full fallback). *)
let dirty_log_limit = 64

let record_dirt t dirt =
  t.dirty_gen <- t.dirty_gen + 1;
  let log = (t.dirty_gen, dirt) :: t.dirty_log in
  t.dirty_log <-
    (if List.length log > dirty_log_limit then
       List.filteri (fun i _ -> i < dirty_log_limit) log
     else log)

let pool t = t.pool

let stats t =
  {
    spf_runs = Atomic.get t.spf_runs;
    syncs = t.syncs;
    full_invalidations = t.full_invalidations;
    routers_dirtied = t.routers_dirtied;
    routers_kept = t.routers_kept;
  }

(* One Dijkstra for router [r], shared by every prefix. *)
let compute_router t view r =
  Atomic.incr t.spf_runs;
  let fib_list = Spf.compute view ~router:r in
  let tbl = Hashtbl.create (max 8 (2 * List.length fib_list)) in
  List.iter (fun (f : Fib.t) -> Hashtbl.replace tbl f.prefix f) fib_list;
  tbl

(* FAQS-style incremental maintenance: diff the router's fresh flat
   table against the trie and touch only the differing prefixes. The
   trie re-aggregates bottom-up from each changed node; identical routes
   (the common case after a localized delta) cost one [find]. *)
let patch_trie trie tbl =
  let stale =
    Fib_trie.fold
      (fun p _ acc -> if Hashtbl.mem tbl p then acc else p :: acc)
      trie []
  in
  List.iter (Fib_trie.remove trie) stale;
  Hashtbl.iter
    (fun p (fib : Fib.t) ->
      match Fib_trie.find trie p with
      | Some old when old = fib -> ()
      | Some _ | None -> Fib_trie.update trie p fib)
    tbl

(* Every flat-table refill flows through here so a materialized trie
   never goes stale. Parallel callers write disjoint router slots, so
   per-slot trie mutation stays single-writer. *)
let install_table t r tbl =
  t.entries.(r) <- Some tbl;
  match t.tries.(r) with
  | None -> ()
  | Some trie -> patch_trie trie tbl

let drop_all t =
  Array.fill t.entries 0 (Array.length t.entries) None;
  t.full_invalidations <- t.full_invalidations + 1;
  Obs.Metrics.incr m_full_invalidations

let invalidate_all t =
  drop_all t;
  record_dirt t Full_dirt;
  t.synced <- Lsdb.version t.lsdb

(* Cached view distance from [r] to [prefix]'s sink: FIB distances have
   the announcer +1 offset removed, so add it back; no FIB entry means
   the prefix was unreachable (infinite distance). *)
let cached_view_distance tbl prefix =
  match Hashtbl.find_opt tbl prefix with
  | Some (fib : Fib.t) -> Some (fib.distance + 1)
  | None -> None

(* Fake install/retract at attachment [a] with sink cost [c]: router [r]'s
   routes for that prefix can change only if the candidate path through
   the fake competes with r's cached distance, i.e.
   d(r, a) + c <= cached_view_distance(r, prefix). Equality matters:
   retracting an equal-cost fake changes the ECMP set, and an install at
   equal cost widens it. [d(r, a)] comes from one reverse-graph Dijkstra
   rooted at the attachment — fake stubs are never transit nodes, so
   real-node distances in the view equal base-graph distances, and a
   fake-only batch leaves the base graph untouched.

   Deltas are applied in log order: a router whose true distance is
   changed by delta i is dirtied by delta i's own test (retraction
   affects r only when the candidate equals the distance — caught by
   [<=]), so every router still holding its table when delta j > i is
   examined has a cached distance that is still its true distance. That
   makes the sequential test sound for arbitrary install/retract
   interleavings, including supersessions (logged as retract + install). *)
let apply_fake_delta t rev_graph rev_results ~attachment ~view_cost ~prefix =
  let rev =
    match Hashtbl.find_opt rev_results attachment with
    | Some r -> r
    | None ->
      let r = Dijkstra.run rev_graph ~source:attachment in
      Hashtbl.add rev_results attachment r;
      r
  in
  Array.iteri
    (fun r entry ->
      match entry with
      | None -> ()
      | Some tbl -> (
        match Dijkstra.distance rev r with
        | None -> () (* attachment unreachable: the fake can't matter *)
        | Some d_ra ->
          let dirty =
            match cached_view_distance tbl prefix with
            | None -> true (* was unreachable; an install could route it *)
            | Some cached -> d_ra + view_cost <= cached
          in
          if dirty then t.entries.(r) <- None))
    t.entries

(* Weight change on directed edge (u, v), evaluated on the post-change
   graph: router [r] is affected iff the edge lies on one of its old or
   new shortest-path DAGs, which reduces to
   d_new(r, u) + min(w_old, w_new) <= d_new(r, v).
   Soundness: positive weights make shortest paths simple, so no
   shortest path to [u] traverses (u, v) and d(r, u) is the same before
   and after the change. Writing A for r's best u->v-avoiding distance
   to [v]: d_old(r, v) = min (A, d(r, u) + w_old) and
   d_new(r, v) = min (A, d(r, u) + w_new). If the edge was on an old DAG
   then d(r, u) + w_old <= A, hence d_new(r, v) >= min over both >=
   ... >= d(r, u) + min(w_old, w_new) is <= d_new(r, v) — the test
   fires; symmetrically if it is on a new DAG. Conversely if it was on
   neither, A < d(r, u) + min(w_old, w_new) and d_new(r, v) = A, so the
   test stays quiet — and then no shortest path of r (to any node: a
   shortest path through the edge would have a shortest prefix to [v]
   using it) changes, distances and DAGs included.

   Only single-delta batches use this rule: two weight changes evaluated
   against the final graph can mask each other, so mixed or multi-delta
   batches fall back to full invalidation. *)
let apply_weight_delta t ~u ~v ~old_weight ~new_weight =
  if old_weight <> new_weight then begin
    let rev = Graph.reverse (Lsdb.base_graph t.lsdb) in
    let from_u = Dijkstra.run rev ~source:u in
    let from_v = Dijkstra.run rev ~source:v in
    let bound = min old_weight new_weight in
    Array.iteri
      (fun r entry ->
        match entry with
        | None -> ()
        | Some _ -> (
          match Dijkstra.distance from_u r with
          | None -> () (* r can't reach u, so it can't use the edge *)
          | Some d_ru ->
            let dirty =
              match Dijkstra.distance from_v r with
              | None -> true
              | Some d_rv -> d_ru + bound <= d_rv
            in
            if dirty then t.entries.(r) <- None))
      t.entries
  end

let apply_deltas t deltas =
  let fake_only =
    List.for_all
      (function Lsdb.Fake_delta _ -> true | _ -> false)
      deltas
  in
  if fake_only then begin
    let rev_graph = Graph.reverse (Lsdb.base_graph t.lsdb) in
    let rev_results = Hashtbl.create 4 in
    List.iter
      (function
        | Lsdb.Fake_delta { attachment; view_cost; prefix } ->
          apply_fake_delta t rev_graph rev_results ~attachment ~view_cost
            ~prefix
        | Lsdb.Weight_delta _ | Lsdb.Generic_delta -> assert false)
      deltas
  end
  else
    match deltas with
    | [ Lsdb.Weight_delta { u; v; old_weight; new_weight } ] ->
      apply_weight_delta t ~u ~v ~old_weight ~new_weight
    | _ -> drop_all t

let sync t =
  let current = Lsdb.version t.lsdb in
  if current <> t.synced then begin
    t.syncs <- t.syncs + 1;
    Obs.Metrics.incr m_syncs;
    let n = Graph.node_count (Lsdb.base_graph t.lsdb) in
    if Array.length t.entries <> n then begin
      t.entries <- Array.make n None;
      t.tries <- Array.make n None;
      t.full_invalidations <- t.full_invalidations + 1;
      record_dirt t Full_dirt;
      Obs.Metrics.incr m_full_invalidations
    end
    else begin
      let valid a =
        Array.fold_left (fun k e -> if Option.is_some e then k + 1 else k) 0 a
      in
      let before = valid t.entries in
      if before > 0 then begin
        let was_valid = Array.map Option.is_some t.entries in
        (match Lsdb.deltas_since t.lsdb ~since:t.synced with
        | None -> drop_all t
        | Some deltas -> apply_deltas t deltas);
        let dirtied = ref [] in
        Array.iteri
          (fun r was ->
            if was && t.entries.(r) = None then dirtied := r :: !dirtied)
          was_valid;
        if !dirtied <> [] then record_dirt t (Routers_dirt !dirtied);
        let after = valid t.entries in
        t.routers_kept <- t.routers_kept + after;
        t.routers_dirtied <- t.routers_dirtied + (before - after);
        Obs.Metrics.add m_routers_kept after;
        Obs.Metrics.add m_routers_dirtied (before - after);
        if Obs.enabled () then begin
          Obs.Metrics.set g_dirty (float_of_int (n - after));
          Obs.Timeline.record ~source:"spf" ~kind:"sync"
            [ ("kept", Int after); ("dirtied", Int (before - after)) ]
        end
      end
    end;
    t.synced <- current
  end

let dirty_cursor t =
  sync t;
  t.dirty_gen

let dirtied_since t ~cursor =
  sync t;
  if cursor >= t.dirty_gen then Some []
  else begin
    let events = List.filter (fun (g, _) -> g > cursor) t.dirty_log in
    (* Generations are consecutive and the log is truncated from the
       tail, so a shortfall means the log no longer reaches the cursor. *)
    if List.length events <> t.dirty_gen - cursor then None
    else
      try
        Some
          (List.concat_map
             (function
               | _, Full_dirt -> raise Exit
               | _, Routers_dirt rs -> rs)
             events
          |> List.sort_uniq compare)
      with Exit -> None
  end

let check_router t router =
  if router < 0 || router >= Array.length t.entries then
    invalid_arg "Spf_engine: not a real router"

let table_for t router =
  match t.entries.(router) with
  | Some tbl -> tbl
  | None ->
    let fill () = compute_router t (Lsdb.view t.lsdb) router in
    let tbl =
      if Obs.enabled () then begin
        let t0 = Obs.Clock.now () in
        let tbl =
          Obs.Prof.with_span "spf.recompute" ~alloc_counter:m_alloc_words
            ~attrs:[ ("router", Int router); ("dirty", Int 1) ]
            fill
        in
        Obs.Metrics.observe m_recompute_ms ((Obs.Clock.now () -. t0) *. 1000.);
        tbl
      end
      else fill ()
    in
    Obs.Metrics.incr m_spf_runs;
    install_table t router tbl;
    tbl

let fib t ~router prefix =
  sync t;
  check_router t router;
  Hashtbl.find_opt (table_for t router) prefix

let distance t ~router prefix =
  Option.map (fun (f : Fib.t) -> f.distance) (fib t ~router prefix)

let compute_all t =
  sync t;
  let n = Array.length t.entries in
  let missing = ref [] in
  for r = n - 1 downto 0 do
    if t.entries.(r) = None then missing := r :: !missing
  done;
  match !missing with
  | [] -> ()
  | [ r ] -> ignore (table_for t r)
  | rs ->
    (* Materialize the view before fanning out: [Lsdb.view] mutates its
       cache and must not race. Workers then only read the view and
       write disjoint slots of [entries]. *)
    let view = Lsdb.view t.lsdb in
    let missing = Array.of_list rs in
    let work () =
      Kit.Pool.iter t.pool ~n:(Array.length missing) (fun i ->
          let r = missing.(i) in
          install_table t r (compute_router t view r))
    in
    Obs.Metrics.add m_spf_runs (Array.length missing);
    if Obs.enabled () then begin
      let t0 = Obs.Clock.now () in
      (* No pool-width attribute here: the timeline must be a pure
         function of the logical run, byte-identical at any width.
         (Prof attrs only appear under the separate prof switch, which
         the determinism-gated paths never enable.) *)
      Obs.Prof.with_span "spf.recompute" ~alloc_counter:m_alloc_words
        ~attrs:[ ("dirty", Int (Array.length missing)) ]
        work;
      Obs.Metrics.observe m_recompute_ms ((Obs.Clock.now () -. t0) *. 1000.)
    end
    else work ()

let trie_for t router =
  sync t;
  check_router t router;
  let tbl = table_for t router in
  match t.tries.(router) with
  | Some trie -> trie
  | None ->
    (* First materialization for this router: seed the trie from the
       current flat table. All later table refills patch it in place. *)
    let trie = Fib_trie.create ~eq:Fib.same_behavior in
    Hashtbl.iter (fun p fib -> Fib_trie.update trie p fib) tbl;
    t.tries.(router) <- Some trie;
    trie

let lpm t ~router addr = Fib_trie.lookup_aggregated (trie_for t router) addr

let aggregation t ~router = Fib_trie.stats (trie_for t router)

let prefix_table t prefix =
  compute_all t;
  Array.map
    (function
      | Some tbl -> Hashtbl.find_opt tbl prefix
      | None -> assert false (* compute_all filled every slot *))
    t.entries
