(** Control-plane cost model for LSA flooding.

    When an LSA is (re)originated, OSPF reliably floods it over every
    adjacency: each directed link carries the update once (plus an ack we
    do not count separately). The number of rounds until every router has
    the update equals the origin's eccentricity in hops. These are the
    quantities behind the paper's "very limited control-plane overhead"
    claim and the TOVH experiment. *)

type cost = {
  messages : int;  (** LSA copies transmitted (one per directed link). *)
  rounds : int;  (** Propagation depth from the origin (BFS hops). *)
}

type loss = {
  prng : Kit.Prng.t;  (** Drives drop and retry sampling; seeded. *)
  drop : float;  (** Per-transmission loss probability, in [\[0, 1)]. *)
  max_backoff : int;
      (** Cap on the retransmission backoff, in rounds. Attempt [k+1]
          is sent [min (2^k, max_backoff)] rounds after attempt [k]. *)
  max_retries : int;
      (** Attempt budget per adjacency; the last attempt always
          delivers (retransmit-until-acked, without unbounded tails). *)
}

val loss : ?drop:float -> ?max_backoff:int -> ?max_retries:int -> seed:int -> unit -> loss
(** Defaults: 10% drop, backoff capped at 8 rounds, 16 attempts.
    Deterministic per seed. *)

type jitter
(** LSA delay/reorder model: every per-adjacency delivery pays a random
    extra latency of 0..[max_delay] rounds (queueing, scheduling, a slow
    control plane). Because a router refloods the instant the first copy
    arrives, uneven per-edge delays make updates reach routers {e out of
    order} — the reordering chaos fault is emergent, not scripted. *)

val jitter : ?max_delay:int -> seed:int -> unit -> jitter
(** Default [max_delay] 4 rounds; must be >= 1. Deterministic per
    seed. *)

val flood :
  ?loss:loss -> ?jitter:jitter -> Netgraph.Graph.t ->
  origin:Netgraph.Graph.node -> cost
(** Cost of flooding one LSA originated at [origin] over the physical
    topology. Only links between routers reachable from the origin
    count.

    With [loss], each adjacency drops copies independently and senders
    retransmit with capped exponential backoff until acked: [messages]
    includes every retry, and [rounds] is the time until the last router
    is informed (a router refloods as soon as the first copy arrives, so
    the arrival times are the shortest-path closure of the per-edge retry
    latencies). [loss] with [drop = 0.] is exactly the lossless model.

    With [jitter], every delivery additionally pays a random extra
    latency, so [rounds] stretches and arrivals reorder; combined with
    [loss] the latencies add. *)

val zero : cost

val add : cost -> cost -> cost
(** Messages add; rounds take the maximum (floods proceed in parallel). *)
