(** Path-compressed binary trie over {!Prefix.t} with incremental
    FAQS-style aggregation.

    The trie stores one route value per prefix (the {e flat} table) and
    maintains, on every mutation, the {e aggregated} table as a flag on
    each route: a route is [installed] iff its value differs — under the
    aggregation equality the trie was created with — from the value of
    its nearest route-bearing ancestor. Looking up an address over
    installed routes only ({!lookup_aggregated}) is forwarding-
    equivalent to looking it up over all routes ({!lookup}): along the
    ancestor chain of any flat match, every skipped route is equal to
    the one above it, so the nearest installed ancestor carries the same
    value. Routes whose value differs from the ancestor act as
    aggregation barriers and stay installed.

    Updates are incremental in the FAQS sense: an insert, replace or
    delete walks one root-to-node path and then refreshes installed
    flags only for the {e direct} route children of the changed node
    (descending through routeless branch nodes), stopping early whenever
    the effective inherited value is unchanged. No mutation ever
    rebuilds the trie. The cumulative {!visited} counter exposes the
    number of nodes touched, so benches can assert update cost is
    independent of table size. *)

type 'a t

val create : eq:('a -> 'a -> bool) -> 'a t
(** [eq] is the aggregation equality: two route values that compare
    equal forward identically and may be merged. It must be an
    equivalence relation. *)

val update : 'a t -> Prefix.t -> 'a -> unit
(** Insert the route, or replace the existing value for that prefix. *)

val remove : 'a t -> Prefix.t -> unit
(** Delete the route if present; no-op otherwise. *)

val find : 'a t -> Prefix.t -> 'a option
(** Exact-match lookup. *)

val lookup : 'a t -> int -> (Prefix.t * 'a) option
(** Longest-prefix match of a 32-bit address over the flat table. *)

val lookup_aggregated : 'a t -> int -> (Prefix.t * 'a) option
(** Longest-prefix match over installed routes only. Forwarding-
    equivalent to {!lookup} (the returned prefix may be shorter). *)

val lookup_within : 'a t -> Prefix.t -> (Prefix.t * 'a) option
(** [lookup_within t p] is the longest route whose prefix covers all of
    [p] (equal-or-shorter ancestor) — the route governing a whole
    destination block, used to resolve flow prefixes against announced
    prefixes. *)

val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
(** All routes, ascending prefix order. *)

val iter_installed : (Prefix.t -> 'a -> unit) -> 'a t -> unit

val fold : (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc

val routes : 'a t -> int

val installed : 'a t -> int
(** Routes surviving aggregation; [installed t <= routes t]. *)

val node_count : 'a t -> int

val visited : 'a t -> int
(** Cumulative count of nodes touched by updates/removes since
    creation — deterministic work measure for the bench gate. *)

type stats = {
  routes : int;
  installed : int;
  nodes : int;
  ratio : float;  (** [routes /. installed]; 1.0 when empty. *)
  approx_bytes : int;
      (** Estimated heap footprint of the trie structure itself
          (nodes, links, option cells), excluding route payloads. *)
}

val stats : 'a t -> stats
