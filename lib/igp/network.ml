module Graph = Netgraph.Graph

type t = {
  graph : Graph.t;
  lsdb : Lsdb.t;
  engine : Spf_engine.t;
      (* Replaces the old per-(version, router, prefix) FIB cache, whose
         eviction reset the whole table — current entries included —
         past 4096 entries. The engine keeps one table per router and
         drops only tables invalidated by LSDB deltas. *)
  mutable control : Flooding.cost;
  mutable flooding_loss : Flooding.loss option;
      (* Chaos knob: when set, every accounted flood pays lossy
         retransmission costs. [None] (the default) is lossless. *)
  mutable flooding_jitter : Flooding.jitter option;
      (* Chaos knob: per-adjacency delivery jitter (LSA delay/reorder). *)
}

let create ?domains graph =
  let lsdb = Lsdb.create graph in
  let pool = Kit.Pool.create ?domains () in
  {
    graph;
    lsdb;
    engine = Spf_engine.create ~pool lsdb;
    control = Flooding.zero;
    flooding_loss = None;
    flooding_jitter = None;
  }

let clone t =
  let graph = Graph.copy t.graph in
  let lsdb = Lsdb.create graph in
  List.iter
    (fun (prefix, origin, cost) -> Lsdb.announce_prefix lsdb prefix ~origin ~cost)
    (Lsdb.prefixes t.lsdb);
  List.iter (fun fake -> Lsdb.install_fake lsdb fake) (Lsdb.fakes t.lsdb);
  let pool =
    Kit.Pool.create ~domains:(Kit.Pool.domain_count (Spf_engine.pool t.engine)) ()
  in
  {
    graph;
    lsdb;
    engine = Spf_engine.create ~pool lsdb;
    control = Flooding.zero;
    flooding_loss = None;
    flooding_jitter = None;
  }

let graph t = t.graph

let lsdb t = t.lsdb

let announce_prefix t prefix ~origin ~cost =
  Lsdb.announce_prefix t.lsdb prefix ~origin ~cost

let account t ~origin =
  t.control <-
    Flooding.add t.control
      (Flooding.flood ?loss:t.flooding_loss ?jitter:t.flooding_jitter t.graph
         ~origin)

let set_flooding_loss t loss = t.flooding_loss <- loss

let flooding_loss t = t.flooding_loss

let set_flooding_jitter t jitter = t.flooding_jitter <- jitter

let flooding_jitter t = t.flooding_jitter

let inject_fake t fake =
  Lsdb.install_fake t.lsdb fake;
  account t ~origin:fake.Lsa.attachment

let retract_fake t ~fake_id =
  let fake =
    List.find (fun (f : Lsa.fake) -> String.equal f.fake_id fake_id)
      (Lsdb.fakes t.lsdb)
  in
  Lsdb.retract_fake t.lsdb ~fake_id;
  account t ~origin:fake.Lsa.attachment

let inject_fake_wire t buf =
  match Codec.decode buf with
  | Error reason -> Error reason
  | Ok { lsa = Lsa.Fake fake; _ } ->
    (match inject_fake t fake with
    | () -> Ok ()
    | exception Invalid_argument reason -> Error reason)
  | Ok { lsa = Lsa.Router _ | Lsa.Prefix _; _ } ->
    Error "wire packet is not a fake LSA"

let router_lsa t ~origin =
  Lsa.Router { origin; links = Graph.succ t.graph origin }

let retract_all_fakes t =
  List.iter (fun (f : Lsa.fake) -> retract_fake t ~fake_id:f.fake_id)
    (Lsdb.fakes t.lsdb)

let fakes t = Lsdb.fakes t.lsdb

let fib t ~router prefix = Spf_engine.fib t.engine ~router prefix

let fib_table t prefix = Spf_engine.prefix_table t.engine prefix

let fibs t prefix =
  let table = fib_table t prefix in
  List.filter_map
    (fun router -> Option.map (fun f -> (router, f)) table.(router))
    (Graph.nodes t.graph)

let distance t ~router prefix = Spf_engine.distance t.engine ~router prefix

let next_hops t ~router prefix =
  match fib t ~router prefix with None -> [] | Some f -> Fib.next_hops f

let resolve t prefix = Lsdb.resolve t.lsdb prefix

let lpm t ~router addr = Spf_engine.lpm t.engine ~router addr

let warm t = Spf_engine.compute_all t.engine

let engine t = t.engine

let set_weight t u v ~weight =
  let old_weight = Graph.weight_exn t.graph u v in
  (* Drain pending deltas before the graph mutates, so each weight delta
     reaches the engine alone and is judged against the graph state it
     describes — that keeps the engine on its precise single-edge rule. *)
  Spf_engine.sync t.engine;
  Graph.set_weight t.graph u v ~weight;
  Lsdb.weight_changed t.lsdb u v ~old_weight ~new_weight:weight;
  account t ~origin:u

let control_cost t = t.control

let refresh_cost t ~period ~duration =
  if period <= 0. then invalid_arg "Network.refresh_cost: period";
  let cycles = int_of_float (duration /. period) in
  List.fold_left
    (fun acc (fake : Lsa.fake) ->
      let once = Flooding.flood t.graph ~origin:fake.attachment in
      Flooding.add acc
        { Flooding.messages = once.messages * cycles; rounds = once.rounds })
    Flooding.zero (Lsdb.fakes t.lsdb)

let reset_control_cost t = t.control <- Flooding.zero

let routers t = Graph.nodes t.graph
