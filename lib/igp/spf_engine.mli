(** Batched, incremental, parallel SPF/FIB engine.

    The engine keeps one full per-prefix FIB table per router — computed
    by a single Dijkstra over the LSDB view and shared by every prefix —
    instead of a per-(router, prefix) cache. Tables stay valid across
    LSDB version bumps whenever the logged deltas provably cannot change
    a router's shortest-path DAGs:

    - a fake install/retract at attachment [a] with sink cost [c] dirties
      router [r] only when [d(r, a) + c <= r]'s cached distance for the
      fake's prefix (one reverse Dijkstra per attachment answers all
      routers at once);
    - a single weight change on edge [(u, v)] dirties [r] only when
      [d(r, u) + min(w_old, w_new) <= d(r, v)] on the post-change graph
      (two reverse Dijkstras), which holds exactly when the edge lies on
      one of [r]'s old or new shortest-path DAGs;
    - anything else (announcements, link removals, several weight changes
      in one batch, log overflow) invalidates every table.

    Both rules are sound over-approximations: a kept table is bitwise
    what a from-scratch SPF would produce. Dirty routers are recomputed
    lazily on lookup, or in bulk by [compute_all], which fans the batch
    across a [Kit.Pool] of domains (per-source Dijkstra is embarrassingly
    parallel).

    The engine is not itself thread-safe: calls into one engine must come
    from a single domain (it parallelizes internally). *)

type t

type stats = {
  spf_runs : int;  (** Dijkstras run on the view (one per router refill). *)
  syncs : int;  (** Version bumps absorbed. *)
  full_invalidations : int;  (** Syncs that dropped every table. *)
  routers_dirtied : int;  (** Tables dropped across all syncs. *)
  routers_kept : int;  (** Tables preserved across all syncs. *)
}

val create : ?pool:Kit.Pool.t -> Lsdb.t -> t
(** A fresh engine has no cached tables. [pool] defaults to a pool sized
    by [Domain.recommended_domain_count]. *)

val pool : t -> Kit.Pool.t

val sync : t -> unit
(** Absorb any pending LSDB changes now, dirtying affected routers.
    Every lookup syncs implicitly; call this explicitly before mutating
    the base graph in place so pending deltas are evaluated against the
    graph they described. *)

val fib : t -> router:Netgraph.Graph.node -> Lsa.prefix -> Fib.t option
(** The router's FIB for one prefix; computes (and caches) the router's
    whole table on a miss. [None] if the prefix is unknown or
    unreachable. Raises [Invalid_argument] for non-real routers. *)

val distance : t -> router:Netgraph.Graph.node -> Lsa.prefix -> int option

val compute_all : t -> unit
(** Bring every router's table up to date, fanning dirty routers across
    the pool. *)

val lpm :
  t -> router:Netgraph.Graph.node -> int -> (Lsa.prefix * Fib.t) option
(** Longest-prefix match of a 32-bit destination address in the
    router's {e aggregated} FIB: the returned prefix is the aggregated
    entry that matched (possibly shorter than the flat best match), the
    FIB forwards identically to the flat table's. The router's trie is
    built on first use and thereafter maintained incrementally as SPF
    deltas refill the flat table. *)

val aggregation : t -> router:Netgraph.Graph.node -> Fib_trie.stats
(** Aggregation statistics of the router's trie (routes, installed
    aggregated entries, ratio, approximate memory). Forces the trie. *)

val prefix_table : t -> Lsa.prefix -> Fib.t option array
(** Per-router FIBs for one prefix, indexed by router id ([compute_all]
    is implied). The returned array is fresh; mutating it is harmless. *)

val invalidate_all : t -> unit
(** Drop every cached table (e.g. to measure cold-start cost). *)

val dirty_cursor : t -> int
(** Opaque position in the engine's invalidation log, taken after
    absorbing pending LSDB changes. Pass it to [dirtied_since] later to
    learn which routers' tables were dropped in between. *)

val dirtied_since : t -> cursor:int -> Netgraph.Graph.node list option
(** [dirtied_since t ~cursor] syncs, then returns the sorted union of
    routers whose cached tables were invalidated by any sync (or
    explicit invalidation) after [cursor] was taken; [None] when a full
    invalidation occurred or the bounded log no longer reaches back to
    the cursor (callers must then assume everything changed).

    Soundness for route caches: a consumer that derived state from [fib]
    lookups forced those routers' tables valid; any later change to what
    such a router answers goes through a [Some -> None] invalidation at
    some sync, and every such drop is logged. Hence a router absent from
    the returned set answers exactly as it did at cursor time. *)

val stats : t -> stats
(** Cumulative counters since [create]. *)
