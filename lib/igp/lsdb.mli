(** Link-state database shared by all routers.

    A single LSDB instance models the (converged) flooded state of the
    IGP domain: router LSAs are derived from the physical topology graph;
    prefix and fake LSAs are installed explicitly. Each change bumps a
    version and a per-LSA sequence number, mirroring OSPF supersession.

    [view] materializes the augmented routing graph every router computes
    SPF on: the physical graph, plus one stub node per fake LSA, plus one
    virtual sink node per prefix with an incoming edge from every
    announcer (real egress at its announced cost, fakes at theirs).

    Beyond the version counter, the LSDB keeps a bounded log of the
    structural deltas behind recent version bumps. Incremental consumers
    ([Spf_engine]) use it to dirty only the routers a change can affect;
    when the log cannot answer (overflow, or a change with no precise
    description) they fall back to recomputing everything, so the log is
    purely an optimisation channel. *)

type t

type view = {
  graph : Netgraph.Graph.t;
      (** Augmented graph. Node identifiers [< real_nodes] coincide with
          the physical graph's. *)
  real_nodes : int;
  prefixes : Lsa.prefix array;  (** Distinct announced prefixes, sorted. *)
  sinks : (Lsa.prefix, Netgraph.Graph.node) Hashtbl.t;
  fake_stubs : Lsa.fake array;
      (** The stub node of [fake_stubs.(i)] is [real_nodes + i]. *)
}

val sink : view -> Lsa.prefix -> Netgraph.Graph.node option
(** The prefix's virtual sink node, if the prefix is announced. *)

val fake_of_node : view -> Netgraph.Graph.node -> Lsa.fake option
(** The fake whose stub node this is; [None] for real nodes and sinks. *)

type delta =
  | Fake_delta of {
      attachment : Netgraph.Graph.node;
      view_cost : int;
          (** Cost from the attachment to the prefix sink through the
              fake's stub, in view units (announcer +1 offset included). *)
      prefix : Lsa.prefix;
    }  (** A fake LSA appeared or disappeared (same dirty test either way). *)
  | Weight_delta of {
      u : Netgraph.Graph.node;
      v : Netgraph.Graph.node;
      old_weight : int;
      new_weight : int;
    }  (** One physical edge changed weight (both directions untouched —
           a delta describes one directed edge [u -> v]). *)
  | Generic_delta
      (** Anything else (prefix announcement, external graph surgery);
          consumers must assume the whole view changed. *)

val create : Netgraph.Graph.t -> t
(** The LSDB reads the physical graph lazily: weight changes made to the
    graph afterwards are picked up after a call to [touch]. *)

val base_graph : t -> Netgraph.Graph.t

val announce_prefix : t -> Lsa.prefix -> origin:Netgraph.Graph.node -> cost:int -> unit
(** Install (or supersede) the real announcement of a prefix. A prefix may
    be announced by several origins (anycast); each (origin, prefix) pair
    is one LSA. *)

val install_fake : t -> Lsa.fake -> unit
(** Inject a fake LSA; supersedes any previous fake with the same
    [fake_id]. Raises [Invalid_argument] if the forwarding address is not
    a physical neighbor of the attachment router, if the announced prefix
    is unknown, or if costs are not positive. *)

val retract_fake : t -> fake_id:string -> unit
(** Raises [Not_found] if no such fake is installed. *)

val retract_all_fakes : t -> unit

val fakes : t -> Lsa.fake list
(** Currently installed fakes, in installation order. *)

val fake_count : t -> int

val installed : t -> string -> bool
(** Whether a fake with this [fake_id] is currently installed. *)

(** {2 Fake-LSA aging}

    Real Fibbing degrades gracefully because fake LSAs age out: a live
    controller refreshes its lies periodically; if it dies, the lies hit
    MaxAge and the routers purge them, falling back to the pure-IGP
    shortest paths. We model age as an absolute expiry time per fake,
    set/refreshed by the controller and enforced by whoever advances
    simulated time ([Netsim.Sim] calls [expire_fakes] every step). A
    fake with no expiry set never ages (manual steers); TTLs are clamped
    to {!Lsa.max_age}. *)

val set_fake_expiry : t -> fake_id:string -> now:float -> ttl:float -> unit
(** Stamp (or refresh) one fake's expiry to [now + min ttl Lsa.max_age].
    No-op if the fake is not installed. Raises [Invalid_argument] on a
    non-positive [ttl]. *)

val clear_fake_expiry : t -> fake_id:string -> unit
(** Make the fake immortal again (remove its expiry). *)

val fake_expiry : t -> fake_id:string -> float option
(** Absolute expiry time, [None] if the fake never expires. *)

val refresh_fakes :
  t -> now:float -> ttl:float -> owned:(Lsa.fake -> bool) -> unit
(** Re-stamp the expiry of every installed fake selected by [owned] —
    the periodic keep-alive a live controller sends. *)

val expire_fakes : t -> now:float -> Lsa.fake list
(** Retract every fake whose expiry has passed and return them (oldest
    installation first). Each retraction bumps the version like an
    explicit [retract_fake]. *)

val prefixes : t -> (Lsa.prefix * Netgraph.Graph.node * int) list
(** Real prefix announcements [(prefix, origin, cost)]. *)

val prefix_list : t -> Lsa.prefix list
(** Distinct announced prefixes. *)

val resolve : t -> Lsa.prefix -> Lsa.prefix option
(** Longest announced prefix covering the given destination (the
    announcement that governs its routes): exact announcements resolve
    to themselves; a more-specific destination (a /32 inside an
    announced /16, say) resolves to its covering announcement; [None]
    when no announcement covers it. Backed by an LPM index cached per
    LSDB version. *)

val sequence : t -> key:string -> int option
(** Current sequence number of the LSA with this [Lsa.key]; [None] if
    never installed. Sequence numbers survive retraction (as in OSPF,
    where a purged LSA's sequence keeps increasing). *)

val version : t -> int
(** Bumped on every change; cheap to poll. *)

val last_origin : t -> Netgraph.Graph.node option
(** The router that originated the most recent change (the attachment
    of an installed/retracted fake, the origin of a prefix announcement,
    or the node passed to [touch]); used by reconvergence models to
    anchor the flooding schedule. *)

val touch : ?origin:Netgraph.Graph.node -> t -> unit
(** Signal that the physical graph was mutated externally (e.g. a link
    removal at [origin]), invalidating cached views. Logged as
    [Generic_delta]. *)

val reoriginate : t -> origin:Netgraph.Graph.node -> unit
(** Flush-and-reflood the router LSA of [origin]: bumps its sequence
    number and the version (logged as [Generic_delta]). Used when a
    router crashes (its LSA is purged domain-wide) and again when it
    recovers (it floods a fresh LSA for its restored adjacencies). *)

val weight_changed :
  t ->
  Netgraph.Graph.node ->
  Netgraph.Graph.node ->
  old_weight:int ->
  new_weight:int ->
  unit
(** Signal that the weight of one directed physical edge was changed (the
    graph must already carry the new weight). Like [touch] this bumps the
    version, but it logs a precise [Weight_delta] so incremental
    consumers can keep unaffected routers. Symmetric weight changes are
    two calls, one per direction. *)

val deltas_since : t -> since:int -> delta list option
(** All deltas applied after version [since], oldest first; [None] when
    the log no longer reaches back that far (caller must assume
    everything changed). [Some []] iff [since] is the current version. *)

val view : t -> view
(** Cached per [version]. *)
