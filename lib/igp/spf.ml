module Graph = Netgraph.Graph
module Dijkstra = Netgraph.Dijkstra

let check_router (view : Lsdb.view) router =
  if router < 0 || router >= view.real_nodes then
    invalid_arg "Spf: not a real router"

let fib_of_first_hops (view : Lsdb.view) ~router ~prefix ~sink result =
  match Dijkstra.distance result sink with
  | None -> None
  | Some view_distance ->
    (* Announcer edges carry a +1 offset (see Lsdb); undo it here. *)
    let distance = view_distance - 1 in
    let hops = Dijkstra.first_hops view.graph result ~target:sink in
    let local = List.mem sink hops in
    let forwarding_hops = List.filter (fun h -> h <> sink) hops in
    let resolve h =
      if h < view.real_nodes then (h, None)
      else begin
        match Lsdb.fake_of_node view h with
        | Some fake -> (fake.Lsa.forwarding, Some fake.Lsa.fake_id)
        | None ->
          (* Only fake stubs and sinks live above real_nodes, and sinks
             were filtered out just above. *)
          assert false
      end
    in
    let resolved = List.map resolve forwarding_hops in
    let by_next_hop = Hashtbl.create 4 in
    List.iter
      (fun (nh, fake) ->
        let mult, fakes =
          Option.value ~default:(0, []) (Hashtbl.find_opt by_next_hop nh)
        in
        let fakes = match fake with None -> fakes | Some id -> id :: fakes in
        Hashtbl.replace by_next_hop nh (mult + 1, fakes))
      resolved;
    let entries =
      Hashtbl.fold
        (fun next_hop (multiplicity, fakes) acc ->
          { Fib.next_hop; multiplicity; via_fakes = List.sort compare fakes }
          :: acc)
        by_next_hop []
    in
    let entries =
      List.sort (fun a b -> compare a.Fib.next_hop b.Fib.next_hop) entries
    in
    Some (Fib.make ~router ~prefix ~distance ~local entries)

let compute_prefix (view : Lsdb.view) ~router prefix =
  check_router view router;
  match Lsdb.sink view prefix with
  | None -> None
  | Some sink ->
    let result = Dijkstra.run view.graph ~source:router in
    fib_of_first_hops view ~router ~prefix ~sink result

(* [view.prefixes] is already sorted, so one Dijkstra and a scan gives
   FIBs for every prefix in order. *)
let compute (view : Lsdb.view) ~router =
  check_router view router;
  let result = Dijkstra.run view.graph ~source:router in
  Array.to_list view.prefixes
  |> List.filter_map (fun prefix ->
         let sink = Hashtbl.find view.sinks prefix in
         fib_of_first_hops view ~router ~prefix ~sink result)

let distance (view : Lsdb.view) ~router prefix =
  check_router view router;
  match Lsdb.sink view prefix with
  | None -> None
  | Some sink ->
    let result = Dijkstra.run view.graph ~source:router in
    Option.map (fun d -> d - 1) (Dijkstra.distance result sink)
