type prefix = Prefix.t

type fake = {
  fake_id : string;
  attachment : Netgraph.Graph.node;
  attachment_cost : int;
  prefix : prefix;
  announced_cost : int;
  forwarding : Netgraph.Graph.node;
}

type t =
  | Router of { origin : Netgraph.Graph.node; links : (Netgraph.Graph.node * int) list }
  | Prefix of { origin : Netgraph.Graph.node; prefix : prefix; cost : int }
  | Fake of fake

let total_cost f = f.attachment_cost + f.announced_cost

(* OSPF's MaxAge: no LSA outlives this many seconds without a refresh.
   The LSDB clamps every fake's remaining lifetime to it, so even a
   buggy controller cannot install a lie that never expires once it
   stops refreshing. *)
let max_age = 3600.

let key = function
  | Router { origin; _ } -> Printf.sprintf "router:%d" origin
  | Prefix { origin; prefix; _ } ->
    Printf.sprintf "prefix:%d:%s" origin (Prefix.to_string prefix)
  | Fake { fake_id; _ } -> Printf.sprintf "fake:%s" fake_id

let pp ~names fmt = function
  | Router { origin; links } ->
    Format.fprintf fmt "Router(%s: %a)" (names origin)
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (fun fmt (v, w) -> Format.fprintf fmt "%s/%d" (names v) w))
      links
  | Prefix { origin; prefix; cost } ->
    Format.fprintf fmt "Prefix(%s via %s cost %d)" (Prefix.to_string prefix)
      (names origin) cost
  | Fake f ->
    Format.fprintf fmt "Fake(%s @@ %s link %d, %s cost %d -> fwd %s)" f.fake_id
      (names f.attachment) f.attachment_cost
      (Prefix.to_string f.prefix)
      f.announced_cost (names f.forwarding)
