module Graph = Netgraph.Graph

let m_delta_appends = Obs.Metrics.counter "lsdb.delta_appends"
let m_log_overflows = Obs.Metrics.counter "lsdb.log_overflows"

type view = {
  graph : Graph.t;
  real_nodes : int;
  prefixes : Lsa.prefix array;
  sinks : (Lsa.prefix, Graph.node) Hashtbl.t;
  fake_stubs : Lsa.fake array;
}

let sink view prefix = Hashtbl.find_opt view.sinks prefix

let fake_of_node view node =
  let i = node - view.real_nodes in
  if i >= 0 && i < Array.length view.fake_stubs then Some view.fake_stubs.(i)
  else None

type delta =
  | Fake_delta of {
      attachment : Graph.node;
      view_cost : int;
      prefix : Lsa.prefix;
    }
  | Weight_delta of {
      u : Graph.node;
      v : Graph.node;
      old_weight : int;
      new_weight : int;
    }
  | Generic_delta

let log_cap = 1024

type t = {
  base : Graph.t;
  mutable announcements : (Lsa.prefix * Graph.node * int) list; (* newest last *)
  mutable fake_list : Lsa.fake list; (* newest last *)
  expiries : (string, float) Hashtbl.t;
      (* fake_id -> absolute expiry time; absent = never expires. *)
  sequences : (string, int) Hashtbl.t;
  mutable version : int;
  mutable last_origin : Graph.node option;
  mutable cached_view : (int * view) option;
  mutable resolver : (int * Lsa.prefix Fib_trie.t) option;
      (* LPM index over announced prefixes, rebuilt lazily per version;
         maps any destination prefix to the announced prefix governing
         it (longest covering announcement). *)
  mutable delta_log : (int * delta) list; (* newest first *)
  mutable log_entries : int;
  mutable log_floor : int;
      (* The log holds every delta with version > log_floor. *)
}

let create base =
  {
    base;
    announcements = [];
    fake_list = [];
    expiries = Hashtbl.create 16;
    sequences = Hashtbl.create 32;
    version = 0;
    last_origin = None;
    cached_view = None;
    resolver = None;
    delta_log = [];
    log_entries = 0;
    log_floor = 0;
  }

let base_graph t = t.base

(* Tag [deltas] with the current (already bumped) version. On overflow
   the whole log is dropped and the floor raised to the current version:
   consumers synced before the drop fall back to full invalidation. *)
let record t deltas =
  let count = List.length deltas in
  if t.log_entries + count > log_cap then begin
    Obs.Metrics.incr m_log_overflows;
    if Obs.enabled () then
      Obs.Timeline.record ~source:"lsdb" ~kind:"log_overflow"
        [ ("dropped", Int t.log_entries); ("version", Int t.version) ];
    t.delta_log <- [];
    t.log_entries <- 0;
    t.log_floor <- t.version
  end
  else begin
    List.iter (fun d -> t.delta_log <- (t.version, d) :: t.delta_log) deltas;
    t.log_entries <- t.log_entries + count;
    Obs.Metrics.add m_delta_appends count
  end

let deltas_since t ~since =
  if since < t.log_floor then None
  else begin
    (* Newest-first log; collect entries newer than [since], which
       reverses them into application order. *)
    let rec take acc = function
      | (v, d) :: rest when v > since -> take (d :: acc) rest
      | _ -> acc
    in
    Some (take [] t.delta_log)
  end

let bump t key =
  let seq = Option.value ~default:0 (Hashtbl.find_opt t.sequences key) in
  Hashtbl.replace t.sequences key (seq + 1);
  t.version <- t.version + 1

(* Cost from a fake's attachment router to the prefix sink through the
   fake's stub node, in view units (includes the +1 announcer offset). *)
let fake_view_cost (f : Lsa.fake) = f.attachment_cost + f.announced_cost + 1

let fake_delta (f : Lsa.fake) =
  Fake_delta
    { attachment = f.attachment; view_cost = fake_view_cost f; prefix = f.prefix }

let announce_prefix t prefix ~origin ~cost =
  if cost < 0 then invalid_arg "Lsdb.announce_prefix: negative cost";
  ignore (Graph.name t.base origin);
  t.last_origin <- Some origin;
  t.announcements <-
    List.filter (fun (p, o, _) -> not (Prefix.equal p prefix && o = origin)) t.announcements
    @ [ (prefix, origin, cost) ];
  bump t (Lsa.key (Prefix { origin; prefix; cost }));
  record t [ Generic_delta ]

let prefix_known t prefix =
  List.exists (fun (p, _, _) -> Prefix.equal p prefix) t.announcements

let install_fake t (fake : Lsa.fake) =
  if fake.attachment_cost <= 0 then
    invalid_arg "Lsdb.install_fake: attachment cost must be positive";
  if fake.announced_cost < 0 then
    invalid_arg "Lsdb.install_fake: negative announced cost";
  if not (Graph.has_edge t.base fake.attachment fake.forwarding) then
    invalid_arg
      (Printf.sprintf "Lsdb.install_fake: %s's forwarding address is not a neighbor of its attachment"
         fake.fake_id);
  if not (prefix_known t fake.prefix) then
    invalid_arg
      (Printf.sprintf "Lsdb.install_fake: unknown prefix %s"
         (Prefix.to_string fake.prefix));
  let superseded =
    List.find_opt
      (fun (f : Lsa.fake) -> String.equal f.fake_id fake.fake_id)
      t.fake_list
  in
  t.fake_list <-
    List.filter (fun (f : Lsa.fake) -> not (String.equal f.fake_id fake.fake_id)) t.fake_list
    @ [ fake ];
  t.last_origin <- Some fake.attachment;
  bump t (Lsa.key (Fake fake));
  (* Supersession is a retraction plus an installation: both deltas are
     logged so incremental consumers see the old fake disappear too. *)
  record t
    (match superseded with
    | None -> [ fake_delta fake ]
    | Some old -> [ fake_delta old; fake_delta fake ])

let retract_fake t ~fake_id =
  match
    List.find_opt (fun (f : Lsa.fake) -> String.equal f.fake_id fake_id) t.fake_list
  with
  | None -> raise Not_found
  | Some fake ->
    t.fake_list <-
      List.filter
        (fun (f : Lsa.fake) -> not (String.equal f.fake_id fake_id))
        t.fake_list;
    Hashtbl.remove t.expiries fake_id;
    t.last_origin <- Some fake.attachment;
    bump t (Printf.sprintf "fake:%s" fake_id);
    record t [ fake_delta fake ]

let retract_all_fakes t =
  List.iter (fun (f : Lsa.fake) -> retract_fake t ~fake_id:f.fake_id)
    (List.rev t.fake_list)

let fakes t = t.fake_list

let fake_count t = List.length t.fake_list

(* ---------- fake-LSA aging ---------- *)

let installed t fake_id =
  List.exists (fun (f : Lsa.fake) -> String.equal f.fake_id fake_id) t.fake_list

let set_fake_expiry t ~fake_id ~now ~ttl =
  if ttl <= 0. then invalid_arg "Lsdb.set_fake_expiry: ttl must be positive";
  if installed t fake_id then
    Hashtbl.replace t.expiries fake_id (now +. Float.min ttl Lsa.max_age)

let clear_fake_expiry t ~fake_id = Hashtbl.remove t.expiries fake_id

let fake_expiry t ~fake_id = Hashtbl.find_opt t.expiries fake_id

let refresh_fakes t ~now ~ttl ~owned =
  List.iter
    (fun (f : Lsa.fake) ->
      if owned f then set_fake_expiry t ~fake_id:f.fake_id ~now ~ttl)
    t.fake_list

let expire_fakes t ~now =
  let expired =
    List.filter
      (fun (f : Lsa.fake) ->
        match Hashtbl.find_opt t.expiries f.fake_id with
        | Some at -> at <= now +. 1e-9
        | None -> false)
      t.fake_list
  in
  List.iter (fun (f : Lsa.fake) -> retract_fake t ~fake_id:f.fake_id) expired;
  expired

let prefixes t = t.announcements

let resolver t =
  match t.resolver with
  | Some (version, trie) when version = t.version -> trie
  | Some _ | None ->
    let trie = Fib_trie.create ~eq:Prefix.equal in
    List.iter
      (fun (p, _, _) -> Fib_trie.update trie p p)
      t.announcements;
    t.resolver <- Some (t.version, trie);
    trie

let resolve t prefix =
  Option.map fst (Fib_trie.lookup_within (resolver t) prefix)

let prefix_list t =
  List.sort_uniq compare (List.map (fun (p, _, _) -> p) t.announcements)

let sequence t ~key = Hashtbl.find_opt t.sequences key

let version t = t.version

let last_origin t = t.last_origin

let touch ?origin t =
  (match origin with Some _ -> t.last_origin <- origin | None -> ());
  t.version <- t.version + 1;
  record t [ Generic_delta ]

let reoriginate t ~origin =
  (* A router (re)floods its own LSA with a higher sequence number:
     crash (MaxAge flush) and recovery both look like this to the rest
     of the domain. The adjacency changes themselves live in the graph;
     here we advance the LSA identity and invalidate cached views. *)
  t.last_origin <- Some origin;
  bump t (Lsa.key (Router { origin; links = [] }));
  record t [ Generic_delta ]

let weight_changed t u v ~old_weight ~new_weight =
  t.last_origin <- Some u;
  t.version <- t.version + 1;
  record t [ Weight_delta { u; v; old_weight; new_weight } ]

let build_view t =
  let graph = Graph.copy t.base in
  let real_nodes = Graph.node_count graph in
  (* One stub node per fake, reachable only via its attachment. Stubs are
     added before sinks, so the stub for [fake_stubs.(i)] is node
     [real_nodes + i] — [fake_of_node] relies on this. *)
  let fake_stubs = Array.of_list t.fake_list in
  Array.iter
    (fun (f : Lsa.fake) ->
      let node = Graph.add_node graph ~name:f.fake_id in
      Graph.add_edge graph f.attachment node ~weight:f.attachment_cost)
    fake_stubs;
  (* One sink per prefix, fed by real announcers and by fakes. A cost of 0
     is represented by a +1 offset on every announcer edge (Graph rejects
     zero-weight edges), which preserves all cost comparisons. *)
  let prefixes = Array.of_list (prefix_list t) in
  let sinks = Hashtbl.create (max 16 (2 * Array.length prefixes)) in
  Array.iter
    (fun prefix ->
      let sink =
        Graph.add_node graph
          ~name:(Printf.sprintf "prefix:%s" (Prefix.to_string prefix))
      in
      Hashtbl.replace sinks prefix sink)
    prefixes;
  List.iter
    (fun (p, origin, cost) ->
      Graph.add_edge graph origin (Hashtbl.find sinks p) ~weight:(cost + 1))
    t.announcements;
  Array.iteri
    (fun i (f : Lsa.fake) ->
      Graph.add_edge graph (real_nodes + i) (Hashtbl.find sinks f.prefix)
        ~weight:(f.announced_cost + 1))
    fake_stubs;
  { graph; real_nodes; prefixes; sinks; fake_stubs }

let view t =
  match t.cached_view with
  | Some (version, v) when version = t.version -> v
  | Some _ | None ->
    let v = build_view t in
    t.cached_view <- Some (t.version, v);
    v
