(** Link-state advertisements.

    We model the three LSA kinds that matter to Fibbing:
    - {b router LSAs}: a router's adjacencies and their costs, derived
      from the physical topology;
    - {b prefix LSAs}: a destination prefix announced by a real egress
      router at some external cost (OSPF type-5 with a real origin);
    - {b fake LSAs}: a forged stub node, attached to a real router at a
      chosen link cost, announcing one prefix at a chosen cost and
      carrying a forwarding-address mapping to a physical neighbor of the
      attachment router. This is the Fibbing "lie". *)

type prefix = Prefix.t
(** Destination prefixes are parsed CIDR values (see {!Prefix}); the
    paper's named prefixes ("blue") are synthetic host routes created
    through the {!Prefix.v} compatibility constructor. *)

type fake = {
  fake_id : string;  (** Unique identifier, e.g. ["fB"], ["fA#1"]. *)
  attachment : Netgraph.Graph.node;
      (** Real router the fake node hangs off. *)
  attachment_cost : int;  (** Cost of the (fake) link attachment->fake. *)
  prefix : prefix;  (** Prefix announced by the fake node. *)
  announced_cost : int;  (** Cost at which the fake announces the prefix. *)
  forwarding : Netgraph.Graph.node;
      (** Physical next hop of [attachment] that the fake route resolves
          to when installed in [attachment]'s FIB. Must be a neighbor of
          [attachment]. *)
}

type t =
  | Router of { origin : Netgraph.Graph.node; links : (Netgraph.Graph.node * int) list }
  | Prefix of { origin : Netgraph.Graph.node; prefix : prefix; cost : int }
  | Fake of fake

val total_cost : fake -> int
(** [attachment_cost + announced_cost]: the cost at which the attachment
    router reaches the prefix through this fake. *)

val max_age : float
(** OSPF's MaxAge (3600 s): the longest any LSA may live without being
    refreshed by its originator. [Lsdb] clamps fake-LSA lifetimes to it,
    so an orphaned lie always ages out — the safety net behind Fibbing's
    graceful-degradation argument (controller dies, lies expire, routers
    fall back to pure IGP shortest paths). *)

val key : t -> string
(** Stable identity used by the LSDB for supersession: router LSAs are
    keyed by origin, prefix LSAs by (origin, prefix), fake LSAs by
    [fake_id]. *)

val pp : names:(Netgraph.Graph.node -> string) -> Format.formatter -> t -> unit
