(** Parsed, validated destination prefixes.

    Replaces the seed's exact-match [string] prefixes with a real CIDR
    type: an IPv4 network address plus a mask length, packed into one
    immediate integer ([addr lsl 6 lor len]) so equality, ordering,
    hashing and table keys are allocation-free.

    Two construction paths exist:
    - {!of_string} parses and {e validates} canonical CIDR notation
      (["10.0.0.0/8"], ["192.168.1.7"] as a host route) and rejects
      malformed input with a precise reason — octet out of range,
      mask out of range, host bits set below the mask, trailing
      garbage;
    - the compatibility constructor {!v} additionally accepts the
      paper-style {e named} prefixes the existing topologies use
      (["blue"], ["cdn"], ["p07"]): a name is mapped deterministically
      (FNV-1a) to a synthetic host route in the reserved class-E block
      240.0.0.0/4 and remembered in a registry so {!to_string} prints
      the name back. Names never nest, so all seed behaviour is
      preserved bit-for-bit.

    The accessors {!addr}/{!len}/{!bit} and the containment tests are
    what {!Fib_trie} builds its compressed binary trie on. *)

type t = private int

val make : addr:int -> len:int -> t
(** [make ~addr ~len] packs a network address (32-bit, host bits below
    [len] must be zero) and a mask length in [0..32]. Raises
    [Invalid_argument] on violation. *)

val of_string : string -> (t, string) result
(** Strict parse: ["A.B.C.D/L"], ["A.B.C.D"] (host route), or a named
    prefix ([A-Za-z_][A-Za-z0-9_-]*, at most 255 bytes). The error
    names the offending token and the reason. *)

val of_string_exn : string -> t
(** Raises [Invalid_argument] with the {!of_string} error message. *)

val v : string -> t
(** Compatibility constructor, alias of {!of_string_exn}: the one-word
    spelling used by scenarios, benches and tests. *)

val to_string : t -> string
(** The registered name for named prefixes, dotted-quad CIDR
    ("A.B.C.D/L") otherwise. Round-trips through {!of_string}. *)

val addr : t -> int
(** Network address as an unsigned 32-bit value. *)

val len : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int
(** Orders by address, then by mask length — so sorting a prefix list
    groups nested subnets under their covering aggregates. *)

val hash : t -> int

val default_route : t
(** 0.0.0.0/0. *)

val is_host : t -> bool
(** [len t = 32]. *)

val bit : t -> int -> int
(** [bit t i] is bit [i] of the address, counted from the most
    significant bit ([i = 0]); requires [0 <= i < 32]. *)

val contains : t -> t -> bool
(** [contains p q]: every address matched by [q] is matched by [p]
    ([p] is an equal-or-shorter covering prefix of [q]). *)

val contains_addr : t -> int -> bool

val first_addr : t -> int
(** Lowest address covered ([= addr t]). *)

val last_addr : t -> int
(** Highest address covered. *)

val subnet : t -> bit:int -> t
(** The [bit] (0 or 1) half of [t], one mask bit longer. Raises
    [Invalid_argument] on a host route. *)

val pp : Format.formatter -> t -> unit

val synthesize : Kit.Prng.t -> n:int -> t list
(** Deterministic synthetic routing table: [n] distinct CIDR prefixes
    with production-like shape — a backbone of short prefixes plus
    Zipf-weighted nested subnets (popular aggregates spawn many
    more-specifics, as in real FIB dumps), lengths between /8 and /32.
    Used by [bench fib] and the trie property tests. *)
