module Graph = Netgraph.Graph

(* A flood sends one message over every edge between reached routers;
   only [reached - 1] of those deliver news, the rest are duplicates the
   receiver suppresses. *)
let m_messages = Obs.Metrics.counter "flooding.messages"
let m_suppressed = Obs.Metrics.counter "flooding.suppressed"

type cost = { messages : int; rounds : int }

let zero = { messages = 0; rounds = 0 }

let add a b = { messages = a.messages + b.messages; rounds = max a.rounds b.rounds }

type loss = {
  prng : Kit.Prng.t;
  drop : float;
  max_backoff : int;
  max_retries : int;
}

let loss ?(drop = 0.1) ?(max_backoff = 8) ?(max_retries = 16) ~seed () =
  if drop < 0. || drop >= 1. then invalid_arg "Flooding.loss: drop must be in [0, 1)";
  if max_backoff < 1 then invalid_arg "Flooding.loss: max_backoff must be >= 1";
  if max_retries < 1 then invalid_arg "Flooding.loss: max_retries must be >= 1";
  { prng = Kit.Prng.create ~seed; drop; max_backoff; max_retries }

type jitter = { jitter_prng : Kit.Prng.t; max_delay : int }

let jitter ?(max_delay = 4) ~seed () =
  if max_delay < 1 then invalid_arg "Flooding.jitter: max_delay must be >= 1";
  { jitter_prng = Kit.Prng.create ~seed; max_delay }

(* One reliable transmission over a lossy adjacency: attempts are lost
   independently with probability [drop]; after the k-th loss the sender
   waits min(2^k, max_backoff) rounds before retransmitting (OSPF's
   RxmtInterval, exponentiated). Returns how many copies were sent and
   how many rounds after the first transmission the LSA lands. The
   attempt budget is capped — the last retransmission always delivers,
   modelling retransmit-until-acked without unbounded tails. *)
let transmit l =
  let attempts = ref 1 and delay = ref 0 and backoff = ref 1 in
  while
    !attempts < l.max_retries && Kit.Prng.float l.prng 1.0 < l.drop
  do
    incr attempts;
    delay := !delay + !backoff;
    backoff := min (2 * !backoff) l.max_backoff
  done;
  (!attempts, 1 + !delay)

(* Sampled flooding: per-edge delivery latencies combine retransmission
   delay (loss) with scheduling jitter (delay/reorder), and the LSA's
   arrival time at each router is the shortest-path closure of those
   latencies (a router re-floods the instant the first copy arrives).
   With jitter, a router two cheap hops away can be informed before a
   direct but slow neighbor — LSA reordering falls out of the closure
   rather than being modelled separately. Deterministic: edges are
   relaxed in increasing (arrival, node, neighbor insertion) order, so
   one seed = one outcome. *)
let flood_sampled ~loss ~jitter g ~origin =
  let edge_latency () =
    let attempts, latency =
      match loss with Some l -> transmit l | None -> (1, 1)
    in
    let latency =
      match jitter with
      | Some j -> latency + Kit.Prng.int j.jitter_prng (j.max_delay + 1)
      | None -> latency
    in
    (attempts, latency)
  in
  let n = Graph.node_count g in
  let arrival = Array.make n infinity in
  let settled = Array.make n false in
  arrival.(origin) <- 0.;
  let rec settle () =
    (* O(n^2) extract-min: flooding graphs are small and this keeps the
       relaxation order (and hence the PRNG stream) deterministic. *)
    let next = ref (-1) in
    for v = n - 1 downto 0 do
      if (not settled.(v)) && arrival.(v) < infinity
         && (!next < 0 || arrival.(v) <= arrival.(!next))
      then next := v
    done;
    if !next >= 0 then begin
      let u = !next in
      settled.(u) <- true;
      Graph.iter_succ g u (fun v _ ->
          if not settled.(v) then begin
            let _, latency = edge_latency () in
            let at = arrival.(u) +. float_of_int latency in
            if at < arrival.(v) then arrival.(v) <- at
          end);
      settle ()
    end
  in
  settle ();
  let reached = ref 0 and rounds = ref 0 in
  Array.iter
    (fun a ->
      if a < infinity then begin
        incr reached;
        rounds := max !rounds (int_of_float (Float.round a))
      end)
    arrival;
  (* As in the lossless model, every directed edge between informed
     routers carries the update (the loser is suppressed as a
     duplicate) — but under loss each copy is retried until acked, so an
     edge costs its sampled attempt count rather than exactly one
     message. Jitter delays copies without duplicating them. *)
  let messages =
    Graph.fold_edges g ~init:0 ~f:(fun acc u v _ ->
        if settled.(u) && settled.(v) then
          acc + (match loss with Some l -> fst (transmit l) | None -> 1)
        else acc)
  in
  Obs.Metrics.add m_messages messages;
  Obs.Metrics.add m_suppressed (max 0 (messages - (!reached - 1)));
  { messages; rounds = !rounds }

let flood_lossless g ~origin =
  let n = Graph.node_count g in
  let depth = Array.make n (-1) in
  depth.(origin) <- 0;
  let queue = Queue.create () in
  Queue.push origin queue;
  let rounds = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_succ g u (fun v _ ->
        if depth.(v) < 0 then begin
          depth.(v) <- depth.(u) + 1;
          rounds := max !rounds depth.(v);
          Queue.push v queue
        end)
  done;
  let messages =
    Graph.fold_edges g ~init:0 ~f:(fun acc u v _ ->
        if depth.(u) >= 0 && depth.(v) >= 0 then acc + 1 else acc)
  in
  let reached = Array.fold_left (fun k d -> if d >= 0 then k + 1 else k) 0 depth in
  Obs.Metrics.add m_messages messages;
  Obs.Metrics.add m_suppressed (max 0 (messages - (reached - 1)));
  { messages; rounds = !rounds }

let flood ?loss ?jitter g ~origin =
  let lossy = match loss with Some l -> l.drop > 0. | None -> false in
  if lossy || jitter <> None then
    flood_sampled ~loss:(if lossy then loss else None) ~jitter g ~origin
  else flood_lossless g ~origin
