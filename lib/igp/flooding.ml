module Graph = Netgraph.Graph

(* A flood sends one message over every edge between reached routers;
   only [reached - 1] of those deliver news, the rest are duplicates the
   receiver suppresses. *)
let m_messages = Obs.Metrics.counter "flooding.messages"
let m_suppressed = Obs.Metrics.counter "flooding.suppressed"

type cost = { messages : int; rounds : int }

let zero = { messages = 0; rounds = 0 }

let add a b = { messages = a.messages + b.messages; rounds = max a.rounds b.rounds }

let flood g ~origin =
  let n = Graph.node_count g in
  let depth = Array.make n (-1) in
  depth.(origin) <- 0;
  let queue = Queue.create () in
  Queue.push origin queue;
  let rounds = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_succ g u (fun v _ ->
        if depth.(v) < 0 then begin
          depth.(v) <- depth.(u) + 1;
          rounds := max !rounds depth.(v);
          Queue.push v queue
        end)
  done;
  let messages =
    Graph.fold_edges g ~init:0 ~f:(fun acc u v _ ->
        if depth.(u) >= 0 && depth.(v) >= 0 then acc + 1 else acc)
  in
  let reached = Array.fold_left (fun k d -> if d >= 0 then k + 1 else k) 0 depth in
  Obs.Metrics.add m_messages messages;
  Obs.Metrics.add m_suppressed (max 0 (messages - (reached - 1)));
  { messages; rounds = !rounds }
