type entry = {
  next_hop : Netgraph.Graph.node;
  multiplicity : int;
  via_fakes : string list;
}

type t = {
  router : Netgraph.Graph.node;
  prefix : Lsa.prefix;
  distance : int;
  local : bool;
  entries : entry list;
}

let invariant t =
  let rec check last = function
    | [] -> Ok ()
    | e :: rest ->
      if e.multiplicity <= 0 then
        Error
          (Printf.sprintf "entry for next hop %d has multiplicity %d (must be >= 1)"
             e.next_hop e.multiplicity)
      else if last >= e.next_hop then
        Error
          (Printf.sprintf "entries not strictly sorted by next hop (%d after %d)"
             e.next_hop last)
      else check e.next_hop rest
  in
  check min_int t.entries

let make ~router ~prefix ~distance ~local entries =
  let t = { router; prefix; distance; local; entries } in
  match invariant t with
  | Ok () -> t
  | Error reason ->
    invalid_arg
      (Printf.sprintf "Fib.make (router %d, prefix %s): %s" router
         (Prefix.to_string prefix) reason)

let next_hops t = List.map (fun e -> e.next_hop) t.entries

(* Canonical forwarding weights: sorted by next hop with duplicate
   next-hop entries merged, so two FIBs forward identically iff their
   weights are structurally equal — regardless of entry order or how
   multiplicity is split across entries. SPF output already satisfies
   the canonical form (see [invariant]), making this a no-op there. *)
let weights t =
  (* Alloc-free canonical check first: SPF-built FIBs are strictly
     sorted already, and [Hashing.select] calls this on every routing
     decision — only hand-built denormalized entries pay for the sort. *)
  let rec canonical last = function
    | [] -> true
    | e :: rest -> e.next_hop > last && canonical e.next_hop rest
  in
  if canonical min_int t.entries then
    List.map (fun e -> (e.next_hop, e.multiplicity)) t.entries
  else
    let merged =
      List.fold_left
        (fun acc e ->
          match acc with
          | (h, m) :: rest when h = e.next_hop -> (h, m + e.multiplicity) :: rest
          | _ -> (e.next_hop, e.multiplicity) :: acc)
        []
        (List.sort
           (fun a b -> Int.compare a.next_hop b.next_hop)
           t.entries)
    in
    List.rev merged

let total_multiplicity t =
  List.fold_left (fun acc e -> acc + e.multiplicity) 0 t.entries

let fractions t =
  let total = total_multiplicity t in
  if total = 0 then []
  else
    List.map
      (fun e -> (e.next_hop, float_of_int e.multiplicity /. float_of_int total))
      t.entries

let uses_fake t = List.exists (fun e -> e.via_fakes <> []) t.entries

let equal_forwarding a b = weights a = weights b

let same_behavior a b =
  a.local = b.local
  && (a.local || equal_forwarding a b)

let pp ~names fmt t =
  if t.local then
    Format.fprintf fmt "%s -> %s: local (cost %d)" (names t.router)
      (Prefix.to_string t.prefix) t.distance
  else
    Format.fprintf fmt "%s -> %s (cost %d): %a" (names t.router)
      (Prefix.to_string t.prefix) t.distance
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (fun fmt e ->
           if e.via_fakes = [] then
             Format.fprintf fmt "%s x%d" (names e.next_hop) e.multiplicity
           else
             Format.fprintf fmt "%s x%d (via %s)" (names e.next_hop)
               e.multiplicity
               (String.concat "+" e.via_fakes)))
      t.entries
