type packet = { lsa : Lsa.t; sequence : int }

let header_length = 16

(* Header layout (offsets):
     0  u16  age                (excluded from the checksum)
     2  u8   version = 2
     3  u8   type: 1 router, 5 external, 9 fake (opaque)
     4  u32  origin router id (the attachment for fakes)
     8  u32  sequence number
     12 u16  total length
     14 u16  Fletcher-16 over bytes [2, length) with this field zeroed
   Strings are u8 length + raw bytes; metrics are u16 (router links) or
   u24 (announced costs), ids u32. *)

let fletcher16 buf ~pos ~len =
  let sum1 = ref 0 and sum2 = ref 0 in
  for i = pos to pos + len - 1 do
    sum1 := (!sum1 + Char.code (Bytes.get buf i)) mod 255;
    sum2 := (!sum2 + !sum1) mod 255
  done;
  (!sum2 lsl 8) lor !sum1

let check_range name value bits =
  if value < 0 || (bits < 63 && value >= 1 lsl bits) then
    invalid_arg (Printf.sprintf "Codec.encode: %s out of %d-bit range" name bits)

let check_name name value =
  if String.length value > 255 then
    invalid_arg (Printf.sprintf "Codec.encode: %s longer than 255 bytes" name)

let string_length s = 1 + String.length s

(* Prefixes travel as their canonical text form (name or CIDR); the
   decoder re-validates through [Prefix.of_string]. *)
let prefix_string = Prefix.to_string

let body_length = function
  | Lsa.Router { links; _ } -> 2 + (6 * List.length links)
  | Lsa.Prefix { prefix; _ } -> string_length (prefix_string prefix) + 3 + 4
  | Lsa.Fake f ->
    string_length f.fake_id + 2 + string_length (prefix_string f.prefix) + 3 + 4

let wire_length packet = header_length + body_length packet.lsa

let put_u8 buf pos v =
  Bytes.set_uint8 buf pos v;
  pos + 1

let put_u16 buf pos v =
  Bytes.set_uint16_be buf pos v;
  pos + 2

let put_u24 buf pos v =
  let pos = put_u8 buf pos ((v lsr 16) land 0xff) in
  put_u16 buf pos (v land 0xffff)

let put_u32 buf pos v =
  Bytes.set_int32_be buf pos (Int32.of_int v);
  pos + 4

let put_string buf pos s =
  let pos = put_u8 buf pos (String.length s) in
  Bytes.blit_string s 0 buf pos (String.length s);
  pos + String.length s

let type_code = function
  | Lsa.Router _ -> 1
  | Lsa.Prefix _ -> 5
  | Lsa.Fake _ -> 9

let origin_of = function
  | Lsa.Router { origin; _ } -> origin
  | Lsa.Prefix { origin; _ } -> origin
  | Lsa.Fake f -> f.attachment

let encode ?(age = 0) packet =
  check_range "age" age 16;
  check_range "sequence" packet.sequence 32;
  check_range "origin" (origin_of packet.lsa) 32;
  (match packet.lsa with
  | Lsa.Router { links; _ } ->
    List.iter
      (fun (neighbor, metric) ->
        check_range "neighbor" neighbor 32;
        check_range "link metric" metric 16)
      links;
    if List.length links > 0xffff then invalid_arg "Codec.encode: too many links"
  | Lsa.Prefix { prefix; cost; _ } ->
    check_name "prefix" (prefix_string prefix);
    check_range "external metric" cost 24
  | Lsa.Fake f ->
    check_name "fake id" f.fake_id;
    check_name "prefix" (prefix_string f.prefix);
    check_range "attachment cost" f.attachment_cost 16;
    check_range "announced cost" f.announced_cost 24;
    check_range "forwarding" f.forwarding 32);
  let length = wire_length packet in
  let buf = Bytes.create length in
  let pos = put_u16 buf 0 age in
  let pos = put_u8 buf pos 2 in
  let pos = put_u8 buf pos (type_code packet.lsa) in
  let pos = put_u32 buf pos (origin_of packet.lsa) in
  let pos = put_u32 buf pos packet.sequence in
  let pos = put_u16 buf pos length in
  let pos = put_u16 buf pos 0 (* checksum placeholder *) in
  let pos =
    match packet.lsa with
    | Lsa.Router { links; _ } ->
      let pos = put_u16 buf pos (List.length links) in
      List.fold_left
        (fun pos (neighbor, metric) ->
          let pos = put_u32 buf pos neighbor in
          put_u16 buf pos metric)
        pos links
    | Lsa.Prefix { prefix; cost; _ } ->
      let pos = put_string buf pos (prefix_string prefix) in
      let pos = put_u24 buf pos cost in
      put_u32 buf pos 0 (* forwarding address: none *)
    | Lsa.Fake f ->
      let pos = put_string buf pos f.fake_id in
      let pos = put_u16 buf pos f.attachment_cost in
      let pos = put_string buf pos (prefix_string f.prefix) in
      let pos = put_u24 buf pos f.announced_cost in
      put_u32 buf pos f.forwarding
  in
  assert (pos = length);
  let sum = fletcher16 buf ~pos:2 ~len:(length - 2) in
  Bytes.set_uint16_be buf 14 sum;
  buf

(* -------- decoding -------- *)

type cursor = { buf : bytes; mutable pos : int; limit : int }

exception Malformed of string

let need c n what =
  if c.pos + n > c.limit then
    raise (Malformed (Printf.sprintf "truncated %s at offset %d" what c.pos))

let get_u8 c what =
  need c 1 what;
  let v = Bytes.get_uint8 c.buf c.pos in
  c.pos <- c.pos + 1;
  v

let get_u16 c what =
  need c 2 what;
  let v = Bytes.get_uint16_be c.buf c.pos in
  c.pos <- c.pos + 2;
  v

let get_u24 c what =
  let hi = get_u8 c what in
  let lo = get_u16 c what in
  (hi lsl 16) lor lo

let get_u32 c what =
  need c 4 what;
  let v = Int32.to_int (Bytes.get_int32_be c.buf c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  v

let get_string c what =
  let len = get_u8 c what in
  need c len what;
  let s = Bytes.sub_string c.buf c.pos len in
  c.pos <- c.pos + len;
  s

(* A wire prefix must parse: any malformed prefix string used to slip
   through here as an unroutable exact-match destination. *)
let get_prefix c what =
  let s = get_string c what in
  match Prefix.of_string s with
  | Ok p -> p
  | Error reason ->
    raise (Malformed (Printf.sprintf "%s at offset %d: %s" what c.pos reason))

let decode_age buf =
  if Bytes.length buf < header_length then Error "truncated header"
  else Ok (Bytes.get_uint16_be buf 0)

let decode buf =
  try
    if Bytes.length buf < header_length then raise (Malformed "truncated header");
    let version = Bytes.get_uint8 buf 2 in
    if version <> 2 then
      raise (Malformed (Printf.sprintf "unsupported version %d" version));
    let length = Bytes.get_uint16_be buf 12 in
    if length <> Bytes.length buf then
      raise
        (Malformed
           (Printf.sprintf "length field %d does not match buffer %d" length
              (Bytes.length buf)));
    let received_sum = Bytes.get_uint16_be buf 14 in
    let copy = Bytes.copy buf in
    Bytes.set_uint16_be copy 14 0;
    let computed = fletcher16 copy ~pos:2 ~len:(length - 2) in
    if received_sum <> computed then
      raise
        (Malformed
           (Printf.sprintf "checksum mismatch: got %04x, computed %04x"
              received_sum computed));
    let lsa_type = Bytes.get_uint8 buf 3 in
    let origin = Int32.to_int (Bytes.get_int32_be buf 4) land 0xffffffff in
    let sequence = Int32.to_int (Bytes.get_int32_be buf 8) land 0xffffffff in
    let c = { buf; pos = header_length; limit = length } in
    let lsa =
      match lsa_type with
      | 1 ->
        let count = get_u16 c "link count" in
        let links =
          List.init count (fun _ ->
              let neighbor = get_u32 c "neighbor" in
              let metric = get_u16 c "metric" in
              (neighbor, metric))
        in
        Lsa.Router { origin; links }
      | 5 ->
        let prefix = get_prefix c "prefix" in
        let cost = get_u24 c "metric" in
        let _forwarding = get_u32 c "forwarding" in
        Lsa.Prefix { origin; prefix; cost }
      | 9 ->
        let fake_id = get_string c "fake id" in
        let attachment_cost = get_u16 c "attachment cost" in
        let prefix = get_prefix c "prefix" in
        let announced_cost = get_u24 c "announced cost" in
        let forwarding = get_u32 c "forwarding" in
        Lsa.Fake
          {
            fake_id;
            attachment = origin;
            attachment_cost;
            prefix;
            announced_cost;
            forwarding;
          }
      | t -> raise (Malformed (Printf.sprintf "unknown LSA type %d" t))
    in
    if c.pos <> c.limit then
      raise (Malformed (Printf.sprintf "%d trailing bytes" (c.limit - c.pos)));
    Ok { lsa; sequence }
  with Malformed reason -> Error reason
