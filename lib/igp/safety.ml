module Graph = Netgraph.Graph

(* Loop and blackhole analysis of the current forwarding graph for one
   prefix: Kahn's algorithm on the next-hop edges finds cycles; a
   forward walk from every routed router must end at a local
   delivery. *)
let state_safe net ~prefix =
  let g = Network.graph net in
  let n = Graph.node_count g in
  let fibs = Network.fib_table net prefix in
  assert (Array.length fibs = n);
  let forwarding router =
    match fibs.(router) with
    | Some fib when not fib.Fib.local -> Fib.next_hops fib
    | Some _ | None -> []
  in
  (* Cycle detection. *)
  let indegree = Array.make n 0 in
  List.iter
    (fun router ->
      List.iter (fun nh -> indegree.(nh) <- indegree.(nh) + 1) (forwarding router))
    (Graph.nodes g);
  let queue = Queue.create () in
  Array.iteri (fun router d -> if d = 0 then Queue.push router queue) indegree;
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let router = Queue.pop queue in
    incr processed;
    List.iter
      (fun nh ->
        indegree.(nh) <- indegree.(nh) - 1;
        if indegree.(nh) = 0 then Queue.push nh queue)
      (forwarding router)
  done;
  if !processed < n then begin
    let cyclic =
      List.filter (fun router -> indegree.(router) > 0) (Graph.nodes g)
      |> List.map (Graph.name g)
    in
    Error
      (Printf.sprintf "forwarding loop for %s through {%s}"
         (Prefix.to_string prefix)
         (String.concat ", " cyclic))
  end
  else begin
    (* Blackholes: a routed router whose every forwarding chain dies.
       With loop-freedom established, it suffices that every router with
       a FIB has all next hops themselves routed (or local). *)
    let routed router = fibs.(router) <> None in
    let bad =
      List.find_opt
        (fun router ->
          routed router
          && List.exists (fun nh -> not (routed nh)) (forwarding router))
        (Graph.nodes g)
    in
    match bad with
    | Some router ->
      Error
        (Printf.sprintf "blackhole for %s at %s: a next hop has no route"
           (Prefix.to_string prefix) (Graph.name g router))
    | None -> Ok ()
  end
