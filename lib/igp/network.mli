(** Whole-network routing state: the physical topology, its LSDB, and the
    FIBs of every router, recomputed (lazily, with caching) whenever the
    LSDB changes. Also accounts the control-plane cost of every fake-LSA
    operation, which the benchmarks compare against MPLS signaling. *)

type t

val create : ?domains:int -> Netgraph.Graph.t -> t
(** [domains] sizes the SPF engine's worker pool (default
    [Kit.Pool.default_domain_count ()]). Scenario sweeps that already
    run one network per domain pass [~domains:1] so the inner engine
    stays sequential instead of nesting fan-outs. *)

val clone : t -> t
(** Independent deep copy (graph, announcements, fakes); used to test a
    candidate augmentation before touching the live network. Control-cost
    counters start at zero in the clone; the SPF pool keeps the
    original's width. *)

val graph : t -> Netgraph.Graph.t

val lsdb : t -> Lsdb.t

val announce_prefix :
  t -> Lsa.prefix -> origin:Netgraph.Graph.node -> cost:int -> unit

val inject_fake : t -> Lsa.fake -> unit
(** Install a fake LSA and account its flooding cost. *)

val retract_fake : t -> fake_id:string -> unit
(** Retract (purge) a fake LSA; purges flood like installations. *)

val retract_all_fakes : t -> unit

val inject_fake_wire : t -> bytes -> (unit, string) result
(** Decode a wire-format LSA packet ([Codec]) and inject it; the packet
    must carry a fake LSA. This is the path a real Fibbing controller
    takes: it forges bytes, the routers parse them. *)

val router_lsa : t -> origin:Netgraph.Graph.node -> Lsa.t
(** The router LSA [origin] would originate for its current adjacencies
    (derived from the physical graph). *)

val fakes : t -> Lsa.fake list

val fib : t -> router:Netgraph.Graph.node -> Lsa.prefix -> Fib.t option
(** Served by the [Spf_engine]: one cached Dijkstra per router covers
    every prefix, and caches survive LSDB changes that provably cannot
    affect the router. *)

val fib_table : t -> Lsa.prefix -> Fib.t option array
(** Per-router FIBs for one prefix, indexed by router id; computes all
    routers in one (parallel) batch. Prefer this over calling [fib] in a
    loop when every router is needed. *)

val fibs : t -> Lsa.prefix -> (Netgraph.Graph.node * Fib.t) list
(** FIB of every router that can reach the prefix, by router id. *)

val resolve : t -> Lsa.prefix -> Lsa.prefix option
(** Longest announced prefix covering a destination (see
    {!Lsdb.resolve}); how flows aimed at arbitrary destinations find
    the announcement that routes them. *)

val lpm :
  t -> router:Netgraph.Graph.node -> int -> (Lsa.prefix * Fib.t) option
(** Longest-prefix match of a destination address in the router's
    aggregated FIB trie (see {!Spf_engine.lpm}). *)

val distance : t -> router:Netgraph.Graph.node -> Lsa.prefix -> int option

val next_hops : t -> router:Netgraph.Graph.node -> Lsa.prefix -> Netgraph.Graph.node list

val warm : t -> unit
(** Precompute every router's FIB table (parallel batch); subsequent
    [fib] lookups are pure hash lookups until the LSDB changes. *)

val engine : t -> Spf_engine.t
(** The underlying SPF engine (stats, explicit sync). *)

val set_weight : t -> Netgraph.Graph.node -> Netgraph.Graph.node -> weight:int -> unit
(** Change a (directed) link weight; triggers reconvergence (incremental
    — only routers whose shortest paths can use the edge recompute) and
    accounts the router-LSA reflood (both endpoints of the paper's
    "per-device reconfiguration"). *)

val control_cost : t -> Flooding.cost
(** Cumulative control-plane cost of all fake/weight operations since
    creation or the last [reset_control_cost]. *)

val set_flooding_loss : t -> Flooding.loss option -> unit
(** Make every subsequently accounted flood pay lossy retransmission
    costs (chaos experiments); [None] restores the lossless default.
    Clones start lossless. *)

val flooding_loss : t -> Flooding.loss option

val set_flooding_jitter : t -> Flooding.jitter option -> unit
(** Make every subsequently accounted flood pay per-adjacency delivery
    jitter — LSAs arrive late and out of order ({!Flooding.jitter}).
    Composes with [set_flooding_loss]; [None] (the default, and the
    clone state) disables. *)

val flooding_jitter : t -> Flooding.jitter option

val refresh_cost : t -> period:float -> duration:float -> Flooding.cost
(** Steady-state cost of keeping the currently installed fakes alive for
    [duration] seconds: OSPF re-originates every LSA each [period]
    (1800 s by default in real deployments), and each re-origination
    refloods. This is Fibbing's analogue of RSVP-TE's soft-state
    refreshes — two orders of magnitude rarer. *)

val reset_control_cost : t -> unit

val routers : t -> Netgraph.Graph.node list
