(** Forwarding-state safety analysis for one prefix.

    The check underlying both install-time transient safety
    ([Fibbing.Transient]) and the continuous runtime watchdog
    ([Netsim.Watchdog]): is the network's {e current} per-prefix
    forwarding graph loop-free, and does every router that has a route
    actually reach an announcer by following next hops? It lives here —
    below both consumers — because [Netsim] cannot depend on the fibbing
    core (the dependency runs the other way). *)

val state_safe : Network.t -> prefix:Lsa.prefix -> (unit, string) result
(** [Ok ()] when the prefix's forwarding graph has no cycle (Kahn's
    algorithm over the next-hop edges) and no routed router forwards to
    a next hop without a route of its own; [Error description]
    otherwise. Cost: O(V + E) over the physical graph. *)
