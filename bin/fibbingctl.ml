(* fibbingctl: command-line front end to the Fibbing reproduction.

   Subcommands:
     routes   — print every router's routes to a prefix on a topology
     steer    — compile + inject a forwarding requirement and show the
                resulting fakes, FIBs and link loads
     demo     — run the paper's flash-crowd demo (Fig. 2) and print the
                time series, controller actions and QoE
     flood    — drive a bulk flash crowd (thousands of streams) through
                the demo network via the aggregated flow engine
     optimize — compute the optimal min-max TE for a surge and realize
                it with Fibbing (the TOPT pipeline)
     topo     — print one of the built-in topologies

   All topologies are built in (this is a simulator); `--topology`
   selects among demo | grid RxC | ring N | random N | twolevel N. *)

open Cmdliner

(* ---------- shared topology/prefix setup ---------- *)

let parse_topology spec =
  let fail msg = `Error (false, msg) in
  match String.split_on_char ':' spec with
  | [ "demo" ] ->
    let d = Netgraph.Topologies.demo () in
    `Ok (d.graph, d.c)
  | [ "ring"; n ] ->
    let g = Netgraph.Topologies.ring ~n:(int_of_string n) in
    `Ok (g, 0)
  | [ "grid"; r; c ] ->
    let g = Netgraph.Topologies.grid ~rows:(int_of_string r) ~cols:(int_of_string c) in
    `Ok (g, Netgraph.Graph.node_count g - 1)
  | [ "random"; n; seed ] ->
    let prng = Kit.Prng.create ~seed:(int_of_string seed) in
    let n = int_of_string n in
    `Ok (Netgraph.Topologies.random prng ~n ~extra_edges:n ~max_weight:4, 0)
  | [ "twolevel"; core ] ->
    let prng = Kit.Prng.create ~seed:1 in
    let g = Netgraph.Topologies.two_level prng ~core:(int_of_string core) ~edge_per_core:2 in
    `Ok (g, 0)
  | [ name ] when Netgraph.Zoo.find name <> None ->
    (match Netgraph.Zoo.find name with
    | Some entry -> `Ok (entry.graph, 0)
    | None -> assert false)
  | _ ->
    fail
      (Printf.sprintf
         "unknown topology %S (expected demo | ring:N | grid:R:C | random:N:SEED \
          | twolevel:CORES | abilene | nsfnet | geant)"
         spec)

let topology_arg =
  let doc =
    "Topology: demo | ring:N | grid:R:C | random:N:SEED | twolevel:CORES. The \
     destination prefix is announced at router C for the demo topology and \
     at the first/last node otherwise."
  in
  Arg.(value & opt string "demo" & info [ "t"; "topology" ] ~docv:"TOPO" ~doc)

(* --domains N: process-wide worker-pool width. Every pool created after
   this point (SPF engines, sweep pools) defaults to N. *)
let domains_arg =
  let doc =
    "Worker domains for parallel sections (SPF sharding, water-fill setup, \
     scenario sweeps). Defaults to the FIBBING_DOMAINS environment variable, \
     else the machine's recommended domain count."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let apply_domains d = Kit.Pool.set_default_domains d

(* Prefixes are validated at the CLI boundary: a malformed CIDR is a
   usage error with the parser's reason, not an unroutable destination. *)
let prefix_conv =
  let parse s =
    match Igp.Prefix.of_string s with
    | Ok p -> Ok p
    | Error reason -> Error (`Msg reason)
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Igp.Prefix.to_string p))

let prefix_arg =
  Arg.(
    value
    & opt prefix_conv (Igp.Prefix.v "blue")
    & info [ "p"; "prefix" ] ~docv:"PREFIX"
        ~doc:"Destination prefix (name or CIDR, e.g. 10.1.0.0/16).")

let with_network spec prefix f =
  match parse_topology spec with
  | `Error (_, msg) -> prerr_endline msg; 1
  | `Ok (graph, announcer) ->
    let net = Igp.Network.create graph in
    Igp.Network.announce_prefix net prefix ~origin:announcer ~cost:0;
    f net graph announcer

let resolve_router g name =
  match Netgraph.Graph.find_node g name with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "unknown router %S" name)

(* ---------- routes ---------- *)

let routes_cmd =
  let run topo prefix =
    with_network topo prefix (fun net graph _ ->
        let names = Netgraph.Graph.name graph in
        List.iter
          (fun (_, fib) -> Format.printf "%a@." (Igp.Fib.pp ~names) fib)
          (Igp.Network.fibs net prefix);
        0)
  in
  let doc = "Print every router's FIB entries for the prefix." in
  Cmd.v (Cmd.info "routes" ~doc) Term.(const run $ topology_arg $ prefix_arg)

(* ---------- steer ---------- *)

let split_arg =
  let doc =
    "Forwarding requirement ROUTER=NH1:F1,NH2:F2,... (fractions sum to 1). \
     Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "s"; "split" ] ~docv:"REQ" ~doc)

let parse_split g spec =
  match String.split_on_char '=' spec with
  | [ router; hops ] ->
    Result.bind (resolve_router g router) (fun router ->
        let parse_hop acc hop =
          Result.bind acc (fun acc ->
              match String.split_on_char ':' hop with
              | [ name; fraction ] ->
                Result.bind (resolve_router g name) (fun nh ->
                    match float_of_string_opt fraction with
                    | Some f -> Ok ((nh, f) :: acc)
                    | None -> Error (Printf.sprintf "bad fraction %S" fraction))
              | _ -> Error (Printf.sprintf "bad split element %S" hop))
        in
        Result.map
          (fun hops -> (router, List.rev hops))
          (List.fold_left parse_hop (Ok []) (String.split_on_char ',' hops)))
  | _ -> Error (Printf.sprintf "bad requirement %S (expected ROUTER=NH:F,...)" spec)

let steer_cmd =
  let run topo prefix splits max_entries =
    with_network topo prefix (fun net graph _ ->
        let names = Netgraph.Graph.name graph in
        let parsed =
          List.fold_left
            (fun acc spec ->
              Result.bind acc (fun acc ->
                  Result.map (fun s -> s :: acc) (parse_split graph spec)))
            (Ok []) splits
        in
        match parsed with
        | Error msg -> prerr_endline msg; 1
        | Ok [] -> prerr_endline "no --split given"; 1
        | Ok assocs ->
          let reqs = Fibbing.Requirements.make ~prefix (List.rev assocs) in
          (match Fibbing.Augmentation.compile ~max_entries net reqs with
          | Error e ->
            Format.printf "compilation failed: %s@." e;
            1
          | Ok plan ->
            Fibbing.Augmentation.apply net plan;
            Format.printf "injected %d fake LSAs:@." (Fibbing.Augmentation.fake_count plan);
            List.iter
              (fun fake -> Format.printf "  %a@." (Igp.Lsa.pp ~names) (Fake fake))
              plan.fakes;
            Format.printf "@.resulting FIBs:@.";
            List.iter
              (fun (_, fib) -> Format.printf "  %a@." (Igp.Fib.pp ~names) fib)
              (Igp.Network.fibs net prefix);
            let cost = Igp.Network.control_cost net in
            Format.printf "@.control cost: %d messages, %d rounds@." cost.messages
              cost.rounds;
            0))
  in
  let max_entries =
    Arg.(value & opt int 16 & info [ "max-entries" ] ~docv:"N"
           ~doc:"FIB width budget per router.")
  in
  let doc = "Compile a forwarding requirement into fake LSAs and inject it." in
  Cmd.v (Cmd.info "steer" ~doc)
    Term.(const run $ topology_arg $ prefix_arg $ split_arg $ max_entries)

(* ---------- demo ---------- *)

let demo_cmd =
  let run fibbing_off until step csv =
    let d = Scenarios.Demo.make ~fibbing:(not fibbing_off) () in
    let flows = Scenarios.Demo.load_fig2_workload d in
    Scenarios.Demo.run d ~until;
    if csv then begin
      print_string (Kit.Timeseries.to_csv ~step (Scenarios.Demo.fig2_series d));
      exit 0
    end;
    Format.printf "%a@." (Kit.Timeseries.pp_rows ~step) (Scenarios.Demo.fig2_series d);
    (match d.controller with
    | Some c ->
      List.iter
        (fun (a : Fibbing.Controller.action) ->
          Format.printf "[%5.1f s] %s (fakes: %d)@." a.time a.description
            a.fakes_installed)
        (Fibbing.Controller.actions c)
    | None -> ());
    Format.printf "QoE: %a@." Video.Qoe.pp (Scenarios.Demo.qoe d ~flows);
    0
  in
  let off =
    Arg.(value & flag & info [ "no-fibbing" ] ~doc:"Disable the controller (baseline run).")
  in
  let until =
    Arg.(value & opt float 55. & info [ "until" ] ~docv:"SECONDS" ~doc:"Simulated horizon.")
  in
  let step =
    Arg.(value & opt float 2.5 & info [ "step" ] ~docv:"SECONDS" ~doc:"Reporting step.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the series as CSV and exit.")
  in
  let doc = "Run the paper's flash-crowd demo (Fig. 2)." in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ off $ until $ step $ csv)

(* ---------- trace / metrics (telemetry) ---------- *)

(* Run the Fig. 2 demo with telemetry enabled and the Obs clock bound to
   simulated time, so two identical runs stamp byte-identical timelines. *)
let traced_demo ~fibbing ~until =
  let d = Scenarios.Demo.make ~fibbing () in
  Obs.reset ();
  Obs.enable ();
  Obs.Clock.set_source (fun () -> Netsim.Sim.time d.sim);
  (* The watchdog rides along so its counters and histograms land in the
     exported registry (metrics --prom); the demo is safe, so this is
     pure observation. *)
  ignore (Netsim.Watchdog.arm d.sim);
  ignore (Scenarios.Demo.load_fig2_workload d);
  Scenarios.Demo.run d ~until;
  Obs.disable ();
  Obs.Clock.use_cpu_time ();
  d

let fibbing_off_arg =
  Arg.(value & flag & info [ "no-fibbing" ] ~doc:"Disable the controller (baseline run).")

let until_arg =
  Arg.(value & opt float 55. & info [ "until" ] ~docv:"SECONDS" ~doc:"Simulated horizon.")

let prof_arg =
  Arg.(value & flag & info [ "prof" ]
         ~doc:"Also profile allocation: spans carry Gc.quick_stat deltas \
               (words allocated, collections) and the *.alloc_words \
               counters accumulate. Off by default because GC deltas are \
               not replayable byte-for-byte.")

let trace_cmd =
  let run fibbing_off until json spans chrome prof =
    if prof then Obs.Prof.enable ();
    ignore (traced_demo ~fibbing:(not fibbing_off) ~until);
    Obs.Prof.disable ();
    (* Machine-readable modes own stdout; anything human-facing would
       go to stderr (there is none on the happy path). *)
    if chrome then print_string (Obs.Export.chrome_trace_live ())
    else if spans then Format.printf "%a" Obs.Trace.pp_tree ()
    else if json then print_string (Obs.Timeline.to_json_lines ())
    else Format.printf "%a" (Obs.Timeline.pp_table ?include_spans:None) ();
    0
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the timeline as JSON lines.")
  in
  let spans =
    Arg.(value & flag & info [ "spans" ]
           ~doc:"Print the span tree instead of the merged timeline.")
  in
  let chrome =
    Arg.(value & flag & info [ "chrome" ]
           ~doc:"Emit Chrome trace-event JSON (open in Perfetto or \
                 chrome://tracing): spans as complete events nested per \
                 domain, timeline events as instants.")
  in
  let doc =
    "Run the Fig. 2 demo with telemetry on and print the scenario \
     timeline: monitor polls and alarms, controller reactions, SPF \
     recompute spans — one causally ordered stream, replayable \
     (identical runs emit identical output)."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ fibbing_off_arg $ until_arg $ json $ spans $ chrome $ prof_arg)

let metrics_cmd =
  let run fibbing_off until json prom prof =
    if prof then Obs.Prof.enable ();
    ignore (traced_demo ~fibbing:(not fibbing_off) ~until);
    Obs.Prof.disable ();
    if prom then print_string (Obs.Export.open_metrics ())
    else if json then print_string (Obs.Metrics.to_json_lines ())
    else Format.printf "%a" Obs.Metrics.pp_table ();
    0
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit metrics as JSON lines.")
  in
  let prom =
    Arg.(value & flag & info [ "prom" ]
           ~doc:"Emit OpenMetrics text exposition (counters, gauges, \
                 histograms with explicit bucket bounds).")
  in
  let doc =
    "Run the Fig. 2 demo with telemetry on and dump the metrics \
     registry (counters, gauges, histogram percentiles)."
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(const run $ fibbing_off_arg $ until_arg $ json $ prom $ prof_arg)

(* ---------- optimize ---------- *)

let optimize_cmd =
  let run topo prefix sources demand capacity max_entries =
    with_network topo prefix (fun net graph announcer ->
        let srcs =
          List.fold_left
            (fun acc name ->
              Result.bind acc (fun acc ->
                  Result.map (fun v -> v :: acc) (resolve_router graph name)))
            (Ok []) sources
        in
        match srcs with
        | Error msg -> prerr_endline msg; 1
        | Ok [] -> prerr_endline "no --from given"; 1
        | Ok srcs ->
          let commodities =
            List.map
              (fun src -> { Te.Mcf.src; dst = announcer; prefix; demand })
              srcs
          in
          let result =
            Te.Mcf.solve ~epsilon:0.1 graph ~capacities:(fun _ -> capacity) commodities
          in
          Format.printf "optimal min-max utilization: %.3f (lambda %.2f)@."
            (Te.Mcf.max_utilization graph ~capacities:(fun _ -> capacity) result)
            result.lambda;
          let reqs =
            Te.Decompose.to_requirements net ~prefix (List.assoc prefix result.flows)
          in
          Format.printf "routers needing lies: %d@." (List.length reqs.routers);
          (match Fibbing.Augmentation.compile ~max_entries net reqs with
          | Error e -> Format.printf "compilation failed: %s@." e; 1
          | Ok plan ->
            let plan = Fibbing.Merger.minimize net reqs plan in
            Fibbing.Augmentation.apply net plan;
            let demands =
              List.map
                (fun src -> { Netsim.Loadmap.src; prefix; amount = demand })
                srcs
            in
            let loads = Netsim.Loadmap.propagate net demands in
            let caps = Netsim.Link.capacities ~default:capacity in
            (match Netsim.Loadmap.max_utilization loads caps with
            | Some (link, u) ->
              Format.printf "realized with %d fakes: max util %.3f on %s@."
                (Fibbing.Augmentation.fake_count plan)
                u
                (Netsim.Link.name graph link)
            | None -> ());
            0))
  in
  let sources =
    Arg.(value & opt_all string [] & info [ "from" ] ~docv:"ROUTER"
           ~doc:"Ingress router of a 1-commodity surge. Repeatable.")
  in
  let demand =
    Arg.(value & opt float 120. & info [ "demand" ] ~docv:"UNITS" ~doc:"Demand per ingress.")
  in
  let capacity =
    Arg.(value & opt float 100. & info [ "capacity" ] ~docv:"UNITS" ~doc:"Uniform link capacity.")
  in
  let max_entries =
    Arg.(value & opt int 16 & info [ "max-entries" ] ~docv:"N" ~doc:"FIB width budget.")
  in
  let doc = "Compute and realize the optimal min-max TE for a surge." in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(const run $ topology_arg $ prefix_arg $ sources $ demand $ capacity $ max_entries)

(* ---------- failover ---------- *)

let failover_cmd =
  let run fibbing_off fail_at =
    let d = Scenarios.Demo.make ~fibbing:(not fibbing_off) () in
    for i = 0 to 30 do
      Netsim.Sim.add_flow d.sim
        (Netsim.Flow.make ~id:i ~src:d.topology.a ~prefix:Scenarios.Demo.prefix
           ~demand:Scenarios.Demo.stream_rate ())
    done;
    Netsim.Sim.fail_link d.sim ~time:fail_at (d.topology.b, d.topology.r2);
    Scenarios.Demo.run d ~until:(fail_at +. 25.);
    Format.printf "%a@."
      (Kit.Timeseries.pp_rows ~step:2.5)
      (Scenarios.Demo.fig2_series d);
    (match d.controller with
    | Some c ->
      List.iter
        (fun (a : Fibbing.Controller.action) ->
          Format.printf "[%5.1f s] %s@." a.time a.description)
        (Fibbing.Controller.actions c)
    | None -> ());
    Format.printf "unroutable flows at the end: %d@."
      (List.length (Netsim.Sim.unroutable_flows d.sim));
    0
  in
  let off =
    Arg.(value & flag & info [ "no-fibbing" ] ~doc:"Disable the controller.")
  in
  let fail_at =
    Arg.(value & opt float 25. & info [ "fail-at" ] ~docv:"SECONDS"
           ~doc:"When the B-R2 link dies.")
  in
  let doc = "31 streams from A, then the B-R2 link fails under load." in
  Cmd.v (Cmd.info "failover" ~doc) Term.(const run $ off $ fail_at)

(* ---------- convergence ---------- *)

let convergence_cmd =
  let run topo prefix router_name weight =
    with_network topo prefix (fun net graph announcer ->
        ignore announcer;
        match resolve_router graph router_name with
        | Error msg -> prerr_endline msg; 1
        | Ok router ->
          (* Scale every adjacent weight of [router] and replay the
             reconvergence; then compare with a Fibbing equal-cost lie
             towards one loop-free alternate, if any. *)
          let after = Igp.Network.clone net in
          List.iter
            (fun (v, w) ->
              Igp.Network.set_weight after router v ~weight:(w * weight);
              Igp.Network.set_weight after v router ~weight:(w * weight))
            (Netgraph.Graph.succ graph router);
          let report =
            Igp.Convergence.analyze ~before:net ~after ~origin:router ~prefix ()
          in
          Format.printf
            "weight x%d at %s: %d routers change, %d unsafe states, %.3f s \
             unsafe window%s@."
            weight
            (Netgraph.Graph.name graph router)
            report.states report.unsafe_states report.unsafe_window
            (match report.first_problem with
            | Some (t, problem) -> Printf.sprintf " (first at %.3f s: %s)" t problem
            | None -> "");
          0)
  in
  let router =
    Arg.(value & opt string "A" & info [ "router" ] ~docv:"NAME"
           ~doc:"Router whose links degrade.")
  in
  let weight =
    Arg.(value & opt int 10 & info [ "factor" ] ~docv:"N"
           ~doc:"Weight multiplier applied to the router's links.")
  in
  let doc = "Replay an IGP reconvergence and report micro-loop exposure." in
  Cmd.v (Cmd.info "convergence" ~doc)
    Term.(const run $ topology_arg $ prefix_arg $ router $ weight)

(* ---------- plan (what-if planning) ---------- *)

let plan_cmd =
  let run topo prefix sources demand capacity =
    with_network topo prefix (fun net graph _ ->
        let srcs =
          List.fold_left
            (fun acc name ->
              Result.bind acc (fun acc ->
                  Result.map (fun v -> v :: acc) (resolve_router graph name)))
            (Ok []) sources
        in
        match srcs with
        | Error msg -> prerr_endline msg; 1
        | Ok [] -> prerr_endline "no --from given"; 1
        | Ok srcs ->
          let demands =
            List.map
              (fun src -> { Netsim.Loadmap.src; prefix; amount = demand })
              srcs
          in
          let entries =
            Te.Planner.prepare net ~demands ~capacity
              ~scenarios:(Te.Planner.single_link_failures graph)
          in
          Format.printf "%-28s %10s %10s %10s %8s@." "scenario" "IGP util"
            "planned" "optimal" "fakes";
          List.iter
            (fun (e : Te.Planner.entry) ->
              Format.printf "%-28s %10.2f %10.2f %10.2f %8s@."
                (Format.asprintf "%a" (Te.Planner.pp_scenario graph) e.scenario)
                e.igp_utilization e.planned_utilization e.optimal_utilization
                (match e.plan with
                | Some plan -> string_of_int (Fibbing.Augmentation.fake_count plan)
                | None -> "-"))
            entries;
          let worst = Te.Planner.worst_case entries in
          Format.printf "worst case with plans: %.2f (%a)@."
            worst.planned_utilization
            (Te.Planner.pp_scenario graph)
            worst.scenario;
          0)
  in
  let sources =
    Arg.(value & opt_all string [] & info [ "from" ] ~docv:"ROUTER"
           ~doc:"Ingress of one demand. Repeatable.")
  in
  let demand =
    Arg.(value & opt float 100. & info [ "demand" ] ~docv:"UNITS" ~doc:"Demand per ingress.")
  in
  let capacity =
    Arg.(value & opt float 100. & info [ "capacity" ] ~docv:"UNITS" ~doc:"Uniform link capacity.")
  in
  let doc = "Precompute Fibbing plans for every single-link-failure scenario." in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(const run $ topology_arg $ prefix_arg $ sources $ demand $ capacity)

(* ---------- run (scenario scripts) ---------- *)

let run_cmd =
  let run path =
    match open_in path with
    | exception Sys_error message -> prerr_endline message; 1
    | ic ->
      let length = in_channel_length ic in
      let text = really_input_string ic length in
      close_in ic;
      (match Scenarios.Script.run_string text with
      | Ok () -> 0
      | Error message -> prerr_endline message; 1)
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT"
           ~doc:"Scenario script (see examples/demo.fib).")
  in
  let doc = "Execute a scenario script." in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ path)

(* ---------- flood ---------- *)

let flood_cmd =
  let run flows until no_agg domains =
    apply_domains domains;
    let d = Scenarios.Demo.make ~fibbing:true ~aggregation:(not no_agg) () in
    let prng = Kit.Prng.create ~seed:11 in
    let spec src =
      {
        Video.Workload.src;
        prefix = Scenarios.Demo.prefix;
        rate = Scenarios.Demo.stream_rate;
        video_duration = 3600.;
      }
    in
    let crowd =
      Video.Workload.crowd prng ~jitter:2.
        [ spec d.topology.a; spec d.topology.b ]
        ~first_id:0 ~count:flows ~at:0.
    in
    List.iter (Netsim.Sim.add_flow d.sim) crowd;
    let t0 = Sys.time () in
    Scenarios.Demo.run d ~until;
    let cpu = Sys.time () -. t0 in
    let sim = d.sim in
    let steps = until /. d.dt in
    Format.printf
      "flows: %d active of %d scheduled, %d classes, %d unroutable@."
      (List.length (Netsim.Sim.active_flows sim))
      flows
      (Netsim.Sim.flow_classes sim)
      (List.length (Netsim.Sim.unroutable_flows sim));
    Format.printf "cpu: %.3f s over %.0f steps (%.3f ms/step)@." cpu steps
      (1000. *. cpu /. steps);
    let g = Igp.Network.graph d.net in
    List.iter
      (fun (link, rate) ->
        Format.printf "  %-8s %12.0f B/s  %5.1f%%@."
          (Netsim.Link.name g link) rate
          (100. *. rate /. Netsim.Link.capacity d.caps link))
      (Netsim.Sim.current_link_rates sim);
    (match d.controller with
    | Some c ->
      List.iter
        (fun (a : Fibbing.Controller.action) ->
          Format.printf "[%5.1f s] %s (fakes: %d)@." a.time a.description
            a.fakes_installed)
        (Fibbing.Controller.actions c)
    | None -> ());
    0
  in
  let flows =
    Arg.(value & opt int 2000 & info [ "flows" ] ~docv:"N"
           ~doc:"Number of concurrent streams to surge (split across the \
                 demo's two video servers).")
  in
  let until =
    Arg.(value & opt float 12. & info [ "until" ] ~docv:"SECONDS"
           ~doc:"Simulated horizon.")
  in
  let no_agg =
    Arg.(value & flag & info [ "no-aggregation" ]
           ~doc:"Allocate per flow instead of per flow class (the \
                 pre-aggregation engine; slow beyond a few thousand \
                 streams).")
  in
  let doc =
    "Drive a bulk flash crowd through the demo network: thousands of \
     identical streams collapse into a handful of weighted flow classes \
     (src, prefix, demand, hashed path), so a step costs the number of \
     classes, not the number of streams."
  in
  Cmd.v (Cmd.info "flood" ~doc)
    Term.(const run $ flows $ until $ no_agg $ domains_arg)

(* ---------- chaos ---------- *)

let chaos_cmd =
  let run seed until faults trace json seeds domains watchdog =
    apply_domains domains;
    if seeds <= 1 then begin
      Obs.reset ();
      if trace || json then Obs.enable ();
      let v = Scenarios.Chaos.run ~faults ~watchdog ~seed ~until () in
      Obs.disable ();
      Obs.Clock.use_cpu_time ();
      if json then begin
        print_string (Obs.Timeline.to_json_lines ());
        Format.eprintf "%a@." Scenarios.Chaos.pp v
      end
      else begin
        if trace then Format.printf "%a@." (Obs.Timeline.pp_table ?include_spans:None) ();
        Format.printf "%a@." Scenarios.Chaos.pp v
      end;
      if Scenarios.Chaos.ok v then 0 else 1
    end
    else begin
      (* Sweep mode: seeds [seed, seed + seeds), one scenario per
         domain. Timelines (--json) are per-run captures, so output is
         identical at any --domains. *)
      Obs.reset ();
      if json then Obs.enable ();
      let seed_list = List.init seeds (fun i -> seed + i) in
      let results =
        Scenarios.Chaos.sweep ~faults ~watchdog ~seeds:seed_list ~until ()
      in
      Obs.disable ();
      let failures = ref 0 in
      List.iter
        (fun ((v : Scenarios.Chaos.verdict), timeline) ->
          (match timeline with Some s when json -> print_string s | _ -> ());
          let okay = Scenarios.Chaos.ok v in
          if not okay then incr failures;
          let line = if json then Format.eprintf else Format.printf in
          line
            "seed %d: %s (reactions %d, fakes left %d, unroutable %d, \
             violations %d, quarantines %d)@."
            v.seed
            (if okay then "OK" else "FAILED")
            v.reactions v.fakes_left
            (List.length v.unroutable_at_end)
            (List.length v.violations)
            v.quarantines)
        results;
      let line = if json then Format.eprintf else Format.printf in
      line "%d/%d seeds OK@." (seeds - !failures) seeds;
      if !failures = 0 then 0 else 1
    end
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Fault-schedule seed; the whole run is deterministic in it.")
  in
  let seeds =
    Arg.(value & opt int 1 & info [ "seeds" ] ~docv:"COUNT"
           ~doc:"Sweep COUNT consecutive seeds starting at --seed, one \
                 scenario per worker domain. Exit status 1 if any seed \
                 fails. With --json, each run's captured timeline is \
                 printed in seed order (verdict lines go to stderr).")
  in
  let until =
    Arg.(value & opt float 30. & info [ "until" ] ~docv:"SECONDS"
           ~doc:"Fault horizon: every fault heals by this time; the run \
                 continues through a fixed quiescence tail afterwards.")
  in
  let faults =
    Arg.(value & opt int 4 & info [ "faults" ] ~docv:"N"
           ~doc:"Number of fault episodes to draw.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Also print the merged scenario timeline (faults, monitor, \
                 controller, lie expiries).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the timeline as JSON lines on stdout (verdict goes \
                 to stderr).")
  in
  let watchdog =
    Arg.(value & opt bool true & info [ "watchdog" ] ~docv:"BOOL"
           ~doc:"Arm the runtime safety watchdog: per-step loop and \
                 blackhole freedom for every prefix, lie budget, \
                 freshness and anchoring, per-link utilization bound. \
                 Any violation at any step fails the run. Default true.")
  in
  let doc =
    "Run the demo network under a random seeded fault schedule (link \
     flaps, router crashes, partitions, lossy and delayed flooding, \
     monitor blackouts and corrupted telemetry, controller \
     crash/restart) and verify it converges back to the fault-free \
     pure-IGP state — topology restored, zero fakes left, FIBs equal to \
     a from-scratch computation, nothing unroutable — with zero runtime \
     safety violations at every step along the way. Exit status 1 when \
     the invariant fails."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ seed $ until $ faults $ trace $ json $ seeds
          $ domains_arg $ watchdog)

(* ---------- topo ---------- *)

let topo_cmd =
  let run topo dot =
    match parse_topology topo with
    | `Error (_, msg) -> prerr_endline msg; 1
    | `Ok (graph, announcer) ->
      if dot then print_string (Netgraph.Dot.of_graph graph)
      else begin
        Format.printf "%d routers, %d links; prefix announcer: %s@."
          (Netgraph.Graph.node_count graph)
          (Netgraph.Graph.edge_count graph / 2)
          (Netgraph.Graph.name graph announcer);
        Format.printf "%a" Netgraph.Graph.pp graph
      end;
      0
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of text.")
  in
  let doc = "Print a built-in topology." in
  Cmd.v (Cmd.info "topo" ~doc) Term.(const run $ topology_arg $ dot)

let () =
  let doc = "Fibbing: on-demand load balancing by lying to link-state routers" in
  let info = Cmd.info "fibbingctl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            routes_cmd;
            steer_cmd;
            demo_cmd;
            trace_cmd;
            metrics_cmd;
            optimize_cmd;
            topo_cmd;
            failover_cmd;
            convergence_cmd;
            run_cmd;
            plan_cmd;
            chaos_cmd;
            flood_cmd;
          ]))
