let pfx = Igp.Prefix.v
(* Traffic-engineering shoot-out on a random ISP-like topology:

     - plain IGP/ECMP (no reaction at all),
     - IGP link-weight re-optimization (Fortz-Thorup local search),
     - MPLS RSVP-TE tunnels,
     - Fibbing realizing the (1-eps)-optimal min-max flow.

   For each scheme: the max link utilization it reaches and what it
   costs in control messages / state / reconfigured devices — the
   quantitative version of the paper's Section 2 argument.

   Run with: dune exec examples/te_comparison.exe *)

module G = Netgraph.Graph

let () =
  let prng = Kit.Prng.create ~seed:2016 in
  let g = Netgraph.Topologies.two_level prng ~core:8 ~edge_per_core:2 in
  let n = G.node_count g in
  Format.printf "Two-level topology: %d routers, %d links.@." n (G.edge_count g / 2);

  (* The flash crowd: three edge routers send a surge towards one
     content prefix. *)
  let egress = G.find_node_exn g "C0" in
  let sources = [ "E3_0"; "E4_1"; "E5_0" ] in
  let demand_each = 120. in
  let capacity = 100. in
  let caps = Netsim.Link.capacities ~default:capacity in
  let prefix = pfx "cdn" in

  let fresh_net () =
    let net = Igp.Network.create (G.copy g) in
    Igp.Network.announce_prefix net prefix ~origin:egress ~cost:0;
    net
  in
  let demands net =
    List.map
      (fun name ->
        {
          Netsim.Loadmap.src = G.find_node_exn (Igp.Network.graph net) name;
          prefix;
          amount = demand_each;
        })
      sources
  in
  let max_util net =
    let loads = Netsim.Loadmap.propagate net (demands net) in
    match Netsim.Loadmap.max_utilization loads caps with
    | Some (_, u) -> u
    | None -> 0.
  in

  Format.printf "@.%-22s %10s %12s %14s@." "scheme" "max util" "ctrl msgs"
    "router state";

  (* 1. Plain IGP/ECMP. *)
  let net_igp = fresh_net () in
  Format.printf "%-22s %10.2f %12d %14d@." "IGP/ECMP (static)" (max_util net_igp) 0 0;

  (* 2. Weight re-optimization. *)
  let net_w = fresh_net () in
  let outcome = Te.Weightopt.optimize ~max_rounds:3 net_w (demands net_w) caps in
  let wcost = Te.Weightopt.apply_cost net_w outcome in
  Format.printf "%-22s %10.2f %12d %14s@." "weight re-opt"
    outcome.max_utilization wcost.messages
    (Printf.sprintf "%d weights" (List.length outcome.changed_weights));

  (* 3. MPLS RSVP-TE: one tunnel per source, sized to the demand; the
     head end splits across parallel tunnels where one does not fit. *)
  let net_m = fresh_net () in
  let gm = Igp.Network.graph net_m in
  let tunnels = Mpls.Tunnels.create gm caps in
  let mpls_ok =
    List.for_all
      (fun name ->
        let head = G.find_node_exn gm name in
        (* demand 120 > capacity 100: needs two tunnels of 60. *)
        List.for_all Result.is_ok
          [
            Mpls.Tunnels.establish tunnels ~head ~tail:egress
              ~bandwidth:(demand_each /. 2.);
            Mpls.Tunnels.establish tunnels ~head ~tail:egress
              ~bandwidth:(demand_each /. 2.);
          ])
      sources
  in
  let refresh = Mpls.Tunnels.refresh_messages tunnels ~period:30. ~duration:3600. in
  Format.printf "%-22s %10s %12d %14d@."
    (if mpls_ok then "MPLS RSVP-TE" else "MPLS RSVP-TE (part.)")
    "<= 1.00"
    (Mpls.Tunnels.signaling_messages tunnels + refresh)
    (Mpls.Tunnels.total_state tunnels);

  (* 4. Fibbing: optimal min-max flow, decomposed and compiled. *)
  let net_f = fresh_net () in
  let gf = Igp.Network.graph net_f in
  let commodities =
    List.map
      (fun name ->
        {
          Te.Mcf.src = G.find_node_exn gf name;
          dst = egress;
          prefix;
          demand = demand_each;
        })
      sources
  in
  let result = Te.Mcf.solve ~epsilon:0.1 gf ~capacities:(fun _ -> capacity) commodities in
  let reqs =
    Te.Decompose.to_requirements net_f ~prefix (List.assoc prefix result.flows)
  in
  (match Fibbing.Augmentation.compile ~max_entries:16 net_f reqs with
  | Error e -> Format.printf "%-22s failed: %s@." "Fibbing" e
  | Ok plan ->
    let plan = Fibbing.Merger.minimize net_f reqs plan in
    Fibbing.Augmentation.apply net_f plan;
    Format.printf "%-22s %10.2f %12d %14s@." "Fibbing (opt min-max)"
      (max_util net_f)
      (Igp.Network.control_cost net_f).messages
      (Printf.sprintf "%d fake LSAs" (Fibbing.Augmentation.fake_count plan)));

  Format.printf
    "@.Fibbing reaches (near-)optimal utilization for a one-shot flood of@.\
     a few fake LSAs: no weight changes, no per-tunnel state, no refresh@.\
     traffic. MPLS respects capacities too, but pays per-router state and@.\
     continuous soft-state refreshes; weight re-optimization touches many@.\
     devices and shifts unrelated traffic (the paper's Section 2).@.";
  Format.printf "(min-max optimum for this surge: %.2f at lambda=%.2f)@."
    (Te.Mcf.max_utilization gf ~capacities:(fun _ -> capacity) result)
    result.lambda
