let pfx = Igp.Prefix.v
(* Uneven load-balancing with stock ECMP hardware: how Fibbing encodes
   fractional ratios as fake-route multiplicities, and what precision a
   given FIB width buys.

   Run with: dune exec examples/uneven_split.exe *)

let () =
  let d = Netgraph.Topologies.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  let names = Netgraph.Graph.name d.graph in

  let desired = [ (d.r2, 0.28); (d.r3, 0.72) ] in
  Format.printf "Desired split at B: %s@."
    (String.concat ", "
       (List.map (fun (nh, f) -> Printf.sprintf "%s=%.2f" (names nh) f) desired));

  (* How the approximation improves with the FIB width budget. *)
  Format.printf "@.%8s %14s %18s %11s@." "entries" "multiplicities"
    "realized fractions" "max error";
  let splits =
    List.map
      (fun (next_hop, fraction) -> { Fibbing.Requirements.next_hop; fraction })
      desired
  in
  List.iter
    (fun max_entries ->
      let weighted = Fibbing.Splitting.multiplicities ~max_entries splits in
      let realized = Fibbing.Splitting.realized_fractions weighted in
      let error = Fibbing.Splitting.approximation_error splits weighted in
      Format.printf "%8d %14s %18s %11.4f@." max_entries
        (String.concat ":" (List.map (fun (_, m) -> string_of_int m) weighted))
        (String.concat "/"
           (List.map (fun (_, f) -> Printf.sprintf "%.3f" f) realized))
        error)
    [ 2; 4; 8; 16; 32 ];

  (* Install the 16-entry version and measure what actually happens to
     fluid traffic. *)
  let reqs = { Fibbing.Requirements.prefix = pfx "blue"; routers = [ { router = d.b; splits } ] } in
  match Fibbing.Augmentation.compile ~max_entries:16 net reqs with
  | Error e -> Format.printf "compilation failed: %s@." e
  | Ok plan ->
    Fibbing.Augmentation.apply net plan;
    Format.printf "@.Installed %d fake LSAs at B (cost %d each).@."
      (Fibbing.Augmentation.fake_count plan)
      (List.assoc d.b plan.costs);
    let loads =
      Netsim.Loadmap.propagate net
        [ { src = d.b; prefix = pfx "blue"; amount = 1000. } ]
    in
    Format.printf "Fluid load for 1000 units entering at B:@.";
    Format.printf "%a"
      (fun fmt -> Netsim.Loadmap.pp d.graph fmt)
      loads;
    (* And the per-flow view: hashing 1000 flows approximates the same
       ratio without any per-flow state in the network. *)
    let fib = Option.get (Igp.Network.fib net ~router:d.b (pfx "blue")) in
    let to_r3 = ref 0 in
    let flows = 1000 in
    for flow_id = 0 to flows - 1 do
      match Netsim.Hashing.select ~flow_id ~router:d.b fib with
      | Some nh when nh = d.r3 -> incr to_r3
      | Some _ | None -> ()
    done;
    Format.printf "Of %d hashed flows, %.1f%% chose R3 (target 72%%).@." flows
      (100. *. float_of_int !to_r3 /. float_of_int flows)
