let pfx = Igp.Prefix.v
(* Quickstart: build the paper's network, look at the IGP's routes,
   state a forwarding requirement, and let Fibbing compile and inject
   the fake LSAs that realize it.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. The topology of the paper's Fig. 1a, with the blue prefix
     announced by router C. *)
  let d = Netgraph.Topologies.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;

  let names = Netgraph.Graph.name d.graph in
  let show_fibs header =
    Format.printf "@.%s@." header;
    List.iter
      (fun (_, fib) -> Format.printf "  %a@." (Igp.Fib.pp ~names) fib)
      (Igp.Network.fibs net (pfx "blue"))
  in
  show_fibs "IGP routes to 'blue' (plain OSPF, Fig. 1a):";

  (* 2. Say what we want: B should split evenly over R2 and R3, and A
     should send 1/3 via B and 2/3 via R1 (the paper's Fig. 1d). *)
  let reqs =
    Fibbing.Requirements.make ~prefix:(pfx "blue")
      [
        (d.b, [ (d.r2, 0.5); (d.r3, 0.5) ]);
        (d.a, [ (d.b, 1. /. 3.); (d.r1, 2. /. 3.) ]);
      ]
  in
  Format.printf "@.Requirements:@.  %a" (Fibbing.Requirements.pp ~names) reqs;
  let baseline = Fibbing.Verify.snapshot net (pfx "blue") in

  (* 3. Compile to fake LSAs. [compile] verifies the candidate plan on a
     clone of the network before returning it. *)
  (match Fibbing.Augmentation.compile ~max_entries:4 net reqs with
  | Error e -> Format.printf "compilation failed: %s@." e
  | Ok plan ->
    Format.printf "@.Compiled plan (%d fake LSAs, mode %s):@."
      (Fibbing.Augmentation.fake_count plan)
      (match plan.mode with
      | Extension -> "extension"
      | Override -> "override"
      | Hybrid -> "hybrid");
    List.iter
      (fun fake -> Format.printf "  %a@." (Igp.Lsa.pp ~names) (Fake fake))
      plan.fakes;

    (* 4. Inject. Every router recomputes SPF on the augmented topology. *)
    Fibbing.Augmentation.apply net plan;
    show_fibs "Routes after Fibbing (Fig. 1c/1d):";

    (* 5. The whole-network verification that the controller also runs. *)
    let report =
      Fibbing.Verify.check net ~prefix:(pfx "blue") ~expected:plan.expected ~baseline
    in
    Format.printf "@.Verification: %s@."
      (if report.ok then "every FIB is exactly as required" else "FAILED");

    (* 6. What did the lie cost? A handful of LSA floods. *)
    let cost = Igp.Network.control_cost net in
    Format.printf "Control-plane cost: %d LSA messages, %d flooding rounds@."
      cost.messages cost.rounds)
