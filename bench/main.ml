let pfx = Igp.Prefix.v
(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's experiment index) and runs Bechamel timings for the
   computational pieces.

     dune exec bench/main.exe            — all experiment sections + timings
     dune exec bench/main.exe -- quick   — skip the Bechamel timings
     dune exec bench/main.exe -- flow-quick — only TFLOW, reduced scale
     dune exec bench/main.exe -- par-quick  — only TPAR, reduced scale
     dune exec bench/main.exe -- watch-quick — only TWATCH (watchdog
                                           overhead + non-interference gate)
     dune exec bench/main.exe -- par     — only TPAR, full scale
     dune exec bench/main.exe -- spf     — only TSPF
     dune exec bench/main.exe -- json    — also write BENCH_*.json
     dune exec bench/main.exe -- domains=N  — pin the worker-pool width
     dune exec bench/main.exe -- prof [--history FILE --tag SHA]
                                         — TPROF allocation tracks, and
                                           append one history row per track
     dune exec bench/main.exe -- prof-quick — TPROF only, reduced scale
     dune exec bench/main.exe -- gate [--history FILE]
                                         — fail (exit 1) if the newest rows
                                           regress beyond the noise bands

   Experiment ids:
     F1A  Fig. 1a  IGP shortest paths
     F1B  Fig. 1b  overload without Fibbing (relative loads 100/200)
     F1C  Fig. 1c  fake-node augmentation (fB at 2, two fA at 3)
     F1D  Fig. 1d  uneven splits (loads ~33/67)
     F2   Fig. 2   throughput vs time on A-R1, B-R2, B-R3 (+ off run)
     TQOE §3       smooth vs stutter playback
     TOVH §2       control/data-plane overhead vs MPLS and weight re-opt
     TSCALE §1/§2  fake count, compile time, split error vs FIB width
     TOPT §2       Fibbing realizes the optimal min-max utilization *)

module G = Netgraph.Graph
module T = Netgraph.Topologies
module Demo = Scenarios.Demo

let section id title =
  Format.printf "@.==================================================================@.";
  Format.printf "%s — %s@." id title;
  Format.printf "==================================================================@."

let demo_net () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  (d, net)

let demo_requirements (d : T.demo) =
  Fibbing.Requirements.make ~prefix:(pfx "blue")
    [
      (d.b, [ (d.r2, 0.5); (d.r3, 0.5) ]);
      (d.a, [ (d.b, 1. /. 3.); (d.r1, 2. /. 3.) ]);
    ]

let demo_demands (d : T.demo) =
  [
    { Netsim.Loadmap.src = d.a; prefix = pfx "blue"; amount = 100. };
    { Netsim.Loadmap.src = d.b; prefix = pfx "blue"; amount = 100. };
  ]

(* ------------------------------------------------------------------ *)

let f1a () =
  section "F1A" "Fig. 1a: IGP shortest paths towards the blue prefix";
  let d, net = demo_net () in
  let names = G.name d.graph in
  Format.printf "%-8s %6s %-14s %s@." "router" "cost" "next hops" "shortest paths";
  List.iter
    (fun (router, fib) ->
      let paths =
        Netgraph.Paths.all_shortest d.graph ~source:router ~target:d.c
        |> List.map (Netgraph.Paths.to_string d.graph)
        |> String.concat ", "
      in
      Format.printf "%-8s %6d %-14s %s@." (names router) fib.Igp.Fib.distance
        (if fib.Igp.Fib.local then "local"
         else String.concat "," (List.map names (Igp.Fib.next_hops fib)))
        paths)
    (Igp.Network.fibs net (pfx "blue"));
  Format.printf
    "@.Paper check: A reaches blue via B at cost 3 (unique path),@.\
     B via R2 at cost 2 (unique) — the two flows overlap on B-R2-C.@."

let print_loads (d : T.demo) loads =
  Format.printf "%-8s %10s@." "link" "load";
  Format.printf "%a" (fun fmt -> Netsim.Loadmap.pp d.graph fmt) loads;
  match Netsim.Loadmap.max_load loads with
  | Some (link, l) ->
    Format.printf "max link load: %.1f on %s@." l (Netsim.Link.name d.graph link)
  | None -> ()

let f1b () =
  section "F1B" "Fig. 1b: data-plane load during the surge, no Fibbing";
  let d, net = demo_net () in
  Format.printf "Demands: 100 units S1@@A -> blue, 100 units S2@@B -> blue@.@.";
  let loads = Netsim.Loadmap.propagate net (demo_demands d) in
  print_loads d loads;
  Format.printf
    "@.Paper check: B-R2 and R2-C carry 200 (the figure's overload),@.\
     A's and B's flows pile up on the same shortest path.@."

let f1c () =
  section "F1C" "Fig. 1c: the fake nodes Fibbing injects";
  let d, net = demo_net () in
  let names = G.name d.graph in
  match Fibbing.Augmentation.compile ~max_entries:4 net (demo_requirements d) with
  | Error e -> Format.printf "compile failed: %s@." e
  | Ok plan ->
    Format.printf "Requirements: B -> {R2:1/2, R3:1/2}; A -> {B:1/3, R1:2/3}@.@.";
    List.iter
      (fun fake -> Format.printf "  %a@." (Igp.Lsa.pp ~names) (Fake fake))
      plan.fakes;
    Format.printf "@.fakes: %d (paper: 3 — one fB at cost 2, two fA at cost 3)@."
      (Fibbing.Augmentation.fake_count plan);
    List.iter
      (fun (router, cost) ->
        Format.printf "fake total cost at %s: %d@." (names router) cost)
      plan.costs

let f1d () =
  section "F1D" "Fig. 1d: data-plane load with the Fibbing augmentation";
  let d, net = demo_net () in
  (match Fibbing.Augmentation.compile ~max_entries:4 net (demo_requirements d) with
  | Error e -> Format.printf "compile failed: %s@." e
  | Ok plan -> Fibbing.Augmentation.apply net plan);
  let loads = Netsim.Loadmap.propagate net (demo_demands d) in
  print_loads d loads;
  Format.printf
    "@.Paper check: every used link carries ~66.7 (the figure's 66),@.\
     A-B carries ~33.3; max load drops from 200 to 66.7 while total@.\
     delivered traffic is unchanged.@."

let f2 () =
  section "F2" "Fig. 2: throughput over time on A-R1, B-R2, B-R3";
  Format.printf
    "Workload: 1 stream S1->D1 at t=0, +30 at t=15, +31 S2->D2 at t=35.@.";
  Format.printf "Stream rate %.0f B/s; bottleneck capacity %.0f B/s.@.@."
    Demo.stream_rate Demo.link_capacity;
  let d = Demo.make ~fibbing:true () in
  let flows = Demo.load_fig2_workload d in
  Demo.run d ~until:55.;
  Format.printf "— Fibbing controller ON (bytes/s):@.";
  Format.printf "%a@." (Kit.Timeseries.pp_rows ~step:2.5) (Demo.fig2_series d);
  (match d.controller with
  | Some c ->
    List.iter
      (fun (a : Fibbing.Controller.action) ->
        Format.printf "  action [%5.1f s] %s (fakes: %d)@." a.time a.description
          a.fakes_installed)
      (Fibbing.Controller.actions c)
  | None -> ());
  let off = Demo.make ~fibbing:false () in
  let flows_off = Demo.load_fig2_workload off in
  Demo.run off ~until:55.;
  Format.printf "@.— Controller OFF (baseline):@.";
  Format.printf "%a@." (Kit.Timeseries.pp_rows ~step:5.) (Demo.fig2_series off);
  Format.printf
    "Paper check: additional paths (B-R3, then A-R1) activate as load@.\
     rises; with the controller no plotted link exceeds its capacity@.\
     and total delivered throughput keeps growing.@.";
  (d, flows, off, flows_off)

let tqoe (d, flows, off, flows_off) =
  section "TQOE" "§3 claim: playback smooth with Fibbing, stutter without";
  let qon = Demo.qoe d ~flows in
  let qoff = Demo.qoe off ~flows:flows_off in
  Format.printf "%-18s %10s %10s %12s %12s %8s@." "scenario" "sessions" "smooth"
    "stalls" "stall-ratio" "MOS";
  let row name (q : Video.Qoe.summary) =
    Format.printf "%-18s %10d %10d %12d %12.3f %8.2f@." name q.sessions
      q.smooth_sessions q.total_stalls q.stall_ratio q.mos
  in
  row "fibbing ON" qon;
  row "fibbing OFF" qoff

let tovh () =
  section "TOVH" "§2: overhead of Fibbing vs MPLS RSVP-TE vs weight re-opt";
  let d, net = demo_net () in
  (match Fibbing.Augmentation.compile ~max_entries:4 net (demo_requirements d) with
  | Ok plan -> Fibbing.Augmentation.apply net plan
  | Error e -> Format.printf "compile failed: %s@." e);
  let fib_msgs = (Igp.Network.control_cost net).messages in
  let fib_fakes = List.length (Igp.Network.fakes net) in
  (* MPLS: three tunnels reproduce the same split; soft state refreshes
     every 30 s; data plane pays a 4 B label per 1500 B packet. *)
  let caps = Netsim.Link.capacities ~default:1000. in
  let tunnels = Mpls.Tunnels.create d.graph caps in
  List.iter
    (fun (head, tail) ->
      ignore (Mpls.Tunnels.establish tunnels ~head ~tail ~bandwidth:66.))
    [ (d.b, d.c); (d.b, d.c); (d.a, d.c) ];
  let mpls_setup = Mpls.Tunnels.signaling_messages tunnels in
  let mpls_refresh_1h =
    Mpls.Tunnels.refresh_messages tunnels ~period:30. ~duration:3600.
  in
  let mpls_state = Mpls.Tunnels.total_state tunnels in
  let encap =
    Mpls.Tunnels.encap_overhead_bytes tunnels ~packet_size:1500 ~label_bytes:4
      ~volume:(4e6 *. 3600.)
  in
  let scratch = Igp.Network.clone (snd (demo_net ())) in
  let outcome =
    Te.Weightopt.optimize scratch (demo_demands d)
      (Netsim.Link.capacities ~default:100.)
  in
  let wo_msgs = (Te.Weightopt.apply_cost scratch outcome).messages in
  (* OSPF re-originates LSAs every 30 min; count Fibbing's own
     soft-state cost over the same hour for fairness. *)
  let fib_refresh_1h =
    (Igp.Network.refresh_cost net ~period:1800. ~duration:3600.).messages
  in
  Format.printf "%-26s %14s %14s %16s@." "scheme" "ctrl msgs" "router state"
    "data-plane cost";
  Format.printf "%-26s %14d %14s %16s@." "Fibbing (3 lies, 1h)"
    (fib_msgs + fib_refresh_1h)
    (Printf.sprintf "%d LSAs" fib_fakes)
    "0 (no encap)";
  Format.printf "%-26s %14d %14d %16s@." "MPLS RSVP-TE (1h)"
    (mpls_setup + mpls_refresh_1h) mpls_state
    (Printf.sprintf "%.1f MB encap" (encap /. 1e6));
  Format.printf "%-26s %14d %14s %16s@." "IGP weight re-opt" wo_msgs
    (Printf.sprintf "%d weights" (List.length outcome.changed_weights))
    "0";
  Format.printf
    "@.Fibbing's messages are a handful of one-shot LSA floods; MPLS pays@.\
     per-tunnel signaling plus continuous refreshes and per-packet labels;@.\
     weight changes reconverge the whole IGP and move unrelated traffic@.\
     (max util after re-opt here: %.2f vs optimum %.2f).@."
    outcome.max_utilization (2. /. 3.)

let tscale_fib_width () =
  Format.printf "@.— splitting precision vs FIB width (max |realized - wanted|):@.";
  Format.printf "%8s %12s %12s %12s@." "entries" "0.50/0.50" "0.33/0.67" "0.28/0.72";
  let cases = [ [| 0.5; 0.5 |]; [| 1. /. 3.; 2. /. 3. |]; [| 0.28; 0.72 |] ] in
  List.iter
    (fun width ->
      let errors =
        List.map
          (fun fractions ->
            let m = Kit.Ratio.approximate ~max_total:width fractions in
            Kit.Ratio.max_error fractions m)
          cases
      in
      match errors with
      | [ a; b; c ] -> Format.printf "%8d %12.4f %12.4f %12.4f@." width a b c
      | _ -> ())
    [ 2; 3; 4; 8; 16; 32 ]

let surge_requirements net prefix egress sources demand capacity =
  let g = Igp.Network.graph net in
  let commodities =
    List.map (fun src -> { Te.Mcf.src; dst = egress; prefix; demand }) sources
  in
  let result =
    Te.Mcf.solve ~epsilon:0.1 g ~capacities:(fun _ -> capacity) commodities
  in
  Te.Decompose.to_requirements net ~prefix (List.assoc prefix result.flows)

let tscale () =
  section "TSCALE" "§1/§2: control-plane cost scaling with topology size";
  Format.printf
    "Scenario per size: 3-ingress flash crowd to one prefix; requirements@.\
     from the (1-eps)-optimal min-max flow; hybrid compilation + merger.@.@.";
  Format.printf "%8s %8s %10s %10s %12s %12s %12s@." "routers" "links" "fakes"
    "merged" "compile[ms]" "merge[ms]" "flood msgs";
  List.iter
    (fun core ->
      let prng = Kit.Prng.create ~seed:(42 + core) in
      let g = T.two_level prng ~core ~edge_per_core:2 in
      let net = Igp.Network.create g in
      let egress = G.find_node_exn g "C0" in
      Igp.Network.announce_prefix net (pfx "cdn") ~origin:egress ~cost:0;
      let sources =
        [
          G.find_node_exn g (Printf.sprintf "E%d_0" (core / 2));
          G.find_node_exn g (Printf.sprintf "E%d_1" (core / 2));
          G.find_node_exn g (Printf.sprintf "E%d_0" (core - 1));
        ]
      in
      let reqs = surge_requirements net (pfx "cdn") egress sources 120. 100. in
      let t0 = Sys.time () in
      match Fibbing.Augmentation.compile ~max_entries:8 net reqs with
      | Error e -> Format.printf "%8d compile failed: %s@." (G.node_count g) e
      | Ok plan ->
        let t1 = Sys.time () in
        let merged = Fibbing.Merger.minimize net reqs plan in
        let t2 = Sys.time () in
        Fibbing.Augmentation.apply net merged;
        Format.printf "%8d %8d %10d %10d %12.1f %12.1f %12d@." (G.node_count g)
          (G.edge_count g / 2)
          (Fibbing.Augmentation.fake_count plan)
          (Fibbing.Augmentation.fake_count merged)
          ((t1 -. t0) *. 1000.)
          ((t2 -. t1) *. 1000.)
          (Igp.Network.control_cost net).messages)
    [ 4; 6; 8; 10; 12 ];
  tscale_fib_width ();
  Format.printf
    "@.Paper check: the lie stays small (a few fakes per lied-to router,@.\
     sub-second compilation) — the \"very limited control-plane overhead\"@.\
     claim; wider FIBs buy split precision at the price of more fakes.@."

let topt () =
  section "TOPT" "§2: Fibbing implements the (near-)optimal min-max solution";
  Format.printf
    "Random 16-router topologies, 3-ingress surge of 120 units each,@.\
     100-unit links. Utilizations: plain IGP/ECMP, weight re-opt,@.\
     LP-optimal (FPTAS), and what Fibbing actually realizes.@.@.";
  Format.printf "%6s %10s %12s %11s %10s %12s %8s@." "seed" "IGP" "weight-opt"
    "oblivious" "optimal" "fibbing" "fakes";
  List.iter
    (fun seed ->
      let prng = Kit.Prng.create ~seed in
      let g = T.random prng ~n:16 ~extra_edges:16 ~max_weight:3 in
      let egress = 0 in
      let sources = [ 5; 10; 15 ] in
      let capacity = 100. in
      let caps = Netsim.Link.capacities ~default:capacity in
      let fresh () =
        let net = Igp.Network.create (G.copy g) in
        Igp.Network.announce_prefix net (pfx "cdn") ~origin:egress ~cost:0;
        net
      in
      let demands =
        List.map
          (fun src -> { Netsim.Loadmap.src; prefix = pfx "cdn"; amount = 120. })
          sources
      in
      let util net =
        match
          Netsim.Loadmap.max_utilization (Netsim.Loadmap.propagate net demands) caps
        with
        | Some (_, u) -> u
        | None -> 0.
      in
      let igp_util = util (fresh ()) in
      let wo_net = fresh () in
      let wo =
        (Te.Weightopt.optimize ~max_rounds:2 wo_net demands caps).max_utilization
      in
      let fib_net = fresh () in
      let commodities =
        List.map
          (fun src -> { Te.Mcf.src; dst = egress; prefix = pfx "cdn"; demand = 120. })
          sources
      in
      let oblivious =
        Te.Oblivious.max_utilization
          ~capacities:(fun _ -> capacity)
          (Te.Oblivious.spread ~k:3 (Igp.Network.graph fib_net) commodities)
      in
      let result =
        Te.Mcf.solve ~epsilon:0.1 (Igp.Network.graph fib_net)
          ~capacities:(fun _ -> capacity)
          commodities
      in
      let optimal =
        Te.Mcf.max_utilization (Igp.Network.graph fib_net)
          ~capacities:(fun _ -> capacity)
          result
      in
      let reqs =
        Te.Decompose.to_requirements fib_net ~prefix:(pfx "cdn")
          (List.assoc (pfx "cdn") result.flows)
      in
      match Fibbing.Augmentation.compile ~max_entries:16 fib_net reqs with
      | Error e -> Format.printf "%6d fibbing compile failed: %s@." seed e
      | Ok plan ->
        Fibbing.Augmentation.apply fib_net plan;
        Format.printf "%6d %10.2f %12.2f %11.2f %10.2f %12.2f %8d@." seed
          igp_util wo oblivious optimal (util fib_net)
          (Fibbing.Augmentation.fake_count plan))
    [ 1; 2; 3; 4; 5 ];
  Format.printf
    "@.Paper check: Fibbing tracks the optimum (within FIB quantization)@.\
     where plain ECMP overloads links by 2-3x and weight search gets@.\
     stuck above it.@."

(* ------------------------------------------------------------------ *)
(* Extension experiments (beyond the paper's figures): ABR ladders,
   AIMD dynamics, real topologies, transient-safe ordering. *)

let tabr () =
  section "TABR" "extension: adaptive-bitrate ladders with and without Fibbing";
  let burst = 1024. *. 1024. in
  let load (d : Demo.t) =
    let flow ~id ~src ~start_time =
      Netsim.Flow.make ~id ~src ~prefix:Demo.prefix ~demand:burst ~start_time
        ~duration:300. ()
    in
    let flows =
      flow ~id:0 ~src:d.topology.a ~start_time:0.
      :: (List.init 8 (fun i -> flow ~id:(1 + i) ~src:d.topology.a ~start_time:15.)
         @ List.init 8 (fun i -> flow ~id:(9 + i) ~src:d.topology.b ~start_time:35.))
    in
    List.iter (Netsim.Sim.add_flow d.sim) flows;
    flows
  in
  Format.printf "%-16s %14s %8s %12s %10s@." "scenario" "mean bitrate" "stalls"
    "s at top" "switches";
  List.iter
    (fun fibbing ->
      let d = Demo.make ~fibbing () in
      let flows = load d in
      Demo.run d ~until:55.;
      let results =
        List.map (fun flow -> Video.Abr.of_flow d.Demo.sim ~dt:d.Demo.dt flow) flows
      in
      let n = float_of_int (List.length results) in
      let mean f = List.fold_left (fun acc r -> acc +. f r) 0. results /. n in
      Format.printf "%-16s %14.0f %8.0f %12.1f %10.1f@."
        (if fibbing then "fibbing ON" else "fibbing OFF")
        (mean (fun (r : Video.Abr.result) -> r.mean_bitrate))
        (List.fold_left
           (fun acc (r : Video.Abr.result) -> acc +. float_of_int r.stall_count)
           0. results)
        (mean (fun (r : Video.Abr.result) -> r.time_at_top))
        (mean (fun (r : Video.Abr.result) -> float_of_int r.switches)))
    [ true; false ];
  Format.printf
    "@.Fibbing roughly doubles the sustained bitrate for the same crowd:@.\
     congestion shows up as ladder downshifts even when buffers avoid@.\
     outright stalls.@."

let taimd () =
  section "TAIMD" "ablation: Fig. 2 under TCP-like AIMD rate dynamics";
  let d =
    Demo.make ~fibbing:true ~rate_model:(Netsim.Sim.Aimd (Netsim.Aimd.create ())) ()
  in
  let flows = Demo.load_fig2_workload d in
  Demo.run d ~until:55.;
  Format.printf "%a@." (Kit.Timeseries.pp_rows ~step:2.5) (Demo.fig2_series d);
  let q = Demo.qoe d ~flows in
  Format.printf "QoE under AIMD: %a@." Video.Qoe.pp q;
  Format.printf
    "@.Same qualitative Fig. 2 shape as the fluid model, with visible@.\
     ramps after each surge; the controller's reactions land within a@.\
     poll or two of the fluid run's.@."

let tzoo () =
  section "TZOO" "extension: optimality experiment on real backbone topologies";
  Format.printf "%-10s %8s %8s %10s %10s %12s %8s@." "network" "routers" "links"
    "IGP" "optimal" "fibbing" "fakes";
  List.iter
    (fun (entry : Netgraph.Zoo.entry) ->
      let g = entry.graph in
      let n = G.node_count g in
      let egress = 0 in
      let sources = [ n - 1; n / 2; n / 3 ] in
      let capacity = 100. in
      let caps = Netsim.Link.capacities ~default:capacity in
      let net = Igp.Network.create (G.copy g) in
      Igp.Network.announce_prefix net (pfx "cdn") ~origin:egress ~cost:0;
      let demands =
        List.map
          (fun src -> { Netsim.Loadmap.src; prefix = pfx "cdn"; amount = 120. })
          sources
      in
      let util network =
        match
          Netsim.Loadmap.max_utilization
            (Netsim.Loadmap.propagate network demands)
            caps
        with
        | Some (_, u) -> u
        | None -> 0.
      in
      let igp_util = util net in
      let commodities =
        List.map
          (fun src -> { Te.Mcf.src; dst = egress; prefix = pfx "cdn"; demand = 120. })
          sources
      in
      let result =
        Te.Mcf.solve ~epsilon:0.1 (Igp.Network.graph net)
          ~capacities:(fun _ -> capacity)
          commodities
      in
      let optimal =
        Te.Mcf.max_utilization (Igp.Network.graph net)
          ~capacities:(fun _ -> capacity)
          result
      in
      let reqs =
        Te.Decompose.to_requirements net ~prefix:(pfx "cdn")
          (List.assoc (pfx "cdn") result.flows)
      in
      match Fibbing.Augmentation.compile ~max_entries:16 net reqs with
      | Error e -> Format.printf "%-10s compile failed: %s@." entry.name e
      | Ok plan ->
        Fibbing.Augmentation.apply net plan;
        Format.printf "%-10s %8d %8d %10.2f %10.2f %12.2f %8d@." entry.name n
          (G.edge_count g / 2) igp_util optimal (util net)
          (Fibbing.Augmentation.fake_count plan))
    (Netgraph.Zoo.all ())

let ttrans () =
  section "TTRANS" "extension: transiently safe lie installation order";
  let d, net = demo_net () in
  let names = G.name d.graph in
  (* The pinning scenario: R3 must forward via B; installing R3's lie
     before B's pin loops through B. *)
  let reqs =
    Fibbing.Requirements.make ~prefix:(pfx "blue") [ (d.r3, [ (d.b, 1.0) ]) ]
  in
  match Fibbing.Augmentation.compile net reqs with
  | Error e -> Format.printf "compile failed: %s@." e
  | Ok plan ->
    Format.printf "plan: %d fakes (%d pinned routers) for 'R3 forwards via B'@."
      (Fibbing.Augmentation.fake_count plan)
      (List.length plan.pinned);
    (* How many of the possible positions for R3's lie are unsafe? *)
    let is_r3 (f : Igp.Lsa.fake) = f.attachment = d.r3 in
    let r3_fake = List.find is_r3 plan.fakes in
    let others = List.filter (fun f -> not (is_r3 f)) plan.fakes in
    let rec insert_at i xs =
      match (i, xs) with
      | 0, rest -> r3_fake :: rest
      | n, x :: rest -> x :: insert_at (n - 1) rest
      | _, [] -> [ r3_fake ]
    in
    List.iter
      (fun position ->
        let order = insert_at position others in
        match Fibbing.Transient.check_order net ~prefix:(pfx "blue") order with
        | Ok () ->
          Format.printf "  R3's lie at position %d: safe@." (position + 1)
        | Error v ->
          Format.printf "  R3's lie at position %d: UNSAFE at step %d (%s)@."
            (position + 1) v.step v.problem)
      (List.init (List.length plan.fakes) Fun.id);
    (match Fibbing.Transient.safe_order net plan with
    | Ok order ->
      Format.printf "safe order found: %s@."
        (String.concat " -> "
           (List.map
              (fun (f : Igp.Lsa.fake) ->
                Printf.sprintf "%s@%s" f.fake_id (names f.attachment))
              order))
    | Error e -> Format.printf "no safe order: %s@." e);
    Format.printf
      "@.The controller always installs lies along such an order, so the@.\
       network never transits a looping state between LSA floods.@."

let tfail () =
  section "TFAIL" "extension: flash crowd + link failure, controller healing";
  Format.printf
    "31 streams from S1@@A; the link B-R2 fails at t=25 while loaded.@.\
     The controller must escalate to A (B's surviving exit alone cannot@.\
     carry the crowd) and split across B and R1.@.@.";
  List.iter
    (fun fibbing ->
      let d = Demo.make ~fibbing () in
      for i = 0 to 30 do
        Netsim.Sim.add_flow d.Demo.sim
          (Netsim.Flow.make ~id:i ~src:d.Demo.topology.a ~prefix:Demo.prefix
             ~demand:Demo.stream_rate ())
      done;
      Netsim.Sim.fail_link d.Demo.sim ~time:25.
        (d.Demo.topology.b, d.Demo.topology.r2);
      Demo.run d ~until:50.;
      Format.printf "— controller %s:@." (if fibbing then "ON" else "OFF");
      Format.printf "%a@." (Kit.Timeseries.pp_rows ~step:5.) (Demo.fig2_series d);
      (match d.Demo.controller with
      | Some c ->
        List.iter
          (fun (a : Fibbing.Controller.action) ->
            Format.printf "  action [%5.1f s] %s@." a.time a.description)
          (Fibbing.Controller.actions c)
      | None -> ());
      let flows =
        List.filter (fun (f : Netsim.Flow.t) -> f.prefix = Demo.prefix)
          (Netsim.Sim.active_flows d.Demo.sim)
      in
      let q = Demo.qoe d ~flows in
      Format.printf "  QoE: %a@.@." Video.Qoe.pp q)
    [ true; false ]

let tctrl () =
  section "TCTRL" "ablation: monitor poll interval vs reaction time and QoE";
  Format.printf
    "The Fig. 2 workload under different SNMP polling periods; faster@.\
     polling reacts sooner at the price of more measurement traffic.@.@.";
  Format.printf "%10s %14s %14s %10s %8s@." "poll[s]" "1st action[s]"
    "2nd action[s]" "stalls" "smooth";
  List.iter
    (fun poll_interval ->
      let topology = T.demo () in
      let net = Igp.Network.create topology.graph in
      Igp.Network.announce_prefix net Demo.prefix ~origin:topology.c ~cost:0;
      let caps = Netsim.Link.capacities ~default:Demo.backbone_capacity in
      List.iter
        (fun link -> Netsim.Link.set_link caps link Demo.link_capacity)
        [
          (topology.a, topology.r1);
          (topology.b, topology.r2);
          (topology.b, topology.r3);
        ];
      let monitor =
        Netsim.Monitor.create ~poll_interval ~threshold:0.85 ~clear_threshold:0.6
          ~alpha:0.8 caps
      in
      let sim = Netsim.Sim.create ~dt:0.5 ~monitor net caps in
      let controller =
        Fibbing.Controller.create
          ~config:
            {
              Fibbing.Controller.default_config with
              cooldown = max 2. poll_interval;
            }
          net
      in
      Fibbing.Controller.attach controller sim;
      let flows =
        Video.Workload.fig2_schedule ~s1:topology.a ~s2:topology.b
          ~prefix:Demo.prefix ~rate:Demo.stream_rate ~video_duration:300.
      in
      List.iter (Netsim.Sim.add_flow sim) flows;
      Netsim.Sim.run_until sim 55.;
      let actions = Fibbing.Controller.actions controller in
      let action_time i =
        match List.nth_opt actions i with
        | Some (a : Fibbing.Controller.action) -> Printf.sprintf "%.1f" a.time
        | None -> "-"
      in
      let results =
        List.map (fun flow -> Video.Client.of_flow sim ~dt:0.5 flow) flows
      in
      let q = Video.Qoe.summarize results in
      Format.printf "%10.1f %14s %14s %10d %8d@." poll_interval (action_time 0)
        (action_time 1) q.total_stalls q.smooth_sessions)
    [ 1.0; 2.0; 4.0; 8.0 ];
  Format.printf
    "@.Reactions land on the first or second poll after the surge crosses@.\
     the threshold; slow polling delays the fix and costs smooth sessions.@."

let tstrat () =
  section "TSTRAT" "ablation: local deflection vs global re-optimization";
  Format.printf
    "The Fig. 2 workload handled by the two controller strategies: the@.\
     demo's local residual-capacity deflection, and full min-max@.\
     re-optimization (Te pipeline) on every reaction.@.@.";
  Format.printf "%-18s %8s %12s %10s %10s %8s@." "strategy" "fakes" "ctrl msgs"
    "stalls" "smooth" "MOS";
  List.iter
    (fun (label, strategy, max_entries) ->
      let topology = T.demo () in
      let net = Igp.Network.create topology.graph in
      Igp.Network.announce_prefix net Demo.prefix ~origin:topology.c ~cost:0;
      let caps = Netsim.Link.capacities ~default:Demo.backbone_capacity in
      List.iter
        (fun link -> Netsim.Link.set_link caps link Demo.link_capacity)
        [
          (topology.a, topology.r1);
          (topology.b, topology.r2);
          (topology.b, topology.r3);
        ];
      let monitor =
        Netsim.Monitor.create ~poll_interval:2.0 ~threshold:0.85
          ~clear_threshold:0.6 ~alpha:0.8 caps
      in
      let sim = Netsim.Sim.create ~dt:0.5 ~monitor net caps in
      let controller =
        Fibbing.Controller.create
          ~config:{ Fibbing.Controller.default_config with strategy; max_entries }
          ~reoptimize:Te.Reopt.for_controller net
      in
      Fibbing.Controller.attach controller sim;
      let flows =
        Video.Workload.fig2_schedule ~s1:topology.a ~s2:topology.b
          ~prefix:Demo.prefix ~rate:Demo.stream_rate ~video_duration:300.
      in
      List.iter (Netsim.Sim.add_flow sim) flows;
      Netsim.Sim.run_until sim 55.;
      let results =
        List.map (fun flow -> Video.Client.of_flow sim ~dt:0.5 flow) flows
      in
      let q = Video.Qoe.summarize results in
      Format.printf "%-18s %8d %12d %10d %10d %8.2f@." label
        (Fibbing.Controller.fake_count controller)
        (Igp.Network.control_cost net).messages q.total_stalls q.smooth_sessions
        q.mos)
    [
      ("local (demo)", Fibbing.Controller.Local_deflection, 4);
      ("global optimal", Fibbing.Controller.Global_optimal, 16);
    ];
  Format.printf
    "@.Both strategies keep the crowd smooth; the local one does it with@.\
     a handful of lies (the paper's 3), the global one spends more fakes@.\
     and messages to track the exact optimum — the expected trade-off.@."

let tconv () =
  section "TCONV" "extension: reconvergence micro-loops, lies vs weight changes";
  let pp_report label (r : Igp.Convergence.report) =
    Format.printf "%-34s %8d %8d %12.3f %12s@." label r.states r.unsafe_states
      r.unsafe_window
      (match r.first_problem with
      | Some (t, _) -> Printf.sprintf "%.3f s" t
      | None -> "-")
  in
  Format.printf "%-34s %8s %8s %12s %12s@." "change" "changed" "unsafe"
    "window[s]" "first issue";
  (* 1. The demo's fB injection: one router changes, zero unsafe states. *)
  let d, net = demo_net () in
  let after = Igp.Network.clone net in
  Igp.Network.inject_fake after
    {
      fake_id = "fB";
      attachment = d.b;
      attachment_cost = 1;
      prefix = pfx "blue";
      announced_cost = 1;
      forwarding = d.r3;
    };
  pp_report "Fibbing: inject fB (demo)"
    (Igp.Convergence.analyze ~before:net ~after ~origin:d.b ~prefix:(pfx "blue") ());
  (* 2. The full three-fake demo plan, injected as one converged batch
     per fake (the controller's safe order). *)
  let after3 = Igp.Network.clone net in
  (match
     Fibbing.Augmentation.compile ~max_entries:4 after3 (demo_requirements d)
   with
  | Ok plan -> Fibbing.Augmentation.apply after3 plan
  | Error e -> Format.printf "compile failed: %s@." e);
  pp_report "Fibbing: full demo plan"
    (Igp.Convergence.analyze ~before:net ~after:after3 ~origin:d.a ~prefix:(pfx "blue") ());
  (* 3. A textbook weight degradation with a known micro-loop. *)
  let g = G.create () in
  let a = G.add_node g ~name:"A" in
  let b = G.add_node g ~name:"B" in
  let c = G.add_node g ~name:"C" in
  let t = G.add_node g ~name:"T" in
  ignore b;
  ignore c;
  G.add_link g c t ~weight:5;
  G.add_link g c b ~weight:1;
  G.add_link g b a ~weight:1;
  G.add_link g a t ~weight:1;
  let chain_before = Igp.Network.create g in
  Igp.Network.announce_prefix chain_before (pfx "p") ~origin:t ~cost:0;
  let chain_after = Igp.Network.clone chain_before in
  Igp.Network.set_weight chain_after a t ~weight:10;
  Igp.Network.set_weight chain_after t a ~weight:10;
  pp_report "weight x10 on chain (degrade)"
    (Igp.Convergence.analyze ~before:chain_before ~after:chain_after ~origin:a
       ~prefix:(pfx "p") ());
  (* 4. The weight re-optimization computed in TOVH, replayed change by
     change on the demo network. *)
  let scratch = Igp.Network.clone net in
  let outcome =
    Te.Weightopt.optimize scratch (demo_demands d)
      (Netsim.Link.capacities ~default:100.)
  in
  let rolling = Igp.Network.clone net in
  let total_states = ref 0 and total_unsafe = ref 0 and total_window = ref 0. in
  List.iter
    (fun ((u, v), _, new_weight) ->
      let next = Igp.Network.clone rolling in
      Igp.Network.set_weight next u v ~weight:new_weight;
      let r =
        Igp.Convergence.analyze ~before:rolling ~after:next ~origin:u
          ~prefix:(pfx "blue") ()
      in
      total_states := !total_states + r.states;
      total_unsafe := !total_unsafe + r.unsafe_states;
      total_window := !total_window +. r.unsafe_window;
      Igp.Network.set_weight rolling u v ~weight:new_weight)
    outcome.changed_weights;
  Format.printf "%-34s %8d %8d %12.3f %12s@."
    (Printf.sprintf "weight re-opt (%d changes, demo)"
       (List.length outcome.changed_weights))
    !total_states !total_unsafe !total_window "-";
  Format.printf
    "@.Fibbing's equal-cost additions change exactly the targeted routers@.\
     and never traverse a looping state; weight changes replay a full@.\
     network reconvergence each, with micro-loop windows when update@.\
     orders interleave badly (the chain example). This is the mechanism@.\
     behind \"changing link weights ... is too slow for a transient@.\
     event\" (§2).@."

let tmicro () =
  section "TMICRO" "extension: live packet loss during reconvergence";
  Format.printf
    "Flows in flight while the routing changes, with asynchronous FIB@.\
     installation (flood 0.5 s/hop, SPF 1 s — slowed for visibility).@.\
     Lost time = flow-seconds with no usable path.@.@.";
  let slow =
    { Igp.Convergence.flood_per_hop = 0.5; spf_delay = 1.0; jitter = 0.25 }
  in
  let run label ~build ~change =
    let net, src, prefix = build () in
    let caps = Netsim.Link.capacities ~default:100. in
    let sim = Netsim.Sim.create ~dt:0.25 ~convergence:slow net caps in
    for i = 0 to 4 do
      Netsim.Sim.add_flow sim
        (Netsim.Flow.make ~id:i ~src ~prefix ~demand:5. ())
    done;
    Netsim.Sim.schedule sim ~time:5. change;
    let lost = ref 0. in
    Netsim.Sim.on_step sim (fun sim ->
        lost :=
          !lost +. (0.25 *. float_of_int (List.length (Netsim.Sim.unroutable_flows sim))));
    Netsim.Sim.run_until sim 15.;
    Format.printf "%-40s %10.2f flow-seconds lost@." label !lost
  in
  run "weight degradation (micro-loop chain)"
    ~build:(fun () ->
      let g = G.create () in
      let a = G.add_node g ~name:"A" in
      let b = G.add_node g ~name:"B" in
      let c = G.add_node g ~name:"C" in
      let t = G.add_node g ~name:"T" in
      ignore b;
      G.add_link g c t ~weight:5;
      G.add_link g c b ~weight:1;
      G.add_link g b a ~weight:1;
      G.add_link g a t ~weight:1;
      let net = Igp.Network.create g in
      Igp.Network.announce_prefix net (pfx "p") ~origin:t ~cost:0;
      (net, c, pfx "p"))
    ~change:(fun sim ->
      let net = Netsim.Sim.network sim in
      let g = Igp.Network.graph net in
      let a = G.find_node_exn g "A" and t = G.find_node_exn g "T" in
      Igp.Network.set_weight net a t ~weight:10;
      Igp.Network.set_weight net t a ~weight:10);
  run "Fibbing lie (fB on the demo network)"
    ~build:(fun () ->
      let d, net = demo_net () in
      (d.a |> fun src -> (net, src, pfx "blue")))
    ~change:(fun sim ->
      let net = Netsim.Sim.network sim in
      let g = Igp.Network.graph net in
      Igp.Network.inject_fake net
        {
          fake_id = "fB";
          attachment = G.find_node_exn g "B";
          attachment_cost = 1;
          prefix = pfx "blue";
          announced_cost = 1;
          forwarding = G.find_node_exn g "R3";
        });
  Format.printf
    "@.The weight change strands in-flight traffic inside the A/B@.\
     micro-loop until both routers have installed the new FIBs; the@.\
     Fibbing lie is adopted without a single lost flow-second.@."

let tplan () =
  section "TPLAN" "extension: what-if planning instead of over-provisioning";
  Format.printf
    "For the demo's surge matrix (100 units from A and from B), the@.\
     precomputed Fibbing plan per single-link-failure scenario:@.@.";
  let d, net = demo_net () in
  let entries =
    Te.Planner.prepare net ~demands:(demo_demands d) ~capacity:100.
      ~scenarios:(Te.Planner.single_link_failures d.graph)
  in
  Format.printf "%-24s %10s %10s %10s %8s@." "scenario" "IGP util" "planned"
    "optimal" "fakes";
  List.iter
    (fun (e : Te.Planner.entry) ->
      Format.printf "%-24s %10.2f %10.2f %10.2f %8s@."
        (Format.asprintf "%a" (Te.Planner.pp_scenario d.graph) e.scenario)
        e.igp_utilization e.planned_utilization e.optimal_utilization
        (match e.plan with
        | Some plan -> string_of_int (Fibbing.Augmentation.fake_count plan)
        | None -> "-"))
    entries;
  let worst = Te.Planner.worst_case entries in
  let worst_igp =
    List.fold_left
      (fun acc (e : Te.Planner.entry) -> max acc e.igp_utilization)
      0. entries
  in
  Format.printf
    "@.Provisioning target with Fibbing: %.2f (worst scenario: %a);@.\
     without it the same guarantee needs %.2f — a %.1fx over-provisioning@.\
     factor that the paper's intro calls \"expensive and wasteful\".@."
    worst.planned_utilization
    (Te.Planner.pp_scenario d.graph)
    worst.scenario worst_igp
    (worst_igp /. worst.planned_utilization)

(* ------------------------------------------------------------------ *)
(* TSPF: the SPF engine against the seed's per-(router, prefix) path. *)

let tspf ~json () =
  section "TSPF"
    "SPF engine: batched + incremental FIB recompute on the largest zoo";
  let entry = Netgraph.Zoo.geant () in
  let g = entry.Netgraph.Zoo.graph in
  let n = G.node_count g in
  let links = G.edge_count g / 2 in
  let net = Igp.Network.create g in
  (* One prefix per PoP: the all-routers x all-prefixes table a real
     deployment keeps converged. *)
  List.iter
    (fun r ->
      Igp.Network.announce_prefix net (pfx (Printf.sprintf "p%02d" r)) ~origin:r
        ~cost:0)
    (G.nodes g);
  let prefixes = Igp.Lsdb.prefix_list (Igp.Network.lsdb net) in
  let routers = G.nodes g in
  let engine = Igp.Network.engine net in
  (* All repetitions are kept (not just the best) so the percentiles
     below come from real samples; telemetry stays disabled while the
     clock runs, so the instrumentation costs only its flag checks. *)
  let wall_samples ?(repeat = 5) ?(prepare = ignore) f =
    let samples = ref [] in
    for _ = 1 to repeat do
      prepare ();
      let t0 = Unix.gettimeofday () in
      f ();
      samples := ((Unix.gettimeofday () -. t0) *. 1000.) :: !samples
    done;
    List.rev !samples
  in
  let best = List.fold_left min infinity in
  (* Seed path: one Dijkstra per (router, prefix) — what the old
     per-(version, router, prefix) FIB cache recomputed after every
     version bump. *)
  let seed_full_ms =
    best
      (wall_samples (fun () ->
           let view = Igp.Lsdb.view (Igp.Network.lsdb net) in
           List.iter
             (fun r ->
               List.iter
                 (fun p -> ignore (Igp.Spf.compute_prefix view ~router:r p))
                 prefixes)
             routers))
  in
  (* Engine, cold: one Dijkstra per router shared by all prefixes. *)
  let cold_samples =
    wall_samples ~repeat:10
      ~prepare:(fun () -> Igp.Spf_engine.invalidate_all engine)
      (fun () -> Igp.Network.warm net)
  in
  let engine_cold_ms = best cold_samples in
  (* Engine, churn: install/retract one fake and reconverge the full
     table. The fake attaches near router 0 and lies about the prefix of
     the farthest PoP, so a realistic fraction of routers is affected. *)
  let far =
    let r = Netgraph.Dijkstra.run g ~source:0 in
    List.fold_left
      (fun best v ->
        match (Netgraph.Dijkstra.distance r v, Netgraph.Dijkstra.distance r best) with
        | Some dv, Some db when dv > db -> v
        | _ -> best)
      0 routers
  in
  let flip = ref false in
  let churn () =
    flip := not !flip;
    if !flip then
      Igp.Network.inject_fake net
        {
          fake_id = "bench";
          attachment = 0;
          attachment_cost = 1;
          prefix = pfx (Printf.sprintf "p%02d" far);
          announced_cost = 0;
          forwarding = fst (List.hd (G.succ g 0));
        }
    else Igp.Network.retract_fake net ~fake_id:"bench"
  in
  Igp.Network.warm net;
  let s0 = Igp.Spf_engine.stats engine in
  let churns = 30 in
  let churn_samples =
    wall_samples ~repeat:churns ~prepare:churn (fun () -> Igp.Network.warm net)
  in
  let engine_churn_ms = best churn_samples in
  let s1 = Igp.Spf_engine.stats engine in
  (* Percentiles via the Obs histograms (values observed directly, so
     the clock source is irrelevant); enabled only after timing ends. *)
  let cold_summary, churn_summary =
    Obs.reset ();
    Obs.enable ();
    let h_cold = Obs.Metrics.histogram "bench.spf_cold_ms" in
    let h_churn = Obs.Metrics.histogram "bench.spf_churn_ms" in
    List.iter (Obs.Metrics.observe h_cold) cold_samples;
    List.iter (Obs.Metrics.observe h_churn) churn_samples;
    let s = (Obs.Metrics.summary h_cold, Obs.Metrics.summary h_churn) in
    Obs.disable ();
    s
  in
  let avg_dirty =
    float_of_int (s1.routers_dirtied - s0.routers_dirtied)
    /. float_of_int churns
  in
  let speedup_cold = seed_full_ms /. engine_cold_ms in
  let speedup_churn = seed_full_ms /. engine_churn_ms in
  let domains = Kit.Pool.domain_count (Igp.Spf_engine.pool engine) in
  let cores = Domain.recommended_domain_count () in
  Format.printf
    "topology: %s (%d routers, %d links, %d prefixes); %d domains on %d cores@."
    entry.Netgraph.Zoo.name n links (List.length prefixes) domains cores;
  Format.printf "%-44s %10.3f ms@."
    "seed full recompute (router x prefix Dijkstras)" seed_full_ms;
  Format.printf "%-44s %10.3f ms  (%.1fx)@."
    (Printf.sprintf "engine cold (%d batched Dijkstras, %d domains)" n domains)
    engine_cold_ms speedup_cold;
  Format.printf "%-44s %10.3f ms  (%.1fx)@."
    (Printf.sprintf "engine churn (1 fake, ~%.1f routers dirty)" avg_dirty)
    engine_churn_ms speedup_churn;
  let pp_pcts label (s : Obs.Metrics.histogram_summary) =
    Format.printf "%-44s p50 %8.3f  p95 %8.3f  p99 %8.3f ms (%d samples)@."
      label s.p50 s.p95 s.p99 s.count
  in
  pp_pcts "engine cold percentiles" cold_summary;
  pp_pcts "engine churn percentiles" churn_summary;
  if json then begin
    let oc = open_out "BENCH_spf.json" in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"spf\",\n\
      \  \"topology\": %S,\n\
      \  \"routers\": %d,\n\
      \  \"links\": %d,\n\
      \  \"prefixes\": %d,\n\
      \  \"cores\": %d,\n\
      \  \"domains\": %d,\n\
      \  \"seed_full_ms\": %.6f,\n\
      \  \"engine_cold_ms\": %.6f,\n\
      \  \"engine_churn_ms\": %.6f,\n\
      \  \"engine_cold_p50_ms\": %.6f,\n\
      \  \"engine_cold_p95_ms\": %.6f,\n\
      \  \"engine_cold_p99_ms\": %.6f,\n\
      \  \"engine_churn_p50_ms\": %.6f,\n\
      \  \"engine_churn_p95_ms\": %.6f,\n\
      \  \"engine_churn_p99_ms\": %.6f,\n\
      \  \"speedup_cold\": %.2f,\n\
      \  \"speedup_churn\": %.2f,\n\
      \  \"avg_dirty_routers\": %.2f\n\
       }\n"
      entry.Netgraph.Zoo.name n links (List.length prefixes) cores domains
      seed_full_ms engine_cold_ms engine_churn_ms cold_summary.p50
      cold_summary.p95 cold_summary.p99 churn_summary.p50 churn_summary.p95
      churn_summary.p99 speedup_cold speedup_churn avg_dirty;
    close_out oc;
    Format.printf "wrote BENCH_spf.json@."
  end

(* ------------------------------------------------------------------ *)
(* TFLOW: the flow engine at flash-crowd scale — flow-class aggregation
   plus the indexed water-filling kernel vs the seed's per-flow list
   allocator. *)

let tflow ~json ~quick () =
  section "TFLOW"
    "Flow engine: class aggregation + indexed max-min fair at crowd scale";
  let counts =
    if quick then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ]
  in
  let wall_samples ?(repeat = 5) f =
    let samples = ref [] in
    for _ = 1 to repeat do
      let t0 = Unix.gettimeofday () in
      f ();
      samples := ((Unix.gettimeofday () -. t0) *. 1000.) :: !samples
    done;
    List.rev !samples
  in
  let rec links_of_path = function
    | a :: (b :: _ as rest) -> (a, b) :: links_of_path rest
    | [] | [ _ ] -> []
  in
  (* Two arenas: the paper's demo network (two servers surging towards
     the blue prefix) and the GEANT zoo (several PoPs towards one CDN
     prefix), so the kernel is exercised on both a 3-bottleneck toy and
     a real 40-router backbone. *)
  let demo_case () =
    let d = T.demo () in
    let net = Igp.Network.create d.graph in
    Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
    let caps = Netsim.Link.capacities ~default:Demo.backbone_capacity in
    List.iter
      (fun link -> Netsim.Link.set_link caps link Demo.link_capacity)
      [ (d.a, d.r1); (d.b, d.r2); (d.b, d.r3) ];
    let spec src =
      {
        Video.Workload.src;
        prefix = pfx "blue";
        rate = Demo.stream_rate;
        video_duration = 86_400.;
      }
    in
    ("demo", net, caps, [ spec d.a; spec d.b ])
  in
  let geant_case () =
    let entry = Netgraph.Zoo.geant () in
    let g = entry.Netgraph.Zoo.graph in
    let net = Igp.Network.create g in
    Igp.Network.announce_prefix net (pfx "cdn") ~origin:0 ~cost:0;
    let caps = Netsim.Link.capacities ~default:(64. *. 1024. *. 1024.) in
    (* Four ingress PoPs spread across the node range, none the origin. *)
    let nodes = G.nodes g in
    let n = List.length nodes in
    let sources =
      List.filteri (fun i _ -> i > 0 && i mod (n / 4) = 0) nodes
    in
    let spec src =
      {
        Video.Workload.src;
        prefix = pfx "cdn";
        rate = Demo.stream_rate;
        video_duration = 86_400.;
      }
    in
    (entry.Netgraph.Zoo.name, net, caps, List.map spec sources)
  in
  let prng = Kit.Prng.create ~seed:23 in
  let results = ref [] in
  List.iter
    (fun (name, net, caps, specs) ->
      List.iter
        (fun count ->
          let repeat = if count >= 100_000 then 3 else 5 in
          let flows =
            Video.Workload.crowd ~jitter:0. prng specs ~first_id:0 ~count
              ~at:0.
          in
          (* New engine: full simulation steps (routing, allocation,
             link rates, series bookkeeping) over the aggregated
             classes; per-flow history off, as a crowd run would have
             it. *)
          let sim =
            Netsim.Sim.create ~dt:0.5 ~aggregation:true ~flow_history:false
              net caps
          in
          List.iter (Netsim.Sim.add_flow sim) flows;
          Netsim.Sim.run_until sim 0.5;
          let new_samples =
            wall_samples ~repeat (fun () ->
                Netsim.Sim.run_until sim (Netsim.Sim.time sim +. 0.5))
          in
          let classes = Netsim.Sim.flow_classes sim in
          (* Seed path: the per-flow list allocator plus the per-route
             link-throughput scan — the allocation work the old step did
             every dt (its routing and bookkeeping costs are not even
             charged, so the speedup below is an underestimate). *)
          let routes =
            List.filter_map
              (fun (f : Netsim.Flow.t) ->
                match Netsim.Sim.flow_path sim f.id with
                | Some path ->
                  Some { Netsim.Fairshare.flow = f; links = links_of_path path }
                | None -> None)
              flows
          in
          let old_samples =
            wall_samples ~repeat (fun () ->
                ignore
                  (Netsim.Fairshare.link_throughput routes
                     (Netsim.Fairshare.allocate_reference caps routes)))
          in
          results := (name, count, classes, old_samples, new_samples) :: !results)
        counts)
    [ demo_case (); geant_case () ];
  let results = List.rev !results in
  (* Percentiles via the Obs histograms, enabled only after timing. *)
  let summarized =
    Obs.reset ();
    Obs.enable ();
    let s =
      List.map
        (fun (name, count, classes, old_samples, new_samples) ->
          let summarize label samples =
            let h =
              Obs.Metrics.histogram
                (Printf.sprintf "bench.flow_%s_%s_%d_ms" label name count)
            in
            List.iter (Obs.Metrics.observe h) samples;
            Obs.Metrics.summary h
          in
          ( name,
            count,
            classes,
            summarize "old" old_samples,
            summarize "new" new_samples ))
        results
    in
    Obs.disable ();
    s
  in
  Format.printf "%-10s %8s %8s %12s %12s %9s@." "topology" "flows" "classes"
    "seed p50" "engine p50" "speedup";
  List.iter
    (fun (name, count, classes, (o : Obs.Metrics.histogram_summary)
              , (n : Obs.Metrics.histogram_summary)) ->
      Format.printf "%-10s %8d %8d %9.3f ms %9.3f ms %8.1fx@." name count
        classes o.p50 n.p50 (o.p50 /. n.p50))
    summarized;
  List.iter
    (fun (name, count, _, (o : Obs.Metrics.histogram_summary)
              , (n : Obs.Metrics.histogram_summary)) ->
      if count = 10_000 then
        Format.printf
          "acceptance (%s at 10k flows): %.1fx step-time speedup (target 10x)@."
          name (o.p50 /. n.p50))
    summarized;
  if json then begin
    let oc = open_out "BENCH_flow.json" in
    Printf.fprintf oc "{\n  \"bench\": \"flow\",\n  \"results\": [\n";
    let total = List.length summarized in
    List.iteri
      (fun i (name, count, classes, (o : Obs.Metrics.histogram_summary)
                  , (n : Obs.Metrics.histogram_summary)) ->
        Printf.fprintf oc
          "    {\"topology\": %S, \"flows\": %d, \"classes\": %d,\n\
          \     \"old_p50_ms\": %.6f, \"old_p95_ms\": %.6f,\n\
          \     \"new_p50_ms\": %.6f, \"new_p95_ms\": %.6f,\n\
          \     \"speedup_p50\": %.2f}%s\n"
          name count classes o.p50 o.p95 n.p50 n.p95 (o.p50 /. n.p50)
          (if i = total - 1 then "" else ","))
      summarized;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Format.printf "wrote BENCH_flow.json@."
  end

(* ------------------------------------------------------------------ *)
(* TPAR: multicore scale-out — the same three workloads at 1/2/4/8
   domains, with the sequential run as the equivalence oracle. Speedups
   are whatever the machine gives (the JSON records its core count); the
   determinism check is unconditional and fails the bench — parallel
   runs must produce byte-identical FIBs, water-fill rates, chaos
   verdicts and per-run timelines. *)

let tpar ~json ~quick () =
  section "TPAR"
    "Multicore scale-out: SPF churn, water-fill setup, chaos sweeps vs domains";
  let cores = Domain.recommended_domain_count () in
  let widths = [ 1; 2; 4; 8 ] in
  Format.printf "machine cores (recommended domains): %d@." cores;
  let best = List.fold_left min infinity in
  let wall_samples ?(repeat = 5) ?(prepare = ignore) f =
    let samples = ref [] in
    for _ = 1 to repeat do
      prepare ();
      let t0 = Unix.gettimeofday () in
      f ();
      samples := ((Unix.gettimeofday () -. t0) *. 1000.) :: !samples
    done;
    List.rev !samples
  in
  (* -- Track A: GEANT churn reconvergence, SPF batches sharded. -- *)
  let spf_track d =
    let entry = Netgraph.Zoo.geant () in
    let g = entry.Netgraph.Zoo.graph in
    let net = Igp.Network.create ~domains:d g in
    List.iter
      (fun r ->
        Igp.Network.announce_prefix net (pfx (Printf.sprintf "p%02d" r)) ~origin:r
          ~cost:0)
      (G.nodes g);
    let prefixes = Igp.Lsdb.prefix_list (Igp.Network.lsdb net) in
    let flip = ref false in
    let churn () =
      flip := not !flip;
      if !flip then
        Igp.Network.inject_fake net
          {
            fake_id = "bench";
            attachment = 0;
            attachment_cost = 1;
            prefix = pfx "p20";
            announced_cost = 0;
            forwarding = fst (List.hd (G.succ g 0));
          }
      else Igp.Network.retract_fake net ~fake_id:"bench"
    in
    Igp.Network.warm net;
    let samples =
      wall_samples ~repeat:(if quick then 10 else 30) ~prepare:churn (fun () ->
          Igp.Network.warm net)
    in
    (* Serialize every FIB after the last (fake-retracted) reconvergence:
       the dump must be byte-identical at every width. *)
    Igp.Network.warm net;
    let buf = Buffer.create 65536 in
    List.iter
      (fun prefix ->
        Array.iteri
          (fun router fib ->
            match fib with
            | None -> Buffer.add_string buf (Printf.sprintf "%d/%s -@." router (Igp.Prefix.to_string prefix))
            | Some fib ->
              Buffer.add_string buf
                (Format.asprintf "%d/%s %a@." router (Igp.Prefix.to_string prefix)
                   (Igp.Fib.pp ~names:(G.name g))
                   fib))
          (Igp.Network.fib_table net prefix))
      prefixes;
    (best samples, Buffer.contents buf)
  in
  (* -- Track B: flash-crowd water-fill, setup phases sharded. -- *)
  let wf_flows = if quick then 20_000 else 100_000 in
  let nlinks = 400 in
  let wf_caps = Netsim.Link.capacities ~default:(24. *. 1024. *. 1024.) in
  let wf_demands, wf_links, wf_weights =
    let prng = Kit.Prng.create ~seed:42 in
    let demands =
      Array.init wf_flows (fun _ ->
          64. *. 1024. *. float_of_int (1 + Kit.Prng.int prng 8))
    in
    let links =
      Array.init wf_flows (fun _ ->
          let s = Kit.Prng.int prng (nlinks - 3) in
          [ (s, s + 1); (s + 1, s + 2); (s + 2, s + 3) ])
    in
    (demands, links, Array.make wf_flows 1)
  in
  let wf_track d =
    let pool = Kit.Pool.create ~domains:d () in
    let out = ref [||] in
    let samples =
      wall_samples ~repeat:(if quick then 3 else 5) (fun () ->
          out :=
            Netsim.Fairshare.water_fill ~pool wf_caps ~demands:wf_demands
              ~links:wf_links ~weights:wf_weights)
    in
    (best samples, !out)
  in
  (* -- Track C: chaos seed sweep, one scenario per domain. -- *)
  let chaos_seeds = List.init (if quick then 8 else 64) (fun i -> i + 1) in
  let chaos_track d =
    let pool = Kit.Pool.create ~domains:d () in
    let t0 = Unix.gettimeofday () in
    let results = Scenarios.Chaos.sweep ~pool ~seeds:chaos_seeds ~until:20. () in
    ((Unix.gettimeofday () -. t0) *. 1000., List.map fst results)
  in
  let spf = List.map spf_track widths in
  let wf = List.map wf_track widths in
  let chaos = List.map chaos_track widths in
  let base f l = f (List.hd l) in
  let spf_ref = base snd spf and wf_ref = base snd wf and chaos_ref = base snd chaos in
  let spf_ok = List.for_all (fun (_, dump) -> dump = spf_ref) spf in
  let wf_ok = List.for_all (fun (_, rates) -> rates = wf_ref) wf in
  let chaos_ok = List.for_all (fun (_, vs) -> vs = chaos_ref) chaos in
  (* Determinism of captured timelines: a telemetry-on sweep must emit
     byte-identical per-run timelines at widths 1, 2 and 4. *)
  let timeline_sweep d =
    Obs.reset ();
    Obs.enable ();
    let seeds = List.filteri (fun i _ -> i < 4) chaos_seeds in
    let results =
      Scenarios.Chaos.sweep
        ~pool:(Kit.Pool.create ~domains:d ())
        ~seeds ~until:20. ()
    in
    Obs.disable ();
    List.map (fun (v, tl) -> (v, Option.value ~default:"" tl)) results
  in
  let tl1 = timeline_sweep 1 in
  let tl_ok = List.for_all (fun d -> timeline_sweep d = tl1) [ 2; 4 ] in
  Format.printf "@.%-8s %14s %14s %14s@." "domains" "spf churn" "water-fill"
    "chaos sweep";
  List.iteri
    (fun i d ->
      Format.printf "%-8d %11.3f ms %11.3f ms %11.3f ms@." d
        (fst (List.nth spf i))
        (fst (List.nth wf i))
        (fst (List.nth chaos i)))
    widths;
  let speedups track = List.map (fun (ms, _) -> base fst track /. ms) track in
  let spf_speedups = speedups spf in
  let wf_speedups = speedups wf in
  let chaos_speedups = speedups chaos in
  let pp_speedups label l =
    Format.printf "%-20s" label;
    List.iter (fun s -> Format.printf " %6.2fx" s) l;
    Format.printf "@."
  in
  pp_speedups "spf speedup" spf_speedups;
  pp_speedups "water-fill speedup" wf_speedups;
  pp_speedups "chaos speedup" chaos_speedups;
  Format.printf
    "determinism: fibs %s, water-fill rates %s, chaos verdicts %s, timelines %s@."
    (if spf_ok then "identical" else "DIVERGED")
    (if wf_ok then "identical" else "DIVERGED")
    (if chaos_ok then "identical" else "DIVERGED")
    (if tl_ok then "identical" else "DIVERGED");
  if json then begin
    let oc = open_out "BENCH_parallel.json" in
    let floats l = String.concat ", " (List.map (Printf.sprintf "%.6f") l) in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"parallel\",\n\
      \  \"cores\": %d,\n\
      \  \"domains\": [%s],\n\
      \  \"spf_churn_ms\": [%s],\n\
      \  \"spf_speedup\": [%s],\n\
      \  \"waterfill_flows\": %d,\n\
      \  \"waterfill_ms\": [%s],\n\
      \  \"waterfill_speedup\": [%s],\n\
      \  \"chaos_seeds\": %d,\n\
      \  \"chaos_sweep_ms\": [%s],\n\
      \  \"chaos_speedup\": [%s],\n\
      \  \"determinism\": {\"spf_fibs\": %b, \"waterfill_rates\": %b,\n\
      \                  \"chaos_verdicts\": %b, \"chaos_timelines\": %b}\n\
       }\n"
      cores
      (String.concat ", " (List.map string_of_int widths))
      (floats (List.map fst spf))
      (floats spf_speedups) wf_flows
      (floats (List.map fst wf))
      (floats wf_speedups)
      (List.length chaos_seeds)
      (floats (List.map fst chaos))
      (floats chaos_speedups) spf_ok wf_ok chaos_ok tl_ok;
    close_out oc;
    Format.printf "wrote BENCH_parallel.json@."
  end;
  if not (spf_ok && wf_ok && chaos_ok && tl_ok) then begin
    Format.printf "TPAR FAILED: parallel execution diverged from sequential@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* TWATCH: cost and non-interference of the runtime safety watchdog.
   The enforced gate is deterministic (work counters, not wall clock):
   on a calm steady-state run the incremental gating must keep the full
   safety sweep under 5% of steps, the watchdog must observe zero
   violations, and arming it must not perturb the simulation at all —
   the F2 series and the chaos verdicts must be bit-identical with and
   without it. Wall-clock overhead is printed for the record only. *)

let twatch ~quick () =
  section "TWATCH" "watchdog: overhead and non-interference";
  let failed = ref false in
  (* -- Gate 1: steady state. One long-lived flow, no faults, no
     controller action: after the initial route computation nothing
     dirties routing, so the sweep must stay gated off. *)
  let () =
    let d = T.demo () in
    let net = Igp.Network.create d.graph in
    Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
    let caps = Netsim.Link.capacities ~default:1e6 in
    let sim = Netsim.Sim.create ~dt:0.5 net caps in
    let wd = Netsim.Watchdog.arm sim in
    Netsim.Sim.add_flow sim
      (Netsim.Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:10. ());
    Netsim.Sim.run_until sim 100.;
    let s = Netsim.Watchdog.stats wd in
    let sweep_pct =
      100. *. float_of_int s.safety_sweeps /. float_of_int (max 1 s.steps_checked)
    in
    Format.printf
      "steady state: %d steps, %d sweeps, %d skipped — sweep rate %.1f%% \
       (gate: < 5%%), %d violations@."
      s.steps_checked s.safety_sweeps s.safety_skipped sweep_pct s.violations;
    if sweep_pct >= 5. || s.violations > 0 then failed := true
  in
  (* -- Gate 2: the Fig. 2 demo run with and without the watchdog. The
     controller steers (routing changes, sweeps run), yet the plotted
     series must be bit-identical — observation only, no perturbation. *)
  let () =
    let run ~watchdog =
      let d = Demo.make ~fibbing:true () in
      ignore (Demo.load_fig2_workload d);
      let wd =
        if watchdog then Some (Netsim.Watchdog.arm d.Demo.sim) else None
      in
      let t0 = Unix.gettimeofday () in
      Demo.run d ~until:55.;
      let wall = (Unix.gettimeofday () -. t0) *. 1000. in
      (Demo.fig2_series d, wd, wall)
    in
    let series_off, _, wall_off = run ~watchdog:false in
    let series_on, wd, wall_on = run ~watchdog:true in
    let identical = series_on = series_off in
    (match wd with
    | Some wd ->
      let s = Netsim.Watchdog.stats wd in
      Format.printf
        "fig2 demo:    %d steps, %d sweeps, %d skipped, %d violations; \
         series %s; wall %.1f -> %.1f ms (informational)@."
        s.steps_checked s.safety_sweeps s.safety_skipped s.violations
        (if identical then "identical" else "DIVERGED")
        wall_off wall_on;
      if s.violations > 0 then failed := true
    | None -> ());
    if not identical then failed := true
  in
  (* -- Gate 3: chaos seeds with and without the watchdog. Same faults,
     same verdict (modulo the watchdog's own fields), zero violations. *)
  let () =
    let seeds = List.init (if quick then 4 else 8) (fun i -> i + 1) in
    let strip (v : Scenarios.Chaos.verdict) =
      ( v.plan.events,
        v.edges_restored,
        v.fakes_left,
        v.fibs_match,
        v.unroutable_at_until,
        v.unroutable_at_end,
        v.controller_alive,
        v.reactions )
    in
    let sweep ~watchdog =
      let t0 = Unix.gettimeofday () in
      let vs =
        List.map
          (fun seed -> Scenarios.Chaos.run ~watchdog ~seed ~until:20. ())
          seeds
      in
      ((Unix.gettimeofday () -. t0) *. 1000., vs)
    in
    let wall_off, off = sweep ~watchdog:false in
    let wall_on, on = sweep ~watchdog:true in
    let identical = List.map strip on = List.map strip off in
    let violations =
      List.fold_left
        (fun acc (v : Scenarios.Chaos.verdict) ->
          acc + List.length v.violations)
        0 on
    in
    Format.printf
      "chaos x%d:     verdicts %s, %d violations; wall %.1f -> %.1f ms \
       (informational)@."
      (List.length seeds)
      (if identical then "identical" else "DIVERGED")
      violations wall_off wall_on;
    if (not identical) || violations > 0 then failed := true
  in
  if !failed then begin
    Format.printf "TWATCH FAILED: watchdog overhead or interference gate@.";
    exit 1
  end
  else Format.printf "TWATCH gate: OK@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per computational stage. *)

let bechamel_timings () =
  section "TIMINGS" "Bechamel micro-benchmarks (one per pipeline stage)";
  let open Bechamel in
  let open Toolkit in
  let d, net = demo_net () in
  let big_prng = Kit.Prng.create ~seed:7 in
  let big = T.two_level big_prng ~core:10 ~edge_per_core:2 in
  let big_net = Igp.Network.create big in
  Igp.Network.announce_prefix big_net (pfx "cdn") ~origin:(G.find_node_exn big "C0")
    ~cost:0;
  let reqs = demo_requirements d in
  let demo_for_step = Demo.make ~fibbing:true () in
  ignore (Demo.load_fig2_workload demo_for_step);
  Demo.run demo_for_step ~until:40.;
  let tests =
    [
      Test.make ~name:"spf-demo (F1A)"
        (Staged.stage (fun () ->
             Igp.Spf.compute (Igp.Lsdb.view (Igp.Network.lsdb net)) ~router:d.a));
      Test.make ~name:"spf-30routers (TSCALE)"
        (Staged.stage (fun () ->
             Igp.Spf.compute
               (Igp.Lsdb.view (Igp.Network.lsdb big_net))
               ~router:(G.find_node_exn big "C5")));
      Test.make ~name:"compile-demo (F1C)"
        (Staged.stage (fun () ->
             match Fibbing.Augmentation.compile ~max_entries:4 net reqs with
             | Ok plan -> ignore (Fibbing.Augmentation.fake_count plan)
             | Error _ -> ()));
      Test.make ~name:"loadmap (F1B/F1D)"
        (Staged.stage (fun () ->
             ignore (Netsim.Loadmap.propagate net (demo_demands d))));
      Test.make ~name:"sim-step 62 flows (F2)"
        (Staged.stage (fun () ->
             Demo.run demo_for_step
               ~until:(Netsim.Sim.time demo_for_step.Demo.sim +. 0.5)));
      Test.make ~name:"mcf-fptas 16n (TOPT)"
        (Staged.stage (fun () ->
             let prng = Kit.Prng.create ~seed:3 in
             let g = T.random prng ~n:16 ~extra_edges:16 ~max_weight:3 in
             ignore
               (Te.Mcf.solve ~epsilon:0.2 g
                  ~capacities:(fun _ -> 100.)
                  [ { src = 5; dst = 0; prefix = pfx "p"; demand = 100. } ])));
      Test.make ~name:"ratio-approx (TSCALE)"
        (Staged.stage (fun () ->
             ignore (Kit.Ratio.approximate ~max_total:16 [| 0.28; 0.72 |])));
      Test.make ~name:"flooding (TOVH)"
        (Staged.stage (fun () -> ignore (Igp.Flooding.flood big ~origin:0)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Format.printf "%-28s %16s@." "stage" "ns/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> Printf.sprintf "%14.0f" x
            | Some [] | None -> "n/a"
          in
          Format.printf "%-28s %16s@." name estimate)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* TPROF: allocation/GC profiles of the three hot paths, with optional
   bench-history rows (prof --history FILE --tag SHA) feeding the
   regression gate (gate --history FILE). *)

(* One measured block: force a clean heap, run [cycles] repetitions,
   read the GC deltas directly via [Obs.Prof] snapshots (no telemetry
   needed — and none enabled, so this measures the true disabled-mode
   hot path, which is also the deterministic one). *)
let prof_measure ~cycles f =
  Gc.full_major ();
  let before = Obs.Prof.snapshot () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to cycles do
    f ()
  done;
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (Obs.Prof.delta ~before ~after:(Obs.Prof.snapshot ()), wall_ms)

let tprof ~quick ~history ~tag () =
  section "TPROF" "Allocation/GC profile of the hot paths (domains pinned to 1)";
  (* Allocation attribution needs the work on the measuring domain, and
     history rows must not depend on the CI matrix width — every net
     and kernel in this section runs single-domain. *)
  Kit.Pool.set_default_domains (Some 1);
  let rows = ref [] in
  let emit ~track ~cycles ~context (d : Obs.Prof.snap) wall_ms =
    let per = float_of_int cycles in
    let alloc = Obs.Prof.allocated_words d /. per in
    Format.printf
      "%-12s %14.0f w/cycle  %5d minor gc  %3d major gc  %8.3f ms/cycle@."
      track alloc d.Obs.Prof.minor_collections d.Obs.Prof.major_collections
      (wall_ms /. per);
    rows :=
      {
        Obs.History.tag;
        track;
        values =
          [
            ("alloc_words", alloc);
            ("minor_collections", float_of_int d.Obs.Prof.minor_collections);
            ("major_collections", float_of_int d.Obs.Prof.major_collections);
            ("wall_ms", wall_ms /. per);
            ("cycles", per);
            ("domains", 1.);
          ]
          @ context;
      }
      :: !rows
  in
  (* Track 1 — SPF churn on GEANT: install/retract one fake, reconverge
     the full router x prefix table (the TSPF churn loop). *)
  let () =
    let entry = Netgraph.Zoo.geant () in
    let g = entry.Netgraph.Zoo.graph in
    let net = Igp.Network.create g in
    List.iter
      (fun r ->
        Igp.Network.announce_prefix net (pfx (Printf.sprintf "p%02d" r)) ~origin:r
          ~cost:0)
      (G.nodes g);
    let routers = G.nodes g in
    let far =
      let r = Netgraph.Dijkstra.run g ~source:0 in
      List.fold_left
        (fun best v ->
          match
            (Netgraph.Dijkstra.distance r v, Netgraph.Dijkstra.distance r best)
          with
          | Some dv, Some db when dv > db -> v
          | _ -> best)
        0 routers
    in
    let flip = ref false in
    let churn () =
      flip := not !flip;
      if !flip then
        Igp.Network.inject_fake net
          {
            fake_id = "bench";
            attachment = 0;
            attachment_cost = 1;
            prefix = pfx (Printf.sprintf "p%02d" far);
            announced_cost = 0;
            forwarding = fst (List.hd (G.succ g 0));
          }
      else Igp.Network.retract_fake net ~fake_id:"bench";
      Igp.Network.warm net
    in
    Igp.Network.warm net;
    churn ();
    (* warm both branches of the flip *)
    churn ();
    let cycles = if quick then 10 else 30 in
    let d, wall = prof_measure ~cycles churn in
    emit ~track:"spf_churn" ~cycles
      ~context:
        [
          ("routers", float_of_int (G.node_count g));
          ("prefixes", float_of_int (List.length routers));
        ]
      d wall
  in
  (* Track 2 — the indexed water-filling kernel on a synthetic batch:
     fixed PRNG, 3-link paths over a 400-link core. *)
  let () =
    let groups = if quick then 10_000 else 50_000 in
    let nlinks = 400 in
    let prng = Kit.Prng.create ~seed:42 in
    let caps = Netsim.Link.capacities ~default:1000. in
    let link i = ((2 * i, (2 * i) + 1) : Netsim.Link.t) in
    let demands = Array.init groups (fun _ -> 1. +. Kit.Prng.float prng 9.) in
    let links =
      Array.init groups (fun _ ->
          List.init 3 (fun _ -> link (Kit.Prng.int prng nlinks)))
    in
    let weights = Array.init groups (fun _ -> 1 + Kit.Prng.int prng 3) in
    let run () =
      ignore (Netsim.Fairshare.water_fill caps ~demands ~links ~weights)
    in
    run ();
    (* warm *)
    let cycles = if quick then 3 else 5 in
    let d, wall = prof_measure ~cycles run in
    emit ~track:"water_fill" ~cycles
      ~context:[ ("groups", float_of_int groups); ("links", float_of_int nlinks) ]
      d wall
  in
  (* Track 3 — the aggregated simulator step under a flash crowd (the
     flood scenario's steady state). *)
  let () =
    let d = Demo.make ~fibbing:true () in
    let prng = Kit.Prng.create ~seed:11 in
    let flows = if quick then 1000 else 2000 in
    let spec src =
      {
        Video.Workload.src;
        prefix = Demo.prefix;
        rate = Demo.stream_rate;
        video_duration = 3600.;
      }
    in
    let crowd =
      Video.Workload.crowd prng ~jitter:2.
        [ spec d.topology.a; spec d.topology.b ]
        ~first_id:0 ~count:flows ~at:0.
    in
    List.iter (Netsim.Sim.add_flow d.sim) crowd;
    Demo.run d ~until:4.;
    (* warm: all flows active, classes formed *)
    let steps = 20 in
    let dp, wall =
      prof_measure ~cycles:steps (fun () ->
          Demo.run d ~until:(Netsim.Sim.time d.sim +. d.Demo.dt))
    in
    emit ~track:"sim_step" ~cycles:steps
      ~context:[ ("flows", float_of_int flows) ]
      dp wall
  in
  match history with
  | None -> ()
  | Some file ->
    Obs.History.append ~file (List.rev !rows);
    Format.printf "appended %d rows (tag %s) to %s@." (List.length !rows) tag
      file

(* ------------------------------------------------------------------ *)
(* TFIB: prefix-scale FIB. A synthetic Zipf-nested prefix table is
   loaded into the compressed trie; we measure build time, aggregation
   ratio and approximate memory, then apply a fixed churn (re-steer /
   retract / re-install random prefixes) and measure per-update latency
   plus the deterministic visited-node counter. Enforced gates:
     - after churn the aggregated trie must route every probed
       breakpoint address exactly like the flat table;
     - mean visited nodes per update must be independent of table size
       (the FAQS property: updates walk one path and refresh direct
       children only — never the whole trie);
     - at network level (GEANT carrying a synthesized table), per-router
       aggregated LPM must agree with the flat FIB across lie churn. *)

let tfib ~json ~quick ~history ~tag () =
  section "TFIB"
    "prefix-scale FIB: trie build, FAQS aggregation, incremental updates";
  let scales = if quick then [ 10_000; 50_000 ] else [ 100_000; 1_000_000 ] in
  let churn_ops = 1_000 in
  let behaviors = 8 in
  let failed = ref false in
  let results =
    List.map
      (fun n ->
        let prng = Kit.Prng.create ~seed:7 in
        let prefixes = Array.of_list (Igp.Prefix.synthesize prng ~n) in
        (* Behaviors come from a small distinct set, skewed so nested
           subnets usually share their covering aggregate's value — the
           redundancy FAQS exists to strip. *)
        let behavior () =
          let u = Kit.Prng.float prng 1. in
          int_of_float (float_of_int behaviors *. (u ** 3.))
        in
        let t = Igp.Fib_trie.create ~eq:Int.equal in
        let t0 = Unix.gettimeofday () in
        Array.iter (fun p -> Igp.Fib_trie.update t p (behavior ())) prefixes;
        let build_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        let stats = Igp.Fib_trie.stats t in
        let visited0 = Igp.Fib_trie.visited t in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to churn_ops do
          let p = Kit.Prng.pick prng prefixes in
          match Kit.Prng.int prng 3 with
          | 0 -> Igp.Fib_trie.remove t p
          | _ -> Igp.Fib_trie.update t p (behavior ())
        done;
        let churn_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        let visited_per_update =
          float_of_int (Igp.Fib_trie.visited t - visited0)
          /. float_of_int churn_ops
        in
        (* Equivalence probe at breakpoints: each sampled prefix's first
           address, last address, and one past the end. *)
        let mismatches = ref 0 in
        for _ = 1 to 2_000 do
          let p = Kit.Prng.pick prng prefixes in
          List.iter
            (fun a ->
              let flat = Option.map snd (Igp.Fib_trie.lookup t a) in
              let agg = Option.map snd (Igp.Fib_trie.lookup_aggregated t a) in
              if flat <> agg then incr mismatches)
            [
              Igp.Prefix.first_addr p;
              Igp.Prefix.last_addr p;
              (Igp.Prefix.last_addr p + 1) land 0xFFFFFFFF;
            ]
        done;
        if !mismatches > 0 then failed := true;
        Format.printf
          "%8d prefixes: build %8.1f ms, %8d installed of %8d (ratio %.2f), \
           %8.0f KB, churn %7.4f ms/op, %6.1f visited/op, %d mismatches@."
          n build_ms stats.Igp.Fib_trie.installed stats.Igp.Fib_trie.routes
          stats.Igp.Fib_trie.ratio
          (float_of_int stats.Igp.Fib_trie.approx_bytes /. 1024.)
          (churn_ms /. float_of_int churn_ops)
          visited_per_update !mismatches;
        (n, build_ms, stats, churn_ms /. float_of_int churn_ops,
         visited_per_update))
      scales
  in
  (* FAQS gate on the deterministic counter, not wall clock: update work
     at the largest table must not exceed the smallest by more than a
     constant factor. *)
  let n_small, _, _, _, v_small = List.hd results in
  let n_large, _, _, _, v_large = List.nth results (List.length results - 1) in
  let independent = v_large <= (4. *. v_small) +. 16. in
  Format.printf
    "update cost: %.1f visited/op at %d prefixes vs %.1f at %d — %s@." v_small
    n_small v_large n_large
    (if independent then "independent of table size"
     else "GROWS WITH TABLE SIZE");
  if not independent then failed := true;
  (* -- Integrated: GEANT carrying a synthesized table, with lie churn.
     The per-router aggregated LPM must agree with a flat scan of the
     announced prefixes after every reconvergence. *)
  let geant_prefixes = if quick then 300 else 2_000 in
  let warm_ms, lie_ms, agg_ratio, agg_kb =
    let entry = Netgraph.Zoo.geant () in
    let g = entry.Netgraph.Zoo.graph in
    let net = Igp.Network.create g in
    let prng = Kit.Prng.create ~seed:23 in
    let prefixes = Array.of_list (Igp.Prefix.synthesize prng ~n:geant_prefixes) in
    let nodes = Array.of_list (G.nodes g) in
    Array.iter
      (fun p ->
        Igp.Network.announce_prefix net p ~origin:(Kit.Prng.pick prng nodes)
          ~cost:0)
      prefixes;
    let t0 = Unix.gettimeofday () in
    Igp.Network.warm net;
    let warm_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let flat_lpm router a =
      (* Reference: longest announced prefix covering [a] that has a FIB
         at this router, found by linear scan. *)
      Array.fold_left
        (fun best p ->
          if not (Igp.Prefix.contains_addr p a) then best
          else
            match Igp.Network.fib net ~router p with
            | None -> best
            | Some fib -> (
              match best with
              | Some (q, _) when Igp.Prefix.len q >= Igp.Prefix.len p -> best
              | _ -> Some (p, fib)))
        None prefixes
    in
    let agree label =
      let bad = ref 0 in
      for _ = 1 to 200 do
        let router = Kit.Prng.pick prng nodes in
        let p = Kit.Prng.pick prng prefixes in
        let a = Igp.Prefix.first_addr p in
        match (Igp.Network.lpm net ~router a, flat_lpm router a) with
        | None, None -> ()
        | Some (_, agg), Some (_, flat) ->
          if not (Igp.Fib.same_behavior agg flat) then incr bad
        | _ -> incr bad
      done;
      if !bad > 0 then begin
        Format.printf "GEANT %s: %d/200 probes disagree with flat FIB@." label
          !bad;
        failed := true
      end
    in
    agree "baseline";
    (* Lie churn: inject and retract fakes on random announced prefixes,
       reconverging and re-probing each time. *)
    let lies = if quick then 5 else 20 in
    let t0 = Unix.gettimeofday () in
    for i = 1 to lies do
      let at = Kit.Prng.pick prng nodes in
      let prefix = Kit.Prng.pick prng prefixes in
      let forwarding = fst (Kit.Prng.pick prng (Array.of_list (G.succ g at))) in
      let fake_id = Printf.sprintf "tfib%d" i in
      Igp.Network.inject_fake net
        { fake_id; attachment = at; attachment_cost = 1; prefix;
          announced_cost = 0; forwarding };
      Igp.Network.warm net;
      agree (Printf.sprintf "lie %d installed" i);
      Igp.Network.retract_fake net ~fake_id;
      Igp.Network.warm net;
      agree (Printf.sprintf "lie %d retracted" i)
    done;
    let lie_ms = (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int lies in
    (* Aggregation payoff across the real per-router tries. *)
    let ratios, kbs =
      List.split
        (List.map
           (fun router ->
             let s = Igp.Spf_engine.aggregation (Igp.Network.engine net) ~router in
             (s.Igp.Fib_trie.ratio,
              float_of_int s.Igp.Fib_trie.approx_bytes /. 1024.))
           (Array.to_list nodes))
    in
    let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
    (warm_ms, lie_ms, mean ratios, mean kbs)
  in
  Format.printf
    "GEANT x %d prefixes: warm %8.1f ms, %8.2f ms per lie cycle, mean \
     aggregation ratio %.2f, %.0f KB trie per router@."
    geant_prefixes warm_ms lie_ms agg_ratio agg_kb;
  if json then begin
    let oc = open_out "BENCH_fib.json" in
    let field fmt (n, build_ms, (s : Igp.Fib_trie.stats), ms_per_op, vpo) =
      Printf.sprintf fmt n build_ms s.routes s.installed s.ratio s.approx_bytes
        ms_per_op vpo
    in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"fib\",\n\
      \  \"scales\": [\n%s\n  ],\n\
      \  \"geant\": {\"prefixes\": %d, \"warm_ms\": %.2f, \"lie_cycle_ms\": \
       %.2f,\n\
      \            \"mean_aggregation_ratio\": %.3f, \
       \"mean_trie_kb\": %.1f},\n\
      \  \"equivalent\": %b\n\
       }\n"
      (String.concat ",\n"
         (List.map
            (field
               "    {\"prefixes\": %d, \"build_ms\": %.2f, \"routes\": %d, \
                \"installed\": %d,\n\
               \     \"aggregation_ratio\": %.3f, \"approx_bytes\": %d, \
                \"update_ms\": %.5f,\n\
               \     \"visited_per_update\": %.1f}")
            results))
      geant_prefixes warm_ms lie_ms agg_ratio agg_kb (not !failed);
    close_out oc;
    Format.printf "wrote BENCH_fib.json@."
  end;
  (match history with
  | None -> ()
  | Some file ->
    let rows =
      List.map
        (fun (n, _, (s : Igp.Fib_trie.stats), ms_per_op, vpo) ->
          {
            Obs.History.tag;
            track = "fib_update";
            values =
              [
                ("wall_ms", ms_per_op);
                ("visited_per_update", vpo);
                ("aggregation_ratio", s.ratio);
                ("prefixes", float_of_int n);
              ];
          })
        results
    in
    Obs.History.append ~file rows;
    Format.printf "appended %d rows (tag %s) to %s@." (List.length rows) tag
      file);
  if !failed then begin
    Format.printf "TFIB FAILED: aggregated FIB diverged or updates scale with table size@.";
    exit 1
  end

let gate_main ~file =
  section "GATE" "Bench-history regression gate (newest row vs rolling median)";
  match Obs.History.load ~file with
  | [] ->
    Format.printf "no history at %s — nothing to gate (bootstrap run)@." file;
    0
  | rows ->
    let verdicts = Obs.History.gate rows in
    if verdicts = [] then begin
      Format.printf "%d rows, no comparable baseline yet — pass@."
        (List.length rows);
      0
    end
    else begin
      Format.printf "%a" Obs.History.pp_verdicts verdicts;
      if Obs.History.gate_ok verdicts then begin
        Format.printf "gate: OK@.";
        0
      end
      else begin
        Format.printf "gate: REGRESSION@.";
        1
      end
    end

(* --history FILE / history=FILE, --tag SHA / tag=SHA. *)
let flag_value name =
  let v = ref None in
  Array.iteri
    (fun i a ->
      if a = "--" ^ name && i + 1 < Array.length Sys.argv then
        v := Some Sys.argv.(i + 1)
      else
        match String.split_on_char '=' a with
        | [ k; x ] when k = name -> v := Some x
        | _ -> ())
    Sys.argv;
  !v

let () =
  let quick = Array.exists (fun a -> a = "quick") Sys.argv in
  let json = Array.exists (fun a -> a = "json") Sys.argv in
  (* domains=N pins the process-default pool width (same knob as
     fibbingctl --domains); otherwise FIBBING_DOMAINS / the machine
     default apply. *)
  Array.iter
    (fun a ->
      match String.split_on_char '=' a with
      | [ "domains"; d ] -> Kit.Pool.set_default_domains (int_of_string_opt d)
      | _ -> ())
    Sys.argv;
  if Array.exists (fun a -> a = "gate") Sys.argv then begin
    let file =
      Option.value ~default:"bench/history.jsonl" (flag_value "history")
    in
    exit (gate_main ~file)
  end;
  if Array.exists (fun a -> a = "prof-quick") Sys.argv then begin
    (* Allocation-baseline smoke for @prof-quick / @check: the three
       prof tracks at reduced scale, no history. *)
    tprof ~quick:true ~history:None ~tag:"dev" ();
    Format.printf "@.done.@.";
    exit 0
  end;
  if Array.exists (fun a -> a = "prof") Sys.argv then begin
    let tag = Option.value ~default:"dev" (flag_value "tag") in
    tprof ~quick ~history:(flag_value "history") ~tag ();
    Format.printf "@.done.@.";
    exit 0
  end;
  if Array.exists (fun a -> a = "fib-quick") Sys.argv then begin
    (* Prefix-scale FIB smoke for @fib-quick / @check: reduced-scale
       trie build + churn with the flat/aggregated equivalence and
       FAQS update-cost gates; exits 1 on divergence. *)
    tfib ~json:false ~quick:true ~history:None ~tag:"dev" ();
    Format.printf "@.done.@.";
    exit 0
  end;
  if Array.exists (fun a -> a = "fib") Sys.argv then begin
    (* Full-scale TFIB only (with json: regenerates BENCH_fib.json;
       with --history: appends fib_update rows for the gate). *)
    let tag = Option.value ~default:"dev" (flag_value "tag") in
    tfib ~json ~quick ~history:(flag_value "history") ~tag ();
    Format.printf "@.done.@.";
    exit 0
  end;
  if Array.exists (fun a -> a = "flow-quick") Sys.argv then begin
    (* Standalone smoke for @flow-quick / @check: just the flow engine
       section at reduced scale, no JSON. *)
    tflow ~json:false ~quick:true ();
    Format.printf "@.done.@.";
    exit 0
  end;
  if Array.exists (fun a -> a = "watch-quick") Sys.argv then begin
    (* Watchdog smoke for @watch-quick / @check: the deterministic
       overhead + non-interference gates at reduced scale. *)
    twatch ~quick:true ();
    Format.printf "@.done.@.";
    exit 0
  end;
  if Array.exists (fun a -> a = "par-quick") Sys.argv then begin
    (* Parallel-equivalence smoke for @par-quick / @check: TPAR at
       reduced scale, exits 1 if parallel ≢ sequential. *)
    tpar ~json:false ~quick:true ();
    Format.printf "@.done.@.";
    exit 0
  end;
  if Array.exists (fun a -> a = "par") Sys.argv then begin
    (* Full-scale TPAR only (with json: regenerates BENCH_parallel.json). *)
    tpar ~json ~quick:false ();
    Format.printf "@.done.@.";
    exit 0
  end;
  if Array.exists (fun a -> a = "spf") Sys.argv then begin
    (* TSPF only (with json: regenerates BENCH_spf.json). *)
    tspf ~json ();
    Format.printf "@.done.@.";
    exit 0
  end;
  f1a ();
  f1b ();
  f1c ();
  f1d ();
  let f2_state = f2 () in
  tqoe f2_state;
  tovh ();
  tscale ();
  topt ();
  tabr ();
  taimd ();
  tzoo ();
  ttrans ();
  tfail ();
  tctrl ();
  tconv ();
  tstrat ();
  tmicro ();
  tplan ();
  tspf ~json ();
  tflow ~json ~quick ();
  tpar ~json ~quick ();
  tfib ~json ~quick ~history:None ~tag:"dev" ();
  twatch ~quick ();
  if not quick then bechamel_timings ();
  (* Last: pins the default pool width to 1 for its own nets. *)
  tprof ~quick ~history:(flag_value "history")
    ~tag:(Option.value ~default:"dev" (flag_value "tag"))
    ();
  Format.printf "@.done.@."
