(* Machine-output validator for the CLI smoke tests.

   Modes:
     check_jsonl FILE        every line must parse as a JSON object
     check_jsonl --doc FILE  the whole file must parse as one JSON object
     check_jsonl --om FILE   OpenMetrics shape: samples are "name value",
                             comments start with '#', ends with "# EOF"

   Exit 0 on success; prints the offending line and exits 1 otherwise.
   This is what guarantees "stdout is pure JSONL when a machine flag is
   set": anything human-readable leaking onto stdout breaks the parse. *)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let check_jsonl file =
  let lines =
    String.split_on_char '\n' (read_file file)
    |> List.filter (fun l -> l <> "")
  in
  if lines = [] then die "%s: no output lines" file;
  List.iteri
    (fun i l ->
      match Kit.Json.parse l with
      | Ok (Kit.Json.Obj _) -> ()
      | Ok _ -> die "%s:%d: line is not a JSON object: %s" file (i + 1) l
      | Error e -> die "%s:%d: %s in line: %s" file (i + 1) e l)
    lines

let check_doc file =
  match Kit.Json.parse (read_file file) with
  | Ok (Kit.Json.Obj _) -> ()
  | Ok _ -> die "%s: top level is not a JSON object" file
  | Error e -> die "%s: %s" file e

let check_om file =
  let txt = read_file file in
  let n = String.length txt in
  if n < 6 || String.sub txt (n - 6) 6 <> "# EOF\n" then
    die "%s: missing terminal # EOF" file;
  String.split_on_char '\n' txt
  |> List.filter (fun l -> l <> "")
  |> List.iteri (fun i l ->
         if l.[0] <> '#' then
           match String.rindex_opt l ' ' with
           | None -> die "%s:%d: sample without value: %s" file (i + 1) l
           | Some sp -> (
             let v = String.sub l (sp + 1) (String.length l - sp - 1) in
             match float_of_string_opt v with
             | Some _ -> ()
             | None -> die "%s:%d: non-numeric value: %s" file (i + 1) l))

let () =
  match Sys.argv with
  | [| _; file |] -> check_jsonl file
  | [| _; "--doc"; file |] -> check_doc file
  | [| _; "--om"; file |] -> check_om file
  | _ -> die "usage: check_jsonl [--doc|--om] FILE"
