(* Unit and property tests for the Kit support library. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Prng ---------- *)

let test_prng_deterministic () =
  let a = Kit.Prng.create ~seed:42 in
  let b = Kit.Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Kit.Prng.bits64 a) (Kit.Prng.bits64 b)
  done

let test_prng_seeds_differ () =
  let a = Kit.Prng.create ~seed:1 in
  let b = Kit.Prng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true
    (Kit.Prng.bits64 a <> Kit.Prng.bits64 b)

let test_prng_copy_independent () =
  let a = Kit.Prng.create ~seed:7 in
  ignore (Kit.Prng.bits64 a);
  let b = Kit.Prng.copy a in
  let xa = Kit.Prng.bits64 a in
  let xb = Kit.Prng.bits64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  ignore (Kit.Prng.bits64 a);
  (* b unaffected by advancing a *)
  let xa2 = Kit.Prng.bits64 a in
  let xb2 = Kit.Prng.bits64 b in
  Alcotest.(check bool) "streams diverge after unequal draws" true (xa2 <> xb2 || xa = xb)

let test_prng_int_bounds () =
  let t = Kit.Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Kit.Prng.int t 7 in
    Alcotest.(check bool) "0 <= x < 7" true (x >= 0 && x < 7)
  done

let test_prng_float_bounds () =
  let t = Kit.Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Kit.Prng.float t 3.5 in
    Alcotest.(check bool) "0 <= x < 3.5" true (x >= 0. && x < 3.5)
  done

let test_prng_int_covers_range () =
  let t = Kit.Prng.create ~seed:9 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Kit.Prng.int t 5) <- true
  done;
  Alcotest.(check bool) "all buckets hit" true (Array.for_all Fun.id seen)

let test_prng_exponential_mean () =
  let t = Kit.Prng.create ~seed:11 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Kit.Prng.exponential t ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "sample mean %.3f close to 2.0" mean)
    true
    (abs_float (mean -. 2.0) < 0.1)

let test_prng_shuffle_permutation () =
  let t = Kit.Prng.create ~seed:3 in
  let a = Array.init 20 Fun.id in
  Kit.Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 20 Fun.id) sorted

(* ---------- Heap ---------- *)

let test_heap_ordering () =
  let h = Kit.Heap.create () in
  List.iter (fun p -> Kit.Heap.push h ~priority:p (int_of_float p))
    [ 5.; 1.; 4.; 2.; 3. ];
  let order = List.init 5 (fun _ -> match Kit.Heap.pop h with
    | Some (_, v) -> v
    | None -> Alcotest.fail "heap empty early")
  in
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 4; 5 ] order

let test_heap_empty () =
  let h : int Kit.Heap.t = Kit.Heap.create () in
  Alcotest.(check bool) "is_empty" true (Kit.Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Kit.Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Kit.Heap.peek h = None)

let test_heap_peek_does_not_remove () =
  let h = Kit.Heap.create () in
  Kit.Heap.push h ~priority:1. "x";
  Alcotest.(check bool) "peek" true (Kit.Heap.peek h = Some (1., "x"));
  Alcotest.(check int) "size unchanged" 1 (Kit.Heap.size h)

let test_heap_duplicates () =
  let h = Kit.Heap.create () in
  Kit.Heap.push h ~priority:1. "a";
  Kit.Heap.push h ~priority:1. "b";
  Kit.Heap.push h ~priority:1. "c";
  Alcotest.(check int) "size 3" 3 (Kit.Heap.size h);
  let popped = List.init 3 (fun _ -> match Kit.Heap.pop h with
    | Some (_, v) -> v
    | None -> Alcotest.fail "missing")
  in
  Alcotest.(check (list string)) "all present" [ "a"; "b"; "c" ]
    (List.sort compare popped)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in priority order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun priorities ->
      let h = Kit.Heap.create () in
      List.iteri (fun i p -> Kit.Heap.push h ~priority:p i) priorities;
      let rec drain acc =
        match Kit.Heap.pop h with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare priorities)

(* ---------- Heap.Int ---------- *)

let test_int_heap_ordering () =
  let h = Kit.Heap.Int.create () in
  List.iter (fun p -> Kit.Heap.Int.push h ~priority:p (p * 10))
    [ 5; 1; 4; 2; 3 ];
  let order = List.init 5 (fun _ -> match Kit.Heap.Int.pop h with
    | Some (_, v) -> v
    | None -> Alcotest.fail "heap empty early")
  in
  Alcotest.(check (list int)) "ascending" [ 10; 20; 30; 40; 50 ] order

let test_int_heap_empty_and_clear () =
  let h = Kit.Heap.Int.create ~capacity:4 () in
  Alcotest.(check bool) "is_empty" true (Kit.Heap.Int.is_empty h);
  Alcotest.(check bool) "pop none" true (Kit.Heap.Int.pop h = None);
  Alcotest.(check bool) "peek none" true (Kit.Heap.Int.peek h = None);
  Kit.Heap.Int.push h ~priority:3 7;
  Kit.Heap.Int.push h ~priority:1 9;
  Alcotest.(check bool) "peek min" true (Kit.Heap.Int.peek h = Some (1, 9));
  Alcotest.(check int) "size" 2 (Kit.Heap.Int.size h);
  Kit.Heap.Int.clear h;
  Alcotest.(check bool) "cleared" true (Kit.Heap.Int.is_empty h)

let test_int_heap_duplicates () =
  (* Lazy deletion: the same value may sit in the heap several times with
     different priorities; every copy surfaces. *)
  let h = Kit.Heap.Int.create () in
  Kit.Heap.Int.push h ~priority:4 1;
  Kit.Heap.Int.push h ~priority:2 1;
  Kit.Heap.Int.push h ~priority:2 2;
  Alcotest.(check int) "all retained" 3 (Kit.Heap.Int.size h);
  let popped = List.init 3 (fun _ -> match Kit.Heap.Int.pop h with
    | Some pv -> pv
    | None -> Alcotest.fail "missing")
  in
  Alcotest.(check (list (pair int int))) "ordered with duplicates"
    [ (2, 1); (2, 2); (4, 1) ]
    (List.sort compare popped)

let prop_int_heap_sorts =
  QCheck.Test.make ~name:"int heap pops in priority order" ~count:200
    QCheck.(list (int_range 0 100000))
    (fun priorities ->
      let h = Kit.Heap.Int.create () in
      List.iteri (fun i p -> Kit.Heap.Int.push h ~priority:p i) priorities;
      let rec drain acc =
        match Kit.Heap.Int.pop h with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare priorities)

(* ---------- Pool ---------- *)

let test_pool_iter_covers_all () =
  let pool = Kit.Pool.create ~domains:4 () in
  Alcotest.(check int) "domain count" 4 (Kit.Pool.domain_count pool);
  let n = 1000 in
  let hits = Array.make n 0 in
  (* Disjoint slots: each index is claimed exactly once. *)
  Kit.Pool.iter pool ~n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_pool_map_results () =
  let pool = Kit.Pool.create ~domains:3 () in
  let squares = Kit.Pool.map pool ~n:50 (fun i -> i * i) in
  Alcotest.(check (array int)) "squares" (Array.init 50 (fun i -> i * i)) squares

let test_pool_sequential_degenerate () =
  let pool = Kit.Pool.create ~domains:1 () in
  let sum = ref 0 in
  Kit.Pool.iter pool ~n:100 (fun i -> sum := !sum + i);
  Alcotest.(check int) "sequential sum" 4950 !sum;
  Kit.Pool.iter pool ~n:0 (fun _ -> Alcotest.fail "no work expected")

let test_pool_propagates_exception () =
  let pool = Kit.Pool.create ~domains:4 () in
  Alcotest.check_raises "first failure re-raised" (Failure "boom") (fun () ->
      Kit.Pool.iter pool ~n:64 (fun i -> if i = 13 then failwith "boom"))

let test_pool_uneven_chunks () =
  (* n smaller than, equal to, and not divisible by the claim
     granularity: chunked claiming must still cover every index once. *)
  let pool = Kit.Pool.create ~domains:4 () in
  List.iter
    (fun n ->
      let hits = Array.make (max n 1) 0 in
      Kit.Pool.iter pool ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check int)
        (Printf.sprintf "n=%d covered exactly once" n)
        n
        (Array.fold_left ( + ) 0 hits))
    [ 1; 3; 7; 32; 33; 1001 ]

let test_pool_default_domains_override () =
  let initial = Kit.Pool.default_domain_count () in
  Alcotest.(check bool) "default is positive" true (initial >= 1);
  Kit.Pool.set_default_domains (Some 3);
  Alcotest.(check int) "override wins" 3 (Kit.Pool.default_domain_count ());
  let pool = Kit.Pool.create () in
  Alcotest.(check int) "create picks up override" 3
    (Kit.Pool.domain_count pool);
  Kit.Pool.set_default_domains None;
  Alcotest.(check int) "override cleared" initial
    (Kit.Pool.default_domain_count ())

(* ---------- Stats ---------- *)

let test_stats_mean () =
  check_float "mean" 2.5 (Kit.Stats.mean [ 1.; 2.; 3.; 4. ]);
  check_float "empty mean" 0. (Kit.Stats.mean [])

let test_stats_variance () =
  check_float "variance" 1.25 (Kit.Stats.variance [ 1.; 2.; 3.; 4. ]);
  check_float "singleton" 0. (Kit.Stats.variance [ 5. ])

let test_stats_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ] in
  check_float "p50" 5. (Kit.Stats.percentile 50. xs);
  check_float "p100" 10. (Kit.Stats.percentile 100. xs);
  check_float "p10" 1. (Kit.Stats.percentile 10. xs)

let test_stats_percentile_empty () =
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile: empty list") (fun () ->
      ignore (Kit.Stats.percentile 50. []))

let test_stats_minmax () =
  check_float "min" (-3.) (Kit.Stats.minimum [ 2.; -3.; 7. ]);
  check_float "max" 7. (Kit.Stats.maximum [ 2.; -3.; 7. ])

let test_stats_ewma () =
  check_float "alpha=1 takes sample" 10. (Kit.Stats.ewma ~alpha:1. 4. 10.);
  check_float "alpha=0 keeps previous" 4. (Kit.Stats.ewma ~alpha:0. 4. 10.);
  check_float "midpoint" 7. (Kit.Stats.ewma ~alpha:0.5 4. 10.)

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean between min and max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.))
    (fun xs ->
      let m = Kit.Stats.mean xs in
      m >= Kit.Stats.minimum xs -. 1e-9 && m <= Kit.Stats.maximum xs +. 1e-9)

(* ---------- Ratio ---------- *)

let test_ratio_thirds () =
  let m = Kit.Ratio.approximate ~max_total:4 [| 1. /. 3.; 2. /. 3. |] in
  Alcotest.(check (array int)) "1:2" [| 1; 2 |] m

let test_ratio_even () =
  let m = Kit.Ratio.approximate ~max_total:16 [| 0.5; 0.5 |] in
  Alcotest.(check bool) "equal multiplicities" true (m.(0) = m.(1))

let test_ratio_realized_sums_to_one () =
  let r = Kit.Ratio.realized [| 3; 5; 2 |] in
  check_float "sums to 1" 1. (Array.fold_left ( +. ) 0. r)

let test_ratio_wider_fib_is_finer () =
  let fractions = [| 0.36; 0.64 |] in
  let narrow = Kit.Ratio.approximate ~max_total:3 fractions in
  let wide = Kit.Ratio.approximate ~max_total:32 fractions in
  Alcotest.(check bool) "wider FIB at least as accurate" true
    (Kit.Ratio.max_error fractions wide
    <= Kit.Ratio.max_error fractions narrow +. 1e-12)

let test_ratio_rejects_bad_input () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Ratio.approximate: empty fractions") (fun () ->
      ignore (Kit.Ratio.approximate ~max_total:4 [||]));
  Alcotest.check_raises "too many hops"
    (Invalid_argument "Ratio.approximate: more next hops than max_total")
    (fun () -> ignore (Kit.Ratio.approximate ~max_total:2 [| 0.3; 0.3; 0.4 |]));
  Alcotest.check_raises "not normalized"
    (Invalid_argument "Ratio.approximate: fractions must sum to 1") (fun () ->
      ignore (Kit.Ratio.approximate ~max_total:4 [| 0.5; 0.2 |]))

let ratio_gen =
  (* Random normalized fraction vectors of length 2..6. *)
  QCheck.make
    ~print:(fun a -> String.concat ";" (List.map string_of_float (Array.to_list a)))
    QCheck.Gen.(
      int_range 2 6 >>= fun k ->
      list_repeat k (float_range 0.05 1.) >|= fun raw ->
      let total = List.fold_left ( +. ) 0. raw in
      Array.of_list (List.map (fun x -> x /. total) raw))

let prop_ratio_respects_bounds =
  QCheck.Test.make ~name:"ratio multiplicities within bounds" ~count:300
    ratio_gen (fun fractions ->
      let m = Kit.Ratio.approximate ~max_total:16 fractions in
      Array.length m = Array.length fractions
      && Array.for_all (fun x -> x >= 1) m
      && Array.fold_left ( + ) 0 m <= 16)

let prop_ratio_beats_uniform_error =
  QCheck.Test.make ~name:"ratio error bounded by quantum" ~count:300 ratio_gen
    (fun fractions ->
      let m = Kit.Ratio.approximate ~max_total:16 fractions in
      let total = Array.fold_left ( + ) 0 m in
      (* Largest-remainder with the best denominator keeps the error
         below one FIB quantum. *)
      Kit.Ratio.max_error fractions m <= 1. /. float_of_int total +. 1e-9)

(* ---------- Timeseries ---------- *)

let test_timeseries_basic () =
  let ts = Kit.Timeseries.create ~name:"x" in
  Kit.Timeseries.add ts ~time:0. 1.;
  Kit.Timeseries.add ts ~time:1. 2.;
  Kit.Timeseries.add ts ~time:2. 3.;
  Alcotest.(check int) "length" 3 (Kit.Timeseries.length ts);
  check_float "step lookup" 2. (Kit.Timeseries.value_at ts 1.5);
  check_float "before first" 0. (Kit.Timeseries.value_at ts (-1.));
  check_float "peak" 3. (Kit.Timeseries.peak ts)

let test_timeseries_monotonic () =
  let ts = Kit.Timeseries.create ~name:"x" in
  Kit.Timeseries.add ts ~time:5. 1.;
  Alcotest.check_raises "non-monotonic"
    (Invalid_argument "Timeseries.add: non-monotonic time") (fun () ->
      Kit.Timeseries.add ts ~time:4. 1.)

let test_timeseries_to_csv () =
  let a = Kit.Timeseries.create ~name:"x" in
  let b = Kit.Timeseries.create ~name:"y" in
  Kit.Timeseries.add a ~time:0. 1.;
  Kit.Timeseries.add a ~time:1. 2.;
  Kit.Timeseries.add b ~time:0. 5.;
  let csv = Kit.Timeseries.to_csv ~step:1. [ a; b ] in
  Alcotest.(check (list string)) "rows"
    [ "time,x,y"; "0,1,5"; "1,2,5"; "" ]
    (String.split_on_char '\n' csv)

let test_timeseries_window_mean () =
  let ts = Kit.Timeseries.create ~name:"x" in
  List.iter (fun (t, v) -> Kit.Timeseries.add ts ~time:t v)
    [ (0., 1.); (1., 2.); (2., 3.); (3., 100.) ];
  check_float "window [0,3)" 2. (Kit.Timeseries.window_mean ts ~from:0. ~until:3.);
  check_float "empty window" 0. (Kit.Timeseries.window_mean ts ~from:10. ~until:20.)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "kit"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "int covers range" `Quick test_prng_int_covers_range;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "peek" `Quick test_heap_peek_does_not_remove;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
        ] );
      ( "heap-int",
        [
          Alcotest.test_case "ordering" `Quick test_int_heap_ordering;
          Alcotest.test_case "empty/clear" `Quick test_int_heap_empty_and_clear;
          Alcotest.test_case "duplicates" `Quick test_int_heap_duplicates;
        ] );
      ( "pool",
        [
          Alcotest.test_case "iter covers all" `Quick test_pool_iter_covers_all;
          Alcotest.test_case "map results" `Quick test_pool_map_results;
          Alcotest.test_case "sequential degenerate" `Quick
            test_pool_sequential_degenerate;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "uneven chunk coverage" `Quick
            test_pool_uneven_chunks;
          Alcotest.test_case "default domains override" `Quick
            test_pool_default_domains_override;
        ] );
      qsuite "heap-props" [ prop_heap_sorts; prop_int_heap_sorts ];
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile empty" `Quick test_stats_percentile_empty;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
          Alcotest.test_case "ewma" `Quick test_stats_ewma;
        ] );
      qsuite "stats-props" [ prop_stats_mean_bounds ];
      ( "ratio",
        [
          Alcotest.test_case "thirds" `Quick test_ratio_thirds;
          Alcotest.test_case "even" `Quick test_ratio_even;
          Alcotest.test_case "realized normalized" `Quick test_ratio_realized_sums_to_one;
          Alcotest.test_case "wider is finer" `Quick test_ratio_wider_fib_is_finer;
          Alcotest.test_case "bad input" `Quick test_ratio_rejects_bad_input;
        ] );
      qsuite "ratio-props" [ prop_ratio_respects_bounds; prop_ratio_beats_uniform_error ];
      ( "timeseries",
        [
          Alcotest.test_case "basic" `Quick test_timeseries_basic;
          Alcotest.test_case "monotonic" `Quick test_timeseries_monotonic;
          Alcotest.test_case "window mean" `Quick test_timeseries_window_mean;
          Alcotest.test_case "to_csv" `Quick test_timeseries_to_csv;
        ] );
    ]
