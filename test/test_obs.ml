(* Tests for the Obs telemetry library: metrics round-trips, percentile
   estimates against a sorted oracle, span nesting, timeline ordering,
   the Kit.Ring buffer backing the bounded logs, and end-to-end
   determinism of the traced F2 demo scenario.

   Obs state is global and tests run sequentially in one process, so
   every test brackets its work with [with_obs] (reset + enable +
   disable) and never leaves the switch on. *)

let checkf = Alcotest.(check (float 1e-6))

let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () -> Obs.disable ()) f

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_roundtrip () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test.counter" in
      Alcotest.(check int) "starts at zero" 0 (Obs.Metrics.counter_value c);
      Obs.Metrics.incr c;
      Obs.Metrics.add c 41;
      Alcotest.(check int) "incr + add" 42 (Obs.Metrics.counter_value c);
      (* Find-or-create returns the same cell. *)
      let c' = Obs.Metrics.counter "test.counter" in
      Obs.Metrics.incr c';
      Alcotest.(check int) "same cell by name" 43 (Obs.Metrics.counter_value c))

let test_gauge_roundtrip () =
  with_obs (fun () ->
      let g = Obs.Metrics.gauge "test.gauge" in
      checkf "starts at zero" 0. (Obs.Metrics.gauge_value g);
      Obs.Metrics.set g 2.5;
      Obs.Metrics.set g 1.25;
      checkf "last write wins" 1.25 (Obs.Metrics.gauge_value g))

let test_histogram_roundtrip () =
  with_obs (fun () ->
      let h =
        Obs.Metrics.histogram ~buckets:[| 1.; 2.; 4. |] "test.histogram"
      in
      List.iter (Obs.Metrics.observe h) [ 0.5; 1.5; 3.; 100. ];
      let s = Obs.Metrics.summary h in
      Alcotest.(check int) "count" 4 s.count;
      checkf "sum" 105. s.sum;
      checkf "min" 0.5 s.min;
      checkf "max" 100. s.max;
      (* rank(0.5) = ceil(0.5 * 4) = 2 -> second bucket (1, 2], fully
         interpolated to its upper bound. *)
      checkf "p50 lands in its bucket" 2. s.p50)

let test_disabled_ops_are_noops () =
  Obs.reset ();
  Obs.disable ();
  let c = Obs.Metrics.counter "test.disabled.counter" in
  let g = Obs.Metrics.gauge "test.disabled.gauge" in
  let h = Obs.Metrics.histogram "test.disabled.histogram" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 7;
  Obs.Metrics.set g 3.;
  Obs.Metrics.observe h 1.;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  checkf "gauge untouched" 0. (Obs.Metrics.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Metrics.summary h).count

let test_kind_mismatch_rejected () =
  ignore (Obs.Metrics.counter "test.kind");
  Alcotest.(check bool) "gauge under a counter name" true
    (try
       ignore (Obs.Metrics.gauge "test.kind");
       false
     with Invalid_argument _ -> true)

let test_reset_keeps_handles () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test.reset.counter" in
      Obs.Metrics.add c 5;
      Obs.Metrics.reset ();
      Alcotest.(check int) "zeroed" 0 (Obs.Metrics.counter_value c);
      Obs.Metrics.incr c;
      Alcotest.(check int) "handle still live" 1 (Obs.Metrics.counter_value c);
      Alcotest.(check bool) "registration survives in dump" true
        (List.mem_assoc "test.reset.counter" (Obs.Metrics.dump ())))

let test_metrics_json_deterministic () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test.json.counter" in
      Obs.Metrics.add c 3;
      let j1 = Obs.Metrics.to_json_lines () in
      let j2 = Obs.Metrics.to_json_lines () in
      Alcotest.(check string) "stable output" j1 j2;
      Alcotest.(check bool) "contains the counter" true
        (let rec contains i =
           i + 17 <= String.length j1
           && (String.sub j1 i 17 = "test.json.counter" || contains (i + 1))
         in
         contains 0))

(* Percentile estimates vs. a sorted-sample oracle. The histogram's
   default buckets are log-spaced at ratio 1.25, and the estimate is
   interpolated within the bucket holding the nearest-rank sample, so
   estimate/oracle must stay within one bucket ratio. *)
let pct_gen =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 1 80) (int_range 0 1_000_000))

let prop_percentile_oracle =
  QCheck.Test.make ~name:"quantile tracks the nearest-rank oracle" ~count:200
    pct_gen (fun (n, seed) ->
      let prng = Kit.Prng.create ~seed in
      let values = List.init n (fun _ -> 0.01 +. Kit.Prng.float prng 50.) in
      Obs.reset ();
      Obs.enable ();
      let h = Obs.Metrics.histogram "test.pct" in
      List.iter (Obs.Metrics.observe h) values;
      let sorted = Array.of_list (List.sort compare values) in
      let ok =
        List.for_all
          (fun q ->
            let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
            let oracle = sorted.(rank - 1) in
            let est = Obs.Metrics.quantile h q in
            est >= (oracle /. 1.2501) -. 1e-9
            && est <= (oracle *. 1.2501) +. 1e-9)
          [ 0.5; 0.9; 0.95; 0.99; 1.0 ]
      in
      Obs.disable ();
      ok)

(* ------------------------------------------------------------------ *)
(* Trace spans                                                         *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_obs (fun () ->
      let result =
        Obs.Trace.with_span "outer" (fun () ->
            Obs.Trace.with_span "inner" (fun () -> 7))
      in
      Alcotest.(check int) "value passes through" 7 result;
      match Obs.Trace.spans () with
      | [ inner; outer ] ->
        (* Completion order: inner closes first. *)
        Alcotest.(check string) "inner name" "inner" inner.Obs.Trace.name;
        Alcotest.(check string) "outer name" "outer" outer.Obs.Trace.name;
        Alcotest.(check int) "outer is a root" 0 outer.depth;
        Alcotest.(check bool) "outer has no parent" true (outer.parent = None);
        Alcotest.(check int) "inner nested once" 1 inner.depth;
        Alcotest.(check bool) "inner's parent is outer" true
          (inner.parent = Some outer.seq);
        Alcotest.(check bool) "begin order: outer first" true
          (outer.seq < inner.seq)
      | spans ->
        Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let test_span_exception_safety () =
  with_obs (fun () ->
      (try Obs.Trace.with_span "boom" (fun () -> raise Exit)
       with Exit -> ());
      Alcotest.(check int) "raising span still recorded" 1
        (List.length (Obs.Trace.spans ()));
      (* The span stack was popped: the next span is a root again. *)
      Obs.Trace.with_span "after" ignore;
      let after =
        List.find
          (fun (s : Obs.Trace.span) -> s.name = "after")
          (Obs.Trace.spans ())
      in
      Alcotest.(check int) "stack unwound" 0 after.depth;
      Alcotest.(check bool) "no stale parent" true (after.parent = None))

let test_span_disabled_is_identity () =
  Obs.reset ();
  Obs.disable ();
  Alcotest.(check int) "runs the function" 9
    (Obs.Trace.with_span "ghost" (fun () -> 9));
  Alcotest.(check int) "records nothing" 0 (List.length (Obs.Trace.spans ()))

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_timeline_merges_spans_causally () =
  with_obs (fun () ->
      Obs.Timeline.record ~time:1. ~source:"a" ~kind:"one" [];
      ignore
        (Obs.Trace.with_span "work" (fun () ->
             Obs.Timeline.record ~time:2. ~source:"a" ~kind:"two" [];
             ()));
      Obs.Timeline.record ~time:3. ~source:"a" ~kind:"three" [];
      let ev = Obs.Timeline.events () in
      Alcotest.(check (list string)) "span merges at its begin position"
        [ "one"; "work"; "two"; "three" ]
        (List.map (fun e -> e.Obs.Timeline.kind) ev);
      let w = List.find (fun e -> e.Obs.Timeline.kind = "work") ev in
      Alcotest.(check string) "span events come from trace" "trace" w.source;
      Alcotest.(check bool) "span event carries duration" true
        (List.mem_assoc "duration_ms" w.attrs);
      let seqs = List.map (fun e -> e.Obs.Timeline.seq) ev in
      Alcotest.(check bool) "seqs strictly increasing" true
        (List.sort_uniq compare seqs = seqs);
      (* Excluding spans drops only the trace-sourced event. *)
      Alcotest.(check int) "include_spans:false" 3
        (List.length (Obs.Timeline.events ~include_spans:false ())))

let test_timeline_disabled_records_nothing () =
  Obs.reset ();
  Obs.disable ();
  Obs.Timeline.record ~time:1. ~source:"a" ~kind:"ghost" [];
  Alcotest.(check int) "no events" 0 (List.length (Obs.Timeline.events ()))

(* ------------------------------------------------------------------ *)
(* Kit.Ring (bounded buffer behind event logs and trace rings)         *)
(* ------------------------------------------------------------------ *)

let test_ring_eviction () =
  let r = Kit.Ring.create ~capacity:3 in
  List.iter (Kit.Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 3; 4; 5 ]
    (Kit.Ring.to_list r);
  Alcotest.(check int) "dropped count" 2 (Kit.Ring.dropped r);
  Alcotest.(check int) "length capped" 3 (Kit.Ring.length r);
  Alcotest.(check int) "capacity" 3 (Kit.Ring.capacity r);
  Alcotest.(check int) "fold oldest first" 345
    (Kit.Ring.fold (fun acc x -> (acc * 10) + x) 0 r);
  Kit.Ring.clear r;
  Alcotest.(check int) "clear empties" 0 (Kit.Ring.length r);
  Alcotest.(check int) "clear resets dropped" 0 (Kit.Ring.dropped r)

let test_ring_validates_capacity () =
  Alcotest.(check bool) "capacity must be positive" true
    (try
       ignore (Kit.Ring.create ~capacity:0 : int Kit.Ring.t);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Controller log bounding (satellite: event log in a ring)            *)
(* ------------------------------------------------------------------ *)

let test_controller_log_capacity_validated () =
  let d = Scenarios.Demo.make ~fibbing:false () in
  Alcotest.(check bool) "log_capacity 0 rejected" true
    (try
       ignore
         (Fibbing.Controller.create
            ~config:
              { Fibbing.Controller.default_config with log_capacity = 0 }
            d.Scenarios.Demo.net);
       false
     with Invalid_argument _ -> true)

let test_controller_log_bounded () =
  (* A capacity-1 log retains only the newest action across the F2 run,
     which triggers two reactions. *)
  let config =
    { Fibbing.Controller.default_config with log_capacity = 1 }
  in
  let d = Scenarios.Demo.make ~fibbing:true ~controller_config:config () in
  ignore (Scenarios.Demo.load_fig2_workload d);
  Scenarios.Demo.run d ~until:45.;
  match d.Scenarios.Demo.controller with
  | None -> Alcotest.fail "controller expected"
  | Some c ->
    let actions = Fibbing.Controller.actions c in
    Alcotest.(check int) "only the newest action retained" 1
      (List.length actions)

(* ------------------------------------------------------------------ *)
(* End-to-end: traced F2 demo is deterministic and causally ordered    *)
(* ------------------------------------------------------------------ *)

let traced_f2_run () =
  let d = Scenarios.Demo.make ~fibbing:true () in
  Obs.reset ();
  Obs.enable ();
  (* Simulation time as the telemetry clock: reruns are byte-identical. *)
  Obs.Clock.set_source (fun () -> Netsim.Sim.time d.Scenarios.Demo.sim);
  ignore (Scenarios.Demo.load_fig2_workload d);
  Scenarios.Demo.run d ~until:25.;
  Obs.disable ();
  Obs.Clock.use_cpu_time ();
  (Obs.Timeline.to_json_lines (), Obs.Timeline.events ())

let test_f2_timeline_deterministic () =
  let j1, ev = traced_f2_run () in
  let j2, _ = traced_f2_run () in
  Alcotest.(check bool) "two runs byte-identical" true (String.equal j1 j2);
  let find pred = List.find_opt pred ev in
  let alarm =
    find (fun e -> e.Obs.Timeline.source = "monitor" && e.kind = "alarm")
  in
  let action =
    find (fun e -> e.Obs.Timeline.source = "controller" && e.kind = "action")
  in
  let spf =
    find (fun e -> e.Obs.Timeline.source = "trace" && e.kind = "spf.recompute")
  in
  (match (alarm, action) with
  | Some a, Some c ->
    Alcotest.(check bool) "alarm precedes controller reaction" true
      (a.Obs.Timeline.seq < c.Obs.Timeline.seq)
  | None, _ -> Alcotest.fail "no monitor alarm in timeline"
  | _, None -> Alcotest.fail "no controller action in timeline");
  Alcotest.(check bool) "SPF recompute spans present" true (spf <> None);
  Alcotest.(check bool) "timeline non-trivial" true (List.length ev > 20)

(* ------------------------------------------------------------------ *)
(* Capture scopes and domain safety                                    *)
(* ------------------------------------------------------------------ *)

let test_capture_isolates_run () =
  with_obs (fun () ->
      Obs.Timeline.record ~time:1. ~source:"outer" ~kind:"before" [];
      let v, cap =
        Obs.capture (fun () ->
            Obs.Timeline.record ~time:2. ~source:"inner" ~kind:"a" [];
            Obs.Trace.with_span "work" (fun () ->
                Obs.Timeline.record ~time:3. ~source:"inner" ~kind:"b" []);
            7)
      in
      Alcotest.(check int) "result threaded through" 7 v;
      Alcotest.(check int) "captured both events" 2 (List.length cap.Obs.events);
      Alcotest.(check int) "captured the span" 1 (List.length cap.Obs.spans);
      (* Private sequence numbering restarts at zero for each capture. *)
      Alcotest.(check int) "first captured seq is 0" 0
        (List.hd cap.Obs.events).Obs.Timeline.seq;
      Alcotest.(check bool) "capture renders to json" true
        (String.length (Obs.capture_json cap) > 0);
      (* Nothing from the capture leaked onto the shared rings. *)
      let shared = Obs.Timeline.events () in
      Alcotest.(check int) "shared ring has only the outer event" 1
        (List.length shared);
      (* Recording after the capture goes back to the shared ring. *)
      Obs.Timeline.record ~time:4. ~source:"outer" ~kind:"after" [];
      Alcotest.(check int) "shared recording resumes" 2
        (List.length (Obs.Timeline.events ())))

let test_capture_identical_across_runs () =
  (* Two captures of the same work render byte-identically even with
     shared-ring traffic interleaved between them — the per-capture
     sequence restart makes the timeline a pure function of the run. *)
  with_obs (fun () ->
      let run () =
        Obs.capture (fun () ->
            Obs.Clock.set_source (fun () -> 0.);
            Obs.Timeline.record ~source:"sim" ~kind:"step" [];
            Obs.Trace.with_span "tick" (fun () -> ()))
      in
      let _, c1 = run () in
      Obs.Timeline.record ~time:9. ~source:"noise" ~kind:"between" [];
      let _, c2 = run () in
      Alcotest.(check string) "byte-identical timelines"
        (Obs.capture_json c1) (Obs.capture_json c2))

let test_parallel_counter_increments () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test.parallel.counter" in
      let pool = Kit.Pool.create ~domains:4 () in
      Kit.Pool.iter pool ~n:1000 (fun _ -> Obs.Metrics.incr c);
      Alcotest.(check int) "no lost updates across domains" 1000
        (Obs.Metrics.counter_value c))

(* ------------------------------------------------------------------ *)
(* Prof: GC deltas on spans                                            *)
(* ------------------------------------------------------------------ *)

let with_prof f =
  Obs.reset ();
  Obs.enable ();
  Obs.Prof.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Prof.disable ();
      Obs.disable ())
    f

let prof_attr name (s : Obs.Trace.span) =
  match List.assoc_opt name s.attrs with
  | Some (Obs.Attr.Float v) -> Some v
  | Some (Obs.Attr.Int v) -> Some (float_of_int v)
  | Some _ | None -> None

(* Small blocks only: they stay in the minor heap, whose allocation
   pointer is read live (large arrays go straight to the major heap,
   where the counters only catch up at collection boundaries). *)
let churn_minor n =
  for i = 1 to n do
    ignore (Sys.opaque_identity (ref i))
  done

let test_prof_span_attrs () =
  with_prof (fun () ->
      Obs.Prof.with_span "alloc" (fun () -> churn_minor 1000);
      match Obs.Trace.spans () with
      | [ s ] ->
        (match prof_attr "alloc_words" s with
        | None -> Alcotest.fail "alloc_words attr missing"
        | Some w ->
          (* 1000 refs = 2000 words minimum. *)
          Alcotest.(check bool) "counts the refs" true (w >= 2000.))
      | l ->
        Alcotest.fail (Printf.sprintf "expected 1 span, got %d" (List.length l)))

let test_prof_off_means_plain_spans () =
  with_obs (fun () ->
      Obs.Prof.with_span "plain" (fun () -> churn_minor 100);
      match Obs.Trace.spans () with
      | [ s ] ->
        Alcotest.(check bool) "no prof attrs with prof off" true
          (prof_attr "alloc_words" s = None)
      | _ -> Alcotest.fail "expected 1 span")

let test_prof_alloc_counter () =
  with_prof (fun () ->
      let c = Obs.Metrics.counter "test.prof.alloc" in
      Obs.Prof.with_span "alloc" ~alloc_counter:c (fun () -> churn_minor 500);
      Alcotest.(check bool) "counter accumulates the words" true
        (Obs.Metrics.counter_value c >= 1000))

(* The disabled-overhead gate, in allocation terms: with everything
   off, a prof span is the wrapped call plus flag checks — no words. *)
let test_prof_disabled_allocates_nothing () =
  Obs.reset ();
  Obs.disable ();
  let f () = () in
  for _ = 1 to 100 do
    Obs.Prof.with_span "x" f
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    Obs.Prof.with_span "x" f
  done;
  let per_call = (Gc.minor_words () -. w0) /. 1000. in
  Alcotest.(check bool) "under 2 words per disabled call" true (per_call < 2.)

let prop_prof_nested_sums =
  QCheck.Test.make ~count:30
    ~name:"prof deltas non-negative; parent covers children"
    QCheck.(list_of_size Gen.(int_range 1 6) (int_range 0 300))
    (fun sizes ->
      Obs.reset ();
      Obs.enable ();
      Obs.Prof.enable ();
      Obs.Prof.with_span "parent" (fun () ->
          List.iter
            (fun n -> Obs.Prof.with_span "child" (fun () -> churn_minor n))
            sizes;
          churn_minor 10);
      Obs.Prof.disable ();
      Obs.disable ();
      let spans = Obs.Trace.spans () in
      let w s =
        match prof_attr "minor_words" s with
        | Some v -> v
        | None -> QCheck.Test.fail_report "span without prof attrs"
      in
      let parent = List.find (fun (s : Obs.Trace.span) -> s.name = "parent") spans in
      let children =
        List.filter (fun (s : Obs.Trace.span) -> s.name = "child") spans
      in
      List.length children = List.length sizes
      && List.for_all (fun s -> w s >= 0.) spans
      (* Minor words are monotone within the domain, and every child
         window is contained in the parent's, so the parent's delta
         dominates the children's sum exactly. *)
      && w parent >= List.fold_left (fun acc s -> acc +. w s) 0. children)

(* ------------------------------------------------------------------ *)
(* Exporters: Chrome trace events and OpenMetrics                      *)
(* ------------------------------------------------------------------ *)

let json_str k e = Option.bind (Kit.Json.member k e) Kit.Json.to_str
let json_num k e = Option.bind (Kit.Json.member k e) Kit.Json.to_float

(* Golden-shape test on the fixed F2 run: parse the document back and
   validate required fields and timestamp ordering (byte-golden would
   tie the test to GC noise once prof is on). *)
let test_chrome_trace_shape () =
  Obs.Prof.enable ();
  ignore (traced_f2_run ());
  Obs.Prof.disable ();
  let doc = Obs.Export.chrome_trace_live () in
  match Kit.Json.parse doc with
  | Error msg -> Alcotest.fail msg
  | Ok j ->
    let events =
      match Kit.Json.member "traceEvents" j with
      | Some (Kit.Json.List l) -> l
      | _ -> Alcotest.fail "traceEvents missing"
    in
    Alcotest.(check bool) "non-trivial event count" true
      (List.length events > 20);
    let last_ts = ref neg_infinity in
    let seen_complete = ref false in
    List.iter
      (fun e ->
        let ph =
          match json_str "ph" e with
          | Some p -> p
          | None -> Alcotest.fail "event without ph"
        in
        if json_str "name" e = None then Alcotest.fail "event without name";
        if ph <> "M" then begin
          (match (json_num "ts" e, json_num "pid" e, json_num "tid" e) with
          | Some ts, Some _, Some _ ->
            Alcotest.(check bool) "ts nondecreasing" true (ts >= !last_ts);
            last_ts := ts
          | _ -> Alcotest.fail "event without ts/pid/tid");
          if ph = "X" then begin
            seen_complete := true;
            match json_num "dur" e with
            | Some dur -> Alcotest.(check bool) "dur >= 0" true (dur >= 0.)
            | None -> Alcotest.fail "complete event without dur"
          end
        end)
      events;
    Alcotest.(check bool) "has complete (span) events" true !seen_complete;
    Alcotest.(check bool) "spf.recompute span exported" true
      (List.exists (fun e -> json_str "name" e = Some "spf.recompute") events);
    (* Prof was on for the run, so span args carry GC deltas. *)
    Alcotest.(check bool) "span args carry alloc_words" true
      (List.exists
         (fun e ->
           json_str "ph" e = Some "X"
           && (match Kit.Json.member "args" e with
              | Some args -> (
                match Option.bind (Kit.Json.member "alloc_words" args) Kit.Json.to_float with
                | Some w -> w >= 0.
                | None -> false)
              | None -> false))
         events)

let sample_value line =
  match String.rindex_opt line ' ' with
  | None -> Alcotest.fail ("bad sample line: " ^ line)
  | Some i -> (
    let v = String.sub line (i + 1) (String.length line - i - 1) in
    match float_of_string_opt v with
    | Some f -> f
    | None -> Alcotest.fail ("bad sample value: " ^ line))

let test_open_metrics_shape () =
  ignore (traced_f2_run ());
  let txt = Obs.Export.open_metrics () in
  Alcotest.(check bool) "terminated by # EOF" true
    (String.length txt >= 6
    && String.sub txt (String.length txt - 6) 6 = "# EOF\n");
  let lines =
    String.split_on_char '\n' txt |> List.filter (fun l -> l <> "")
  in
  (* Every sample line carries a numeric value. *)
  List.iter
    (fun l -> if l.[0] <> '#' then ignore (sample_value l))
    lines;
  (* Counters are sanitized and suffixed _total. *)
  Alcotest.(check bool) "spf.runs exposed as spf_runs_total" true
    (List.exists (String.starts_with ~prefix:"spf_runs_total ") lines);
  (* Histogram buckets: explicit bounds, cumulative, +Inf equals count. *)
  let buckets =
    List.filter
      (String.starts_with ~prefix:"spf_recompute_ms_bucket{le=\"")
      lines
  in
  Alcotest.(check bool) "histogram has explicit buckets" true
    (List.length buckets > 2);
  let values = List.map sample_value buckets in
  ignore
    (List.fold_left
       (fun prev v ->
         Alcotest.(check bool) "buckets cumulative" true (v >= prev);
         v)
       0. values);
  Alcotest.(check bool) "last bucket is +Inf" true
    (String.starts_with ~prefix:"spf_recompute_ms_bucket{le=\"+Inf\"}"
       (List.nth buckets (List.length buckets - 1)));
  let count_line =
    List.find (String.starts_with ~prefix:"spf_recompute_ms_count ") lines
  in
  checkf "+Inf bucket equals count" (sample_value count_line)
    (List.nth values (List.length values - 1));
  (* TYPE headers exist for the three kinds. *)
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Printf.sprintf "a %s family is declared" kind)
        true
        (List.exists
           (fun l ->
             String.starts_with ~prefix:"# TYPE " l
             && String.ends_with ~suffix:(" " ^ kind) l)
           lines))
    [ "counter"; "gauge"; "histogram" ]

(* ------------------------------------------------------------------ *)
(* Bench history and the regression gate                               *)
(* ------------------------------------------------------------------ *)

let hrow tag track values = { Obs.History.tag; track; values }

let test_history_gate_verdicts () =
  let base = [ ("alloc_words", 1000.); ("wall_ms", 5.); ("flows", 100.) ] in
  let rows = [ hrow "a" "t" base; hrow "b" "t" base ] in
  let v = Obs.History.gate rows in
  Alcotest.(check bool) "stable history passes" true
    (v <> [] && Obs.History.gate_ok v);
  (* +10% allocated words is far outside the 2% band. *)
  let regressed =
    rows
    @ [
        hrow "c" "t"
          [ ("alloc_words", 1100.); ("wall_ms", 5.); ("flows", 100.) ];
      ]
  in
  Alcotest.(check bool) "synthetic regression row fails" false
    (Obs.History.gate_ok (Obs.History.gate regressed));
  (* Wall-time noise inside its (wide) band is fine. *)
  let noisy =
    rows
    @ [
        hrow "c" "t"
          [ ("alloc_words", 1000.); ("wall_ms", 7.); ("flows", 100.) ];
      ]
  in
  Alcotest.(check bool) "wall noise within band passes" true
    (Obs.History.gate_ok (Obs.History.gate noisy));
  (* A workload change (context key differs) starts a fresh baseline
     instead of comparing different experiments. *)
  let rescaled =
    rows
    @ [
        hrow "c" "t"
          [ ("alloc_words", 9000.); ("wall_ms", 50.); ("flows", 200.) ];
      ]
  in
  Alcotest.(check bool) "context change re-baselines (no verdicts)" true
    (Obs.History.gate rescaled = []);
  (* First-ever row: bootstrap, nothing to compare. *)
  Alcotest.(check bool) "single row passes vacuously" true
    (Obs.History.gate [ hrow "a" "t" base ] = [])

let test_history_file_roundtrip () =
  let file = Filename.temp_file "fibbing_hist" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let rows =
        [
          hrow "aaa" "spf_churn" [ ("alloc_words", 59087.7); ("routers", 22.) ];
          hrow "bbb" "water_fill" [ ("alloc_words", 2129604.25) ];
        ]
      in
      Obs.History.append ~file rows;
      Obs.History.append ~file rows;
      let back = Obs.History.load ~file in
      Alcotest.(check int) "two appends accumulate" 4 (List.length back);
      Alcotest.(check bool) "rows round-trip exactly" true
        (back = rows @ rows))

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter round-trip" `Quick test_counter_roundtrip;
          Alcotest.test_case "gauge round-trip" `Quick test_gauge_roundtrip;
          Alcotest.test_case "histogram round-trip" `Quick
            test_histogram_roundtrip;
          Alcotest.test_case "disabled ops are no-ops" `Quick
            test_disabled_ops_are_noops;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_kind_mismatch_rejected;
          Alcotest.test_case "reset keeps handles" `Quick
            test_reset_keeps_handles;
          Alcotest.test_case "json deterministic" `Quick
            test_metrics_json_deterministic;
        ] );
      qsuite "metrics-props" [ prop_percentile_oracle ];
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "disabled is identity" `Quick
            test_span_disabled_is_identity;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "merges spans causally" `Quick
            test_timeline_merges_spans_causally;
          Alcotest.test_case "disabled records nothing" `Quick
            test_timeline_disabled_records_nothing;
        ] );
      ( "ring",
        [
          Alcotest.test_case "eviction" `Quick test_ring_eviction;
          Alcotest.test_case "validates capacity" `Quick
            test_ring_validates_capacity;
        ] );
      ( "controller-log",
        [
          Alcotest.test_case "capacity validated" `Quick
            test_controller_log_capacity_validated;
          Alcotest.test_case "bounded retention" `Quick
            test_controller_log_bounded;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "F2 timeline deterministic" `Quick
            test_f2_timeline_deterministic;
        ] );
      ( "capture",
        [
          Alcotest.test_case "capture isolates a run" `Quick
            test_capture_isolates_run;
          Alcotest.test_case "captures byte-identical across runs" `Quick
            test_capture_identical_across_runs;
          Alcotest.test_case "parallel counter increments" `Quick
            test_parallel_counter_increments;
        ] );
      ( "prof",
        [
          Alcotest.test_case "span carries GC deltas" `Quick
            test_prof_span_attrs;
          Alcotest.test_case "prof off means plain spans" `Quick
            test_prof_off_means_plain_spans;
          Alcotest.test_case "alloc counter accumulates" `Quick
            test_prof_alloc_counter;
          Alcotest.test_case "disabled allocates nothing" `Quick
            test_prof_disabled_allocates_nothing;
        ] );
      qsuite "prof-props" [ prop_prof_nested_sums ];
      ( "export",
        [
          Alcotest.test_case "chrome trace shape" `Quick
            test_chrome_trace_shape;
          Alcotest.test_case "openmetrics shape" `Quick
            test_open_metrics_shape;
        ] );
      ( "history",
        [
          Alcotest.test_case "gate verdicts" `Quick test_history_gate_verdicts;
          Alcotest.test_case "file round-trip" `Quick
            test_history_file_roundtrip;
        ] );
    ]
