(* Tests for the Obs telemetry library: metrics round-trips, percentile
   estimates against a sorted oracle, span nesting, timeline ordering,
   the Kit.Ring buffer backing the bounded logs, and end-to-end
   determinism of the traced F2 demo scenario.

   Obs state is global and tests run sequentially in one process, so
   every test brackets its work with [with_obs] (reset + enable +
   disable) and never leaves the switch on. *)

let checkf = Alcotest.(check (float 1e-6))

let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () -> Obs.disable ()) f

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_roundtrip () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test.counter" in
      Alcotest.(check int) "starts at zero" 0 (Obs.Metrics.counter_value c);
      Obs.Metrics.incr c;
      Obs.Metrics.add c 41;
      Alcotest.(check int) "incr + add" 42 (Obs.Metrics.counter_value c);
      (* Find-or-create returns the same cell. *)
      let c' = Obs.Metrics.counter "test.counter" in
      Obs.Metrics.incr c';
      Alcotest.(check int) "same cell by name" 43 (Obs.Metrics.counter_value c))

let test_gauge_roundtrip () =
  with_obs (fun () ->
      let g = Obs.Metrics.gauge "test.gauge" in
      checkf "starts at zero" 0. (Obs.Metrics.gauge_value g);
      Obs.Metrics.set g 2.5;
      Obs.Metrics.set g 1.25;
      checkf "last write wins" 1.25 (Obs.Metrics.gauge_value g))

let test_histogram_roundtrip () =
  with_obs (fun () ->
      let h =
        Obs.Metrics.histogram ~buckets:[| 1.; 2.; 4. |] "test.histogram"
      in
      List.iter (Obs.Metrics.observe h) [ 0.5; 1.5; 3.; 100. ];
      let s = Obs.Metrics.summary h in
      Alcotest.(check int) "count" 4 s.count;
      checkf "sum" 105. s.sum;
      checkf "min" 0.5 s.min;
      checkf "max" 100. s.max;
      (* rank(0.5) = ceil(0.5 * 4) = 2 -> second bucket (1, 2], fully
         interpolated to its upper bound. *)
      checkf "p50 lands in its bucket" 2. s.p50)

let test_disabled_ops_are_noops () =
  Obs.reset ();
  Obs.disable ();
  let c = Obs.Metrics.counter "test.disabled.counter" in
  let g = Obs.Metrics.gauge "test.disabled.gauge" in
  let h = Obs.Metrics.histogram "test.disabled.histogram" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 7;
  Obs.Metrics.set g 3.;
  Obs.Metrics.observe h 1.;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  checkf "gauge untouched" 0. (Obs.Metrics.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Metrics.summary h).count

let test_kind_mismatch_rejected () =
  ignore (Obs.Metrics.counter "test.kind");
  Alcotest.(check bool) "gauge under a counter name" true
    (try
       ignore (Obs.Metrics.gauge "test.kind");
       false
     with Invalid_argument _ -> true)

let test_reset_keeps_handles () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test.reset.counter" in
      Obs.Metrics.add c 5;
      Obs.Metrics.reset ();
      Alcotest.(check int) "zeroed" 0 (Obs.Metrics.counter_value c);
      Obs.Metrics.incr c;
      Alcotest.(check int) "handle still live" 1 (Obs.Metrics.counter_value c);
      Alcotest.(check bool) "registration survives in dump" true
        (List.mem_assoc "test.reset.counter" (Obs.Metrics.dump ())))

let test_metrics_json_deterministic () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test.json.counter" in
      Obs.Metrics.add c 3;
      let j1 = Obs.Metrics.to_json_lines () in
      let j2 = Obs.Metrics.to_json_lines () in
      Alcotest.(check string) "stable output" j1 j2;
      Alcotest.(check bool) "contains the counter" true
        (let rec contains i =
           i + 17 <= String.length j1
           && (String.sub j1 i 17 = "test.json.counter" || contains (i + 1))
         in
         contains 0))

(* Percentile estimates vs. a sorted-sample oracle. The histogram's
   default buckets are log-spaced at ratio 1.25, and the estimate is
   interpolated within the bucket holding the nearest-rank sample, so
   estimate/oracle must stay within one bucket ratio. *)
let pct_gen =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 1 80) (int_range 0 1_000_000))

let prop_percentile_oracle =
  QCheck.Test.make ~name:"quantile tracks the nearest-rank oracle" ~count:200
    pct_gen (fun (n, seed) ->
      let prng = Kit.Prng.create ~seed in
      let values = List.init n (fun _ -> 0.01 +. Kit.Prng.float prng 50.) in
      Obs.reset ();
      Obs.enable ();
      let h = Obs.Metrics.histogram "test.pct" in
      List.iter (Obs.Metrics.observe h) values;
      let sorted = Array.of_list (List.sort compare values) in
      let ok =
        List.for_all
          (fun q ->
            let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
            let oracle = sorted.(rank - 1) in
            let est = Obs.Metrics.quantile h q in
            est >= (oracle /. 1.2501) -. 1e-9
            && est <= (oracle *. 1.2501) +. 1e-9)
          [ 0.5; 0.9; 0.95; 0.99; 1.0 ]
      in
      Obs.disable ();
      ok)

(* ------------------------------------------------------------------ *)
(* Trace spans                                                         *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_obs (fun () ->
      let result =
        Obs.Trace.with_span "outer" (fun () ->
            Obs.Trace.with_span "inner" (fun () -> 7))
      in
      Alcotest.(check int) "value passes through" 7 result;
      match Obs.Trace.spans () with
      | [ inner; outer ] ->
        (* Completion order: inner closes first. *)
        Alcotest.(check string) "inner name" "inner" inner.Obs.Trace.name;
        Alcotest.(check string) "outer name" "outer" outer.Obs.Trace.name;
        Alcotest.(check int) "outer is a root" 0 outer.depth;
        Alcotest.(check bool) "outer has no parent" true (outer.parent = None);
        Alcotest.(check int) "inner nested once" 1 inner.depth;
        Alcotest.(check bool) "inner's parent is outer" true
          (inner.parent = Some outer.seq);
        Alcotest.(check bool) "begin order: outer first" true
          (outer.seq < inner.seq)
      | spans ->
        Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let test_span_exception_safety () =
  with_obs (fun () ->
      (try Obs.Trace.with_span "boom" (fun () -> raise Exit)
       with Exit -> ());
      Alcotest.(check int) "raising span still recorded" 1
        (List.length (Obs.Trace.spans ()));
      (* The span stack was popped: the next span is a root again. *)
      Obs.Trace.with_span "after" ignore;
      let after =
        List.find
          (fun (s : Obs.Trace.span) -> s.name = "after")
          (Obs.Trace.spans ())
      in
      Alcotest.(check int) "stack unwound" 0 after.depth;
      Alcotest.(check bool) "no stale parent" true (after.parent = None))

let test_span_disabled_is_identity () =
  Obs.reset ();
  Obs.disable ();
  Alcotest.(check int) "runs the function" 9
    (Obs.Trace.with_span "ghost" (fun () -> 9));
  Alcotest.(check int) "records nothing" 0 (List.length (Obs.Trace.spans ()))

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_timeline_merges_spans_causally () =
  with_obs (fun () ->
      Obs.Timeline.record ~time:1. ~source:"a" ~kind:"one" [];
      ignore
        (Obs.Trace.with_span "work" (fun () ->
             Obs.Timeline.record ~time:2. ~source:"a" ~kind:"two" [];
             ()));
      Obs.Timeline.record ~time:3. ~source:"a" ~kind:"three" [];
      let ev = Obs.Timeline.events () in
      Alcotest.(check (list string)) "span merges at its begin position"
        [ "one"; "work"; "two"; "three" ]
        (List.map (fun e -> e.Obs.Timeline.kind) ev);
      let w = List.find (fun e -> e.Obs.Timeline.kind = "work") ev in
      Alcotest.(check string) "span events come from trace" "trace" w.source;
      Alcotest.(check bool) "span event carries duration" true
        (List.mem_assoc "duration_ms" w.attrs);
      let seqs = List.map (fun e -> e.Obs.Timeline.seq) ev in
      Alcotest.(check bool) "seqs strictly increasing" true
        (List.sort_uniq compare seqs = seqs);
      (* Excluding spans drops only the trace-sourced event. *)
      Alcotest.(check int) "include_spans:false" 3
        (List.length (Obs.Timeline.events ~include_spans:false ())))

let test_timeline_disabled_records_nothing () =
  Obs.reset ();
  Obs.disable ();
  Obs.Timeline.record ~time:1. ~source:"a" ~kind:"ghost" [];
  Alcotest.(check int) "no events" 0 (List.length (Obs.Timeline.events ()))

(* ------------------------------------------------------------------ *)
(* Kit.Ring (bounded buffer behind event logs and trace rings)         *)
(* ------------------------------------------------------------------ *)

let test_ring_eviction () =
  let r = Kit.Ring.create ~capacity:3 in
  List.iter (Kit.Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 3; 4; 5 ]
    (Kit.Ring.to_list r);
  Alcotest.(check int) "dropped count" 2 (Kit.Ring.dropped r);
  Alcotest.(check int) "length capped" 3 (Kit.Ring.length r);
  Alcotest.(check int) "capacity" 3 (Kit.Ring.capacity r);
  Alcotest.(check int) "fold oldest first" 345
    (Kit.Ring.fold (fun acc x -> (acc * 10) + x) 0 r);
  Kit.Ring.clear r;
  Alcotest.(check int) "clear empties" 0 (Kit.Ring.length r);
  Alcotest.(check int) "clear resets dropped" 0 (Kit.Ring.dropped r)

let test_ring_validates_capacity () =
  Alcotest.(check bool) "capacity must be positive" true
    (try
       ignore (Kit.Ring.create ~capacity:0 : int Kit.Ring.t);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Controller log bounding (satellite: event log in a ring)            *)
(* ------------------------------------------------------------------ *)

let test_controller_log_capacity_validated () =
  let d = Scenarios.Demo.make ~fibbing:false () in
  Alcotest.(check bool) "log_capacity 0 rejected" true
    (try
       ignore
         (Fibbing.Controller.create
            ~config:
              { Fibbing.Controller.default_config with log_capacity = 0 }
            d.Scenarios.Demo.net);
       false
     with Invalid_argument _ -> true)

let test_controller_log_bounded () =
  (* A capacity-1 log retains only the newest action across the F2 run,
     which triggers two reactions. *)
  let config =
    { Fibbing.Controller.default_config with log_capacity = 1 }
  in
  let d = Scenarios.Demo.make ~fibbing:true ~controller_config:config () in
  ignore (Scenarios.Demo.load_fig2_workload d);
  Scenarios.Demo.run d ~until:45.;
  match d.Scenarios.Demo.controller with
  | None -> Alcotest.fail "controller expected"
  | Some c ->
    let actions = Fibbing.Controller.actions c in
    Alcotest.(check int) "only the newest action retained" 1
      (List.length actions)

(* ------------------------------------------------------------------ *)
(* End-to-end: traced F2 demo is deterministic and causally ordered    *)
(* ------------------------------------------------------------------ *)

let traced_f2_run () =
  let d = Scenarios.Demo.make ~fibbing:true () in
  Obs.reset ();
  Obs.enable ();
  (* Simulation time as the telemetry clock: reruns are byte-identical. *)
  Obs.Clock.set_source (fun () -> Netsim.Sim.time d.Scenarios.Demo.sim);
  ignore (Scenarios.Demo.load_fig2_workload d);
  Scenarios.Demo.run d ~until:25.;
  Obs.disable ();
  Obs.Clock.use_cpu_time ();
  (Obs.Timeline.to_json_lines (), Obs.Timeline.events ())

let test_f2_timeline_deterministic () =
  let j1, ev = traced_f2_run () in
  let j2, _ = traced_f2_run () in
  Alcotest.(check bool) "two runs byte-identical" true (String.equal j1 j2);
  let find pred = List.find_opt pred ev in
  let alarm =
    find (fun e -> e.Obs.Timeline.source = "monitor" && e.kind = "alarm")
  in
  let action =
    find (fun e -> e.Obs.Timeline.source = "controller" && e.kind = "action")
  in
  let spf =
    find (fun e -> e.Obs.Timeline.source = "trace" && e.kind = "spf.recompute")
  in
  (match (alarm, action) with
  | Some a, Some c ->
    Alcotest.(check bool) "alarm precedes controller reaction" true
      (a.Obs.Timeline.seq < c.Obs.Timeline.seq)
  | None, _ -> Alcotest.fail "no monitor alarm in timeline"
  | _, None -> Alcotest.fail "no controller action in timeline");
  Alcotest.(check bool) "SPF recompute spans present" true (spf <> None);
  Alcotest.(check bool) "timeline non-trivial" true (List.length ev > 20)

(* ------------------------------------------------------------------ *)
(* Capture scopes and domain safety                                    *)
(* ------------------------------------------------------------------ *)

let test_capture_isolates_run () =
  with_obs (fun () ->
      Obs.Timeline.record ~time:1. ~source:"outer" ~kind:"before" [];
      let v, cap =
        Obs.capture (fun () ->
            Obs.Timeline.record ~time:2. ~source:"inner" ~kind:"a" [];
            Obs.Trace.with_span "work" (fun () ->
                Obs.Timeline.record ~time:3. ~source:"inner" ~kind:"b" []);
            7)
      in
      Alcotest.(check int) "result threaded through" 7 v;
      Alcotest.(check int) "captured both events" 2 (List.length cap.Obs.events);
      Alcotest.(check int) "captured the span" 1 (List.length cap.Obs.spans);
      (* Private sequence numbering restarts at zero for each capture. *)
      Alcotest.(check int) "first captured seq is 0" 0
        (List.hd cap.Obs.events).Obs.Timeline.seq;
      Alcotest.(check bool) "capture renders to json" true
        (String.length (Obs.capture_json cap) > 0);
      (* Nothing from the capture leaked onto the shared rings. *)
      let shared = Obs.Timeline.events () in
      Alcotest.(check int) "shared ring has only the outer event" 1
        (List.length shared);
      (* Recording after the capture goes back to the shared ring. *)
      Obs.Timeline.record ~time:4. ~source:"outer" ~kind:"after" [];
      Alcotest.(check int) "shared recording resumes" 2
        (List.length (Obs.Timeline.events ())))

let test_capture_identical_across_runs () =
  (* Two captures of the same work render byte-identically even with
     shared-ring traffic interleaved between them — the per-capture
     sequence restart makes the timeline a pure function of the run. *)
  with_obs (fun () ->
      let run () =
        Obs.capture (fun () ->
            Obs.Clock.set_source (fun () -> 0.);
            Obs.Timeline.record ~source:"sim" ~kind:"step" [];
            Obs.Trace.with_span "tick" (fun () -> ()))
      in
      let _, c1 = run () in
      Obs.Timeline.record ~time:9. ~source:"noise" ~kind:"between" [];
      let _, c2 = run () in
      Alcotest.(check string) "byte-identical timelines"
        (Obs.capture_json c1) (Obs.capture_json c2))

let test_parallel_counter_increments () =
  with_obs (fun () ->
      let c = Obs.Metrics.counter "test.parallel.counter" in
      let pool = Kit.Pool.create ~domains:4 () in
      Kit.Pool.iter pool ~n:1000 (fun _ -> Obs.Metrics.incr c);
      Alcotest.(check int) "no lost updates across domains" 1000
        (Obs.Metrics.counter_value c))

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter round-trip" `Quick test_counter_roundtrip;
          Alcotest.test_case "gauge round-trip" `Quick test_gauge_roundtrip;
          Alcotest.test_case "histogram round-trip" `Quick
            test_histogram_roundtrip;
          Alcotest.test_case "disabled ops are no-ops" `Quick
            test_disabled_ops_are_noops;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_kind_mismatch_rejected;
          Alcotest.test_case "reset keeps handles" `Quick
            test_reset_keeps_handles;
          Alcotest.test_case "json deterministic" `Quick
            test_metrics_json_deterministic;
        ] );
      qsuite "metrics-props" [ prop_percentile_oracle ];
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "disabled is identity" `Quick
            test_span_disabled_is_identity;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "merges spans causally" `Quick
            test_timeline_merges_spans_causally;
          Alcotest.test_case "disabled records nothing" `Quick
            test_timeline_disabled_records_nothing;
        ] );
      ( "ring",
        [
          Alcotest.test_case "eviction" `Quick test_ring_eviction;
          Alcotest.test_case "validates capacity" `Quick
            test_ring_validates_capacity;
        ] );
      ( "controller-log",
        [
          Alcotest.test_case "capacity validated" `Quick
            test_controller_log_capacity_validated;
          Alcotest.test_case "bounded retention" `Quick
            test_controller_log_bounded;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "F2 timeline deterministic" `Quick
            test_f2_timeline_deterministic;
        ] );
      ( "capture",
        [
          Alcotest.test_case "capture isolates a run" `Quick
            test_capture_isolates_run;
          Alcotest.test_case "captures byte-identical across runs" `Quick
            test_capture_identical_across_runs;
          Alcotest.test_case "parallel counter increments" `Quick
            test_parallel_counter_increments;
        ] );
    ]
