let pfx = Igp.Prefix.v
(* Parallel-equivalence tests: the worker-pool width must be
   unobservable in results. SPF/FIB tables, water-fill rates and chaos
   verdicts/timelines are computed at domains 1, 2 and 4 and compared
   byte-for-byte (serialized FIB dumps, exact float equality, captured
   timeline JSON). *)

module G = Netgraph.Graph
module T = Netgraph.Topologies

let widths = [ 2; 4 ]

(* ---------- SPF / FIB ---------- *)

(* Serialize every (router, prefix) FIB, fakes and multiplicities
   included: byte equality of dumps is the strongest form of "same
   routing". *)
let fib_dump net =
  let g = Igp.Network.graph net in
  let prefixes =
    List.sort compare (Igp.Lsdb.prefix_list (Igp.Network.lsdb net))
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun prefix ->
      Array.iteri
        (fun router fib ->
          match fib with
          | None -> Buffer.add_string buf (Printf.sprintf "%d/%s -\n" router (Igp.Prefix.to_string prefix))
          | Some fib ->
            Buffer.add_string buf
              (Format.asprintf "%d/%s %a@." router (Igp.Prefix.to_string prefix)
                 (Igp.Fib.pp ~names:(G.name g))
                 fib))
        (Igp.Network.fib_table net prefix))
    prefixes;
  Buffer.contents buf

(* Replay a random churn sequence (fake injections/retractions, new
   prefix announcements) on a network built with [domains] workers,
   dumping the full FIB table after every reconvergence. *)
let replay_churn ~seed ~ops domains =
  let prng = Kit.Prng.create ~seed in
  let g = T.random prng ~n:12 ~extra_edges:12 ~max_weight:4 in
  let net = Igp.Network.create ~domains g in
  Igp.Network.announce_prefix net (pfx "p0") ~origin:0 ~cost:0;
  let n = G.node_count g in
  let installed = ref [] in
  let dumps = Buffer.create 4096 in
  List.iteri
    (fun i op ->
      (match op mod 3 with
      | 0 -> (
        let at = op mod n in
        match G.succ g at with
        | [] -> ()
        | (fwd, _) :: _ ->
          let fake_id = Printf.sprintf "f%d" i in
          Igp.Network.inject_fake net
            {
              fake_id;
              attachment = at;
              attachment_cost = 1;
              prefix = pfx "p0";
              announced_cost = 0;
              forwarding = fwd;
            };
          installed := fake_id :: !installed)
      | 1 -> (
        match !installed with
        | [] -> ()
        | fake_id :: rest ->
          Igp.Network.retract_fake net ~fake_id;
          installed := rest)
      | _ ->
        Igp.Network.announce_prefix net (pfx (Printf.sprintf "q%d" i)) ~origin:(op mod n)
          ~cost:0);
      Igp.Network.warm net;
      Buffer.add_string dumps (fib_dump net))
    ops;
  Buffer.contents dumps

let prop_spf_fib_width_independent =
  QCheck.Test.make ~name:"SPF/FIB dumps identical at domains 1/2/4" ~count:200
    QCheck.(pair (int_range 0 1_000_000) (small_list (int_range 0 99)))
    (fun (seed, ops) ->
      let reference = replay_churn ~seed ~ops 1 in
      List.for_all (fun d -> replay_churn ~seed ~ops d = reference) widths)

(* ---------- Water-fill ---------- *)

(* 600 groups: above Fairshare's ~512-group threshold, so the pooled
   setup phases really engage. *)
let waterfill_case seed =
  let prng = Kit.Prng.create ~seed in
  let n = 600 in
  let nlinks = 40 in
  let demands =
    Array.init n (fun _ -> 1024. *. float_of_int (1 + Kit.Prng.int prng 64))
  in
  let links =
    Array.init n (fun _ ->
        let len = 1 + Kit.Prng.int prng 4 in
        let s = Kit.Prng.int prng (nlinks - len) in
        List.init len (fun k -> (s + k, s + k + 1)))
  in
  let weights = Array.init n (fun _ -> 1 + Kit.Prng.int prng 3) in
  let caps = Netsim.Link.capacities ~default:(256. *. 1024.) in
  (caps, demands, links, weights)

let prop_waterfill_width_independent =
  QCheck.Test.make ~name:"water-fill rates identical at domains 1/2/4"
    ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let caps, demands, links, weights = waterfill_case seed in
      let reference = Netsim.Fairshare.water_fill caps ~demands ~links ~weights in
      List.for_all
        (fun d ->
          let pool = Kit.Pool.create ~domains:d () in
          Netsim.Fairshare.water_fill ~pool caps ~demands ~links ~weights
          = reference)
        widths)

(* ---------- Chaos sweeps ---------- *)

let sweep domains =
  Scenarios.Chaos.sweep
    ~pool:(Kit.Pool.create ~domains ())
    ~seeds:[ 1; 2; 3; 4; 5; 6 ] ~until:16. ()

let test_chaos_sweep_width_independent () =
  Obs.reset ();
  Obs.enable ();
  let reference = sweep 1 in
  let same = List.for_all (fun d -> sweep d = reference) widths in
  let shared_ring_events = Obs.Timeline.events ~include_spans:false () in
  Obs.disable ();
  Obs.reset ();
  Alcotest.(check bool) "verdicts and timelines identical" true same;
  Alcotest.(check bool) "every run captured a non-empty timeline" true
    (List.for_all
       (fun (_, tl) -> match tl with Some s -> String.length s > 0 | None -> false)
       reference);
  (* Captured runs must not leak onto the shared timeline ring. *)
  Alcotest.(check int) "shared ring untouched by the sweep" 0
    (List.length shared_ring_events)

let test_chaos_sweep_matches_run () =
  (* The sweep is just [run] per seed: verdicts agree with direct calls. *)
  let direct =
    List.map
      (fun seed -> Scenarios.Chaos.run ~domains:1 ~seed ~until:16. ())
      [ 1; 2; 3 ]
  in
  let swept =
    List.map fst
      (Scenarios.Chaos.sweep
         ~pool:(Kit.Pool.create ~domains:4 ())
         ~seeds:[ 1; 2; 3 ] ~until:16. ())
  in
  Alcotest.(check bool) "sweep = per-seed run" true (swept = direct)

let () =
  let qsuite tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "parallel"
    [
      ("spf", qsuite [ prop_spf_fib_width_independent ]);
      ("waterfill", qsuite [ prop_waterfill_width_independent ]);
      ( "chaos",
        [
          Alcotest.test_case "sweep width-independent" `Quick
            test_chaos_sweep_width_independent;
          Alcotest.test_case "sweep matches run" `Quick
            test_chaos_sweep_matches_run;
        ] );
    ]
