(* Robustness tests: seeded fault injection, fake-LSA aging, lossy
   flooding, controller crash/restart, and the chaos property — after
   every fault heals and every lie is withdrawn or aged out, routing is
   exactly the fault-free pure-IGP state. *)

module G = Netgraph.Graph
module T = Netgraph.Topologies
module Faults = Netsim.Faults

let demo_net () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net "blue" ~origin:d.c ~cost:0;
  (d, net)

let fake ~id ~at ~cost ~fwd : Igp.Lsa.fake =
  {
    fake_id = id;
    attachment = at;
    attachment_cost = 1;
    prefix = "blue";
    announced_cost = cost - 1;
    forwarding = fwd;
  }

(* ---------- Lsdb fake aging ---------- *)

let test_lsdb_expiry_basic () =
  let d, net = demo_net () in
  let lsdb = Igp.Network.lsdb net in
  Igp.Network.inject_fake net (fake ~id:"f1" ~at:d.b ~cost:2 ~fwd:d.r3);
  Alcotest.(check (list string)) "nothing expires without a stamp" []
    (List.map
       (fun (f : Igp.Lsa.fake) -> f.fake_id)
       (Igp.Lsdb.expire_fakes lsdb ~now:1e9));
  Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"f1" ~now:10. ~ttl:5.;
  Alcotest.(check (option (float 1e-9))) "expiry stamped" (Some 15.)
    (Igp.Lsdb.fake_expiry lsdb ~fake_id:"f1");
  Alcotest.(check (list string)) "not yet" []
    (List.map
       (fun (f : Igp.Lsa.fake) -> f.fake_id)
       (Igp.Lsdb.expire_fakes lsdb ~now:14.9));
  Alcotest.(check (list string)) "expires at its time" [ "f1" ]
    (List.map
       (fun (f : Igp.Lsa.fake) -> f.fake_id)
       (Igp.Lsdb.expire_fakes lsdb ~now:15.));
  Alcotest.(check int) "gone from the LSDB" 0 (Igp.Lsdb.fake_count lsdb)

let test_lsdb_refresh_extends_life () =
  let d, net = demo_net () in
  let lsdb = Igp.Network.lsdb net in
  Igp.Network.inject_fake net (fake ~id:"f1" ~at:d.b ~cost:2 ~fwd:d.r3);
  Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"f1" ~now:0. ~ttl:5.;
  Igp.Lsdb.refresh_fakes lsdb ~now:4. ~ttl:5. ~owned:(fun _ -> true);
  Alcotest.(check (list string)) "refresh pushed expiry out" []
    (List.map
       (fun (f : Igp.Lsa.fake) -> f.fake_id)
       (Igp.Lsdb.expire_fakes lsdb ~now:6.));
  (* A selective refresh leaves unowned fakes to die. *)
  Igp.Network.inject_fake net (fake ~id:"f2" ~at:d.a ~cost:3 ~fwd:d.r1);
  Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"f2" ~now:4. ~ttl:5.;
  Igp.Lsdb.refresh_fakes lsdb ~now:8. ~ttl:5.
    ~owned:(fun f -> f.fake_id = "f1");
  Alcotest.(check (list string)) "unowned fake expired" [ "f2" ]
    (List.map
       (fun (f : Igp.Lsa.fake) -> f.fake_id)
       (Igp.Lsdb.expire_fakes lsdb ~now:9.5))

let test_lsdb_expiry_clear_and_clamp () =
  let d, net = demo_net () in
  let lsdb = Igp.Network.lsdb net in
  Igp.Network.inject_fake net (fake ~id:"f1" ~at:d.b ~cost:2 ~fwd:d.r3);
  Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"f1" ~now:0. ~ttl:5.;
  Igp.Lsdb.clear_fake_expiry lsdb ~fake_id:"f1";
  Alcotest.(check (list string)) "immortal again" []
    (List.map
       (fun (f : Igp.Lsa.fake) -> f.fake_id)
       (Igp.Lsdb.expire_fakes lsdb ~now:1e9));
  (* TTLs are clamped to OSPF MaxAge. *)
  Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"f1" ~now:0. ~ttl:1e9;
  Alcotest.(check (option (float 1e-9))) "clamped to max_age"
    (Some Igp.Lsa.max_age)
    (Igp.Lsdb.fake_expiry lsdb ~fake_id:"f1");
  Alcotest.(check bool) "non-positive ttl rejected" true
    (try
       Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"f1" ~now:0. ~ttl:0.;
       false
     with Invalid_argument _ -> true);
  (* Retraction drops the stamp: a reinstalled fake starts immortal. *)
  Igp.Lsdb.retract_fake lsdb ~fake_id:"f1";
  Igp.Lsdb.install_fake lsdb (fake ~id:"f1" ~at:d.b ~cost:2 ~fwd:d.r3);
  Alcotest.(check (option (float 1e-9))) "stamp gone after retract" None
    (Igp.Lsdb.fake_expiry lsdb ~fake_id:"f1")

(* ---------- Lossy flooding ---------- *)

let test_flooding_lossless_dispatch () =
  let d = T.demo () in
  let reference = Igp.Flooding.flood d.graph ~origin:d.b in
  (* drop = 0 must be bit-identical to the lossless path. *)
  let loss = Igp.Flooding.loss ~drop:0. ~seed:1 () in
  let cost = Igp.Flooding.flood ~loss d.graph ~origin:d.b in
  Alcotest.(check int) "messages" reference.messages cost.messages;
  Alcotest.(check int) "rounds" reference.rounds cost.rounds

let test_flooding_lossy_costs_more () =
  let d = T.demo () in
  let reference = Igp.Flooding.flood d.graph ~origin:d.b in
  let loss = Igp.Flooding.loss ~drop:0.4 ~seed:11 () in
  let cost = Igp.Flooding.flood ~loss d.graph ~origin:d.b in
  Alcotest.(check bool)
    (Printf.sprintf "messages %d >= lossless %d" cost.messages reference.messages)
    true
    (cost.messages >= reference.messages);
  Alcotest.(check bool) "rounds at least lossless" true
    (cost.rounds >= reference.rounds)

let test_flooding_lossy_deterministic () =
  let d = T.demo () in
  let run seed =
    let loss = Igp.Flooding.loss ~drop:0.3 ~seed () in
    Igp.Flooding.flood ~loss d.graph ~origin:d.a
  in
  Alcotest.(check bool) "same seed, same cost" true (run 7 = run 7)

let test_flooding_loss_validation () =
  Alcotest.(check bool) "drop out of range" true
    (try ignore (Igp.Flooding.loss ~drop:1. ~seed:1 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative drop" true
    (try ignore (Igp.Flooding.loss ~drop:(-0.1) ~seed:1 ()); false
     with Invalid_argument _ -> true)

(* ---------- Fault plans ---------- *)

let prop_random_plans_validate =
  QCheck.Test.make ~name:"random fault plans validate" ~count:300
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 8))
    (fun (seed, faults) ->
      let g = (T.demo ()).graph in
      let plan = Faults.random_plan ~faults ~seed ~until:30. g in
      match Faults.validate plan with
      | Ok () -> true
      | Error e ->
        QCheck.Test.fail_reportf "seed %d: %s@.%s" seed e
          (Faults.to_string g plan))

let test_plan_deterministic () =
  let g = (T.demo ()).graph in
  let a = Faults.random_plan ~seed:42 ~until:30. g in
  let b = Faults.random_plan ~seed:42 ~until:30. g in
  Alcotest.(check bool) "same seed, same plan" true (a.events = b.events);
  let c = Faults.random_plan ~seed:43 ~until:30. g in
  Alcotest.(check bool) "different seed, different plan" true
    (a.events <> c.events)

let test_validate_rejects_malformed () =
  let bad events : Faults.plan = { seed = 0; until = 30.; events } in
  let rejected plan =
    match Faults.validate plan with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "unhealed link" true
    (rejected (bad [ { time = 1.; kind = Link_down (0, 1) } ]));
  Alcotest.(check bool) "restore of a live link" true
    (rejected (bad [ { time = 1.; kind = Link_up (0, 1) } ]));
  Alcotest.(check bool) "double crash" true
    (rejected
       (bad
          [
            { time = 1.; kind = Router_crash 0 };
            { time = 2.; kind = Router_crash 0 };
          ]));
  Alcotest.(check bool) "crash holding a failed link" true
    (rejected
       (bad
          [
            { time = 1.; kind = Link_down (0, 1) };
            { time = 2.; kind = Router_crash 0 };
            { time = 3.; kind = Link_up (0, 1) };
            { time = 4.; kind = Router_recover 0 };
          ]));
  Alcotest.(check bool) "unsorted" true
    (rejected
       (bad
          [
            { time = 5.; kind = Link_down (0, 1) };
            { time = 1.; kind = Link_up (0, 1) };
          ]));
  Alcotest.(check bool) "restart of live controller" true
    (rejected (bad [ { time = 1.; kind = Controller_restart } ]))

(* ---------- The chaos property ---------- *)

let prop_chaos_converges =
  QCheck.Test.make ~name:"chaos: recovers the fault-free state" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let v = Scenarios.Chaos.run ~faults:(2 + (seed mod 5)) ~seed ~until:30. () in
      if Scenarios.Chaos.ok v then true
      else QCheck.Test.fail_reportf "%a" Scenarios.Chaos.pp v)

let test_chaos_deterministic () =
  let run () = Scenarios.Chaos.run ~seed:5 ~until:30. () in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same verdict" true
    (a.Scenarios.Chaos.plan.events = b.Scenarios.Chaos.plan.events
    && a.fakes_left = b.fakes_left
    && a.controller_alive = b.controller_alive
    && a.reactions = b.reactions)

(* ---------- Lie aging: the controller-death fallback ---------- *)

let stream = 131072.

let controller_sim ?(config = Fibbing.Controller.default_config) () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net "blue" ~origin:d.c ~cost:0;
  let caps = Netsim.Link.capacities ~default:(11. *. 1024. *. 1024.) in
  List.iter
    (fun link -> Netsim.Link.set_link caps link (2.75 *. 1024. *. 1024.))
    [ (d.a, d.r1); (d.b, d.r2); (d.b, d.r3) ];
  let monitor =
    Netsim.Monitor.create ~poll_interval:2.0 ~threshold:0.85
      ~clear_threshold:0.6 ~alpha:0.8 caps
  in
  let sim = Netsim.Sim.create ~dt:0.5 ~monitor net caps in
  let controller = Fibbing.Controller.create ~config net in
  Fibbing.Controller.attach controller sim;
  (d, net, sim, controller)

let surge (d : T.demo) sim =
  for i = 0 to 30 do
    Netsim.Sim.add_flow sim
      (Netsim.Flow.make ~id:i ~src:d.a ~prefix:"blue" ~demand:stream ())
  done

let test_dead_controller_lies_age_out () =
  let config =
    { Fibbing.Controller.default_config with lie_ttl = 5.; relax_after = 1e6 }
  in
  let d, net, sim, controller = controller_sim ~config () in
  surge d sim;
  Netsim.Sim.run_until sim 10.;
  let lsdb = Igp.Network.lsdb net in
  Alcotest.(check bool) "lies installed while alive" true
    (Igp.Lsdb.fake_count lsdb > 0);
  Fibbing.Controller.crash controller;
  Alcotest.(check bool) "dead" false (Fibbing.Controller.alive controller);
  Alcotest.(check int) "controller memory empty" 0
    (Fibbing.Controller.fake_count controller);
  Alcotest.(check bool) "lies still in the LSDB right after the crash" true
    (Igp.Lsdb.fake_count lsdb > 0);
  (* No refreshes any more: within lie_ttl the network sheds every lie
     and the FIBs converge back to the pure IGP, congestion or not. *)
  Netsim.Sim.run_until sim 20.;
  Alcotest.(check int) "all lies aged out" 0 (Igp.Lsdb.fake_count lsdb);
  let reference = Igp.Network.create (G.copy (T.demo ()).graph) in
  Igp.Network.announce_prefix reference "blue" ~origin:d.c ~cost:0;
  List.iter
    (fun router ->
      match
        ( Igp.Network.fib net ~router "blue",
          Igp.Network.fib reference ~router "blue" )
      with
      | Some a, Some b ->
        Alcotest.(check bool) "FIB equals pure IGP" true
          (Igp.Fib.equal_forwarding a b)
      | None, None -> ()
      | _ -> Alcotest.fail "FIB presence mismatch")
    (Igp.Network.routers net)

let test_live_controller_keeps_lies_alive () =
  let config =
    { Fibbing.Controller.default_config with lie_ttl = 5.; relax_after = 1e6 }
  in
  let d, net, sim, _controller = controller_sim ~config () in
  surge d sim;
  Netsim.Sim.run_until sim 10.;
  let before = Igp.Lsdb.fake_count (Igp.Network.lsdb net) in
  Alcotest.(check bool) "lies installed" true (before > 0);
  (* Many TTLs later, the refresh cycle has kept every lie alive. *)
  Netsim.Sim.run_until sim 40.;
  Alcotest.(check bool) "lies survive while refreshed" true
    (Igp.Lsdb.fake_count (Igp.Network.lsdb net) > 0)

let test_restart_adopts_surviving_lies () =
  let config =
    { Fibbing.Controller.default_config with lie_ttl = 6.; relax_after = 1e6 }
  in
  let d, net, sim, controller = controller_sim ~config () in
  surge d sim;
  Netsim.Sim.run_until sim 10.;
  let lsdb = Igp.Network.lsdb net in
  let surviving = Igp.Lsdb.fake_count lsdb in
  Alcotest.(check bool) "lies installed" true (surviving > 0);
  Fibbing.Controller.crash controller;
  Netsim.Sim.run_until sim 12.;
  Fibbing.Controller.restart controller ~time:(Netsim.Sim.time sim);
  Alcotest.(check bool) "alive again" true (Fibbing.Controller.alive controller);
  Alcotest.(check int) "adopted every surviving lie"
    (Igp.Lsdb.fake_count lsdb)
    (Fibbing.Controller.fake_count controller);
  (* Adoption means responsibility: the lies are refreshed again and
     outlive many TTLs. *)
  Netsim.Sim.run_until sim 40.;
  Alcotest.(check bool) "adopted lies kept alive" true
    (Igp.Lsdb.fake_count lsdb > 0)

let test_restart_withdraws_dangling_lies () =
  (* A fake whose forwarding adjacency no longer exists must be
     withdrawn at restart, not adopted. The edge is removed behind the
     simulator's back to model state the restarted controller cannot
     trust. *)
  let d, net = demo_net () in
  let controller = Fibbing.Controller.create net in
  Igp.Network.inject_fake net (fake ~id:"stale" ~at:d.b ~cost:2 ~fwd:d.r3);
  G.remove_edge d.graph d.b d.r3;
  Fibbing.Controller.crash controller;
  Fibbing.Controller.restart controller ~time:0.;
  Alcotest.(check int) "dangling lie withdrawn" 0
    (Igp.Lsdb.fake_count (Igp.Network.lsdb net));
  Alcotest.(check int) "nothing adopted" 0
    (Fibbing.Controller.fake_count controller)

let test_crash_restart_idempotent () =
  let _, net = demo_net () in
  let controller = Fibbing.Controller.create net in
  Fibbing.Controller.crash controller;
  Fibbing.Controller.crash controller;
  Fibbing.Controller.restart controller ~time:1.;
  Fibbing.Controller.restart controller ~time:2.;
  Alcotest.(check bool) "alive" true (Fibbing.Controller.alive controller)

(* ---------- Scenario DSL fault hooks ---------- *)

let run_script text =
  let buffer = Buffer.create 256 in
  let out = Format.formatter_of_buffer buffer in
  match Scenarios.Script.run_string ~out text with
  | Ok () -> Buffer.contents buffer
  | Error message -> Alcotest.failf "script failed: %s" message

let test_script_fault_commands () =
  let output =
    run_script
      {|
topology demo
prefix blue at C
controller on
flows 5 from A to blue rate 131072 at 0 duration 30
fail B-R2 at 4
restore B-R2 at 8
crash R3 at 10
recover R3 at 14
blackout 2 at 16
flooding loss 0.2 at 18 duration 4 seed 3
controller crash at 20
controller restart at 24
run 30
report fakes
|}
  in
  Alcotest.(check bool) "script ran and reported" true
    (String.length output > 0)

let test_script_restore_unknown_link_is_noop () =
  (* Restoring a link that never failed must not blow up the run. *)
  let output =
    run_script
      {|
topology demo
prefix blue at C
controller off
flows 1 from A to blue rate 1000 at 0 duration 8
restore A-B at 2
run 10
report loads
|}
  in
  Alcotest.(check bool) "ran" true (String.length output > 0)

let () =
  let qsuite tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "chaos"
    [
      ( "lsdb-aging",
        [
          Alcotest.test_case "expiry basics" `Quick test_lsdb_expiry_basic;
          Alcotest.test_case "refresh extends" `Quick test_lsdb_refresh_extends_life;
          Alcotest.test_case "clear + clamp" `Quick test_lsdb_expiry_clear_and_clamp;
        ] );
      ( "flooding-loss",
        [
          Alcotest.test_case "drop=0 dispatches lossless" `Quick
            test_flooding_lossless_dispatch;
          Alcotest.test_case "lossy costs more" `Quick test_flooding_lossy_costs_more;
          Alcotest.test_case "deterministic" `Quick test_flooding_lossy_deterministic;
          Alcotest.test_case "validation" `Quick test_flooding_loss_validation;
        ] );
      ( "fault-plans",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "validate rejects malformed" `Quick
            test_validate_rejects_malformed;
        ]
        @ qsuite [ prop_random_plans_validate ] );
      ( "lie-aging",
        [
          Alcotest.test_case "dead controller ages out" `Quick
            test_dead_controller_lies_age_out;
          Alcotest.test_case "live controller refreshes" `Quick
            test_live_controller_keeps_lies_alive;
          Alcotest.test_case "restart adopts survivors" `Quick
            test_restart_adopts_surviving_lies;
          Alcotest.test_case "restart withdraws dangling" `Quick
            test_restart_withdraws_dangling_lies;
          Alcotest.test_case "crash/restart idempotent" `Quick
            test_crash_restart_idempotent;
        ] );
      ( "chaos",
        [ Alcotest.test_case "deterministic" `Quick test_chaos_deterministic ]
        @ qsuite [ prop_chaos_converges ] );
      ( "script-faults",
        [
          Alcotest.test_case "fault commands" `Quick test_script_fault_commands;
          Alcotest.test_case "restore unknown link" `Quick
            test_script_restore_unknown_link_is_noop;
        ] );
    ]
