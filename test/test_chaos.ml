let pfx = Igp.Prefix.v
(* Robustness tests: seeded fault injection, fake-LSA aging, lossy
   flooding, controller crash/restart, and the chaos property — after
   every fault heals and every lie is withdrawn or aged out, routing is
   exactly the fault-free pure-IGP state. *)

module G = Netgraph.Graph
module T = Netgraph.Topologies
module Faults = Netsim.Faults

let demo_net () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  (d, net)

let fake ~id ~at ~cost ~fwd : Igp.Lsa.fake =
  {
    fake_id = id;
    attachment = at;
    attachment_cost = 1;
    prefix = pfx "blue";
    announced_cost = cost - 1;
    forwarding = fwd;
  }

(* ---------- Lsdb fake aging ---------- *)

let test_lsdb_expiry_basic () =
  let d, net = demo_net () in
  let lsdb = Igp.Network.lsdb net in
  Igp.Network.inject_fake net (fake ~id:"f1" ~at:d.b ~cost:2 ~fwd:d.r3);
  Alcotest.(check (list string)) "nothing expires without a stamp" []
    (List.map
       (fun (f : Igp.Lsa.fake) -> f.fake_id)
       (Igp.Lsdb.expire_fakes lsdb ~now:1e9));
  Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"f1" ~now:10. ~ttl:5.;
  Alcotest.(check (option (float 1e-9))) "expiry stamped" (Some 15.)
    (Igp.Lsdb.fake_expiry lsdb ~fake_id:"f1");
  Alcotest.(check (list string)) "not yet" []
    (List.map
       (fun (f : Igp.Lsa.fake) -> f.fake_id)
       (Igp.Lsdb.expire_fakes lsdb ~now:14.9));
  Alcotest.(check (list string)) "expires at its time" [ "f1" ]
    (List.map
       (fun (f : Igp.Lsa.fake) -> f.fake_id)
       (Igp.Lsdb.expire_fakes lsdb ~now:15.));
  Alcotest.(check int) "gone from the LSDB" 0 (Igp.Lsdb.fake_count lsdb)

let test_lsdb_refresh_extends_life () =
  let d, net = demo_net () in
  let lsdb = Igp.Network.lsdb net in
  Igp.Network.inject_fake net (fake ~id:"f1" ~at:d.b ~cost:2 ~fwd:d.r3);
  Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"f1" ~now:0. ~ttl:5.;
  Igp.Lsdb.refresh_fakes lsdb ~now:4. ~ttl:5. ~owned:(fun _ -> true);
  Alcotest.(check (list string)) "refresh pushed expiry out" []
    (List.map
       (fun (f : Igp.Lsa.fake) -> f.fake_id)
       (Igp.Lsdb.expire_fakes lsdb ~now:6.));
  (* A selective refresh leaves unowned fakes to die. *)
  Igp.Network.inject_fake net (fake ~id:"f2" ~at:d.a ~cost:3 ~fwd:d.r1);
  Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"f2" ~now:4. ~ttl:5.;
  Igp.Lsdb.refresh_fakes lsdb ~now:8. ~ttl:5.
    ~owned:(fun f -> f.fake_id = "f1");
  Alcotest.(check (list string)) "unowned fake expired" [ "f2" ]
    (List.map
       (fun (f : Igp.Lsa.fake) -> f.fake_id)
       (Igp.Lsdb.expire_fakes lsdb ~now:9.5))

let test_lsdb_expiry_clear_and_clamp () =
  let d, net = demo_net () in
  let lsdb = Igp.Network.lsdb net in
  Igp.Network.inject_fake net (fake ~id:"f1" ~at:d.b ~cost:2 ~fwd:d.r3);
  Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"f1" ~now:0. ~ttl:5.;
  Igp.Lsdb.clear_fake_expiry lsdb ~fake_id:"f1";
  Alcotest.(check (list string)) "immortal again" []
    (List.map
       (fun (f : Igp.Lsa.fake) -> f.fake_id)
       (Igp.Lsdb.expire_fakes lsdb ~now:1e9));
  (* TTLs are clamped to OSPF MaxAge. *)
  Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"f1" ~now:0. ~ttl:1e9;
  Alcotest.(check (option (float 1e-9))) "clamped to max_age"
    (Some Igp.Lsa.max_age)
    (Igp.Lsdb.fake_expiry lsdb ~fake_id:"f1");
  Alcotest.(check bool) "non-positive ttl rejected" true
    (try
       Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"f1" ~now:0. ~ttl:0.;
       false
     with Invalid_argument _ -> true);
  (* Retraction drops the stamp: a reinstalled fake starts immortal. *)
  Igp.Lsdb.retract_fake lsdb ~fake_id:"f1";
  Igp.Lsdb.install_fake lsdb (fake ~id:"f1" ~at:d.b ~cost:2 ~fwd:d.r3);
  Alcotest.(check (option (float 1e-9))) "stamp gone after retract" None
    (Igp.Lsdb.fake_expiry lsdb ~fake_id:"f1")

(* ---------- Lossy flooding ---------- *)

let test_flooding_lossless_dispatch () =
  let d = T.demo () in
  let reference = Igp.Flooding.flood d.graph ~origin:d.b in
  (* drop = 0 must be bit-identical to the lossless path. *)
  let loss = Igp.Flooding.loss ~drop:0. ~seed:1 () in
  let cost = Igp.Flooding.flood ~loss d.graph ~origin:d.b in
  Alcotest.(check int) "messages" reference.messages cost.messages;
  Alcotest.(check int) "rounds" reference.rounds cost.rounds

let test_flooding_lossy_costs_more () =
  let d = T.demo () in
  let reference = Igp.Flooding.flood d.graph ~origin:d.b in
  let loss = Igp.Flooding.loss ~drop:0.4 ~seed:11 () in
  let cost = Igp.Flooding.flood ~loss d.graph ~origin:d.b in
  Alcotest.(check bool)
    (Printf.sprintf "messages %d >= lossless %d" cost.messages reference.messages)
    true
    (cost.messages >= reference.messages);
  Alcotest.(check bool) "rounds at least lossless" true
    (cost.rounds >= reference.rounds)

let test_flooding_lossy_deterministic () =
  let d = T.demo () in
  let run seed =
    let loss = Igp.Flooding.loss ~drop:0.3 ~seed () in
    Igp.Flooding.flood ~loss d.graph ~origin:d.a
  in
  Alcotest.(check bool) "same seed, same cost" true (run 7 = run 7)

let test_flooding_loss_validation () =
  Alcotest.(check bool) "drop out of range" true
    (try ignore (Igp.Flooding.loss ~drop:1. ~seed:1 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative drop" true
    (try ignore (Igp.Flooding.loss ~drop:(-0.1) ~seed:1 ()); false
     with Invalid_argument _ -> true)

(* ---------- LSA delivery jitter ---------- *)

let test_flooding_jitter_costs_rounds_not_messages () =
  let d = T.demo () in
  let reference = Igp.Flooding.flood d.graph ~origin:d.b in
  let jitter = Igp.Flooding.jitter ~max_delay:5 ~seed:3 () in
  let cost = Igp.Flooding.flood ~jitter d.graph ~origin:d.b in
  (* Jitter delays deliveries (reordering them across paths) but drops
     nothing: same messages, at least as many rounds. *)
  Alcotest.(check int) "messages unchanged" reference.messages cost.messages;
  Alcotest.(check bool)
    (Printf.sprintf "rounds %d >= lossless %d" cost.rounds reference.rounds)
    true
    (cost.rounds >= reference.rounds)

let test_flooding_jitter_deterministic_and_validated () =
  let d = T.demo () in
  let run seed =
    let jitter = Igp.Flooding.jitter ~max_delay:4 ~seed () in
    Igp.Flooding.flood ~jitter d.graph ~origin:d.a
  in
  Alcotest.(check bool) "same seed, same cost" true (run 9 = run 9);
  Alcotest.(check bool) "max_delay < 1 rejected" true
    (try ignore (Igp.Flooding.jitter ~max_delay:0 ~seed:1 ()); false
     with Invalid_argument _ -> true)

(* ---------- Corrupted monitor samples ---------- *)

let test_monitor_corruption () =
  let caps = Netsim.Link.capacities ~default:100. in
  let readings corruption =
    let m = Netsim.Monitor.create ~poll_interval:1. caps in
    Netsim.Monitor.set_corruption m corruption;
    Netsim.Monitor.observe m ~time:1. ~dt:1.
      (List.init 50 (fun i -> ((i, i + 1), 50.)));
    ignore (Netsim.Monitor.poll m ~time:1.);
    Netsim.Monitor.utilizations m
  in
  let corrupt seed =
    Some (Netsim.Monitor.corruption ~probability:0.8 ~gain:3. ~seed ())
  in
  Alcotest.(check bool) "deterministic per seed" true
    (readings (corrupt 7) = readings (corrupt 7));
  Alcotest.(check bool) "corruption changes readings" true
    (readings (corrupt 7) <> readings None);
  Alcotest.(check bool) "probability >= 1 rejected" true
    (try ignore (Netsim.Monitor.corruption ~probability:1. ~seed:1 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-positive gain rejected" true
    (try ignore (Netsim.Monitor.corruption ~gain:0. ~seed:1 ()); false
     with Invalid_argument _ -> true)

(* ---------- Fault plans ---------- *)

let prop_random_plans_validate =
  QCheck.Test.make ~name:"random fault plans validate" ~count:300
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 8))
    (fun (seed, faults) ->
      let g = (T.demo ()).graph in
      let plan = Faults.random_plan ~faults ~seed ~until:30. g in
      match Faults.validate plan with
      | Ok () -> true
      | Error e ->
        QCheck.Test.fail_reportf "seed %d: %s@.%s" seed e
          (Faults.to_string g plan))

let test_plan_deterministic () =
  let g = (T.demo ()).graph in
  let a = Faults.random_plan ~seed:42 ~until:30. g in
  let b = Faults.random_plan ~seed:42 ~until:30. g in
  Alcotest.(check bool) "same seed, same plan" true (a.events = b.events);
  let c = Faults.random_plan ~seed:43 ~until:30. g in
  Alcotest.(check bool) "different seed, different plan" true
    (a.events <> c.events)

let test_validate_rejects_malformed () =
  let bad events : Faults.plan = { seed = 0; until = 30.; events } in
  let rejected plan =
    match Faults.validate plan with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "unhealed link" true
    (rejected (bad [ { time = 1.; kind = Link_down (0, 1) } ]));
  Alcotest.(check bool) "restore of a live link" true
    (rejected (bad [ { time = 1.; kind = Link_up (0, 1) } ]));
  Alcotest.(check bool) "double crash" true
    (rejected
       (bad
          [
            { time = 1.; kind = Router_crash 0 };
            { time = 2.; kind = Router_crash 0 };
          ]));
  Alcotest.(check bool) "crash holding a failed link" true
    (rejected
       (bad
          [
            { time = 1.; kind = Link_down (0, 1) };
            { time = 2.; kind = Router_crash 0 };
            { time = 3.; kind = Link_up (0, 1) };
            { time = 4.; kind = Router_recover 0 };
          ]));
  Alcotest.(check bool) "unsorted" true
    (rejected
       (bad
          [
            { time = 5.; kind = Link_down (0, 1) };
            { time = 1.; kind = Link_up (0, 1) };
          ]));
  Alcotest.(check bool) "restart of live controller" true
    (rejected (bad [ { time = 1.; kind = Controller_restart } ]));
  Alcotest.(check bool) "bad lsa-delay parameters" true
    (rejected
       (bad [ { time = 1.; kind = Lsa_delay { max_delay = 0; duration = 5. } } ]));
  Alcotest.(check bool) "bad monitor-corruption parameters" true
    (rejected
       (bad
          [
            {
              time = 1.;
              kind =
                Monitor_corruption
                  { probability = 1.5; gain = 2.; duration = 5. };
            };
          ]))

(* ---------- Partition faults ---------- *)

(* Fig. 1a: side {A, R1} is separated from the rest by cutting A-B and
   R1-R4. *)
let partition d ~time ~duration : Faults.event =
  {
    time;
    kind =
      Faults.Partition
        {
          side = [ d.T.a; d.T.r1 ];
          cut = [ (d.T.a, d.T.b); (d.T.r1, d.T.r4) ];
          duration;
        };
  }

let test_validate_partition_rules () =
  let d = T.demo () in
  let plan events : Faults.plan = { seed = 0; until = 30.; events } in
  let ok events =
    match Faults.validate (plan events) with Ok () -> true | Error _ -> false
  in
  Alcotest.(check bool) "well-formed partition validates" true
    (ok [ partition d ~time:2. ~duration:5. ]);
  Alcotest.(check bool) "must heal by until - margin" false
    (ok [ partition d ~time:20. ~duration:9. ]);
  Alcotest.(check bool) "empty cut rejected" false
    (ok
       [
         {
           time = 2.;
           kind = Faults.Partition { side = [ d.a ]; cut = []; duration = 5. };
         };
       ]);
  Alcotest.(check bool) "empty side rejected" false
    (ok
       [
         {
           time = 2.;
           kind =
             Faults.Partition
               { side = []; cut = [ (d.a, d.b) ]; duration = 5. };
         };
       ]);
  Alcotest.(check bool) "link fault on a partitioned edge rejected" false
    (ok
       [
         partition d ~time:2. ~duration:10.;
         { time = 5.; kind = Link_down (d.a, d.b) };
         { time = 8.; kind = Link_up (d.a, d.b) };
       ]);
  Alcotest.(check bool) "crashing a partitioned endpoint rejected" false
    (ok
       [
         partition d ~time:2. ~duration:10.;
         { time = 5.; kind = Router_crash d.a };
         { time = 8.; kind = Router_recover d.a };
       ]);
  Alcotest.(check bool) "faults on the healed edge are fine again" true
    (ok
       [
         partition d ~time:2. ~duration:3.;
         { time = 10.; kind = Link_down (d.a, d.b) };
         { time = 12.; kind = Link_up (d.a, d.b) };
       ]);
  Alcotest.(check bool) "partition over an already-failed edge rejected" false
    (ok
       [
         { time = 1.; kind = Link_down (d.a, d.b) };
         partition d ~time:2. ~duration:3.;
         { time = 10.; kind = Link_up (d.a, d.b) };
       ])

let test_partition_inject_cuts_and_heals () =
  let d, net = demo_net () in
  let caps = Netsim.Link.capacities ~default:1e6 in
  let sim = Netsim.Sim.create ~dt:0.5 net caps in
  let cut = [ (d.a, d.b); (d.r1, d.r4) ] in
  let plan : Faults.plan =
    { seed = 0; until = 30.; events = [ partition d ~time:2. ~duration:5. ] }
  in
  (match Faults.validate plan with
  | Ok () -> ()
  | Error e -> Alcotest.failf "plan invalid: %s" e);
  Faults.inject sim plan;
  Netsim.Sim.run_until sim 4.;
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "edge cut during the window" false
        (G.has_edge d.graph u v))
    cut;
  (* The cut is atomic: A keeps no path to the prefix at C. *)
  Alcotest.(check bool) "A separated from C" true
    (match Igp.Network.fib net ~router:d.a (pfx "blue") with
    | None -> true
    | Some f -> Igp.Fib.next_hops f = []);
  Netsim.Sim.run_until sim 10.;
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "edge back after heal" true
        (G.has_edge d.graph u v))
    cut;
  Alcotest.(check bool) "A routes to C again" true
    (Igp.Network.fib net ~router:d.a (pfx "blue") <> None)

let test_random_plans_draw_new_kinds () =
  let g = (T.demo ()).graph in
  let seen_partition = ref false
  and seen_delay = ref false
  and seen_corrupt = ref false in
  for seed = 0 to 199 do
    let plan = Faults.random_plan ~faults:6 ~seed ~until:40. g in
    List.iter
      (fun (e : Faults.event) ->
        match e.kind with
        | Faults.Partition _ -> seen_partition := true
        | Faults.Lsa_delay _ -> seen_delay := true
        | Faults.Monitor_corruption _ -> seen_corrupt := true
        | _ -> ())
      plan.events
  done;
  Alcotest.(check bool) "partitions drawn" true !seen_partition;
  Alcotest.(check bool) "lsa delays drawn" true !seen_delay;
  Alcotest.(check bool) "corrupted telemetry drawn" true !seen_corrupt

(* ---------- Watchdog ---------- *)

module W = Netsim.Watchdog

let watchdog_sim () =
  let d, net = demo_net () in
  let caps = Netsim.Link.capacities ~default:1e6 in
  let sim = Netsim.Sim.create ~dt:0.5 net caps in
  (d, net, sim)

(* Two of these with mirrored attachments form a tight two-router
   forwarding loop: announced_cost 0 beats every real route. *)
let cheap ~id ~at ~fwd : Igp.Lsa.fake =
  {
    fake_id = id;
    attachment = at;
    attachment_cost = 1;
    prefix = pfx "blue";
    announced_cost = 0;
    forwarding = fwd;
  }

let inject_loop ?(mortal = true) d net sim =
  Igp.Network.inject_fake net (cheap ~id:"l1" ~at:d.T.a ~fwd:d.T.b);
  Igp.Network.inject_fake net (cheap ~id:"l2" ~at:d.T.b ~fwd:d.T.a);
  if mortal then begin
    let lsdb = Igp.Network.lsdb net in
    let now = Netsim.Sim.time sim in
    Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"l1" ~now ~ttl:30.;
    Igp.Lsdb.set_fake_expiry lsdb ~fake_id:"l2" ~now ~ttl:30.
  end

let test_watchdog_quiet_on_safe_run () =
  let d, _net, sim = watchdog_sim () in
  let wd = W.arm sim in
  Netsim.Sim.add_flow sim
    (Netsim.Flow.make ~id:1 ~src:d.a ~prefix:(pfx "blue") ~demand:10. ());
  Netsim.Sim.run_until sim 20.;
  Alcotest.(check int) "no violations" 0 (W.violation_count wd);
  Alcotest.(check int) "no quarantines" 0 (W.quarantine_count wd);
  let s = W.stats wd in
  Alcotest.(check bool) "every step checked" true (s.steps_checked >= 39);
  (* Incremental gating: nothing changed routing after step one, so the
     safety sweep is skipped nearly everywhere. *)
  Alcotest.(check bool)
    (Printf.sprintf "skips %d dominate sweeps %d" s.safety_skipped
       s.safety_sweeps)
    true
    (s.safety_skipped > s.safety_sweeps)

let test_watchdog_detects_forced_loop () =
  let d, net, sim = watchdog_sim () in
  (* guard off: the unsafe state must survive to the check itself. *)
  let wd = W.arm ~config:{ W.default_config with guard = false } sim in
  Netsim.Sim.run_until sim 1.;
  inject_loop d net sim;
  W.check_now wd sim;
  let kinds = List.map (fun (v : W.violation) -> v.kind) (W.violations wd) in
  Alcotest.(check bool) "loop flagged" true (List.mem W.Forwarding_loop kinds)

let test_watchdog_budget_and_freshness () =
  let d, net, sim = watchdog_sim () in
  let wd =
    W.arm ~config:{ W.default_config with max_fakes = 1; guard = false } sim
  in
  Netsim.Sim.run_until sim 1.;
  (* Two safe but immortal fakes: over budget and never expiring. *)
  Igp.Network.inject_fake net (fake ~id:"s1" ~at:d.b ~cost:2 ~fwd:d.r3);
  Igp.Network.inject_fake net (fake ~id:"s2" ~at:d.a ~cost:3 ~fwd:d.r1);
  W.check_now wd sim;
  let kinds = List.map (fun (v : W.violation) -> v.kind) (W.violations wd) in
  Alcotest.(check bool) "budget breach flagged" true (List.mem W.Lie_budget kinds);
  Alcotest.(check bool) "immortal lie flagged" true (List.mem W.Stale_lie kinds)

let test_watchdog_dangling_lie () =
  let d, net, sim = watchdog_sim () in
  let wd = W.arm ~config:{ W.default_config with guard = false } sim in
  Netsim.Sim.run_until sim 1.;
  Igp.Network.inject_fake net (fake ~id:"s1" ~at:d.b ~cost:2 ~fwd:d.r3);
  Igp.Lsdb.set_fake_expiry (Igp.Network.lsdb net) ~fake_id:"s1"
    ~now:(Netsim.Sim.time sim) ~ttl:30.;
  (* Remove the forwarding adjacency behind the simulator's back. *)
  G.remove_edge d.graph d.b d.r3;
  W.check_now wd sim;
  let kinds = List.map (fun (v : W.violation) -> v.kind) (W.violations wd) in
  Alcotest.(check bool) "dangling lie flagged" true
    (List.mem W.Dangling_lie kinds)

let test_watchdog_fail_fast_raises () =
  let d, net, sim = watchdog_sim () in
  let wd =
    W.arm
      ~config:{ W.default_config with guard = false; fail_fast = true }
      sim
  in
  Netsim.Sim.run_until sim 1.;
  inject_loop d net sim;
  Alcotest.(check bool) "raises Tripped" true
    (try
       W.check_now wd sim;
       false
     with W.Tripped _ -> true)

let test_watchdog_guard_quarantines_on_timeline () =
  (* The acceptance scenario: force an unsafe lie set into a running
     sim; the pre-routing guard must purge it before any flow is routed
     (zero violations), count a quarantine, call the quarantine hook,
     and stamp the Obs timeline. *)
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  let d, net, sim = watchdog_sim () in
  let wd = W.arm sim in
  let quarantined = ref [] in
  W.on_quarantine wd (fun ~prefix ~reason:_ ->
      quarantined := prefix :: !quarantined);
  Netsim.Sim.add_flow sim
    (Netsim.Flow.make ~id:1 ~src:d.a ~prefix:(pfx "blue") ~demand:10. ());
  Netsim.Sim.run_until sim 1.;
  inject_loop d net sim;
  Netsim.Sim.run_until sim 3.;
  Alcotest.(check int) "guard caught it pre-routing: zero violations" 0
    (W.violation_count wd);
  Alcotest.(check bool) "quarantine counted" true (W.quarantine_count wd > 0);
  Alcotest.(check (list string)) "hook saw the prefix" [ "blue" ] (List.map Igp.Prefix.to_string !quarantined);
  Alcotest.(check int) "lies purged" 0
    (Igp.Lsdb.fake_count (Igp.Network.lsdb net));
  Alcotest.(check bool) "flow routable again" true
    (Netsim.Sim.unroutable_flows sim = []);
  let kinds =
    List.map (fun e -> e.Obs.Timeline.kind) (Obs.Timeline.events ())
  in
  Alcotest.(check bool) "quarantine on the Obs timeline" true
    (List.mem "quarantine" kinds)

(* ---------- The chaos property ---------- *)

(* The watchdog is armed by default, and [ok] demands an empty violation
   list — so this is the strongest robustness property in the suite:
   across 300 random fault schedules (link flaps, crashes, partitions,
   delayed flooding, corrupted telemetry, controller death) there must
   be zero watchdog violations at {e every} step, and the end state must
   be exactly the fault-free pure IGP. *)
let prop_chaos_converges =
  QCheck.Test.make
    ~name:"chaos: fault-free state recovered, zero watchdog violations"
    ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let v = Scenarios.Chaos.run ~faults:(2 + (seed mod 5)) ~seed ~until:30. () in
      if Scenarios.Chaos.ok v then true
      else QCheck.Test.fail_reportf "%a" Scenarios.Chaos.pp v)

let test_chaos_deterministic () =
  let run () = Scenarios.Chaos.run ~seed:5 ~until:30. () in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same verdict" true
    (a.Scenarios.Chaos.plan.events = b.Scenarios.Chaos.plan.events
    && a.fakes_left = b.fakes_left
    && a.controller_alive = b.controller_alive
    && a.reactions = b.reactions)

(* ---------- Lie aging: the controller-death fallback ---------- *)

let stream = 131072.

let controller_sim ?(config = Fibbing.Controller.default_config) () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  let caps = Netsim.Link.capacities ~default:(11. *. 1024. *. 1024.) in
  List.iter
    (fun link -> Netsim.Link.set_link caps link (2.75 *. 1024. *. 1024.))
    [ (d.a, d.r1); (d.b, d.r2); (d.b, d.r3) ];
  let monitor =
    Netsim.Monitor.create ~poll_interval:2.0 ~threshold:0.85
      ~clear_threshold:0.6 ~alpha:0.8 caps
  in
  let sim = Netsim.Sim.create ~dt:0.5 ~monitor net caps in
  let controller = Fibbing.Controller.create ~config net in
  Fibbing.Controller.attach controller sim;
  (d, net, sim, controller)

let surge (d : T.demo) sim =
  for i = 0 to 30 do
    Netsim.Sim.add_flow sim
      (Netsim.Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:stream ())
  done

let test_dead_controller_lies_age_out () =
  let config =
    { Fibbing.Controller.default_config with lie_ttl = 5.; relax_after = 1e6 }
  in
  let d, net, sim, controller = controller_sim ~config () in
  surge d sim;
  Netsim.Sim.run_until sim 10.;
  let lsdb = Igp.Network.lsdb net in
  Alcotest.(check bool) "lies installed while alive" true
    (Igp.Lsdb.fake_count lsdb > 0);
  Fibbing.Controller.crash controller;
  Alcotest.(check bool) "dead" false (Fibbing.Controller.alive controller);
  Alcotest.(check int) "controller memory empty" 0
    (Fibbing.Controller.fake_count controller);
  Alcotest.(check bool) "lies still in the LSDB right after the crash" true
    (Igp.Lsdb.fake_count lsdb > 0);
  (* No refreshes any more: within lie_ttl the network sheds every lie
     and the FIBs converge back to the pure IGP, congestion or not. *)
  Netsim.Sim.run_until sim 20.;
  Alcotest.(check int) "all lies aged out" 0 (Igp.Lsdb.fake_count lsdb);
  let reference = Igp.Network.create (G.copy (T.demo ()).graph) in
  Igp.Network.announce_prefix reference (pfx "blue") ~origin:d.c ~cost:0;
  List.iter
    (fun router ->
      match
        ( Igp.Network.fib net ~router (pfx "blue"),
          Igp.Network.fib reference ~router (pfx "blue") )
      with
      | Some a, Some b ->
        Alcotest.(check bool) "FIB equals pure IGP" true
          (Igp.Fib.equal_forwarding a b)
      | None, None -> ()
      | _ -> Alcotest.fail "FIB presence mismatch")
    (Igp.Network.routers net)

let test_live_controller_keeps_lies_alive () =
  let config =
    { Fibbing.Controller.default_config with lie_ttl = 5.; relax_after = 1e6 }
  in
  let d, net, sim, _controller = controller_sim ~config () in
  surge d sim;
  Netsim.Sim.run_until sim 10.;
  let before = Igp.Lsdb.fake_count (Igp.Network.lsdb net) in
  Alcotest.(check bool) "lies installed" true (before > 0);
  (* Many TTLs later, the refresh cycle has kept every lie alive. *)
  Netsim.Sim.run_until sim 40.;
  Alcotest.(check bool) "lies survive while refreshed" true
    (Igp.Lsdb.fake_count (Igp.Network.lsdb net) > 0)

let test_restart_adopts_surviving_lies () =
  let config =
    { Fibbing.Controller.default_config with lie_ttl = 6.; relax_after = 1e6 }
  in
  let d, net, sim, controller = controller_sim ~config () in
  surge d sim;
  Netsim.Sim.run_until sim 10.;
  let lsdb = Igp.Network.lsdb net in
  let surviving = Igp.Lsdb.fake_count lsdb in
  Alcotest.(check bool) "lies installed" true (surviving > 0);
  Fibbing.Controller.crash controller;
  Netsim.Sim.run_until sim 12.;
  Fibbing.Controller.restart controller ~time:(Netsim.Sim.time sim);
  Alcotest.(check bool) "alive again" true (Fibbing.Controller.alive controller);
  Alcotest.(check int) "adopted every surviving lie"
    (Igp.Lsdb.fake_count lsdb)
    (Fibbing.Controller.fake_count controller);
  (* Adoption means responsibility: the lies are refreshed again and
     outlive many TTLs. *)
  Netsim.Sim.run_until sim 40.;
  Alcotest.(check bool) "adopted lies kept alive" true
    (Igp.Lsdb.fake_count lsdb > 0)

let test_restart_withdraws_dangling_lies () =
  (* A fake whose forwarding adjacency no longer exists must be
     withdrawn at restart, not adopted. The edge is removed behind the
     simulator's back to model state the restarted controller cannot
     trust. *)
  let d, net = demo_net () in
  let controller = Fibbing.Controller.create net in
  Igp.Network.inject_fake net (fake ~id:"stale" ~at:d.b ~cost:2 ~fwd:d.r3);
  G.remove_edge d.graph d.b d.r3;
  Fibbing.Controller.crash controller;
  Fibbing.Controller.restart controller ~time:0.;
  Alcotest.(check int) "dangling lie withdrawn" 0
    (Igp.Lsdb.fake_count (Igp.Network.lsdb net));
  Alcotest.(check int) "nothing adopted" 0
    (Fibbing.Controller.fake_count controller)

let test_crash_restart_idempotent () =
  let _, net = demo_net () in
  let controller = Fibbing.Controller.create net in
  Fibbing.Controller.crash controller;
  Fibbing.Controller.crash controller;
  Fibbing.Controller.restart controller ~time:1.;
  Fibbing.Controller.restart controller ~time:2.;
  Alcotest.(check bool) "alive" true (Fibbing.Controller.alive controller)

(* ---------- Scenario DSL fault hooks ---------- *)

let run_script text =
  let buffer = Buffer.create 256 in
  let out = Format.formatter_of_buffer buffer in
  match Scenarios.Script.run_string ~out text with
  | Ok () -> Buffer.contents buffer
  | Error message -> Alcotest.failf "script failed: %s" message

let test_script_fault_commands () =
  let output =
    run_script
      {|
topology demo
prefix blue at C
controller on
flows 5 from A to blue rate 131072 at 0 duration 30
fail B-R2 at 4
restore B-R2 at 8
crash R3 at 10
recover R3 at 14
blackout 2 at 16
flooding loss 0.2 at 18 duration 4 seed 3
controller crash at 20
controller restart at 24
run 30
report fakes
|}
  in
  Alcotest.(check bool) "script ran and reported" true
    (String.length output > 0)

let test_script_restore_unknown_link_is_noop () =
  (* Restoring a link that never failed must not blow up the run. *)
  let output =
    run_script
      {|
topology demo
prefix blue at C
controller off
flows 1 from A to blue rate 1000 at 0 duration 8
restore A-B at 2
run 10
report loads
|}
  in
  Alcotest.(check bool) "ran" true (String.length output > 0)

let () =
  let qsuite tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "chaos"
    [
      ( "lsdb-aging",
        [
          Alcotest.test_case "expiry basics" `Quick test_lsdb_expiry_basic;
          Alcotest.test_case "refresh extends" `Quick test_lsdb_refresh_extends_life;
          Alcotest.test_case "clear + clamp" `Quick test_lsdb_expiry_clear_and_clamp;
        ] );
      ( "flooding-loss",
        [
          Alcotest.test_case "drop=0 dispatches lossless" `Quick
            test_flooding_lossless_dispatch;
          Alcotest.test_case "lossy costs more" `Quick test_flooding_lossy_costs_more;
          Alcotest.test_case "deterministic" `Quick test_flooding_lossy_deterministic;
          Alcotest.test_case "validation" `Quick test_flooding_loss_validation;
        ] );
      ( "flooding-jitter",
        [
          Alcotest.test_case "rounds not messages" `Quick
            test_flooding_jitter_costs_rounds_not_messages;
          Alcotest.test_case "deterministic + validated" `Quick
            test_flooding_jitter_deterministic_and_validated;
        ] );
      ( "monitor-corruption",
        [ Alcotest.test_case "deterministic + validated" `Quick test_monitor_corruption ] );
      ( "fault-plans",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "validate rejects malformed" `Quick
            test_validate_rejects_malformed;
          Alcotest.test_case "partition rules" `Quick test_validate_partition_rules;
          Alcotest.test_case "partition cuts and heals" `Quick
            test_partition_inject_cuts_and_heals;
          Alcotest.test_case "new kinds drawn" `Quick test_random_plans_draw_new_kinds;
        ]
        @ qsuite [ prop_random_plans_validate ] );
      ( "watchdog",
        [
          Alcotest.test_case "quiet on a safe run" `Quick
            test_watchdog_quiet_on_safe_run;
          Alcotest.test_case "detects forced loop" `Quick
            test_watchdog_detects_forced_loop;
          Alcotest.test_case "budget + freshness" `Quick
            test_watchdog_budget_and_freshness;
          Alcotest.test_case "dangling lie" `Quick test_watchdog_dangling_lie;
          Alcotest.test_case "fail-fast raises" `Quick
            test_watchdog_fail_fast_raises;
          Alcotest.test_case "guard quarantines on the timeline" `Quick
            test_watchdog_guard_quarantines_on_timeline;
        ] );
      ( "lie-aging",
        [
          Alcotest.test_case "dead controller ages out" `Quick
            test_dead_controller_lies_age_out;
          Alcotest.test_case "live controller refreshes" `Quick
            test_live_controller_keeps_lies_alive;
          Alcotest.test_case "restart adopts survivors" `Quick
            test_restart_adopts_surviving_lies;
          Alcotest.test_case "restart withdraws dangling" `Quick
            test_restart_withdraws_dangling_lies;
          Alcotest.test_case "crash/restart idempotent" `Quick
            test_crash_restart_idempotent;
        ] );
      ( "chaos",
        [ Alcotest.test_case "deterministic" `Quick test_chaos_deterministic ]
        @ qsuite [ prop_chaos_converges ] );
      ( "script-faults",
        [
          Alcotest.test_case "fault commands" `Quick test_script_fault_commands;
          Alcotest.test_case "restore unknown link" `Quick
            test_script_restore_unknown_link_is_noop;
        ] );
    ]
