let pfx = Igp.Prefix.v
(* Tests for the video workload and QoE models. *)

let checkf = Alcotest.(check (float 1e-6))

let config = Video.Client.default_config

(* Constant-rate sample series helper: [rate] bytes/s for [seconds]. *)
let constant_rate ~rate ~seconds ~dt =
  List.init (int_of_float (seconds /. dt)) (fun i -> (float_of_int i *. dt, rate))

(* ---------- Client ---------- *)

let test_client_smooth_at_full_rate () =
  let samples = constant_rate ~rate:config.bitrate ~seconds:40. ~dt:0.5 in
  let r = Video.Client.replay ~duration:30. ~dt:0.5 samples in
  Alcotest.(check int) "no stalls" 0 r.stall_count;
  checkf "no stall time" 0. r.stall_time;
  Alcotest.(check bool) "smooth" true r.smooth;
  Alcotest.(check bool) "startup around buffer fill" true (r.startup_delay <= 4.);
  checkf "played everything" 30. r.played

let test_client_stalls_at_half_rate () =
  let samples = constant_rate ~rate:(config.bitrate /. 2.) ~seconds:60. ~dt:0.5 in
  let r = Video.Client.replay ~duration:30. ~dt:0.5 samples in
  Alcotest.(check bool) "stalls" true (r.stall_count > 0);
  Alcotest.(check bool) "stall time accrues" true (r.stall_time > 5.);
  Alcotest.(check bool) "not smooth" false r.smooth

let test_client_fast_download_no_stall () =
  let samples = constant_rate ~rate:(config.bitrate *. 4.) ~seconds:20. ~dt:0.5 in
  let r = Video.Client.replay ~duration:30. ~dt:0.5 samples in
  Alcotest.(check int) "no stalls" 0 r.stall_count;
  Alcotest.(check bool) "startup fast" true (r.startup_delay <= 1.)

let test_client_zero_rate_never_starts () =
  let samples = constant_rate ~rate:0. ~seconds:20. ~dt:0.5 in
  let r = Video.Client.replay ~duration:30. ~dt:0.5 samples in
  checkf "nothing played" 0. r.played;
  Alcotest.(check bool) "not smooth" false r.smooth

let test_client_rate_drop_causes_stall () =
  (* Full rate for 5 s, then starvation: buffer drains and playback
     stalls. *)
  let good = constant_rate ~rate:(config.bitrate *. 1.5) ~seconds:5. ~dt:0.5 in
  let bad =
    List.map (fun (t, _) -> (t +. 5., 0.)) (constant_rate ~rate:0. ~seconds:20. ~dt:0.5)
  in
  let r = Video.Client.replay ~duration:30. ~dt:0.5 (good @ bad) in
  Alcotest.(check bool) "stalled" true (r.stall_count >= 1);
  Alcotest.(check bool) "some content played" true (r.played > 2.)

let test_client_short_video_fully_buffered () =
  (* A 1-second video is shorter than the startup buffer; playback must
     still start once fully buffered. *)
  let samples = constant_rate ~rate:config.bitrate ~seconds:10. ~dt:0.5 in
  let r = Video.Client.replay ~duration:1. ~dt:0.5 samples in
  checkf "played all" 1. r.played;
  Alcotest.(check int) "no stalls" 0 r.stall_count

let test_client_validation () =
  Alcotest.(check bool) "bad dt" true
    (try ignore (Video.Client.replay ~duration:1. ~dt:0. []); false
     with Invalid_argument _ -> true)

(* ---------- Workload ---------- *)

let test_workload_fig2_schedule () =
  let flows =
    Video.Workload.fig2_schedule ~s1:0 ~s2:1 ~prefix:(pfx "blue") ~rate:100.
      ~video_duration:300.
  in
  Alcotest.(check int) "62 flows" 62 (List.length flows);
  let at time = List.length (List.filter (fun (f : Netsim.Flow.t) -> f.start_time = time) flows) in
  Alcotest.(check int) "1 at t=0" 1 (at 0.);
  Alcotest.(check int) "30 at t=15" 30 (at 15.);
  Alcotest.(check int) "31 at t=35" 31 (at 35.);
  let ids = List.map (fun (f : Netsim.Flow.t) -> f.id) flows in
  Alcotest.(check int) "unique ids" 62 (List.length (List.sort_uniq compare ids));
  let from_s2 = List.filter (fun (f : Netsim.Flow.t) -> f.src = 1) flows in
  Alcotest.(check int) "31 from S2" 31 (List.length from_s2)

let test_workload_burst_jitter () =
  let prng = Kit.Prng.create ~seed:1 in
  let spec =
    { Video.Workload.src = 0; prefix = pfx "p"; rate = 10.; video_duration = 60. }
  in
  let flows = Video.Workload.burst ~jitter:2. prng spec ~first_id:10 ~count:5 ~at:7. in
  Alcotest.(check int) "count" 5 (List.length flows);
  List.iter
    (fun (f : Netsim.Flow.t) ->
      Alcotest.(check bool) "within jitter window" true
        (f.start_time >= 7. && f.start_time < 9.))
    flows;
  Alcotest.(check (list int)) "ids" [ 10; 11; 12; 13; 14 ]
    (List.map (fun (f : Netsim.Flow.t) -> f.id) flows)

let test_workload_poisson () =
  let prng = Kit.Prng.create ~seed:3 in
  let spec =
    { Video.Workload.src = 0; prefix = pfx "p"; rate = 10.; video_duration = 60. }
  in
  let flows =
    Video.Workload.poisson prng spec ~first_id:0 ~rate_per_s:2. ~from:0. ~until:100.
  in
  (* Expectation 200 arrivals; loose bounds. *)
  let n = List.length flows in
  Alcotest.(check bool) (Printf.sprintf "%d arrivals plausible" n) true
    (n > 120 && n < 300);
  List.iter
    (fun (f : Netsim.Flow.t) ->
      Alcotest.(check bool) "in window" true (f.start_time >= 0. && f.start_time < 100.))
    flows

(* ---------- Qoe ---------- *)

let smooth_result : Video.Client.result =
  { startup_delay = 1.; stall_count = 0; stall_time = 0.; played = 30.; smooth = true }

let bad_result : Video.Client.result =
  { startup_delay = 8.; stall_count = 5; stall_time = 15.; played = 30.; smooth = false }

let test_qoe_all_smooth () =
  let s = Video.Qoe.summarize [ smooth_result; smooth_result ] in
  Alcotest.(check int) "sessions" 2 s.sessions;
  Alcotest.(check int) "smooth" 2 s.smooth_sessions;
  Alcotest.(check int) "stalls" 0 s.total_stalls;
  checkf "ratio" 0. s.stall_ratio;
  Alcotest.(check bool) "high mos" true (s.mos > 4.5)

let test_qoe_degraded () =
  let s = Video.Qoe.summarize [ bad_result; bad_result ] in
  Alcotest.(check int) "no smooth" 0 s.smooth_sessions;
  Alcotest.(check int) "stalls" 10 s.total_stalls;
  Alcotest.(check bool) "low mos" true (s.mos < 2.5);
  Alcotest.(check bool) "ordering vs smooth" true
    (s.mos < (Video.Qoe.summarize [ smooth_result ]).mos)

let test_qoe_empty_rejected () =
  Alcotest.(check bool) "empty" true
    (try ignore (Video.Qoe.summarize []); false with Invalid_argument _ -> true)

(* ---------- Abr ---------- *)

let abr_config = Video.Abr.default_config

let top_rate = abr_config.ladder.(Array.length abr_config.ladder - 1)

let test_abr_rich_throughput_reaches_top () =
  let samples = constant_rate ~rate:(top_rate *. 2.) ~seconds:60. ~dt:0.5 in
  let r = Video.Abr.replay ~duration:40. ~dt:0.5 samples in
  Alcotest.(check int) "no stalls" 0 r.stall_count;
  Alcotest.(check bool)
    (Printf.sprintf "mostly top rung (%.0fs of %.0fs)" r.time_at_top r.played)
    true
    (r.time_at_top > 0.6 *. r.played);
  Alcotest.(check bool) "high mean bitrate" true (r.mean_bitrate > top_rate /. 2.)

let test_abr_poor_throughput_downshifts () =
  (* Enough for the lowest rung only. *)
  let samples = constant_rate ~rate:(abr_config.ladder.(0) *. 1.2) ~seconds:80. ~dt:0.5 in
  let r = Video.Abr.replay ~duration:40. ~dt:0.5 samples in
  Alcotest.(check bool) "stays near bottom" true
    (r.mean_bitrate < abr_config.ladder.(1));
  Alcotest.(check bool) "few stalls thanks to adaptation" true (r.stall_time < 10.)

let test_abr_adapts_better_than_fixed_rate () =
  (* Throughput affords the middle rung: fixed top-rate playback stalls
     badly; ABR should not. *)
  let rate = abr_config.ladder.(1) *. 1.3 in
  let samples = constant_rate ~rate ~seconds:120. ~dt:0.5 in
  let abr = Video.Abr.replay ~duration:60. ~dt:0.5 samples in
  let fixed =
    Video.Client.replay
      ~config:{ Video.Client.default_config with bitrate = top_rate }
      ~duration:60. ~dt:0.5 samples
  in
  Alcotest.(check bool)
    (Printf.sprintf "ABR stalls (%.1fs) < fixed-rate stalls (%.1fs)"
       abr.stall_time fixed.stall_time)
    true
    (abr.stall_time < fixed.stall_time);
  Alcotest.(check bool) "ABR plays more content" true (abr.played >= fixed.played)

let test_abr_counts_switches () =
  (* Throughput that oscillates between rung 0 and rung 2 budgets forces
     switches. *)
  let samples =
    List.init 160 (fun i ->
        let t = float_of_int i *. 0.5 in
        let rate =
          if (i / 30) mod 2 = 0 then top_rate *. 1.5 else abr_config.ladder.(0) *. 1.2
        in
        (t, rate))
  in
  let r = Video.Abr.replay ~duration:60. ~dt:0.5 samples in
  Alcotest.(check bool)
    (Printf.sprintf "switched %d times" r.switches)
    true (r.switches >= 2)

let test_abr_validation () =
  Alcotest.(check bool) "descending ladder rejected" true
    (try
       ignore
         (Video.Abr.replay
            ~config:{ abr_config with ladder = [| 2.; 1. |] }
            ~duration:1. ~dt:0.5 []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty ladder rejected" true
    (try
       ignore
         (Video.Abr.replay ~config:{ abr_config with ladder = [||] } ~duration:1.
            ~dt:0.5 []);
       false
     with Invalid_argument _ -> true)

(* ---------- Catalog ---------- *)

let test_catalog_build () =
  let items = Video.Catalog.catalog ~size:10 ~rate:100. ~duration:60. in
  Alcotest.(check int) "size" 10 (List.length items);
  Alcotest.(check int) "ranks ascend from 1" 1 (List.hd items).rank

let test_catalog_zipf_skew () =
  let prng = Kit.Prng.create ~seed:4 in
  let counts = Array.make 20 0 in
  for _ = 1 to 10000 do
    let rank = Video.Catalog.zipf_pick prng ~s:1.0 ~size:20 in
    counts.(rank - 1) <- counts.(rank - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 beats rank 2" true (counts.(0) > counts.(1));
  Alcotest.(check bool) "rank 2 beats rank 10" true (counts.(1) > counts.(9));
  (* Zipf(1): p(1)/p(10) = 10; allow generous sampling slack. *)
  let ratio = float_of_int counts.(0) /. float_of_int (max 1 counts.(9)) in
  Alcotest.(check bool)
    (Printf.sprintf "heavy head (ratio %.1f)" ratio)
    true (ratio > 5.)

let test_catalog_zipf_bounds () =
  let prng = Kit.Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let rank = Video.Catalog.zipf_pick prng ~s:0.8 ~size:7 in
    Alcotest.(check bool) "in range" true (rank >= 1 && rank <= 7)
  done

let test_catalog_day_surge_density () =
  let prng = Kit.Prng.create ~seed:6 in
  let catalog = Video.Catalog.catalog ~size:10 ~rate:100. ~duration:60. in
  let surge = { Video.Catalog.at = 100.; length = 50.; boost = 20.; item_rank = 1 } in
  let flows =
    Video.Catalog.day prng ~src:0 ~prefix:(pfx "p") ~catalog ~base_rate_per_s:0.1
      ~horizon:300. ~surges:[ surge ] ~first_id:0
  in
  let in_window =
    List.length
      (List.filter
         (fun (f : Netsim.Flow.t) -> f.start_time >= 100. && f.start_time < 150.)
         flows)
  in
  let before_window =
    List.length
      (List.filter
         (fun (f : Netsim.Flow.t) -> f.start_time >= 0. && f.start_time < 50.)
         flows)
  in
  Alcotest.(check bool)
    (Printf.sprintf "surge density (%d in window vs %d before)" in_window
       before_window)
    true
    (in_window > 5 * max 1 before_window);
  (* Ids unique, times sorted, all inside the horizon. *)
  let ids = List.map (fun (f : Netsim.Flow.t) -> f.id) flows in
  Alcotest.(check int) "unique ids" (List.length flows)
    (List.length (List.sort_uniq compare ids));
  let times = List.map (fun (f : Netsim.Flow.t) -> f.start_time) flows in
  Alcotest.(check (list (float 1e-9))) "sorted" (List.sort compare times) times;
  Alcotest.(check bool) "in horizon" true
    (List.for_all (fun t -> t >= 0. && t < 300.) times)

let test_catalog_day_deterministic () =
  let mk () =
    let prng = Kit.Prng.create ~seed:7 in
    let catalog = Video.Catalog.catalog ~size:5 ~rate:100. ~duration:60. in
    Video.Catalog.day prng ~src:0 ~prefix:(pfx "p") ~catalog ~base_rate_per_s:0.2
      ~horizon:100. ~surges:[] ~first_id:0
  in
  Alcotest.(check bool) "same flows" true (mk () = mk ())

let () =
  Alcotest.run "video"
    [
      ( "client",
        [
          Alcotest.test_case "smooth at full rate" `Quick test_client_smooth_at_full_rate;
          Alcotest.test_case "stalls at half rate" `Quick test_client_stalls_at_half_rate;
          Alcotest.test_case "fast download" `Quick test_client_fast_download_no_stall;
          Alcotest.test_case "zero rate" `Quick test_client_zero_rate_never_starts;
          Alcotest.test_case "rate drop stalls" `Quick test_client_rate_drop_causes_stall;
          Alcotest.test_case "short video" `Quick test_client_short_video_fully_buffered;
          Alcotest.test_case "validation" `Quick test_client_validation;
        ] );
      ( "workload",
        [
          Alcotest.test_case "fig2 schedule" `Quick test_workload_fig2_schedule;
          Alcotest.test_case "burst jitter" `Quick test_workload_burst_jitter;
          Alcotest.test_case "poisson" `Quick test_workload_poisson;
        ] );
      ( "abr",
        [
          Alcotest.test_case "rich throughput" `Quick test_abr_rich_throughput_reaches_top;
          Alcotest.test_case "poor throughput" `Quick test_abr_poor_throughput_downshifts;
          Alcotest.test_case "beats fixed rate" `Quick test_abr_adapts_better_than_fixed_rate;
          Alcotest.test_case "counts switches" `Quick test_abr_counts_switches;
          Alcotest.test_case "validation" `Quick test_abr_validation;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "build" `Quick test_catalog_build;
          Alcotest.test_case "zipf skew" `Quick test_catalog_zipf_skew;
          Alcotest.test_case "zipf bounds" `Quick test_catalog_zipf_bounds;
          Alcotest.test_case "surge density" `Quick test_catalog_day_surge_density;
          Alcotest.test_case "deterministic" `Quick test_catalog_day_deterministic;
        ] );
      ( "qoe",
        [
          Alcotest.test_case "all smooth" `Quick test_qoe_all_smooth;
          Alcotest.test_case "degraded" `Quick test_qoe_degraded;
          Alcotest.test_case "empty" `Quick test_qoe_empty_rejected;
        ] );
    ]
