let pfx = Igp.Prefix.v
(* Tests for traffic-engineering algorithms: matrices, the max
   concurrent flow FPTAS, flow decomposition and weight optimization. *)

module G = Netgraph.Graph
module T = Netgraph.Topologies

let checkf tol = Alcotest.(check (float tol))

let demo_net () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  (d, net)

(* ---------- Matrix ---------- *)

let test_matrix_aggregates () =
  let m =
    Te.Matrix.of_entries
      [
        { src = 0; prefix = pfx "p"; demand = 10. };
        { src = 0; prefix = pfx "p"; demand = 5. };
        { src = 1; prefix = pfx "q"; demand = 2. };
      ]
  in
  checkf 1e-9 "summed" 15. (Te.Matrix.demand m ~src:0 ~prefix:(pfx "p"));
  checkf 1e-9 "other" 2. (Te.Matrix.demand m ~src:1 ~prefix:(pfx "q"));
  checkf 1e-9 "absent" 0. (Te.Matrix.demand m ~src:3 ~prefix:(pfx "p"));
  checkf 1e-9 "total" 17. (Te.Matrix.total m);
  Alcotest.(check (list string)) "prefixes" [ "p"; "q" ]
    (List.sort compare (List.map Igp.Prefix.to_string (Te.Matrix.prefixes m)))

let test_matrix_scale_add () =
  let m = Te.Matrix.of_entries [ { src = 0; prefix = pfx "p"; demand = 10. } ] in
  let m2 = Te.Matrix.scale m 3. in
  checkf 1e-9 "scaled" 30. (Te.Matrix.demand m2 ~src:0 ~prefix:(pfx "p"));
  let m3 = Te.Matrix.add m m2 in
  checkf 1e-9 "added" 40. (Te.Matrix.demand m3 ~src:0 ~prefix:(pfx "p"))

let test_matrix_rejects_negative () =
  Alcotest.(check bool) "negative" true
    (try
       ignore (Te.Matrix.of_entries [ { src = 0; prefix = pfx "p"; demand = -1. } ]);
       false
     with Invalid_argument _ -> true)

let test_matrix_of_flows () =
  let flows =
    [
      Netsim.Flow.make ~id:0 ~src:2 ~prefix:(pfx "p") ~demand:4. ();
      Netsim.Flow.make ~id:1 ~src:2 ~prefix:(pfx "p") ~demand:6. ();
    ]
  in
  let m = Te.Matrix.of_flows flows in
  checkf 1e-9 "merged" 10. (Te.Matrix.demand m ~src:2 ~prefix:(pfx "p"))

(* ---------- Mcf ---------- *)

let test_mcf_single_path () =
  (* Line 0-1-2, capacity 10: a demand of 5 fits with lambda 2. *)
  let g = T.line ~n:3 in
  let caps _ = 10. in
  let result =
    Te.Mcf.solve ~epsilon:0.05 g ~capacities:caps
      [ { src = 0; dst = 2; prefix = pfx "p"; demand = 5. } ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "lambda %.3f in [1.7, 2.0]" result.lambda)
    true
    (result.lambda > 1.7 && result.lambda <= 2.01);
  let util = Te.Mcf.max_utilization g ~capacities:caps result in
  checkf 0.01 "utilization 0.5" 0.5 util

let test_mcf_uses_both_diamond_arms () =
  (* Diamond with unit capacities: demand 2 from 0 to 3 only fits using
     both arms. *)
  let g = G.create () in
  let s = G.add_node g ~name:"s" in
  let a = G.add_node g ~name:"a" in
  let b = G.add_node g ~name:"b" in
  let t = G.add_node g ~name:"t" in
  G.add_link g s a ~weight:1;
  G.add_link g s b ~weight:1;
  G.add_link g a t ~weight:1;
  G.add_link g b t ~weight:1;
  let caps _ = 1. in
  let result =
    Te.Mcf.solve ~epsilon:0.05 g ~capacities:caps
      [ { src = s; dst = t; prefix = pfx "p"; demand = 2. } ]
  in
  Alcotest.(check bool) "lambda close to 1" true
    (result.lambda > 0.85 && result.lambda <= 1.01);
  let flows = List.assoc (pfx "p") result.flows in
  let on_a = Option.value ~default:0. (List.assoc_opt (s, a) flows) in
  let on_b = Option.value ~default:0. (List.assoc_opt (s, b) flows) in
  Alcotest.(check bool) "both arms used" true (on_a > 0.3 && on_b > 0.3);
  checkf 0.02 "flow conservation at source" 2. (on_a +. on_b)

let test_mcf_beats_single_shortest_path () =
  (* The paper's claim: the optimum spreads load that ECMP piles onto one
     path. Demo topology, 100 units from A and B each: min-max util must
     beat the 200-on-one-link IGP outcome. *)
  let d, net = demo_net () in
  ignore net;
  let caps _ = 100. in
  let result =
    Te.Mcf.solve ~epsilon:0.05 d.graph ~capacities:caps
      [
        { src = d.a; dst = d.c; prefix = pfx "blue"; demand = 100. };
        { src = d.b; dst = d.c; prefix = pfx "blue"; demand = 100. };
      ]
  in
  let util = Te.Mcf.max_utilization d.graph ~capacities:caps result in
  (* IGP puts 200 on B-R2 (util 2.0); the optimum is ~0.67. *)
  Alcotest.(check bool)
    (Printf.sprintf "opt util %.3f < 1.0" util)
    true (util < 1.0)

let test_mcf_rejects_bad_inputs () =
  let g = T.line ~n:3 in
  Alcotest.(check bool) "bad demand" true
    (try
       ignore
         (Te.Mcf.solve g ~capacities:(fun _ -> 1.)
            [ { src = 0; dst = 2; prefix = pfx "p"; demand = 0. } ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad epsilon" true
    (try
       ignore (Te.Mcf.solve ~epsilon:1.5 g ~capacities:(fun _ -> 1.) []);
       false
     with Invalid_argument _ -> true)

let test_mcf_unroutable_commodity () =
  let g = G.create () in
  let a = G.add_node g ~name:"a" in
  let b = G.add_node g ~name:"b" in
  Alcotest.(check bool) "unroutable" true
    (try
       ignore
         (Te.Mcf.solve g ~capacities:(fun _ -> 1.)
            [ { src = a; dst = b; prefix = pfx "p"; demand = 1. } ]);
       false
     with Invalid_argument _ -> true)

(* ---------- Decompose ---------- *)

let test_decompose_cancel_cycles () =
  let flows = [ ((0, 1), 3.); ((1, 2), 1.); ((2, 0), 1.); ((1, 3), 2.) ] in
  (* Cycle 0->1->2->0 carries 1 unit; after cancellation 0->1 keeps 2. *)
  let cleaned = Te.Decompose.cancel_cycles flows in
  Alcotest.(check bool) "cycle gone" true
    (not (List.mem_assoc (2, 0) cleaned) && not (List.mem_assoc (1, 2) cleaned));
  checkf 1e-9 "reduced" 2. (List.assoc (0, 1) cleaned);
  checkf 1e-9 "untouched" 2. (List.assoc (1, 3) cleaned)

let test_decompose_cancel_no_cycles_is_identity () =
  let flows = [ ((0, 1), 1.); ((1, 2), 1.) ] in
  Alcotest.(check bool) "unchanged" true (Te.Decompose.cancel_cycles flows = flows)

let test_decompose_node_fractions () =
  let flows = [ ((0, 1), 3.); ((0, 2), 1.) ] in
  match Te.Decompose.node_fractions flows with
  | [ (0, fractions) ] ->
    checkf 1e-9 "3/4" 0.75 (List.assoc 1 fractions);
    checkf 1e-9 "1/4" 0.25 (List.assoc 2 fractions)
  | _ -> Alcotest.fail "one node expected"

let test_decompose_to_requirements_skips_conforming () =
  (* A flow pattern equal to current IGP routing yields no requirements. *)
  let d, net = demo_net () in
  let flows = [ ((d.a, d.b), 1.); ((d.b, d.r2), 1.); ((d.r2, d.c), 1.) ] in
  let reqs = Te.Decompose.to_requirements net ~prefix:(pfx "blue") flows in
  Alcotest.(check int) "no lies needed" 0 (List.length reqs.routers)

let test_decompose_to_requirements_detects_deviation () =
  let d, net = demo_net () in
  (* Desired: B splits across R2 and R3. *)
  let flows =
    [ ((d.b, d.r2), 1.); ((d.b, d.r3), 1.); ((d.r2, d.c), 1.); ((d.r3, d.c), 1.) ]
  in
  let reqs = Te.Decompose.to_requirements net ~prefix:(pfx "blue") flows in
  Alcotest.(check int) "B needs a lie" 1 (List.length reqs.routers);
  (match reqs.routers with
  | [ rr ] -> Alcotest.(check int) "at B" d.b rr.router
  | _ -> ());
  (* Announcer C is never included even with outgoing flow. *)
  let flows2 = flows @ [ ((d.c, d.r2), 1.) ] in
  let reqs2 = Te.Decompose.to_requirements net ~prefix:(pfx "blue") flows2 in
  Alcotest.(check bool) "announcer skipped" true
    (List.for_all (fun (rr : Fibbing.Requirements.router_requirement) ->
         rr.router <> d.c)
       reqs2.routers)

(* End-to-end: MCF -> decompose -> compile -> verify -> loads match. *)
let test_te_pipeline_end_to_end () =
  let d, net = demo_net () in
  let caps _ = 100. in
  let result =
    Te.Mcf.solve ~epsilon:0.05 d.graph ~capacities:caps
      [
        { src = d.a; dst = d.c; prefix = pfx "blue"; demand = 100. };
        { src = d.b; dst = d.c; prefix = pfx "blue"; demand = 100. };
      ]
  in
  let reqs =
    Te.Decompose.to_requirements net ~prefix:(pfx "blue") (List.assoc (pfx "blue") result.flows)
  in
  Alcotest.(check bool) "some lies needed" true (reqs.routers <> []);
  (match Fibbing.Augmentation.compile ~max_entries:16 net reqs with
  | Error e -> Alcotest.failf "compile failed: %s" e
  | Ok plan ->
    Fibbing.Augmentation.apply net plan;
    (* Realized max link load must be well below the IGP's 200. *)
    let loads =
      Netsim.Loadmap.propagate net
        [
          { src = d.a; prefix = pfx "blue"; amount = 100. };
          { src = d.b; prefix = pfx "blue"; amount = 100. };
        ]
    in
    match Netsim.Loadmap.max_load loads with
    | Some (_, maxload) ->
      Alcotest.(check bool)
        (Printf.sprintf "max load %.1f < 120" maxload)
        true (maxload < 120.)
    | None -> Alcotest.fail "no load")

(* ---------- Weightopt ---------- *)

let test_weightopt_improves_demo () =
  let d, net = demo_net () in
  let caps = Netsim.Link.capacities ~default:100. in
  let demands =
    [
      { Netsim.Loadmap.src = d.a; prefix = pfx "blue"; amount = 100. };
      { Netsim.Loadmap.src = d.b; prefix = pfx "blue"; amount = 100. };
    ]
  in
  let scratch = Igp.Network.clone net in
  let outcome = Te.Weightopt.optimize scratch demands caps in
  checkf 1e-9 "initial util is 2.0" 2. outcome.initial_utilization;
  Alcotest.(check bool)
    (Printf.sprintf "improved to %.2f" outcome.max_utilization)
    true
    (outcome.max_utilization < outcome.initial_utilization);
  Alcotest.(check bool) "weights were changed" true (outcome.changed_weights <> []);
  Alcotest.(check bool) "evaluations counted" true (outcome.evaluations > 0)

let test_weightopt_apply_cost_nonzero () =
  let d, net = demo_net () in
  let caps = Netsim.Link.capacities ~default:100. in
  let demands =
    [
      { Netsim.Loadmap.src = d.a; prefix = pfx "blue"; amount = 100. };
      { Netsim.Loadmap.src = d.b; prefix = pfx "blue"; amount = 100. };
    ]
  in
  let scratch = Igp.Network.clone net in
  let outcome = Te.Weightopt.optimize scratch demands caps in
  let cost = Te.Weightopt.apply_cost scratch outcome in
  Alcotest.(check bool) "reconfiguration floods messages" true (cost.messages > 0)

let test_weightopt_noop_when_optimal () =
  (* A single small demand: nothing to improve. *)
  let d, net = demo_net () in
  let caps = Netsim.Link.capacities ~default:1000. in
  let demands = [ { Netsim.Loadmap.src = d.a; prefix = pfx "blue"; amount = 1. } ] in
  let scratch = Igp.Network.clone net in
  let outcome = Te.Weightopt.optimize ~max_rounds:2 scratch demands caps in
  Alcotest.(check bool) "no worse" true
    (outcome.max_utilization <= outcome.initial_utilization +. 1e-9)

(* Property: MCF lambda is an upper bound witness — routing demands
   scaled by any factor above lambda must exceed some capacity, and the
   returned pattern respects capacities within (1+eps). *)
let prop_mcf_utilization_consistent =
  QCheck.Test.make ~name:"mcf utilization ~ 1/lambda" ~count:20
    QCheck.(int_range 0 10000)
    (fun seed ->
      let prng = Kit.Prng.create ~seed in
      let g = T.random prng ~n:8 ~extra_edges:6 ~max_weight:3 in
      let caps _ = 10. in
      let src = 0 and dst = 7 in
      let demand = 5. +. Kit.Prng.float prng 10. in
      let result =
        Te.Mcf.solve ~epsilon:0.1 g ~capacities:caps
          [ { src; dst; prefix = pfx "p"; demand } ]
      in
      let util = Te.Mcf.max_utilization g ~capacities:caps result in
      (* util should approximate 1/lambda (both describe the same
         scaling headroom); allow FPTAS slack. *)
      result.lambda > 0.
      && util > 0.
      && util <= 1.30 /. result.lambda
      && util >= 0.60 /. result.lambda)

(* ---------- Oblivious ---------- *)

let test_oblivious_uses_multiple_paths () =
  let g = G.create () in
  let s = G.add_node g ~name:"s" in
  let a = G.add_node g ~name:"a" in
  let b = G.add_node g ~name:"b" in
  let t = G.add_node g ~name:"t" in
  G.add_link g s a ~weight:1;
  G.add_link g s b ~weight:1;
  G.add_link g a t ~weight:1;
  G.add_link g b t ~weight:1;
  let flows =
    Te.Oblivious.spread ~k:2 g
      [ { src = s; dst = t; prefix = pfx "p"; demand = 10. } ]
  in
  let edges = List.assoc (pfx "p") flows in
  (* Two equal-cost paths: even split. *)
  checkf 1e-9 "half via a" 5. (List.assoc (s, a) edges);
  checkf 1e-9 "half via b" 5. (List.assoc (s, b) edges);
  (* Flow conservation: all 10 units reach t. *)
  checkf 1e-9 "conservation" 10.
    (List.assoc (a, t) edges +. List.assoc (b, t) edges)

let test_oblivious_weights_by_inverse_cost () =
  (* Demo topology from A: the two cheapest paths (cost 3 and 4) both
     enter at B; the third (cost 5) detours via R1 and must carry the
     least. *)
  let d = T.demo () in
  let flows =
    Te.Oblivious.spread ~k:3 d.graph
      [ { src = d.a; dst = d.c; prefix = pfx "p"; demand = 8. } ]
  in
  let edges = List.assoc (pfx "p") flows in
  let via_b = Option.value ~default:0. (List.assoc_opt (d.a, d.b) edges) in
  let via_r1 = Option.value ~default:0. (List.assoc_opt (d.a, d.r1) edges) in
  Alcotest.(check bool)
    (Printf.sprintf "cheap path carries more (%.2f > %.2f)" via_b via_r1)
    true
    (via_b > via_r1 && via_r1 > 0.);
  checkf 1e-9 "all traffic leaves A" 8. (via_b +. via_r1)

let test_oblivious_beats_single_path_under_surge () =
  (* The surge regime: oblivious spreading halves the hotspot without
     knowing the demands, but stays above the demand-aware optimum. *)
  let d = T.demo () in
  let capacity _ = 100. in
  let commodities =
    [
      { Te.Mcf.src = d.a; dst = d.c; prefix = pfx "p"; demand = 100. };
      { Te.Mcf.src = d.b; dst = d.c; prefix = pfx "p"; demand = 100. };
    ]
  in
  let oblivious =
    Te.Oblivious.max_utilization ~capacities:capacity
      (Te.Oblivious.spread ~k:2 d.graph commodities)
  in
  let optimal =
    Te.Mcf.max_utilization d.graph ~capacities:capacity
      (Te.Mcf.solve ~epsilon:0.05 d.graph ~capacities:capacity commodities)
  in
  (* Single-path IGP puts 2.0 on B-R2. *)
  Alcotest.(check bool)
    (Printf.sprintf "oblivious %.2f < 2.0" oblivious)
    true (oblivious < 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "optimal %.2f <= oblivious %.2f" optimal oblivious)
    true
    (optimal <= oblivious +. 0.05)

let test_oblivious_unroutable () =
  let g = G.create () in
  let a = G.add_node g ~name:"a" in
  let b = G.add_node g ~name:"b" in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Te.Oblivious.spread g [ { src = a; dst = b; prefix = pfx "p"; demand = 1. } ]);
       false
     with Invalid_argument _ -> true)

(* ---------- Planner ---------- *)

let test_planner_scenarios () =
  let d = T.demo () in
  let scenarios = Te.Planner.single_link_failures d.graph in
  (* 8 links; removing any single one keeps the demo connected. *)
  Alcotest.(check int) "no-failure + 8 failures" 9 (List.length scenarios);
  Alcotest.(check bool) "includes no-failure" true
    (List.mem Te.Planner.No_failure scenarios)

let test_planner_excludes_partitions () =
  (* A line: every link is a cut link. *)
  let g = T.line ~n:4 in
  let scenarios = Te.Planner.single_link_failures g in
  Alcotest.(check int) "only no-failure" 1 (List.length scenarios)

let test_planner_prepares_demo () =
  let d, net = demo_net () in
  let demands =
    [
      { Netsim.Loadmap.src = d.a; prefix = pfx "blue"; amount = 100. };
      { Netsim.Loadmap.src = d.b; prefix = pfx "blue"; amount = 100. };
    ]
  in
  let entries =
    Te.Planner.prepare net ~demands ~capacity:100.
      ~scenarios:(Te.Planner.single_link_failures d.graph)
  in
  Alcotest.(check int) "an entry per scenario" 9 (List.length entries);
  List.iter
    (fun (e : Te.Planner.entry) ->
      (* The plan never does worse than plain IGP, and tracks the
         optimum within quantization + FPTAS slack where it exists. *)
      Alcotest.(check bool) "no worse than IGP" true
        (e.planned_utilization <= e.igp_utilization +. 1e-9);
      if e.plan <> None then
        Alcotest.(check bool)
          (Format.asprintf "%a: %.2f tracks optimal %.2f"
             (Te.Planner.pp_scenario d.graph) e.scenario e.planned_utilization
             e.optimal_utilization)
          true
          (e.planned_utilization <= (e.optimal_utilization *. 1.25) +. 0.05))
    entries;
  (* The no-failure entry must reproduce the Fig. 1d improvement. *)
  (match List.find_opt (fun (e : Te.Planner.entry) -> e.scenario = No_failure) entries with
  | Some e ->
    Alcotest.(check (float 1e-6)) "IGP util 2.0" 2.0 e.igp_utilization;
    Alcotest.(check bool)
      (Printf.sprintf "planned %.2f < 1.0" e.planned_utilization)
      true
      (e.planned_utilization < 1.0)
  | None -> Alcotest.fail "no-failure entry missing");
  let worst = Te.Planner.worst_case entries in
  Alcotest.(check bool) "worst case identified" true
    (List.for_all
       (fun (e : Te.Planner.entry) ->
         e.planned_utilization <= worst.planned_utilization)
       entries)

let test_planner_rejects_multi_prefix () =
  let d, net = demo_net () in
  Igp.Network.announce_prefix net (pfx "red") ~origin:d.r4 ~cost:0;
  Alcotest.(check bool) "rejected" true
    (try
       ignore
         (Te.Planner.prepare net
            ~demands:
              [
                { Netsim.Loadmap.src = d.a; prefix = pfx "blue"; amount = 1. };
                { Netsim.Loadmap.src = d.a; prefix = pfx "red"; amount = 1. };
              ]
            ~capacity:100. ~scenarios:[ Te.Planner.No_failure ]);
       false
     with Invalid_argument _ -> true)

(* ---------- Global controller strategy (Te.Reopt) ---------- *)

let stream = 131072.

let strategy_sim ~strategy =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  let caps = Netsim.Link.capacities ~default:(11. *. 1024. *. 1024.) in
  List.iter
    (fun link -> Netsim.Link.set_link caps link (2.75 *. 1024. *. 1024.))
    [ (d.a, d.r1); (d.b, d.r2); (d.b, d.r3) ];
  let monitor =
    Netsim.Monitor.create ~poll_interval:2.0 ~threshold:0.85 ~clear_threshold:0.6
      ~alpha:0.8 caps
  in
  let sim = Netsim.Sim.create ~dt:0.5 ~monitor net caps in
  let controller =
    Fibbing.Controller.create
      ~config:
        { Fibbing.Controller.default_config with strategy; max_entries = 16 }
      ~reoptimize:Te.Reopt.for_controller net
  in
  Fibbing.Controller.attach controller sim;
  (d, net, sim, controller, caps)

let test_global_strategy_resolves_surge () =
  let d, net, sim, controller, caps =
    strategy_sim ~strategy:Fibbing.Controller.Global_optimal
  in
  for i = 0 to 30 do
    Netsim.Sim.add_flow sim
      (Netsim.Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:stream ())
  done;
  Netsim.Sim.run_until sim 20.;
  Alcotest.(check bool) "reacted" true
    (Fibbing.Controller.fake_count controller > 0);
  (* Fluid check: offered demands routed under the installed lies stay
     within capacity (the optimum for 31 streams is ~0.74). *)
  let loads =
    Netsim.Loadmap.propagate net
      [ { src = d.a; prefix = pfx "blue"; amount = 31. *. stream } ]
  in
  (match Netsim.Loadmap.max_utilization loads caps with
  | Some (_, u) ->
    Alcotest.(check bool)
      (Printf.sprintf "max util %.2f below 1" u)
      true (u < 1.0)
  | None -> Alcotest.fail "no load");
  (* The reoptimizer's description appears in the log. *)
  Alcotest.(check bool) "re-optimize action logged" true
    (List.exists
       (fun (a : Fibbing.Controller.action) ->
         String.length a.description >= 11
         && String.sub a.description 0 11 = "re-optimize")
       (Fibbing.Controller.actions controller))

let test_global_without_reoptimizer_degrades_gracefully () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  let caps = Netsim.Link.capacities ~default:(2.75 *. 1024. *. 1024.) in
  let monitor = Netsim.Monitor.create ~alpha:1.0 caps in
  let sim = Netsim.Sim.create ~dt:0.5 ~monitor net caps in
  let controller =
    Fibbing.Controller.create
      ~config:
        {
          Fibbing.Controller.default_config with
          strategy = Fibbing.Controller.Global_optimal;
        }
      net
  in
  Fibbing.Controller.attach controller sim;
  for i = 0 to 30 do
    Netsim.Sim.add_flow sim
      (Netsim.Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:stream ())
  done;
  Netsim.Sim.run_until sim 10.;
  Alcotest.(check int) "no lies installed" 0
    (Fibbing.Controller.fake_count controller);
  Alcotest.(check bool) "skip logged" true
    (Fibbing.Controller.actions controller <> [])

let test_local_vs_global_fake_counts () =
  (* Local deflection uses fewer lies; global tracks the optimum. Both
     must resolve the surge. *)
  let run strategy =
    let d, _, sim, controller, _ = strategy_sim ~strategy in
    for i = 0 to 30 do
      Netsim.Sim.add_flow sim
        (Netsim.Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:stream ())
    done;
    Netsim.Sim.run_until sim 20.;
    Fibbing.Controller.fake_count controller
  in
  let local = run Fibbing.Controller.Local_deflection in
  let global = run Fibbing.Controller.Global_optimal in
  Alcotest.(check bool) "both reacted" true (local > 0 && global > 0);
  Alcotest.(check bool)
    (Printf.sprintf "local (%d) uses no more fakes than global (%d)" local global)
    true
    (local <= global)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "te"
    [
      ( "matrix",
        [
          Alcotest.test_case "aggregates" `Quick test_matrix_aggregates;
          Alcotest.test_case "scale/add" `Quick test_matrix_scale_add;
          Alcotest.test_case "negative" `Quick test_matrix_rejects_negative;
          Alcotest.test_case "of flows" `Quick test_matrix_of_flows;
        ] );
      ( "mcf",
        [
          Alcotest.test_case "single path" `Quick test_mcf_single_path;
          Alcotest.test_case "diamond arms" `Quick test_mcf_uses_both_diamond_arms;
          Alcotest.test_case "beats shortest path" `Quick
            test_mcf_beats_single_shortest_path;
          Alcotest.test_case "bad inputs" `Quick test_mcf_rejects_bad_inputs;
          Alcotest.test_case "unroutable" `Quick test_mcf_unroutable_commodity;
        ] );
      qsuite "mcf-props" [ prop_mcf_utilization_consistent ];
      ( "decompose",
        [
          Alcotest.test_case "cancel cycles" `Quick test_decompose_cancel_cycles;
          Alcotest.test_case "identity without cycles" `Quick
            test_decompose_cancel_no_cycles_is_identity;
          Alcotest.test_case "node fractions" `Quick test_decompose_node_fractions;
          Alcotest.test_case "skips conforming" `Quick
            test_decompose_to_requirements_skips_conforming;
          Alcotest.test_case "detects deviation" `Quick
            test_decompose_to_requirements_detects_deviation;
          Alcotest.test_case "pipeline end-to-end (TOPT)" `Quick
            test_te_pipeline_end_to_end;
        ] );
      ( "planner",
        [
          Alcotest.test_case "scenario enumeration" `Quick test_planner_scenarios;
          Alcotest.test_case "excludes partitions" `Quick test_planner_excludes_partitions;
          Alcotest.test_case "prepares demo" `Quick test_planner_prepares_demo;
          Alcotest.test_case "single prefix only" `Quick test_planner_rejects_multi_prefix;
        ] );
      ( "oblivious",
        [
          Alcotest.test_case "multiple paths" `Quick test_oblivious_uses_multiple_paths;
          Alcotest.test_case "inverse-cost weights" `Quick
            test_oblivious_weights_by_inverse_cost;
          Alcotest.test_case "beats single path" `Quick
            test_oblivious_beats_single_path_under_surge;
          Alcotest.test_case "unroutable" `Quick test_oblivious_unroutable;
        ] );
      ( "reopt-strategy",
        [
          Alcotest.test_case "global resolves surge" `Quick
            test_global_strategy_resolves_surge;
          Alcotest.test_case "missing reoptimizer" `Quick
            test_global_without_reoptimizer_degrades_gracefully;
          Alcotest.test_case "local vs global fakes" `Quick
            test_local_vs_global_fake_counts;
        ] );
      ( "weightopt",
        [
          Alcotest.test_case "improves demo" `Quick test_weightopt_improves_demo;
          Alcotest.test_case "apply cost" `Quick test_weightopt_apply_cost_nonzero;
          Alcotest.test_case "noop when optimal" `Quick test_weightopt_noop_when_optimal;
        ] );
    ]
