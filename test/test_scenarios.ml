let pfx = Igp.Prefix.v
(* Integration tests: the full demo scenario must reproduce the paper's
   observable results (Fig. 2 shape, the specific fakes of Fig. 1c, and
   the smooth-vs-stutter QoE claim). These are the repository's
   "does the reproduction actually reproduce" tests. *)

module Demo = Scenarios.Demo

let run_fibbing_on () =
  let d = Demo.make ~fibbing:true () in
  let flows = Demo.load_fig2_workload d in
  Demo.run d ~until:55.;
  (d, flows)

let run_fibbing_off () =
  let d = Demo.make ~fibbing:false () in
  let flows = Demo.load_fig2_workload d in
  Demo.run d ~until:55.;
  (d, flows)

(* Caching: the 55 s simulations take ~a second; share across checks. *)
let on = lazy (run_fibbing_on ())
let off = lazy (run_fibbing_off ())

let series_named d name =
  match List.assoc_opt name (Demo.fig2_links d) with
  | Some link -> Netsim.Sim.link_series d.Demo.sim link
  | None -> Alcotest.failf "unknown link %s" name

let test_fig2_phase1_only_br2 () =
  let d, _ = Lazy.force on in
  let br2 = series_named d "B-R2" in
  let br3 = series_named d "B-R3" in
  let ar1 = series_named d "A-R1" in
  (* Before the surge: a single stream on B-R2 only. *)
  Alcotest.(check (float 1.)) "one stream on B-R2" Demo.stream_rate
    (Kit.Timeseries.value_at br2 10.);
  Alcotest.(check (float 1e-6)) "B-R3 idle" 0. (Kit.Timeseries.value_at br3 10.);
  Alcotest.(check (float 1e-6)) "A-R1 idle" 0. (Kit.Timeseries.value_at ar1 10.)

let test_fig2_phase2_ecmp_at_b () =
  let d, _ = Lazy.force on in
  let br3 = series_named d "B-R3" in
  let ar1 = series_named d "A-R1" in
  (* After the first surge and the controller's reaction, B-R3 carries
     roughly half the 31 streams; A-R1 is still unused. *)
  let late_phase2 = Kit.Timeseries.window_mean br3 ~from:25. ~until:34. in
  Alcotest.(check bool)
    (Printf.sprintf "B-R3 carries %.0f ~ half the surge" late_phase2)
    true
    (late_phase2 > 10. *. Demo.stream_rate && late_phase2 < 22. *. Demo.stream_rate);
  Alcotest.(check (float 1e-6)) "A-R1 still idle" 0.
    (Kit.Timeseries.value_at ar1 30.)

let test_fig2_phase3_detour_via_r1 () =
  let d, _ = Lazy.force on in
  let ar1 = series_named d "A-R1" in
  let late = Kit.Timeseries.window_mean ar1 ~from:45. ~until:54. in
  (* Roughly two thirds of A's 31 streams detour via R1. The upper bound
     is inclusive: A-R1's capacity is exactly 22 streams, and with
     demand-capped flows frozen at exactly their demand (the epsilon-
     tolerant fairshare freeze) a full link sits exactly on it. *)
  Alcotest.(check bool)
    (Printf.sprintf "A-R1 carries %.0f ~ 2/3 of A's streams" late)
    true
    (late > 14. *. Demo.stream_rate && late <= (22. *. Demo.stream_rate) +. 1.)

let test_fig2_no_link_over_capacity () =
  let d, _ = Lazy.force on in
  List.iter
    (fun (name, link) ->
      let series = Netsim.Sim.link_series d.Demo.sim link in
      Alcotest.(check bool)
        (Printf.sprintf "%s below capacity" name)
        true
        (Kit.Timeseries.peak series <= Demo.link_capacity +. 1.))
    (Demo.fig2_links d)

let test_fig2_total_throughput_grows () =
  (* The paper: "the maximal link load decreases while the overall load
     of the network increases". Total delivered rate in phase 3 must
     approach the full 62-stream demand. *)
  let d, _ = Lazy.force on in
  let total t =
    List.fold_left
      (fun acc (_, link) ->
        acc +. Kit.Timeseries.value_at (Netsim.Sim.link_series d.Demo.sim link) t)
      0. (Demo.fig2_links d)
  in
  Alcotest.(check bool) "phase3 total > phase2 total" true (total 50. > total 30.);
  Alcotest.(check bool)
    (Printf.sprintf "phase3 near full demand: %.2e" (total 50.))
    true
    (total 50. > 55. *. Demo.stream_rate)

let test_controller_installs_exactly_demo_fakes () =
  let d, _ = Lazy.force on in
  let fakes = Igp.Network.fakes d.Demo.net in
  (* fB at B plus two fA at A — exactly the paper's Fig. 1c. *)
  Alcotest.(check int) "three fakes" 3 (List.length fakes);
  let at_b =
    List.filter (fun (f : Igp.Lsa.fake) -> f.attachment = d.Demo.topology.b) fakes
  in
  let at_a =
    List.filter (fun (f : Igp.Lsa.fake) -> f.attachment = d.Demo.topology.a) fakes
  in
  Alcotest.(check int) "one at B" 1 (List.length at_b);
  Alcotest.(check int) "two at A" 2 (List.length at_a);
  (match at_b with
  | [ f ] ->
    Alcotest.(check int) "fB total cost 2" 2 (Igp.Lsa.total_cost f);
    Alcotest.(check int) "fB forwards to R3" d.Demo.topology.r3 f.forwarding
  | _ -> ());
  List.iter
    (fun (f : Igp.Lsa.fake) ->
      Alcotest.(check int) "fA total cost 3" 3 (Igp.Lsa.total_cost f);
      Alcotest.(check int) "fA forwards to R1" d.Demo.topology.r1 f.forwarding)
    at_a

let test_fig2_aggregation_equivalent () =
  (* The aggregated flow engine is a pure optimization: the full F2 run
     with flow classes must produce the same Fig. 2 series, sample for
     sample, and the same QoE verdicts as the per-flow engine. *)
  let d_agg, _ = Lazy.force on in
  let d_solo = Demo.make ~fibbing:true ~aggregation:false () in
  let flows_solo = Demo.load_fig2_workload d_solo in
  Demo.run d_solo ~until:55.;
  List.iter2
    (fun agg solo ->
      Alcotest.(check int)
        "same sample count"
        (Kit.Timeseries.length solo)
        (Kit.Timeseries.length agg);
      List.iter2
        (fun (t_a, v_a) (t_s, v_s) ->
          Alcotest.(check (float 1e-9)) "same sample time" t_s t_a;
          Alcotest.(check (float 1e-6)) "same throughput sample" v_s v_a)
        (Kit.Timeseries.samples agg)
        (Kit.Timeseries.samples solo))
    (Demo.fig2_series d_agg) (Demo.fig2_series d_solo);
  let q_agg =
    let d, flows = Lazy.force on in
    Demo.qoe d ~flows
  in
  let q_solo = Demo.qoe d_solo ~flows:flows_solo in
  Alcotest.(check int) "same smooth sessions" q_solo.smooth_sessions
    q_agg.smooth_sessions;
  Alcotest.(check int) "same stalls" q_solo.total_stalls q_agg.total_stalls;
  Alcotest.(check (float 1e-6)) "same MOS" q_solo.mos q_agg.mos;
  Alcotest.(check bool) "classes actually aggregate" true
    (Netsim.Sim.flow_classes d_agg.Demo.sim
    < List.length (Netsim.Sim.active_flows d_agg.Demo.sim))

let test_qoe_smooth_with_fibbing () =
  let d, flows = Lazy.force on in
  let summary = Demo.qoe d ~flows in
  Alcotest.(check int) "all sessions smooth" summary.sessions summary.smooth_sessions;
  Alcotest.(check int) "no stalls" 0 summary.total_stalls

let test_qoe_stutters_without_fibbing () =
  let d, flows = Lazy.force off in
  let summary = Demo.qoe d ~flows in
  Alcotest.(check bool) "many stalls" true (summary.total_stalls > 50);
  Alcotest.(check int) "nobody smooth" 0 summary.smooth_sessions;
  let on_summary =
    let d_on, flows_on = Lazy.force on in
    Demo.qoe d_on ~flows:flows_on
  in
  Alcotest.(check bool) "MOS ordering" true (on_summary.mos > summary.mos +. 1.)

let test_off_run_overloads_br2 () =
  let d, _ = Lazy.force off in
  let br2 = series_named d "B-R2" in
  let br3 = series_named d "B-R3" in
  (* Without the controller everything stays on B-R2 at capacity and
     B-R3 never carries traffic. *)
  Alcotest.(check bool) "B-R2 saturated" true
    (Kit.Timeseries.window_mean br2 ~from:20. ~until:34.
    >= Demo.link_capacity *. 0.99);
  Alcotest.(check (float 1e-6)) "B-R3 unused" 0. (Kit.Timeseries.peak br3)

let test_controller_overhead_is_tiny () =
  let d, _ = Lazy.force on in
  (* 3 installs (plus any superseded retractions): a few dozen LSA
     messages on this 8-link network, vs. thousands of RSVP refreshes an
     MPLS deployment would send over the same hour. *)
  let messages = (Igp.Network.control_cost d.Demo.net).messages in
  Alcotest.(check bool)
    (Printf.sprintf "%d messages is small" messages)
    true
    (messages <= 10 * 16)

let test_deterministic_reruns () =
  let d1, _ = run_fibbing_on () in
  let d2, _ = run_fibbing_on () in
  let s1 = series_named d1 "B-R3" in
  let s2 = series_named d2 "B-R3" in
  Alcotest.(check bool) "identical series" true
    (Kit.Timeseries.samples s1 = Kit.Timeseries.samples s2)

(* ---------- failure recovery ---------- *)

let test_controller_heals_link_failure () =
  (* 31 streams from A; at t=25 the link B-R2 dies. B's remaining exit
     (B-R3) cannot carry them all; the controller must escalate to A and
     split across B and R1. *)
  let d = Demo.make ~fibbing:true () in
  for i = 0 to 30 do
    Netsim.Sim.add_flow d.Demo.sim
      (Netsim.Flow.make ~id:i ~src:d.Demo.topology.a ~prefix:Demo.prefix
         ~demand:Demo.stream_rate ())
  done;
  Netsim.Sim.fail_link d.Demo.sim ~time:25. (d.Demo.topology.b, d.Demo.topology.r2);
  Demo.run d ~until:55.;
  (* After the failure and reaction, A must be splitting. *)
  let fib_a =
    Option.get (Igp.Network.fib d.Demo.net ~router:d.Demo.topology.a Demo.prefix)
  in
  Alcotest.(check (list int)) "A splits over B and R1"
    [ d.Demo.topology.b; d.Demo.topology.r1 ]
    (Igp.Fib.next_hops fib_a);
  Alcotest.(check (list int)) "nobody starved" []
    (Netsim.Sim.unroutable_flows d.Demo.sim);
  (* Both surviving bottlenecks below capacity at the end. *)
  List.iter
    (fun link ->
      let rate =
        Kit.Timeseries.value_at (Netsim.Sim.link_series d.Demo.sim link) 54.
      in
      Alcotest.(check bool) "within capacity" true (rate <= Demo.link_capacity +. 1.))
    [ (d.Demo.topology.b, d.Demo.topology.r3);
      (d.Demo.topology.a, d.Demo.topology.r1) ]

let test_multi_prefix_isolation () =
  (* Two prefixes: blue at C (surging) and red at R4 (background). The
     controller must fix blue without touching red's routing. *)
  let d = Demo.make ~fibbing:true () in
  Igp.Network.announce_prefix d.Demo.net (pfx "red") ~origin:d.Demo.topology.r4 ~cost:0;
  let red_baseline =
    List.filter_map
      (fun router ->
        Option.map
          (fun fib -> (router, Igp.Fib.weights fib))
          (Igp.Network.fib d.Demo.net ~router (pfx "red")))
      (Igp.Network.routers d.Demo.net)
  in
  for i = 0 to 30 do
    Netsim.Sim.add_flow d.Demo.sim
      (Netsim.Flow.make ~id:i ~src:d.Demo.topology.a ~prefix:Demo.prefix
         ~demand:Demo.stream_rate ())
  done;
  (* A single background red flow. *)
  Netsim.Sim.add_flow d.Demo.sim
    (Netsim.Flow.make ~id:100 ~src:d.Demo.topology.b ~prefix:(pfx "red")
       ~demand:Demo.stream_rate ());
  Demo.run d ~until:30.;
  (match d.Demo.controller with
  | Some c ->
    Alcotest.(check bool) "blue got lies" true
      (Fibbing.Controller.requirements c Demo.prefix <> None);
    Alcotest.(check bool) "red got none" true
      (Fibbing.Controller.requirements c (pfx "red") = None)
  | None -> Alcotest.fail "controller expected");
  (* Red routing identical to its baseline at every router. *)
  List.iter
    (fun (router, weights_before) ->
      match Igp.Network.fib d.Demo.net ~router (pfx "red") with
      | Some fib ->
        Alcotest.(check bool) "red untouched" true
          (Igp.Fib.weights fib = weights_before)
      | None -> Alcotest.fail "red lost reachability")
    red_baseline;
  (* And the red flow flows. *)
  Alcotest.(check (float 1.)) "red at demand" Demo.stream_rate
    (Netsim.Sim.flow_rate d.Demo.sim 100)

(* ---------- Script (scenario DSL) ---------- *)

let run_script text =
  let buffer = Buffer.create 256 in
  let out = Format.formatter_of_buffer buffer in
  let result = Scenarios.Script.run_string ~out text in
  Format.pp_print_flush out ();
  (result, Buffer.contents buffer)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_script_minimal () =
  let result, output =
    run_script
      {|
topology demo
prefix blue at C
flows 1 from A to blue rate 1000 at 0
run 5
report fibs
|}
  in
  Alcotest.(check bool) "runs" true (result = Ok ());
  Alcotest.(check bool) "fibs printed" true (contains output "B -> blue")

let test_script_steer_and_fakes () =
  let result, output =
    run_script
      {|
topology demo
prefix blue at C
controller off
flows 4 from B to blue rate 1000 at 0
steer B to R2:0.5,R3:0.5 at 2
run 6
report fakes
report fibs
|}
  in
  Alcotest.(check bool) "runs" true (result = Ok ());
  Alcotest.(check bool) "fake installed" true (contains output "fwd R3");
  Alcotest.(check bool) "B has ECMP" true (contains output "R2 x1, R3 x1")

let test_script_fail_command () =
  let result, output =
    run_script
      {|
topology demo
prefix blue at C
controller off
track B-R3
flows 1 from A to blue rate 1000 at 0
fail B-R2 at 2
run 6
report fibs
|}
  in
  Alcotest.(check bool) "runs" true (result = Ok ());
  (* After the failure B's route goes via R3. *)
  Alcotest.(check bool) "B via R3" true (contains output "B -> blue (cost 3): R3")

let test_script_parse_errors () =
  let check_error text fragment =
    match Scenarios.Script.parse text with
    | Error message ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" message fragment)
        true
        (contains message fragment)
    | Ok _ -> Alcotest.failf "expected a parse error for %S" text
  in
  check_error "nonsense command" "line 1";
  check_error "topology demo\nflows x from A to blue rate 1 at 0" "bad integer";
  check_error "capacity A_R1 5" "bad link";
  check_error "steer B to R2;0.5 at 1" "bad split";
  (* Prefix tokens are validated at parse time: the error carries the
     line number and the offending token. *)
  check_error "topology demo\nprefix 10.0.0.256/16 at C" "line 2";
  check_error "topology demo\nprefix 10.0.0.256/16 at C" "10.0.0.256";
  check_error "topology demo\nprefix 10.0.1.0/8 at C" "host bits";
  check_error "topology demo\nflows 1 from A to 10.0.0.0/40 rate 1 at 0"
    "mask length"

let test_script_execution_errors () =
  (* Unknown router. *)
  (match run_script "topology demo\nprefix blue at Z\nrun 1" with
  | Error message, _ ->
    Alcotest.(check bool) "unknown router" true (contains message "unknown router")
  | Ok (), _ -> Alcotest.fail "expected failure");
  (* Config after first run. *)
  match
    run_script
      "topology demo\nprefix blue at C\nrun 1\ncapacity default 5\nrun 2"
  with
  | Error message, _ ->
    Alcotest.(check bool) "late capacity rejected" true
      (contains message "before the first run")
  | Ok (), _ -> Alcotest.fail "expected failure"

let test_script_model_and_extra_reports () =
  let result, output =
    run_script
      {|
topology demo
prefix blue at C
controller off
model aimd
flows 2 from A to blue rate 131072 at 0
run 10
report loads
report latency
|}
  in
  Alcotest.(check bool) "runs" true (result = Ok ());
  Alcotest.(check bool) "loads printed" true (contains output "B-R2");
  Alcotest.(check bool) "latency printed" true (contains output "mean one-way delay");
  (* model after run is rejected *)
  match
    run_script "topology demo\nprefix blue at C\nrun 1\nmodel aimd\nrun 2"
  with
  | Error message, _ ->
    Alcotest.(check bool) "late model rejected" true
      (contains message "before the first run")
  | Ok (), _ -> Alcotest.fail "expected failure"

let test_script_qoe_report () =
  let result, output =
    run_script
      {|
topology demo
prefix blue at C
controller off
flows 2 from A to blue rate 131072 at 0 duration 20
run 30
report qoe
|}
  in
  Alcotest.(check bool) "runs" true (result = Ok ());
  Alcotest.(check bool) "qoe line" true (contains output "sessions=2")

let () =
  Alcotest.run "scenarios"
    [
      ( "fig2",
        [
          Alcotest.test_case "phase 1: single stream" `Quick test_fig2_phase1_only_br2;
          Alcotest.test_case "phase 2: ECMP at B" `Quick test_fig2_phase2_ecmp_at_b;
          Alcotest.test_case "phase 3: detour via R1" `Quick test_fig2_phase3_detour_via_r1;
          Alcotest.test_case "no overload with fibbing" `Quick
            test_fig2_no_link_over_capacity;
          Alcotest.test_case "total throughput grows" `Quick
            test_fig2_total_throughput_grows;
          Alcotest.test_case "aggregation equivalent" `Quick
            test_fig2_aggregation_equivalent;
        ] );
      ( "fig1c",
        [
          Alcotest.test_case "controller reproduces demo fakes" `Quick
            test_controller_installs_exactly_demo_fakes;
        ] );
      ( "qoe",
        [
          Alcotest.test_case "smooth with fibbing" `Quick test_qoe_smooth_with_fibbing;
          Alcotest.test_case "stutters without" `Quick test_qoe_stutters_without_fibbing;
          Alcotest.test_case "off run overloads B-R2" `Quick test_off_run_overloads_br2;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "tiny control cost" `Quick test_controller_overhead_is_tiny;
        ] );
      ( "determinism",
        [ Alcotest.test_case "reruns identical" `Quick test_deterministic_reruns ] );
      ( "script",
        [
          Alcotest.test_case "minimal" `Quick test_script_minimal;
          Alcotest.test_case "steer + fakes" `Quick test_script_steer_and_fakes;
          Alcotest.test_case "fail command" `Quick test_script_fail_command;
          Alcotest.test_case "parse errors" `Quick test_script_parse_errors;
          Alcotest.test_case "execution errors" `Quick test_script_execution_errors;
          Alcotest.test_case "model + extra reports" `Quick
            test_script_model_and_extra_reports;
          Alcotest.test_case "qoe report" `Quick test_script_qoe_report;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "controller heals link failure" `Quick
            test_controller_heals_link_failure;
          Alcotest.test_case "multi-prefix isolation" `Quick test_multi_prefix_isolation;
        ] );
    ]
