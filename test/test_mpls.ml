let pfx = Igp.Prefix.v
(* Tests for the MPLS RSVP-TE baseline: CSPF, tunnels, overhead
   accounting and the stateful head-end splitter. *)

module G = Netgraph.Graph
module T = Netgraph.Topologies

let checkf = Alcotest.(check (float 1e-6))

let demo () = T.demo ()

let caps value = Netsim.Link.capacities ~default:value

(* ---------- Cspf ---------- *)

let test_cspf_follows_igp_when_free () =
  let d = demo () in
  let path =
    Mpls.Cspf.path d.graph ~capacities:(caps 100.) ~reserved:(fun _ -> 0.)
      ~bandwidth:10. ~src:d.a ~dst:d.c
  in
  Alcotest.(check (option (list int))) "IGP shortest" (Some [ d.a; d.b; d.r2; d.c ]) path

let test_cspf_avoids_reserved_links () =
  let d = demo () in
  (* Reserve most of B-R2: CSPF must detour. *)
  let reserved link = if link = (d.b, d.r2) then 95. else 0. in
  let path =
    Mpls.Cspf.path d.graph ~capacities:(caps 100.) ~reserved ~bandwidth:10.
      ~src:d.a ~dst:d.c
  in
  match path with
  | Some p ->
    Alcotest.(check bool) "avoids B-R2" true
      (let rec uses = function
         | u :: (v :: _ as rest) -> ((u, v) = (d.b, d.r2)) || uses rest
         | _ -> false
       in
       not (uses p))
  | None -> Alcotest.fail "a detour exists"

let test_cspf_none_when_saturated () =
  let d = demo () in
  let path =
    Mpls.Cspf.path d.graph ~capacities:(caps 5.) ~reserved:(fun _ -> 0.)
      ~bandwidth:10. ~src:d.a ~dst:d.c
  in
  Alcotest.(check (option (list int))) "no capacity anywhere" None path

(* ---------- Tunnels ---------- *)

let test_tunnel_establish_and_state () =
  let d = demo () in
  let t = Mpls.Tunnels.create d.graph (caps 100.) in
  (match Mpls.Tunnels.establish t ~head:d.a ~tail:d.c ~bandwidth:10. with
  | Ok tunnel ->
    Alcotest.(check (list int)) "shortest path" [ d.a; d.b; d.r2; d.c ] tunnel.path;
    checkf "reserved on B-R2" 10. (Mpls.Tunnels.reserved t (d.b, d.r2));
    (* 3 hops: 3 Path + 3 Resv. *)
    Alcotest.(check int) "signaling" 6 (Mpls.Tunnels.signaling_messages t);
    (* 4 routers keep state. *)
    Alcotest.(check int) "state entries" 4 (Mpls.Tunnels.total_state t)
  | Error e -> Alcotest.failf "establish failed: %s" e)

let test_tunnel_second_takes_detour () =
  let d = demo () in
  let t = Mpls.Tunnels.create d.graph (caps 15.) in
  (match Mpls.Tunnels.establish t ~head:d.a ~tail:d.c ~bandwidth:10. with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first: %s" e);
  match Mpls.Tunnels.establish t ~head:d.a ~tail:d.c ~bandwidth:10. with
  | Ok tunnel ->
    Alcotest.(check bool) "different path" true
      (tunnel.path <> [ d.a; d.b; d.r2; d.c ])
  | Error e -> Alcotest.failf "second: %s" e

let test_tunnel_rejects_when_full () =
  let d = demo () in
  let t = Mpls.Tunnels.create d.graph (caps 12.) in
  ignore (Mpls.Tunnels.establish t ~head:d.a ~tail:d.c ~bandwidth:10.);
  ignore (Mpls.Tunnels.establish t ~head:d.a ~tail:d.c ~bandwidth:10.);
  (* Both of A's exits are consumed now. *)
  match Mpls.Tunnels.establish t ~head:d.a ~tail:d.c ~bandwidth:10. with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "third tunnel should not fit"

let test_tunnel_teardown_releases () =
  let d = demo () in
  let t = Mpls.Tunnels.create d.graph (caps 100.) in
  (match Mpls.Tunnels.establish t ~head:d.a ~tail:d.c ~bandwidth:10. with
  | Ok tunnel ->
    Mpls.Tunnels.teardown t tunnel.id;
    checkf "released" 0. (Mpls.Tunnels.reserved t (d.b, d.r2));
    Alcotest.(check int) "no tunnels" 0 (List.length (Mpls.Tunnels.tunnels t))
  | Error e -> Alcotest.failf "establish: %s" e);
  Alcotest.check_raises "unknown id" Not_found (fun () ->
      Mpls.Tunnels.teardown t 99)

let test_tunnel_refresh_overhead_grows () =
  let d = demo () in
  let t = Mpls.Tunnels.create d.graph (caps 100.) in
  ignore (Mpls.Tunnels.establish t ~head:d.a ~tail:d.c ~bandwidth:1.);
  ignore (Mpls.Tunnels.establish t ~head:d.b ~tail:d.c ~bandwidth:1.);
  let one_minute = Mpls.Tunnels.refresh_messages t ~period:30. ~duration:60. in
  let two_minutes = Mpls.Tunnels.refresh_messages t ~period:30. ~duration:120. in
  Alcotest.(check bool) "positive" true (one_minute > 0);
  Alcotest.(check int) "linear in time" (2 * one_minute) two_minutes

let test_tunnel_encap_overhead () =
  let d = demo () in
  let t = Mpls.Tunnels.create d.graph (caps 100.) in
  (* 1500-byte packets, 4-byte label, 1.5 MB of traffic: 1000 packets. *)
  checkf "4000 bytes" 4000.
    (Mpls.Tunnels.encap_overhead_bytes t ~packet_size:1500 ~label_bytes:4
       ~volume:1_500_000.)

(* ---------- Splitter ---------- *)

let mk_tunnels k =
  let d = demo () in
  let t = Mpls.Tunnels.create d.graph (caps 1000.) in
  List.init k (fun i ->
      match
        Mpls.Tunnels.establish t ~head:d.a ~tail:d.c ~bandwidth:(float_of_int (i + 1))
      with
      | Ok tunnel -> tunnel
      | Error e -> Alcotest.failf "tunnel %d: %s" i e)

let test_splitter_respects_weights () =
  match mk_tunnels 2 with
  | [ t1; t2 ] ->
    let s = Mpls.Splitter.create [ (t1, 1.); (t2, 2.) ] in
    for i = 0 to 899 do
      ignore (Mpls.Splitter.assign s ~flow_id:i ~demand:1.)
    done;
    let fractions = Mpls.Splitter.realized_fractions s in
    let f1 = List.assoc_opt t1 fractions in
    ignore f1;
    let get tunnel =
      List.fold_left
        (fun acc ((tl : Mpls.Tunnels.tunnel), f) ->
          if tl.id = tunnel.Mpls.Tunnels.id then f else acc)
        0. fractions
    in
    Alcotest.(check bool)
      (Printf.sprintf "t1 ~ 1/3, got %.3f" (get t1))
      true
      (abs_float (get t1 -. (1. /. 3.)) < 0.01);
    Alcotest.(check int) "state grows per flow" 900 (Mpls.Splitter.state_entries s)
  | _ -> Alcotest.fail "two tunnels expected"

let test_splitter_sticky () =
  match mk_tunnels 2 with
  | [ t1; t2 ] ->
    let s = Mpls.Splitter.create [ (t1, 1.); (t2, 1.) ] in
    let first = Mpls.Splitter.assign s ~flow_id:42 ~demand:5. in
    for _ = 1 to 5 do
      let again = Mpls.Splitter.assign s ~flow_id:42 ~demand:5. in
      Alcotest.(check int) "same tunnel" first.id again.id
    done;
    Alcotest.(check int) "one state entry" 1 (Mpls.Splitter.state_entries s)
  | _ -> Alcotest.fail "two tunnels expected"

let test_splitter_release () =
  match mk_tunnels 2 with
  | [ t1; t2 ] ->
    let s = Mpls.Splitter.create [ (t1, 1.); (t2, 1.) ] in
    ignore (Mpls.Splitter.assign s ~flow_id:1 ~demand:1.);
    Mpls.Splitter.release s ~flow_id:1;
    Alcotest.(check int) "state freed" 0 (Mpls.Splitter.state_entries s);
    Mpls.Splitter.release s ~flow_id:99 (* no-op *)
  | _ -> Alcotest.fail "two tunnels expected"

let test_splitter_rejects_bad_weights () =
  match mk_tunnels 1 with
  | [ t1 ] ->
    Alcotest.(check bool) "zero weight" true
      (try ignore (Mpls.Splitter.create [ (t1, 0.) ]); false
       with Invalid_argument _ -> true);
    Alcotest.(check bool) "empty" true
      (try ignore (Mpls.Splitter.create []); false
       with Invalid_argument _ -> true)
  | _ -> Alcotest.fail "one tunnel expected"

(* The paper's argument in numbers: achieving the demo's load balancing
   with RSVP-TE costs strictly more control messages than the 3 fake
   LSAs Fibbing floods. *)
let test_overhead_comparison_fibbing_wins () =
  let d = demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  (* Fibbing: the demo's three fakes. *)
  let reqs =
    Fibbing.Requirements.make ~prefix:(pfx "blue")
      [
        (d.b, [ (d.r2, 0.5); (d.r3, 0.5) ]);
        (d.a, [ (d.b, 1. /. 3.); (d.r1, 2. /. 3.) ]);
      ]
  in
  (match Fibbing.Augmentation.compile ~max_entries:4 net reqs with
  | Ok plan -> Fibbing.Augmentation.apply net plan
  | Error e -> Alcotest.failf "compile: %s" e);
  let fibbing_messages = (Igp.Network.control_cost net).messages in
  (* MPLS: same traffic split needs 3 tunnels (B->R2, B->R3 paths and
     the A->R1 detour) plus ongoing refreshes. *)
  let t = Mpls.Tunnels.create d.graph (caps 1000.) in
  List.iter
    (fun (head, tail) ->
      match Mpls.Tunnels.establish t ~head ~tail ~bandwidth:1. with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "tunnel: %s" e)
    [ (d.b, d.c); (d.b, d.c); (d.a, d.c) ];
  let mpls_setup = Mpls.Tunnels.signaling_messages t in
  let mpls_refresh = Mpls.Tunnels.refresh_messages t ~period:30. ~duration:3600. in
  Alcotest.(check bool)
    (Printf.sprintf "fibbing %d <= mpls setup+1h refresh %d" fibbing_messages
       (mpls_setup + mpls_refresh))
    true
    (fibbing_messages <= mpls_setup + mpls_refresh);
  (* And MPLS keeps per-router state while Fibbing keeps none. *)
  Alcotest.(check bool) "mpls state > 0" true (Mpls.Tunnels.total_state t > 0)

let () =
  Alcotest.run "mpls"
    [
      ( "cspf",
        [
          Alcotest.test_case "follows IGP" `Quick test_cspf_follows_igp_when_free;
          Alcotest.test_case "avoids reserved" `Quick test_cspf_avoids_reserved_links;
          Alcotest.test_case "saturated" `Quick test_cspf_none_when_saturated;
        ] );
      ( "tunnels",
        [
          Alcotest.test_case "establish/state" `Quick test_tunnel_establish_and_state;
          Alcotest.test_case "detour" `Quick test_tunnel_second_takes_detour;
          Alcotest.test_case "rejects when full" `Quick test_tunnel_rejects_when_full;
          Alcotest.test_case "teardown" `Quick test_tunnel_teardown_releases;
          Alcotest.test_case "refresh overhead" `Quick test_tunnel_refresh_overhead_grows;
          Alcotest.test_case "encap overhead" `Quick test_tunnel_encap_overhead;
        ] );
      ( "splitter",
        [
          Alcotest.test_case "respects weights" `Quick test_splitter_respects_weights;
          Alcotest.test_case "sticky" `Quick test_splitter_sticky;
          Alcotest.test_case "release" `Quick test_splitter_release;
          Alcotest.test_case "bad weights" `Quick test_splitter_rejects_bad_weights;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "fibbing cheaper (TOVH)" `Quick
            test_overhead_comparison_fibbing_wins;
        ] );
    ]
