let pfx = Igp.Prefix.v
(* Tests for the data-plane simulator: loads, fair sharing, hashing,
   events, monitor and the stepped simulation. *)

module G = Netgraph.Graph
module T = Netgraph.Topologies
module Link = Netsim.Link
module Flow = Netsim.Flow

let demo_net () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  (d, net)

let fake ~id ~at ~cost ~fwd : Igp.Lsa.fake =
  {
    fake_id = id;
    attachment = at;
    attachment_cost = 1;
    prefix = pfx "blue";
    announced_cost = cost - 1;
    forwarding = fwd;
  }

let checkf = Alcotest.(check (float 1e-6))

(* ---------- Link ---------- *)

let test_link_capacities () =
  let caps = Link.capacities ~default:10. in
  checkf "default" 10. (Link.capacity caps (0, 1));
  Link.set caps (0, 1) 5.;
  checkf "override" 5. (Link.capacity caps (0, 1));
  checkf "reverse untouched" 10. (Link.capacity caps (1, 0));
  Link.set_link caps (2, 3) 7.;
  checkf "both dirs" 7. (Link.capacity caps (3, 2))

let test_link_rejects_nonpositive () =
  Alcotest.(check bool) "bad default" true
    (try ignore (Link.capacities ~default:0.); false
     with Invalid_argument _ -> true);
  let caps = Link.capacities ~default:1. in
  Alcotest.(check bool) "bad set" true
    (try Link.set caps (0, 1) (-1.); false with Invalid_argument _ -> true)

(* ---------- Flow ---------- *)

let test_flow_lifecycle () =
  let f = Flow.make ~id:1 ~src:0 ~prefix:(pfx "p") ~demand:10. ~start_time:5. ~duration:10. () in
  checkf "end" 15. (Flow.end_time f);
  Alcotest.(check bool) "before" false (Flow.active_at f 4.9);
  Alcotest.(check bool) "at start" true (Flow.active_at f 5.);
  Alcotest.(check bool) "inside" true (Flow.active_at f 10.);
  Alcotest.(check bool) "at end" false (Flow.active_at f 15.)

let test_flow_validation () =
  Alcotest.(check bool) "bad demand" true
    (try ignore (Flow.make ~id:1 ~src:0 ~prefix:(pfx "p") ~demand:0. ()); false
     with Invalid_argument _ -> true)

(* ---------- Loadmap: the paper's Fig. 1b / 1d tables ---------- *)

let test_loadmap_fig1b () =
  (* Without Fibbing, 100 units from A and 100 from B pile up on B-R2
     and R2-C (the paper's "200" labels). *)
  let d, net = demo_net () in
  let loads =
    Netsim.Loadmap.propagate net
      [
        { src = d.a; prefix = pfx "blue"; amount = 100. };
        { src = d.b; prefix = pfx "blue"; amount = 100. };
      ]
  in
  checkf "A-B" 100. (Netsim.Loadmap.load loads (d.a, d.b));
  checkf "B-R2" 200. (Netsim.Loadmap.load loads (d.b, d.r2));
  checkf "R2-C" 200. (Netsim.Loadmap.load loads (d.r2, d.c));
  checkf "B-R3 idle" 0. (Netsim.Loadmap.load loads (d.b, d.r3));
  (match Netsim.Loadmap.max_load loads with
  | Some (link, load) ->
    Alcotest.(check bool) "max on B-R2 or R2-C" true
      (link = (d.b, d.r2) || link = (d.r2, d.c));
    checkf "max load 200" 200. load
  | None -> Alcotest.fail "no load")

let test_loadmap_fig1d () =
  (* With the paper's three fakes, the same demands spread to ~66 per
     link (Fig. 1d). *)
  let d, net = demo_net () in
  Igp.Network.inject_fake net (fake ~id:"fB" ~at:d.b ~cost:2 ~fwd:d.r3);
  Igp.Network.inject_fake net (fake ~id:"fA1" ~at:d.a ~cost:3 ~fwd:d.r1);
  Igp.Network.inject_fake net (fake ~id:"fA2" ~at:d.a ~cost:3 ~fwd:d.r1);
  let loads =
    Netsim.Loadmap.propagate net
      [
        { src = d.a; prefix = pfx "blue"; amount = 100. };
        { src = d.b; prefix = pfx "blue"; amount = 100. };
      ]
  in
  checkf "A-B third" (100. /. 3.) (Netsim.Loadmap.load loads (d.a, d.b));
  checkf "A-R1 two thirds" (200. /. 3.) (Netsim.Loadmap.load loads (d.a, d.r1));
  (* B carries its own 100 plus A's 33.3, split evenly. *)
  checkf "B-R2" (200. /. 3.) (Netsim.Loadmap.load loads (d.b, d.r2));
  checkf "B-R3" (200. /. 3.) (Netsim.Loadmap.load loads (d.b, d.r3));
  checkf "R1-R4" (200. /. 3.) (Netsim.Loadmap.load loads (d.r1, d.r4));
  (match Netsim.Loadmap.max_load loads with
  | Some (_, load) -> checkf "max load ~66.7" (200. /. 3.) load
  | None -> Alcotest.fail "no load")

let test_loadmap_utilization () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let loads =
    Netsim.Loadmap.propagate net [ { src = d.b; prefix = pfx "blue"; amount = 50. } ]
  in
  match Netsim.Loadmap.max_utilization loads caps with
  | Some (link, u) ->
    Alcotest.(check bool) "B-R2 or R2-C" true (link = (d.b, d.r2) || link = (d.r2, d.c));
    checkf "50%" 0.5 u
  | None -> Alcotest.fail "no utilization"

let test_loadmap_unreachable () =
  let g = G.create () in
  let a = G.add_node g ~name:"a" in
  let b = G.add_node g ~name:"b" in
  let c = G.add_node g ~name:"c" in
  G.add_link g a b ~weight:1;
  let net = Igp.Network.create g in
  Igp.Network.announce_prefix net (pfx "p") ~origin:c ~cost:0;
  Alcotest.(check bool) "raises" true
    (try
       ignore (Netsim.Loadmap.propagate net [ { src = a; prefix = pfx "p"; amount = 1. } ]);
       false
     with Netsim.Loadmap.Unreachable p -> Igp.Prefix.equal p (pfx "p"))

let test_loadmap_conservation () =
  (* Total load on links into C equals total offered demand. *)
  let d, net = demo_net () in
  Igp.Network.inject_fake net (fake ~id:"fB" ~at:d.b ~cost:2 ~fwd:d.r3);
  let loads =
    Netsim.Loadmap.propagate net
      [
        { src = d.a; prefix = pfx "blue"; amount = 70. };
        { src = d.b; prefix = pfx "blue"; amount = 30. };
      ]
  in
  let into_c =
    Netsim.Loadmap.load loads (d.r2, d.c)
    +. Netsim.Loadmap.load loads (d.r3, d.c)
    +. Netsim.Loadmap.load loads (d.r4, d.c)
  in
  checkf "conservation" 100. into_c

(* ---------- Hashing ---------- *)

let test_hashing_respects_weights () =
  (* With weights B:1, R1:2, about 2/3 of many flows go to R1. *)
  let d, net = demo_net () in
  Igp.Network.inject_fake net (fake ~id:"fA1" ~at:d.a ~cost:3 ~fwd:d.r1);
  Igp.Network.inject_fake net (fake ~id:"fA2" ~at:d.a ~cost:3 ~fwd:d.r1);
  let fib = Option.get (Igp.Network.fib net ~router:d.a (pfx "blue")) in
  let n = 3000 in
  let to_r1 = ref 0 in
  for flow_id = 0 to n - 1 do
    match Netsim.Hashing.select ~flow_id ~router:d.a fib with
    | Some nh when nh = d.r1 -> incr to_r1
    | Some _ -> ()
    | None -> Alcotest.fail "no selection"
  done;
  let fraction = float_of_int !to_r1 /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "%.3f close to 2/3" fraction)
    true
    (abs_float (fraction -. (2. /. 3.)) < 0.05)

let test_hashing_stable () =
  let d, net = demo_net () in
  let fib = Option.get (Igp.Network.fib net ~router:d.a (pfx "blue")) in
  let first = Netsim.Hashing.select ~flow_id:7 ~router:d.a fib in
  for _ = 1 to 10 do
    Alcotest.(check bool) "same choice" true
      (Netsim.Hashing.select ~flow_id:7 ~router:d.a fib = first)
  done

let test_hashing_route_full_path () =
  let d, net = demo_net () in
  (match Netsim.Hashing.route net ~flow_id:1 ~src:d.a (pfx "blue") with
  | Some path ->
    Alcotest.(check (list int)) "A-B-R2-C" [ d.a; d.b; d.r2; d.c ] path
  | None -> Alcotest.fail "no route");
  (* From the announcer itself: single-node path. *)
  match Netsim.Hashing.route net ~flow_id:1 ~src:d.c (pfx "blue") with
  | Some path -> Alcotest.(check (list int)) "local" [ d.c ] path
  | None -> Alcotest.fail "no local route"

let test_hashing_route_detects_loop () =
  (* Two mutually-attracting cheap fakes create a forwarding loop; the
     router walk must bail out rather than spin. *)
  let d, net = demo_net () in
  Igp.Network.inject_fake net (fake ~id:"l1" ~at:d.b ~cost:1 ~fwd:d.a);
  Igp.Network.inject_fake net (fake ~id:"l2" ~at:d.a ~cost:1 ~fwd:d.b);
  Alcotest.(check bool) "loop detected" true
    (Netsim.Hashing.route net ~flow_id:3 ~src:d.a (pfx "blue") = None)

(* ---------- Fairshare ---------- *)

let mkflow id demand = Flow.make ~id ~src:0 ~prefix:(pfx "p") ~demand ()

let test_fairshare_single_bottleneck () =
  let caps = Link.capacities ~default:10. in
  let routes =
    [
      { Netsim.Fairshare.flow = mkflow 1 100.; links = [ (0, 1) ] };
      { Netsim.Fairshare.flow = mkflow 2 100.; links = [ (0, 1) ] };
    ]
  in
  let alloc = Netsim.Fairshare.allocate caps routes in
  checkf "even split 1" 5. (List.assoc 1 alloc);
  checkf "even split 2" 5. (List.assoc 2 alloc)

let test_fairshare_demand_capped () =
  let caps = Link.capacities ~default:10. in
  let routes =
    [
      { Netsim.Fairshare.flow = mkflow 1 2.; links = [ (0, 1) ] };
      { Netsim.Fairshare.flow = mkflow 2 100.; links = [ (0, 1) ] };
    ]
  in
  let alloc = Netsim.Fairshare.allocate caps routes in
  checkf "small flow gets demand" 2. (List.assoc 1 alloc);
  checkf "big flow gets rest" 8. (List.assoc 2 alloc)

let test_fairshare_multi_bottleneck () =
  (* Classic example: flow X crosses links 1 and 2; flow Y only link 1;
     flow Z only link 2. cap(1)=10, cap(2)=4: X is limited by link 2. *)
  let caps = Link.capacities ~default:10. in
  Link.set caps (1, 2) 4.;
  let routes =
    [
      { Netsim.Fairshare.flow = mkflow 1 100.; links = [ (0, 1); (1, 2) ] };
      { Netsim.Fairshare.flow = mkflow 2 100.; links = [ (0, 1) ] };
      { Netsim.Fairshare.flow = mkflow 3 100.; links = [ (1, 2) ] };
    ]
  in
  let alloc = Netsim.Fairshare.allocate caps routes in
  checkf "X limited by small link" 2. (List.assoc 1 alloc);
  checkf "Y takes slack on big link" 8. (List.assoc 2 alloc);
  checkf "Z fair share of small link" 2. (List.assoc 3 alloc)

let test_fairshare_empty_path () =
  let caps = Link.capacities ~default:10. in
  let alloc =
    Netsim.Fairshare.allocate caps
      [ { Netsim.Fairshare.flow = mkflow 1 3.; links = [] } ]
  in
  checkf "full demand" 3. (List.assoc 1 alloc)

let test_fairshare_duplicate_ids_rejected () =
  let caps = Link.capacities ~default:10. in
  Alcotest.(check bool) "rejected" true
    (try
       ignore
         (Netsim.Fairshare.allocate caps
            [
              { Netsim.Fairshare.flow = mkflow 1 3.; links = [] };
              { Netsim.Fairshare.flow = mkflow 1 3.; links = [] };
            ]);
       false
     with Invalid_argument _ -> true)

let test_fairshare_link_throughput () =
  let caps = Link.capacities ~default:10. in
  let routes =
    [
      { Netsim.Fairshare.flow = mkflow 1 4.; links = [ (0, 1); (1, 2) ] };
      { Netsim.Fairshare.flow = mkflow 2 3.; links = [ (0, 1) ] };
    ]
  in
  let alloc = Netsim.Fairshare.allocate caps routes in
  let tp = Netsim.Fairshare.link_throughput routes alloc in
  checkf "shared link" 7. (List.assoc (0, 1) tp);
  checkf "second link" 4. (List.assoc (1, 2) tp)

(* Properties: allocation never exceeds capacity on any link, never
   exceeds demand, and is work-conserving at the bottleneck. *)
let fairshare_gen =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "flows=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 1 20) (int_range 0 100000))

let random_routes (n, seed) =
  let prng = Kit.Prng.create ~seed in
  List.init n (fun i ->
      let hops = 1 + Kit.Prng.int prng 4 in
      let start = Kit.Prng.int prng 5 in
      let links = List.init hops (fun h -> (start + h, start + h + 1)) in
      {
        Netsim.Fairshare.flow =
          Flow.make ~id:i ~src:0 ~prefix:(pfx "p")
            ~demand:(1. +. Kit.Prng.float prng 9.) ();
        links;
      })

let prop_fairshare_feasible =
  QCheck.Test.make ~name:"allocation within capacity and demand" ~count:200
    fairshare_gen (fun input ->
      let routes = random_routes input in
      let caps = Link.capacities ~default:6. in
      let alloc = Netsim.Fairshare.allocate caps routes in
      let tp = Netsim.Fairshare.link_throughput routes alloc in
      List.for_all (fun (_, t) -> t <= 6. +. 1e-6) tp
      && List.for_all
           (fun r ->
             let rate = List.assoc r.Netsim.Fairshare.flow.Flow.id alloc in
             rate <= r.Netsim.Fairshare.flow.Flow.demand +. 1e-6 && rate >= 0.)
           routes)

let prop_fairshare_work_conserving =
  QCheck.Test.make ~name:"each flow is demand- or bottleneck-limited" ~count:200
    fairshare_gen (fun input ->
      let routes = random_routes input in
      let caps = Link.capacities ~default:6. in
      let alloc = Netsim.Fairshare.allocate caps routes in
      let tp = Netsim.Fairshare.link_throughput routes alloc in
      List.for_all
        (fun r ->
          let rate = List.assoc r.Netsim.Fairshare.flow.Flow.id alloc in
          let demand_limited =
            rate >= r.Netsim.Fairshare.flow.Flow.demand -. 1e-6
          in
          let bottlenecked =
            List.exists
              (fun link ->
                Option.value ~default:0. (List.assoc_opt link tp) >= 6. -. 1e-6)
              r.Netsim.Fairshare.links
          in
          demand_limited || bottlenecked || r.Netsim.Fairshare.links = [])
        routes)

(* Regression for the freeze tie-break: a flow whose demand lands
   exactly on the fair-share level must freeze at its demand, in both
   kernels. The seed compared the saturation level with [=], so such a
   flow could be frozen at the link level a round early (or late)
   depending on float luck. *)
let test_fairshare_demand_equals_level () =
  let caps = Link.capacities ~default:10. in
  let exact =
    Netsim.Fairshare.
      [
        { flow = mkflow 1 5.; links = [ (0, 1) ] };
        { flow = mkflow 2 100.; links = [ (0, 1) ] };
      ]
  in
  (* Level of the 10-cap link with two flows is 5: flow 1's demand sits
     exactly on it. Both must end at exactly 5. *)
  List.iter
    (fun (label, alloc) ->
      checkf (label ^ ": capped flow at demand") 5. (List.assoc 1 alloc);
      checkf (label ^ ": elastic flow takes rest") 5. (List.assoc 2 alloc))
    [
      ("kernel", Netsim.Fairshare.allocate caps exact);
      ("reference", Netsim.Fairshare.allocate_reference caps exact);
    ];
  (* A demand a hair under the level must not leave the elastic flow
     short: epsilon-tolerant freezing gives 5 - 1e-10 and ~5, not a
     stuck round. *)
  let near =
    Netsim.Fairshare.
      [
        { flow = mkflow 1 (5. -. 1e-10); links = [ (0, 1) ] };
        { flow = mkflow 2 100.; links = [ (0, 1) ] };
      ]
  in
  List.iter
    (fun (label, alloc) ->
      Alcotest.(check bool)
        (label ^ ": near-exact demand") true
        (abs_float (List.assoc 1 alloc -. 5.) < 1e-6
        && abs_float (List.assoc 2 alloc -. 5.) < 1e-6))
    [
      ("kernel", Netsim.Fairshare.allocate caps near);
      ("reference", Netsim.Fairshare.allocate_reference caps near);
    ]

(* The indexed kernel against the list oracle, rate for rate. *)
let prop_fairshare_matches_reference =
  QCheck.Test.make ~name:"indexed kernel matches list reference" ~count:300
    fairshare_gen (fun input ->
      let routes = random_routes input in
      let caps = Link.capacities ~default:6. in
      let fast = Netsim.Fairshare.allocate caps routes in
      let slow = Netsim.Fairshare.allocate_reference caps routes in
      List.length fast = List.length slow
      && List.for_all2
           (fun (id_f, r_f) (id_s, r_s) ->
             id_f = id_s && abs_float (r_f -. r_s) < 1e-6)
           fast slow)

(* Max-min optimality, not just feasibility: a flow below demand must be
   bottlenecked on a saturated link where no other flow does better —
   raising it would require lowering someone no better off. *)
let prop_fairshare_max_min_optimal =
  QCheck.Test.make ~name:"below-demand flows are max-min bottlenecked"
    ~count:300 fairshare_gen (fun input ->
      let routes = random_routes input in
      let caps = Link.capacities ~default:6. in
      let alloc = Netsim.Fairshare.allocate caps routes in
      let tp = Netsim.Fairshare.link_throughput routes alloc in
      let rate (r : Netsim.Fairshare.route) = List.assoc r.flow.Flow.id alloc in
      List.for_all
        (fun (r : Netsim.Fairshare.route) ->
          rate r >= r.flow.Flow.demand -. 1e-6
          || List.exists
               (fun link ->
                 Option.value ~default:0. (List.assoc_opt link tp)
                 >= 6. -. 1e-6
                 && List.for_all
                      (fun (r' : Netsim.Fairshare.route) ->
                        (not (List.mem link r'.links))
                        || rate r' <= rate r +. 1e-6)
                      routes)
               r.links)
        routes)

(* Weighted groups: water_fill must agree with allocate on the expanded
   singleton population, and conserve capacity under the weights. *)
let water_fill_gen =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "groups=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 1 8) (int_range 0 100000))

let prop_water_fill_groups =
  QCheck.Test.make ~name:"water_fill = allocate on expanded singletons"
    ~count:300 water_fill_gen (fun (n, seed) ->
      let prng = Kit.Prng.create ~seed in
      let groups =
        List.init n (fun _ ->
            let hops = 1 + Kit.Prng.int prng 4 in
            let start = Kit.Prng.int prng 5 in
            let links = List.init hops (fun h -> (start + h, start + h + 1)) in
            let demand = 0.5 +. Kit.Prng.float prng 4.5 in
            let weight = 1 + Kit.Prng.int prng 5 in
            (demand, links, weight))
      in
      let caps = Link.capacities ~default:20. in
      let rates =
        Netsim.Fairshare.water_fill caps
          ~demands:(Array.of_list (List.map (fun (d, _, _) -> d) groups))
          ~links:(Array.of_list (List.map (fun (_, l, _) -> l) groups))
          ~weights:(Array.of_list (List.map (fun (_, _, w) -> w) groups))
      in
      (* Conservation: per-link sum of weight * member-rate <= capacity. *)
      let load = Hashtbl.create 16 in
      List.iteri
        (fun g (_, links, weight) ->
          List.iter
            (fun link ->
              let prev = Option.value ~default:0. (Hashtbl.find_opt load link) in
              Hashtbl.replace load link
                (prev +. (float_of_int weight *. rates.(g))))
            (List.sort_uniq Link.compare links))
        groups;
      let conserved =
        Hashtbl.fold (fun _ l acc -> acc && l <= 20. +. 1e-6) load true
      in
      (* Equivalence: expand each group into [weight] singleton flows. *)
      let expanded =
        List.concat
          (List.mapi
             (fun g (demand, links, weight) ->
               List.init weight (fun m ->
                   { Netsim.Fairshare.flow = mkflow ((g * 100) + m) demand; links }))
             groups)
      in
      let alloc = Netsim.Fairshare.allocate caps expanded in
      let agrees =
        List.for_all
          (fun (r : Netsim.Fairshare.route) ->
            abs_float
              (List.assoc r.flow.Flow.id alloc -. rates.(r.flow.Flow.id / 100))
            < 1e-6)
          expanded
      in
      conserved && agrees)

(* ---------- Events ---------- *)

let test_events_ordering () =
  let q = Netsim.Events.create () in
  Netsim.Events.schedule q ~time:3. "c";
  Netsim.Events.schedule q ~time:1. "a";
  Netsim.Events.schedule q ~time:2. "b";
  Alcotest.(check (option (float 1e-9))) "next" (Some 1.) (Netsim.Events.next_time q);
  let popped = Netsim.Events.pop_until q ~time:2. in
  Alcotest.(check (list string)) "first two" [ "a"; "b" ] (List.map snd popped);
  Alcotest.(check int) "one left" 1 (Netsim.Events.size q)

let test_events_negative_time () =
  let q = Netsim.Events.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Events.schedule: negative time")
    (fun () -> Netsim.Events.schedule q ~time:(-1.) "x")

(* ---------- Monitor ---------- *)

let test_monitor_alarm_cycle () =
  let caps = Link.capacities ~default:10. in
  let m = Netsim.Monitor.create ~poll_interval:1. ~threshold:0.9 ~clear_threshold:0.5
      ~alpha:1.0 caps
  in
  (* Saturate for 1s. *)
  Netsim.Monitor.observe m ~time:1. ~dt:1. [ ((0, 1), 10.) ];
  Alcotest.(check bool) "poll due" true (Netsim.Monitor.poll_due m ~time:1.);
  let alarms = Netsim.Monitor.poll m ~time:1. in
  Alcotest.(check int) "one alarm" 1 (List.length alarms);
  Alcotest.(check bool) "raised" true (List.hd alarms).raised;
  Alcotest.(check (list (pair int int))) "overloaded" [ (0, 1) ]
    (Netsim.Monitor.overloaded m);
  (* Idle window clears it. *)
  Netsim.Monitor.observe m ~time:2. ~dt:1. [ ((0, 1), 1.) ];
  let alarms = Netsim.Monitor.poll m ~time:2. in
  Alcotest.(check int) "one clear" 1 (List.length alarms);
  Alcotest.(check bool) "cleared" false (List.hd alarms).raised;
  Alcotest.(check int) "none overloaded" 0 (List.length (Netsim.Monitor.overloaded m))

let test_monitor_no_repeat_alarms () =
  let caps = Link.capacities ~default:10. in
  let m = Netsim.Monitor.create ~alpha:1.0 caps in
  Netsim.Monitor.observe m ~time:2. ~dt:2. [ ((0, 1), 10.) ];
  ignore (Netsim.Monitor.poll m ~time:2.);
  Netsim.Monitor.observe m ~time:4. ~dt:2. [ ((0, 1), 10.) ];
  let alarms = Netsim.Monitor.poll m ~time:4. in
  Alcotest.(check int) "no repeat" 0 (List.length alarms)

let test_monitor_ewma_smoothing () =
  let caps = Link.capacities ~default:10. in
  let m = Netsim.Monitor.create ~alpha:0.5 caps in
  Netsim.Monitor.observe m ~time:2. ~dt:2. [ ((0, 1), 10.) ];
  ignore (Netsim.Monitor.poll m ~time:2.);
  checkf "first estimate is raw" 1.0 (Netsim.Monitor.utilization m (0, 1));
  (* Silence decays towards zero. *)
  ignore (Netsim.Monitor.poll m ~time:4.);
  checkf "decayed" 0.5 (Netsim.Monitor.utilization m (0, 1))

let test_monitor_poll_cadence () =
  let caps = Link.capacities ~default:10. in
  let m = Netsim.Monitor.create ~poll_interval:2. caps in
  Alcotest.(check bool) "not due early" false (Netsim.Monitor.poll_due m ~time:1.9);
  Alcotest.(check bool) "due at interval" true (Netsim.Monitor.poll_due m ~time:2.);
  ignore (Netsim.Monitor.poll m ~time:2.);
  Alcotest.(check bool) "window restarts" false (Netsim.Monitor.poll_due m ~time:3.9);
  Alcotest.(check bool) "due again" true (Netsim.Monitor.poll_due m ~time:4.)

let test_monitor_hysteresis_band () =
  (* Utilization between clear_threshold and threshold keeps the alarm:
     no repeat alarm, no premature clear. *)
  let caps = Link.capacities ~default:10. in
  let m =
    Netsim.Monitor.create ~poll_interval:1. ~threshold:0.9 ~clear_threshold:0.5
      ~alpha:1.0 caps
  in
  Netsim.Monitor.observe m ~time:1. ~dt:1. [ ((0, 1), 10.) ];
  Alcotest.(check int) "raised" 1 (List.length (Netsim.Monitor.poll m ~time:1.));
  Netsim.Monitor.observe m ~time:2. ~dt:1. [ ((0, 1), 7.) ];
  Alcotest.(check int) "in-band: silent" 0
    (List.length (Netsim.Monitor.poll m ~time:2.));
  Alcotest.(check (list (pair int int))) "still overloaded" [ (0, 1) ]
    (Netsim.Monitor.overloaded m);
  Netsim.Monitor.observe m ~time:3. ~dt:1. [ ((0, 1), 4.) ];
  let alarms = Netsim.Monitor.poll m ~time:3. in
  Alcotest.(check int) "cleared below clear_threshold" 1 (List.length alarms);
  Alcotest.(check bool) "clear event" false (List.hd alarms).raised

let test_monitor_history_gated_by_obs () =
  let caps = Link.capacities ~default:10. in
  let m = Netsim.Monitor.create ~poll_interval:2. ~alpha:1.0 caps in
  Netsim.Monitor.observe m ~time:2. ~dt:2. [ ((0, 1), 5.) ];
  ignore (Netsim.Monitor.poll m ~time:2.);
  Alcotest.(check bool) "no history while disabled" true
    (Netsim.Monitor.history m (0, 1) = None);
  Obs.enable ();
  Netsim.Monitor.observe m ~time:4. ~dt:2. [ ((0, 1), 10.) ];
  ignore (Netsim.Monitor.poll m ~time:4.);
  Obs.disable ();
  match Netsim.Monitor.history m (0, 1) with
  | None -> Alcotest.fail "history expected while enabled"
  | Some ts ->
    Alcotest.(check int) "one sample" 1 (Kit.Timeseries.length ts);
    checkf "smoothed utilization sampled" 1.0 (Kit.Timeseries.value_at ts 4.)

(* Property: with offered rates within capacity and observation windows
   covering each poll interval, the smoothed estimate stays in [0, 1]. *)
let monitor_gen =
  QCheck.make
    ~print:(fun (polls, seed) -> Printf.sprintf "polls=%d seed=%d" polls seed)
    QCheck.Gen.(pair (int_range 1 20) (int_range 0 100000))

let prop_monitor_utilization_bounded =
  QCheck.Test.make ~name:"smoothed utilization stays within [0, 1]" ~count:200
    monitor_gen (fun (polls, seed) ->
      let prng = Kit.Prng.create ~seed in
      let capacity = 10. in
      let caps = Link.capacities ~default:capacity in
      let alpha = 0.1 +. Kit.Prng.float prng 0.9 in
      let m = Netsim.Monitor.create ~poll_interval:1. ~alpha caps in
      let links = [ (0, 1); (1, 2); (2, 3) ] in
      for p = 1 to polls do
        let time = float_of_int p in
        (* Two half-window observations per poll, each within capacity. *)
        List.iter
          (fun half ->
            let rates =
              List.filter_map
                (fun link ->
                  if Kit.Prng.float prng 1. < 0.7 then
                    Some (link, Kit.Prng.float prng capacity)
                  else None)
                links
            in
            Netsim.Monitor.observe m ~time:(time -. 0.5 +. (0.5 *. half))
              ~dt:0.5 rates)
          [ 1.; 2. ];
        ignore (Netsim.Monitor.poll m ~time)
      done;
      List.for_all
        (fun (_, u) -> u >= -1e-9 && u <= 1. +. 1e-9)
        (Netsim.Monitor.utilizations m))

(* ---------- Sim ---------- *)

let test_sim_single_flow_full_rate () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:0.5 net caps in
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:10. ());
  Netsim.Sim.run_until sim 5.;
  checkf "full demand" 10. (Netsim.Sim.flow_rate sim 0);
  (match Netsim.Sim.flow_path sim 0 with
  | Some path -> Alcotest.(check (list int)) "path" [ d.a; d.b; d.r2; d.c ] path
  | None -> Alcotest.fail "no path");
  let series = Netsim.Sim.link_series sim (d.b, d.r2) in
  checkf "series records rate" 10. (Kit.Timeseries.value_at series 4.)

let test_sim_congestion_throttles () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:15. in
  let sim = Netsim.Sim.create ~dt:0.5 net caps in
  for i = 0 to 2 do
    Netsim.Sim.add_flow sim (Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:10. ())
  done;
  Netsim.Sim.run_until sim 2.;
  (* 3 x 10 demand through 15-capacity path: each gets 5. *)
  checkf "throttled" 5. (Netsim.Sim.flow_rate sim 0)

let test_sim_flow_arrival_departure () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  Netsim.Sim.add_flow sim
    (Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:10. ~start_time:2. ~duration:3. ());
  Netsim.Sim.run_until sim 1.;
  Alcotest.(check int) "not yet active" 0 (List.length (Netsim.Sim.active_flows sim));
  Netsim.Sim.run_until sim 3.;
  Alcotest.(check int) "active" 1 (List.length (Netsim.Sim.active_flows sim));
  Netsim.Sim.run_until sim 6.;
  Alcotest.(check int) "departed" 0 (List.length (Netsim.Sim.active_flows sim));
  checkf "rate zero after departure" 0. (Netsim.Sim.flow_rate sim 0)

let test_sim_reroutes_on_fake_injection () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  (* Many flows so that some hash onto the new path. *)
  for i = 0 to 19 do
    Netsim.Sim.add_flow sim (Flow.make ~id:i ~src:d.b ~prefix:(pfx "blue") ~demand:1. ())
  done;
  Netsim.Sim.run_until sim 2.;
  let series_r3 = Netsim.Sim.link_series sim (d.b, d.r3) in
  checkf "nothing on B-R3 initially" 0. (Kit.Timeseries.value_at series_r3 1.);
  Igp.Network.inject_fake net (fake ~id:"fB" ~at:d.b ~cost:2 ~fwd:d.r3);
  Netsim.Sim.run_until sim 4.;
  Alcotest.(check bool) "traffic moved to B-R3" true
    (Kit.Timeseries.value_at series_r3 3. > 0.)

let test_sim_monitor_hook_fires () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:10. in
  let monitor = Netsim.Monitor.create ~poll_interval:1. ~alpha:1.0 caps in
  let sim = Netsim.Sim.create ~dt:0.5 ~monitor net caps in
  let fired = ref 0 in
  Netsim.Sim.on_poll sim (fun _ alarms -> if alarms <> [] then incr fired);
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:50. ());
  Netsim.Sim.run_until sim 3.;
  Alcotest.(check bool) "alarm raised at least once" true (!fired >= 1)

let test_sim_rejects_duplicate_flow () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:10. in
  let sim = Netsim.Sim.create net caps in
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:1. ());
  Alcotest.(check bool) "duplicate rejected" true
    (try
       Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:1. ());
       false
     with Invalid_argument _ -> true)

let test_sim_unroutable_flow_reported () =
  let g = G.create () in
  let a = G.add_node g ~name:"a" in
  let b = G.add_node g ~name:"b" in
  let c = G.add_node g ~name:"c" in
  G.add_link g a b ~weight:1;
  let net = Igp.Network.create g in
  Igp.Network.announce_prefix net (pfx "p") ~origin:c ~cost:0;
  let caps = Link.capacities ~default:10. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:a ~prefix:(pfx "p") ~demand:1. ());
  Netsim.Sim.run_until sim 2.;
  Alcotest.(check (list int)) "unroutable" [ 0 ] (Netsim.Sim.unroutable_flows sim);
  checkf "zero rate" 0. (Netsim.Sim.flow_rate sim 0)

(* ---------- Aimd ---------- *)

let aimd_routes demand n =
  List.init n (fun i ->
      { Netsim.Fairshare.flow = mkflow i demand; links = [ (0, 1) ] })

let test_aimd_ramps_up_to_demand () =
  let caps = Link.capacities ~default:100. in
  let aimd = Netsim.Aimd.create () in
  let routes = aimd_routes 10. 1 in
  (* One flow, ample capacity: rate must reach demand and stay. *)
  for _ = 1 to 100 do
    ignore (Netsim.Aimd.update aimd ~dt:0.5 ~capacities:caps routes)
  done;
  checkf "at demand" 10. (Netsim.Aimd.rate aimd 0)

let test_aimd_starts_slow () =
  let caps = Link.capacities ~default:100. in
  let aimd = Netsim.Aimd.create ~initial_fraction:0.1 () in
  let rates = Netsim.Aimd.update aimd ~dt:0.5 ~capacities:caps (aimd_routes 10. 1) in
  Alcotest.(check bool) "first step below demand" true (List.assoc 0 rates < 5.)

let test_aimd_backs_off_under_congestion () =
  let caps = Link.capacities ~default:10. in
  let aimd = Netsim.Aimd.create () in
  let routes = aimd_routes 100. 4 in
  (* 4 flows of demand 100 into capacity 10: long-run rates must hover
     near the 2.5 fair share, well below demand. *)
  for _ = 1 to 300 do
    ignore (Netsim.Aimd.update aimd ~dt:0.5 ~capacities:caps routes)
  done;
  List.iter
    (fun i ->
      let rate = Netsim.Aimd.rate aimd i in
      Alcotest.(check bool)
        (Printf.sprintf "flow %d rate %.1f in AIMD band" i rate)
        true
        (rate > 0.2 && rate < 12.))
    [ 0; 1; 2; 3 ]

let test_aimd_approx_fair () =
  let caps = Link.capacities ~default:10. in
  let aimd = Netsim.Aimd.create () in
  let routes = aimd_routes 100. 2 in
  (* Time-averaged rates of two identical flows should be close. *)
  let sum = [| 0.; 0. |] in
  for _ = 1 to 50 do
    ignore (Netsim.Aimd.update aimd ~dt:0.5 ~capacities:caps routes)
  done;
  for _ = 1 to 200 do
    let rates = Netsim.Aimd.update aimd ~dt:0.5 ~capacities:caps routes in
    sum.(0) <- sum.(0) +. List.assoc 0 rates;
    sum.(1) <- sum.(1) +. List.assoc 1 rates
  done;
  let ratio = sum.(0) /. sum.(1) in
  Alcotest.(check bool)
    (Printf.sprintf "long-run ratio %.2f near 1" ratio)
    true
    (ratio > 0.7 && ratio < 1.4)

let test_aimd_forget () =
  let caps = Link.capacities ~default:100. in
  let aimd = Netsim.Aimd.create () in
  ignore (Netsim.Aimd.update aimd ~dt:0.5 ~capacities:caps (aimd_routes 10. 1));
  Netsim.Aimd.forget aimd 0;
  checkf "forgotten" 0. (Netsim.Aimd.rate aimd 0)

let test_aimd_validation () =
  Alcotest.(check bool) "bad decrease" true
    (try ignore (Netsim.Aimd.create ~decrease_factor:1.5 ()); false
     with Invalid_argument _ -> true)

let test_sim_with_aimd_model () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:15. in
  let aimd = Netsim.Aimd.create () in
  let sim = Netsim.Sim.create ~dt:0.5 ~rate_model:(Aimd aimd) net caps in
  for i = 0 to 2 do
    Netsim.Sim.add_flow sim (Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:10. ())
  done;
  (* Early: rates are still ramping (below the 5.0 fair share). *)
  Netsim.Sim.run_until sim 1.;
  Alcotest.(check bool) "ramping" true (Netsim.Sim.flow_rate sim 0 < 5.);
  Netsim.Sim.run_until sim 60.;
  (* Delivered link throughput never exceeds capacity. *)
  let series = Netsim.Sim.link_series sim (d.a, d.b) in
  Alcotest.(check bool) "delivered <= capacity" true
    (Kit.Timeseries.peak series <= 15. +. 1e-6);
  (* And the three flows share the bottleneck meaningfully. *)
  let total =
    Netsim.Sim.flow_rate sim 0 +. Netsim.Sim.flow_rate sim 1
    +. Netsim.Sim.flow_rate sim 2
  in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate %.1f uses most of the link" total)
    true
    (total > 8.)

(* ---------- failure injection & scheduled actions ---------- *)

let test_sim_link_failure_reroutes () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:10. ());
  (* Fail B-R2 at t=3: B must fall back to R3 (cost 3) and the flow
     keeps flowing on the new path. *)
  Netsim.Sim.fail_link sim ~time:3. (d.b, d.r2);
  Netsim.Sim.run_until sim 2.;
  (match Netsim.Sim.flow_path sim 0 with
  | Some path -> Alcotest.(check (list int)) "before failure" [ d.a; d.b; d.r2; d.c ] path
  | None -> Alcotest.fail "routed before failure");
  Netsim.Sim.run_until sim 5.;
  (match Netsim.Sim.flow_path sim 0 with
  | Some path ->
    Alcotest.(check (list int)) "after failure via R3" [ d.a; d.b; d.r3; d.c ] path
  | None -> Alcotest.fail "routed after failure");
  checkf "still at demand" 10. (Netsim.Sim.flow_rate sim 0)

let test_sim_partition_starves_flow () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:10. ());
  (* Cut every path: A-B and A-R1 isolate A. *)
  Netsim.Sim.fail_link sim ~time:2. (d.a, d.b);
  Netsim.Sim.fail_link sim ~time:2. (d.a, d.r1);
  Netsim.Sim.run_until sim 4.;
  Alcotest.(check (list int)) "flow starves" [ 0 ] (Netsim.Sim.unroutable_flows sim);
  checkf "zero rate" 0. (Netsim.Sim.flow_rate sim 0)

let test_sim_scheduled_action_runs_once () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  let runs = ref 0 in
  Netsim.Sim.schedule sim ~time:2.5 (fun _ -> incr runs);
  Netsim.Sim.run_until sim 10.;
  Alcotest.(check int) "exactly once" 1 !runs;
  ignore d;
  Alcotest.(check bool) "past time rejected" true
    (try Netsim.Sim.schedule sim ~time:1. (fun _ -> ()); false
     with Invalid_argument _ -> true)

let test_sim_schedule_equal_times_fifo () =
  (* Actions sharing a timestamp run in registration order, and later
     times run after earlier ones regardless of insertion order — the
     seed's prepend-and-sort queue was LIFO within a timestamp. *)
  let _, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  let trace = ref [] in
  let mark label = fun _ -> trace := label :: !trace in
  Netsim.Sim.schedule sim ~time:3.5 (mark "late");
  Netsim.Sim.schedule sim ~time:1.5 (mark "a");
  Netsim.Sim.schedule sim ~time:1.5 (mark "b");
  Netsim.Sim.schedule sim ~time:1.5 (mark "c");
  Netsim.Sim.schedule sim ~time:0.5 (mark "early");
  Netsim.Sim.run_until sim 5.;
  Alcotest.(check (list string))
    "time order, FIFO at ties"
    [ "early"; "a"; "b"; "c"; "late" ]
    (List.rev !trace)

let test_sim_aggregation_invariant () =
  (* The aggregated engine must hand every flow the same rate and every
     link the same load as the per-flow engine, while using one class
     per (src, prefix, demand, path) instead of one per flow. *)
  let make_sim aggregation =
    let d, net = demo_net () in
    let caps = Link.capacities ~default:15. in
    let sim = Netsim.Sim.create ~dt:0.5 ~aggregation net caps in
    for i = 0 to 9 do
      Netsim.Sim.add_flow sim
        (Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:10. ())
    done;
    for i = 10 to 14 do
      Netsim.Sim.add_flow sim
        (Flow.make ~id:i ~src:d.b ~prefix:(pfx "blue") ~demand:2. ())
    done;
    Netsim.Sim.run_until sim 2.;
    sim
  in
  let agg = make_sim true and solo = make_sim false in
  Alcotest.(check bool) "few classes" true (Netsim.Sim.flow_classes agg <= 3);
  Alcotest.(check int) "one class per flow" 15 (Netsim.Sim.flow_classes solo);
  for i = 0 to 14 do
    checkf
      (Printf.sprintf "flow %d same rate" i)
      (Netsim.Sim.flow_rate solo i)
      (Netsim.Sim.flow_rate agg i)
  done;
  List.iter2
    (fun (link_a, rate_a) (link_s, rate_s) ->
      Alcotest.(check bool) "same link" true (link_a = link_s);
      checkf "same link rate" rate_s rate_a)
    (Netsim.Sim.current_link_rates agg)
    (Netsim.Sim.current_link_rates solo)

let test_sim_failure_then_fake_restores_split () =
  (* Failure + Fibbing together: after B-R2 dies, inject an equal-cost
     fake at B for the (now unique) R3 path plus A detour, and check
     traffic spreads again. *)
  let d, net = demo_net () in
  let caps = Link.capacities ~default:15. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  for i = 0 to 3 do
    Netsim.Sim.add_flow sim (Flow.make ~id:i ~src:d.b ~prefix:(pfx "blue") ~demand:10. ())
  done;
  Netsim.Sim.fail_link sim ~time:2. (d.b, d.r2);
  Netsim.Sim.schedule sim ~time:3. (fun sim ->
      (* After reconvergence B's only path is via R3 (cost 3). Deflect
         half of B's traffic through A: an equal-cost fake at B towards
         A, plus an override at A forcing R1 (A's post-failure path to
         blue runs through B, so without the override the detour would
         loop). This is the lie pair the compiler would produce. *)
      let net = Netsim.Sim.network sim in
      Igp.Network.inject_fake net
        {
          fake_id = "detour-B";
          attachment = d.b;
          attachment_cost = 1;
          prefix = pfx "blue";
          announced_cost = 2;
          forwarding = d.a;
        };
      Igp.Network.inject_fake net
        {
          fake_id = "pin-A";
          attachment = d.a;
          attachment_cost = 1;
          prefix = pfx "blue";
          announced_cost = 2;
          forwarding = d.r1;
        });
  Netsim.Sim.run_until sim 6.;
  let fib_b = Option.get (Igp.Network.fib net ~router:d.b (pfx "blue")) in
  Alcotest.(check (list int)) "B splits over A and R3" [ d.a; d.r3 ]
    (Igp.Fib.next_hops fib_b);
  let fib_a = Option.get (Igp.Network.fib net ~router:d.a (pfx "blue")) in
  Alcotest.(check (list int)) "A overridden to R1" [ d.r1 ] (Igp.Fib.next_hops fib_a);
  Alcotest.(check (list int)) "no starved flows" [] (Netsim.Sim.unroutable_flows sim);
  (* Both exits of B now carry traffic. *)
  let rate link = Kit.Timeseries.value_at (Netsim.Sim.link_series sim link) 5. in
  Alcotest.(check bool) "B-R3 loaded" true (rate (d.b, d.r3) > 0.);
  Alcotest.(check bool) "B-A loaded" true (rate (d.b, d.a) > 0.)

let edge_set g =
  List.sort compare
    (List.map (fun (u, v, w) -> (u, v, w)) (G.edges g))

let test_sim_restore_link_round_trip () =
  let d, net = demo_net () in
  let pristine = edge_set d.graph in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:10. ());
  (* Down: both of A's exits fail, the flow starves. *)
  Netsim.Sim.fail_link sim ~time:2. (d.a, d.b);
  Netsim.Sim.fail_link sim ~time:2. (d.a, d.r1);
  Netsim.Sim.run_until sim 4.;
  Alcotest.(check (list int)) "starved while down" [ 0 ]
    (Netsim.Sim.unroutable_flows sim);
  (* Up: both links come back; the flow re-hashes onto its old path at
     full rate and the graph is byte-identical to the pristine one —
     weights included, in both directions. *)
  Netsim.Sim.restore_link sim ~time:5. (d.a, d.b);
  Netsim.Sim.restore_link sim ~time:5. (d.a, d.r1);
  Netsim.Sim.run_until sim 7.;
  Alcotest.(check (list int)) "routable again" []
    (Netsim.Sim.unroutable_flows sim);
  checkf "full rate again" 10. (Netsim.Sim.flow_rate sim 0);
  (match Netsim.Sim.flow_path sim 0 with
  | Some path ->
    Alcotest.(check (list int)) "original path" [ d.a; d.b; d.r2; d.c ] path
  | None -> Alcotest.fail "routed after restore");
  Alcotest.(check bool) "graph restored with weights" true
    (edge_set d.graph = pristine)

let test_sim_restore_unknown_link_is_noop () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  let pristine = edge_set d.graph in
  Netsim.Sim.restore_link sim ~time:1. (d.a, d.b);
  Netsim.Sim.run_until sim 2.;
  Alcotest.(check bool) "restoring a live link changes nothing" true
    (edge_set d.graph = pristine)

let test_sim_crash_recover_router () =
  let d, net = demo_net () in
  let pristine = edge_set d.graph in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:10. ());
  Netsim.Sim.crash_router sim ~time:2. d.r2;
  Netsim.Sim.run_until sim 4.;
  Alcotest.(check bool) "crashed" true (Netsim.Sim.router_crashed sim d.r2);
  (match Netsim.Sim.flow_path sim 0 with
  | Some path ->
    Alcotest.(check (list int)) "detours around R2" [ d.a; d.b; d.r3; d.c ] path
  | None -> Alcotest.fail "routed around the crash");
  Netsim.Sim.recover_router sim ~time:5. d.r2;
  Netsim.Sim.run_until sim 7.;
  Alcotest.(check bool) "recovered" false (Netsim.Sim.router_crashed sim d.r2);
  (match Netsim.Sim.flow_path sim 0 with
  | Some path ->
    Alcotest.(check (list int)) "original path again" [ d.a; d.b; d.r2; d.c ] path
  | None -> Alcotest.fail "routed after recovery");
  Alcotest.(check bool) "adjacencies restored with weights" true
    (edge_set d.graph = pristine)

let test_sim_adjacent_crashes_defer_shared_link () =
  (* B and R2 crash while adjacent; the B-R2 link must come back only
     when BOTH endpoints are up, whatever the recovery order. *)
  let d, net = demo_net () in
  let pristine = edge_set d.graph in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  Netsim.Sim.crash_router sim ~time:1. d.b;
  Netsim.Sim.crash_router sim ~time:2. d.r2;
  Netsim.Sim.recover_router sim ~time:3. d.b;
  Netsim.Sim.run_until sim 4.;
  Alcotest.(check bool) "B-R2 still down while R2 is crashed" false
    (G.has_edge d.graph d.b d.r2);
  Netsim.Sim.recover_router sim ~time:5. d.r2;
  Netsim.Sim.run_until sim 6.;
  Alcotest.(check bool) "whole graph back" true (edge_set d.graph = pristine)

let test_sim_crash_flushes_dangling_fakes () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  Igp.Network.inject_fake net (fake ~id:"via-r2" ~at:d.b ~cost:2 ~fwd:d.r2);
  Igp.Network.inject_fake net (fake ~id:"via-r3" ~at:d.b ~cost:2 ~fwd:d.r3);
  Netsim.Sim.crash_router sim ~time:2. d.r2;
  Netsim.Sim.run_until sim 3.;
  (* The lie forwarding into the dead router is gone; the other survives. *)
  let lsdb = Igp.Network.lsdb net in
  Alcotest.(check bool) "dangling fake flushed" false
    (Igp.Lsdb.installed lsdb "via-r2");
  Alcotest.(check bool) "healthy fake kept" true
    (Igp.Lsdb.installed lsdb "via-r3")

(* ---------- monitor fault hooks ---------- *)

let test_monitor_repeat_poll_is_noop () =
  let caps = Link.capacities ~default:10. in
  let m = Netsim.Monitor.create ~poll_interval:2. ~threshold:0.9 caps in
  Netsim.Monitor.observe m ~time:2. ~dt:2. [ ((0, 1), 9.5) ];
  let alarms = Netsim.Monitor.poll m ~time:2. in
  Alcotest.(check int) "first poll raises" 1 (List.length alarms);
  let u = Netsim.Monitor.utilization m (0, 1) in
  (* Same instant again: a zero-length window must not fabricate spikes. *)
  Alcotest.(check int) "repeat poll returns nothing" 0
    (List.length (Netsim.Monitor.poll m ~time:2.));
  checkf "utilization untouched" u (Netsim.Monitor.utilization m (0, 1))

let test_monitor_forget_clears_alarm () =
  let caps = Link.capacities ~default:10. in
  let m = Netsim.Monitor.create ~poll_interval:2. ~threshold:0.9 ~alpha:1. caps in
  Netsim.Monitor.observe m ~time:2. ~dt:2. [ ((0, 1), 9.9); ((2, 3), 9.9) ];
  ignore (Netsim.Monitor.poll m ~time:2.);
  Alcotest.(check (list (pair int int))) "both alarmed" [ (0, 1); (2, 3) ]
    (List.sort compare (Netsim.Monitor.overloaded m));
  (* The link leaves the topology: its alarm and smoothed state go too. *)
  Netsim.Monitor.forget m (0, 1);
  Alcotest.(check (list (pair int int))) "forgotten link released" [ (2, 3) ]
    (Netsim.Monitor.overloaded m);
  checkf "smoothed state purged" 0. (Netsim.Monitor.utilization m (0, 1));
  Netsim.Monitor.prune m ~alive:(fun _ -> false);
  Alcotest.(check (list (pair int int))) "prune drops the rest" []
    (Netsim.Monitor.overloaded m)

let test_monitor_mute_drops_samples () =
  let caps = Link.capacities ~default:10. in
  let m = Netsim.Monitor.create ~poll_interval:2. ~threshold:0.9 ~alpha:1. caps in
  Netsim.Monitor.mute m ~until:3.;
  Netsim.Monitor.observe m ~time:2. ~dt:2. [ ((0, 1), 9.9) ];
  Alcotest.(check int) "blackout: no alarms" 0
    (List.length (Netsim.Monitor.poll m ~time:2.));
  (* After the blackout samples count again. *)
  Netsim.Monitor.observe m ~time:4. ~dt:2. [ ((0, 1), 9.9) ];
  Alcotest.(check int) "post-blackout alarm" 1
    (List.length (Netsim.Monitor.poll m ~time:4.))

(* Consistency between the two traffic views: the average of many hashed
   flows' link loads matches the fluid Loadmap fractions. *)
let test_hashing_matches_loadmap () =
  let d, net = demo_net () in
  Igp.Network.inject_fake net (fake ~id:"fB" ~at:d.b ~cost:2 ~fwd:d.r3);
  Igp.Network.inject_fake net (fake ~id:"fA1" ~at:d.a ~cost:3 ~fwd:d.r1);
  Igp.Network.inject_fake net (fake ~id:"fA2" ~at:d.a ~cost:3 ~fwd:d.r1);
  let flows = 4000 in
  (* Hash [flows] unit flows from A and count per-link volume. *)
  let loads = Hashtbl.create 16 in
  for flow_id = 0 to flows - 1 do
    match Netsim.Hashing.route net ~flow_id ~src:d.a (pfx "blue") with
    | None -> Alcotest.fail "flow must route"
    | Some path ->
      let rec walk = function
        | u :: (v :: _ as rest) ->
          Hashtbl.replace loads (u, v)
            (1. +. Option.value ~default:0. (Hashtbl.find_opt loads (u, v)));
          walk rest
        | _ -> ()
      in
      walk path
  done;
  let fluid =
    Netsim.Loadmap.propagate net
      [ { src = d.a; prefix = pfx "blue"; amount = float_of_int flows } ]
  in
  List.iter
    (fun link ->
      let hashed = Option.value ~default:0. (Hashtbl.find_opt loads link) in
      let expected = Netsim.Loadmap.load fluid link in
      Alcotest.(check bool)
        (Printf.sprintf "%s: hashed %.0f ~ fluid %.0f" (Link.name d.graph link)
           hashed expected)
        true
        (abs_float (hashed -. expected) < 0.05 *. float_of_int flows))
    [ (d.a, d.b); (d.a, d.r1); (d.b, d.r2); (d.b, d.r3); (d.r1, d.r4) ]

(* ---------- Mixed-state convergence in the simulator ---------- *)

(* Slowed-down convergence so the mixed window spans several steps. *)
let slow_timing =
  { Igp.Convergence.flood_per_hop = 0.5; spf_delay = 1.0; jitter = 0.25 }

(* The textbook micro-loop chain (see test_igp): degrade A-T while a
   flow from C is in flight; with convergence modelling the flow loses
   packets during the A/B loop window, then recovers on the new path. *)
let microloop_chain () =
  let g = G.create () in
  let a = G.add_node g ~name:"A" in
  let b = G.add_node g ~name:"B" in
  let c = G.add_node g ~name:"C" in
  let t = G.add_node g ~name:"T" in
  G.add_link g c t ~weight:5;
  G.add_link g c b ~weight:1;
  G.add_link g b a ~weight:1;
  G.add_link g a t ~weight:1;
  let net = Igp.Network.create g in
  Igp.Network.announce_prefix net (pfx "p") ~origin:t ~cost:0;
  (net, a, b, c, t)

let test_convergence_microloop_drops_traffic () =
  let net, a, _, c, t = microloop_chain () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:0.5 ~convergence:slow_timing net caps in
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:c ~prefix:(pfx "p") ~demand:10. ());
  Netsim.Sim.schedule sim ~time:5. (fun sim ->
      let network = Netsim.Sim.network sim in
      Igp.Network.set_weight network a t ~weight:10;
      Igp.Network.set_weight network t a ~weight:10);
  (* Count the steps where the flow is unroutable (packets lost). *)
  let lost = ref 0 in
  Netsim.Sim.on_step sim (fun sim ->
      if Netsim.Sim.unroutable_flows sim <> [] then incr lost);
  Netsim.Sim.run_until sim 12.;
  Alcotest.(check bool)
    (Printf.sprintf "micro-loop lost %d steps" !lost)
    true (!lost >= 1);
  (* Fully converged: routed again on the new direct path. *)
  (match Netsim.Sim.flow_path sim 0 with
  | Some path -> Alcotest.(check (list int)) "new path C-T" [ c; t ] path
  | None -> Alcotest.fail "flow should recover");
  checkf "full rate restored" 10. (Netsim.Sim.flow_rate sim 0)

let test_convergence_instant_without_model () =
  (* The same change with the default (atomic) model loses nothing. *)
  let net, a, _, c, t = microloop_chain () in
  ignore c;
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:0.5 net caps in
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:c ~prefix:(pfx "p") ~demand:10. ());
  Netsim.Sim.schedule sim ~time:5. (fun sim ->
      let network = Netsim.Sim.network sim in
      Igp.Network.set_weight network a t ~weight:10;
      Igp.Network.set_weight network t a ~weight:10);
  let lost = ref 0 in
  Netsim.Sim.on_step sim (fun sim ->
      if Netsim.Sim.unroutable_flows sim <> [] then incr lost);
  Netsim.Sim.run_until sim 12.;
  Alcotest.(check int) "no loss" 0 !lost

let test_convergence_fake_injection_lossless () =
  (* Fibbing's equal-cost lie, adopted asynchronously, never interrupts
     the flow: every mixed state is loop-free. *)
  let d, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:0.5 ~convergence:slow_timing net caps in
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:10. ());
  Netsim.Sim.schedule sim ~time:5. (fun sim ->
      Igp.Network.inject_fake (Netsim.Sim.network sim)
        (fake ~id:"fB" ~at:d.b ~cost:2 ~fwd:d.r3));
  let lost = ref 0 in
  Netsim.Sim.on_step sim (fun sim ->
      if Netsim.Sim.unroutable_flows sim <> [] then incr lost);
  Netsim.Sim.run_until sim 12.;
  Alcotest.(check int) "no loss through the lie's convergence" 0 !lost;
  checkf "full rate throughout" 10. (Netsim.Sim.flow_rate sim 0)

let test_convergence_second_change_mid_window () =
  (* A second LSDB change while a transition is in flight restarts the
     window from the mixed view without crashing or wedging routing. *)
  let d, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:0.5 ~convergence:slow_timing net caps in
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:10. ());
  Netsim.Sim.schedule sim ~time:5. (fun sim ->
      Igp.Network.inject_fake (Netsim.Sim.network sim)
        (fake ~id:"f1" ~at:d.b ~cost:2 ~fwd:d.r3));
  Netsim.Sim.schedule sim ~time:5.5 (fun sim ->
      Igp.Network.inject_fake (Netsim.Sim.network sim)
        (fake ~id:"f2" ~at:d.a ~cost:3 ~fwd:d.r1));
  Netsim.Sim.run_until sim 15.;
  (match Netsim.Sim.flow_path sim 0 with
  | Some _ -> ()
  | None -> Alcotest.fail "flow must be routed after both transitions");
  checkf "still at demand" 10. (Netsim.Sim.flow_rate sim 0)

(* ---------- Latency ---------- *)

let test_latency_idle_is_propagation () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  Netsim.Sim.run_until sim 1.;
  let config = Netsim.Latency.default_config in
  (* Idle A-B (weight 1): propagation + idle service time. *)
  let delay = Netsim.Latency.link_delay_ms ~config d.graph sim (d.a, d.b) in
  checkf "idle delay" (config.ms_per_weight +. config.service_ms) delay;
  (* Weight-2 link costs twice the propagation. *)
  let delay2 = Netsim.Latency.link_delay_ms ~config d.graph sim (d.a, d.r1) in
  checkf "weight scales propagation" ((2. *. config.ms_per_weight) +. config.service_ms)
    delay2

let test_latency_grows_with_utilization () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:20. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:19. ());
  Netsim.Sim.run_until sim 2.;
  let loaded = Netsim.Latency.link_delay_ms d.graph sim (d.a, d.b) in
  let idle = Netsim.Latency.link_delay_ms d.graph sim (d.a, d.r1) in
  Alcotest.(check bool)
    (Printf.sprintf "loaded link slower (%.2f vs idle %.2f - weight diff)" loaded idle)
    true
    (loaded -. 5. > idle -. 10. +. 0.5)
  (* compare queueing parts: loaded has ~95% utilization *)

let test_latency_saturated_capped () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:10. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  for i = 0 to 3 do
    Netsim.Sim.add_flow sim (Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:10. ())
  done;
  Netsim.Sim.run_until sim 2.;
  let config = Netsim.Latency.default_config in
  let delay = Netsim.Latency.link_delay_ms ~config d.graph sim (d.a, d.b) in
  Alcotest.(check bool) "capped by buffer" true
    (delay <= config.ms_per_weight +. config.max_queue_ms +. 1e-9);
  Alcotest.(check bool) "but clearly congested" true
    (delay >= config.ms_per_weight +. config.max_queue_ms -. 1e-6)

let test_latency_flow_and_mean () =
  let d, net = demo_net () in
  let caps = Link.capacities ~default:100. in
  let sim = Netsim.Sim.create ~dt:1. net caps in
  Netsim.Sim.add_flow sim (Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:10. ());
  Netsim.Sim.run_until sim 2.;
  (match Netsim.Latency.flow_delay_ms sim 0 with
  | Some delay ->
    (* Path A-B-R2-C: weights 1+1+1 = 3 units of propagation. *)
    Alcotest.(check bool)
      (Printf.sprintf "3-hop delay %.2f in range" delay)
      true
      (delay > 15. && delay < 17.)
  | None -> Alcotest.fail "flow should be routed");
  Alcotest.(check bool) "mean equals single flow" true
    (abs_float
       (Netsim.Latency.mean_flow_delay_ms sim
       -. Option.get (Netsim.Latency.flow_delay_ms sim 0))
    < 1e-9)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "netsim"
    [
      ( "link",
        [
          Alcotest.test_case "capacities" `Quick test_link_capacities;
          Alcotest.test_case "validation" `Quick test_link_rejects_nonpositive;
        ] );
      ( "flow",
        [
          Alcotest.test_case "lifecycle" `Quick test_flow_lifecycle;
          Alcotest.test_case "validation" `Quick test_flow_validation;
        ] );
      ( "loadmap",
        [
          Alcotest.test_case "Fig 1b overload" `Quick test_loadmap_fig1b;
          Alcotest.test_case "Fig 1d balanced" `Quick test_loadmap_fig1d;
          Alcotest.test_case "utilization" `Quick test_loadmap_utilization;
          Alcotest.test_case "unreachable" `Quick test_loadmap_unreachable;
          Alcotest.test_case "conservation" `Quick test_loadmap_conservation;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "respects weights" `Quick test_hashing_respects_weights;
          Alcotest.test_case "stable" `Quick test_hashing_stable;
          Alcotest.test_case "full path" `Quick test_hashing_route_full_path;
          Alcotest.test_case "loop detection" `Quick test_hashing_route_detects_loop;
          Alcotest.test_case "matches loadmap" `Quick test_hashing_matches_loadmap;
        ] );
      ( "fairshare",
        [
          Alcotest.test_case "single bottleneck" `Quick test_fairshare_single_bottleneck;
          Alcotest.test_case "demand capped" `Quick test_fairshare_demand_capped;
          Alcotest.test_case "multi bottleneck" `Quick test_fairshare_multi_bottleneck;
          Alcotest.test_case "empty path" `Quick test_fairshare_empty_path;
          Alcotest.test_case "duplicate ids" `Quick test_fairshare_duplicate_ids_rejected;
          Alcotest.test_case "link throughput" `Quick test_fairshare_link_throughput;
          Alcotest.test_case "demand equals level" `Quick
            test_fairshare_demand_equals_level;
        ] );
      qsuite "fairshare-props"
        [
          prop_fairshare_feasible;
          prop_fairshare_work_conserving;
          prop_fairshare_matches_reference;
          prop_fairshare_max_min_optimal;
          prop_water_fill_groups;
        ];
      ( "events",
        [
          Alcotest.test_case "ordering" `Quick test_events_ordering;
          Alcotest.test_case "negative time" `Quick test_events_negative_time;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "alarm cycle" `Quick test_monitor_alarm_cycle;
          Alcotest.test_case "no repeats" `Quick test_monitor_no_repeat_alarms;
          Alcotest.test_case "ewma" `Quick test_monitor_ewma_smoothing;
          Alcotest.test_case "poll cadence" `Quick test_monitor_poll_cadence;
          Alcotest.test_case "hysteresis band" `Quick test_monitor_hysteresis_band;
          Alcotest.test_case "history gated by Obs" `Quick
            test_monitor_history_gated_by_obs;
        ] );
      qsuite "monitor-props" [ prop_monitor_utilization_bounded ];
      ( "aimd",
        [
          Alcotest.test_case "ramps to demand" `Quick test_aimd_ramps_up_to_demand;
          Alcotest.test_case "starts slow" `Quick test_aimd_starts_slow;
          Alcotest.test_case "backs off" `Quick test_aimd_backs_off_under_congestion;
          Alcotest.test_case "approximately fair" `Quick test_aimd_approx_fair;
          Alcotest.test_case "forget" `Quick test_aimd_forget;
          Alcotest.test_case "validation" `Quick test_aimd_validation;
          Alcotest.test_case "sim integration" `Quick test_sim_with_aimd_model;
        ] );
      ( "sim",
        [
          Alcotest.test_case "single flow" `Quick test_sim_single_flow_full_rate;
          Alcotest.test_case "congestion throttles" `Quick test_sim_congestion_throttles;
          Alcotest.test_case "arrival/departure" `Quick test_sim_flow_arrival_departure;
          Alcotest.test_case "reroute on fake" `Quick test_sim_reroutes_on_fake_injection;
          Alcotest.test_case "monitor hook" `Quick test_sim_monitor_hook_fires;
          Alcotest.test_case "duplicate flow" `Quick test_sim_rejects_duplicate_flow;
          Alcotest.test_case "unroutable flow" `Quick test_sim_unroutable_flow_reported;
          Alcotest.test_case "equal-time schedule FIFO" `Quick
            test_sim_schedule_equal_times_fifo;
          Alcotest.test_case "aggregation invariant" `Quick
            test_sim_aggregation_invariant;
        ] );
      ( "convergence-sim",
        [
          Alcotest.test_case "micro-loop drops traffic" `Quick
            test_convergence_microloop_drops_traffic;
          Alcotest.test_case "atomic model lossless" `Quick
            test_convergence_instant_without_model;
          Alcotest.test_case "fake injection lossless" `Quick
            test_convergence_fake_injection_lossless;
          Alcotest.test_case "second change mid-window" `Quick
            test_convergence_second_change_mid_window;
        ] );
      ( "latency",
        [
          Alcotest.test_case "idle = propagation" `Quick test_latency_idle_is_propagation;
          Alcotest.test_case "grows with load" `Quick test_latency_grows_with_utilization;
          Alcotest.test_case "saturation capped" `Quick test_latency_saturated_capped;
          Alcotest.test_case "flow and mean" `Quick test_latency_flow_and_mean;
        ] );
      ( "failures",
        [
          Alcotest.test_case "link failure reroutes" `Quick test_sim_link_failure_reroutes;
          Alcotest.test_case "partition starves" `Quick test_sim_partition_starves_flow;
          Alcotest.test_case "scheduled action" `Quick test_sim_scheduled_action_runs_once;
          Alcotest.test_case "failure + fake" `Quick test_sim_failure_then_fake_restores_split;
          Alcotest.test_case "restore round-trip" `Quick test_sim_restore_link_round_trip;
          Alcotest.test_case "restore live link no-op" `Quick
            test_sim_restore_unknown_link_is_noop;
          Alcotest.test_case "crash/recover router" `Quick test_sim_crash_recover_router;
          Alcotest.test_case "adjacent crashes defer link" `Quick
            test_sim_adjacent_crashes_defer_shared_link;
          Alcotest.test_case "crash flushes dangling fakes" `Quick
            test_sim_crash_flushes_dangling_fakes;
        ] );
      ( "monitor-faults",
        [
          Alcotest.test_case "repeat poll no-op" `Quick test_monitor_repeat_poll_is_noop;
          Alcotest.test_case "forget clears alarm" `Quick test_monitor_forget_clears_alarm;
          Alcotest.test_case "mute drops samples" `Quick test_monitor_mute_drops_samples;
        ] );
    ]
