let pfx = Igp.Prefix.v
(* Tests for the link-state IGP simulator: LSAs, LSDB views, SPF/FIB
   semantics (including the paper's fake-node behaviour) and flooding
   accounting. *)

module G = Netgraph.Graph
module T = Netgraph.Topologies

let demo_net () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  (d, net)

let fib_exn net ~router prefix =
  match Igp.Network.fib net ~router prefix with
  | Some fib -> fib
  | None -> Alcotest.failf "no FIB for router %d" router

let fake ~id ~at ~cost ~fwd : Igp.Lsa.fake =
  {
    fake_id = id;
    attachment = at;
    attachment_cost = 1;
    prefix = pfx "blue";
    announced_cost = cost - 1;
    forwarding = fwd;
  }

(* ---------- Lsa ---------- *)

let test_lsa_total_cost () =
  let d = T.demo () in
  let f = fake ~id:"f" ~at:d.b ~cost:5 ~fwd:d.r3 in
  Alcotest.(check int) "total" 5 (Igp.Lsa.total_cost f)

let test_lsa_keys () =
  let d = T.demo () in
  let f = fake ~id:"f" ~at:d.b ~cost:2 ~fwd:d.r3 in
  Alcotest.(check string) "fake key" "fake:f" (Igp.Lsa.key (Fake f));
  Alcotest.(check string) "prefix key" "prefix:6:blue"
    (Igp.Lsa.key (Prefix { origin = d.c; prefix = pfx "blue"; cost = 0 }));
  Alcotest.(check string) "router key" "router:0"
    (Igp.Lsa.key (Router { origin = d.a; links = [] }))

(* ---------- Lsdb ---------- *)

let test_lsdb_announce_and_view () =
  let d, net = demo_net () in
  let lsdb = Igp.Network.lsdb net in
  Alcotest.(check int) "one announcement" 1 (List.length (Igp.Lsdb.prefixes lsdb));
  let view = Igp.Lsdb.view lsdb in
  Alcotest.(check int) "real nodes" 7 view.real_nodes;
  Alcotest.(check int) "augmented nodes" 8 (G.node_count view.graph);
  Alcotest.(check bool) "sink fed by C" true
    (match Igp.Lsdb.sink view (pfx "blue") with
    | Some sink -> G.has_edge view.graph d.c sink
    | None -> false);
  Alcotest.(check (array string)) "prefixes sorted" [| "blue" |] (Array.map Igp.Prefix.to_string view.prefixes)

let test_lsdb_install_fake_validation () =
  let d, net = demo_net () in
  let lsdb = Igp.Network.lsdb net in
  Alcotest.(check bool) "bad forwarding rejected" true
    (try
       Igp.Lsdb.install_fake lsdb (fake ~id:"bad" ~at:d.b ~cost:2 ~fwd:d.c);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown prefix rejected" true
    (try
       Igp.Lsdb.install_fake lsdb
         { (fake ~id:"bad2" ~at:d.b ~cost:2 ~fwd:d.r3) with prefix = pfx "green" };
       false
     with Invalid_argument _ -> true)

let test_lsdb_supersede_fake () =
  let d, net = demo_net () in
  let lsdb = Igp.Network.lsdb net in
  Igp.Lsdb.install_fake lsdb (fake ~id:"f" ~at:d.b ~cost:2 ~fwd:d.r3);
  Igp.Lsdb.install_fake lsdb (fake ~id:"f" ~at:d.b ~cost:3 ~fwd:d.r3);
  Alcotest.(check int) "one fake" 1 (Igp.Lsdb.fake_count lsdb);
  Alcotest.(check (option int)) "sequence bumped twice" (Some 2)
    (Igp.Lsdb.sequence lsdb ~key:"fake:f")

let test_lsdb_retract () =
  let d, net = demo_net () in
  let lsdb = Igp.Network.lsdb net in
  Igp.Lsdb.install_fake lsdb (fake ~id:"f" ~at:d.b ~cost:2 ~fwd:d.r3);
  Igp.Lsdb.retract_fake lsdb ~fake_id:"f";
  Alcotest.(check int) "gone" 0 (Igp.Lsdb.fake_count lsdb);
  Alcotest.check_raises "double retract" Not_found (fun () ->
      Igp.Lsdb.retract_fake lsdb ~fake_id:"f")

let test_lsdb_version_bumps () =
  let d, net = demo_net () in
  let lsdb = Igp.Network.lsdb net in
  let v0 = Igp.Lsdb.version lsdb in
  Igp.Lsdb.install_fake lsdb (fake ~id:"f" ~at:d.b ~cost:2 ~fwd:d.r3);
  Alcotest.(check bool) "bumped" true (Igp.Lsdb.version lsdb > v0);
  let v1 = Igp.Lsdb.version lsdb in
  Igp.Lsdb.touch lsdb;
  Alcotest.(check bool) "touch bumps" true (Igp.Lsdb.version lsdb > v1)

let test_lsdb_anycast () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "any") ~origin:d.c ~cost:0;
  Igp.Network.announce_prefix net (pfx "any") ~origin:d.a ~cost:0;
  let fib_b = fib_exn net ~router:d.b (pfx "any") in
  Alcotest.(check int) "B nearer to A" 1 fib_b.distance;
  Alcotest.(check (list int)) "B forwards to A" [ d.a ] (Igp.Fib.next_hops fib_b)

(* ---------- Spf / Fib: paper Fig. 1 semantics ---------- *)

let test_spf_baseline_routes () =
  let d, net = demo_net () in
  let fib_a = fib_exn net ~router:d.a (pfx "blue") in
  Alcotest.(check int) "A cost 3" 3 fib_a.distance;
  Alcotest.(check (list int)) "A via B" [ d.b ] (Igp.Fib.next_hops fib_a);
  let fib_b = fib_exn net ~router:d.b (pfx "blue") in
  Alcotest.(check int) "B cost 2" 2 fib_b.distance;
  Alcotest.(check (list int)) "B via R2" [ d.r2 ] (Igp.Fib.next_hops fib_b);
  let fib_c = fib_exn net ~router:d.c (pfx "blue") in
  Alcotest.(check bool) "C local" true fib_c.local

let test_spf_fake_creates_ecmp () =
  let d, net = demo_net () in
  Igp.Network.inject_fake net (fake ~id:"fB" ~at:d.b ~cost:2 ~fwd:d.r3);
  let fib_b = fib_exn net ~router:d.b (pfx "blue") in
  Alcotest.(check (list int)) "B ECMP" [ d.r2; d.r3 ] (Igp.Fib.next_hops fib_b);
  Alcotest.(check bool) "even split" true
    (Igp.Fib.weights fib_b = [ (d.r2, 1); (d.r3, 1) ]);
  Alcotest.(check bool) "uses fake" true (Igp.Fib.uses_fake fib_b)

let test_spf_fake_multiplicity () =
  let d, net = demo_net () in
  Igp.Network.inject_fake net (fake ~id:"fA1" ~at:d.a ~cost:3 ~fwd:d.r1);
  Igp.Network.inject_fake net (fake ~id:"fA2" ~at:d.a ~cost:3 ~fwd:d.r1);
  let fib_a = fib_exn net ~router:d.a (pfx "blue") in
  Alcotest.(check bool) "weights B:1 R1:2" true
    (Igp.Fib.weights fib_a = [ (d.b, 1); (d.r1, 2) ]);
  let fractions = Igp.Fib.fractions fib_a in
  Alcotest.(check (float 1e-9)) "1/3 to B" (1. /. 3.) (List.assoc d.b fractions);
  Alcotest.(check (float 1e-9)) "2/3 to R1" (2. /. 3.) (List.assoc d.r1 fractions)

let test_spf_fake_does_not_change_others () =
  let d, net = demo_net () in
  let before =
    List.map (fun r -> (r, Igp.Network.fib net ~router:r (pfx "blue"))) (G.nodes d.graph)
  in
  Igp.Network.inject_fake net (fake ~id:"fB" ~at:d.b ~cost:2 ~fwd:d.r3);
  List.iter
    (fun (r, fib_before) ->
      if r <> d.b then begin
        match (fib_before, Igp.Network.fib net ~router:r (pfx "blue")) with
        | Some fb, Some fa ->
          Alcotest.(check bool)
            (Printf.sprintf "router %s unchanged" (G.name d.graph r))
            true
            (Igp.Fib.equal_forwarding fb fa)
        | _ -> Alcotest.fail "reachability changed"
      end)
    before

let test_spf_cheaper_fake_overrides () =
  let d, net = demo_net () in
  Igp.Network.inject_fake net (fake ~id:"fB" ~at:d.b ~cost:1 ~fwd:d.r3);
  let fib_b = fib_exn net ~router:d.b (pfx "blue") in
  Alcotest.(check (list int)) "only fake" [ d.r3 ] (Igp.Fib.next_hops fib_b);
  Alcotest.(check int) "distance lowered" 1 fib_b.distance

let test_spf_expensive_fake_ignored () =
  let d, net = demo_net () in
  Igp.Network.inject_fake net (fake ~id:"fB" ~at:d.b ~cost:9 ~fwd:d.r3);
  let fib_b = fib_exn net ~router:d.b (pfx "blue") in
  Alcotest.(check (list int)) "unchanged" [ d.r2 ] (Igp.Fib.next_hops fib_b);
  Alcotest.(check bool) "no fake used" false (Igp.Fib.uses_fake fib_b)

let test_spf_fake_not_transit () =
  let d, net = demo_net () in
  Igp.Network.inject_fake net (fake ~id:"fB" ~at:d.b ~cost:2 ~fwd:d.r3);
  let fib_r1 = fib_exn net ~router:d.r1 (pfx "blue") in
  Alcotest.(check (list int)) "R1 via R4" [ d.r4 ] (Igp.Fib.next_hops fib_r1)

let test_spf_unknown_prefix () =
  let d, net = demo_net () in
  Alcotest.(check bool) "no fib" true (Igp.Network.fib net ~router:d.a (pfx "green") = None)

let test_spf_unreachable_prefix () =
  let g = G.create () in
  let a = G.add_node g ~name:"a" in
  let b = G.add_node g ~name:"b" in
  let c = G.add_node g ~name:"c" in
  G.add_link g a b ~weight:1;
  let net = Igp.Network.create g in
  Igp.Network.announce_prefix net (pfx "p") ~origin:c ~cost:0;
  Alcotest.(check bool) "unreachable" true (Igp.Network.fib net ~router:a (pfx "p") = None)

let test_fib_fractions_empty_when_local () =
  let d, net = demo_net () in
  let fib_c = fib_exn net ~router:d.c (pfx "blue") in
  Alcotest.(check bool) "no fractions" true (Igp.Fib.fractions fib_c = [])

let test_spf_distance_only () =
  let d, net = demo_net () in
  let view = Igp.Lsdb.view (Igp.Network.lsdb net) in
  Alcotest.(check (option int)) "distance A" (Some 3)
    (Igp.Spf.distance view ~router:d.a (pfx "blue"));
  Alcotest.(check (option int)) "unknown" None
    (Igp.Spf.distance view ~router:d.a (pfx "green"))

let test_spf_compute_all_prefixes () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  Igp.Network.announce_prefix net (pfx "red") ~origin:d.r4 ~cost:0;
  let view = Igp.Lsdb.view (Igp.Network.lsdb net) in
  let fibs = Igp.Spf.compute view ~router:d.a in
  Alcotest.(check int) "two prefixes" 2 (List.length fibs);
  Alcotest.(check (list string)) "sorted" [ "blue"; "red" ]
    (List.sort compare
       (List.map (fun (f : Igp.Fib.t) -> Igp.Prefix.to_string f.prefix) fibs))

let test_prefix_cost_matters () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.r4 ~cost:10;
  let fib_r1 = fib_exn net ~router:d.r1 (pfx "blue") in
  Alcotest.(check int) "cost via C" 3 fib_r1.distance

(* ---------- Flooding ---------- *)

let test_flooding_counts () =
  let d = T.demo () in
  let cost = Igp.Flooding.flood d.graph ~origin:d.b in
  Alcotest.(check int) "messages" 16 cost.messages;
  Alcotest.(check int) "rounds = eccentricity of B" 3 cost.rounds

let test_flooding_partition () =
  let g = G.create () in
  let a = G.add_node g ~name:"a" in
  let b = G.add_node g ~name:"b" in
  let c = G.add_node g ~name:"c" in
  let d = G.add_node g ~name:"d" in
  G.add_link g a b ~weight:1;
  G.add_link g c d ~weight:1;
  let cost = Igp.Flooding.flood g ~origin:a in
  Alcotest.(check int) "only reachable side" 2 cost.messages;
  Alcotest.(check int) "one round" 1 cost.rounds

let test_flooding_add () =
  let a = { Igp.Flooding.messages = 3; rounds = 2 } in
  let b = { Igp.Flooding.messages = 5; rounds = 1 } in
  let s = Igp.Flooding.add a b in
  Alcotest.(check int) "messages add" 8 s.messages;
  Alcotest.(check int) "rounds max" 2 s.rounds

(* ---------- Network ---------- *)

let test_network_control_cost_accounting () =
  let d, net = demo_net () in
  Alcotest.(check int) "starts at zero" 0 (Igp.Network.control_cost net).messages;
  Igp.Network.inject_fake net (fake ~id:"f" ~at:d.b ~cost:2 ~fwd:d.r3);
  Alcotest.(check int) "one flood" 16 (Igp.Network.control_cost net).messages;
  Igp.Network.retract_fake net ~fake_id:"f";
  Alcotest.(check int) "purge also floods" 32 (Igp.Network.control_cost net).messages;
  Igp.Network.reset_control_cost net;
  Alcotest.(check int) "reset" 0 (Igp.Network.control_cost net).messages

let test_network_clone_independent () =
  let d, net = demo_net () in
  let clone = Igp.Network.clone net in
  Igp.Network.inject_fake clone (fake ~id:"f" ~at:d.b ~cost:2 ~fwd:d.r3);
  let fib_orig = fib_exn net ~router:d.b (pfx "blue") in
  Alcotest.(check (list int)) "original untouched" [ d.r2 ] (Igp.Fib.next_hops fib_orig);
  let fib_clone = fib_exn clone ~router:d.b (pfx "blue") in
  Alcotest.(check (list int)) "clone changed" [ d.r2; d.r3 ]
    (Igp.Fib.next_hops fib_clone)

let test_network_clone_carries_fakes () =
  let d, net = demo_net () in
  Igp.Network.inject_fake net (fake ~id:"f" ~at:d.b ~cost:2 ~fwd:d.r3);
  let clone = Igp.Network.clone net in
  Alcotest.(check int) "fake copied" 1 (List.length (Igp.Network.fakes clone))

let test_network_set_weight_reconverges () =
  let d, net = demo_net () in
  Igp.Network.set_weight net d.b d.r2 ~weight:8;
  Igp.Network.set_weight net d.r2 d.b ~weight:8;
  let fib_b = fib_exn net ~router:d.b (pfx "blue") in
  Alcotest.(check (list int)) "B re-routes via R3" [ d.r3 ] (Igp.Fib.next_hops fib_b)

let test_network_refresh_cost () =
  let d, net = demo_net () in
  Alcotest.(check int) "no fakes, no refresh" 0
    (Igp.Network.refresh_cost net ~period:1800. ~duration:3600.).messages;
  Igp.Network.inject_fake net (fake ~id:"f" ~at:d.b ~cost:2 ~fwd:d.r3);
  (* One fake, two 30-minute cycles in an hour, 16 messages per flood. *)
  Alcotest.(check int) "one fake, 1h" 32
    (Igp.Network.refresh_cost net ~period:1800. ~duration:3600.).messages;
  Alcotest.(check bool) "bad period" true
    (try ignore (Igp.Network.refresh_cost net ~period:0. ~duration:1.); false
     with Invalid_argument _ -> true)

let test_network_retract_all () =
  let d, net = demo_net () in
  Igp.Network.inject_fake net (fake ~id:"f1" ~at:d.b ~cost:2 ~fwd:d.r3);
  Igp.Network.inject_fake net (fake ~id:"f2" ~at:d.a ~cost:3 ~fwd:d.r1);
  Igp.Network.retract_all_fakes net;
  Alcotest.(check int) "all gone" 0 (List.length (Igp.Network.fakes net));
  let fib_b = fib_exn net ~router:d.b (pfx "blue") in
  Alcotest.(check (list int)) "back to baseline" [ d.r2 ] (Igp.Fib.next_hops fib_b)

(* Property: on random topologies, injecting an equal-cost fake at a
   random non-announcer router never changes any other router's
   forwarding weights. This is the safety argument behind the demo. *)
let prop_equal_cost_fake_is_surgical =
  QCheck.Test.make ~name:"equal-cost fakes are surgical" ~count:60
    QCheck.(pair (int_range 0 100000) (int_range 5 20))
    (fun (seed, n) ->
      let prng = Kit.Prng.create ~seed in
      let g = Netgraph.Topologies.random prng ~n ~extra_edges:n ~max_weight:4 in
      let announcer = Kit.Prng.int prng n in
      let net = Igp.Network.create g in
      Igp.Network.announce_prefix net (pfx "p") ~origin:announcer ~cost:0;
      let router =
        let r = ref (Kit.Prng.int prng n) in
        while !r = announcer do
          r := Kit.Prng.int prng n
        done;
        !r
      in
      match Igp.Network.fib net ~router (pfx "p") with
      | None -> false (* random graphs are connected *)
      | Some fib ->
        let neighbors = List.map fst (G.succ g router) in
        let fwd = List.nth neighbors (Kit.Prng.int prng (List.length neighbors)) in
        let before =
          List.filter_map
            (fun r ->
              if r = router then None
              else
                Option.map
                  (fun f -> (r, Igp.Fib.weights f))
                  (Igp.Network.fib net ~router:r (pfx "p")))
            (G.nodes g)
        in
        Igp.Network.inject_fake net
          {
            fake_id = "f";
            attachment = router;
            attachment_cost = 1;
            prefix = pfx "p";
            announced_cost = fib.Igp.Fib.distance - 1;
            forwarding = fwd;
          };
        List.for_all
          (fun (r, weights_before) ->
            match Igp.Network.fib net ~router:r (pfx "p") with
            | Some f -> Igp.Fib.weights f = weights_before
            | None -> false)
          before)

(* Property: adding a fake can only lower apparent distances. *)
let prop_fakes_never_increase_distance =
  QCheck.Test.make ~name:"fakes never increase distances" ~count:60
    QCheck.(pair (int_range 0 100000) (int_range 5 18))
    (fun (seed, n) ->
      let prng = Kit.Prng.create ~seed in
      let g = Netgraph.Topologies.random prng ~n ~extra_edges:(n / 2) ~max_weight:4 in
      let announcer = Kit.Prng.int prng n in
      let net = Igp.Network.create g in
      Igp.Network.announce_prefix net (pfx "p") ~origin:announcer ~cost:0;
      let router =
        let r = ref (Kit.Prng.int prng n) in
        while !r = announcer do
          r := Kit.Prng.int prng n
        done;
        !r
      in
      let neighbors = List.map fst (G.succ g router) in
      let fwd = List.nth neighbors (Kit.Prng.int prng (List.length neighbors)) in
      let before =
        List.filter_map
          (fun r ->
            Option.map (fun d -> (r, d)) (Igp.Network.distance net ~router:r (pfx "p")))
          (G.nodes g)
      in
      Igp.Network.inject_fake net
        {
          fake_id = "f";
          attachment = router;
          attachment_cost = 1;
          prefix = pfx "p";
          announced_cost = Kit.Prng.int prng 6;
          forwarding = fwd;
        };
      List.for_all
        (fun (r, d_before) ->
          match Igp.Network.distance net ~router:r (pfx "p") with
          | Some d_after -> d_after <= d_before
          | None -> false)
        before)

(* ---------- Spf_engine ---------- *)

let test_engine_incremental_keeps_routers () =
  let d, net = demo_net () in
  Igp.Network.warm net;
  let engine = Igp.Network.engine net in
  let s0 = Igp.Spf_engine.stats engine in
  Alcotest.(check int) "one spf per router" 7 s0.spf_runs;
  Igp.Network.warm net;
  Alcotest.(check int) "re-warm is free" 7 (Igp.Spf_engine.stats engine).spf_runs;
  (* A fake far above every router's current distance can't move anyone:
     all tables survive the version bump, with zero new Dijkstras. *)
  Igp.Network.inject_fake net (fake ~id:"far" ~at:d.b ~cost:9 ~fwd:d.r3);
  Igp.Network.warm net;
  let s1 = Igp.Spf_engine.stats engine in
  Alcotest.(check int) "everyone kept" 7 (s1.routers_kept - s0.routers_kept);
  Alcotest.(check int) "no recompute" 7 s1.spf_runs;
  (* A cheaper-than-current fake must dirty its attachment (at least). *)
  Igp.Network.inject_fake net (fake ~id:"near" ~at:d.b ~cost:1 ~fwd:d.r3);
  Igp.Network.warm net;
  let s2 = Igp.Spf_engine.stats engine in
  Alcotest.(check bool) "some router dirtied" true
    (s2.routers_dirtied > s1.routers_dirtied);
  Alcotest.(check bool) "but not everyone" true
    (s2.routers_kept > s1.routers_kept);
  let fib_b = fib_exn net ~router:d.b (pfx "blue") in
  Alcotest.(check (list int)) "B took the cheap fake" [ d.r3 ]
    (Igp.Fib.next_hops fib_b)

(* The incremental engine must be invisible: after any churn sequence,
   every router's FIB for every prefix equals a from-scratch SPF on the
   current view. Exercises the sequential fake rule (installs, retracts,
   supersessions), the single-weight-change rule, and the generic
   full-invalidation fallback (link removals). *)
let prop_engine_matches_scratch =
  QCheck.Test.make ~name:"incremental engine = from-scratch SPF" ~count:500
    QCheck.(pair (int_range 0 1000000) (int_range 1 8))
    (fun (seed, ops) ->
      let prng = Kit.Prng.create ~seed in
      let zoo = Netgraph.Zoo.all () in
      let entry = List.nth zoo (Kit.Prng.int prng (List.length zoo)) in
      let g = entry.Netgraph.Zoo.graph in
      let n = G.node_count g in
      let net = Igp.Network.create g in
      let prefixes = [ pfx "p0"; pfx "p1" ] in
      List.iter
        (fun p ->
          Igp.Network.announce_prefix net p ~origin:(Kit.Prng.int prng n)
            ~cost:(Kit.Prng.int prng 3))
        prefixes;
      let random_neighbor router =
        let succ = G.succ g router in
        fst (List.nth succ (Kit.Prng.int prng (List.length succ)))
      in
      let churn () =
        match Kit.Prng.int prng 10 with
        | 0 | 1 | 2 | 3 ->
          (* Install (ids are reused, so supersessions happen too). *)
          let attachment = Kit.Prng.int prng n in
          Igp.Network.inject_fake net
            {
              fake_id = Printf.sprintf "f%d" (Kit.Prng.int prng 4);
              attachment;
              attachment_cost = 1 + Kit.Prng.int prng 3;
              prefix = List.nth prefixes (Kit.Prng.int prng 2);
              announced_cost = Kit.Prng.int prng 6;
              forwarding = random_neighbor attachment;
            }
        | 4 | 5 -> (
          match Igp.Network.fakes net with
          | [] -> ()
          | fakes ->
            let f = List.nth fakes (Kit.Prng.int prng (List.length fakes)) in
            Igp.Network.retract_fake net ~fake_id:f.Igp.Lsa.fake_id)
        | 6 | 7 | 8 -> (
          match G.edges g with
          | [] -> ()
          | edges ->
            let u, v, _ = List.nth edges (Kit.Prng.int prng (List.length edges)) in
            Igp.Network.set_weight net u v ~weight:(1 + Kit.Prng.int prng 8))
        | _ -> (
          (* Remove a link out of band: only a generic touch reaches the
             engine, forcing the full-invalidation path. *)
          match G.edges g with
          | [] -> ()
          | edges ->
            let u, v, _ = List.nth edges (Kit.Prng.int prng (List.length edges)) in
            G.remove_edge g u v;
            Igp.Lsdb.touch ~origin:u (Igp.Network.lsdb net))
      in
      let agrees () =
        let view = Igp.Lsdb.view (Igp.Network.lsdb net) in
        (* p0 through per-router lookups, p1 through the batched
           (pool-backed) table, so both engine paths are checked. *)
        let table1 = Igp.Network.fib_table net (pfx "p1") in
        List.for_all
          (fun router ->
            Igp.Network.fib net ~router (pfx "p0")
            = Igp.Spf.compute_prefix view ~router (pfx "p0")
            && table1.(router) = Igp.Spf.compute_prefix view ~router (pfx "p1"))
          (G.nodes g)
      in
      let rec go k = k = 0 || (churn (); agrees () && go (k - 1)) in
      agrees () && go ops)

(* ---------- Convergence ---------- *)

let test_convergence_schedule_ordering () =
  let d = T.demo () in
  let schedule =
    Igp.Convergence.installation_schedule Igp.Convergence.default_timing d.graph
      ~origin:d.b
  in
  Alcotest.(check int) "every router scheduled" 7 (List.length schedule);
  let times = List.map snd schedule in
  Alcotest.(check (list (float 1e-9))) "sorted" (List.sort compare times) times;
  (* The origin's own installation has no flooding delay. *)
  let origin_time = List.assoc d.b schedule in
  Alcotest.(check bool) "origin among the earliest" true
    (origin_time <= Kit.Stats.minimum times +. 0.2)

let test_convergence_fake_injection_loop_free () =
  (* The demo's fB: only B's FIB changes, and the mixed window is safe
     throughout — Fibbing's equal-cost additions have no micro-loops. *)
  let d, net = demo_net () in
  let after = Igp.Network.clone net in
  Igp.Network.inject_fake after (fake ~id:"fB" ~at:d.b ~cost:2 ~fwd:d.r3);
  let report =
    Igp.Convergence.analyze ~before:net ~after ~origin:d.b ~prefix:(pfx "blue") ()
  in
  Alcotest.(check int) "one router changes" 1 report.states;
  Alcotest.(check int) "no unsafe state" 0 report.unsafe_states;
  Alcotest.(check bool) "no problem" true (report.first_problem = None)

(* The textbook micro-loop: chain C-B-A-T with a C-T backup; degrading
   A-T makes the new routes A->B->C->T, and if A installs before B the
   pair A/B point at each other. *)
let microloop_nets () =
  let g = G.create () in
  let a = G.add_node g ~name:"A" in
  let b = G.add_node g ~name:"B" in
  let c = G.add_node g ~name:"C" in
  let t = G.add_node g ~name:"T" in
  G.add_link g c t ~weight:5;
  G.add_link g c b ~weight:1;
  G.add_link g b a ~weight:1;
  G.add_link g a t ~weight:1;
  let before = Igp.Network.create g in
  Igp.Network.announce_prefix before (pfx "p") ~origin:t ~cost:0;
  let after = Igp.Network.clone before in
  Igp.Network.set_weight after a t ~weight:10;
  Igp.Network.set_weight after t a ~weight:10;
  (before, after, a, b)

let test_convergence_weight_change_microloops () =
  let before, after, a, _ = microloop_nets () in
  let report =
    Igp.Convergence.analyze ~before ~after ~origin:a ~prefix:(pfx "p") ()
  in
  Alcotest.(check bool) "several routers change" true (report.states >= 2);
  Alcotest.(check bool)
    (Printf.sprintf "micro-loop detected (%d unsafe states)" report.unsafe_states)
    true
    (report.unsafe_states >= 1);
  Alcotest.(check bool) "window has positive duration" true
    (report.unsafe_window > 0.);
  match report.first_problem with
  | Some (_, description) ->
    Alcotest.(check bool) "describes a loop" true
      (String.length description > 0)
  | None -> Alcotest.fail "expected a problem description"

let test_convergence_verdict_direct () =
  let d, net = demo_net () in
  let fib router = Igp.Network.fib net ~router (pfx "blue") in
  (match
     Igp.Convergence.forwarding_verdict ~nodes:(G.nodes d.graph) ~fib
   with
  | Igp.Convergence.Safe -> ()
  | Igp.Convergence.Loop _ | Igp.Convergence.Blackhole _ ->
    Alcotest.fail "baseline must be safe");
  (* A hand-made two-node loop. *)
  let looped router =
    if router = d.a then
      Some
        {
          Igp.Fib.router = d.a;
          prefix = pfx "blue";
          distance = 1;
          local = false;
          entries = [ { next_hop = d.b; multiplicity = 1; via_fakes = [] } ];
        }
    else if router = d.b then
      Some
        {
          Igp.Fib.router = d.b;
          prefix = pfx "blue";
          distance = 1;
          local = false;
          entries = [ { next_hop = d.a; multiplicity = 1; via_fakes = [] } ];
        }
    else None
  in
  match
    Igp.Convergence.forwarding_verdict ~nodes:[ d.a; d.b ] ~fib:looped
  with
  | Igp.Convergence.Loop routers ->
    Alcotest.(check (list int)) "both on the loop" [ d.a; d.b ]
      (List.sort compare routers)
  | Igp.Convergence.Safe | Igp.Convergence.Blackhole _ ->
    Alcotest.fail "loop not found"

let test_convergence_blackhole_verdict () =
  let d, _ = demo_net () in
  let fib router =
    if router = d.a then
      Some
        {
          Igp.Fib.router = d.a;
          prefix = pfx "blue";
          distance = 1;
          local = false;
          entries = [ { next_hop = d.b; multiplicity = 1; via_fakes = [] } ];
        }
    else None (* B has no route: A forwards into the void *)
  in
  match Igp.Convergence.forwarding_verdict ~nodes:[ d.a; d.b ] ~fib with
  | Igp.Convergence.Blackhole router -> Alcotest.(check int) "at A" d.a router
  | Igp.Convergence.Safe | Igp.Convergence.Loop _ ->
    Alcotest.fail "blackhole not found"

(* ---------- Codec (wire format) ---------- *)

let roundtrip lsa =
  let packet = { Igp.Codec.lsa; sequence = 42 } in
  let encoded = Igp.Codec.encode packet in
  Alcotest.(check int) "wire_length agrees" (Bytes.length encoded)
    (Igp.Codec.wire_length packet);
  match Igp.Codec.decode encoded with
  | Ok decoded ->
    Alcotest.(check bool) "lsa roundtrips" true (decoded.lsa = lsa);
    Alcotest.(check int) "sequence roundtrips" 42 decoded.sequence
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_codec_roundtrip_router () =
  roundtrip (Igp.Lsa.Router { origin = 3; links = [ (1, 10); (2, 65535); (7, 1) ] });
  roundtrip (Igp.Lsa.Router { origin = 0; links = [] })

let test_codec_roundtrip_prefix () =
  roundtrip (Igp.Lsa.Prefix { origin = 6; prefix = pfx "blue"; cost = 0 });
  roundtrip (Igp.Lsa.Prefix { origin = 1; prefix = pfx "10.1.0.0/16"; cost = 0xFFFFFF });
  roundtrip (Igp.Lsa.Prefix { origin = 1; prefix = pfx "0.0.0.0/0"; cost = 1 });
  (* The empty string is no longer a legal prefix: construction rejects it. *)
  Alcotest.(check bool) "empty prefix rejected" true
    (match Igp.Prefix.of_string "" with Error _ -> true | Ok _ -> false)

let test_codec_roundtrip_fake () =
  roundtrip
    (Igp.Lsa.Fake
       {
         fake_id = "fib:blue/B>R3#1";
         attachment = 1;
         attachment_cost = 1;
         prefix = pfx "blue";
         announced_cost = 1;
         forwarding = 4;
       })

let test_codec_age_field () =
  let packet =
    { Igp.Codec.lsa = Igp.Lsa.Prefix { origin = 1; prefix = pfx "p"; cost = 3 };
      sequence = 7 }
  in
  let encoded = Igp.Codec.encode ~age:1200 packet in
  Alcotest.(check bool) "age decodes" true (Igp.Codec.decode_age encoded = Ok 1200);
  (* Age is outside the checksum: relays may bump it in place. *)
  Bytes.set_uint16_be encoded 0 1201;
  Alcotest.(check bool) "aged packet still decodes" true
    (Result.is_ok (Igp.Codec.decode encoded))

let test_codec_detects_corruption () =
  let packet =
    { Igp.Codec.lsa = Igp.Lsa.Prefix { origin = 1; prefix = pfx "blue"; cost = 3 };
      sequence = 7 }
  in
  let encoded = Igp.Codec.encode packet in
  (* Change one payload byte: the checksum must catch it. (A 0x00 -> 0xff
     flip is invisible to Fletcher-16 — 0 and 255 are congruent mod 255 —
     so perturb by +1 instead, as a real bit error usually would.) *)
  let corrupted = Bytes.copy encoded in
  let target = Bytes.length corrupted - 1 in
  Bytes.set_uint8 corrupted target ((Bytes.get_uint8 corrupted target + 1) land 0xff);
  (match Igp.Codec.decode corrupted with
  | Error reason ->
    Alcotest.(check bool) "mentions checksum" true
      (String.length reason > 0)
  | Ok _ -> Alcotest.fail "corruption undetected");
  (* Truncation. *)
  (match Igp.Codec.decode (Bytes.sub encoded 0 10) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncation undetected");
  (* Length-field lie. *)
  let lied = Bytes.copy encoded in
  Bytes.set_uint16_be lied 12 (Bytes.length lied - 1);
  match Igp.Codec.decode lied with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "length mismatch undetected"

let test_codec_rejects_oversize_fields () =
  Alcotest.(check bool) "24-bit metric overflow" true
    (try
       ignore
         (Igp.Codec.encode
            { lsa = Igp.Lsa.Prefix { origin = 1; prefix = pfx "p"; cost = 1 lsl 24 };
              sequence = 0 });
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "long name" true
    (try
       ignore
         (Igp.Codec.encode
            { lsa = Igp.Lsa.Prefix { origin = 1; prefix = pfx (String.make 300 'x'); cost = 1 };
              sequence = 0 });
       false
     with Invalid_argument _ -> true)

let test_network_wire_injection () =
  let d, net = demo_net () in
  let packet =
    {
      Igp.Codec.lsa =
        Igp.Lsa.Fake
          {
            fake_id = "wire-fB";
            attachment = d.b;
            attachment_cost = 1;
            prefix = pfx "blue";
            announced_cost = 1;
            forwarding = d.r3;
          };
      sequence = 1;
    }
  in
  (match Igp.Network.inject_fake_wire net (Igp.Codec.encode packet) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "wire injection failed: %s" e);
  let fib_b = fib_exn net ~router:d.b (pfx "blue") in
  Alcotest.(check (list int)) "ECMP via wire" [ d.r2; d.r3 ] (Igp.Fib.next_hops fib_b);
  (* Non-fake packets are refused. *)
  let router_packet =
    { Igp.Codec.lsa = Igp.Lsa.Router { origin = d.a; links = [] }; sequence = 1 }
  in
  Alcotest.(check bool) "router LSA refused" true
    (Result.is_error (Igp.Network.inject_fake_wire net (Igp.Codec.encode router_packet)));
  (* Garbage is refused, not fatal. *)
  Alcotest.(check bool) "garbage refused" true
    (Result.is_error (Igp.Network.inject_fake_wire net (Bytes.of_string "junk")))

let test_network_router_lsa () =
  let d, net = demo_net () in
  match Igp.Network.router_lsa net ~origin:d.b with
  | Igp.Lsa.Router { origin; links } ->
    Alcotest.(check int) "origin" d.b origin;
    Alcotest.(check (list (pair int int))) "adjacencies"
      [ (d.a, 1); (d.r2, 1); (d.r3, 1) ]
      (List.sort compare links)
  | Igp.Lsa.Prefix _ | Igp.Lsa.Fake _ -> Alcotest.fail "expected router LSA"

(* Property: arbitrary LSAs roundtrip through the wire format. *)
let lsa_gen =
  let open QCheck.Gen in
  let name_gen = string_size ~gen:(char_range 'a' 'z') (0 -- 20) in
  (* Prefixes are now structured: exercise both named prefixes and raw
     CIDR blocks through the codec. *)
  let prefix_gen =
    oneof
      [
        (string_size ~gen:(char_range 'a' 'z') (1 -- 20) >|= Igp.Prefix.v);
        ( 0 -- 32 >>= fun len ->
          0 -- 0xFFFFFF >|= fun bits ->
          let addr = (bits lsl 8) land 0xFFFFFFFF in
          let addr = if len = 0 then 0 else addr land (0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF) in
          Igp.Prefix.make ~addr ~len );
      ]
  in
  let node_gen = 0 -- 1000 in
  oneof
    [
      (node_gen >>= fun origin ->
       list_size (0 -- 8) (pair node_gen (1 -- 65535)) >|= fun links ->
       Igp.Lsa.Router { origin; links });
      (node_gen >>= fun origin ->
       prefix_gen >>= fun prefix ->
       0 -- 0xFFFFFF >|= fun cost -> Igp.Lsa.Prefix { origin; prefix; cost });
      (name_gen >>= fun fake_id ->
       node_gen >>= fun attachment ->
       1 -- 65535 >>= fun attachment_cost ->
       prefix_gen >>= fun prefix ->
       0 -- 0xFFFFFF >>= fun announced_cost ->
       node_gen >|= fun forwarding ->
       Igp.Lsa.Fake
         { fake_id; attachment; attachment_cost; prefix; announced_cost; forwarding });
    ]

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec roundtrips arbitrary LSAs" ~count:300
    (QCheck.make lsa_gen) (fun lsa ->
      let packet = { Igp.Codec.lsa; sequence = 123456 } in
      match Igp.Codec.decode (Igp.Codec.encode packet) with
      | Ok decoded -> decoded.lsa = lsa && decoded.sequence = 123456
      | Error _ -> false)

(* Decoding is total: arbitrary bytes produce Error, never an exception. *)
let prop_codec_decode_total =
  QCheck.Test.make ~name:"codec decode never raises on garbage" ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun junk ->
      match Igp.Codec.decode (Bytes.of_string junk) with
      | Ok _ | Error _ -> true)

let prop_codec_single_bitflip_detected =
  QCheck.Test.make ~name:"codec detects single byte corruption" ~count:200
    QCheck.(pair (QCheck.make lsa_gen) (int_range 2 1000))
    (fun (lsa, position) ->
      let packet = { Igp.Codec.lsa; sequence = 1 } in
      let encoded = Igp.Codec.encode packet in
      (* Corrupt a checksummed byte (skip the age field at 0-1). *)
      let target = 2 + (position mod (Bytes.length encoded - 2)) in
      let corrupted = Bytes.copy encoded in
      Bytes.set_uint8 corrupted target (Bytes.get_uint8 corrupted target lxor 0x5a);
      match Igp.Codec.decode corrupted with
      | Error _ -> true
      | Ok decoded ->
        (* A flip in the length field may still decode if consistent —
           but then the content must differ. Anything else is a miss. *)
        decoded.lsa <> lsa)

(* ---------- Prefix: parsing, printing, containment ---------- *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_prefix_parse_roundtrip () =
  List.iter
    (fun s ->
      match Igp.Prefix.of_string s with
      | Error e -> Alcotest.failf "%S rejected: %s" s e
      | Ok p -> Alcotest.(check string) s s (Igp.Prefix.to_string p))
    [ "10.0.0.0/8"; "192.168.1.0/24"; "0.0.0.0/0"; "255.255.255.255";
      "172.16.128.0/17"; "blue"; "p07"; "some_name-2" ];
  (* A /32 parses from and prints as a bare host address. *)
  (match Igp.Prefix.of_string "192.168.1.7/32" with
  | Ok p ->
    Alcotest.(check int) "host len" 32 (Igp.Prefix.len p);
    Alcotest.(check string) "host print" "192.168.1.7" (Igp.Prefix.to_string p)
  | Error e -> Alcotest.failf "host route rejected: %s" e)

let test_prefix_parse_rejects () =
  let rejects s fragment =
    match Igp.Prefix.of_string s with
    | Ok _ -> Alcotest.failf "%S accepted" s
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%S error %S mentions %S" s e fragment)
        true
        (contains_sub e fragment)
  in
  rejects "" "empty";
  rejects "10.0.0.256/8" "octet";
  rejects "10.0.0/8" "four dot-separated octets";
  rejects "010.0.0.0/8" "leading zero";
  rejects "10.0.0.0/33" "mask length";
  rejects "10.0.0.0/" "empty mask length";
  rejects "10.0.1.0/8" "host bits";
  rejects "2blue" "not a CIDR";
  rejects "10.0.0.x/8" "not a number"

let test_prefix_named_deterministic () =
  let p = pfx "blue" and q = pfx "blue" in
  Alcotest.(check bool) "same packing" true (Igp.Prefix.equal p q);
  Alcotest.(check string) "prints name" "blue" (Igp.Prefix.to_string p);
  Alcotest.(check int) "host route" 32 (Igp.Prefix.len p);
  (* Named prefixes live in class E so they never collide with real CIDRs. *)
  Alcotest.(check bool) "class E" true (Igp.Prefix.addr p lsr 28 = 0xF);
  Alcotest.(check bool) "distinct names distinct" false
    (Igp.Prefix.equal (pfx "blue") (pfx "red"))

let test_prefix_containment () =
  let p8 = pfx "10.0.0.0/8" and p16 = pfx "10.1.0.0/16" and p0 = Igp.Prefix.default_route in
  Alcotest.(check bool) "/0 contains /8" true (Igp.Prefix.contains p0 p8);
  Alcotest.(check bool) "/8 contains /16" true (Igp.Prefix.contains p8 p16);
  Alcotest.(check bool) "/16 not contains /8" false (Igp.Prefix.contains p16 p8);
  Alcotest.(check bool) "disjoint" false
    (Igp.Prefix.contains (pfx "11.0.0.0/8") p16);
  Alcotest.(check bool) "addr in" true
    (Igp.Prefix.contains_addr p16 (Igp.Prefix.first_addr p16));
  Alcotest.(check bool) "addr beyond" false
    (Igp.Prefix.contains_addr p16 (Igp.Prefix.last_addr p16 + 1))

let test_prefix_synthesize () =
  let prng = Kit.Prng.create ~seed:42 in
  let ps = Igp.Prefix.synthesize prng ~n:500 in
  Alcotest.(check int) "count" 500 (List.length ps);
  let seen = Hashtbl.create 512 in
  List.iter
    (fun p ->
      Alcotest.(check bool) "unique" false (Hashtbl.mem seen p);
      Hashtbl.replace seen p ();
      Alcotest.(check bool) "plausible len" true
        (Igp.Prefix.len p >= 1 && Igp.Prefix.len p <= 32))
    ps;
  (* Zipf-nested: a healthy share of prefixes sits under another one. *)
  let nested =
    List.length
      (List.filter
         (fun p ->
           List.exists
             (fun q -> (not (Igp.Prefix.equal p q)) && Igp.Prefix.contains q p)
             ps)
         ps)
  in
  Alcotest.(check bool)
    (Printf.sprintf "nesting present (%d/500)" nested)
    true (nested > 50)

(* ---------- Fib_trie: LPM edge cases and aggregation ---------- *)

let trie_of bindings =
  let t = Igp.Fib_trie.create ~eq:Int.equal in
  List.iter (fun (s, v) -> Igp.Fib_trie.update t (pfx s) v) bindings;
  t

let lookup_v t addr = Option.map snd (Igp.Fib_trie.lookup t addr)
let lookup_av t addr = Option.map snd (Igp.Fib_trie.lookup_aggregated t addr)

let addr_of s = Igp.Prefix.first_addr (pfx s)

let test_trie_default_route () =
  let t = trie_of [ ("0.0.0.0/0", 1); ("10.0.0.0/8", 2) ] in
  Alcotest.(check (option int)) "inside /8" (Some 2) (lookup_v t (addr_of "10.9.9.9"));
  Alcotest.(check (option int)) "outside /8 falls to /0" (Some 1)
    (lookup_v t (addr_of "11.0.0.1"));
  Alcotest.(check (option int)) "0.0.0.0 matches /0" (Some 1) (lookup_v t 0);
  Alcotest.(check (option int)) "255.255.255.255 matches /0" (Some 1)
    (lookup_v t 0xFFFFFFFF);
  let empty = Igp.Fib_trie.create ~eq:Int.equal in
  Alcotest.(check (option int)) "no routes: no match" None (lookup_v empty 42)

let test_trie_host_route () =
  let t = trie_of [ ("10.0.0.0/8", 1); ("10.1.2.3/32", 2) ] in
  Alcotest.(check (option int)) "host exact" (Some 2) (lookup_v t (addr_of "10.1.2.3"));
  Alcotest.(check (option int)) "neighbor address" (Some 1) (lookup_v t (addr_of "10.1.2.4"));
  Igp.Fib_trie.remove t (pfx "10.1.2.3/32");
  Alcotest.(check (option int)) "host removed" (Some 1) (lookup_v t (addr_of "10.1.2.3"))

let test_trie_nested_overlap () =
  (* Fake on the more-specific: /16 diverges from its /8 parent, then is
     retracted and the parent's value shows through again. *)
  let t = trie_of [ ("10.0.0.0/8", 1); ("10.1.0.0/16", 1) ] in
  (* Same behavior: child aggregates away. *)
  Alcotest.(check int) "aggregated to one" 1 (Igp.Fib_trie.installed t);
  Alcotest.(check int) "two routes kept" 2 (Igp.Fib_trie.routes t);
  Alcotest.(check (option int)) "flat" (Some 1) (lookup_v t (addr_of "10.1.2.3"));
  Alcotest.(check (option int)) "aggregated" (Some 1) (lookup_av t (addr_of "10.1.2.3"));
  (* A fake steers the /16 only: it must reappear as a barrier. *)
  Igp.Fib_trie.update t (pfx "10.1.0.0/16") 7;
  Alcotest.(check int) "barrier installed" 2 (Igp.Fib_trie.installed t);
  Alcotest.(check (option int)) "steered inside" (Some 7) (lookup_av t (addr_of "10.1.2.3"));
  Alcotest.(check (option int)) "outside untouched" (Some 1) (lookup_av t (addr_of "10.2.0.1"));
  (* Retract: aggregation collapses again. *)
  Igp.Fib_trie.update t (pfx "10.1.0.0/16") 1;
  Alcotest.(check int) "collapsed" 1 (Igp.Fib_trie.installed t)

let test_trie_sibling_barriers () =
  (* Two siblings with different values under a common parent: both stay
     installed (differing next-hop sets are aggregation barriers). *)
  let t =
    trie_of
      [ ("10.0.0.0/8", 1); ("10.0.0.0/9", 2); ("10.128.0.0/9", 3) ]
  in
  Alcotest.(check int) "all barriers" 3 (Igp.Fib_trie.installed t);
  Alcotest.(check (option int)) "low half" (Some 2) (lookup_av t (addr_of "10.1.0.0"));
  Alcotest.(check (option int)) "high half" (Some 3) (lookup_av t (addr_of "10.200.0.0"));
  (* Make one sibling equal to the parent: only it aggregates away. *)
  Igp.Fib_trie.update t (pfx "10.0.0.0/9") 1;
  Alcotest.(check int) "one aggregates" 2 (Igp.Fib_trie.installed t);
  Alcotest.(check (option int)) "low half now parent" (Some 1)
    (lookup_av t (addr_of "10.1.0.0"));
  Alcotest.(check (option int)) "high half kept" (Some 3)
    (lookup_av t (addr_of "10.200.0.0"))

let test_trie_lookup_within () =
  let t = trie_of [ ("10.0.0.0/8", 1); ("10.1.0.0/16", 2) ] in
  let governing s =
    Option.map
      (fun (p, _) -> Igp.Prefix.to_string p)
      (Igp.Fib_trie.lookup_within t (pfx s))
  in
  Alcotest.(check (option string)) "exact" (Some "10.1.0.0/16") (governing "10.1.0.0/16");
  Alcotest.(check (option string)) "nested under /16" (Some "10.1.0.0/16")
    (governing "10.1.2.0/24");
  Alcotest.(check (option string)) "only /8 covers" (Some "10.0.0.0/8")
    (governing "10.2.0.0/16");
  Alcotest.(check (option string)) "nothing covers" None (governing "11.0.0.0/8")

(* ---------- Fib: canonical weights, invariant ---------- *)

let entry next_hop multiplicity : Igp.Fib.entry =
  { next_hop; multiplicity; via_fakes = [] }

let test_fib_equal_forwarding_canonical () =
  (* Regression: entry order and duplicate next-hop splits used to make
     behaviorally identical FIBs compare unequal. *)
  let base = { Igp.Fib.router = 0; prefix = pfx "blue"; distance = 3;
               local = false; entries = [ entry 1 2; entry 2 1 ] } in
  let reordered = { base with entries = [ entry 2 1; entry 1 2 ] } in
  let split = { base with entries = [ entry 1 1; entry 2 1; entry 1 1 ] } in
  Alcotest.(check bool) "reordered equal" true
    (Igp.Fib.equal_forwarding base reordered);
  Alcotest.(check bool) "duplicate split equal" true
    (Igp.Fib.equal_forwarding base split);
  Alcotest.(check bool) "weights canonical" true
    (Igp.Fib.weights split = [ (1, 2); (2, 1) ]);
  Alcotest.(check bool) "different weights differ" false
    (Igp.Fib.equal_forwarding base { base with entries = [ entry 1 1; entry 2 1 ] })

let test_fib_make_rejects () =
  let mk entries =
    Igp.Fib.make ~router:0 ~prefix:(pfx "blue") ~distance:1 ~local:false entries
  in
  let rejects label entries =
    Alcotest.(check bool) label true
      (try ignore (mk entries); false with Invalid_argument _ -> true)
  in
  rejects "zero multiplicity" [ entry 1 0 ];
  rejects "negative multiplicity" [ entry 1 (-3) ];
  rejects "unsorted" [ entry 2 1; entry 1 1 ];
  rejects "duplicate next hop" [ entry 1 1; entry 1 1 ];
  (* Canonical input is accepted and satisfies the invariant. *)
  let fib = mk [ entry 1 2; entry 2 1 ] in
  Alcotest.(check bool) "invariant holds" true (Igp.Fib.invariant fib = Ok ());
  let bad = { fib with entries = [ entry 1 0 ] } in
  Alcotest.(check bool) "invariant catches" true (Igp.Fib.invariant bad <> Ok ())

let test_codec_rejects_malformed_prefix () =
  (* Forge a Prefix LSA whose on-wire name is not a valid prefix: decode
     must fail with the offset and reason, not deliver the garbage. *)
  let packet =
    { Igp.Codec.lsa = Igp.Lsa.Prefix { origin = 1; prefix = pfx "blue"; cost = 1 };
      sequence = 7 }
  in
  let buf = Igp.Codec.encode packet in
  (* Body starts at 16; the prefix string is u8 length + bytes. *)
  Bytes.set buf 17 '2' (* "blue" -> "2lue": neither name nor CIDR *);
  let sum = Igp.Codec.fletcher16 (let c = Bytes.copy buf in Bytes.set_uint16_be c 14 0; c)
      ~pos:2 ~len:(Bytes.length buf - 2) in
  Bytes.set_uint16_be buf 14 sum;
  match Igp.Codec.decode buf with
  | Ok _ -> Alcotest.fail "malformed prefix decoded"
  | Error e ->
    let has frag = contains_sub e frag in
    Alcotest.(check bool) (Printf.sprintf "%S names the field" e) true (has "prefix");
    Alcotest.(check bool) (Printf.sprintf "%S carries the offset" e) true (has "offset");
    Alcotest.(check bool) (Printf.sprintf "%S carries the token" e) true (has "2lue")

(* ---------- Aggregated trie == flat FIB under churn (QCheck) ---------- *)

(* The prefix pool deliberately mixes nesting depths so churn creates and
   destroys aggregation barriers; values stand in for next-hop sets. *)
let churn_pool =
  [| "0.0.0.0/0"; "10.0.0.0/8"; "10.0.0.0/9"; "10.128.0.0/9"; "10.1.0.0/16";
     "10.1.2.0/24"; "10.1.2.3/32"; "10.2.0.0/16"; "11.0.0.0/8"; "172.16.0.0/12";
     "172.16.5.0/24"; "192.168.0.0/16"; "192.168.1.0/24"; "192.168.1.7/32" |]

let prop_trie_matches_flat =
  QCheck.Test.make ~name:"aggregated trie == flat FIB under churn" ~count:250
    QCheck.(list_of_size Gen.(1 -- 60) (pair (int_bound (Array.length churn_pool - 1)) (int_bound 4)))
    (fun ops ->
      let t = Igp.Fib_trie.create ~eq:Int.equal in
      let breakpoints =
        Array.to_list churn_pool
        |> List.concat_map (fun s ->
               let p = pfx s in
               [ Igp.Prefix.first_addr p; Igp.Prefix.last_addr p;
                 (Igp.Prefix.last_addr p + 1) land 0xFFFFFFFF ])
      in
      List.for_all
        (fun (i, v) ->
          let p = pfx churn_pool.(i) in
          (* v = 0 is a retraction; otherwise install/steer to value v. *)
          if v = 0 then Igp.Fib_trie.remove t p else Igp.Fib_trie.update t p v;
          Igp.Fib_trie.installed t <= Igp.Fib_trie.routes t
          && List.for_all
               (fun a -> lookup_v t a = lookup_av t a)
               breakpoints)
        ops)

(* Network-level: after arbitrary fake churn, the aggregated per-router
   trie must route every breakpoint address exactly like the flat FIB. *)
let test_engine_lpm_matches_flat () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  let announced = [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24" ] in
  List.iter (fun s -> Igp.Network.announce_prefix net (pfx s) ~origin:d.c ~cost:0)
    announced;
  let check_agree label =
    List.iter
      (fun router ->
        List.iter
          (fun s ->
            let p = pfx s in
            let flat = Igp.Network.fib net ~router p in
            (match Igp.Network.lpm net ~router (Igp.Prefix.first_addr p) with
            | None ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: router %d %s unreachable both ways" label router s)
                true (flat = None)
            | Some (_, agg) ->
              let flat = Option.get flat in
              Alcotest.(check bool)
                (Printf.sprintf "%s: router %d %s same behavior" label router s)
                true
                (Igp.Fib.same_behavior flat agg)))
          announced)
      (G.nodes d.graph)
  in
  check_agree "baseline";
  Igp.Network.inject_fake net
    { fake_id = "f16"; attachment = d.b; attachment_cost = 1;
      prefix = pfx "10.1.0.0/16"; announced_cost = 1; forwarding = d.r3 };
  check_agree "fake on /16";
  Igp.Network.retract_fake net ~fake_id:"f16";
  check_agree "fake retracted";
  (* Aggregation must be doing something: nested equal-behavior prefixes
     collapse in the trie. *)
  let stats = Igp.Spf_engine.aggregation (Igp.Network.engine net) ~router:d.a in
  Alcotest.(check bool)
    (Printf.sprintf "aggregates (%d/%d installed)" stats.installed stats.routes)
    true
    (stats.installed < stats.routes)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "igp"
    [
      ( "prefix",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_prefix_parse_roundtrip;
          Alcotest.test_case "parse rejects" `Quick test_prefix_parse_rejects;
          Alcotest.test_case "named deterministic" `Quick test_prefix_named_deterministic;
          Alcotest.test_case "containment" `Quick test_prefix_containment;
          Alcotest.test_case "synthesize" `Quick test_prefix_synthesize;
        ] );
      ( "fib-trie",
        [
          Alcotest.test_case "default route" `Quick test_trie_default_route;
          Alcotest.test_case "host route" `Quick test_trie_host_route;
          Alcotest.test_case "nested overlap" `Quick test_trie_nested_overlap;
          Alcotest.test_case "sibling barriers" `Quick test_trie_sibling_barriers;
          Alcotest.test_case "lookup within" `Quick test_trie_lookup_within;
          Alcotest.test_case "engine lpm matches flat" `Quick
            test_engine_lpm_matches_flat;
        ] );
      ( "lsa",
        [
          Alcotest.test_case "total cost" `Quick test_lsa_total_cost;
          Alcotest.test_case "keys" `Quick test_lsa_keys;
        ] );
      ( "lsdb",
        [
          Alcotest.test_case "announce/view" `Quick test_lsdb_announce_and_view;
          Alcotest.test_case "fake validation" `Quick test_lsdb_install_fake_validation;
          Alcotest.test_case "supersede" `Quick test_lsdb_supersede_fake;
          Alcotest.test_case "retract" `Quick test_lsdb_retract;
          Alcotest.test_case "versions" `Quick test_lsdb_version_bumps;
          Alcotest.test_case "anycast" `Quick test_lsdb_anycast;
        ] );
      ( "spf-fib",
        [
          Alcotest.test_case "baseline routes (Fig 1a)" `Quick test_spf_baseline_routes;
          Alcotest.test_case "fake ECMP (Fig 1c, fB)" `Quick test_spf_fake_creates_ecmp;
          Alcotest.test_case "fake multiplicity (Fig 1c, fA)" `Quick
            test_spf_fake_multiplicity;
          Alcotest.test_case "surgical lies" `Quick test_spf_fake_does_not_change_others;
          Alcotest.test_case "cheaper fake overrides" `Quick
            test_spf_cheaper_fake_overrides;
          Alcotest.test_case "expensive fake ignored" `Quick
            test_spf_expensive_fake_ignored;
          Alcotest.test_case "fake is not transit" `Quick test_spf_fake_not_transit;
          Alcotest.test_case "unknown prefix" `Quick test_spf_unknown_prefix;
          Alcotest.test_case "unreachable prefix" `Quick test_spf_unreachable_prefix;
          Alcotest.test_case "local has no fractions" `Quick
            test_fib_fractions_empty_when_local;
          Alcotest.test_case "distance only" `Quick test_spf_distance_only;
          Alcotest.test_case "all prefixes" `Quick test_spf_compute_all_prefixes;
          Alcotest.test_case "announce cost" `Quick test_prefix_cost_matters;
        ] );
      ( "flooding",
        [
          Alcotest.test_case "counts" `Quick test_flooding_counts;
          Alcotest.test_case "partition" `Quick test_flooding_partition;
          Alcotest.test_case "add" `Quick test_flooding_add;
        ] );
      ( "network",
        [
          Alcotest.test_case "control cost" `Quick test_network_control_cost_accounting;
          Alcotest.test_case "clone independent" `Quick test_network_clone_independent;
          Alcotest.test_case "clone carries fakes" `Quick test_network_clone_carries_fakes;
          Alcotest.test_case "weight reconvergence" `Quick
            test_network_set_weight_reconverges;
          Alcotest.test_case "refresh cost" `Quick test_network_refresh_cost;
          Alcotest.test_case "retract all" `Quick test_network_retract_all;
        ] );
      ( "spf-engine",
        [
          Alcotest.test_case "incremental invalidation" `Quick
            test_engine_incremental_keeps_routers;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "schedule ordering" `Quick test_convergence_schedule_ordering;
          Alcotest.test_case "fake injection loop-free" `Quick
            test_convergence_fake_injection_loop_free;
          Alcotest.test_case "weight change micro-loops" `Quick
            test_convergence_weight_change_microloops;
          Alcotest.test_case "loop verdict" `Quick test_convergence_verdict_direct;
          Alcotest.test_case "blackhole verdict" `Quick test_convergence_blackhole_verdict;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip router" `Quick test_codec_roundtrip_router;
          Alcotest.test_case "roundtrip prefix" `Quick test_codec_roundtrip_prefix;
          Alcotest.test_case "roundtrip fake" `Quick test_codec_roundtrip_fake;
          Alcotest.test_case "age field" `Quick test_codec_age_field;
          Alcotest.test_case "corruption detected" `Quick test_codec_detects_corruption;
          Alcotest.test_case "oversize fields" `Quick test_codec_rejects_oversize_fields;
          Alcotest.test_case "wire injection" `Quick test_network_wire_injection;
          Alcotest.test_case "router lsa" `Quick test_network_router_lsa;
          Alcotest.test_case "malformed prefix rejected" `Quick
            test_codec_rejects_malformed_prefix;
        ] );
      ( "fib-canonical",
        [
          Alcotest.test_case "equal_forwarding canonical" `Quick
            test_fib_equal_forwarding_canonical;
          Alcotest.test_case "make rejects" `Quick test_fib_make_rejects;
        ] );
      qsuite "codec-props"
        [
          prop_codec_roundtrip;
          prop_codec_single_bitflip_detected;
          prop_codec_decode_total;
        ];
      qsuite "igp-props"
        [
          prop_equal_cost_fake_is_surgical;
          prop_fakes_never_increase_distance;
          prop_engine_matches_scratch;
          prop_trie_matches_flat;
        ];
    ]
