let pfx = Igp.Prefix.v
(* Tests for the Fibbing core: requirements, splitting, augmentation
   compilation (extension and override), verification, the merger, and
   the on-demand load-balancing controller. *)

module G = Netgraph.Graph
module T = Netgraph.Topologies
module R = Fibbing.Requirements
module A = Fibbing.Augmentation

let demo_net () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  (d, net)

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let checkf = Alcotest.(check (float 1e-9))

(* ---------- Requirements ---------- *)

let test_requirements_validate_ok () =
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.b, [ (d.r2, 0.5); (d.r3, 0.5) ]) ] in
  Alcotest.(check bool) "valid" true (R.validate net reqs = Ok ())

let test_requirements_even () =
  let d, _ = demo_net () in
  let reqs = R.even ~prefix:(pfx "blue") ~router:d.b [ d.r2; d.r3 ] in
  match reqs.routers with
  | [ { splits; _ } ] -> checkf "half" 0.5 (List.hd splits).fraction
  | _ -> Alcotest.fail "one router expected"

let test_requirements_reject_non_neighbor () =
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.a, [ (d.c, 1.0) ]) ] in
  Alcotest.(check bool) "rejected" true (Result.is_error (R.validate net reqs))

let test_requirements_reject_bad_fractions () =
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.b, [ (d.r2, 0.5); (d.r3, 0.2) ]) ] in
  Alcotest.(check bool) "sum != 1 rejected" true (Result.is_error (R.validate net reqs))

let test_requirements_reject_announcer () =
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.c, [ (d.r2, 1.0) ]) ] in
  Alcotest.(check bool) "announcer rejected" true (Result.is_error (R.validate net reqs))

let test_requirements_reject_unknown_prefix () =
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "green") [ (d.b, [ (d.r2, 1.0) ]) ] in
  Alcotest.(check bool) "unknown prefix rejected" true
    (Result.is_error (R.validate net reqs))

let test_requirements_reject_duplicates () =
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.b, [ (d.r2, 1.0) ]); (d.b, [ (d.r3, 1.0) ]) ] in
  Alcotest.(check bool) "dup router rejected" true (Result.is_error (R.validate net reqs));
  let reqs2 = R.make ~prefix:(pfx "blue") [ (d.b, [ (d.r2, 0.5); (d.r2, 0.5) ]) ] in
  Alcotest.(check bool) "dup hop rejected" true (Result.is_error (R.validate net reqs2))

(* ---------- Splitting ---------- *)

let test_splitting_demo_ratio () =
  let d, _ = demo_net () in
  let splits =
    [
      { R.next_hop = d.b; fraction = 1. /. 3. };
      { R.next_hop = d.r1; fraction = 2. /. 3. };
    ]
  in
  Alcotest.(check (list (pair int int))) "1:2" [ (d.b, 1); (d.r1, 2) ]
    (Fibbing.Splitting.multiplicities ~max_entries:4 splits);
  checkf "exact" 0.
    (Fibbing.Splitting.approximation_error splits [ (d.b, 1); (d.r1, 2) ])

let test_splitting_error_metric () =
  let d, _ = demo_net () in
  let splits =
    [ { R.next_hop = d.b; fraction = 0.4 }; { R.next_hop = d.r1; fraction = 0.6 } ]
  in
  checkf "error vs 50/50" 0.1
    (Fibbing.Splitting.approximation_error splits [ (d.b, 1); (d.r1, 1) ])

(* ---------- Augmentation: extension ---------- *)

let test_extension_reproduces_demo_fakes () =
  (* B needs {R2, R3} even: one fake at cost 2 (the paper's fB); A needs
     1/3-2/3: two fakes at cost 3 (the paper's two fA). *)
  let d, net = demo_net () in
  let reqs =
    R.make ~prefix:(pfx "blue")
      [
        (d.b, [ (d.r2, 0.5); (d.r3, 0.5) ]);
        (d.a, [ (d.b, 1. /. 3.); (d.r1, 2. /. 3.) ]);
      ]
  in
  let plan = ok_exn (A.extension_plan ~max_entries:4 net reqs) in
  Alcotest.(check int) "three fakes" 3 (A.fake_count plan);
  Alcotest.(check bool) "extension mode" true (plan.mode = A.Extension);
  (match List.filter (fun (f : Igp.Lsa.fake) -> f.attachment = d.b) plan.fakes with
  | [ f ] ->
    Alcotest.(check int) "fB cost 2" 2 (Igp.Lsa.total_cost f);
    Alcotest.(check int) "fB resolves to R3" d.r3 f.forwarding
  | _ -> Alcotest.fail "exactly one fake at B");
  let at_a = List.filter (fun (f : Igp.Lsa.fake) -> f.attachment = d.a) plan.fakes in
  Alcotest.(check int) "two fakes at A" 2 (List.length at_a);
  List.iter
    (fun (f : Igp.Lsa.fake) ->
      Alcotest.(check int) "fA cost 3" 3 (Igp.Lsa.total_cost f);
      Alcotest.(check int) "fA resolves to R1" d.r1 f.forwarding)
    at_a

let test_extension_apply_changes_fibs () =
  let d, net = demo_net () in
  let reqs = R.even ~prefix:(pfx "blue") ~router:d.b [ d.r2; d.r3 ] in
  let plan = ok_exn (A.extension_plan net reqs) in
  A.apply net plan;
  let fib = Option.get (Igp.Network.fib net ~router:d.b (pfx "blue")) in
  Alcotest.(check (list int)) "ECMP installed" [ d.r2; d.r3 ] (Igp.Fib.next_hops fib);
  A.revert net plan;
  let fib = Option.get (Igp.Network.fib net ~router:d.b (pfx "blue")) in
  Alcotest.(check (list int)) "reverted" [ d.r2 ] (Igp.Fib.next_hops fib)

let test_extension_cannot_remove_next_hop () =
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.b, [ (d.r3, 1.0) ]) ] in
  Alcotest.(check bool) "extension refuses" true
    (Result.is_error (A.extension_plan net reqs))

let test_extension_requires_clean_state () =
  let d, net = demo_net () in
  let reqs = R.even ~prefix:(pfx "blue") ~router:d.b [ d.r2; d.r3 ] in
  let plan = ok_exn (A.extension_plan net reqs) in
  A.apply net plan;
  Alcotest.(check bool) "second compile rejected" true
    (Result.is_error (A.extension_plan net reqs))

(* ---------- Augmentation: override ---------- *)

let test_override_replaces_next_hop () =
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.b, [ (d.r3, 1.0) ]) ] in
  let plan = ok_exn (A.override_plan net reqs) in
  A.apply net plan;
  let fib = Option.get (Igp.Network.fib net ~router:d.b (pfx "blue")) in
  Alcotest.(check (list int)) "only R3" [ d.r3 ] (Igp.Fib.next_hops fib);
  Alcotest.(check bool) "cheaper than 2" true (fib.distance < 2)

let test_override_costs_below_current () =
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.a, [ (d.r1, 1.0) ]) ] in
  let plan = ok_exn (A.override_plan net reqs) in
  Alcotest.(check (list (pair int int))) "cost = D(A)-1 = 2" [ (d.a, 2) ] plan.costs

let test_override_uneven () =
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.b, [ (d.r2, 0.25); (d.r3, 0.75) ]) ] in
  let plan = ok_exn (A.override_plan net reqs) in
  A.apply net plan;
  let fib = Option.get (Igp.Network.fib net ~router:d.b (pfx "blue")) in
  Alcotest.(check (list (pair int int))) "1:3" [ (d.r2, 1); (d.r3, 3) ]
    (Igp.Fib.weights fib)

(* ---------- Augmentation: compile (verified end-to-end) ---------- *)

let test_compile_demo_full () =
  let d, net = demo_net () in
  let reqs =
    R.make ~prefix:(pfx "blue")
      [
        (d.b, [ (d.r2, 0.5); (d.r3, 0.5) ]);
        (d.a, [ (d.b, 1. /. 3.); (d.r1, 2. /. 3.) ]);
      ]
  in
  let baseline = Fibbing.Verify.snapshot net (pfx "blue") in
  let plan = ok_exn (A.compile ~max_entries:4 net reqs) in
  A.apply net plan;
  let report =
    Fibbing.Verify.check net ~prefix:(pfx "blue") ~expected:plan.expected ~baseline
  in
  Alcotest.(check bool) "verifies" true report.ok

let test_compile_falls_back_to_override () =
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.b, [ (d.r3, 1.0) ]) ] in
  let plan = ok_exn (A.compile net reqs) in
  Alcotest.(check bool) "override mode" true (plan.mode = A.Override);
  A.apply net plan;
  let fib = Option.get (Igp.Network.fib net ~router:d.b (pfx "blue")) in
  Alcotest.(check (list int)) "requirement met" [ d.r3 ] (Igp.Fib.next_hops fib)

let test_compile_is_surgical () =
  let d, net = demo_net () in
  let baseline = Fibbing.Verify.snapshot net (pfx "blue") in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.b, [ (d.r3, 1.0) ]) ] in
  let plan = ok_exn (A.compile net reqs) in
  A.apply net plan;
  List.iter
    (fun (router, before) ->
      if router <> d.b then begin
        match Igp.Network.fib net ~router (pfx "blue") with
        | Some after ->
          Alcotest.(check bool)
            (Printf.sprintf "%s untouched" (G.name d.graph router))
            true
            (Igp.Fib.equal_forwarding before after)
        | None -> Alcotest.fail "lost reachability"
      end)
    baseline

let test_compile_repairs_collateral () =
  (* Forcing R3 to forward via B needs a cost-1 lie at R3, whose
     equal-cost echo would capture B (and transitively A and R1); the
     repair loop must pin them so only R3's forwarding changes. *)
  let d, net = demo_net () in
  let baseline = Fibbing.Verify.snapshot net (pfx "blue") in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.r3, [ (d.b, 1.0) ]) ] in
  match A.compile net reqs with
  | Error e -> Alcotest.failf "expected repair to succeed: %s" e
  | Ok plan ->
    A.apply net plan;
    let fib_r3 = Option.get (Igp.Network.fib net ~router:d.r3 (pfx "blue")) in
    Alcotest.(check (list int)) "R3 via B" [ d.b ] (Igp.Fib.next_hops fib_r3);
    List.iter
      (fun (router, before) ->
        if router <> d.r3 then begin
          match Igp.Network.fib net ~router (pfx "blue") with
          | Some after ->
            Alcotest.(check bool)
              (Printf.sprintf "%s preserved" (G.name d.graph router))
              true
              (Igp.Fib.equal_forwarding before after)
          | None -> Alcotest.fail "lost reachability"
        end)
      baseline;
    Alcotest.(check bool) "some router was pinned" true (plan.pinned <> [])

let test_compile_reports_impossible_undercut () =
  (* R2 reaches the prefix at cost 1; no positive-cost lie can undercut
     it, so forcing R2 away from C must fail with an explanation, never
     silently misroute. *)
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.r2, [ (d.b, 1.0) ]) ] in
  match A.compile net reqs with
  | Error e -> Alcotest.(check bool) "explains" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "cost-1 undercut should be impossible"

let test_compile_rejects_invalid () =
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.a, [ (d.c, 1.0) ]) ] in
  Alcotest.(check bool) "invalid requirements" true (Result.is_error (A.compile net reqs))

(* Property: on random topologies, a random even-ECMP requirement over
   downhill neighbors either fails loudly or yields a verified plan. *)
let prop_compile_verified_on_random =
  QCheck.Test.make ~name:"compile verifies on random nets" ~count:40
    QCheck.(pair (int_range 0 100000) (int_range 6 16))
    (fun (seed, n) ->
      let prng = Kit.Prng.create ~seed in
      let g = T.random prng ~n ~extra_edges:n ~max_weight:3 in
      let announcer = Kit.Prng.int prng n in
      let net = Igp.Network.create g in
      Igp.Network.announce_prefix net (pfx "p") ~origin:announcer ~cost:0;
      let router =
        let r = ref (Kit.Prng.int prng n) in
        while !r = announcer do
          r := Kit.Prng.int prng n
        done;
        !r
      in
      let neighbors = List.map fst (G.succ g router) in
      let dist v = Igp.Network.distance net ~router:v (pfx "p") in
      match dist router with
      | None -> true
      | Some d_r ->
        let safe =
          List.filter
            (fun v -> match dist v with Some dv -> dv < d_r | None -> false)
            neighbors
        in
        if safe = [] then true
        else begin
          let chosen = List.filteri (fun i _ -> i < 3) (List.sort_uniq compare safe) in
          let reqs = R.even ~prefix:(pfx "p") ~router chosen in
          let baseline = Fibbing.Verify.snapshot net (pfx "p") in
          match A.compile net reqs with
          | Error _ -> true (* honest failure is acceptable *)
          | Ok plan ->
            A.apply net plan;
            (Fibbing.Verify.check net ~prefix:(pfx "p") ~expected:plan.expected
               ~baseline)
              .ok
        end)

(* ---------- Merger ---------- *)

let test_merger_keeps_needed_fake () =
  let d, net = demo_net () in
  let reqs = R.even ~prefix:(pfx "blue") ~router:d.b [ d.r2; d.r3 ] in
  let plan = ok_exn (A.compile net reqs) in
  let minimized = Fibbing.Merger.minimize net reqs plan in
  Alcotest.(check int) "still one fake" 1 (A.fake_count minimized);
  Alcotest.(check int) "saved none" 0 (Fibbing.Merger.saved ~before:plan ~after:minimized)

let test_merger_preserves_verification () =
  let d, net = demo_net () in
  let reqs =
    R.make ~prefix:(pfx "blue")
      [
        (d.b, [ (d.r2, 0.5); (d.r3, 0.5) ]);
        (d.a, [ (d.b, 1. /. 3.); (d.r1, 2. /. 3.) ]);
      ]
  in
  let plan = ok_exn (A.compile ~max_entries:4 net reqs) in
  let baseline = Fibbing.Verify.snapshot net (pfx "blue") in
  let minimized = Fibbing.Merger.minimize net reqs plan in
  A.apply net minimized;
  let report =
    Fibbing.Verify.check net ~prefix:(pfx "blue") ~expected:minimized.expected ~baseline
  in
  Alcotest.(check bool) "still verifies" true report.ok;
  Alcotest.(check int) "three fakes kept (ratios need them)" 3
    (A.fake_count minimized)

let test_merger_drops_inert_fake () =
  let d, net = demo_net () in
  let reqs = R.even ~prefix:(pfx "blue") ~router:d.b [ d.r2; d.r3 ] in
  let plan = ok_exn (A.compile net reqs) in
  let inert : Igp.Lsa.fake =
    {
      fake_id = "inert";
      attachment = d.b;
      attachment_cost = 1;
      prefix = pfx "blue";
      announced_cost = 50;
      forwarding = d.r3;
    }
  in
  let padded = { plan with fakes = plan.fakes @ [ inert ] } in
  let minimized = Fibbing.Merger.minimize net reqs padded in
  Alcotest.(check int) "inert fake dropped" 1 (A.fake_count minimized);
  Alcotest.(check int) "saved one" 1
    (Fibbing.Merger.saved ~before:padded ~after:minimized)

(* ---------- Verify ---------- *)

let test_verify_detects_requirement_miss () =
  let d, net = demo_net () in
  let baseline = Fibbing.Verify.snapshot net (pfx "blue") in
  let report =
    Fibbing.Verify.check net ~prefix:(pfx "blue")
      ~expected:[ (d.b, [ (d.r2, 1); (d.r3, 1) ]) ]
      ~baseline
  in
  Alcotest.(check bool) "not ok" false report.ok;
  Alcotest.(check bool) "requirement issue" true
    (List.exists (fun (i : Fibbing.Verify.issue) -> i.kind = `Requirement) report.issues)

let test_verify_detects_collateral () =
  let d, net = demo_net () in
  let baseline = Fibbing.Verify.snapshot net (pfx "blue") in
  Igp.Network.inject_fake net
    {
      fake_id = "rogue";
      attachment = d.r2;
      attachment_cost = 1;
      prefix = pfx "blue";
      announced_cost = 0;
      forwarding = d.b;
    };
  let report = Fibbing.Verify.check net ~prefix:(pfx "blue") ~expected:[] ~baseline in
  Alcotest.(check bool) "not ok" false report.ok;
  Alcotest.(check bool) "collateral flagged" true
    (List.exists (fun (i : Fibbing.Verify.issue) -> i.kind = `Collateral) report.issues)

let test_verify_ok_baseline () =
  let _, net = demo_net () in
  let baseline = Fibbing.Verify.snapshot net (pfx "blue") in
  let report = Fibbing.Verify.check net ~prefix:(pfx "blue") ~expected:[] ~baseline in
  Alcotest.(check bool) "trivially ok" true report.ok

(* ---------- Controller ---------- *)

let stream = 131072.

let controller_sim ?config () =
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  let caps = Netsim.Link.capacities ~default:(11. *. 1024. *. 1024.) in
  List.iter
    (fun link -> Netsim.Link.set_link caps link (2.75 *. 1024. *. 1024.))
    [ (d.a, d.r1); (d.b, d.r2); (d.b, d.r3) ];
  let monitor =
    Netsim.Monitor.create ~poll_interval:2.0 ~threshold:0.85 ~clear_threshold:0.6
      ~alpha:0.8 caps
  in
  let sim = Netsim.Sim.create ~dt:0.5 ~monitor net caps in
  let controller = Fibbing.Controller.create ?config net in
  Fibbing.Controller.attach controller sim;
  (d, net, sim, controller)

let test_controller_reacts_to_surge () =
  let d, net, sim, controller = controller_sim () in
  for i = 0 to 30 do
    Netsim.Sim.add_flow sim
      (Netsim.Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:stream ())
  done;
  Netsim.Sim.run_until sim 10.;
  Alcotest.(check bool) "installed fakes" true
    (Fibbing.Controller.fake_count controller > 0);
  Alcotest.(check bool) "actions logged" true (Fibbing.Controller.actions controller <> []);
  let fib_b = Option.get (Igp.Network.fib net ~router:d.b (pfx "blue")) in
  Alcotest.(check (list int)) "B ECMP" [ d.r2; d.r3 ] (Igp.Fib.next_hops fib_b)

let test_controller_idle_when_uncongested () =
  let d, _, sim, controller = controller_sim () in
  Netsim.Sim.add_flow sim
    (Netsim.Flow.make ~id:0 ~src:d.a ~prefix:(pfx "blue") ~demand:stream ());
  Netsim.Sim.run_until sim 10.;
  Alcotest.(check int) "no lies" 0 (Fibbing.Controller.fake_count controller);
  Alcotest.(check bool) "no actions" true (Fibbing.Controller.actions controller = [])

let test_controller_withdraws_after_calm () =
  let config =
    { Fibbing.Controller.default_config with relax_after = 6.; cooldown = 2. }
  in
  let d, _, sim, controller = controller_sim ~config () in
  for i = 0 to 30 do
    Netsim.Sim.add_flow sim
      (Netsim.Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:stream ~duration:15. ())
  done;
  Netsim.Sim.run_until sim 12.;
  Alcotest.(check bool) "lies installed during surge" true
    (Fibbing.Controller.fake_count controller > 0);
  Netsim.Sim.run_until sim 40.;
  Alcotest.(check int) "lies withdrawn after calm" 0
    (Fibbing.Controller.fake_count controller)

let test_controller_requirements_exposed () =
  let d, _, sim, controller = controller_sim () in
  for i = 0 to 30 do
    Netsim.Sim.add_flow sim
      (Netsim.Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:stream ())
  done;
  Netsim.Sim.run_until sim 10.;
  match Fibbing.Controller.requirements controller (pfx "blue") with
  | Some reqs -> Alcotest.(check string) "prefix" "blue" (Igp.Prefix.to_string reqs.prefix)
  | None -> Alcotest.fail "no requirements recorded"

let test_controller_handles_anycast_prefix () =
  (* blue announced at both C and R4: the availability computation must
     credit candidate paths towards either egress, and the controller
     must still defuse a surge without touching the anycast routing. *)
  let d = T.demo () in
  let net = Igp.Network.create d.graph in
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.c ~cost:0;
  Igp.Network.announce_prefix net (pfx "blue") ~origin:d.r4 ~cost:0;
  let caps = Netsim.Link.capacities ~default:(11. *. 1024. *. 1024.) in
  List.iter
    (fun link -> Netsim.Link.set_link caps link (2.75 *. 1024. *. 1024.))
    [ (d.a, d.r1); (d.b, d.r2); (d.b, d.r3) ];
  let monitor =
    Netsim.Monitor.create ~poll_interval:2.0 ~threshold:0.85 ~clear_threshold:0.6
      ~alpha:0.8 caps
  in
  let sim = Netsim.Sim.create ~dt:0.5 ~monitor net caps in
  let controller = Fibbing.Controller.create net in
  Fibbing.Controller.attach controller sim;
  (* With anycast, A already splits {B, R1}; a 50-stream crowd from B
     saturates B-R2 and must trigger ECMP towards R3. *)
  for i = 0 to 49 do
    Netsim.Sim.add_flow sim
      (Netsim.Flow.make ~id:i ~src:d.b ~prefix:(pfx "blue") ~demand:stream ())
  done;
  Netsim.Sim.run_until sim 20.;
  Alcotest.(check bool) "reacted" true
    (Fibbing.Controller.fake_count controller > 0);
  let fib_b = Option.get (Igp.Network.fib net ~router:d.b (pfx "blue")) in
  Alcotest.(check (list int)) "B spread over R2 and R3" [ d.r2; d.r3 ]
    (Igp.Fib.next_hops fib_b);
  Alcotest.(check (list int)) "no starved flows" []
    (Netsim.Sim.unroutable_flows sim);
  (* Forwarding state stays safe under anycast. *)
  Alcotest.(check bool) "state safe" true
    (Fibbing.Transient.state_safe net ~prefix:(pfx "blue") = Ok ())

let test_controller_escalates_upstream () =
  (* The paper's second surge: B exhausted, the fix must land at A. *)
  let d, net, sim, controller = controller_sim () in
  for i = 0 to 30 do
    Netsim.Sim.add_flow sim
      (Netsim.Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:stream ())
  done;
  for i = 31 to 61 do
    Netsim.Sim.add_flow sim
      (Netsim.Flow.make ~id:i ~src:d.b ~prefix:(pfx "blue") ~demand:stream
         ~start_time:15. ())
  done;
  Netsim.Sim.run_until sim 30.;
  ignore controller;
  let fib_a = Option.get (Igp.Network.fib net ~router:d.a (pfx "blue")) in
  Alcotest.(check (list int)) "A now splits to B and R1" [ d.b; d.r1 ]
    (Igp.Fib.next_hops fib_a);
  (* and R1 gets the larger share *)
  let fractions = Igp.Fib.fractions fib_a in
  Alcotest.(check bool) "R1 gets more" true
    (List.assoc d.r1 fractions > List.assoc d.b fractions)

let test_controller_withdraw_all_then_fresh_cycle () =
  (* withdraw_all is a clean slate, not a shutdown: under continued
     congestion the next poll cycle reacts again from scratch. *)
  let config = { Fibbing.Controller.default_config with cooldown = 2. } in
  let d, net, sim, controller = controller_sim ~config () in
  for i = 0 to 30 do
    Netsim.Sim.add_flow sim
      (Netsim.Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:stream ())
  done;
  Netsim.Sim.run_until sim 10.;
  Alcotest.(check bool) "lies installed" true
    (Fibbing.Controller.fake_count controller > 0);
  Fibbing.Controller.withdraw_all controller;
  Alcotest.(check int) "all withdrawn" 0 (Fibbing.Controller.fake_count controller);
  Alcotest.(check int) "LSDB agrees" 0
    (Igp.Lsdb.fake_count (Igp.Network.lsdb net));
  Alcotest.(check bool) "requirements forgotten" true
    (Fibbing.Controller.requirements controller (pfx "blue") = None);
  (* The congestion has not gone anywhere: the controller must lie again. *)
  Netsim.Sim.run_until sim 25.;
  Alcotest.(check bool) "fresh reaction cycle" true
    (Fibbing.Controller.fake_count controller > 0);
  Alcotest.(check bool) "fresh requirements" true
    (Fibbing.Controller.requirements controller (pfx "blue") <> None)

let test_controller_withdraws_when_monitor_goes_silent () =
  (* The calm detector must treat a silent monitor as calm: if every
     sample disappears (SNMP blackout) right when the surge ends, the
     lies still come out after relax_after. *)
  let config =
    { Fibbing.Controller.default_config with relax_after = 6.; cooldown = 2. }
  in
  let d, net, sim, controller = controller_sim ~config () in
  for i = 0 to 30 do
    Netsim.Sim.add_flow sim
      (Netsim.Flow.make ~id:i ~src:d.a ~prefix:(pfx "blue") ~demand:stream ~duration:15. ())
  done;
  Netsim.Sim.run_until sim 12.;
  Alcotest.(check bool) "lies installed during surge" true
    (Fibbing.Controller.fake_count controller > 0);
  (match Netsim.Sim.monitor sim with
  | Some m -> Netsim.Monitor.mute m ~until:1e9
  | None -> Alcotest.fail "sim has a monitor");
  Netsim.Sim.run_until sim 40.;
  Alcotest.(check int) "lies withdrawn despite silence" 0
    (Fibbing.Controller.fake_count controller);
  Alcotest.(check int) "LSDB clean" 0 (Igp.Lsdb.fake_count (Igp.Network.lsdb net))

let test_controller_backs_off_when_ineffective () =
  (* A line topology has no alternate path: every reaction is free to
     act but can change nothing, so the backoff must kick in and the
     reaction rate must fall well below the poll rate. *)
  let g = T.line ~n:3 in
  let net = Igp.Network.create g in
  Igp.Network.announce_prefix net (pfx "sink") ~origin:2 ~cost:0;
  let caps = Netsim.Link.capacities ~default:10. in
  let monitor =
    Netsim.Monitor.create ~poll_interval:2.0 ~threshold:0.85 ~clear_threshold:0.6
      ~alpha:1.0 caps
  in
  let sim = Netsim.Sim.create ~dt:0.5 ~monitor net caps in
  let config =
    { Fibbing.Controller.default_config with cooldown = 2.; max_backoff = 16. }
  in
  let controller = Fibbing.Controller.create ~config net in
  Fibbing.Controller.attach controller sim;
  (* Permanent unfixable overload on the only path. *)
  Netsim.Sim.add_flow sim
    (Netsim.Flow.make ~id:0 ~src:0 ~prefix:(pfx "sink") ~demand:20. ());
  Netsim.Sim.run_until sim 60.;
  Alcotest.(check bool) "backoff engaged" true
    (Fibbing.Controller.consecutive_failures controller > 0);
  let polls = int_of_float (60. /. 2.) in
  Alcotest.(check bool)
    (Printf.sprintf "reactions (%d) rate-limited well below polls (%d)"
       (List.length (Fibbing.Controller.actions controller))
       polls)
    true
    (List.length (Fibbing.Controller.actions controller) < polls / 2);
  Alcotest.(check int) "and no lies were installed" 0
    (Fibbing.Controller.fake_count controller)

(* ---------- Budget ---------- *)

let split nh fraction = { R.next_hop = nh; fraction }

let test_budget_minimum () =
  let requests =
    [
      { Fibbing.Budget.router = 0; splits = [ split 1 0.5; split 2 0.5 ] };
      { Fibbing.Budget.router = 3; splits = [ split 4 0.3; split 5 0.7 ] };
    ]
  in
  Alcotest.(check int) "minimum" 4 (Fibbing.Budget.minimum_entries requests);
  Alcotest.(check bool) "below minimum rejected" true
    (try ignore (Fibbing.Budget.allocate ~budget:3 requests); false
     with Invalid_argument _ -> true)

let test_budget_spends_where_it_helps () =
  (* Router 0 wants 50/50 (exact with 2 entries); router 1 wants
     0.28/0.72 (needs many). Extra entries must flow to router 1. *)
  let requests =
    [
      { Fibbing.Budget.router = 0; splits = [ split 10 0.5; split 11 0.5 ] };
      { Fibbing.Budget.router = 1; splits = [ split 12 0.28; split 13 0.72 ] };
    ]
  in
  let a = Fibbing.Budget.allocate ~budget:12 requests in
  let entries router =
    List.fold_left (fun acc (_, m) -> acc + m) 0 (List.assoc router a.weighted)
  in
  Alcotest.(check int) "router 0 stays at 2" 2 (entries 0);
  Alcotest.(check bool)
    (Printf.sprintf "router 1 gets the rest (%d)" (entries 1))
    true
    (entries 1 > 2);
  Alcotest.(check (float 1e-9)) "router 0 exact" 0.
    (List.assoc 0 a.per_router_error);
  Alcotest.(check bool) "budget respected" true (a.entries_used <= 12)

let test_budget_stops_when_nothing_improves () =
  (* Two exactly-satisfiable routers: any budget beyond the minimum is
     left unspent. *)
  let requests =
    [
      { Fibbing.Budget.router = 0; splits = [ split 1 0.5; split 2 0.5 ] };
      { Fibbing.Budget.router = 3; splits = [ split 4 (1. /. 3.); split 5 (2. /. 3.) ] };
    ]
  in
  let a = Fibbing.Budget.allocate ~budget:100 requests in
  Alcotest.(check int) "minimal spend" 5 a.entries_used;
  Alcotest.(check (float 1e-9)) "zero error" 0. a.max_error

let test_budget_monotone_in_budget () =
  let requests =
    [
      { Fibbing.Budget.router = 0; splits = [ split 1 0.28; split 2 0.72 ] };
      { Fibbing.Budget.router = 3; splits = [ split 4 0.41; split 5 0.59 ] };
    ]
  in
  let errors =
    List.map
      (fun budget -> (Fibbing.Budget.allocate ~budget requests).max_error)
      [ 4; 6; 10; 20; 40 ]
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a +. 1e-12 >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "error non-increasing in budget" true (non_increasing errors)

let test_budget_compiles_via_pin () =
  (* The allocation plugs into the hybrid compiler as explicit
     multiplicities. *)
  let d, net = demo_net () in
  let requests =
    [
      { Fibbing.Budget.router = d.a;
        splits = [ split d.b (1. /. 3.); split d.r1 (2. /. 3.) ] };
    ]
  in
  let allocation = Fibbing.Budget.allocate ~budget:4 requests in
  let empty = { R.prefix = pfx "blue"; routers = [] } in
  match
    Fibbing.Augmentation.hybrid_plan ~pin:allocation.weighted net empty
  with
  | Error e -> Alcotest.failf "hybrid_plan: %s" e
  | Ok plan ->
    Fibbing.Augmentation.apply net plan;
    let fib = Option.get (Igp.Network.fib net ~router:d.a (pfx "blue")) in
    Alcotest.(check (list (pair int int))) "1:2 installed"
      [ (d.b, 1); (d.r1, 2) ]
      (Igp.Fib.weights fib)

(* ---------- Transient safety ---------- *)

let test_transient_baseline_safe () =
  let _, net = demo_net () in
  Alcotest.(check bool) "IGP state safe" true
    (Fibbing.Transient.state_safe net ~prefix:(pfx "blue") = Ok ())

let test_transient_detects_loop () =
  let d, net = demo_net () in
  (* Two mutually-attracting cheap lies: A -> B and B -> A. *)
  let cheap ~id ~at ~fwd : Igp.Lsa.fake =
    { fake_id = id; attachment = at; attachment_cost = 1; prefix = pfx "blue";
      announced_cost = 0; forwarding = fwd }
  in
  Igp.Network.inject_fake net (cheap ~id:"l1" ~at:d.a ~fwd:d.b);
  Igp.Network.inject_fake net (cheap ~id:"l2" ~at:d.b ~fwd:d.a);
  match Fibbing.Transient.state_safe net ~prefix:(pfx "blue") with
  | Error reason ->
    Alcotest.(check bool) "mentions loop" true
      (String.length reason > 0)
  | Ok () -> Alcotest.fail "loop not detected"

(* The pinning scenario: R3 -> B override plus pins at B, A, R1.
   Installing R3's lie FIRST loops (R3 points to B while B still points
   through R2... actually B is captured by R3's cheap lie and forwards
   to R3 -> loop). check_order must flag it; safe_order must find a
   pin-first order; apply_safely must leave a verified state. *)
let r3_via_b_plan net =
  let reqs =
    Fibbing.Requirements.make ~prefix:(pfx "blue")
      [ (Netgraph.Graph.find_node_exn (Igp.Network.graph net) "R3",
         [ (Netgraph.Graph.find_node_exn (Igp.Network.graph net) "B", 1.0) ]) ]
  in
  match A.compile net reqs with
  | Ok plan -> plan
  | Error e -> Alcotest.failf "compile failed: %s" e

let test_transient_unsafe_order_flagged () =
  let _, net = demo_net () in
  let plan = r3_via_b_plan net in
  (* Order the R3 lie first: B (not yet pinned) is captured by it and
     forwards towards R3 while R3 forwards to B. *)
  let r3_first =
    List.sort
      (fun (a : Igp.Lsa.fake) (b : Igp.Lsa.fake) ->
        let key (f : Igp.Lsa.fake) =
          if String.length f.fake_id >= 2 && String.sub f.fake_id 0 2 = "fi" then 0 else 1
        in
        ignore (key a, key b);
        (* R3's fake forwards to B; pins forward elsewhere. Put R3's first. *)
        compare
          (b.forwarding = Netgraph.Graph.find_node_exn (Igp.Network.graph net) "B",
           b.fake_id)
          (a.forwarding = Netgraph.Graph.find_node_exn (Igp.Network.graph net) "B",
           a.fake_id))
      plan.fakes
  in
  match Fibbing.Transient.check_order net ~prefix:(pfx "blue") r3_first with
  | Error v ->
    Alcotest.(check bool) "violation at an early step" true (v.step >= 1)
  | Ok () ->
    (* If even this order is safe, the transient checker must agree with
       a full simulation — acceptable but unexpected; flag it. *)
    Alcotest.fail "expected the R3-first order to be transiently unsafe"

let test_transient_safe_order_found () =
  let _, net = demo_net () in
  let plan = r3_via_b_plan net in
  match Fibbing.Transient.safe_order net plan with
  | Error e -> Alcotest.failf "no safe order: %s" e
  | Ok order ->
    Alcotest.(check int) "all fakes ordered" (List.length plan.fakes)
      (List.length order);
    Alcotest.(check bool) "order verifies step by step" true
      (Fibbing.Transient.check_order net ~prefix:(pfx "blue") order = Ok ())

let test_transient_apply_and_revert_safely () =
  let d, net = demo_net () in
  let baseline = Fibbing.Verify.snapshot net (pfx "blue") in
  let plan = r3_via_b_plan net in
  (match Fibbing.Transient.apply_safely net plan with
  | Ok () -> ()
  | Error e -> Alcotest.failf "apply_safely: %s" e);
  let fib_r3 = Option.get (Igp.Network.fib net ~router:d.r3 (pfx "blue")) in
  Alcotest.(check (list int)) "requirement holds" [ d.b ] (Igp.Fib.next_hops fib_r3);
  (match Fibbing.Transient.revert_safely net plan with
  | Ok () -> ()
  | Error e -> Alcotest.failf "revert_safely: %s" e);
  Alcotest.(check int) "all lies gone" 0 (List.length (Igp.Network.fakes net));
  let report = Fibbing.Verify.check net ~prefix:(pfx "blue") ~expected:[] ~baseline in
  Alcotest.(check bool) "back to baseline" true report.ok

let test_transient_safe_removal_order_found () =
  let _, net = demo_net () in
  let plan = r3_via_b_plan net in
  (match Fibbing.Transient.apply_safely net plan with
  | Ok () -> ()
  | Error e -> Alcotest.failf "apply_safely: %s" e);
  match Fibbing.Transient.safe_removal_order net plan with
  | Error e -> Alcotest.failf "no safe removal order: %s" e
  | Ok order ->
    Alcotest.(check int) "all fakes ordered" (List.length plan.fakes)
      (List.length order);
    (* Replay the removal on a scratch clone, checking safety after
       every single retraction — each intermediate state carries a
       suffix of the lie and must neither loop nor blackhole. *)
    let scratch = Igp.Network.clone net in
    List.iter
      (fun (f : Igp.Lsa.fake) ->
        Igp.Network.retract_fake scratch ~fake_id:f.fake_id;
        match Fibbing.Transient.state_safe scratch ~prefix:(pfx "blue") with
        | Ok () -> ()
        | Error reason ->
          Alcotest.failf "unsafe after retracting %s: %s" f.fake_id reason)
      order;
    Alcotest.(check int) "everything retracted" 0
      (List.length (Igp.Network.fakes scratch))

let test_transient_removal_rejects_unsafe_start () =
  (* When the installed state is already broken (extra loop-forming lies
     the plan does not know about), no removal order of the plan's own
     fakes starts from a safe state — the search must report it, not
     fabricate an order. *)
  let d, net = demo_net () in
  let plan = r3_via_b_plan net in
  Fibbing.Augmentation.apply net plan;
  let cheap ~id ~at ~fwd : Igp.Lsa.fake =
    { fake_id = id; attachment = at; attachment_cost = 1; prefix = pfx "blue";
      announced_cost = 0; forwarding = fwd }
  in
  Igp.Network.inject_fake net (cheap ~id:"x1" ~at:d.a ~fwd:d.b);
  Igp.Network.inject_fake net (cheap ~id:"x2" ~at:d.b ~fwd:d.a);
  match Fibbing.Transient.safe_removal_order net plan with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected the broken start state to be rejected"

(* Property: for every compiled single-router even-ECMP plan on random
   topologies, safe_order succeeds and its every prefix state is safe. *)
let prop_transient_safe_order_on_random =
  QCheck.Test.make ~name:"safe installation order exists" ~count:30
    QCheck.(pair (int_range 0 100000) (int_range 6 14))
    (fun (seed, n) ->
      let prng = Kit.Prng.create ~seed in
      let g = T.random prng ~n ~extra_edges:n ~max_weight:3 in
      let announcer = Kit.Prng.int prng n in
      let net = Igp.Network.create g in
      Igp.Network.announce_prefix net (pfx "p") ~origin:announcer ~cost:0;
      let router =
        let r = ref (Kit.Prng.int prng n) in
        while !r = announcer do
          r := Kit.Prng.int prng n
        done;
        !r
      in
      let dist v = Igp.Network.distance net ~router:v (pfx "p") in
      match dist router with
      | None -> true
      | Some d_r ->
        let safe =
          List.filter
            (fun (v, _) ->
              match dist v with Some dv -> dv < d_r | None -> false)
            (G.succ g router)
          |> List.map fst
        in
        if safe = [] then true
        else begin
          let reqs = R.even ~prefix:(pfx "p") ~router (List.filteri (fun i _ -> i < 3) safe) in
          match A.compile net reqs with
          | Error _ -> true
          | Ok plan ->
            (match Fibbing.Transient.safe_order net plan with
            | Ok order -> Fibbing.Transient.check_order net ~prefix:(pfx "p") order = Ok ()
            | Error _ -> false)
        end)

(* The mirror property: once a compiled plan is safely installed, a safe
   removal order exists and replaying it keeps every intermediate state
   safe down to the lie-free network. *)
let prop_transient_safe_removal_on_random =
  QCheck.Test.make ~name:"safe removal order exists" ~count:30
    QCheck.(pair (int_range 0 100000) (int_range 6 14))
    (fun (seed, n) ->
      let prng = Kit.Prng.create ~seed in
      let g = T.random prng ~n ~extra_edges:n ~max_weight:3 in
      let announcer = Kit.Prng.int prng n in
      let net = Igp.Network.create g in
      Igp.Network.announce_prefix net (pfx "p") ~origin:announcer ~cost:0;
      let router =
        let r = ref (Kit.Prng.int prng n) in
        while !r = announcer do
          r := Kit.Prng.int prng n
        done;
        !r
      in
      let dist v = Igp.Network.distance net ~router:v (pfx "p") in
      match dist router with
      | None -> true
      | Some d_r ->
        let safe =
          List.filter
            (fun (v, _) ->
              match dist v with Some dv -> dv < d_r | None -> false)
            (G.succ g router)
          |> List.map fst
        in
        if safe = [] then true
        else begin
          let reqs = R.even ~prefix:(pfx "p") ~router (List.filteri (fun i _ -> i < 3) safe) in
          match A.compile net reqs with
          | Error _ -> true
          | Ok plan ->
            (match Fibbing.Transient.apply_safely net plan with
            | Error _ -> true
            | Ok () ->
              (match Fibbing.Transient.safe_removal_order net plan with
              | Error e ->
                QCheck.Test.fail_reportf "no removal order (seed %d): %s" seed e
              | Ok order ->
                let scratch = Igp.Network.clone net in
                List.for_all
                  (fun (f : Igp.Lsa.fake) ->
                    Igp.Network.retract_fake scratch ~fake_id:f.fake_id;
                    Fibbing.Transient.state_safe scratch ~prefix:(pfx "p") = Ok ())
                  order
                && Igp.Network.fakes scratch = []))
        end)

(* ---------- Audit ---------- *)

let test_audit_empty () =
  let _, net = demo_net () in
  let audit = Fibbing.Audit.run net in
  Alcotest.(check int) "no fakes" 0 audit.total_fakes;
  Alcotest.(check int) "no bytes" 0 audit.wire_bytes;
  Alcotest.(check (list string)) "no prefixes" [] (List.map Igp.Prefix.to_string audit.prefixes)

let test_audit_roundtrips_demo_plan () =
  let d, net = demo_net () in
  let reqs =
    R.make ~prefix:(pfx "blue")
      [
        (d.b, [ (d.r2, 0.5); (d.r3, 0.5) ]);
        (d.a, [ (d.b, 1. /. 3.); (d.r1, 2. /. 3.) ]);
      ]
  in
  let plan = ok_exn (A.compile ~max_entries:4 net reqs) in
  A.apply net plan;
  let audit = Fibbing.Audit.run net in
  Alcotest.(check int) "three fakes" 3 audit.total_fakes;
  Alcotest.(check (list string)) "one prefix" [ "blue" ] (List.map Igp.Prefix.to_string audit.prefixes);
  Alcotest.(check bool) "LSDB overhead accounted" true (audit.wire_bytes > 0);
  (* The audit recovers the plan's expected weights at each router. *)
  List.iter
    (fun (router, expected_weights) ->
      match
        List.find_opt
          (fun (ra : Fibbing.Audit.router_audit) -> ra.router = router)
          audit.per_router
      with
      | Some ra ->
        Alcotest.(check (list (pair int int))) "weights recovered"
          (List.sort compare expected_weights)
          (List.sort compare ra.weights);
        Alcotest.(check bool) "extension detected" true
          (ra.mode = Fibbing.Audit.Extends)
      | None -> Alcotest.fail "router missing from audit")
    plan.expected

let test_audit_detects_override () =
  let d, net = demo_net () in
  let reqs = R.make ~prefix:(pfx "blue") [ (d.b, [ (d.r3, 1.0) ]) ] in
  let plan = ok_exn (A.compile net reqs) in
  A.apply net plan;
  let audit = Fibbing.Audit.run net in
  match
    List.find_opt
      (fun (ra : Fibbing.Audit.router_audit) -> ra.router = d.b)
      audit.per_router
  with
  | Some ra ->
    Alcotest.(check bool) "override detected" true
      (ra.mode = Fibbing.Audit.Overrides);
    Alcotest.(check bool) "lied below honest" true
      (ra.lied_distance < ra.honest_distance)
  | None -> Alcotest.fail "B missing from audit"

(* ---------- Session (the controller's OSPF adjacency) ---------- *)

let demo_fake d ~id : Igp.Lsa.fake =
  {
    fake_id = id;
    attachment = d.Netgraph.Topologies.b;
    attachment_cost = 1;
    prefix = pfx "blue";
    announced_cost = 1;
    forwarding = d.Netgraph.Topologies.r3;
  }

let test_session_handshake () =
  let d, net = demo_net () in
  ignore d;
  let s = Fibbing.Session.create net ~attachment:d.r3 in
  Alcotest.(check bool) "starts Down" true (Fibbing.Session.state s = Down);
  Fibbing.Session.establish s ~now:0.;
  Alcotest.(check bool) "reaches Full" true (Fibbing.Session.state s = Full);
  Alcotest.(check bool) "sent hellos" true (Fibbing.Session.hellos_sent s >= 6)

let test_session_refuses_injection_before_full () =
  let d, net = demo_net () in
  let s = Fibbing.Session.create net ~attachment:d.r3 in
  match Fibbing.Session.inject s (demo_fake d ~id:"early") with
  | Error reason -> Alcotest.(check bool) "refused" true (String.length reason > 0)
  | Ok () -> Alcotest.fail "injection must require Full"

let test_session_injects_when_full () =
  let d, net = demo_net () in
  let s = Fibbing.Session.create net ~attachment:d.r3 in
  Fibbing.Session.establish s ~now:0.;
  (match Fibbing.Session.inject s (demo_fake d ~id:"fB") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "inject: %s" e);
  Alcotest.(check (list string)) "tracked" [ "fB" ] (Fibbing.Session.injected s);
  let fib = Option.get (Igp.Network.fib net ~router:d.b (pfx "blue")) in
  Alcotest.(check (list int)) "ECMP via session" [ d.r2; d.r3 ]
    (Igp.Fib.next_hops fib)

let test_session_death_purges_lies () =
  let d, net = demo_net () in
  let s = Fibbing.Session.create net ~attachment:d.r3 in
  Fibbing.Session.establish s ~now:0.;
  (match Fibbing.Session.inject s (demo_fake d ~id:"fB") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "inject: %s" e);
  (* The controller host dies: no more hellos answered. *)
  Fibbing.Session.set_peer_reachable s false;
  Fibbing.Session.tick s ~now:200.;
  Alcotest.(check bool) "back to Down" true (Fibbing.Session.state s = Down);
  Alcotest.(check (list string)) "lies purged" [] (Fibbing.Session.injected s);
  Alcotest.(check int) "network clean" 0 (List.length (Igp.Network.fakes net));
  let fib = Option.get (Igp.Network.fib net ~router:d.b (pfx "blue")) in
  Alcotest.(check (list int)) "plain IGP restored" [ d.r2 ] (Igp.Fib.next_hops fib)

let test_session_survives_with_keepalives () =
  let d, net = demo_net () in
  let s = Fibbing.Session.create net ~attachment:d.r3 in
  Fibbing.Session.establish s ~now:0.;
  (match Fibbing.Session.inject s (demo_fake d ~id:"fB") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "inject: %s" e);
  (* Regular ticks every hello interval: session stays Full for hours. *)
  for i = 1 to 360 do
    Fibbing.Session.tick s ~now:(100. +. (float_of_int i *. 10.))
  done;
  Alcotest.(check bool) "still Full" true (Fibbing.Session.state s = Full);
  Alcotest.(check int) "lie still installed" 1 (List.length (Igp.Network.fakes net))

let test_session_reconnect () =
  let d, net = demo_net () in
  let s = Fibbing.Session.create net ~attachment:d.r3 in
  Fibbing.Session.establish s ~now:0.;
  Fibbing.Session.set_peer_reachable s false;
  Fibbing.Session.tick s ~now:200.;
  Alcotest.(check bool) "down" true (Fibbing.Session.state s = Down);
  Fibbing.Session.set_peer_reachable s true;
  Fibbing.Session.establish s ~now:300.;
  Alcotest.(check bool) "full again" true (Fibbing.Session.state s = Full);
  match Fibbing.Session.inject s (demo_fake d ~id:"again") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "re-inject: %s" e

let test_session_validation () =
  let _, net = demo_net () in
  Alcotest.(check bool) "dead <= hello rejected" true
    (try
       ignore (Fibbing.Session.create ~hello_interval:10. ~dead_interval:5. net
                 ~attachment:0);
       false
     with Invalid_argument _ -> true)

(* Property: whatever the controller does under random surges, the
   forwarding state it leaves after every poll is loop- and
   blackhole-free. This is the live-network version of the transient
   guarantees. *)
let prop_controller_keeps_state_safe =
  QCheck.Test.make ~name:"controller never leaves unsafe state" ~count:15
    QCheck.(pair (int_range 0 100000) (int_range 6 12))
    (fun (seed, n) ->
      let prng = Kit.Prng.create ~seed in
      let g = T.random prng ~n ~extra_edges:n ~max_weight:3 in
      let announcer = Kit.Prng.int prng n in
      let net = Igp.Network.create g in
      Igp.Network.announce_prefix net (pfx "p") ~origin:announcer ~cost:0;
      let caps = Netsim.Link.capacities ~default:10. in
      let monitor = Netsim.Monitor.create ~poll_interval:2.0 ~alpha:0.9 caps in
      let sim = Netsim.Sim.create ~dt:0.5 ~monitor net caps in
      let controller = Fibbing.Controller.create net in
      Fibbing.Controller.attach controller sim;
      let safe = ref true in
      Netsim.Sim.on_step sim (fun _ ->
          if Fibbing.Transient.state_safe net ~prefix:(pfx "p") <> Ok () then
            safe := false);
      (* A surge of random flows from random ingresses. *)
      let flow_count = 5 + Kit.Prng.int prng 15 in
      for i = 0 to flow_count - 1 do
        let src =
          let s = ref (Kit.Prng.int prng n) in
          while !s = announcer do
            s := Kit.Prng.int prng n
          done;
          !s
        in
        Netsim.Sim.add_flow sim
          (Netsim.Flow.make ~id:i ~src ~prefix:(pfx "p")
             ~demand:(2. +. Kit.Prng.float prng 6.)
             ~start_time:(Kit.Prng.float prng 10.) ())
      done;
      Netsim.Sim.run_until sim 25.;
      !safe)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "fibbing"
    [
      ( "requirements",
        [
          Alcotest.test_case "valid" `Quick test_requirements_validate_ok;
          Alcotest.test_case "even helper" `Quick test_requirements_even;
          Alcotest.test_case "non-neighbor" `Quick test_requirements_reject_non_neighbor;
          Alcotest.test_case "bad fractions" `Quick test_requirements_reject_bad_fractions;
          Alcotest.test_case "announcer" `Quick test_requirements_reject_announcer;
          Alcotest.test_case "unknown prefix" `Quick test_requirements_reject_unknown_prefix;
          Alcotest.test_case "duplicates" `Quick test_requirements_reject_duplicates;
        ] );
      ( "splitting",
        [
          Alcotest.test_case "demo ratio" `Quick test_splitting_demo_ratio;
          Alcotest.test_case "error metric" `Quick test_splitting_error_metric;
        ] );
      ( "extension",
        [
          Alcotest.test_case "reproduces demo fakes (Fig 1c)" `Quick
            test_extension_reproduces_demo_fakes;
          Alcotest.test_case "apply/revert" `Quick test_extension_apply_changes_fibs;
          Alcotest.test_case "cannot remove hop" `Quick test_extension_cannot_remove_next_hop;
          Alcotest.test_case "clean state required" `Quick test_extension_requires_clean_state;
        ] );
      ( "override",
        [
          Alcotest.test_case "replaces next hop" `Quick test_override_replaces_next_hop;
          Alcotest.test_case "costs undercut" `Quick test_override_costs_below_current;
          Alcotest.test_case "uneven" `Quick test_override_uneven;
        ] );
      ( "compile",
        [
          Alcotest.test_case "demo full" `Quick test_compile_demo_full;
          Alcotest.test_case "fallback to override" `Quick test_compile_falls_back_to_override;
          Alcotest.test_case "surgical" `Quick test_compile_is_surgical;
          Alcotest.test_case "repairs collateral" `Quick test_compile_repairs_collateral;
          Alcotest.test_case "impossible undercut" `Quick
            test_compile_reports_impossible_undercut;
          Alcotest.test_case "rejects invalid" `Quick test_compile_rejects_invalid;
        ] );
      qsuite "compile-props" [ prop_compile_verified_on_random ];
      ( "merger",
        [
          Alcotest.test_case "keeps needed fake" `Quick test_merger_keeps_needed_fake;
          Alcotest.test_case "preserves verification" `Quick test_merger_preserves_verification;
          Alcotest.test_case "drops inert fake" `Quick test_merger_drops_inert_fake;
        ] );
      ( "verify",
        [
          Alcotest.test_case "requirement miss" `Quick test_verify_detects_requirement_miss;
          Alcotest.test_case "collateral" `Quick test_verify_detects_collateral;
          Alcotest.test_case "baseline ok" `Quick test_verify_ok_baseline;
        ] );
      ( "budget",
        [
          Alcotest.test_case "minimum" `Quick test_budget_minimum;
          Alcotest.test_case "spends where it helps" `Quick
            test_budget_spends_where_it_helps;
          Alcotest.test_case "stops when satisfied" `Quick
            test_budget_stops_when_nothing_improves;
          Alcotest.test_case "monotone in budget" `Quick test_budget_monotone_in_budget;
          Alcotest.test_case "compiles via pin" `Quick test_budget_compiles_via_pin;
        ] );
      ( "transient",
        [
          Alcotest.test_case "baseline safe" `Quick test_transient_baseline_safe;
          Alcotest.test_case "loop detected" `Quick test_transient_detects_loop;
          Alcotest.test_case "unsafe order flagged" `Quick
            test_transient_unsafe_order_flagged;
          Alcotest.test_case "safe order found" `Quick test_transient_safe_order_found;
          Alcotest.test_case "apply/revert safely" `Quick
            test_transient_apply_and_revert_safely;
          Alcotest.test_case "safe removal order found" `Quick
            test_transient_safe_removal_order_found;
          Alcotest.test_case "removal rejects unsafe start" `Quick
            test_transient_removal_rejects_unsafe_start;
        ] );
      qsuite "transient-props"
        [
          prop_transient_safe_order_on_random;
          prop_transient_safe_removal_on_random;
          prop_controller_keeps_state_safe;
        ];
      ( "audit",
        [
          Alcotest.test_case "empty" `Quick test_audit_empty;
          Alcotest.test_case "roundtrips demo plan" `Quick
            test_audit_roundtrips_demo_plan;
          Alcotest.test_case "detects override" `Quick test_audit_detects_override;
        ] );
      ( "session",
        [
          Alcotest.test_case "handshake" `Quick test_session_handshake;
          Alcotest.test_case "refuses before Full" `Quick
            test_session_refuses_injection_before_full;
          Alcotest.test_case "injects when Full" `Quick test_session_injects_when_full;
          Alcotest.test_case "death purges lies" `Quick test_session_death_purges_lies;
          Alcotest.test_case "keepalives" `Quick test_session_survives_with_keepalives;
          Alcotest.test_case "reconnect" `Quick test_session_reconnect;
          Alcotest.test_case "validation" `Quick test_session_validation;
        ] );
      ( "controller",
        [
          Alcotest.test_case "reacts to surge" `Quick test_controller_reacts_to_surge;
          Alcotest.test_case "idle when calm" `Quick test_controller_idle_when_uncongested;
          Alcotest.test_case "withdraws after calm" `Quick test_controller_withdraws_after_calm;
          Alcotest.test_case "requirements exposed" `Quick test_controller_requirements_exposed;
          Alcotest.test_case "anycast prefix" `Quick test_controller_handles_anycast_prefix;
          Alcotest.test_case "escalates upstream (2nd surge)" `Quick
            test_controller_escalates_upstream;
          Alcotest.test_case "withdraw_all then fresh cycle" `Quick
            test_controller_withdraw_all_then_fresh_cycle;
          Alcotest.test_case "withdraws when monitor silent" `Quick
            test_controller_withdraws_when_monitor_goes_silent;
          Alcotest.test_case "backs off when ineffective" `Quick
            test_controller_backs_off_when_ineffective;
        ] );
    ]
