(* Adaptive-bitrate clients on a flash crowd: beyond avoiding stalls,
   Fibbing keeps ABR players on the high rungs of the bitrate ladder.
   Unlike the fixed-rate demo streams, ABR sessions download chunks at
   whatever rate the path offers (modelled as a 1 MB/s burst demand) and
   pick their bitrate from the measured throughput.

   Run with: dune exec examples/adaptive_streaming.exe *)

module Demo = Scenarios.Demo

let burst_demand = 1024. *. 1024. (* chunk downloads run at link speed *)

let video_duration = 300.

(* A gentler crowd than Fig. 2 (1 + 8 + 8 sessions) so that the ladder
   contrast is visible: with Fibbing the network sustains the top rung
   for everyone; without it the crowd is crammed onto B-R2. *)
let load_abr_workload (d : Demo.t) =
  let flow ~id ~src ~start_time =
    Netsim.Flow.make ~id ~src ~prefix:Demo.prefix ~demand:burst_demand
      ~start_time ~duration:video_duration ()
  in
  let flows =
    flow ~id:0 ~src:d.topology.a ~start_time:0.
    :: (List.init 8 (fun i -> flow ~id:(1 + i) ~src:d.topology.a ~start_time:15.)
       @ List.init 8 (fun i -> flow ~id:(9 + i) ~src:d.topology.b ~start_time:35.))
  in
  List.iter (Netsim.Sim.add_flow d.sim) flows;
  flows

let run ?rate_model ~fibbing () =
  let d = Demo.make ~fibbing ?rate_model () in
  let flows = load_abr_workload d in
  Demo.run d ~until:55.;
  (d, flows)

let abr_summary d flows =
  let results =
    List.map (fun flow -> Video.Abr.of_flow d.Demo.sim ~dt:d.Demo.dt flow) flows
  in
  let n = float_of_int (List.length results) in
  let mean f = List.fold_left (fun acc r -> acc +. f r) 0. results /. n in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0. results in
  ( mean (fun (r : Video.Abr.result) -> r.mean_bitrate),
    total (fun (r : Video.Abr.result) -> float_of_int r.stall_count),
    mean (fun (r : Video.Abr.result) -> r.time_at_top),
    mean (fun (r : Video.Abr.result) -> float_of_int r.switches) )

let print_row label d flows =
  let mean_bitrate, stalls, top_time, switches = abr_summary d flows in
  Format.printf "%-24s %14.0f %8.0f %12.1f %10.1f@." label mean_bitrate stalls
    top_time switches

let () =
  let ladder = Video.Abr.default_config.ladder in
  Format.printf
    "ABR clients (1 at t=0, +8 at t=15 via A, +8 at t=35 via B).@.\
     Ladder: %s bytes/s; sessions download at up to %.0f kB/s.@.@."
    (String.concat " / "
       (Array.to_list (Array.map (fun r -> Printf.sprintf "%.0f" r) ladder)))
    (burst_demand /. 1024.);
  Format.printf "%-24s %14s %8s %12s %10s@." "scenario" "mean bitrate" "stalls"
    "s at top" "switches";

  let d_on, flows_on = run ~fibbing:true () in
  print_row "fibbing ON" d_on flows_on;
  let d_off, flows_off = run ~fibbing:false () in
  print_row "fibbing OFF" d_off flows_off;

  Format.printf "@.Same comparison under AIMD (TCP-like) rate dynamics:@.@.";
  Format.printf "%-24s %14s %8s %12s %10s@." "scenario" "mean bitrate" "stalls"
    "s at top" "switches";
  let d_on_aimd, flows_on_aimd =
    run ~rate_model:(Netsim.Sim.Aimd (Netsim.Aimd.create ())) ~fibbing:true ()
  in
  print_row "fibbing ON (AIMD)" d_on_aimd flows_on_aimd;
  let d_off_aimd, flows_off_aimd =
    run ~rate_model:(Netsim.Sim.Aimd (Netsim.Aimd.create ())) ~fibbing:false ()
  in
  print_row "fibbing OFF (AIMD)" d_off_aimd flows_off_aimd;

  Format.printf
    "@.Without the controller, players survive by dropping down the@.\
     ladder (low mean bitrate, little time at the top rung); with it,@.\
     the same network sustains the top of the ladder. The AIMD model@.\
     shows the identical ordering with slower convergence after each@.\
     surge.@."
