(* A day in the life of a small CDN PoP: Zipf background traffic, a
   social-network flash crowd on one video, the Fibbing controller's
   full lifecycle (react, hold, withdraw when calm), and the latency
   view of decongestion.

   Run with: dune exec examples/cdn_day.exe *)

module Demo = Scenarios.Demo

let horizon = 400.

let () =
  (* Shorter calm window so the withdrawal is visible within the run. *)
  let controller_config =
    { Fibbing.Controller.default_config with relax_after = 45. }
  in
  let d = Demo.make ~fibbing:true ~controller_config () in

  let prng = Kit.Prng.create ~seed:20160822 in
  let catalog =
    Video.Catalog.catalog ~size:50 ~rate:Demo.stream_rate ~duration:120.
  in
  (* 12x the base rate for a minute: ~40 concurrent surge streams at the
     peak — more than any single path carries, less than the network's
     three bottleneck links combined. *)
  let surge =
    { Video.Catalog.at = 100.; length = 60.; boost = 12.; item_rank = 1 }
  in
  let flows =
    Video.Catalog.day prng ~src:d.topology.a ~prefix:Demo.prefix ~catalog
      ~base_rate_per_s:0.05 ~horizon ~surges:[ surge ] ~first_id:0
  in
  List.iter (Netsim.Sim.add_flow d.sim) flows;
  Format.printf
    "Workload: %d sessions over %.0f s (Zipf background at 0.05/s, a 12x@.\
     surge on the top video during [100 s, 160 s]).@.@."
    (List.length flows) horizon;

  (* Sample the network state every 20 s. *)
  Format.printf "%8s %10s %12s %12s %10s %8s@." "time[s]" "active" "B-R2 util"
    "B-R3 util" "delay[ms]" "lies";
  let b_r2 = (d.topology.b, d.topology.r2) in
  let b_r3 = (d.topology.b, d.topology.r3) in
  let rec advance time =
    if time <= horizon then begin
      Demo.run d ~until:time;
      let util link =
        Option.value ~default:0.
          (List.assoc_opt link (Netsim.Sim.current_link_rates d.sim))
        /. Demo.link_capacity
      in
      Format.printf "%8.0f %10d %12.2f %12.2f %10.1f %8d@." time
        (List.length (Netsim.Sim.active_flows d.sim))
        (util b_r2) (util b_r3)
        (Netsim.Latency.mean_flow_delay_ms d.sim)
        (List.length (Igp.Network.fakes d.net));
      advance (time +. 20.)
    end
  in
  advance 20.;

  (match d.controller with
  | Some c ->
    Format.printf "@.Controller log:@.";
    List.iter
      (fun (a : Fibbing.Controller.action) ->
        Format.printf "  [%5.1f s] %s (fakes: %d)@." a.time a.description
          a.fakes_installed)
      (Fibbing.Controller.actions c)
  | None -> ());

  let finished =
    List.filter (fun (f : Netsim.Flow.t) -> Netsim.Flow.end_time f <= horizon) flows
  in
  Format.printf "@.QoE over the %d sessions that completed in the run: %a@."
    (List.length finished)
    Video.Qoe.pp
    (Demo.qoe d ~flows:finished);
  Format.printf
    "@.The controller engages only while the surge lasts: lies appear as@.\
     B-R2 saturates, traffic and queueing delay spread across both of@.\
     B's exits, and once the crowd drains the calm timer withdraws every@.\
     fake — the network returns to its original, lie-free IGP state.@."
