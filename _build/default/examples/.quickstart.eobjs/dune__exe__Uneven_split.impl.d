examples/uneven_split.ml: Fibbing Format Igp List Netgraph Netsim Option Printf String
