examples/flash_crowd.ml: Fibbing Format Igp Kit List Netgraph Scenarios Video
