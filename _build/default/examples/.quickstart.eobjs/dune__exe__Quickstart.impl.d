examples/quickstart.ml: Fibbing Format Igp List Netgraph
