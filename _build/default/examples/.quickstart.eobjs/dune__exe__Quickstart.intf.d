examples/quickstart.mli:
