examples/te_comparison.mli:
