examples/te_comparison.ml: Fibbing Format Igp Kit List Mpls Netgraph Netsim Printf Result Te
