examples/uneven_split.mli:
