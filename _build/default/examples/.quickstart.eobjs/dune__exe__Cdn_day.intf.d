examples/cdn_day.mli:
