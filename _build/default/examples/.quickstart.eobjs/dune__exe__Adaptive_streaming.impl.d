examples/adaptive_streaming.ml: Array Format List Netsim Printf Scenarios String Video
