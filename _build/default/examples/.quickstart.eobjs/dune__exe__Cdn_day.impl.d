examples/cdn_day.ml: Fibbing Format Igp Kit List Netsim Option Scenarios Video
