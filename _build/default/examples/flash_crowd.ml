(* The paper's demo, end to end: video flash crowds hit the Fig. 1a
   network while the Fibbing controller watches link loads over
   SNMP-style polling and injects fake LSAs on demand.

   Run with: dune exec examples/flash_crowd.exe *)

module Demo = Scenarios.Demo

let run ~fibbing =
  let d = Demo.make ~fibbing () in
  let flows = Demo.load_fig2_workload d in
  Demo.run d ~until:55.;
  (d, flows)

let () =
  Format.printf
    "Flash-crowd demo: 1 stream at t=0, +30 at t=15, +31 (from S2) at t=35.@.";
  Format.printf "Streams are %.0f kB/s videos; bottleneck links carry ~21.@.@."
    (Demo.stream_rate /. 1024.);

  Format.printf "=== Run 1: Fibbing controller enabled ===@.@.";
  let d_on, flows_on = run ~fibbing:true in
  Format.printf "Throughput on the paper's three links (Fig. 2):@.";
  Format.printf "%a@." (Kit.Timeseries.pp_rows ~step:2.5) (Demo.fig2_series d_on);

  (match d_on.controller with
  | Some controller ->
    Format.printf "Controller actions:@.";
    List.iter
      (fun (a : Fibbing.Controller.action) ->
        Format.printf "  [%5.1f s] %s (fakes installed: %d)@." a.time
          a.description a.fakes_installed)
      (Fibbing.Controller.actions controller);
    Format.printf "Fake LSAs now in the IGP:@.";
    List.iter
      (fun fake ->
        Format.printf "  %a@."
          (Igp.Lsa.pp ~names:(Netgraph.Graph.name d_on.topology.graph))
          (Fake fake))
      (Igp.Network.fakes d_on.net)
  | None -> ());

  Format.printf "@.=== Run 2: controller disabled (plain IGP) ===@.@.";
  let d_off, flows_off = run ~fibbing:false in
  Format.printf "%a@." (Kit.Timeseries.pp_rows ~step:5.) (Demo.fig2_series d_off);

  Format.printf "=== Quality of experience (playback-buffer model) ===@.";
  Format.printf "  with Fibbing:    %a@." Video.Qoe.pp (Demo.qoe d_on ~flows:flows_on);
  Format.printf "  without Fibbing: %a@." Video.Qoe.pp (Demo.qoe d_off ~flows:flows_off);
  Format.printf
    "@.The paper's observation holds: playbacks are smooth with the@.\
     controller and stutter without it.@."
