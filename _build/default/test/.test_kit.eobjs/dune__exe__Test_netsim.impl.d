test/test_netsim.ml: Alcotest Array Hashtbl Igp Kit List Netgraph Netsim Option Printf QCheck QCheck_alcotest
