test/test_kit.mli:
