test/test_mpls.ml: Alcotest Fibbing Igp List Mpls Netgraph Netsim Printf
