test/test_te.ml: Alcotest Fibbing Format Igp Kit List Netgraph Netsim Option Printf QCheck QCheck_alcotest String Te
