test/test_netgraph.ml: Alcotest Hashtbl Kit List Netgraph QCheck QCheck_alcotest String
