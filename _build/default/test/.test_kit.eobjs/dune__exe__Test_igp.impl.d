test/test_igp.ml: Alcotest Array Bytes Gen Igp Kit List Netgraph Option Printf QCheck QCheck_alcotest Result String
