test/test_kit.ml: Alcotest Array Fun Gen Kit List Printf QCheck QCheck_alcotest String
