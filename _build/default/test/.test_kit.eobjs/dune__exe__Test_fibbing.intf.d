test/test_fibbing.mli:
