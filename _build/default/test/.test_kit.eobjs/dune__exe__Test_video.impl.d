test/test_video.ml: Alcotest Array Kit List Netsim Printf Video
