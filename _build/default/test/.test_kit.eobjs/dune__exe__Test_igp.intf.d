test/test_igp.mli:
