test/test_fibbing.ml: Alcotest Fibbing Igp Kit List Netgraph Netsim Option Printf QCheck QCheck_alcotest Result String
