test/test_scenarios.ml: Alcotest Buffer Fibbing Format Igp Kit Lazy List Netsim Option Printf Scenarios String
