(* Tests for the graph substrate: structure, Dijkstra/ECMP, paths,
   max-flow and topology builders. *)

module G = Netgraph.Graph
module D = Netgraph.Dijkstra
module P = Netgraph.Paths

let diamond () =
  (* a -> b -> d and a -> c -> d, both cost 2: a two-way ECMP diamond. *)
  let g = G.create () in
  let a = G.add_node g ~name:"a" in
  let b = G.add_node g ~name:"b" in
  let c = G.add_node g ~name:"c" in
  let d = G.add_node g ~name:"d" in
  G.add_link g a b ~weight:1;
  G.add_link g a c ~weight:1;
  G.add_link g b d ~weight:1;
  G.add_link g c d ~weight:1;
  (g, a, b, c, d)

(* ---------- Graph ---------- *)

let test_graph_basics () =
  let g, a, b, _, d = diamond () in
  Alcotest.(check int) "nodes" 4 (G.node_count g);
  Alcotest.(check int) "directed edges" 8 (G.edge_count g);
  Alcotest.(check string) "name" "a" (G.name g a);
  Alcotest.(check bool) "edge exists" true (G.has_edge g a b);
  Alcotest.(check bool) "no a-d edge" false (G.has_edge g a d);
  Alcotest.(check (option int)) "weight" (Some 1) (G.weight g a b)

let test_graph_find_node () =
  let g, a, _, _, _ = diamond () in
  Alcotest.(check (option int)) "find a" (Some a) (G.find_node g "a");
  Alcotest.(check (option int)) "find missing" None (G.find_node g "zz");
  Alcotest.check_raises "find_exn missing" Not_found (fun () ->
      ignore (G.find_node_exn g "zz"))

let test_graph_weight_update () =
  let g, a, b, _, _ = diamond () in
  G.add_edge g a b ~weight:5;
  Alcotest.(check (option int)) "replaced" (Some 5) (G.weight g a b);
  Alcotest.(check int) "edge count unchanged" 8 (G.edge_count g);
  G.set_weight g a b ~weight:7;
  Alcotest.(check (option int)) "set_weight" (Some 7) (G.weight g a b)

let test_graph_rejects_bad_edges () =
  let g, a, b, _, _ = diamond () in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> G.add_edge g a a ~weight:1);
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Graph.add_edge: weight must be positive") (fun () ->
      G.add_edge g a b ~weight:0)

let test_graph_remove_edge () =
  let g, a, b, _, _ = diamond () in
  G.remove_edge g a b;
  Alcotest.(check bool) "removed" false (G.has_edge g a b);
  Alcotest.(check bool) "reverse kept" true (G.has_edge g b a);
  Alcotest.(check int) "count" 7 (G.edge_count g);
  G.remove_edge g a b (* no-op *) ;
  Alcotest.(check int) "no-op count" 7 (G.edge_count g)

let test_graph_copy_isolated () =
  let g, a, b, _, _ = diamond () in
  let g' = G.copy g in
  G.remove_edge g' a b;
  Alcotest.(check bool) "original untouched" true (G.has_edge g a b)

let test_graph_reverse () =
  let g = G.create () in
  let a = G.add_node g ~name:"a" in
  let b = G.add_node g ~name:"b" in
  G.add_edge g a b ~weight:3;
  let r = G.reverse g in
  Alcotest.(check bool) "flipped" true (G.has_edge r b a);
  Alcotest.(check bool) "no original direction" false (G.has_edge r a b);
  Alcotest.(check (option int)) "weight kept" (Some 3) (G.weight r b a)

let test_graph_pred_succ () =
  let g, a, b, c, d = diamond () in
  Alcotest.(check (list int)) "succ a" [ b; c ] (List.map fst (G.succ g a));
  Alcotest.(check (list int)) "pred d" [ b; c ]
    (List.sort compare (List.map fst (G.pred g d)))

(* ---------- Dijkstra ---------- *)

let test_dijkstra_distances () =
  let g, a, b, _, d = diamond () in
  let r = D.run g ~source:a in
  Alcotest.(check (option int)) "self" (Some 0) (D.distance r a);
  Alcotest.(check (option int)) "b" (Some 1) (D.distance r b);
  Alcotest.(check (option int)) "d" (Some 2) (D.distance r d)

let test_dijkstra_ecmp_first_hops () =
  let g, a, b, c, d = diamond () in
  let r = D.run g ~source:a in
  Alcotest.(check (list int)) "two first hops" [ b; c ] (D.first_hops g r ~target:d)

let test_dijkstra_single_path_when_weights_differ () =
  let g, a, b, c, d = diamond () in
  G.add_link g a c ~weight:2 (* now the c-branch costs 3 *);
  let r = D.run g ~source:a in
  Alcotest.(check (list int)) "single hop" [ b ] (D.first_hops g r ~target:d)

let test_dijkstra_unreachable () =
  let g = G.create () in
  let a = G.add_node g ~name:"a" in
  let b = G.add_node g ~name:"b" in
  let r = D.run g ~source:a in
  Alcotest.(check (option int)) "unreachable" None (D.distance r b);
  Alcotest.(check bool) "reachable false" false (D.reachable r b);
  Alcotest.(check (list int)) "no hops" [] (D.first_hops g r ~target:b);
  Alcotest.check_raises "distance_exn" Not_found (fun () ->
      ignore (D.distance_exn r b))

let test_dijkstra_source_cases () =
  let g, a, _, _, _ = diamond () in
  let r = D.run g ~source:a in
  Alcotest.(check (list int)) "no hops to self" [] (D.first_hops g r ~target:a);
  Alcotest.(check (list int)) "no predecessors of source" [] (D.predecessors r a)

let test_dijkstra_respects_direction () =
  let g = G.create () in
  let a = G.add_node g ~name:"a" in
  let b = G.add_node g ~name:"b" in
  G.add_edge g a b ~weight:1 (* one-way *);
  let r = D.run g ~source:b in
  Alcotest.(check (option int)) "cannot go back" None (D.distance r a)

let test_dijkstra_shortest_path_nodes () =
  let g, a, b, c, d = diamond () in
  let r = D.run g ~source:a in
  Alcotest.(check (list int)) "whole diamond" [ a; b; c; d ]
    (D.shortest_path_nodes r ~target:d)

(* On random graphs, Dijkstra distances satisfy the triangle inequality
   over edges, and first hops are real neighbors on shortest paths. *)
let prop_dijkstra_relaxed =
  QCheck.Test.make ~name:"dijkstra fixpoint on random graphs" ~count:60
    QCheck.(pair (int_range 0 10000) (int_range 4 30))
    (fun (seed, n) ->
      let prng = Kit.Prng.create ~seed in
      let g = Netgraph.Topologies.random prng ~n ~extra_edges:n ~max_weight:5 in
      let r = D.run g ~source:0 in
      List.for_all
        (fun (u, v, w) ->
          match (D.distance r u, D.distance r v) with
          | Some du, Some dv -> dv <= du + w
          | None, _ -> true (* u unreachable: no constraint *)
          | Some _, None -> false)
        (G.edges g))

let prop_dijkstra_first_hops_consistent =
  QCheck.Test.make ~name:"first hops start shortest paths" ~count:60
    QCheck.(pair (int_range 0 10000) (int_range 4 25))
    (fun (seed, n) ->
      let prng = Kit.Prng.create ~seed in
      let g = Netgraph.Topologies.random prng ~n ~extra_edges:(n / 2) ~max_weight:4 in
      let r = D.run g ~source:0 in
      List.for_all
        (fun target ->
          if target = 0 then true
          else
            List.for_all
              (fun h ->
                match (G.weight g 0 h, D.distance r h, D.distance r target) with
                | Some w, Some dh, Some _ -> dh = w
                | _ -> false)
              (D.first_hops g r ~target))
        (G.nodes g))

(* ---------- Paths ---------- *)

let test_paths_cost_and_validity () =
  let g, a, b, _, d = diamond () in
  Alcotest.(check int) "cost" 2 (P.cost g [ a; b; d ]);
  Alcotest.(check bool) "valid" true (P.is_valid g [ a; b; d ]);
  Alcotest.(check bool) "invalid hop" false (P.is_valid g [ a; d ]);
  Alcotest.(check bool) "empty invalid" false (P.is_valid g [])

let test_paths_all_shortest () =
  let g, a, b, c, d = diamond () in
  let paths = P.all_shortest g ~source:a ~target:d in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  Alcotest.(check bool) "b path present" true (List.mem [ a; b; d ] paths);
  Alcotest.(check bool) "c path present" true (List.mem [ a; c; d ] paths)

let test_paths_all_shortest_trivial () =
  let g, a, _, _, _ = diamond () in
  Alcotest.(check (list (list int))) "self" [ [ a ] ]
    (P.all_shortest g ~source:a ~target:a)

let test_paths_limit () =
  let g, a, _, _, d = diamond () in
  let paths = P.all_shortest ~limit:1 g ~source:a ~target:d in
  Alcotest.(check int) "limited" 1 (List.length paths)

let test_k_shortest_diamond () =
  let g, a, _, _, d = diamond () in
  let ps = P.k_shortest g ~k:3 ~source:a ~target:d in
  (* Only two loopless paths exist. *)
  Alcotest.(check int) "two paths" 2 (List.length ps);
  Alcotest.(check int) "both cost 2" 2 (P.cost g (List.nth ps 1))

let test_k_shortest_ordering () =
  let d = Netgraph.Topologies.demo () in
  let g = d.graph in
  let ps = P.k_shortest g ~k:3 ~source:d.a ~target:d.c in
  Alcotest.(check int) "three paths" 3 (List.length ps);
  let costs = List.map (P.cost g) ps in
  Alcotest.(check (list int)) "non-decreasing costs" (List.sort compare costs) costs;
  Alcotest.(check int) "best is 3" 3 (List.hd costs)

let test_paths_to_string () =
  let d = Netgraph.Topologies.demo () in
  Alcotest.(check string) "rendering" "A-B-R2-C"
    (P.to_string d.graph [ d.a; d.b; d.r2; d.c ])

(* ---------- Maxflow ---------- *)

let caps_of_list list =
  let t = Hashtbl.create 16 in
  List.iter (fun (e, c) -> Hashtbl.replace t e c) list;
  t

let test_maxflow_diamond () =
  let g, a, b, c, d = diamond () in
  let caps =
    caps_of_list
      [ ((a, b), 1.); ((a, c), 2.); ((b, d), 1.5); ((c, d), 1.) ]
  in
  Alcotest.(check (float 1e-6)) "min cuts" 2.
    (Netgraph.Maxflow.max_flow g caps ~source:a ~sink:d)

let test_maxflow_disconnected () =
  let g = G.create () in
  let a = G.add_node g ~name:"a" in
  let b = G.add_node g ~name:"b" in
  let caps = caps_of_list [] in
  Alcotest.(check (float 1e-6)) "zero" 0.
    (Netgraph.Maxflow.max_flow g caps ~source:a ~sink:b)

let test_maxflow_conservation () =
  let g, a, b, c, d = diamond () in
  let caps =
    caps_of_list [ ((a, b), 3.); ((a, c), 1.); ((b, d), 2.); ((c, d), 2.) ]
  in
  let value, flow = Netgraph.Maxflow.max_flow_with_assignment g caps ~source:a ~sink:d in
  Alcotest.(check (float 1e-6)) "value" 3. value;
  (* Conservation at interior nodes. *)
  let inflow v =
    Hashtbl.fold (fun (_, y) f acc -> if y = v then acc +. f else acc) flow 0.
  in
  let outflow v =
    Hashtbl.fold (fun (x, _) f acc -> if x = v then acc +. f else acc) flow 0.
  in
  Alcotest.(check (float 1e-6)) "conservation b" (inflow b) (outflow b);
  Alcotest.(check (float 1e-6)) "conservation c" (inflow c) (outflow c)

let prop_maxflow_bounded_by_out_capacity =
  QCheck.Test.make ~name:"maxflow bounded by source out-capacity" ~count:40
    QCheck.(pair (int_range 0 10000) (int_range 4 15))
    (fun (seed, n) ->
      let prng = Kit.Prng.create ~seed in
      let g = Netgraph.Topologies.random prng ~n ~extra_edges:n ~max_weight:3 in
      let caps = Hashtbl.create 32 in
      List.iter
        (fun (u, v, _) ->
          Hashtbl.replace caps (u, v) (1. +. Kit.Prng.float prng 5.))
        (G.edges g);
      let out_cap =
        List.fold_left
          (fun acc (v, _) -> acc +. Hashtbl.find caps (0, v))
          0. (G.succ g 0)
      in
      let f = Netgraph.Maxflow.max_flow g caps ~source:0 ~sink:(n - 1) in
      f <= out_cap +. 1e-6)

(* ---------- Topologies ---------- *)

let test_topology_demo_weights () =
  let d = Netgraph.Topologies.demo () in
  let w u v = G.weight_exn d.graph u v in
  Alcotest.(check int) "A-B" 1 (w d.a d.b);
  Alcotest.(check int) "A-R1" 2 (w d.a d.r1);
  Alcotest.(check int) "B-R2" 1 (w d.b d.r2);
  Alcotest.(check int) "B-R3" 1 (w d.b d.r3);
  Alcotest.(check int) "R2-C" 1 (w d.r2 d.c);
  Alcotest.(check int) "R3-C" 2 (w d.r3 d.c);
  Alcotest.(check int) "symmetric" (w d.c d.r3) (w d.r3 d.c)

let test_topology_demo_paper_routes () =
  (* Fig. 1a: A reaches C via B (cost 3, unique); B via R2 (cost 2,
     unique). *)
  let d = Netgraph.Topologies.demo () in
  let ra = D.run d.graph ~source:d.a in
  Alcotest.(check (option int)) "A cost 3" (Some 3) (D.distance ra d.c);
  Alcotest.(check (list int)) "A via B" [ d.b ] (D.first_hops d.graph ra ~target:d.c);
  let rb = D.run d.graph ~source:d.b in
  Alcotest.(check (option int)) "B cost 2" (Some 2) (D.distance rb d.c);
  Alcotest.(check (list int)) "B via R2" [ d.r2 ] (D.first_hops d.graph rb ~target:d.c)

let test_topology_line_ring_grid () =
  let line = Netgraph.Topologies.line ~n:5 in
  Alcotest.(check int) "line edges" 8 (G.edge_count line);
  let ring = Netgraph.Topologies.ring ~n:6 in
  Alcotest.(check int) "ring edges" 12 (G.edge_count ring);
  let grid = Netgraph.Topologies.grid ~rows:3 ~cols:4 in
  Alcotest.(check int) "grid nodes" 12 (G.node_count grid);
  Alcotest.(check int) "grid edges" (2 * ((2 * 4) + (3 * 3))) (G.edge_count grid)

let test_topology_random_connected () =
  let prng = Kit.Prng.create ~seed:123 in
  let g = Netgraph.Topologies.random prng ~n:40 ~extra_edges:20 ~max_weight:5 in
  let r = D.run g ~source:0 in
  Alcotest.(check bool) "connected" true
    (List.for_all (fun v -> D.reachable r v) (G.nodes g))

let test_topology_random_deterministic () =
  let g1 = Netgraph.Topologies.random (Kit.Prng.create ~seed:7) ~n:20 ~extra_edges:10 ~max_weight:4 in
  let g2 = Netgraph.Topologies.random (Kit.Prng.create ~seed:7) ~n:20 ~extra_edges:10 ~max_weight:4 in
  Alcotest.(check bool) "same edges" true (G.edges g1 = G.edges g2)

let test_topology_fat_tree () =
  let g = Netgraph.Topologies.fat_tree ~k:4 in
  (* k=4: 4 cores + 4 pods x (2 agg + 2 edge) = 20 switches. *)
  Alcotest.(check int) "nodes" 20 (G.node_count g);
  (* Links: per pod 2x2 internal + 2x2 uplinks = 8; 4 pods = 32. *)
  Alcotest.(check int) "links" 32 (G.edge_count g / 2);
  let r = D.run g ~source:(G.find_node_exn g "edge_0_0") in
  Alcotest.(check bool) "connected" true
    (List.for_all (fun v -> D.reachable r v) (G.nodes g));
  (* Inter-pod ECMP: four equal-cost paths between edge switches in
     different pods. *)
  let paths =
    P.all_shortest g
      ~source:(G.find_node_exn g "edge_0_0")
      ~target:(G.find_node_exn g "edge_1_0")
  in
  Alcotest.(check int) "4-way ECMP between pods" 4 (List.length paths);
  Alcotest.(check bool) "k must be even" true
    (try ignore (Netgraph.Topologies.fat_tree ~k:3); false
     with Invalid_argument _ -> true)

let test_topology_two_level () =
  let prng = Kit.Prng.create ~seed:5 in
  let g = Netgraph.Topologies.two_level prng ~core:6 ~edge_per_core:2 in
  Alcotest.(check int) "nodes" (6 + 12) (G.node_count g);
  let r = D.run g ~source:0 in
  Alcotest.(check bool) "connected" true
    (List.for_all (fun v -> D.reachable r v) (G.nodes g))

(* ---------- Dot ---------- *)

let test_dot_structure () =
  let d = Netgraph.Topologies.demo () in
  let dot = Netgraph.Dot.of_graph d.graph in
  Alcotest.(check bool) "graph header" true
    (String.length dot > 12 && String.sub dot 0 6 = "graph ");
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec scan i = i + n <= h && (String.sub dot i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "has A--B edge" true
    (contains "A -- B" || contains "B -- A");
  Alcotest.(check bool) "weight label" true (contains "label=\"2\"");
  (* 8 undirected edges on the demo. *)
  let count =
    List.length
      (List.filter (fun line -> String.length line > 4 && String.sub line 2 2 <> "no"
                                && (let rec has i = i + 4 <= String.length line
                                      && (String.sub line i 4 = " -- " || has (i + 1)) in
                                    has 0))
         (String.split_on_char '\n' dot))
  in
  Alcotest.(check int) "eight edges" 8 count

let test_dot_highlight () =
  let d = Netgraph.Topologies.demo () in
  let dot = Netgraph.Dot.of_graph ~highlight:[ (d.b, d.r2) ] d.graph in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec scan i = i + n <= h && (String.sub dot i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "red edge present" true (contains "color=red")

(* ---------- Zoo ---------- *)

let test_zoo_inventory () =
  let entries = Netgraph.Zoo.all () in
  Alcotest.(check (list string)) "names" [ "Abilene"; "NSFNET"; "GEANT" ]
    (List.map (fun (e : Netgraph.Zoo.entry) -> e.name) entries);
  let abilene = Netgraph.Zoo.abilene () in
  Alcotest.(check int) "abilene nodes" 11 (G.node_count abilene.graph);
  Alcotest.(check int) "abilene links" 14 (G.edge_count abilene.graph / 2);
  let nsfnet = Netgraph.Zoo.nsfnet () in
  Alcotest.(check int) "nsfnet nodes" 14 (G.node_count nsfnet.graph);
  Alcotest.(check int) "nsfnet links" 21 (G.edge_count nsfnet.graph / 2);
  let geant = Netgraph.Zoo.geant () in
  Alcotest.(check int) "geant nodes" 22 (G.node_count geant.graph)

let test_zoo_connected_and_multipath () =
  List.iter
    (fun (e : Netgraph.Zoo.entry) ->
      let r = D.run e.graph ~source:0 in
      Alcotest.(check bool)
        (e.name ^ " connected")
        true
        (List.for_all (fun v -> D.reachable r v) (G.nodes e.graph));
      (* Backbones are 2-connected enough that some pair has 2 disjoint
         paths: removing any one shortest path's middle edge must keep
         the endpoints connected. *)
      let target = G.node_count e.graph - 1 in
      match P.all_shortest e.graph ~source:0 ~target with
      | (a :: b :: _) :: _ ->
        let g' = G.copy e.graph in
        G.remove_edge g' a b;
        G.remove_edge g' b a;
        let r' = D.run g' ~source:0 in
        Alcotest.(check bool) (e.name ^ " survives a link cut") true
          (D.reachable r' target)
      | _ -> Alcotest.fail "no path")
    (Netgraph.Zoo.all ())

let test_zoo_find () =
  Alcotest.(check bool) "case-insensitive" true
    (match Netgraph.Zoo.find "abilene" with
    | Some e -> e.name = "Abilene"
    | None -> false);
  Alcotest.(check bool) "missing" true (Netgraph.Zoo.find "arpanet" = None)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "netgraph"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "find node" `Quick test_graph_find_node;
          Alcotest.test_case "weight update" `Quick test_graph_weight_update;
          Alcotest.test_case "bad edges" `Quick test_graph_rejects_bad_edges;
          Alcotest.test_case "remove edge" `Quick test_graph_remove_edge;
          Alcotest.test_case "copy isolated" `Quick test_graph_copy_isolated;
          Alcotest.test_case "reverse" `Quick test_graph_reverse;
          Alcotest.test_case "pred/succ" `Quick test_graph_pred_succ;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "distances" `Quick test_dijkstra_distances;
          Alcotest.test_case "ecmp first hops" `Quick test_dijkstra_ecmp_first_hops;
          Alcotest.test_case "weights break ties" `Quick
            test_dijkstra_single_path_when_weights_differ;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "source cases" `Quick test_dijkstra_source_cases;
          Alcotest.test_case "directionality" `Quick test_dijkstra_respects_direction;
          Alcotest.test_case "path nodes" `Quick test_dijkstra_shortest_path_nodes;
        ] );
      qsuite "dijkstra-props"
        [ prop_dijkstra_relaxed; prop_dijkstra_first_hops_consistent ];
      ( "paths",
        [
          Alcotest.test_case "cost/valid" `Quick test_paths_cost_and_validity;
          Alcotest.test_case "all shortest" `Quick test_paths_all_shortest;
          Alcotest.test_case "trivial" `Quick test_paths_all_shortest_trivial;
          Alcotest.test_case "limit" `Quick test_paths_limit;
          Alcotest.test_case "k-shortest diamond" `Quick test_k_shortest_diamond;
          Alcotest.test_case "k-shortest ordering" `Quick test_k_shortest_ordering;
          Alcotest.test_case "to_string" `Quick test_paths_to_string;
        ] );
      ( "maxflow",
        [
          Alcotest.test_case "diamond" `Quick test_maxflow_diamond;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          Alcotest.test_case "conservation" `Quick test_maxflow_conservation;
        ] );
      qsuite "maxflow-props" [ prop_maxflow_bounded_by_out_capacity ];
      ( "dot",
        [
          Alcotest.test_case "structure" `Quick test_dot_structure;
          Alcotest.test_case "highlight" `Quick test_dot_highlight;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "inventory" `Quick test_zoo_inventory;
          Alcotest.test_case "connected/multipath" `Quick
            test_zoo_connected_and_multipath;
          Alcotest.test_case "find" `Quick test_zoo_find;
        ] );
      ( "topologies",
        [
          Alcotest.test_case "demo weights" `Quick test_topology_demo_weights;
          Alcotest.test_case "demo paper routes" `Quick test_topology_demo_paper_routes;
          Alcotest.test_case "line/ring/grid" `Quick test_topology_line_ring_grid;
          Alcotest.test_case "random connected" `Quick test_topology_random_connected;
          Alcotest.test_case "random deterministic" `Quick
            test_topology_random_deterministic;
          Alcotest.test_case "two level" `Quick test_topology_two_level;
          Alcotest.test_case "fat tree" `Quick test_topology_fat_tree;
        ] );
    ]
