type request = {
  router : Netgraph.Graph.node;
  splits : Requirements.split list;
}

type allocation = {
  weighted : (Netgraph.Graph.node * (Netgraph.Graph.node * int) list) list;
  entries_used : int;
  max_error : float;
  per_router_error : (Netgraph.Graph.node * float) list;
}

let minimum_entries requests =
  List.fold_left (fun acc r -> acc + List.length r.splits) 0 requests

let fractions_of r =
  Array.of_list (List.map (fun s -> s.Requirements.fraction) r.splits)

let error_at r total =
  let fractions = fractions_of r in
  Kit.Ratio.max_error fractions (Kit.Ratio.apportion fractions ~total)

let allocate ~budget requests =
  if requests = [] then invalid_arg "Budget.allocate: no requests";
  List.iter
    (fun r ->
      if r.splits = [] then invalid_arg "Budget.allocate: empty splits";
      let sum = List.fold_left (fun acc s -> acc +. s.Requirements.fraction) 0. r.splits in
      if abs_float (sum -. 1.) > 1e-6 then
        invalid_arg "Budget.allocate: fractions must sum to 1")
    requests;
  let minimum = minimum_entries requests in
  if budget < minimum then
    invalid_arg
      (Printf.sprintf "Budget.allocate: budget %d below minimum %d" budget minimum);
  let requests = Array.of_list requests in
  let totals = Array.map (fun r -> List.length r.splits) requests in
  let errors = Array.mapi (fun i r -> error_at r totals.(i)) requests in
  let used = ref minimum in
  (* Greedy: spend each spare entry where it cuts the worst error. Stop
     when no router's error improves with one more entry (an entry that
     buys nothing is an LSA wasted). *)
  let continue = ref true in
  while !used < budget && !continue do
    let best = ref None in
    Array.iteri
      (fun i r ->
        let improved = error_at r (totals.(i) + 1) in
        if improved < errors.(i) -. 1e-12 then begin
          (* Prefer the router whose CURRENT error is worst. *)
          match !best with
          | Some (_, current_error, _) when current_error >= errors.(i) -> ()
          | Some _ | None -> best := Some (i, errors.(i), improved)
        end)
      requests;
    match !best with
    | None -> continue := false
    | Some (i, _, improved) ->
      totals.(i) <- totals.(i) + 1;
      errors.(i) <- improved;
      incr used
  done;
  let weighted =
    Array.to_list
      (Array.mapi
         (fun i r ->
           let m = Kit.Ratio.apportion (fractions_of r) ~total:totals.(i) in
           ( r.router,
             List.mapi (fun j s -> (s.Requirements.next_hop, m.(j))) r.splits ))
         requests)
  in
  {
    weighted;
    entries_used = !used;
    max_error = Array.fold_left max 0. errors;
    per_router_error =
      Array.to_list (Array.mapi (fun i r -> (r.router, errors.(i))) requests);
  }
