let default_max_entries = 16

let multiplicities ?(max_entries = default_max_entries) splits =
  let fractions =
    Array.of_list (List.map (fun s -> s.Requirements.fraction) splits)
  in
  let m = Kit.Ratio.approximate ~max_total:max_entries fractions in
  List.mapi (fun i s -> (s.Requirements.next_hop, m.(i))) splits

let realized_fractions weighted =
  let total = List.fold_left (fun acc (_, m) -> acc + m) 0 weighted in
  if total = 0 then invalid_arg "Splitting.realized_fractions: zero total";
  List.map
    (fun (nh, m) -> (nh, float_of_int m /. float_of_int total))
    weighted

let approximation_error splits weighted =
  let realized = realized_fractions weighted in
  List.fold_left
    (fun acc (s : Requirements.split) ->
      let r = Option.value ~default:0. (List.assoc_opt s.next_hop realized) in
      max acc (abs_float (r -. s.fraction)))
    0. splits
