module Graph = Netgraph.Graph

type violation = { step : int; fake_id : string; problem : string }

(* Loop and blackhole analysis of the current forwarding graph for one
   prefix: Kahn's algorithm on the next-hop edges finds cycles; a
   forward walk from every routed router must end at a local
   delivery. *)
let state_safe net ~prefix =
  let g = Igp.Network.graph net in
  let n = Graph.node_count g in
  let fibs = Igp.Network.fib_table net prefix in
  assert (Array.length fibs = n);
  let forwarding router =
    match fibs.(router) with
    | Some fib when not fib.Igp.Fib.local -> Igp.Fib.next_hops fib
    | Some _ | None -> []
  in
  (* Cycle detection. *)
  let indegree = Array.make n 0 in
  List.iter
    (fun router ->
      List.iter (fun nh -> indegree.(nh) <- indegree.(nh) + 1) (forwarding router))
    (Graph.nodes g);
  let queue = Queue.create () in
  Array.iteri (fun router d -> if d = 0 then Queue.push router queue) indegree;
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let router = Queue.pop queue in
    incr processed;
    List.iter
      (fun nh ->
        indegree.(nh) <- indegree.(nh) - 1;
        if indegree.(nh) = 0 then Queue.push nh queue)
      (forwarding router)
  done;
  if !processed < n then begin
    let cyclic =
      List.filter (fun router -> indegree.(router) > 0) (Graph.nodes g)
      |> List.map (Graph.name g)
    in
    Error
      (Printf.sprintf "forwarding loop for %s through {%s}" prefix
         (String.concat ", " cyclic))
  end
  else begin
    (* Blackholes: a routed router whose every forwarding chain dies.
       With loop-freedom established, it suffices that every router with
       a FIB has all next hops themselves routed (or local). *)
    let routed router = fibs.(router) <> None in
    let bad =
      List.find_opt
        (fun router ->
          routed router
          && List.exists (fun nh -> not (routed nh)) (forwarding router))
        (Graph.nodes g)
    in
    match bad with
    | Some router ->
      Error
        (Printf.sprintf "blackhole for %s at %s: a next hop has no route"
           prefix (Graph.name g router))
    | None -> Ok ()
  end

let check_order net ~prefix fakes =
  let scratch = Igp.Network.clone net in
  let rec steps index = function
    | [] -> Ok ()
    | (fake : Igp.Lsa.fake) :: rest ->
      Igp.Network.inject_fake scratch fake;
      (match state_safe scratch ~prefix with
      | Ok () -> steps (index + 1) rest
      | Error problem -> Error { step = index; fake_id = fake.fake_id; problem })
  in
  match state_safe scratch ~prefix with
  | Error problem ->
    Error { step = 0; fake_id = "<initial state>"; problem }
  | Ok () -> steps 1 fakes

(* Greedy order search over a step function: [advance scratch item]
   mutates the scratch network; we pick any remaining item whose
   application keeps the prefix safe, testing each candidate on a fresh
   clone of the current scratch. *)
let greedy_order net ~prefix items ~advance ~describe =
  let scratch = Igp.Network.clone net in
  match state_safe scratch ~prefix with
  | Error problem -> Error (Printf.sprintf "unsafe initial state: %s" problem)
  | Ok () ->
    let rec pick ordered remaining =
      match remaining with
      | [] -> Ok (List.rev ordered)
      | _ ->
        let try_candidate item =
          let trial = Igp.Network.clone scratch in
          advance trial item;
          match state_safe trial ~prefix with Ok () -> true | Error _ -> false
        in
        (match List.find_opt try_candidate remaining with
        | None ->
          Error
            (Printf.sprintf
               "no safe next step among {%s}; an intermediate state always \
                loops"
               (String.concat ", " (List.map describe remaining)))
        | Some item ->
          advance scratch item;
          pick (item :: ordered)
            (List.filter (fun other -> describe other <> describe item) remaining))
    in
    pick [] items

let safe_order net (plan : Augmentation.plan) =
  greedy_order net ~prefix:plan.prefix plan.fakes
    ~advance:(fun scratch fake -> Igp.Network.inject_fake scratch fake)
    ~describe:(fun (f : Igp.Lsa.fake) -> f.fake_id)

let safe_removal_order net (plan : Augmentation.plan) =
  greedy_order net ~prefix:plan.prefix plan.fakes
    ~advance:(fun scratch (fake : Igp.Lsa.fake) ->
      Igp.Network.retract_fake scratch ~fake_id:fake.fake_id)
    ~describe:(fun (f : Igp.Lsa.fake) -> f.fake_id)

let apply_safely net (plan : Augmentation.plan) =
  match safe_order net plan with
  | Error reason -> Error reason
  | Ok order ->
    List.iter (Igp.Network.inject_fake net) order;
    Ok ()

let revert_safely net (plan : Augmentation.plan) =
  match safe_removal_order net plan with
  | Error reason -> Error reason
  | Ok order ->
    List.iter
      (fun (fake : Igp.Lsa.fake) ->
        Igp.Network.retract_fake net ~fake_id:fake.fake_id)
      order;
    Ok ()
