(** Compilation of forwarding requirements into fake LSAs — the core of
    Fibbing.

    Two compilation strategies are provided:

    - {b Extension} ({i the demo's technique}): fake routes are injected
      at exactly the router's current SPF cost, so they join the existing
      equal-cost set. This adds next hops (and multiplicities) without
      disturbing anything else — it reproduces the paper's fB (cost 2 at
      B) and the two fA (cost 3 at A). It cannot remove a next hop the
      IGP already uses.

    - {b Override}: fake routes are injected strictly below the current
      SPF cost, replacing the router's real routes entirely, enabling
      arbitrary next-hop sets. Costs are derived by constraint
      relaxation: start each lied-to router at its highest safe cost
      (current distance − 1) and propagate pairwise consistency
      [L(u) <= dist(u, v) + L(v) − 1] so no router is captured by a
      neighbor's lie, plus lower bounds protecting non-required routers.

    [compile] is the production entry point: it tries extension, falls
    back to override, verifies the candidate on a cloned network, and
    repairs residual collateral damage by {i pinning} the affected
    routers (lying to them so they keep forwarding exactly as before) —
    the same grow-the-lie-set loop the Fibbing paper's augmentation uses.
    The result is guaranteed verified or an [Error] is returned; nothing
    is ever silently wrong. *)

type mode = Extension | Override | Hybrid

type plan = {
  prefix : Igp.Lsa.prefix;
  mode : mode;
  fakes : Igp.Lsa.fake list;
  expected : (Netgraph.Graph.node * (Netgraph.Graph.node * int) list) list;
      (** Per required (and pinned) router, the FIB weights the plan must
          produce — the verifier's contract. *)
  costs : (Netgraph.Graph.node * int) list;
      (** Fake total cost used at each lied-to router. *)
  pinned : Netgraph.Graph.node list;
      (** Routers added by collateral repair. *)
}

val fake_count : plan -> int

val extension_plan :
  ?max_entries:int ->
  ?tag:string ->
  Igp.Network.t ->
  Requirements.t ->
  (plan, string) result
(** Pure extension compilation. Fails (with an explanatory message) when
    a required router would need to {i drop} one of its current next
    hops, when the prefix is unreachable, or when fakes for this prefix
    are already installed at a required router. The plan is not yet
    verified against collateral effects — use [compile] for that. *)

val override_plan :
  ?max_entries:int ->
  ?tag:string ->
  ?pin:(Netgraph.Graph.node * (Netgraph.Graph.node * int) list) list ->
  Igp.Network.t ->
  Requirements.t ->
  (plan, string) result
(** Pure override compilation. [pin] adds routers whose current weighted
    next hops must be preserved by explicit lies. *)

val hybrid_plan :
  ?max_entries:int ->
  ?tag:string ->
  ?pin:(Netgraph.Graph.node * (Netgraph.Graph.node * int) list) list ->
  Igp.Network.t ->
  Requirements.t ->
  (plan, string) result
(** Per-router mode selection under one consistent cost assignment:
    every lied-to router starts at its highest safe cost — the current
    distance when its requirement only {i adds} paths (extension), one
    below when a current next hop must be removed (override) — and the
    pairwise relaxation [L(u) <= dist(u, v) + L(v) − 1] then lowers
    whoever a neighbor's lie would otherwise capture. Routers whose
    final cost equals their distance keep their real routes and get
    fakes only for the missing multiplicity; lowered routers are served
    entirely by fakes. This is what lets one requirement mix a
    distance-1 router (which no positive-cost lie can undercut, so it
    must stay in extension mode) with removals elsewhere. *)

val compile :
  ?max_entries:int ->
  ?tag:string ->
  ?max_repairs:int ->
  Igp.Network.t ->
  Requirements.t ->
  (plan, string) result
(** Extension-then-override with verification and collateral repair
    (default [max_repairs] 8). On [Ok plan], applying [plan] to the
    network is guaranteed to pass [Verify.check]. *)

val apply : Igp.Network.t -> plan -> unit
(** Inject every fake of the plan. *)

val revert : Igp.Network.t -> plan -> unit
(** Retract the plan's fakes (those still installed). *)
