(** Fake-node count reduction.

    The SIGCOMM'15 Fibbing paper pairs its augmentation with a merger
    that shrinks the lie to the minimum number of fake LSAs. We implement
    the same contract with a greedy verifier-driven search: try dropping
    each fake in turn (cheapest wins kept last), keep the drop whenever
    the full-network verification still passes. The result is a plan with
    the same verified behaviour and no removable fake — a local minimum,
    which for DAG-shaped requirements is typically the true minimum.

    Typical wins: a required next hop that some cheaper lie already makes
    equal-cost, and pinned routers whose protection became redundant as
    other fakes were removed. *)

val minimize :
  Igp.Network.t ->
  Requirements.t ->
  Augmentation.plan ->
  Augmentation.plan
(** Returns a plan whose [fakes] list is a subset of the input's and
    which still passes [Verify.check] against the current network state
    (the input plan must itself verify; it is returned unchanged
    otherwise). Expected weights, costs and pinned routers are carried
    over. *)

val saved : before:Augmentation.plan -> after:Augmentation.plan -> int
(** Number of fakes removed. *)
