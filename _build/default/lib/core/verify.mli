(** Network-wide verification of an augmentation's effect.

    Fibbing's correctness argument rests on lies being surgical: the
    routers named in the requirements must forward exactly as requested,
    and every other router must forward exactly as before. [check]
    recomputes every router's FIB and reports both kinds of violation;
    the augmentation compiler uses it as an oracle (and its [`Collateral]
    issues to decide which routers to pin). *)

type kind = [ `Requirement | `Collateral ]

type issue = {
  router : Netgraph.Graph.node;
  kind : kind;
  detail : string;
}

type report = { ok : bool; issues : issue list }

val snapshot :
  Igp.Network.t -> Igp.Lsa.prefix -> (Netgraph.Graph.node * Igp.Fib.t) list
(** Current FIB of every router that can reach the prefix. *)

val check :
  Igp.Network.t ->
  prefix:Igp.Lsa.prefix ->
  expected:(Netgraph.Graph.node * (Netgraph.Graph.node * int) list) list ->
  baseline:(Netgraph.Graph.node * Igp.Fib.t) list ->
  report
(** [expected] gives, per required router, the exact aggregated
    (next hop, multiplicity) FIB weights the augmentation must produce.
    Every router absent from [expected] is compared against [baseline]
    with [Igp.Fib.equal_forwarding]. *)

val pp_report :
  names:(Netgraph.Graph.node -> string) -> Format.formatter -> report -> unit
