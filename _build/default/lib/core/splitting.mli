(** Compilation of fractional splits into FIB entry multiplicities.

    ECMP hardware hashes uniformly over FIB entries, so a router can only
    realize ratios of small integers; the number of entries is bounded by
    the FIB width (16 on common platforms). Fibbing realizes multiplicity
    [m] for a next hop by installing [m] equal-cost fake routes resolving
    to it — except that a next hop the router already reaches over a real
    shortest path gets one entry "for free". *)

val default_max_entries : int
(** 16, a common hardware ECMP group width. *)

val multiplicities :
  ?max_entries:int ->
  Requirements.split list ->
  (Netgraph.Graph.node * int) list
(** Best bounded-total integer approximation of the splits, in input
    order. Raises [Invalid_argument] on empty splits, more next hops than
    [max_entries], or fractions not summing to 1. *)

val realized_fractions :
  (Netgraph.Graph.node * int) list -> (Netgraph.Graph.node * float) list

val approximation_error :
  Requirements.split list -> (Netgraph.Graph.node * int) list -> float
(** Maximum absolute deviation between requested and realized fractions
    (next hops matched by node). *)
