(** Global fake-LSA budgeting across routers.

    Every FIB entry beyond the first per next hop costs one fake LSA
    (flooded, stored in every LSDB, re-flooded on refresh), so operators
    cap the total lie size. Given the desired splits of several routers
    and a global entry budget, [allocate] distributes entries to
    minimize the worst per-router approximation error: start every
    router at one entry per next hop, then repeatedly grant an entry
    where it reduces the current maximum error the most.

    The resulting weighted next hops plug directly into
    [Augmentation.hybrid_plan]'s [pin] argument (which accepts explicit
    multiplicities), bypassing the per-router [max_entries] quantizer. *)

type request = {
  router : Netgraph.Graph.node;
  splits : Requirements.split list;  (** Fractions summing to 1. *)
}

type allocation = {
  weighted : (Netgraph.Graph.node * (Netgraph.Graph.node * int) list) list;
      (** Per router, (next hop, multiplicity); same order as the
          requests. *)
  entries_used : int;
  max_error : float;  (** Worst per-router approximation error. *)
  per_router_error : (Netgraph.Graph.node * float) list;
}

val minimum_entries : request list -> int
(** One entry per next hop: the smallest feasible budget. *)

val allocate : budget:int -> request list -> allocation
(** Raises [Invalid_argument] when the budget is below
    [minimum_entries], a request has no splits, or fractions are
    invalid. The allocation never uses more than [budget] entries and
    is deterministic. *)
