module Graph = Netgraph.Graph

type kind = [ `Requirement | `Collateral ]

type issue = { router : Graph.node; kind : kind; detail : string }

type report = { ok : bool; issues : issue list }

let snapshot net prefix = Igp.Network.fibs net prefix

let pp_weights ~names fmt weights =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    (fun fmt (nh, m) -> Format.fprintf fmt "%s x%d" (names nh) m)
    fmt weights

let check net ~prefix ~expected ~baseline =
  let g = Igp.Network.graph net in
  let names = Graph.name g in
  let issues = ref [] in
  let issue router kind fmt =
    Format.kasprintf (fun detail -> issues := { router; kind; detail } :: !issues) fmt
  in
  (* Required routers: exact weight match. *)
  List.iter
    (fun (router, want) ->
      let want = List.sort compare want in
      match Igp.Network.fib net ~router prefix with
      | None -> issue router `Requirement "prefix became unreachable"
      | Some fib ->
        let got = List.sort compare (Igp.Fib.weights fib) in
        if got <> want then
          issue router `Requirement "wanted [%a] but forwards to [%a]"
            (pp_weights ~names) want (pp_weights ~names) got)
    expected;
  (* Everyone else: identical forwarding to the baseline. *)
  let is_required router = List.mem_assoc router expected in
  List.iter
    (fun (router, before) ->
      if not (is_required router) then begin
        match Igp.Network.fib net ~router prefix with
        | None -> issue router `Collateral "prefix became unreachable"
        | Some after ->
          if not (Igp.Fib.equal_forwarding before after) then
            issue router `Collateral "forwarding changed from [%a] to [%a]"
              (pp_weights ~names) (Igp.Fib.weights before)
              (pp_weights ~names) (Igp.Fib.weights after)
      end)
    baseline;
  (* Routers that newly gained reachability are also collateral. *)
  List.iter
    (fun (router, _) ->
      if (not (is_required router)) && not (List.mem_assoc router baseline) then
        issue router `Collateral "prefix became newly reachable")
    (snapshot net prefix);
  let issues = List.rev !issues in
  { ok = issues = []; issues }

let pp_report ~names fmt report =
  if report.ok then Format.pp_print_string fmt "verified: all FIBs as intended"
  else
    List.iter
      (fun { router; kind; detail } ->
        Format.fprintf fmt "%s %s: %s@."
          (match kind with `Requirement -> "[req]" | `Collateral -> "[collateral]")
          (names router) detail)
      report.issues
