(** Forwarding requirements: what the operator (or the controller) wants
    the network to do for one destination prefix.

    A requirement assigns, to each router that must change, the set of
    next hops it should use and the fraction of traffic each next hop
    should receive. Routers not mentioned keep their IGP-computed
    behaviour. This is the abstraction the augmentation algorithms
    compile into fake LSAs. *)

type split = {
  next_hop : Netgraph.Graph.node;
  fraction : float;  (** In (0, 1]; fractions of one router sum to 1. *)
}

type router_requirement = {
  router : Netgraph.Graph.node;
  splits : split list;
}

type t = {
  prefix : Igp.Lsa.prefix;
  routers : router_requirement list;
}

val make :
  prefix:Igp.Lsa.prefix ->
  (Netgraph.Graph.node * (Netgraph.Graph.node * float) list) list ->
  t
(** Convenience constructor from [(router, [(next_hop, fraction); ...])]
    associations. *)

val even :
  prefix:Igp.Lsa.prefix ->
  router:Netgraph.Graph.node ->
  Netgraph.Graph.node list ->
  t
(** Even ECMP over the given next hops at one router — the paper's first
    intervention (router B). *)

val validate : Igp.Network.t -> t -> (unit, string) result
(** Checks, against the network: every mentioned router exists and does
    not itself announce the prefix; every next hop is a physical neighbor
    of its router; no duplicate routers or next hops; fractions are
    positive and sum to 1 (within 1e-6); the prefix is announced. *)

val find : t -> Netgraph.Graph.node -> router_requirement option

val pp : names:(Netgraph.Graph.node -> string) -> Format.formatter -> t -> unit
